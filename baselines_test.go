package uavmw

// Baseline guards for the observability plane: re-run the E13, E14, E15,
// and E16 scenarios at the exact parameters that produced the committed
// testdata/bench_baseline snapshots and assert the headline metrics are
// unchanged within noise. E15 additionally pins the wire path's exact
// allocation counts — the zero-allocation contract as a replayable record,
// not just a package test — and E16 does the same for the ground gateway's
// fan-out path and its flat air-link cost. The metrics registry sits on the egress and
// ARQ hot paths, so a regression here means the instrumentation (or any
// later change) altered scheduling or wire behaviour, not just numbers.
//
// Both scenarios run entirely under virtual time, so "noise" is not OS
// jitter — the tolerances absorb intentional, reviewed shifts in event
// interleaving (e.g. an extra timer on a measured path), while anything
// structural (priority inversion back, handover undetected, lost alarms)
// lands far outside them. Skipped in -short: CI's race run stays fast
// and a dedicated non-short step executes these.

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/experiments"
)

type benchBaseline struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Quick      bool               `json:"quick"`
	Metrics    map[string]float64 `json:"metrics"`
}

func loadBaseline(t *testing.T, name string) benchBaseline {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "bench_baseline", name))
	if err != nil {
		t.Fatalf("baseline missing: %v", err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline %s does not parse: %v", name, err)
	}
	if b.Quick {
		t.Fatalf("baseline %s was recorded with -quick; guards need the full-size run", name)
	}
	return b
}

// withinRel fails the test when got strays more than frac from the
// baseline value (relative), with a small absolute floor so near-zero
// baselines don't demand impossible precision.
func withinRel(t *testing.T, base benchBaseline, key string, got, frac, absFloor float64) {
	t.Helper()
	want, ok := base.Metrics[key]
	if !ok {
		t.Fatalf("baseline %s has no metric %q", base.Experiment, key)
	}
	tol := math.Max(math.Abs(want)*frac, absFloor)
	if diff := math.Abs(got - want); diff > tol {
		t.Errorf("%s %s = %.3f, baseline %.3f (|diff| %.3f > tolerance %.3f)",
			base.Experiment, key, got, want, diff, tol)
	}
}

// exact fails on any deviation — used for counts that the deterministic
// virtual run must reproduce exactly (losses, sent totals).
func exact(t *testing.T, base benchBaseline, key string, got float64) {
	t.Helper()
	withinRel(t, base, key, got, 0, 0)
}

func TestE13MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E13 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E13.json")

	var res *experiments.E13Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = experiments.RunE13(clk, 1<<20, 125_000, 50, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Virtual-time latencies shift only when event interleaving shifts;
	// 25% absorbs a reordered timer without passing a priority inversion
	// (flood p99 is ~140x shaped p99 in the baseline).
	withinRel(t, base, "unloaded_p99_us", float64(res.Unloaded.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "flood_p99_us", float64(res.Flood.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "shaped_p99_us", float64(res.Shaped.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "shaped_goodput_bps", res.ShapedGoodput, 0.10, 0)
	exact(t, base, "flood_lost", float64(res.FloodLost))
	exact(t, base, "shaped_lost", float64(res.ShapedLost))
	exact(t, base, "shaped_dropped", float64(res.ShapedDropped))
}

func TestE15MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E15 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E15.json")

	var res *experiments.E15Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		// UDP loopback stays off: its rates are host wall-clock, not
		// replayable. The codec alloc counts and the netsim wire figures
		// are the deterministic core this guard pins.
		res, err = experiments.RunE15(clk, 400, false, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	codec := map[string]experiments.E15CodecPoint{}
	for _, c := range res.Codec {
		codec[c.Name] = c
	}
	for _, name := range []string{"small", "mtu", "batch"} {
		c, ok := codec[name]
		if !ok {
			t.Fatalf("e15 codec point %q missing", name)
		}
		// Alloc counts are exact: AllocsPerRun on a deterministic op.
		// The tiny absolute floor only absorbs float formatting, not an
		// extra allocation (1 alloc on the batch point moves the
		// per-frame figure by 1/16 = 0.0625).
		withinRel(t, base, "codec_"+name+"_pooled_allocs", c.PooledAllocsPerFrame, 0, 0.02)
		withinRel(t, base, "codec_"+name+"_legacy_allocs", c.LegacyAllocsPerFrame, 0, 0.02)
		exact(t, base, "codec_"+name+"_wire_b", c.WireBytesPerFrame)
		// Rates are host wall-clock: the wide tolerance only catches a
		// wire path that got drastically slower (an accidental copy or
		// re-encode), not scheduling noise.
		withinRel(t, base, "codec_"+name+"_pooled_fps", c.PooledFramesPerSec, 0.75, 0)
		withinRel(t, base, "codec_"+name+"_legacy_fps", c.LegacyFramesPerSec, 0.75, 0)
	}
	exact(t, base, "netsim_samples", float64(res.Netsim.Samples))
	exact(t, base, "netsim_delivered", float64(res.Netsim.Delivered))
	exact(t, base, "netsim_wire_packets", float64(res.Netsim.WirePackets))
	exact(t, base, "netsim_wire_bytes", float64(res.Netsim.WireBytes))
}

func TestE16MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E16 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E16.json")

	var res *experiments.E16Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = experiments.RunE16(clk, []int{1000, 10_000, 100_000}, 20, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if len(res.Sweep) != 3 {
		t.Fatalf("e16 sweep has %d points, want 3", len(res.Sweep))
	}
	for _, pt := range res.Sweep {
		p := "sweep_" + strconv.Itoa(pt.Clients) + "_"
		// Delivery counts are exact: every client hears every sample or the
		// shared-subscription plumbing broke.
		exact(t, base, p+"clients", float64(pt.Clients))
		exact(t, base, p+"samples", float64(pt.Samples))
		exact(t, base, p+"delivered", float64(pt.Delivered))
		// Air-side cost may shift by a heartbeat packet when warm-up
		// duration moves the discovery phase; it must not shift by a
		// per-client resubscription (that lands orders of magnitude out).
		withinRel(t, base, p+"air_bytes", float64(pt.AirBytes), 0.25, 200)
		withinRel(t, base, p+"air_bytes_per_sample", pt.AirBytesPerSample, 0.25, 10)
		// Pushed bytes drift only with seq-number digit width; a re-encode
		// per client would multiply this.
		withinRel(t, base, p+"client_bytes", float64(pt.ClientBytes), 0.05, 0)
	}
	// The tentpole claim: 100x the audience, same air link.
	withinRel(t, base, "air_flatness_ratio", res.AirFlatnessRatio, 0, 0.5)

	// Absolute allocs/sample absorb ±1 background allocation; the marginal
	// per-client figure is the contract and pins at zero.
	withinRel(t, base, "alloc_small_per_sample", res.Alloc.SmallPerSample, 0, 1)
	withinRel(t, base, "alloc_big_per_sample", res.Alloc.BigPerSample, 0, 1)
	withinRel(t, base, "alloc_per_client_marginal", res.Alloc.PerClientMarginal, 0, 0.01)

	// Every deliberately stalled consumer is evicted, none of the healthy.
	exact(t, base, "slow_evicted", float64(res.Slow.Evicted))
	exact(t, base, "slow_stalled", float64(res.Slow.StalledClients))
	exact(t, base, "slow_healthy", float64(res.Slow.HealthyClients))
	// Latencies are host wall-clock: the guard only catches healthy
	// deliveries queueing behind a stalled socket, not scheduler noise.
	if res.Slow.StalledP99Ms > 2*res.Slow.BaselineP99Ms && res.Slow.StalledP99Ms > res.Slow.BaselineP99Ms+5 {
		t.Errorf("healthy p99 %.2fms with stalled consumers vs %.2fms baseline (>2x)",
			res.Slow.StalledP99Ms, res.Slow.BaselineP99Ms)
	}
}

func TestE17MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E17 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E17.json")

	// The flood sweep is wall-clock and only demonstrates parallel drain
	// when the host has cores to drain on: rerun it — and enforce the
	// scaling claim — on 8-way-or-wider hosts, skip it elsewhere. The
	// deterministic core this guard pins everywhere is the allocation
	// contract and the netsim wire figures.
	var scalingDur time.Duration
	if runtime.GOMAXPROCS(0) >= 8 {
		scalingDur = 200 * time.Millisecond
	}
	var res *experiments.E17Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = experiments.RunE17(clk, 300, scalingDur, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Allocs per routed frame are exact zeros: AllocsPerRun through the full
	// receive path (transport handler → shard ring → worker decode → dedup →
	// dispatch, plus pooled ack encode and egress enqueue on the acked
	// variant). The tiny floor absorbs float formatting, not an allocation.
	withinRel(t, base, "alloc_owned_per_frame", res.Alloc.OwnedPerFrame, 0, 0.02)
	withinRel(t, base, "alloc_copy_per_frame", res.Alloc.CopyPerFrame, 0, 0.02)
	withinRel(t, base, "alloc_acked_per_frame", res.Alloc.AckedPerFrame, 0, 0.02)

	exact(t, base, "netsim_senders", float64(res.Netsim.Senders))
	exact(t, base, "netsim_samples", float64(res.Netsim.Samples))
	exact(t, base, "netsim_delivered", float64(res.Netsim.Delivered))
	exact(t, base, "netsim_wire_packets", float64(res.Netsim.WirePackets))
	exact(t, base, "netsim_wire_bytes", float64(res.Netsim.WireBytes))

	if scalingDur > 0 {
		if ratio := res.ScalingRatio(4, 1); ratio < 2 {
			t.Errorf("4-shard ingest ran at %.2fx the 1-shard rate, want >= 2x on a %d-core host",
				ratio, runtime.GOMAXPROCS(0))
		}
	}
}

func TestE14MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E14 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E14.json")

	var res *experiments.E14Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = experiments.RunE14(clk, 256*1024, 800*time.Millisecond, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	withinRel(t, base, "multi_p99_us", float64(res.Multi.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "handover_detect_ms", float64(res.HandoverDetect)/float64(time.Millisecond), 0.25, 10)
	withinRel(t, base, "recovered_bps", res.RecoveredBPS, 0.10, 0)
	withinRel(t, base, "transfer_ms", float64(res.Transfer)/float64(time.Millisecond), 0.10, 0)
	// Wire split drifts a little when retransmission timing moves; 10%
	// still catches traffic landing on the wrong bearer.
	withinRel(t, base, "wifi_bytes", float64(res.WifiBytes), 0.10, 0)
	withinRel(t, base, "radio_bytes", float64(res.RadioBytes), 0.10, 0)
	exact(t, base, "multi_lost", float64(res.MultiLost))
	exact(t, base, "multi_sent", float64(res.MultiSent))
	// The single-bearer arm's loss count rides ARQ retry phase against
	// the blackout edges, and host load shifts which edge alarms still
	// recover (the harness's clock.Blocking waits advance virtual time by
	// wall-clock-dependent amounts — observed 71 idle, 77–83 loaded, on
	// this change's base commit too). The dual-bearer gate above stays
	// exact; the lossy baseline gets slack for that scheduling jitter.
	withinRel(t, base, "single_lost", float64(res.SingleLost), 0.25, 8)
	exact(t, base, "single_sent", float64(res.SingleSent))
}
