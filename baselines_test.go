package uavmw

// Baseline guards for the observability plane: re-run the E13, E14, and
// E15 scenarios at the exact parameters that produced the committed
// testdata/bench_baseline snapshots and assert the headline metrics are
// unchanged within noise. E15 additionally pins the wire path's exact
// allocation counts — the zero-allocation contract as a replayable record,
// not just a package test. The metrics registry sits on the egress and
// ARQ hot paths, so a regression here means the instrumentation (or any
// later change) altered scheduling or wire behaviour, not just numbers.
//
// Both scenarios run entirely under virtual time, so "noise" is not OS
// jitter — the tolerances absorb intentional, reviewed shifts in event
// interleaving (e.g. an extra timer on a measured path), while anything
// structural (priority inversion back, handover undetected, lost alarms)
// lands far outside them. Skipped in -short: CI's race run stays fast
// and a dedicated non-short step executes these.

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/experiments"
)

type benchBaseline struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Quick      bool               `json:"quick"`
	Metrics    map[string]float64 `json:"metrics"`
}

func loadBaseline(t *testing.T, name string) benchBaseline {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "bench_baseline", name))
	if err != nil {
		t.Fatalf("baseline missing: %v", err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline %s does not parse: %v", name, err)
	}
	if b.Quick {
		t.Fatalf("baseline %s was recorded with -quick; guards need the full-size run", name)
	}
	return b
}

// withinRel fails the test when got strays more than frac from the
// baseline value (relative), with a small absolute floor so near-zero
// baselines don't demand impossible precision.
func withinRel(t *testing.T, base benchBaseline, key string, got, frac, absFloor float64) {
	t.Helper()
	want, ok := base.Metrics[key]
	if !ok {
		t.Fatalf("baseline %s has no metric %q", base.Experiment, key)
	}
	tol := math.Max(math.Abs(want)*frac, absFloor)
	if diff := math.Abs(got - want); diff > tol {
		t.Errorf("%s %s = %.3f, baseline %.3f (|diff| %.3f > tolerance %.3f)",
			base.Experiment, key, got, want, diff, tol)
	}
}

// exact fails on any deviation — used for counts that the deterministic
// virtual run must reproduce exactly (losses, sent totals).
func exact(t *testing.T, base benchBaseline, key string, got float64) {
	t.Helper()
	withinRel(t, base, key, got, 0, 0)
}

func TestE13MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E13 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E13.json")

	var res *experiments.E13Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = experiments.RunE13(clk, 1<<20, 125_000, 50, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Virtual-time latencies shift only when event interleaving shifts;
	// 25% absorbs a reordered timer without passing a priority inversion
	// (flood p99 is ~140x shaped p99 in the baseline).
	withinRel(t, base, "unloaded_p99_us", float64(res.Unloaded.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "flood_p99_us", float64(res.Flood.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "shaped_p99_us", float64(res.Shaped.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "shaped_goodput_bps", res.ShapedGoodput, 0.10, 0)
	exact(t, base, "flood_lost", float64(res.FloodLost))
	exact(t, base, "shaped_lost", float64(res.ShapedLost))
	exact(t, base, "shaped_dropped", float64(res.ShapedDropped))
}

func TestE15MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E15 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E15.json")

	var res *experiments.E15Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		// UDP loopback stays off: its rates are host wall-clock, not
		// replayable. The codec alloc counts and the netsim wire figures
		// are the deterministic core this guard pins.
		res, err = experiments.RunE15(clk, 400, false, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	codec := map[string]experiments.E15CodecPoint{}
	for _, c := range res.Codec {
		codec[c.Name] = c
	}
	for _, name := range []string{"small", "mtu", "batch"} {
		c, ok := codec[name]
		if !ok {
			t.Fatalf("e15 codec point %q missing", name)
		}
		// Alloc counts are exact: AllocsPerRun on a deterministic op.
		// The tiny absolute floor only absorbs float formatting, not an
		// extra allocation (1 alloc on the batch point moves the
		// per-frame figure by 1/16 = 0.0625).
		withinRel(t, base, "codec_"+name+"_pooled_allocs", c.PooledAllocsPerFrame, 0, 0.02)
		withinRel(t, base, "codec_"+name+"_legacy_allocs", c.LegacyAllocsPerFrame, 0, 0.02)
		exact(t, base, "codec_"+name+"_wire_b", c.WireBytesPerFrame)
		// Rates are host wall-clock: the wide tolerance only catches a
		// wire path that got drastically slower (an accidental copy or
		// re-encode), not scheduling noise.
		withinRel(t, base, "codec_"+name+"_pooled_fps", c.PooledFramesPerSec, 0.75, 0)
		withinRel(t, base, "codec_"+name+"_legacy_fps", c.LegacyFramesPerSec, 0.75, 0)
	}
	exact(t, base, "netsim_samples", float64(res.Netsim.Samples))
	exact(t, base, "netsim_delivered", float64(res.Netsim.Delivered))
	exact(t, base, "netsim_wire_packets", float64(res.Netsim.WirePackets))
	exact(t, base, "netsim_wire_bytes", float64(res.Netsim.WireBytes))
}

func TestE14MatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size E14 baseline run; executed by the dedicated CI step")
	}
	base := loadBaseline(t, "BENCH_E14.json")

	var res *experiments.E14Result
	if _, err := experiments.RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = experiments.RunE14(clk, 256*1024, 800*time.Millisecond, base.Seed)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	withinRel(t, base, "multi_p99_us", float64(res.Multi.Percentile(99).Microseconds()), 0.25, 500)
	withinRel(t, base, "handover_detect_ms", float64(res.HandoverDetect)/float64(time.Millisecond), 0.25, 10)
	withinRel(t, base, "recovered_bps", res.RecoveredBPS, 0.10, 0)
	withinRel(t, base, "transfer_ms", float64(res.Transfer)/float64(time.Millisecond), 0.10, 0)
	// Wire split drifts a little when retransmission timing moves; 10%
	// still catches traffic landing on the wrong bearer.
	withinRel(t, base, "wifi_bytes", float64(res.WifiBytes), 0.10, 0)
	withinRel(t, base, "radio_bytes", float64(res.RadioBytes), 0.10, 0)
	exact(t, base, "multi_lost", float64(res.MultiLost))
	exact(t, base, "multi_sent", float64(res.MultiSent))
	exact(t, base, "single_lost", float64(res.SingleLost))
	exact(t, base, "single_sent", float64(res.SingleSent))
}
