// Command uavnode runs one service container on a real UDP network, hosting
// any subset of the standard avionics services. Start several on one LAN
// (or one host with distinct ports) and they discover each other through
// multicast announcements, exactly as the paper's airframe nodes do.
//
// A two-host Figure 3 deployment on one machine:
//
//	uavnode -id fcs     -bind 127.0.0.1:7101 -peers payload=127.0.0.1:7102 -services gps,mission-control
//	uavnode -id payload -bind 127.0.0.1:7102 -peers fcs=127.0.0.1:7101     -services camera,video,storage,ground-station
//
// Multicast group traffic uses addresses derived from group names; unicast
// peers must be listed with -peers (the derived multicast discovery still
// finds services once unicast reachability exists).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/flightsim"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

func main() {
	var (
		id        = flag.String("id", "", "node id (required, unique per deployment)")
		bind      = flag.String("bind", "127.0.0.1:0", "UDP bind address")
		peersFlag = flag.String("peers", "", "comma-separated peer list: id=host:port,...")
		svcFlag   = flag.String("services", "", "comma-separated services: gps,mission-control,camera,video,storage,ground-station,telemetry-bridge")
		rows      = flag.Int("rows", 2, "survey rows for the gps/mission flight plan")
		timescale = flag.Float64("timescale", 10, "simulated seconds per wall second for the gps service")
		groupBase = flag.Int("group-port-base", 17000, "base UDP port for derived multicast groups")
		multicast = flag.Bool("multicast", false, "use native IP multicast for groups (needs a multicast-routing LAN); off = unicast fan-out to -peers")
	)
	flag.Parse()
	if err := run(*id, *bind, *peersFlag, *svcFlag, *rows, *timescale, *groupBase, *multicast); err != nil {
		log.SetFlags(0)
		log.Fatalf("uavnode: %v", err)
	}
}

func parsePeers(s string) (map[transport.NodeID]string, error) {
	peers := make(map[transport.NodeID]string)
	if s == "" {
		return peers, nil
	}
	for _, pair := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(pair, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", pair)
		}
		peers[transport.NodeID(id)] = addr
	}
	return peers, nil
}

func run(id, bind, peersFlag, svcFlag string, rows int, timescale float64, groupBase int, multicast bool) error {
	if id == "" {
		return fmt.Errorf("-id is required")
	}
	peers, err := parsePeers(peersFlag)
	if err != nil {
		return err
	}
	opts := []transport.UDPOption{transport.WithGroupPortBase(groupBase)}
	if !multicast {
		opts = append(opts, transport.WithUnicastFanout())
	}
	udp, err := transport.NewUDP(transport.NodeID(id), bind, nil, opts...)
	if err != nil {
		return err
	}
	for peer, addr := range peers {
		if err := udp.AddPeer(peer, addr); err != nil {
			return err
		}
	}
	node, err := core.NewNode(core.WithDatagram(udp))
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	log.Printf("uavnode %s listening on %s", id, udp.LocalAddr())

	plan := flightsim.SurveyPlan("survey", 41.2750, 1.9870, rows, 600, 200, 120, 25)
	for _, name := range strings.Split(svcFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		svc, err := buildService(name, plan, timescale)
		if err != nil {
			return err
		}
		if _, err := node.AddService(svc); err != nil {
			return err
		}
		log.Printf("uavnode %s: service %s registered", id, name)
	}
	if err := node.StartServices(); err != nil {
		return err
	}
	log.Printf("uavnode %s: all services running; ^C to stop", id)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("uavnode %s: shutting down", id)
	return nil
}

func buildService(name string, plan flightsim.FlightPlan, timescale float64) (core.Service, error) {
	switch name {
	case "gps":
		aircraft, err := flightsim.New(plan, flightsim.Options{WindSpeedMS: 2, WindDirDeg: 300, Seed: 5})
		if err != nil {
			return nil, err
		}
		return &services.GPS{Aircraft: aircraft, SampleRate: 100 * time.Millisecond, TimeScale: timescale}, nil
	case "mission-control":
		return &services.MissionControl{Plan: plan, DependencyTimeout: 30 * time.Second}, nil
	case "camera":
		return &services.Camera{}, nil
	case "video":
		return &services.Video{}, nil
	case "storage":
		return &services.Storage{}, nil
	case "ground-station":
		return &services.GroundStation{Out: os.Stdout}, nil
	case "telemetry-bridge":
		return &services.TelemetryBridge{Out: os.Stdout}, nil
	default:
		return nil, fmt.Errorf("unknown service %q", name)
	}
}
