// Command uavmission runs the complete Figure 3 mission (§5) as a single
// process over a choice of substrates: the in-process bus, the simulated
// network with configurable loss/latency, or real UDP loopback sockets.
// It is the flag-driven sibling of examples/imaging-mission.
//
//	uavmission -transport netsim -loss 0.05 -latency 2ms -rows 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"uavmw/internal/flightsim"
	"uavmw/internal/netsim"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

func main() {
	var (
		transportKind = flag.String("transport", "bus", "substrate: bus | netsim | udp")
		rows          = flag.Int("rows", 2, "survey rows (2 photo sites each)")
		loss          = flag.Float64("loss", 0, "netsim loss probability")
		latency       = flag.Duration("latency", time.Millisecond, "netsim one-way latency")
		timescale     = flag.Float64("timescale", 40, "simulated seconds per wall second")
		quiet         = flag.Bool("quiet", false, "suppress ground-station terminal output")
		seed          = flag.Int64("seed", 9, "simulation seed")
	)
	flag.Parse()
	if err := run(*transportKind, *rows, *loss, *latency, *timescale, *quiet, *seed); err != nil {
		log.SetFlags(0)
		log.Fatalf("uavmission: %v", err)
	}
}

func run(kind string, rows int, loss float64, latency time.Duration, timescale float64, quiet bool, seed int64) error {
	plan := flightsim.SurveyPlan("mission", 41.2750, 1.9870, rows, 600, 200, 120, 25)

	var factory func(transport.NodeID) (transport.Transport, error)
	var wireStats func() (uint64, uint64, uint64)
	switch kind {
	case "bus":
		bus := transport.NewBus()
		factory = func(id transport.NodeID) (transport.Transport, error) {
			return bus.Endpoint(id)
		}
	case "netsim":
		net := netsim.New(netsim.Config{Loss: loss, Latency: latency, Seed: seed})
		defer net.Close()
		factory = func(id transport.NodeID) (transport.Transport, error) {
			return net.Node(id)
		}
		wireStats = net.WireStats
	case "udp":
		// Four real sockets on loopback; the address book is built as
		// nodes come up. Loopback rarely routes IP multicast, so group
		// sends use the unicast fan-out fallback.
		nodes := make(map[transport.NodeID]*transport.UDP)
		factory = func(id transport.NodeID) (transport.Transport, error) {
			udp, err := transport.NewUDP(id, "127.0.0.1:0", nil, transport.WithUnicastFanout())
			if err != nil {
				return nil, err
			}
			for peer, existing := range nodes {
				if err := udp.AddPeer(peer, existing.LocalAddr()); err != nil {
					return nil, err
				}
				if err := existing.AddPeer(id, udp.LocalAddr()); err != nil {
					return nil, err
				}
			}
			nodes[id] = udp
			return udp, nil
		}
	default:
		return fmt.Errorf("unknown transport %q", kind)
	}

	out := os.Stdout
	var w = out
	if quiet {
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		defer func() { _ = devnull.Close() }()
		w = devnull
	}

	start := time.Now()
	res, err := services.RunMission(services.MissionConfig{
		Plan:       plan,
		Transports: factory,
		TimeScale:  timescale,
		SampleRate: 25 * time.Millisecond,
		Out:        w,
		Timeout:    5 * time.Minute,
		Wind:       flightsim.Options{WindSpeedMS: 2, WindDirDeg: 280, Seed: seed},
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n--- %s mission over %s: %v wall clock ---\n", plan.Name, kind, time.Since(start).Round(time.Millisecond))
	fmt.Printf("photos %d  stored %d  detections %d  track %d  gs-positions %d\n",
		res.Photos, res.Stored, res.Detections, res.TrackPoints, res.GSPositions)
	if wireStats != nil {
		packets, bytes, lost := wireStats()
		fmt.Printf("wire: %d packets, %.1f KB, %d lost\n", packets, float64(bytes)/1024, lost)
	}
	return nil
}
