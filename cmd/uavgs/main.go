// Command uavgs is a standalone ground-station terminal: it joins a UDP
// deployment, subscribes to the position variable and the standard mission
// event topics, and prints everything it sees — the paper's "the ground
// station basically shows the subscribed variables and events in a
// terminal" (§5).
//
//	uavgs -bind 127.0.0.1:7190 -peers fcs=127.0.0.1:7101,payload=127.0.0.1:7102
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"uavmw/internal/core"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

func main() {
	var (
		id        = flag.String("id", "uavgs", "node id")
		bind      = flag.String("bind", "127.0.0.1:0", "UDP bind address")
		peersFlag = flag.String("peers", "", "comma-separated peer list: id=host:port,...")
		groupBase = flag.Int("group-port-base", 17000, "base UDP port for derived multicast groups")
		multicast = flag.Bool("multicast", false, "use native IP multicast for groups; off = unicast fan-out to -peers")
	)
	flag.Parse()
	if err := run(*id, *bind, *peersFlag, *groupBase, *multicast); err != nil {
		log.SetFlags(0)
		log.Fatalf("uavgs: %v", err)
	}
}

func run(id, bind, peersFlag string, groupBase int, multicast bool) error {
	opts := []transport.UDPOption{transport.WithGroupPortBase(groupBase)}
	if !multicast {
		opts = append(opts, transport.WithUnicastFanout())
	}
	udp, err := transport.NewUDP(transport.NodeID(id), bind, nil, opts...)
	if err != nil {
		return err
	}
	if peersFlag != "" {
		for _, pair := range strings.Split(peersFlag, ",") {
			pid, addr, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("bad peer %q", pair)
			}
			if err := udp.AddPeer(transport.NodeID(pid), addr); err != nil {
				return err
			}
		}
	}
	node, err := core.NewNode(core.WithDatagram(udp))
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	gs := &services.GroundStation{Out: os.Stdout, PositionEvery: 5}
	if _, err := node.AddService(gs); err != nil {
		return err
	}
	if err := node.StartServices(); err != nil {
		return err
	}
	log.Printf("uavgs listening on %s; ^C to stop", udp.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("\nreceived %d positions, %d photo events, %d detections\n",
		gs.Positions(), gs.EventCount(services.EvtPhotoReady), gs.EventCount(services.EvtDetection))
	return nil
}
