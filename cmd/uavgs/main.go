// Command uavgs is a standalone ground-station terminal: it joins a UDP
// deployment, subscribes to the position variable and the standard mission
// event topics, and prints everything it sees — the paper's "the ground
// station basically shows the subscribed variables and events in a
// terminal" (§5).
//
//	uavgs -bind 127.0.0.1:7190 -peers fcs=127.0.0.1:7101,payload=127.0.0.1:7102
//
// With -gateway it additionally serves external consumers over TCP:
// length-prefixed JSON subscriptions that share one fabric subscription
// per topic, are fed from the last-value cache on connect, and never touch
// the air link. -http exposes the node's metrics snapshot and a health
// probe on the same machinery.
//
//	uavgs -gateway :7200 -http :7201
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"uavmw/internal/core"
	"uavmw/internal/gateway"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

func main() {
	var (
		id        = flag.String("id", "uavgs", "node id")
		bind      = flag.String("bind", "127.0.0.1:0", "UDP bind address")
		peersFlag = flag.String("peers", "", "comma-separated peer list: id=host:port,...")
		groupBase = flag.Int("group-port-base", 17000, "base UDP port for derived multicast groups")
		multicast = flag.Bool("multicast", false, "use native IP multicast for groups; off = unicast fan-out to -peers")
		gwAddr    = flag.String("gateway", "", "TCP listen address for external telemetry consumers (empty = off)")
		httpAddr  = flag.String("http", "", "HTTP listen address for /healthz, /metrics, /metrics.json (empty = off)")
	)
	flag.Parse()
	if err := run(*id, *bind, *peersFlag, *groupBase, *multicast, *gwAddr, *httpAddr); err != nil {
		log.SetFlags(0)
		log.Fatalf("uavgs: %v", err)
	}
}

func run(id, bind, peersFlag string, groupBase int, multicast bool, gwAddr, httpAddr string) error {
	opts := []transport.UDPOption{transport.WithGroupPortBase(groupBase)}
	if !multicast {
		opts = append(opts, transport.WithUnicastFanout())
	}
	udp, err := transport.NewUDP(transport.NodeID(id), bind, nil, opts...)
	if err != nil {
		return err
	}
	if peersFlag != "" {
		for _, pair := range strings.Split(peersFlag, ",") {
			pid, addr, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("bad peer %q", pair)
			}
			if err := udp.AddPeer(transport.NodeID(pid), addr); err != nil {
				return err
			}
		}
	}
	node, err := core.NewNode(core.WithDatagram(udp))
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	gs := &services.GroundStation{Out: os.Stdout, PositionEvery: 5}
	if _, err := node.AddService(gs); err != nil {
		return err
	}
	if err := node.StartServices(); err != nil {
		return err
	}

	var gw *gateway.Gateway
	if gwAddr != "" || httpAddr != "" {
		gw = gateway.New(node, gateway.Options{})
		defer gw.Close()
	}
	if gwAddr != "" {
		l, err := net.Listen("tcp", gwAddr)
		if err != nil {
			return fmt.Errorf("gateway listen: %w", err)
		}
		defer func() { _ = l.Close() }()
		go func() {
			if err := gw.Serve(l); err != nil {
				log.Printf("uavgs: gateway: %v", err)
			}
		}()
		log.Printf("uavgs gateway for external consumers on %s", l.Addr())
	}
	if httpAddr != "" {
		hl, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("http listen: %w", err)
		}
		defer func() { _ = hl.Close() }()
		srv := &http.Server{Handler: gw.HTTPHandler()}
		defer func() { _ = srv.Close() }()
		go func() {
			if err := srv.Serve(hl); err != nil && err != http.ErrServerClosed {
				log.Printf("uavgs: http: %v", err)
			}
		}()
		log.Printf("uavgs metrics/health on http://%s", hl.Addr())
	}
	log.Printf("uavgs listening on %s; ^C to stop", udp.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("\nreceived %d positions, %d photo events, %d detections\n",
		gs.Positions(), gs.EventCount(services.EvtPhotoReady), gs.EventCount(services.EvtDetection))
	return nil
}
