// Command uavbench regenerates every quantitative experiment recorded in
// EXPERIMENTS.md: the paper's comparative claims (E1–E5, E7, E8), the
// end-to-end Figure 3 mission (E9), and the middleware-plane experiments
// (E11–E14). Run it with no flags for the full sweep, or select
// experiments:
//
//	uavbench -run e2,e3 -quick
//
// The simulation-backed experiments (E3, E11–E14) run on a virtual
// discrete-event clock by default: minutes of scenario time execute in
// wall milliseconds with identical protocol semantics, deterministically
// for a given seed. Pass -realtime to pace them against the wall clock
// instead. Each experiment writes a BENCH_E<n>.json trajectory record
// (seed, virtual and wall durations, headline metrics) next to the
// binary or under -bench-dir.
//
// Absolute numbers depend on the host for the wall-clock experiments;
// the recorded results are about shape: who wins, by what factor, and
// where crossovers sit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/experiments"
	"uavmw/internal/flightsim"
	"uavmw/internal/qos"
	"uavmw/internal/services"
	"uavmw/internal/transport"
)

// benchRecord is the BENCH_E<n>.json trajectory document.
type benchRecord struct {
	Experiment string         `json:"experiment"`
	Seed       int64          `json:"seed,omitempty"`
	Quick      bool           `json:"quick"`
	Virtual    bool           `json:"virtual"`
	VirtualMS  float64        `json:"virtual_ms,omitempty"`
	WallMS     float64        `json:"wall_ms"`
	Speedup    float64        `json:"speedup,omitempty"`
	Metrics    map[string]any `json:"metrics"`
}

// runner executes one experiment. clk is nil for wall-clock runs; the
// virtual-capable experiments thread it into their harnesses.
type runner func(clk clock.Clock, quick bool) (map[string]any, string, error)

func main() {
	var (
		runFlag    = flag.String("run", "all", "comma-separated experiments: e1,e2,e3,e4,e5,e7,e8,e9,e11,e12,e13,e14,e15,e16,e17 or all")
		quick      = flag.Bool("quick", false, "reduced iteration counts for smoke runs")
		realtime   = flag.Bool("realtime", false, "pace the simulation-backed experiments (e3, e11-e17) against the wall clock instead of the virtual clock")
		benchDir   = flag.String("bench-dir", ".", "directory for BENCH_E<n>.json records")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the selected experiments) to this file")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("uavbench: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("uavbench: -cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("uavbench: -memprofile: %v", err)
			}
			defer func() { _ = f.Close() }()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("uavbench: -memprofile: %v", err)
			}
		}()
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		selected[strings.TrimSpace(strings.ToLower(name))] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	type experiment struct {
		name    string
		seed    int64
		virtual bool // runs under the virtual clock unless -realtime
		fn      runner
	}
	all := []experiment{
		{"e1", 0, false, runE1}, {"e2", 42, false, runE2},
		{"e3", 4, true, runE3}, {"e4", 7, false, runE4},
		{"e5", 0, false, runE5}, {"e7", 0, false, runE7},
		{"e8", 0, false, runE8}, {"e9", 0, false, runE9},
		{"e11", 11, true, runE11}, {"e12", 12, true, runE12},
		{"e13", 13, true, runE13}, {"e14", 14, true, runE14},
		{"e15", 15, true, runE15}, {"e16", 16, true, runE16},
		{"e17", 17, true, runE17},
	}
	log.SetFlags(0)
	for _, exp := range all {
		if !want(exp.name) {
			continue
		}
		rec := benchRecord{Experiment: exp.name, Seed: exp.seed, Quick: *quick}
		startWall := time.Now()
		var err error
		var snapshot string
		if exp.virtual && !*realtime {
			rec.Virtual = true
			var el experiments.Elapsed
			el, err = experiments.RunVirtual(func(clk clock.Clock) error {
				m, snap, ferr := exp.fn(clk, *quick)
				rec.Metrics, snapshot = m, snap
				return ferr
			})
			rec.VirtualMS = float64(el.Virtual) / float64(time.Millisecond)
			rec.Speedup = el.Speedup()
		} else {
			rec.Metrics, snapshot, err = exp.fn(nil, *quick)
		}
		rec.WallMS = float64(time.Since(startWall)) / float64(time.Millisecond)
		if err != nil {
			log.Fatalf("uavbench %s: %v", exp.name, err)
		}
		if rec.Virtual {
			fmt.Printf("[%s: %.1fs of scenario time in %.0fms of wall time, %.0fx]\n",
				exp.name, rec.VirtualMS/1000, rec.WallMS, rec.Speedup)
		}
		if err := writeBench(*benchDir, rec); err != nil {
			log.Fatalf("uavbench %s: %v", exp.name, err)
		}
		if snapshot != "" {
			if err := writeMetrics(*benchDir, exp.name, snapshot); err != nil {
				log.Fatalf("uavbench %s: %v", exp.name, err)
			}
		}
	}
}

// writeMetrics lands an experiment node's observability snapshot
// (metrics.Snapshot.Text) next to its BENCH record, so each CI run ships
// the full counter/gauge state that produced the headline numbers.
func writeMetrics(dir, experiment, snapshot string) error {
	name := filepath.Join(dir, "METRICS_"+strings.ToUpper(experiment)+".txt")
	return os.WriteFile(name, []byte(snapshot), 0o644)
}

func writeBench(dir string, rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	name := filepath.Join(dir, "BENCH_"+strings.ToUpper(rec.Experiment)+".json")
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func runE1(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E1 — event vs remote-invocation notification latency (§4.3 claim)")
	n := 2000
	if quick {
		n = 200
	}
	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"payload", "event p50", "event p99", "rpc p50", "rpc p99", "rpc/event")
	var rows []map[string]any
	for _, size := range []int{16, 64, 256, 1024} {
		res, err := experiments.RunE1(n, size)
		if err != nil {
			return nil, "", err
		}
		ratio := float64(res.RPC.Percentile(50)) / float64(res.Event.Percentile(50))
		fmt.Printf("%-10d %12v %12v %12v %12v %9.2fx\n",
			size,
			res.Event.Percentile(50).Round(time.Microsecond),
			res.Event.Percentile(99).Round(time.Microsecond),
			res.RPC.Percentile(50).Round(time.Microsecond),
			res.RPC.Percentile(99).Round(time.Microsecond),
			ratio)
		rows = append(rows, map[string]any{
			"payload": size, "event_p50_us": us(res.Event.Percentile(50)),
			"rpc_p50_us": us(res.RPC.Percentile(50)), "rpc_over_event": ratio,
		})
	}
	return map[string]any{"sizes": rows}, "", nil
}

func runE2(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E2 — per-message ARQ vs TCP-like in-order stream under loss (§4.2 claim)")
	n := 400
	if quick {
		n = 100
	}
	fmt.Printf("%-8s %12s %12s %12s %12s %12s %12s\n",
		"loss", "arq total", "gbn total", "arq p99", "gbn p99", "arq retx", "gbn retx")
	var rows []map[string]any
	for _, loss := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		res, err := experiments.RunE2(n, loss, 64, 42)
		if err != nil {
			return nil, "", err
		}
		fmt.Printf("%-8.2f %12v %12v %12v %12v %12d %12d\n",
			loss,
			res.ARQTotal.Round(time.Millisecond),
			res.GBNTotal.Round(time.Millisecond),
			res.ARQPerMsg.Percentile(99).Round(time.Microsecond),
			res.GBNPerMsg.Percentile(99).Round(time.Microsecond),
			res.ARQRetrans, res.GBNRetrans)
		rows = append(rows, map[string]any{
			"loss": loss, "arq_p99_us": us(res.ARQPerMsg.Percentile(99)),
			"gbn_p99_us": us(res.GBNPerMsg.Percentile(99)),
			"arq_retx":   res.ARQRetrans, "gbn_retx": res.GBNRetrans,
		})
	}
	return map[string]any{"loss_sweep": rows}, "", nil
}

func runE3(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E3 — event fan-out wire cost: group-addressed multicast vs unicast ARQ (§4.1, §4.2)")
	samples := 200
	if quick {
		samples = 50
	}
	fmt.Printf("%-12s %14s %14s %14s %14s %10s\n",
		"subscribers", "mcast pkts", "mcast KB", "ucast pkts", "ucast KB", "saving")
	var rows []map[string]any
	for _, subs := range []int{2, 8, 32} {
		res, err := experiments.RunE3(clk, subs, samples)
		if err != nil {
			return nil, "", err
		}
		saving := float64(res.UcastBytes) / float64(res.McastBytes)
		fmt.Printf("%-12d %14d %14.1f %14d %14.1f %9.1fx\n",
			subs, res.McastPackets, float64(res.McastBytes)/1024,
			res.UcastPackets, float64(res.UcastBytes)/1024, saving)
		rows = append(rows, map[string]any{
			"subscribers": subs, "mcast_pkts": res.McastPackets,
			"mcast_bytes": res.McastBytes, "ucast_pkts": res.UcastPackets,
			"ucast_bytes": res.UcastBytes, "saving": saving,
		})
	}
	return map[string]any{"fanout": rows}, "", nil
}

func runE4(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E4 — MFTP file distribution vs chunked events (§4.4 claim)")
	sizes := []int{64 << 10, 512 << 10, 2 << 20}
	receivers := []int{1, 4, 8}
	if quick {
		sizes = []int{64 << 10, 256 << 10}
		receivers = []int{1, 4}
	}
	fmt.Printf("%-10s %-10s %-6s %12s %12s %12s %12s %8s\n",
		"size", "receivers", "loss", "mftp time", "events time", "mftp KB", "events KB", "speedup")
	var rows []map[string]any
	for _, size := range sizes {
		for _, recv := range receivers {
			res, err := experiments.RunE4(size, recv, 0.02, 7)
			if err != nil {
				return nil, "", err
			}
			fmt.Printf("%-10s %-10d %-6.2f %12v %12v %12.0f %12.0f %7.1fx\n",
				byteSize(size), recv, 0.02,
				res.MFTPTime.Round(time.Millisecond),
				res.EventsTime.Round(time.Millisecond),
				res.MFTPWireKB, res.EventsWireKB,
				float64(res.EventsTime)/float64(res.MFTPTime))
			rows = append(rows, map[string]any{
				"size": size, "receivers": recv,
				"mftp_ms":   float64(res.MFTPTime) / float64(time.Millisecond),
				"events_ms": float64(res.EventsTime) / float64(time.Millisecond),
			})
		}
	}
	return map[string]any{"matrix": rows}, "", nil
}

func runE5(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E5 — same-container bypass vs network path (§4.4, F2)")
	iters := 2000
	if quick {
		iters = 200
	}
	res, err := experiments.RunE5(1<<20, iters)
	if err != nil {
		return nil, "", err
	}
	fmt.Printf("file fetch 1MB : local %10v   remote %10v   (%.0fx)\n",
		res.LocalFetch.Round(time.Microsecond), res.RemoteFetch.Round(time.Microsecond),
		float64(res.RemoteFetch)/float64(res.LocalFetch))
	fmt.Printf("variable publish: local %10v   remote %10v   (%.0fx)\n",
		res.LocalVar.Round(time.Microsecond), res.RemoteVar.Round(time.Microsecond),
		float64(res.RemoteVar)/float64(res.LocalVar))
	return map[string]any{
		"local_fetch_us": us(res.LocalFetch), "remote_fetch_us": us(res.RemoteFetch),
		"local_var_us": us(res.LocalVar), "remote_var_us": us(res.RemoteVar),
	}, "", nil
}

func runE7(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E7 — failover redirection latency after provider death (§4.3)")
	fmt.Printf("%-18s %14s %12s\n", "failure deadline", "redirect time", "failed calls")
	deadlines := []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	if quick {
		deadlines = deadlines[:2]
	}
	var rows []map[string]any
	for _, d := range deadlines {
		res, err := experiments.RunE7(d)
		if err != nil {
			return nil, "", err
		}
		fmt.Printf("%-18v %14v %12d\n", d, res.Redirect.Round(time.Millisecond), res.CallsFailed)
		rows = append(rows, map[string]any{
			"deadline_ms": float64(d) / float64(time.Millisecond),
			"redirect_ms": float64(res.Redirect) / float64(time.Millisecond),
			"failed":      res.CallsFailed,
		})
	}
	return map[string]any{"deadlines": rows}, "", nil
}

func runE8(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E8 — fixed-priority scheduler queue latency under load (§6)")
	background := 5000
	foreground := 200
	if quick {
		background, foreground = 500, 50
	}
	res, err := experiments.RunE8(4, background, foreground, 50*time.Microsecond)
	if err != nil {
		return nil, "", err
	}
	fmt.Printf("%-10s %12s %12s %12s\n", "priority", "p50", "p99", "max")
	metrics := map[string]any{}
	for i := len(qos.Levels()) - 1; i >= 0; i-- {
		pr := qos.Levels()[i]
		h := res.Priorities[pr]
		fmt.Printf("%-10s %12v %12v %12v\n", pr,
			h.Percentile(50).Round(time.Microsecond),
			h.Percentile(99).Round(time.Microsecond),
			h.Max().Round(time.Microsecond))
		metrics[fmt.Sprintf("%s_p99_us", pr)] = us(h.Percentile(99))
	}
	return metrics, "", nil
}

func runE9(_ clock.Clock, quick bool) (map[string]any, string, error) {
	header("E9 — Figure 3 mission end to end (§5)")
	rows := 3
	if quick {
		rows = 2
	}
	plan := flightsim.SurveyPlan("bench", 41.2750, 1.9870, rows, 600, 200, 120, 25)
	bus := transport.NewBus()
	start := time.Now()
	res, err := services.RunMission(services.MissionConfig{
		Plan: plan,
		Transports: func(id transport.NodeID) (transport.Transport, error) {
			return bus.Endpoint(id)
		},
		TimeScale:  60,
		SampleRate: 20 * time.Millisecond,
		Timeout:    3 * time.Minute,
	})
	if err != nil {
		return nil, "", err
	}
	fmt.Printf("waypoints %d  photo sites %d  wall clock %v\n",
		len(plan.Waypoints), res.Photos, time.Since(start).Round(time.Millisecond))
	fmt.Printf("photos %d  stored %d  detections %d  gs positions %d  track %d\n",
		res.Photos, res.Stored, res.Detections, res.GSPositions, res.TrackPoints)
	fmt.Fprintln(os.Stdout)
	return map[string]any{
		"waypoints": len(plan.Waypoints), "photos": res.Photos, "stored": res.Stored,
		"detections": res.Detections, "gs_positions": res.GSPositions,
	}, "", nil
}

func runE11(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E11 — concurrent RPC vs a stalled pinned provider: hedged failover (§4.3)")
	calls := 20
	if quick {
		calls = 5
	}
	fmt.Println("static pin lands on a provider that stalls past the 250ms deadline;")
	fmt.Println("2% loss; hedge dispatches to the redundant provider at 20% of the deadline")
	fmt.Printf("%-8s %-8s %8s %8s %12s %12s %12s %8s %8s\n",
		"callers", "hedged", "ok", "failed", "thruput/s", "p50", "p99", "hedges", "busy")
	var rows []map[string]any
	for _, callers := range []int{1, 8, 64} {
		for _, hedged := range []bool{false, true} {
			res, err := experiments.RunE11(clk, callers, calls, hedged, 0.02, 400*time.Millisecond, 11)
			if err != nil {
				return nil, "", err
			}
			p50, p99 := "-", "-"
			if res.OK > 0 {
				p50 = res.Latency.Percentile(50).Round(time.Millisecond).String()
				p99 = res.Latency.Percentile(99).Round(time.Millisecond).String()
			}
			fmt.Printf("%-8d %-8v %8d %8d %12.1f %12s %12s %8d %8d\n",
				callers, hedged, res.OK, res.Failed, res.Throughput, p50, p99,
				res.Hedges, res.BusyRej)
			rows = append(rows, map[string]any{
				"callers": callers, "hedged": hedged, "ok": res.OK, "failed": res.Failed,
				"p99_us": us(res.Latency.Percentile(99)), "hedges": res.Hedges,
			})
		}
	}
	return map[string]any{"sweep": rows}, "", nil
}

func runE12(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E12 — incremental discovery: steady-state wire cost and convergence (§3 at scale)")
	fmt.Println("steady state sends constant-size digests (O(nodes) bytes/period); the old")
	fmt.Println("protocol re-broadcast every record every period (O(total records))")
	fmt.Printf("%-7s %-9s %14s %14s %9s %14s\n",
		"nodes", "records", "steady B/prd", "full B/prd", "saving", "new-offer lat")
	nodeCounts := []int{4, 16, 64}
	recordCounts := []int{10, 100, 1000}
	if quick {
		nodeCounts = []int{4, 16}
		recordCounts = []int{10, 100}
	}
	var rows []map[string]any
	var snapText string
	for _, nodes := range nodeCounts {
		for _, records := range recordCounts {
			res, err := experiments.RunE12(clk, nodes, records, 12)
			if err != nil {
				return nil, "", err
			}
			snapText = res.MetricsText
			fmt.Printf("%-7d %-9d %14.0f %14.0f %8.1fx %14v\n",
				nodes, records,
				res.SteadyBytesPerPeriod, res.BaselineBytesPerPeriod,
				res.BaselineBytesPerPeriod/res.SteadyBytesPerPeriod,
				res.Converge.Round(10*time.Microsecond))
			rows = append(rows, map[string]any{
				"nodes": nodes, "records": records,
				"steady_bytes_per_period":   res.SteadyBytesPerPeriod,
				"baseline_bytes_per_period": res.BaselineBytesPerPeriod,
				"converge_us":               us(res.Converge),
			})
		}
	}
	churnNodes, churnRecords := 16, 100
	if quick {
		churnNodes, churnRecords = 4, 20
	}
	churn, err := experiments.RunE12Churn(clk, churnNodes, churnRecords, 50, 13)
	if err != nil {
		return nil, "", err
	}
	fmt.Printf("churn: %d nodes × %d records, %d offers missed behind a partition\n",
		churn.Nodes, churn.RecordsPerNode, churn.MissedOffers)
	fmt.Printf("heal re-convergence %v (%d sync requests, %d heartbeats observed)\n",
		churn.HealConverge.Round(time.Millisecond), churn.SyncsUsed, churn.HeartbeatsAfter)
	metrics := map[string]any{
		"sweep": rows,
		"churn": map[string]any{
			"nodes": churn.Nodes, "records": churn.RecordsPerNode,
			"heal_converge_ms": float64(churn.HealConverge) / float64(time.Millisecond),
			"syncs":            churn.SyncsUsed,
		},
	}
	// The 256-node fleet exists only under virtual time: its staggered
	// bootstrap paces out minutes of scenario time.
	if clk != nil && !quick {
		scale, err := experiments.RunE12Scale(clk, 256, 2, 256)
		if err != nil {
			return nil, "", err
		}
		fmt.Printf("scale: %d nodes boot-converged in %v; steady %.0f pkts/period; fresh offer in %v\n",
			scale.Nodes, scale.BootConverge.Round(time.Second),
			scale.SteadyPacketsPerPeriod, scale.Converge.Round(time.Millisecond))
		metrics["scale"] = map[string]any{
			"nodes": scale.Nodes, "boot_converge_ms": float64(scale.BootConverge) / float64(time.Millisecond),
			"steady_packets_per_period": scale.SteadyPacketsPerPeriod,
			"converge_us":               us(scale.Converge),
		}
	}
	return metrics, snapText, nil
}

func runE13(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E13 — priority-aware egress: critical alarms vs bulk transfer on a 1 Mb/s link")
	fileBytes := 1 << 20
	if quick {
		fileBytes = 192 * 1024
	}
	const linkBPS, alarmHz = 125_000, 50
	fmt.Printf("%dKB transfer UAV→GS over a %d B/s air-to-ground link, %dHz critical alarms\n",
		fileBytes/1024, linkBPS, alarmHz)
	fmt.Println("flood: bulk unshaped — alarms queue behind the chunk backlog at the link")
	fmt.Println("shaped: egress bulk lane paced at 92% of line rate, strict-priority drain")
	res, err := experiments.RunE13(clk, fileBytes, linkBPS, alarmHz, 13)
	if err != nil {
		return nil, "", err
	}
	row := func(name string, h interface {
		Percentile(float64) time.Duration
		Count() uint64
	}, lost, sent int, transfer time.Duration, goodput float64) {
		tr, gp, util := "-", "-", "-"
		if transfer > 0 {
			tr = transfer.Round(time.Millisecond).String()
			gp = fmt.Sprintf("%.0f", goodput/1024)
			util = fmt.Sprintf("%.0f%%", 100*goodput/float64(linkBPS))
		}
		fmt.Printf("%-10s %12v %12v %9s %12s %9s %7s\n",
			name,
			h.Percentile(50).Round(time.Microsecond),
			h.Percentile(99).Round(time.Microsecond),
			fmt.Sprintf("%d/%d", lost, sent),
			tr, gp, util)
	}
	fmt.Printf("%-10s %12s %12s %9s %12s %9s %7s\n",
		"mode", "alarm p50", "alarm p99", "lost", "transfer", "KB/s", "util")
	row("unloaded", res.Unloaded, 0, int(res.Unloaded.Count()), 0, 0)
	row("flood", res.Flood, res.FloodLost, res.FloodSent, res.FloodTransfer, res.FloodGoodput)
	row("shaped", res.Shaped, res.ShapedLost, res.ShapedSent, res.ShapedTransfer, res.ShapedGoodput)
	fmt.Printf("inversion: flood alarm p99 is %.0fx unloaded; shaped is %.1fx (bulk dropped by egress: %d, frames coalesced: %d)\n",
		float64(res.Flood.Percentile(99))/float64(res.Unloaded.Percentile(99)),
		float64(res.Shaped.Percentile(99))/float64(res.Unloaded.Percentile(99)),
		res.ShapedDropped, res.ShapedCoalesced)
	return map[string]any{
		"unloaded_p99_us": us(res.Unloaded.Percentile(99)),
		"flood_p99_us":    us(res.Flood.Percentile(99)),
		"shaped_p99_us":   us(res.Shaped.Percentile(99)),
		"flood_lost":      res.FloodLost, "shaped_lost": res.ShapedLost,
		"shaped_goodput_bps": res.ShapedGoodput,
		"shaped_dropped":     res.ShapedDropped,
	}, res.MetricsText, nil
}

func runE14(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E14 — multi-bearer link plane: WiFi→radio handover under blackout")
	fileBytes := 256 * 1024
	blackoutAfter := 800 * time.Millisecond
	if quick {
		fileBytes = 96 * 1024
		blackoutAfter = 400 * time.Millisecond
	}
	res, err := experiments.RunE14(clk, fileBytes, blackoutAfter, 14)
	if err != nil {
		return nil, "", err
	}
	fmt.Printf("%dKB transfer UAV→GS; wifi %d B/s (shaped %d) + radio %d B/s (shaped %d); %dHz critical alarms\n",
		res.FileBytes/1024, res.WifiBPS, res.WifiShapedBPS, res.RadioBPS, res.RadioShaped, res.AlarmHz)
	fmt.Printf("policy: critical pins to the robust radio, bulk rides the fat wifi; wifi blacks out %v into the transfer\n",
		res.BlackoutAfter)
	fmt.Printf("%-14s %12s %12s %9s\n", "alarms", "p50", "p99", "lost")
	fmt.Printf("%-14s %12v %12v %9s\n", "unloaded",
		res.Unloaded.Percentile(50).Round(time.Microsecond),
		res.Unloaded.Percentile(99).Round(time.Microsecond),
		fmt.Sprintf("0/%d", res.Unloaded.Count()))
	fmt.Printf("%-14s %12v %12v %9s\n", "loaded+blackout",
		res.Multi.Percentile(50).Round(time.Microsecond),
		res.Multi.Percentile(99).Round(time.Microsecond),
		fmt.Sprintf("%d/%d", res.MultiLost, res.MultiSent))
	fmt.Printf("handover: wifi declared down %v after blackout; transfer completed in %v\n",
		res.HandoverDetect.Round(time.Millisecond), res.Transfer.Round(time.Millisecond))
	fmt.Printf("wire split UAV→GS: wifi %dKB, radio %dKB; bulk recovered to %.0f B/s = %.0f%% of the radio's shaped rate\n",
		res.WifiBytes/1024, res.RadioBytes/1024, res.RecoveredBPS, 100*res.RecoveredBPS/float64(res.RadioShaped))
	fmt.Printf("single-bearer baseline: %d of %d alarms lost across a %v wifi blackout (no second link to fail to)\n",
		res.SingleLost, res.SingleSent, res.SingleBlackout)
	return map[string]any{
		"multi_lost": res.MultiLost, "multi_sent": res.MultiSent,
		"multi_p99_us":        us(res.Multi.Percentile(99)),
		"handover_detect_ms":  float64(res.HandoverDetect) / float64(time.Millisecond),
		"recovered_bps":       res.RecoveredBPS,
		"wifi_bytes":          res.WifiBytes,
		"radio_bytes":         res.RadioBytes,
		"single_lost":         res.SingleLost,
		"single_sent":         res.SingleSent,
		"transfer_ms":         float64(res.Transfer) / float64(time.Millisecond),
		"single_blackout_sec": res.SingleBlackout.Seconds(),
	}, res.MetricsText, nil
}

func runE15(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E15 — zero-allocation wire path: pooled encode/decode and batch syscalls")
	samples := 400
	includeUDP := true
	if quick {
		samples = 100
		includeUDP = false
	}
	res, err := experiments.RunE15(clk, samples, includeUDP, 15)
	if err != nil {
		return nil, "", err
	}
	// Flat float metrics only: the baseline guard replays this record and
	// parses Metrics as map[string]float64.
	metrics := map[string]float64{}
	fmt.Printf("%-8s %10s %12s %14s %12s %14s\n",
		"size", "B/frame", "pooled a/f", "pooled Mf/s", "legacy a/f", "legacy Mf/s")
	for _, c := range res.Codec {
		fmt.Printf("%-8s %10.1f %12.3f %14.2f %12.3f %14.2f\n",
			c.Name, c.WireBytesPerFrame,
			c.PooledAllocsPerFrame, c.PooledFramesPerSec/1e6,
			c.LegacyAllocsPerFrame, c.LegacyFramesPerSec/1e6)
		metrics["codec_"+c.Name+"_wire_b"] = c.WireBytesPerFrame
		metrics["codec_"+c.Name+"_pooled_allocs"] = c.PooledAllocsPerFrame
		metrics["codec_"+c.Name+"_legacy_allocs"] = c.LegacyAllocsPerFrame
		metrics["codec_"+c.Name+"_pooled_fps"] = c.PooledFramesPerSec
		metrics["codec_"+c.Name+"_legacy_fps"] = c.LegacyFramesPerSec
	}
	ns := res.Netsim
	fmt.Printf("netsim: %d/%d samples delivered, %d packets %d bytes on the wire (%.1f B/sample)\n",
		ns.Delivered, ns.Samples, ns.WirePackets, ns.WireBytes, ns.BytesPerSample)
	metrics["netsim_samples"] = float64(ns.Samples)
	metrics["netsim_delivered"] = float64(ns.Delivered)
	metrics["netsim_wire_packets"] = float64(ns.WirePackets)
	metrics["netsim_wire_bytes"] = float64(ns.WireBytes)
	metrics["netsim_bytes_per_sample"] = ns.BytesPerSample
	if res.UDPSkipped != "" {
		fmt.Printf("udp loopback: skipped (%s)\n", res.UDPSkipped)
	}
	for _, u := range res.UDP {
		fmt.Printf("udp %-10s %5dB: %7.0f kframes/s pushed (%.0f MB/s), %d/%d kept by the reader\n",
			u.Mode, u.PayloadBytes, u.FramesPerSec/1e3, u.MBPerSec, u.Delivered, u.Sent)
		key := fmt.Sprintf("udp_%s_%db", u.Mode, u.PayloadBytes)
		metrics[key+"_fps"] = u.FramesPerSec
		metrics[key+"_delivered"] = float64(u.Delivered)
	}
	out := make(map[string]any, len(metrics))
	for k, v := range metrics {
		out[k] = v
	}
	return out, res.MetricsText, nil
}

func runE16(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E16 — ground gateway: encode-once fan-out to external clients (shared subs, LVC)")
	counts := []int{1000, 10_000, 100_000}
	samples := 20
	if quick {
		counts = []int{500, 5000}
		samples = 10
	}
	res, err := experiments.RunE16(clk, counts, samples, 16)
	if err != nil {
		return nil, "", err
	}
	// Flat float metrics only: the baseline guard replays this record and
	// parses Metrics as map[string]float64.
	metrics := map[string]float64{}
	fmt.Printf("%-10s %10s %12s %12s %14s %14s\n",
		"clients", "delivered", "air pkts", "air KB", "air B/sample", "client MB")
	for _, pt := range res.Sweep {
		fmt.Printf("%-10d %10d %12d %12.1f %14.1f %14.2f\n",
			pt.Clients, pt.Delivered, pt.AirPackets, float64(pt.AirBytes)/1024,
			pt.AirBytesPerSample, float64(pt.ClientBytes)/(1<<20))
		p := fmt.Sprintf("sweep_%d_", pt.Clients)
		metrics[p+"clients"] = float64(pt.Clients)
		metrics[p+"samples"] = float64(pt.Samples)
		metrics[p+"delivered"] = float64(pt.Delivered)
		metrics[p+"air_packets"] = float64(pt.AirPackets)
		metrics[p+"air_bytes"] = float64(pt.AirBytes)
		metrics[p+"air_bytes_per_sample"] = pt.AirBytesPerSample
		metrics[p+"client_bytes"] = float64(pt.ClientBytes)
	}
	fmt.Printf("air flatness (largest/smallest B/sample): %.2f — one fabric subscription feeds every audience size\n",
		res.AirFlatnessRatio)
	a := res.Alloc
	fmt.Printf("allocs/sample: %.1f @ %d clients, %.1f @ %d clients — marginal %.4f per extra client\n",
		a.SmallPerSample, a.SmallClients, a.BigPerSample, a.BigClients, a.PerClientMarginal)
	s := res.Slow
	fmt.Printf("slow consumers: %d/%d stalled clients evicted; healthy p99 %.2fms with stalls vs %.2fms clean (%d healthy, %d samples)\n",
		s.Evicted, s.StalledClients, s.StalledP99Ms, s.BaselineP99Ms, s.HealthyClients, s.Samples)
	metrics["air_flatness_ratio"] = res.AirFlatnessRatio
	metrics["alloc_small_clients"] = float64(a.SmallClients)
	metrics["alloc_big_clients"] = float64(a.BigClients)
	metrics["alloc_small_per_sample"] = a.SmallPerSample
	metrics["alloc_big_per_sample"] = a.BigPerSample
	metrics["alloc_per_client_marginal"] = a.PerClientMarginal
	metrics["slow_healthy"] = float64(s.HealthyClients)
	metrics["slow_stalled"] = float64(s.StalledClients)
	metrics["slow_samples"] = float64(s.Samples)
	metrics["slow_evicted"] = float64(s.Evicted)
	metrics["slow_baseline_p50_ms"] = s.BaselineP50Ms
	metrics["slow_baseline_p99_ms"] = s.BaselineP99Ms
	metrics["slow_stalled_p50_ms"] = s.StalledP50Ms
	metrics["slow_stalled_p99_ms"] = s.StalledP99Ms
	out := make(map[string]any, len(metrics))
	for k, v := range metrics {
		out[k] = v
	}
	return out, res.MetricsText, nil
}

func runE17(clk clock.Clock, quick bool) (map[string]any, string, error) {
	header("E17 — sharded ingress: multi-sender ingest scaling and receive-path allocations")
	samples := 300
	scalingDur := 200 * time.Millisecond
	if quick {
		samples = 80
		scalingDur = 0 // skip the wall-clock flood on smoke runs
	}
	res, err := experiments.RunE17(clk, samples, scalingDur, 17)
	if err != nil {
		return nil, "", err
	}
	// Flat float metrics only: the baseline guard replays this record and
	// parses Metrics as map[string]float64.
	metrics := map[string]float64{}
	a := res.Alloc
	fmt.Printf("allocs/frame through the full receive path: owned %.3f, pooled copy %.3f, ack-required %.3f\n",
		a.OwnedPerFrame, a.CopyPerFrame, a.AckedPerFrame)
	metrics["alloc_owned_per_frame"] = a.OwnedPerFrame
	metrics["alloc_copy_per_frame"] = a.CopyPerFrame
	metrics["alloc_acked_per_frame"] = a.AckedPerFrame
	if len(res.Scaling) > 0 {
		fmt.Printf("%-8s %10s %12s %12s %14s\n", "shards", "senders", "delivered", "dropped", "Mframes/s")
		for _, pt := range res.Scaling {
			fmt.Printf("%-8d %10d %12d %12d %14.2f\n",
				pt.Shards, pt.Senders, pt.Delivered, pt.Dropped, pt.FramesPerSec/1e6)
			p := fmt.Sprintf("scaling_%d_", pt.Shards)
			metrics[p+"delivered"] = float64(pt.Delivered)
			metrics[p+"dropped"] = float64(pt.Dropped)
			metrics[p+"fps"] = pt.FramesPerSec
		}
		fmt.Printf("scaling ratio 4/1 shards: %.2fx, 8/1 shards: %.2fx (host has %d cores)\n",
			res.ScalingRatio(4, 1), res.ScalingRatio(8, 1), runtime.GOMAXPROCS(0))
		metrics["scaling_ratio_4_over_1"] = res.ScalingRatio(4, 1)
		metrics["scaling_ratio_8_over_1"] = res.ScalingRatio(8, 1)
	}
	ns := res.Netsim
	fmt.Printf("netsim: %d senders x %d samples into a 4-shard subscriber, %d delivered, %d packets %d bytes on the wire\n",
		ns.Senders, ns.Samples, ns.Delivered, ns.WirePackets, ns.WireBytes)
	metrics["netsim_senders"] = float64(ns.Senders)
	metrics["netsim_samples"] = float64(ns.Samples)
	metrics["netsim_delivered"] = float64(ns.Delivered)
	metrics["netsim_wire_packets"] = float64(ns.WirePackets)
	metrics["netsim_wire_bytes"] = float64(ns.WireBytes)
	out := make(map[string]any, len(metrics))
	for k, v := range metrics {
		out[k] = v
	}
	return out, res.MetricsText, nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
