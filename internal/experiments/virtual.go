package experiments

import (
	"time"

	"uavmw/internal/clock"
)

// Elapsed reports how long an experiment ran on its own clock and on the
// wall: under a Virtual clock the two diverge by the speedup factor (a
// multi-second scenario executes in wall milliseconds).
type Elapsed struct {
	Virtual time.Duration // experiment time, on the injected clock
	Wall    time.Duration // host time actually spent
}

// Speedup is Virtual/Wall (0 when wall time was immeasurably small).
func (e Elapsed) Speedup() float64 {
	if e.Wall <= 0 {
		return 0
	}
	return float64(e.Virtual) / float64(e.Wall)
}

// RunVirtual executes fn against a fresh discrete-event clock: fn runs on
// a goroutine registered with the clock (so its sleeps and waits drive
// event time) and receives the clock to thread into the harness under
// test. Same fn, same seeds, same event order — virtual runs are
// deterministic and complete at whatever rate the host can pop events.
func RunVirtual(fn func(clk clock.Clock) error) (Elapsed, error) {
	v := clock.NewVirtual()
	startV := v.Now()
	startWall := time.Now()
	var err error
	v.Run(func() { err = fn(v) })
	return Elapsed{Virtual: v.Now().Sub(startV), Wall: time.Since(startWall)}, err
}
