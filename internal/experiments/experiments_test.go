package experiments

import (
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/qos"
)

// The full sweeps run in cmd/uavbench; these are smoke tests proving each
// harness builds its deployment, measures, and tears down cleanly at tiny
// parameters. E3 and E11–E14 run under a Virtual clock — the same way
// uavbench runs them by default — so they double as regressions for the
// virtual-time plane: identical protocol semantics at a fraction of the
// wall time.

func TestRunE3ShapesMatchDeliveryModes(t *testing.T) {
	var res *E3Result
	_, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE3(clk, 2, 10)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subscribers != 2 || res.Samples != 10 {
		t.Fatalf("echoed config = %d/%d", res.Subscribers, res.Samples)
	}
	if res.McastBytes == 0 || res.UcastBytes == 0 {
		t.Fatalf("no wire traffic: mcast=%d ucast=%d", res.McastBytes, res.UcastBytes)
	}
	// The tentpole property: group addressing sends each occurrence once,
	// unicast once per subscriber (plus acks), so at 2 subscribers the
	// unicast byte count must exceed multicast.
	if res.UcastBytes <= res.McastBytes {
		t.Errorf("unicast %d bytes <= multicast %d bytes", res.UcastBytes, res.McastBytes)
	}
}

func TestRunE8ReportsEveryPriorityClass(t *testing.T) {
	res, err := RunE8(2, 50, 5, 20*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 || res.Load != 50 {
		t.Fatalf("echoed config = %d/%d", res.Workers, res.Load)
	}
	for _, pr := range qos.Levels() {
		h := res.Priorities[pr]
		if h == nil {
			t.Fatalf("priority %v missing", pr)
		}
		if h.Count() == 0 {
			t.Errorf("priority %v observed no jobs", pr)
		}
	}
}

func TestRunE11HedgingRescuesStalledPin(t *testing.T) {
	// The acceptance property of the concurrent RPC engine: when the
	// statically-pinned provider stalls past the deadline, hedged calls
	// complete within the QoS deadline via the redundant provider, where
	// the unhedged baseline times out.
	const slow = 400 * time.Millisecond
	var unhedged, hedged *E11Result
	_, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		unhedged, err = RunE11(clk, 2, 3, false, 0, slow, 11)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if unhedged.OK != 0 || unhedged.Failed != 6 {
		t.Errorf("unhedged against stalled pin: ok=%d failed=%d, want 0/6",
			unhedged.OK, unhedged.Failed)
	}
	_, err = RunVirtual(func(clk clock.Clock) error {
		var err error
		hedged, err = RunE11(clk, 2, 3, true, 0, slow, 11)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if hedged.OK != 6 || hedged.Failed != 0 {
		t.Fatalf("hedged: ok=%d failed=%d, want 6/0", hedged.OK, hedged.Failed)
	}
	if hedged.Hedges == 0 {
		t.Error("no hedges recorded")
	}
	if p99 := hedged.Latency.Percentile(99); p99 >= hedged.Deadline {
		t.Errorf("hedged p99 %v not within the %v deadline", p99, hedged.Deadline)
	}
}

func TestRunE12DeltaDiscoveryBeatsFullBroadcast(t *testing.T) {
	var res *E12Result
	_, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE12(clk, 4, 25, 5)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyBytesPerPeriod <= 0 {
		t.Fatal("no steady-state discovery traffic measured")
	}
	// The tentpole property: steady-state discovery is constant-size
	// digests, far cheaper than re-broadcasting 4×25 records per period.
	if res.BaselineBytesPerPeriod < 2*res.SteadyBytesPerPeriod {
		t.Errorf("full-state baseline %.0f B/period not clearly above steady %.0f B/period",
			res.BaselineBytesPerPeriod, res.SteadyBytesPerPeriod)
	}
	// A new offer must be resolvable well under one announce period.
	if res.Converge >= res.AnnouncePeriod {
		t.Errorf("new offer converged in %v, want under the %v period", res.Converge, res.AnnouncePeriod)
	}
}

func TestRunE12ChurnHealsViaSync(t *testing.T) {
	var res *E12ChurnResult
	_, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE12Churn(clk, 3, 10, 20, 6)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncsUsed == 0 {
		t.Error("heal did not use anti-entropy sync")
	}
	if res.HealConverge > 10*res.AnnouncePeriod {
		t.Errorf("heal took %v, want within ~10 beacon periods", res.HealConverge)
	}
}

func TestRunE5LocalBypassIsCheaper(t *testing.T) {
	res, err := RunE5(32<<10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalFetch <= 0 || res.RemoteFetch <= 0 {
		t.Fatalf("timings = %v / %v", res.LocalFetch, res.RemoteFetch)
	}
	if res.LocalFetch >= res.RemoteFetch {
		t.Errorf("local fetch %v not cheaper than remote %v", res.LocalFetch, res.RemoteFetch)
	}
	if res.LocalVar <= 0 || res.RemoteVar <= 0 {
		t.Errorf("variable timings = %v / %v", res.LocalVar, res.RemoteVar)
	}
}

// TestRunE13EgressFixesPriorityInversion pins the tentpole property: on a
// constrained link a concurrent bulk transfer balloons critical-alarm
// latency when bulk is unshaped, and the egress plane (strict-priority
// lanes + paced bulk) keeps it bounded while bulk throughput stays near
// line rate. Margins are generous — CI hosts are noisy — the shape is what
// matters: flood ≫ unloaded, shaped ≈ unloaded.
func TestRunE13EgressFixesPriorityInversion(t *testing.T) {
	const linkBPS = 125_000
	var res *E13Result
	_, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE13(clk, 64*1024, linkBPS, 50, 7)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	unloaded := res.Unloaded.Percentile(99)
	flood := res.Flood.Percentile(99)
	shaped := res.Shaped.Percentile(99)
	if unloaded <= 0 || res.Unloaded.Count() == 0 {
		t.Fatal("no unloaded baseline measured")
	}
	if flood < 3*unloaded {
		t.Errorf("flood alarm p99 %v not clearly above unloaded %v: no inversion to fix?", flood, unloaded)
	}
	if shaped > flood/2 {
		t.Errorf("shaped alarm p99 %v not clearly below flood %v", shaped, flood)
	}
	if shaped > 5*unloaded {
		t.Errorf("shaped alarm p99 %v not bounded near unloaded %v", shaped, unloaded)
	}
	if res.ShapedLost > 0 {
		t.Errorf("%d of %d shaped alarms lost", res.ShapedLost, res.ShapedSent)
	}
	// Bulk must still move: within ~2.5x of line rate even on a tiny file
	// where setup latency dominates (the uavbench sweep measures 1MB).
	if res.ShapedGoodput < float64(linkBPS)/2.5 {
		t.Errorf("shaped goodput %.0f B/s too far below the %d B/s line", res.ShapedGoodput, linkBPS)
	}
	if res.ShapedDropped != 0 {
		t.Errorf("pacing should keep the bulk lane shallow, egress dropped %d chunks", res.ShapedDropped)
	}
}

// TestRunE14BearerHandoverKeepsCriticalAlive pins the bearer-plane
// acceptance properties: with the primary (wifi) bearer blacked out
// mid-transfer, critical alarms lose zero events and hold p99 within 3x
// the unloaded baseline; bulk degrades to >=80% of the surviving radio's
// shaped rate; the blackout is detected within a few failure deadlines;
// and the single-bearer baseline loses alarms for the bulk of the
// blackout.
func TestRunE14BearerHandoverKeepsCriticalAlive(t *testing.T) {
	var res *E14Result
	el, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE14(clk, 96*1024, 400*time.Millisecond, 14)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("e14 virtual: %v of scenario time in %v of wall time (%.0fx)",
		el.Virtual, el.Wall, el.Speedup())
	if res.Unloaded.Count() == 0 {
		t.Fatal("no unloaded baseline measured")
	}
	if res.MultiLost != 0 {
		t.Errorf("%d of %d multi-bearer alarms lost across the blackout", res.MultiLost, res.MultiSent)
	}
	unloaded := res.Unloaded.Percentile(99)
	loaded := res.Multi.Percentile(99)
	if loaded > 3*unloaded {
		t.Errorf("loaded alarm p99 %v above 3x unloaded %v", loaded, unloaded)
	}
	if res.HandoverDetect > time.Second {
		t.Errorf("handover detection took %v, want within ~a few failure deadlines", res.HandoverDetect)
	}
	if min := 0.8 * float64(res.RadioShaped); res.RecoveredBPS < min {
		t.Errorf("recovered bulk rate %.0f B/s below 80%% of the radio's shaped %d B/s", res.RecoveredBPS, res.RadioShaped)
	}
	if res.WifiBytes == 0 || res.RadioBytes == 0 {
		t.Error("traffic should have crossed both bearers")
	}
	// The baseline has no second link: a blackout longer than the ARQ
	// budget must lose a substantial share of the alarms published during
	// it (~75 of 120 at 50Hz over 1.5s in practice).
	if res.SingleLost < res.SingleSent/4 {
		t.Errorf("single-bearer baseline lost %d of %d alarms; expected the blackout to cost far more", res.SingleLost, res.SingleSent)
	}
}
