package experiments

import (
	"testing"
	"time"

	"uavmw/internal/qos"
)

// The full sweeps run in cmd/uavbench; these are smoke tests proving each
// harness builds its deployment, measures, and tears down cleanly at tiny
// parameters.

func TestRunE3ShapesMatchDeliveryModes(t *testing.T) {
	res, err := RunE3(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subscribers != 2 || res.Samples != 10 {
		t.Fatalf("echoed config = %d/%d", res.Subscribers, res.Samples)
	}
	if res.McastBytes == 0 || res.UcastBytes == 0 {
		t.Fatalf("no wire traffic: mcast=%d ucast=%d", res.McastBytes, res.UcastBytes)
	}
	// The tentpole property: group addressing sends each occurrence once,
	// unicast once per subscriber (plus acks), so at 2 subscribers the
	// unicast byte count must exceed multicast.
	if res.UcastBytes <= res.McastBytes {
		t.Errorf("unicast %d bytes <= multicast %d bytes", res.UcastBytes, res.McastBytes)
	}
}

func TestRunE8ReportsEveryPriorityClass(t *testing.T) {
	res, err := RunE8(2, 50, 5, 20*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 || res.Load != 50 {
		t.Fatalf("echoed config = %d/%d", res.Workers, res.Load)
	}
	for _, pr := range qos.Levels() {
		h := res.Priorities[pr]
		if h == nil {
			t.Fatalf("priority %v missing", pr)
		}
		if h.Count() == 0 {
			t.Errorf("priority %v observed no jobs", pr)
		}
	}
}

func TestRunE5LocalBypassIsCheaper(t *testing.T) {
	res, err := RunE5(32<<10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalFetch <= 0 || res.RemoteFetch <= 0 {
		t.Fatalf("timings = %v / %v", res.LocalFetch, res.RemoteFetch)
	}
	if res.LocalFetch >= res.RemoteFetch {
		t.Errorf("local fetch %v not cheaper than remote %v", res.LocalFetch, res.RemoteFetch)
	}
	if res.LocalVar <= 0 || res.RemoteVar <= 0 {
		t.Errorf("variable timings = %v / %v", res.LocalVar, res.RemoteVar)
	}
}
