package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/egress"
	"uavmw/internal/filetransfer"
	"uavmw/internal/metrics"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// E13 measures transmit-side priority inversion on a bandwidth-constrained
// link and its fix by the egress plane. One UAV node runs a bulk file
// transfer to a ground station over a 1 Mb/s air-to-ground link while
// publishing PriorityCritical alarms at a fixed rate:
//
//   - flood mode (bulk unshaped) hands the whole file to the link at once;
//     every alarm then queues behind seconds of chunk backlog — the
//     receiver-side priority scheduler never gets a chance to matter.
//   - shaped mode paces the transfer just under the link rate
//     (qos.TransferQoS.RateBPS + the egress plane's bulk token bucket), so
//     the link queue stays ~one chunk deep and alarms, draining from the
//     strict-priority critical lane, stay bounded near the unloaded
//     latency while bulk still moves at close to line rate.
type E13Result struct {
	LinkBPS   int64
	FileBytes int
	AlarmHz   int

	// Unloaded is alarm latency with no transfer running (shaped
	// topology; the modes share it).
	Unloaded *metrics.Histogram
	// Flood / Shaped are alarm latencies concurrent with the transfer.
	Flood, Shaped *metrics.Histogram
	// FloodLost / ShapedLost count alarms published during the transfer
	// that never reached the subscriber (dropped subscription windows,
	// exhausted retries).
	FloodLost, ShapedLost int
	// FloodSent / ShapedSent count alarms published during the transfer.
	FloodSent, ShapedSent int

	// Transfer completion times and goodput (file bytes / completion).
	FloodTransfer, ShapedTransfer time.Duration
	FloodGoodput, ShapedGoodput   float64 // bytes/second

	// ShapedDropped counts bulk frames shed by the egress drop-oldest
	// policy during the shaped run (pacing should keep it at zero).
	ShapedDropped uint64
	// ShapedCoalesced counts frames that shared a batch datagram.
	ShapedCoalesced uint64

	// MetricsText is the UAV node's observability snapshot at the end of
	// the shaped run (metrics.Snapshot.Text).
	MetricsText string
}

// alarmRecorder correlates published alarms with their arrival at the
// subscriber. Alarms carry a 1-based sequence as a uint32 payload.
type alarmRecorder struct {
	mu       sync.Mutex
	sentAt   []time.Time
	arrivals []time.Time
}

func (r *alarmRecorder) nextSeq(now time.Time) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sentAt = append(r.sentAt, now)
	r.arrivals = append(r.arrivals, time.Time{})
	return uint32(len(r.sentAt))
}

func (r *alarmRecorder) arrived(seq uint32, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i := int(seq) - 1; i >= 0 && i < len(r.arrivals) && r.arrivals[i].IsZero() {
		r.arrivals[i] = now
	}
}

// collect bins latencies for alarms with 1-based seq in [from, to].
func (r *alarmRecorder) collect(from, to int) (h *metrics.Histogram, lost int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h = &metrics.Histogram{}
	for i := from - 1; i < to && i < len(r.sentAt); i++ {
		if r.arrivals[i].IsZero() {
			lost++
			continue
		}
		h.Observe(r.arrivals[i].Sub(r.sentAt[i]))
	}
	return h, lost
}

func (r *alarmRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sentAt)
}

func (r *alarmRecorder) arrivedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, at := range r.arrivals {
		if !at.IsZero() {
			n++
		}
	}
	return n
}

// RunE13 runs both modes and returns the comparison. alarmHz is the
// critical-alarm publication rate; linkBPS the air-to-ground capacity.
func RunE13(clk clock.Clock, fileBytes int, linkBPS int64, alarmHz int, seed int64) (*E13Result, error) {
	clk = clock.Or(clk)
	res := &E13Result{LinkBPS: linkBPS, FileBytes: fileBytes, AlarmHz: alarmHz}

	// Shaped mode also measures the unloaded baseline (same topology).
	if err := runE13Phase(clk, res, true, seed); err != nil {
		return nil, fmt.Errorf("e13 shaped: %w", err)
	}
	if err := runE13Phase(clk, res, false, seed+1); err != nil {
		return nil, fmt.Errorf("e13 flood: %w", err)
	}
	return res, nil
}

// e13ShapeFraction paces bulk at this fraction of the link rate: just under
// capacity, so the link queue never grows while bulk still nears line rate.
const e13ShapeFraction = 0.92

func runE13Phase(clk clock.Clock, res *E13Result, shaped bool, seed int64) error {
	const latency = 15 * time.Millisecond
	net := netsim.New(netsim.Config{Seed: seed, Latency: latency, Clock: clk})
	defer net.Close()

	// One constrained air-to-ground direction; everything else is fast.
	lc := netsim.InheritLink()
	lc.BandwidthBPS = res.LinkBPS
	net.SetLink("uav", "gs", lc)

	shapedRate := int64(float64(res.LinkBPS) * e13ShapeFraction)
	mk := func(id transport.NodeID, extra ...core.NodeOption) (*core.Node, error) {
		ep, err := net.Node(id)
		if err != nil {
			return nil, err
		}
		opts := []core.NodeOption{
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(100 * time.Millisecond),
			// Under flood the constrained link delays heartbeats by
			// seconds; liveness and the directory must tolerate that.
			core.WithFailureDeadline(60 * time.Second),
			core.WithDirectoryTTL(60 * time.Second),
			core.WithARQ(protocol.WithTimeout(80*time.Millisecond), protocol.WithMaxRetries(8)),
			core.WithFileTransfer(
				filetransfer.WithQueryWindow(3*time.Second),
				filetransfer.WithMaxStrikes(100)),
		}
		opts = append(opts, extra...)
		return core.NewNode(opts...)
	}
	var uavOpts []core.NodeOption
	if shaped {
		uavOpts = append(uavOpts, core.WithEgress(egress.Config{
			BulkRateBPS: shapedRate,
			BulkBurst:   2048, // ≲ two chunks may ever sit ahead of an alarm
		}))
	}
	uav, err := mk("uav", uavOpts...)
	if err != nil {
		return err
	}
	defer func() { _ = uav.Close() }()
	gs, err := mk("gs")
	if err != nil {
		return err
	}
	defer func() { _ = gs.Close() }()

	// Critical alarm topic, UAV → ground station.
	alarmType := presentation.Uint32()
	alarmQoS := qos.EventQoS{Priority: qos.PriorityCritical}
	pub, err := uav.Events().Offer("e13.alarm", "bench", alarmType, alarmQoS)
	if err != nil {
		return err
	}
	rec := &alarmRecorder{}
	if err := waitProviders(clk, gs, kindEvent, "e13.alarm", 1, 5*time.Second); err != nil {
		return err
	}
	if _, err := gs.Events().Subscribe("e13.alarm", alarmType, alarmQoS,
		func(v any, _ transport.NodeID) { rec.arrived(v.(uint32), clk.Now()) }); err != nil {
		return err
	}
	deadline := clk.Now().Add(5 * time.Second)
	for len(pub.Subscribers()) == 0 {
		if clk.Now().After(deadline) {
			return fmt.Errorf("alarm subscriber never registered")
		}
		clk.Sleep(2 * time.Millisecond)
	}

	// publishAlarms fires at alarmHz until stopCh closes, from a goroutine
	// per tick: a flooded link can hold one publish in ARQ for seconds and
	// must not stall the tick cadence.
	publishAlarms := func(stopCh <-chan struct{}, maxDur time.Duration) {
		interval := time.Second / time.Duration(res.AlarmHz)
		ticker := clk.NewTicker(interval)
		defer ticker.Stop()
		stopAt := clk.Now().Add(maxDur)
		var wg sync.WaitGroup
		for ticker.Wait(stopCh) {
			now := clk.Now()
			if now.After(stopAt) {
				break
			}
			seq := rec.nextSeq(now)
			wg.Add(1)
			clock.Go(clk, func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = pub.Publish(ctx, seq) // late/lost alarms are the measurement
			})
		}
		clock.Blocking(clk, wg.Wait)
	}

	// Unloaded baseline (shaped phase only; topology identical).
	if shaped {
		publishAlarms(make(chan struct{}), 1200*time.Millisecond)
		clk.Sleep(4 * latency) // let the tail arrive
		res.Unloaded, _ = rec.collect(1, rec.count())
	}
	loadedFrom := rec.count() + 1

	// The bulk transfer.
	data := make([]byte, res.FileBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	tq := qos.TransferQoS{ChunkSize: 1024}
	if shaped {
		tq.RateBPS = shapedRate
	}
	offer, err := uav.Files().Offer("e13.file", "bench", data, tq)
	if err != nil {
		return err
	}
	defer offer.Close()
	if err := waitProviders(clk, gs, kindFile, "e13.file", 1, 5*time.Second); err != nil {
		return err
	}

	fetchDone := make(chan error, 1)
	var transfer time.Duration
	start := clk.Now()
	clock.Go(clk, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()
		got, _, err := gs.Files().Fetch(ctx, "e13.file", filetransfer.FetchOptions{})
		transfer = clk.Since(start)
		if err == nil && len(got) != res.FileBytes {
			err = fmt.Errorf("short fetch: %d of %d bytes", len(got), res.FileBytes)
		}
		fetchDone <- err
	})

	// Alarms run concurrently until the transfer completes (capped).
	alarmStop := make(chan struct{})
	alarmsDone := make(chan struct{})
	clock.Go(clk, func() {
		defer close(alarmsDone)
		publishAlarms(alarmStop, 60*time.Second)
	})
	var fetchErr error
	clock.Blocking(clk, func() { fetchErr = <-fetchDone })
	if fetchErr != nil {
		close(alarmStop)
		return fetchErr
	}
	close(alarmStop)
	clock.Blocking(clk, func() { <-alarmsDone })
	loadedTo := rec.count()

	// Let stragglers drain: in flood mode alarms can trail the transfer by
	// the remaining link backlog. Wait until arrivals stabilize.
	stableSince := clk.Now()
	last := rec.arrivedCount()
	drainCap := clk.Now().Add(30 * time.Second)
	for clk.Now().Before(drainCap) {
		clk.Sleep(100 * time.Millisecond)
		if n := rec.arrivedCount(); n != last {
			last = n
			stableSince = clk.Now()
			continue
		}
		if clk.Since(stableSince) > time.Second {
			break
		}
	}

	hist, lost := rec.collect(loadedFrom, loadedTo)
	goodput := float64(res.FileBytes) / transfer.Seconds()
	if shaped {
		res.Shaped, res.ShapedLost, res.ShapedSent = hist, lost, loadedTo-loadedFrom+1
		res.ShapedTransfer, res.ShapedGoodput = transfer, goodput
		st := uav.EgressStats()
		res.ShapedDropped = st.Class(qos.PriorityBulk).Dropped
		res.ShapedCoalesced = st.Totals().Coalesced
		res.MetricsText = uav.MetricsSnapshot().Text()
	} else {
		res.Flood, res.FloodLost, res.FloodSent = hist, lost, loadedTo-loadedFrom+1
		res.FloodTransfer, res.FloodGoodput = transfer, goodput
	}
	return nil
}
