package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// E15 quantifies the zero-allocation wire path: the pooled
// encode→egress→transport→decode pipeline against the legacy
// allocate-per-frame one.
//
// Three phases:
//
//   - codec: exact allocs/frame (testing.AllocsPerRun — deterministic) and
//     frames/s for the pooled round trip (bufpool + AppendFrame +
//     DecodeFrameInto + frame pool) vs the legacy one (EncodeFrame +
//     DecodeFrame) at a small payload, an MTU-filling payload, and a
//     16-frame coalesced batch.
//   - netsim: N telemetry samples between two containers over a simulated
//     link under the injected clock — deterministic delivered counts and
//     bytes-per-sample on the wire, exercising the full middleware stack.
//   - udp (optional, report-only): the same frames over real UDP loopback,
//     one syscall per datagram vs sendmmsg batching through
//     transport.BatchSender. Wall-clock rates, host-dependent; skipped
//     gracefully where loopback sockets are unavailable.
type E15Result struct {
	Codec  []E15CodecPoint
	Netsim E15NetsimResult
	UDP    []E15UDPPoint
	// UDPSkipped carries the reason when the loopback phase did not run.
	UDPSkipped string
	// MetricsText is the netsim publisher node's observability snapshot.
	MetricsText string
}

// E15CodecPoint is one payload-size point of the codec phase.
type E15CodecPoint struct {
	Name         string
	PayloadBytes int
	// FramesPerOp is 1 for plain frames, the batch width for the batch
	// point (allocs and rates are normalized per frame).
	FramesPerOp       int
	WireBytesPerFrame float64

	PooledAllocsPerFrame float64
	LegacyAllocsPerFrame float64
	PooledFramesPerSec   float64
	LegacyFramesPerSec   float64
}

// E15NetsimResult is the deterministic end-to-end phase.
type E15NetsimResult struct {
	Samples   int
	Delivered int
	// WirePackets / WireBytes cover the publish window (discovery
	// heartbeats included — they are part of steady-state cost).
	WirePackets, WireBytes uint64
	BytesPerSample         float64
}

// E15UDPPoint is one loopback measurement. FramesPerSec/MBPerSec are
// send-side syscall throughput — the cost sendmmsg batching amortizes; an
// unpaced loopback flood overruns the receive socket buffer, so Delivered
// reports how much of it the reader kept up with, not the wire capacity.
type E15UDPPoint struct {
	Mode         string // "sequential" or "batched"
	PayloadBytes int
	Sent         int
	Delivered    int
	FramesPerSec float64
	MBPerSec     float64
}

const (
	e15BatchWidth   = 16
	e15UDPBatchRun  = 32
	e15SmallPayload = 64
)

// e15Frame builds the canonical test frame for one payload size.
func e15Frame(payload []byte) *protocol.Frame {
	return &protocol.Frame{
		Type:     protocol.MTSample,
		Priority: qos.PriorityNormal,
		Channel:  "e15.telemetry/pos",
		Seq:      7,
		Payload:  payload,
	}
}

// e15MTUPayload returns the payload size at which the encoded frame fills
// protocol.DefaultMTU exactly.
func e15MTUPayload() int {
	return protocol.DefaultMTU - protocol.FrameWireSize(e15Frame(nil))
}

// RunE15 runs the sweep. samples sizes the netsim phase; includeUDP gates
// the loopback phase (baseline replays leave it off — its numbers are
// wall-clock and host-dependent).
func RunE15(clk clock.Clock, samples int, includeUDP bool, seed int64) (*E15Result, error) {
	clk = clock.Or(clk)
	res := &E15Result{}

	// Codec phase first: no nodes or simulated networks exist yet, so
	// AllocsPerRun sees only the measured path.
	res.Codec = append(res.Codec,
		e15CodecPoint("small", e15SmallPayload),
		e15CodecPoint("mtu", e15MTUPayload()),
		e15BatchPoint())

	if err := e15Netsim(clk, res, samples, seed); err != nil {
		return nil, fmt.Errorf("e15 netsim: %w", err)
	}

	if includeUDP {
		if err := e15UDP(res); err != nil {
			// Loopback sockets can be unavailable (sandboxes, exotic
			// CI); the phase is report-only, so record and move on.
			res.UDPSkipped = err.Error()
			res.UDP = nil
		}
	} else {
		res.UDPSkipped = "disabled"
	}
	return res, nil
}

// e15CodecPoint measures one single-frame payload size.
func e15CodecPoint(name string, payload int) E15CodecPoint {
	src := e15Frame(make([]byte, payload))
	wire := protocol.FrameWireSize(src)

	pooled := func() {
		buf, err := protocol.AppendFrame(bufpool.Get(wire), src)
		if err != nil {
			panic(err)
		}
		f := protocol.GetFrame()
		if err := protocol.DecodeFrameInto(f, buf); err != nil {
			panic(err)
		}
		protocol.PutFrame(f)
		bufpool.Put(buf)
	}
	legacy := func() {
		raw, err := protocol.EncodeFrame(src)
		if err != nil {
			panic(err)
		}
		if _, err := protocol.DecodeFrame(raw); err != nil {
			panic(err)
		}
	}
	pt := E15CodecPoint{
		Name: name, PayloadBytes: payload, FramesPerOp: 1,
		WireBytesPerFrame: float64(wire),
	}
	pt.PooledAllocsPerFrame, pt.PooledFramesPerSec = e15Measure(pooled, 1)
	pt.LegacyAllocsPerFrame, pt.LegacyFramesPerSec = e15Measure(legacy, 1)
	return pt
}

// e15BatchPoint measures the coalesced path: 16 small frames appended into
// one pooled wire buffer (the egress drain shape) and split back out.
func e15BatchPoint() E15CodecPoint {
	frames := make([][]byte, e15BatchWidth)
	size := protocol.BatchOverhead(e15BatchWidth)
	for i := range frames {
		raw, err := protocol.EncodeFrame(e15Frame(make([]byte, e15SmallPayload)))
		if err != nil {
			panic(err)
		}
		frames[i] = raw
		size += len(raw)
	}
	pooled := func() {
		buf, err := protocol.AppendBatch(bufpool.Get(size), frames, qos.PriorityNormal)
		if err != nil {
			panic(err)
		}
		outer := protocol.GetFrame()
		if err := protocol.DecodeFrameInto(outer, buf); err != nil {
			panic(err)
		}
		// DecodeBatch's entry slice is the remaining per-batch (not
		// per-frame) allocation on the receive side.
		inner, err := protocol.DecodeBatch(outer.Payload)
		if err != nil {
			panic(err)
		}
		f := protocol.GetFrame()
		for _, raw := range inner {
			if err := protocol.DecodeFrameInto(f, raw); err != nil {
				panic(err)
			}
		}
		protocol.PutFrame(f)
		protocol.PutFrame(outer)
		bufpool.Put(buf)
	}
	legacy := func() {
		buf, err := protocol.EncodeBatch(frames, qos.PriorityNormal)
		if err != nil {
			panic(err)
		}
		outer, err := protocol.DecodeFrame(buf)
		if err != nil {
			panic(err)
		}
		inner, err := protocol.DecodeBatch(outer.Payload)
		if err != nil {
			panic(err)
		}
		for _, raw := range inner {
			if _, err := protocol.DecodeFrame(raw); err != nil {
				panic(err)
			}
		}
	}
	pt := E15CodecPoint{
		Name: "batch", PayloadBytes: e15SmallPayload, FramesPerOp: e15BatchWidth,
		WireBytesPerFrame: float64(size) / e15BatchWidth,
	}
	pt.PooledAllocsPerFrame, pt.PooledFramesPerSec = e15Measure(pooled, e15BatchWidth)
	pt.LegacyAllocsPerFrame, pt.LegacyFramesPerSec = e15Measure(legacy, e15BatchWidth)
	return pt
}

// e15Measure returns (allocs/frame, frames/s) for op, which processes
// framesPerOp frames. Alloc counts come from testing.AllocsPerRun and are
// exact for a deterministic op; the rate is wall-clock.
func e15Measure(op func(), framesPerOp int) (allocsPerFrame, framesPerSec float64) {
	// Warm pools and intern tables out of the measurement.
	for i := 0; i < 8; i++ {
		op()
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(200, op)

	const minOps, minDur = 2000, 20 * time.Millisecond
	ops := 0
	start := time.Now()
	for elapsed := time.Duration(0); ops < minOps || elapsed < minDur; {
		for i := 0; i < 500; i++ {
			op()
		}
		ops += 500
		elapsed = time.Since(start)
	}
	rate := float64(ops*framesPerOp) / time.Since(start).Seconds()
	return allocs / float64(framesPerOp), rate
}

// e15Netsim publishes `samples` telemetry samples UAV→GS over a simulated
// link and counts deliveries and wire cost. Deterministic under the
// virtual clock for a given seed.
func e15Netsim(clk clock.Clock, res *E15Result, samples int, seed int64) error {
	net := netsim.New(netsim.Config{Seed: seed, Latency: 2 * time.Millisecond, Clock: clk})
	defer net.Close()

	mk := func(id transport.NodeID) (*core.Node, error) {
		ep, err := net.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(100*time.Millisecond),
		)
	}
	uav, err := mk("uav")
	if err != nil {
		return err
	}
	defer func() { _ = uav.Close() }()
	gs, err := mk("gs")
	if err != nil {
		return err
	}
	defer func() { _ = gs.Close() }()

	typ := presentation.Uint32()
	pub, err := uav.Variables().Offer("e15.pos", "bench", typ, qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		return err
	}
	if err := waitProviders(clk, gs, naming.KindVariable, "e15.pos", 1, 5*time.Second); err != nil {
		return err
	}
	var delivered atomic.Int64
	sub, err := gs.Variables().Subscribe("e15.pos", typ, variables.SubscribeOptions{
		OnSample: func(any, time.Time) { delivered.Add(1) },
	})
	if err != nil {
		return err
	}
	defer sub.Close()

	// Wait for the group subscription to land (first sample observed).
	deadline := clk.Now().Add(5 * time.Second)
	for delivered.Load() == 0 {
		if clk.Now().After(deadline) {
			return fmt.Errorf("subscriber never received a sample")
		}
		if err := pub.Publish(uint32(0)); err != nil {
			return err
		}
		clk.Sleep(5 * time.Millisecond)
	}

	startPkts, startBytes, _ := net.WireStats()
	before := delivered.Load()
	for i := 0; i < samples; i++ {
		if err := pub.Publish(uint32(i + 1)); err != nil {
			return err
		}
		clk.Sleep(2 * time.Millisecond)
	}
	deadline = clk.Now().Add(5 * time.Second)
	for delivered.Load()-before < int64(samples) && clk.Now().Before(deadline) {
		clk.Sleep(5 * time.Millisecond)
	}
	pkts, bytes, _ := net.WireStats()

	res.Netsim = E15NetsimResult{
		Samples:     samples,
		Delivered:   int(delivered.Load() - before),
		WirePackets: pkts - startPkts,
		WireBytes:   bytes - startBytes,
	}
	if res.Netsim.Delivered > 0 {
		res.Netsim.BytesPerSample = float64(res.Netsim.WireBytes) / float64(res.Netsim.Delivered)
	}
	res.MetricsText = uav.MetricsSnapshot().Text()
	return nil
}

// e15UDP pushes pre-encoded frames across real loopback sockets, one
// datagram per syscall and then in sendmmsg runs via transport.BatchSender.
func e15UDP(res *E15Result) error {
	recv, err := transport.NewUDP("e15-rx", "127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer func() { _ = recv.Close() }()
	send, err := transport.NewUDP("e15-tx", "127.0.0.1:0",
		map[transport.NodeID]string{"e15-rx": recv.LocalAddr()})
	if err != nil {
		return err
	}
	defer func() { _ = send.Close() }()

	var got atomic.Int64
	recv.SetHandler(func(transport.Packet) { got.Add(1) })

	for _, size := range []int{e15SmallPayload, e15MTUPayload()} {
		raw, err := protocol.EncodeFrame(e15Frame(make([]byte, size)))
		if err != nil {
			return err
		}
		n := 20000
		if size > 1000 {
			n = 5000
		}
		seq, err := e15UDPRun(&got, "sequential", raw, n, func(count int) error {
			for i := 0; i < count; i++ {
				if err := send.Send("e15-rx", raw); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		bs, ok := transport.Transport(send).(transport.BatchSender)
		if !ok {
			return fmt.Errorf("udp transport is not a BatchSender")
		}
		msgs := make([]transport.BatchMessage, e15UDPBatchRun)
		for i := range msgs {
			msgs[i] = transport.BatchMessage{To: "e15-rx", Payload: raw}
		}
		bat, err := e15UDPRun(&got, "batched", raw, n, func(count int) error {
			for done := 0; done < count; done += len(msgs) {
				run := msgs
				if rem := count - done; rem < len(run) {
					run = run[:rem]
				}
				if err := bs.SendBatch(run); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		res.UDP = append(res.UDP, seq, bat)
	}
	return nil
}

// e15UDPRun times one loopback push and drains the receive side. Loopback
// is still lossy under burst (socket buffers), so Delivered ≤ Sent; rates
// are computed over frames actually delivered, up to the last arrival.
func e15UDPRun(got *atomic.Int64, mode string, raw []byte, n int, push func(int) error) (E15UDPPoint, error) {
	start := got.Load()
	t0 := time.Now()
	if err := push(n); err != nil {
		return E15UDPPoint{}, err
	}
	pushed := time.Since(t0).Seconds()
	// Drain: wait until arrivals go quiet before the next run reuses the
	// shared counter.
	last := got.Load()
	for settle := 0; settle < 10; {
		time.Sleep(5 * time.Millisecond)
		if now := got.Load(); now != last {
			last, settle = now, 0
			continue
		}
		settle++
	}
	pt := E15UDPPoint{
		Mode: mode, PayloadBytes: len(raw), Sent: n,
		Delivered: int(got.Load() - start),
	}
	if pushed > 0 {
		pt.FramesPerSec = float64(n) / pushed
		pt.MBPerSec = float64(n*len(raw)) / pushed / (1 << 20)
	}
	return pt, nil
}
