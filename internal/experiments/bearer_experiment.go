package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/egress"
	"uavmw/internal/filetransfer"
	"uavmw/internal/metrics"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// E14 measures the bearer plane end to end: a UAV and a ground station
// share two dissimilar datalinks — a fat, short-range, low-latency "wifi"
// pipe and a slow, long-range, robust "radio" modem — each a separate
// simulated network with its own bandwidth and latency. Policy routes by
// class: critical alarms pin to the robust radio, the bulk imagery
// transfer rides wifi, each bearer's bulk lane shaped just under its link
// rate. Mid-transfer the wifi link blacks out (the UAV flying out of
// range):
//
//   - the multi-bearer node detects the blackout within a failure
//     deadline (link monitor silence + unanswered probes), reroutes the
//     dead bearer's queues, and the transfer degrades gracefully to the
//     radio's shaped rate — alarms never notice, because they were on the
//     radio all along and the radio's own pacer keeps bulk from crowding
//     them;
//   - a single-bearer baseline on wifi alone loses alarms for the whole
//     blackout once the ARQ budget is spent, and its transfer stalls.
type E14Result struct {
	WifiBPS, RadioBPS          int64
	WifiShapedBPS, RadioShaped int64
	FileBytes                  int
	AlarmHz                    int
	BlackoutAfter              time.Duration

	// Unloaded is the alarm latency histogram with no transfer running
	// (alarms ride the radio per policy — the same link they hold through
	// the blackout).
	Unloaded *metrics.Histogram
	// Multi is the alarm latency histogram across the loaded multi-bearer
	// run, blackout included. MultiLost counts alarms that never arrived.
	Multi                *metrics.Histogram
	MultiLost, MultiSent int

	// HandoverDetect is how long after the blackout the UAV's link monitor
	// declared the wifi bearer down.
	HandoverDetect time.Duration
	// Transfer is the total fetch wall time across the handover.
	Transfer time.Duration
	// WifiBytes / RadioBytes split the UAV→GS wire bytes per bearer.
	WifiBytes, RadioBytes uint64
	// RecoveredBPS is the peak sustained (1s window) UAV→GS wire rate on
	// the radio after the blackout — the "bulk degraded to the surviving
	// link's shaped rate" figure.
	RecoveredBPS float64

	// Single-bearer baseline: alarms only, same blackout, wifi only.
	SingleSent, SingleLost int
	SingleBlackout         time.Duration

	// MetricsText is the UAV node's observability snapshot at the end of
	// the multi-bearer run (metrics.Snapshot.Text).
	MetricsText string
}

// e14ShapeFraction paces each bearer's bulk lane below its link rate. It
// sits lower than E13's 0.92 deliberately: here the same link also carries
// the critical alarms, the discovery digests of both bearers' heartbeat
// schedule, the subscription refreshes and the ARQ acks — shaping bulk to
// 92% of a 31 kB/s radio would leave that control traffic fighting for the
// last kilobyte and the link queue growing without bound.
const e14ShapeFraction = 0.85

// RunE14 runs the multi-bearer handover scenario and the single-bearer
// baseline. fileBytes sizes the bulk transfer; blackoutAfter is how far
// into the transfer the wifi link dies.
func RunE14(clk clock.Clock, fileBytes int, blackoutAfter time.Duration, seed int64) (*E14Result, error) {
	clk = clock.Or(clk)
	res := &E14Result{
		WifiBPS: 125_000, RadioBPS: 31_250,
		FileBytes: fileBytes, AlarmHz: 50,
		BlackoutAfter: blackoutAfter,
	}
	res.WifiShapedBPS = int64(float64(res.WifiBPS) * e14ShapeFraction)
	res.RadioShaped = int64(float64(res.RadioBPS) * e14ShapeFraction)
	if err := runE14Multi(clk, res, seed); err != nil {
		return nil, fmt.Errorf("e14 multi-bearer: %w", err)
	}
	if err := runE14Single(clk, res, seed+1); err != nil {
		return nil, fmt.Errorf("e14 single-bearer: %w", err)
	}
	return res, nil
}

// e14Link constrains both directions between uav and gs on one net.
func e14Link(net *netsim.Net, bps int64) {
	lc := netsim.InheritLink()
	lc.BandwidthBPS = bps
	net.SetLink("uav", "gs", lc)
	net.SetLink("gs", "uav", lc)
}

func runE14Multi(clk clock.Clock, res *E14Result, seed int64) error {
	// Two separate media: the bearers share nothing but the endpoints.
	wifi := netsim.New(netsim.Config{Seed: seed, Latency: 5 * time.Millisecond, Clock: clk})
	defer wifi.Close()
	radio := netsim.New(netsim.Config{Seed: seed + 100, Latency: 40 * time.Millisecond, Clock: clk})
	defer radio.Close()
	e14Link(wifi, res.WifiBPS)
	e14Link(radio, res.RadioBPS)

	wifiProf := qos.BearerProfile{
		RateBPS: res.WifiBPS, Latency: 5 * time.Millisecond,
		Robustness: 1, BulkRateBPS: res.WifiShapedBPS,
	}
	radioProf := qos.BearerProfile{
		RateBPS: res.RadioBPS, Latency: 40 * time.Millisecond,
		Robustness: 10, BulkRateBPS: res.RadioShaped,
	}
	mk := func(id transport.NodeID) (*core.Node, error) {
		wep, err := wifi.Node(id)
		if err != nil {
			return nil, err
		}
		rep, err := radio.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithClock(clk),
			core.WithBearer("wifi", wep, wifiProf),
			core.WithBearer("radio", rep, radioProf),
			core.WithAnnouncePeriod(50*time.Millisecond),
			// The bearer failure deadline: wifi silence past this marks the
			// bearer down and triggers the handover.
			core.WithFailureDeadline(250*time.Millisecond),
			core.WithDirectoryTTL(60*time.Second),
			core.WithARQ(protocol.WithTimeout(60*time.Millisecond), protocol.WithMaxRetries(8)),
			core.WithFileTransfer(
				filetransfer.WithQueryWindow(time.Second),
				filetransfer.WithMaxStrikes(100)),
			// Keep the bulk burst near one chunk: on the radio a single
			// 1KB chunk occupies the link for ~34ms, and every queued
			// chunk beyond it is latency an alarm could inherit. The deep
			// bulk queue is deliberate: the transfer pushes chunks at the
			// wifi rate, and after the handover the radio lane must absorb
			// the mismatch in memory rather than shed chunks that NACK
			// repair would only re-send (wire redundancy on the narrow
			// link).
			core.WithEgress(egress.Config{BulkBurst: 1100, QueueCap: 2048}),
		)
	}
	uav, err := mk("uav")
	if err != nil {
		return err
	}
	defer func() { _ = uav.Close() }()
	gs, err := mk("gs")
	if err != nil {
		return err
	}
	defer func() { _ = gs.Close() }()

	// Critical alarm topic, UAV → GS. Policy pins it to the radio. The
	// retransmission timeout must clear the radio's worst-case queueing
	// (latency + a chunk ahead at the link) or every queued-but-fine alarm
	// spawns duplicates that steal the link's headroom.
	alarmType := presentation.Uint32()
	alarmQoS := qos.EventQoS{
		Priority:   qos.PriorityCritical,
		AckTimeout: 500 * time.Millisecond,
		MaxRetries: 10,
	}
	pub, err := uav.Events().Offer("e14.alarm", "bench", alarmType, alarmQoS)
	if err != nil {
		return err
	}
	// Introduce both nodes now that the offers are registered — the
	// deterministic bootstrap: registrations ride the explicit announce
	// instead of waiting on a beacon tick that races the burst.
	uav.AnnounceNow()
	gs.AnnounceNow()
	rec := &alarmRecorder{}
	if err := waitProviders(clk, gs, kindEvent, "e14.alarm", 1, 5*time.Second); err != nil {
		return err
	}
	if _, err := gs.Events().Subscribe("e14.alarm", alarmType, alarmQoS,
		func(v any, _ transport.NodeID) { rec.arrived(v.(uint32), clk.Now()) }); err != nil {
		return err
	}
	deadline := clk.Now().Add(5 * time.Second)
	for len(pub.Subscribers()) == 0 {
		if clk.Now().After(deadline) {
			return fmt.Errorf("alarm subscriber never registered")
		}
		clk.Sleep(2 * time.Millisecond)
	}

	publishAlarms := func(stopCh <-chan struct{}, maxDur time.Duration) {
		interval := time.Second / time.Duration(res.AlarmHz)
		ticker := clk.NewTicker(interval)
		defer ticker.Stop()
		stopAt := clk.Now().Add(maxDur)
		var wg sync.WaitGroup
		for ticker.Wait(stopCh) {
			now := clk.Now()
			if now.After(stopAt) {
				break
			}
			seq := rec.nextSeq(now)
			wg.Add(1)
			clock.Go(clk, func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = pub.Publish(ctx, seq) // late/lost alarms are the measurement
			})
		}
		clock.Blocking(clk, wg.Wait)
	}

	// Unloaded baseline: alarms alone, over the same policy (radio).
	publishAlarms(make(chan struct{}), time.Second)
	clk.Sleep(200 * time.Millisecond) // let the tail arrive
	res.Unloaded, _ = rec.collect(1, rec.count())
	loadedFrom := rec.count() + 1
	wifi.ResetWireStats()
	radio.ResetWireStats()

	// The bulk transfer: paced into the plane at the wifi rate; each
	// bearer's own token bucket governs what actually reaches its link.
	data := make([]byte, res.FileBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	offer, err := uav.Files().Offer("e14.file", "bench", data,
		qos.TransferQoS{ChunkSize: 1024, RateBPS: res.WifiShapedBPS})
	if err != nil {
		return err
	}
	defer offer.Close()
	if err := waitProviders(clk, gs, kindFile, "e14.file", 1, 5*time.Second); err != nil {
		return err
	}

	// Sample the radio's UAV→GS wire bytes at 20ms so the recovered rate
	// can be read as a peak sustained window, immune to trailing query
	// idle time.
	type sample struct {
		at    time.Time
		bytes uint64
	}
	var (
		samplesMu sync.Mutex
		samples   []sample
	)
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	clock.Go(clk, func() {
		defer samplerWG.Done()
		ticker := clk.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for ticker.Wait(samplerStop) {
			ls := radio.LinkStats("uav", "gs")
			samplesMu.Lock()
			samples = append(samples, sample{at: clk.Now(), bytes: ls.Bytes})
			samplesMu.Unlock()
		}
	})

	fetchDone := make(chan error, 1)
	var transfer time.Duration
	start := clk.Now()
	clock.Go(clk, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()
		got, _, err := gs.Files().Fetch(ctx, "e14.file", filetransfer.FetchOptions{})
		transfer = clk.Since(start)
		if err == nil && len(got) != res.FileBytes {
			err = fmt.Errorf("short fetch: %d of %d bytes", len(got), res.FileBytes)
		}
		fetchDone <- err
	})

	alarmStop := make(chan struct{})
	alarmsDone := make(chan struct{})
	clock.Go(clk, func() {
		defer close(alarmsDone)
		publishAlarms(alarmStop, 120*time.Second)
	})

	// Mid-transfer blackout: the UAV flies out of wifi range.
	clk.Sleep(res.BlackoutAfter)
	wifi.Partition("uav", "gs")
	blackoutAt := clk.Now()

	// Time the handover detection on the UAV.
	detect := make(chan time.Duration, 1)
	detectStop := make(chan struct{})
	clock.Go(clk, func() {
		for {
			for _, ls := range uav.LinkStats() {
				if ls.Name == "wifi" && !ls.Healthy {
					detect <- clk.Since(blackoutAt)
					return
				}
			}
			if clk.Since(blackoutAt) > 30*time.Second {
				detect <- -1
				return
			}
			if !clock.SleepStop(clk, 5*time.Millisecond, detectStop) {
				return
			}
		}
	})

	var fetchErr error
	clock.Blocking(clk, func() { fetchErr = <-fetchDone })
	if fetchErr != nil {
		close(alarmStop)
		close(samplerStop)
		close(detectStop)
		return fetchErr
	}
	res.Transfer = transfer
	close(alarmStop)
	clock.Blocking(clk, func() { <-alarmsDone })
	loadedTo := rec.count()
	clock.Blocking(clk, func() { res.HandoverDetect = <-detect })
	close(detectStop)
	if res.HandoverDetect < 0 {
		return fmt.Errorf("wifi blackout never detected")
	}
	close(samplerStop)
	clock.Blocking(clk, samplerWG.Wait)

	// Recovered throughput: the best sustained 1s window of radio wire
	// rate after the blackout.
	samplesMu.Lock()
	post := samples[:0]
	for _, s := range samples {
		if s.at.After(blackoutAt) {
			post = append(post, s)
		}
	}
	const window = time.Second
	for i := 0; i < len(post); i++ {
		for j := i + 1; j < len(post); j++ {
			if d := post[j].at.Sub(post[i].at); d >= window {
				if rate := float64(post[j].bytes-post[i].bytes) / d.Seconds(); rate > res.RecoveredBPS {
					res.RecoveredBPS = rate
				}
				break
			}
		}
	}
	samplesMu.Unlock()
	res.WifiBytes = wifi.LinkStats("uav", "gs").Bytes
	res.RadioBytes = radio.LinkStats("uav", "gs").Bytes

	// Let alarm stragglers drain before collecting.
	stableSince := clk.Now()
	last := rec.arrivedCount()
	drainCap := clk.Now().Add(15 * time.Second)
	for clk.Now().Before(drainCap) {
		clk.Sleep(100 * time.Millisecond)
		if n := rec.arrivedCount(); n != last {
			last = n
			stableSince = clk.Now()
			continue
		}
		if clk.Since(stableSince) > time.Second {
			break
		}
	}
	res.Multi, res.MultiLost = rec.collect(loadedFrom, loadedTo)
	res.MultiSent = loadedTo - loadedFrom + 1
	res.MetricsText = uav.MetricsSnapshot().Text()
	return nil
}

// runE14Single runs the baseline: the same alarm stream over wifi alone,
// with the same blackout. The ARQ budget is real but finite; once it is
// spent the alarms are gone — there is no second link to fail over to.
func runE14Single(clk clock.Clock, res *E14Result, seed int64) error {
	wifi := netsim.New(netsim.Config{Seed: seed, Latency: 5 * time.Millisecond, Clock: clk})
	defer wifi.Close()
	e14Link(wifi, res.WifiBPS)
	const blackout = 1500 * time.Millisecond
	res.SingleBlackout = blackout

	mk := func(id transport.NodeID) (*core.Node, error) {
		ep, err := wifi.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(50*time.Millisecond),
			// Liveness must survive the blackout or the subscription is
			// torn down; the point here is link loss, not peer loss.
			core.WithFailureDeadline(60*time.Second),
			core.WithDirectoryTTL(60*time.Second),
			core.WithARQ(protocol.WithTimeout(30*time.Millisecond), protocol.WithMaxRetries(4)),
		)
	}
	uav, err := mk("uav")
	if err != nil {
		return err
	}
	defer func() { _ = uav.Close() }()
	gs, err := mk("gs")
	if err != nil {
		return err
	}
	defer func() { _ = gs.Close() }()

	alarmType := presentation.Uint32()
	alarmQoS := qos.EventQoS{Priority: qos.PriorityCritical}
	pub, err := uav.Events().Offer("e14.alarm", "bench", alarmType, alarmQoS)
	if err != nil {
		return err
	}
	// Introduce both nodes now that the offers are registered — the
	// deterministic bootstrap: registrations ride the explicit announce
	// instead of waiting on a beacon tick that races the burst.
	uav.AnnounceNow()
	gs.AnnounceNow()
	rec := &alarmRecorder{}
	if err := waitProviders(clk, gs, kindEvent, "e14.alarm", 1, 5*time.Second); err != nil {
		return err
	}
	if _, err := gs.Events().Subscribe("e14.alarm", alarmType, alarmQoS,
		func(v any, _ transport.NodeID) { rec.arrived(v.(uint32), clk.Now()) }); err != nil {
		return err
	}
	deadline := clk.Now().Add(5 * time.Second)
	for len(pub.Subscribers()) == 0 {
		if clk.Now().After(deadline) {
			return fmt.Errorf("alarm subscriber never registered")
		}
		clk.Sleep(2 * time.Millisecond)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	interval := time.Second / time.Duration(res.AlarmHz)
	clock.Go(clk, func() {
		defer close(done)
		ticker := clk.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		for ticker.Wait(stop) {
			seq := rec.nextSeq(clk.Now())
			wg.Add(1)
			clock.Go(clk, func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = pub.Publish(ctx, seq)
			})
		}
		clock.Blocking(clk, wg.Wait)
	})

	clk.Sleep(400 * time.Millisecond)
	wifi.Partition("uav", "gs")
	clk.Sleep(blackout)
	wifi.Heal("uav", "gs")
	clk.Sleep(500 * time.Millisecond)
	close(stop)
	clock.Blocking(clk, func() { <-done })
	clk.Sleep(time.Second) // drain stragglers

	_, lost := rec.collect(1, rec.count())
	res.SingleSent = rec.count()
	res.SingleLost = lost
	return nil
}
