// Package experiments implements the measurement harnesses for every
// experiment in EXPERIMENTS.md (E1–E9, E11–E14). The uavbench command runs
// the full parameter sweeps and prints the paper-style tables; the
// repository-root benchmarks wrap single points of each sweep in testing.B.
//
// Every harness builds a fresh middleware deployment on an in-process or
// simulated substrate, measures, and tears down, so experiments are
// independent and repeatable (seeded netsim, no shared global state).
//
// The simulation-backed harnesses (RunE3, RunE11–RunE14) take an injected
// clock.Clock and by default run under RunVirtual on a discrete-event
// virtual clock: minutes of scenario time execute in wall milliseconds,
// and a given seed reproduces byte-identical results. Passing a nil clock
// selects the wall clock. Goroutines inside a virtual harness must be
// registered with the clock (clock.Go / clock.Live), block on managed
// primitives (clock.Trigger, clock.Cond, Sleep), and wrap foreign blocking
// (channel receives, WaitGroup waits) in clock.Blocking — see the clock
// package docs for the accounting rules.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/filetransfer"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// telemetryType is the payload used by the latency experiments: a realistic
// mid-size telemetry struct.
var telemetryType = presentation.MustParse(
	"{lat:f64,lon:f64,alt:f32,speed:f32,heading:f32,fix:u8,wp:u32,complete:bool}")

func telemetryValue() map[string]any {
	return map[string]any{
		"lat": 41.275, "lon": 1.987, "alt": float32(120), "speed": float32(25),
		"heading": float32(270), "fix": uint8(3), "wp": uint32(2), "complete": false,
	}
}

// pair builds two connected nodes on a fresh bus.
func pair(opts ...core.NodeOption) (a, b *core.Node, cleanup func(), err error) {
	bus := transport.NewBus()
	epA, err := bus.Endpoint("a")
	if err != nil {
		return nil, nil, nil, err
	}
	epB, err := bus.Endpoint("b")
	if err != nil {
		return nil, nil, nil, err
	}
	base := []core.NodeOption{
		core.WithAnnouncePeriod(20 * time.Millisecond),
		core.WithARQ(protocol.WithTimeout(5 * time.Millisecond)),
		core.WithFileTransfer(filetransfer.WithQueryWindow(10 * time.Millisecond)),
	}
	a, err = core.NewNode(append(append([]core.NodeOption{core.WithDatagram(epA)}, base...), opts...)...)
	if err != nil {
		return nil, nil, nil, err
	}
	b, err = core.NewNode(append(append([]core.NodeOption{core.WithDatagram(epB)}, base...), opts...)...)
	if err != nil {
		_ = a.Close()
		return nil, nil, nil, err
	}
	cleanup = func() {
		_ = a.Close()
		_ = b.Close()
	}
	return a, b, cleanup, nil
}

// waitProviders blocks until node sees n providers of the named resource.
// The poll runs on clk so discovery waits work under a Virtual clock.
func waitProviders(clk clock.Clock, node *core.Node, kind naming.Kind, name string, n int, timeout time.Duration) error {
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if node.Directory().ProviderCount(kind, name) >= n {
			return nil
		}
		clk.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("experiments: %s never discovered", name)
}

// E1Result compares one-way notification latency of the event primitive
// against the equivalent remote invocation (§4.3: "events seem faster than
// their function equivalent").
type E1Result struct {
	PayloadBytes int
	Event        *metrics.Histogram
	RPC          *metrics.Histogram
}

// RunE1 measures n notifications per primitive with a payload of
// approximately payloadBytes.
func RunE1(n, payloadBytes int) (*E1Result, error) {
	pub, sub, cleanup, err := pair()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	payloadType := presentation.VectorOf(presentation.Uint8())
	payload := make([]byte, payloadBytes)
	boxed := make([]any, payloadBytes)
	for i := range boxed {
		boxed[i] = uint8(i)
	}
	_ = payload

	// Event path: publisher on pub, subscriber on sub; handler signals.
	evtPub, err := pub.Events().Offer("e1.evt", "bench", payloadType, qos.EventQoS{})
	if err != nil {
		return nil, err
	}
	received := make(chan time.Time, 1)
	if _, err := sub.Events().Subscribe("e1.evt", payloadType, qos.EventQoS{},
		func(any, transport.NodeID) { received <- time.Now() }); err != nil {
		return nil, err
	}

	// RPC path: the "function equivalent" of the notification.
	if err := sub.RPC().Register("e1.notify", "bench", payloadType, nil, qos.CallQoS{},
		func(any) (any, error) { return nil, nil }); err != nil {
		return nil, err
	}
	// Registrations announce incrementally on their own; just wait for
	// the subscription handshake.
	deadline := time.Now().Add(5 * time.Second)
	for len(evtPub.Subscribers()) == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: e1 subscriber never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	res := &E1Result{
		PayloadBytes: payloadBytes,
		Event:        &metrics.Histogram{},
		RPC:          &metrics.Histogram{},
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := evtPub.Publish(ctx, boxed); err != nil {
			return nil, fmt.Errorf("e1 event %d: %w", i, err)
		}
		at := <-received
		res.Event.Observe(at.Sub(start))
	}
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := pub.RPC().Call(ctx, "e1.notify", boxed, payloadType, nil, qos.CallQoS{}); err != nil {
			return nil, fmt.Errorf("e1 rpc %d: %w", i, err)
		}
		res.RPC.Observe(time.Since(start))
	}
	return res, nil
}

// E2Result compares per-message ARQ against a TCP-like in-order stream
// (Go-Back-N) under loss (§4.2).
type E2Result struct {
	Loss       float64
	Messages   int
	ARQTotal   time.Duration
	GBNTotal   time.Duration
	ARQPerMsg  *metrics.Histogram // individual message completion times
	GBNPerMsg  *metrics.Histogram
	ARQRetrans uint64
	GBNRetrans uint64
}

// RunE2 sends n independent event-sized messages under the given loss rate
// through both reliability schemes and reports completion behaviour.
func RunE2(n int, loss float64, payloadBytes int, seed int64) (*E2Result, error) {
	res := &E2Result{
		Loss:      loss,
		Messages:  n,
		ARQPerMsg: &metrics.Histogram{},
		GBNPerMsg: &metrics.Histogram{},
	}

	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}

	// --- ARQ over lossy netsim ---
	{
		net := netsim.New(netsim.Config{Loss: loss, Seed: seed, Latency: 500 * time.Microsecond})
		src, err := net.Node("src")
		if err != nil {
			return nil, err
		}
		dst, err := net.Node("dst")
		if err != nil {
			return nil, err
		}
		var delivered atomic.Int64
		dst.SetHandler(func(pkt transport.Packet) {
			f, err := protocol.DecodeFrame(pkt.Payload)
			if err != nil {
				return
			}
			if f.Type == protocol.MTAck {
				return
			}
			// Ack everything with FlagAckRequired.
			ack, _ := protocol.EncodeFrame(&protocol.Frame{Type: protocol.MTAck, Seq: f.Seq})
			_ = dst.Send("src", ack)
			delivered.Add(1)
		})
		arq := protocol.NewARQ(func(to transport.NodeID, frame []byte) error {
			return src.Send(to, frame)
		}, protocol.WithTimeout(3*time.Millisecond), protocol.WithMaxRetries(20))
		ackCh := make(chan struct{}, n)
		src.SetHandler(func(pkt transport.Packet) {
			f, err := protocol.DecodeFrame(pkt.Payload)
			if err != nil || f.Type != protocol.MTAck {
				return
			}
			arq.Ack(pkt.From, f.Seq)
		})

		start := time.Now()
		var wg sync.WaitGroup
		starts := make([]time.Time, n)
		for i := 0; i < n; i++ {
			frame, err := protocol.EncodeFrame(&protocol.Frame{
				Type: protocol.MTEvent, Flags: protocol.FlagAckRequired,
				Channel: "e2", Seq: uint64(i + 1), Payload: payload,
			})
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			starts[i] = time.Now()
			i := i
			if err := arq.Send("dst", uint64(i+1), frame, func(err error) {
				if err == nil {
					res.ARQPerMsg.Observe(time.Since(starts[i]))
				}
				wg.Done()
				select {
				case ackCh <- struct{}{}:
				default:
				}
			}); err != nil {
				return nil, err
			}
		}
		wg.Wait()
		res.ARQTotal = time.Since(start)
		res.ARQRetrans = arq.Stats().Retransmits
		arq.Close()
		net.Close()
	}

	// --- Go-Back-N (TCP semantics) over the same loss ---
	{
		net := netsim.New(netsim.Config{Loss: loss, Seed: seed + 1, Latency: 500 * time.Microsecond})
		src, err := net.Node("src")
		if err != nil {
			return nil, err
		}
		dst, err := net.Node("dst")
		if err != nil {
			return nil, err
		}
		var (
			mu        sync.Mutex
			deliverAt = make([]time.Time, 0, n)
			done      = make(chan struct{})
		)
		var sender, receiver *protocol.GoBackN
		sender = protocol.NewGoBackN("dst", func(to transport.NodeID, frame []byte) error {
			return src.Send(to, frame)
		}, nil, 3*time.Millisecond, 32)
		receiver = protocol.NewGoBackN("src", func(to transport.NodeID, frame []byte) error {
			return dst.Send(to, frame)
		}, func(msg []byte) {
			mu.Lock()
			deliverAt = append(deliverAt, time.Now())
			if len(deliverAt) == n {
				close(done)
			}
			mu.Unlock()
		}, 3*time.Millisecond, 32)
		src.SetHandler(func(pkt transport.Packet) { sender.HandlePacket(pkt.Payload) })
		dst.SetHandler(func(pkt transport.Packet) { receiver.HandlePacket(pkt.Payload) })

		start := time.Now()
		starts := make([]time.Time, n)
		for i := 0; i < n; i++ {
			starts[i] = time.Now()
			if err := sender.Send(payload); err != nil {
				return nil, err
			}
		}
		select {
		case <-done:
		case <-time.After(2 * time.Minute):
			return nil, fmt.Errorf("e2: gbn never completed (%d delivered)", len(deliverAt))
		}
		res.GBNTotal = time.Since(start)
		mu.Lock()
		for i, at := range deliverAt {
			res.GBNPerMsg.Observe(at.Sub(starts[i]))
		}
		mu.Unlock()
		res.GBNRetrans = sender.Stats().Retransmits
		sender.Close()
		receiver.Close()
		net.Close()
	}
	return res, nil
}

// E3Result measures wire cost of distributing event occurrences to N
// subscribers with group-addressed multicast vs unicast ARQ fan-out (§4.1
// bandwidth argument applied to the §4.2 event primitive). The counts are
// bytes-on-wire through the full middleware stack: frames, acks and
// repairs included.
type E3Result struct {
	Subscribers  int
	Samples      int
	McastPackets uint64
	McastBytes   uint64
	UcastPackets uint64
	UcastBytes   uint64
}

// RunE3 publishes occurrences through the event engine to n subscriber
// containers in both delivery modes on a fresh netsim and reports wire
// packet/byte counts. A nil clk runs on wall time; pass a Virtual clock
// (from inside its Run) for a discrete-event run.
func RunE3(clk clock.Clock, subscribers, samples int) (*E3Result, error) {
	clk = clock.Or(clk)
	res := &E3Result{Subscribers: subscribers, Samples: samples}

	run := func(delivery qos.Delivery) (uint64, uint64, error) {
		net := netsim.New(netsim.Config{Seed: 4, Latency: 200 * time.Microsecond, Clock: clk})
		defer net.Close()
		// A long announce period keeps heartbeat chatter out of the
		// measured window; discovery itself is incremental (deltas fire
		// on registration), so no explicit announcement is needed.
		mk := func(id transport.NodeID) (*core.Node, error) {
			ep, err := net.Node(id)
			if err != nil {
				return nil, err
			}
			return core.NewNode(
				core.WithClock(clk),
				core.WithDatagram(ep),
				core.WithAnnouncePeriod(2*time.Second),
				core.WithARQ(protocol.WithTimeout(5*time.Millisecond)),
			)
		}
		pub, err := mk("src")
		if err != nil {
			return 0, 0, err
		}
		defer func() { _ = pub.Close() }()
		nodes := make([]*core.Node, subscribers)
		for i := range nodes {
			if nodes[i], err = mk(transport.NodeID(fmt.Sprintf("sub%d", i))); err != nil {
				return 0, 0, err
			}
			defer func(n *core.Node) { _ = n.Close() }(nodes[i])
		}

		q := qos.EventQoS{Delivery: delivery}
		evtPub, err := pub.Events().Offer("e3.evt", "bench", telemetryType, q)
		if err != nil {
			return 0, 0, err
		}
		var delivered atomic.Int64
		for _, n := range nodes {
			if err := waitProviders(clk, n, kindEvent, "e3.evt", 1, 5*time.Second); err != nil {
				return 0, 0, err
			}
			if _, err := n.Events().Subscribe("e3.evt", telemetryType, q,
				func(any, transport.NodeID) { delivered.Add(1) }); err != nil {
				return 0, 0, err
			}
		}
		deadline := clk.Now().Add(5 * time.Second)
		for len(evtPub.Subscribers()) < subscribers {
			if clk.Now().After(deadline) {
				return 0, 0, fmt.Errorf("e3: only %d subscribers registered", len(evtPub.Subscribers()))
			}
			clk.Sleep(time.Millisecond)
		}

		net.ResetWireStats()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		val := telemetryValue()
		for s := 0; s < samples; s++ {
			if err := evtPub.Publish(ctx, val); err != nil {
				return 0, 0, fmt.Errorf("e3 publish %d: %w", s, err)
			}
		}
		want := int64(samples * subscribers)
		deadline = clk.Now().Add(30 * time.Second)
		for delivered.Load() < want {
			if clk.Now().After(deadline) {
				return 0, 0, fmt.Errorf("e3: delivered %d of %d", delivered.Load(), want)
			}
			clk.Sleep(time.Millisecond)
		}
		packets, bytes, _ := net.WireStats()
		return packets, bytes, nil
	}

	var err error
	if res.McastPackets, res.McastBytes, err = run(qos.DeliverMulticast); err != nil {
		return nil, err
	}
	if res.UcastPackets, res.UcastBytes, err = run(qos.DeliverUnicast); err != nil {
		return nil, err
	}
	return res, nil
}

// E4Result compares the dedicated file-transfer primitive against naive
// chunk-by-events distribution (§4.4 "huge performance benefits").
type E4Result struct {
	FileBytes    int
	Receivers    int
	Loss         float64
	MFTPTime     time.Duration
	MFTPWireKB   float64
	EventsTime   time.Duration
	EventsWireKB float64
}

// RunE4 distributes one file of fileBytes to n receivers under loss, first
// with the MFTP engine, then chunk-by-chunk over the event primitive.
func RunE4(fileBytes, receivers int, loss float64, seed int64) (*E4Result, error) {
	res := &E4Result{FileBytes: fileBytes, Receivers: receivers, Loss: loss}
	data := make([]byte, fileBytes)
	for i := range data {
		data[i] = byte(i * 13)
	}

	build := func(seed int64) (*netsim.Net, *core.Node, []*core.Node, func(), error) {
		net := netsim.New(netsim.Config{Loss: loss, Seed: seed, Latency: 300 * time.Microsecond})
		mk := func(id transport.NodeID) (*core.Node, error) {
			ep, err := net.Node(id)
			if err != nil {
				return nil, err
			}
			return core.NewNode(
				core.WithDatagram(ep),
				core.WithAnnouncePeriod(20*time.Millisecond),
				core.WithARQ(protocol.WithTimeout(4*time.Millisecond), protocol.WithMaxRetries(15)),
				core.WithFileTransfer(filetransfer.WithQueryWindow(8*time.Millisecond)),
			)
		}
		pub, err := mk("pub")
		if err != nil {
			net.Close()
			return nil, nil, nil, nil, err
		}
		subs := make([]*core.Node, receivers)
		for i := range subs {
			if subs[i], err = mk(transport.NodeID(fmt.Sprintf("sub%d", i))); err != nil {
				net.Close()
				return nil, nil, nil, nil, err
			}
		}
		cleanup := func() {
			_ = pub.Close()
			for _, s := range subs {
				_ = s.Close()
			}
			net.Close()
		}
		return net, pub, subs, cleanup, nil
	}

	// --- MFTP ---
	{
		net, pub, subs, cleanup, err := build(seed)
		if err != nil {
			return nil, err
		}
		if _, err := pub.Files().Offer("e4.file", "bench", data, qos.TransferQoS{}); err != nil {
			cleanup()
			return nil, err
		}
		for _, s := range subs {
			if err := waitProviders(clock.Real{}, s, kindFile, "e4.file", 1, 5*time.Second); err != nil {
				cleanup()
				return nil, err
			}
		}
		net.ResetWireStats()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, receivers)
		for _, s := range subs {
			wg.Add(1)
			go func(n *core.Node) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				got, _, err := n.Files().Fetch(ctx, "e4.file", filetransfer.FetchOptions{})
				if err == nil && len(got) != fileBytes {
					err = fmt.Errorf("short fetch: %d", len(got))
				}
				errs <- err
			}(s)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("e4 mftp: %w", err)
			}
		}
		res.MFTPTime = time.Since(start)
		_, bytes, _ := net.WireStats()
		res.MFTPWireKB = float64(bytes) / 1024
		cleanup()
	}

	// --- chunks over the event primitive (unicast reliable per receiver) ---
	{
		net, pub, subs, cleanup, err := build(seed + 100)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		chunkType := presentation.MustParse("{index:u32,total:u32,body:bytes}")
		evtPub, err := pub.Events().Offer("e4.chunks", "bench", chunkType, qos.EventQoS{})
		if err != nil {
			return nil, err
		}
		const chunk = 1200
		total := (fileBytes + chunk - 1) / chunk

		type recvState struct {
			got  atomic.Int64
			done chan struct{}
		}
		states := make([]*recvState, receivers)
		for i, s := range subs {
			st := &recvState{done: make(chan struct{})}
			states[i] = st
			if err := waitProviders(clock.Real{}, s, kindEvent, "e4.chunks", 1, 5*time.Second); err != nil {
				return nil, err
			}
			if _, err := s.Events().Subscribe("e4.chunks", chunkType, qos.EventQoS{},
				func(v any, _ transport.NodeID) {
					if st.got.Add(1) == int64(total) {
						close(st.done)
					}
				}); err != nil {
				return nil, err
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(evtPub.Subscribers()) < receivers {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("e4: only %d event subscribers", len(evtPub.Subscribers()))
			}
			time.Sleep(2 * time.Millisecond)
		}

		net.ResetWireStats()
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		for i := 0; i < total; i++ {
			end := min((i+1)*chunk, fileBytes)
			if err := evtPub.Publish(ctx, map[string]any{
				"index": uint32(i), "total": uint32(total), "body": data[i*chunk : end],
			}); err != nil {
				return nil, fmt.Errorf("e4 events chunk %d: %w", i, err)
			}
		}
		for _, st := range states {
			select {
			case <-st.done:
			case <-time.After(2 * time.Minute):
				return nil, fmt.Errorf("e4 events: receiver stuck at %d/%d", st.got.Load(), total)
			}
		}
		res.EventsTime = time.Since(start)
		_, bytes, _ := net.WireStats()
		res.EventsWireKB = float64(bytes) / 1024
	}
	return res, nil
}

// E5Result measures the same-container bypass (§4.4, F2).
type E5Result struct {
	FileBytes   int
	LocalFetch  time.Duration // per op
	RemoteFetch time.Duration // per op
	LocalVar    time.Duration // publish->Get, same container
	RemoteVar   time.Duration // publish->handler, cross container
}

// RunE5 times local vs remote access for files and variables.
func RunE5(fileBytes, iters int) (*E5Result, error) {
	res := &E5Result{FileBytes: fileBytes}
	data := make([]byte, fileBytes)

	local, remote, cleanup, err := pair()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if _, err := local.Files().Offer("e5.file", "bench", data, qos.TransferQoS{}); err != nil {
		return nil, err
	}
	if err := waitProviders(clock.Real{}, remote, kindFile, "e5.file", 1, 5*time.Second); err != nil {
		return nil, err
	}
	ctx := context.Background()

	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := local.Files().Fetch(ctx, "e5.file", filetransfer.FetchOptions{}); err != nil {
			return nil, err
		}
	}
	res.LocalFetch = time.Since(start) / time.Duration(iters)

	remoteIters := max(1, iters/10) // network fetches are far slower
	start = time.Now()
	for i := 0; i < remoteIters; i++ {
		fetchCtx, cancel := context.WithTimeout(ctx, time.Minute)
		if _, _, err := remote.Files().Fetch(fetchCtx, "e5.file", filetransfer.FetchOptions{}); err != nil {
			cancel()
			return nil, err
		}
		cancel()
	}
	res.RemoteFetch = time.Since(start) / time.Duration(remoteIters)

	// Variables: local bypass vs cross-node delivery.
	vp, err := local.Variables().Offer("e5.var", "bench", telemetryType, qos.VariableQoS{})
	if err != nil {
		return nil, err
	}
	localSub, err := local.Variables().Subscribe("e5.var", telemetryType, variables.SubscribeOptions{})
	if err != nil {
		return nil, err
	}
	defer localSub.Close()
	val := telemetryValue()
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := vp.Publish(val); err != nil {
			return nil, err
		}
	}
	res.LocalVar = time.Since(start) / time.Duration(iters)

	got := make(chan struct{}, 1)
	remoteSub, err := remote.Variables().Subscribe("e5.var", telemetryType, variables.SubscribeOptions{
		OnSample: func(any, time.Time) {
			select {
			case got <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer remoteSub.Close()
	time.Sleep(50 * time.Millisecond) // group join settles
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := vp.Publish(val); err != nil {
			return nil, err
		}
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("e5: remote sample %d lost", i)
		}
	}
	res.RemoteVar = time.Since(start) / time.Duration(iters)
	return res, nil
}

// E7Result measures failover: time from provider death to the first
// successful redirected call (§4.3).
type E7Result struct {
	FailureDeadline time.Duration
	Redirect        time.Duration // kill -> first success on backup
	CallsFailed     int           // calls that errored during the window
}

// RunE7 kills the active provider mid-call-stream and times redirection.
func RunE7(failureDeadline time.Duration) (*E7Result, error) {
	net := netsim.New(netsim.Config{Latency: 300 * time.Microsecond, Seed: 8})
	defer net.Close()
	mk := func(id transport.NodeID) (*core.Node, error) {
		ep, err := net.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(20*time.Millisecond),
			core.WithFailureDeadline(failureDeadline),
			core.WithARQ(protocol.WithTimeout(4*time.Millisecond)),
		)
	}
	primary, err := mk("primary")
	if err != nil {
		return nil, err
	}
	defer func() { _ = primary.Close() }()
	backup, err := mk("backup")
	if err != nil {
		return nil, err
	}
	defer func() { _ = backup.Close() }()
	client, err := mk("client")
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()

	retT := presentation.String_()
	for _, n := range []*core.Node{primary, backup} {
		id := string(n.ID())
		if err := n.RPC().Register("e7.fn", "bench", nil, retT, qos.CallQoS{},
			func(any) (any, error) { return id, nil }); err != nil {
			return nil, err
		}
	}
	if err := waitProviders(clock.Real{}, client, kindFunction, "e7.fn", 2, 5*time.Second); err != nil {
		return nil, err
	}

	ctx := context.Background()
	q := qos.CallQoS{Deadline: 250 * time.Millisecond, Binding: qos.BindStatic}
	// Warm the static pin onto some provider.
	first, err := client.RPC().Call(ctx, "e7.fn", nil, nil, retT, q)
	if err != nil {
		return nil, err
	}
	victim := transport.NodeID(first.(string))

	// Kill the pinned provider silently.
	net.Partition(victim, "client")
	net.Partition(victim, "backup")
	net.Partition(victim, "primary")
	killed := time.Now()

	res := &E7Result{FailureDeadline: failureDeadline}
	for {
		got, err := client.RPC().Call(ctx, "e7.fn", nil, nil, retT, q)
		if err != nil {
			res.CallsFailed++
			if time.Since(killed) > time.Minute {
				return nil, fmt.Errorf("e7: no recovery after 1 minute")
			}
			continue
		}
		if got != first {
			res.Redirect = time.Since(killed)
			return res, nil
		}
	}
}

// E8Result measures scheduler queue latency per priority class under load
// (§6 fixed-priority pool, soft real time).
type E8Result struct {
	Workers    int
	Load       int // queued background jobs
	Priorities map[qos.Priority]*metrics.Histogram
}

// (Implemented in scheduler_experiment.go to keep this file scannable.)

// Shorthands for the naming kinds used here.
const (
	kindEvent    = naming.KindEvent
	kindFunction = naming.KindFunction
	kindFile     = naming.KindFile
)
