package experiments

import (
	"fmt"
	"sort"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// E12Result measures the discovery plane's steady-state wire cost and its
// registration-to-resolvable latency. The incremental protocol's claim:
// steady-state bytes per period scale with the node count (constant-size
// digests), not with the total record count, while the old full-state
// protocol re-broadcast every record every period.
type E12Result struct {
	Nodes          int
	RecordsPerNode int
	AnnouncePeriod time.Duration

	// SteadyBytesPerPeriod / SteadyPacketsPerPeriod are the measured
	// discovery wire cost per announce period once the fleet is
	// converged (heartbeat digests only).
	SteadyBytesPerPeriod   float64
	SteadyPacketsPerPeriod float64
	// BaselineBytesPerPeriod is the same fleet re-broadcasting its full
	// record set once per period — the pre-refactor protocol, measured
	// over the same wire.
	BaselineBytesPerPeriod float64
	// Converge is the latency from offering one new variable on a node
	// to it being resolvable on the farthest other node.
	Converge time.Duration
	// MetricsText is node n000's full observability snapshot
	// (metrics.Snapshot.Text) at measurement end. It is a plain string so
	// E12Result stays comparable: the virtual-time determinism test
	// requires two same-seed runs to produce byte-identical snapshots.
	MetricsText string
}

// e12Fn names one synthetic function registration.
func e12Fn(node transport.NodeID, i int) string {
	return fmt.Sprintf("fn.%s.%04d", node, i)
}

// buildE12Fleet spins up n converged nodes each offering records functions.
func buildE12Fleet(clk clock.Clock, net *netsim.Net, n, records int, period time.Duration) ([]*core.Node, error) {
	nodes := make([]*core.Node, n)
	for i := range nodes {
		ep, err := net.Node(transport.NodeID(fmt.Sprintf("n%03d", i)))
		if err != nil {
			return nil, err
		}
		// The ARQ retransmit timer must exceed the fleet's worst-case
		// processing backlog: an over-aggressive timer turns transient
		// queueing into a retransmission storm that feeds the queue.
		// Generous failure deadline and TTL: the benchmark drives the
		// simulated medium at tens of thousands of deliveries per
		// second on shared (possibly single-core) hosts, so wall-clock
		// liveness must tolerate simulation backlog; E12 measures wire
		// cost and convergence, not failover.
		// 60 periods: the staggered full-state bootstrap can starve a
		// node's beacon processing for tens of seconds on a single-core
		// host, and a liveness flap firing after that starvation would
		// purge catalogs mid-measurement and flood the wire with
		// re-syncs.
		failureDeadline := 3 * time.Second
		if d := 60 * period; d > failureDeadline {
			failureDeadline = d
		}
		if nodes[i], err = core.NewNode(
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(period),
			core.WithFailureDeadline(failureDeadline),
			core.WithDirectoryTTL(2*failureDeadline),
			core.WithARQ(protocol.WithTimeout(20*time.Millisecond), protocol.WithMaxRetries(12)),
		); err != nil {
			return nil, err
		}
	}
	handler := func(any) (any, error) { return nil, nil }
	for _, node := range nodes {
		for i := 0; i < records; i++ {
			if err := node.RPC().Register(e12Fn(node.ID(), i), "bench", nil, nil,
				qos.CallQoS{}, handler); err != nil {
				return nil, err
			}
		}
	}
	// Bootstrap with full-state multicasts — what a container does after
	// bulk service registration (StartServices) — so a mass join costs
	// O(nodes) multicasts per round instead of O(nodes²) unicast snapshot
	// transfers. Staggered, as real fleets boot: a synchronized burst of
	// n full catalogs would monopolize the medium and starve the liveness
	// beacons behind it. Nodes some peer still lags on re-announce each
	// round; anti-entropy sync covers residual gaps.
	//
	// Converged: every node holds every other node's full catalog — its
	// cached log version matches the offerer's own current version (an
	// O(1) check per pair; burst registrations coalesce into batched
	// deltas, so the version count is not the registration count).
	stagger := period / 8
	if stagger < 25*time.Millisecond {
		stagger = 25 * time.Millisecond
	}
	deadline := clk.Now().Add(5 * time.Minute)
	lagging := append([]*core.Node(nil), nodes...)
	for {
		for _, node := range lagging {
			node.AnnounceNow()
			clk.Sleep(stagger)
		}
		settle := clk.Now().Add(10 * period)
		for {
			lagging = nil
			for _, b := range nodes {
				for _, a := range nodes {
					if a == b {
						continue
					}
					if _, ver, known := a.Directory().NodeVersion(b.ID()); !known || ver != b.OfferVersion() {
						lagging = append(lagging, b)
						break
					}
				}
			}
			if len(lagging) == 0 {
				return nodes, nil
			}
			if clk.Now().After(deadline) {
				return nil, fmt.Errorf("e12: fleet never converged (%d nodes still lagging)", len(lagging))
			}
			if clk.Now().After(settle) {
				break // next announce round for the stragglers
			}
			clk.Sleep(100 * time.Millisecond)
		}
	}
}

// e12Period picks the beacon period for a fleet size: larger fleets beacon
// less often, as real deployments do — and as the in-process simulation
// requires (64 containers, their schedulers and the netsim medium all
// timeshare the host, possibly a single core) to stay within its delivery
// throughput. Wire cost per period and convergence-vs-period contrast are
// unaffected by the absolute period.
func e12Period(nodes int) time.Duration {
	if nodes >= 32 {
		return time.Second
	}
	return 50 * time.Millisecond
}

// RunE12 measures steady-state discovery wire cost (digest heartbeats vs
// full-state re-broadcast) and post-registration convergence latency on a
// fleet of nodes × recordsPerNode.
func RunE12(clk clock.Clock, nodes, recordsPerNode int, seed int64) (*E12Result, error) {
	clk = clock.Or(clk)
	period := e12Period(nodes)
	res := &E12Result{Nodes: nodes, RecordsPerNode: recordsPerNode, AnnouncePeriod: period}

	net := netsim.New(netsim.Config{Seed: seed, Latency: 200 * time.Microsecond, Clock: clk})
	defer net.Close()
	fleet, err := buildE12Fleet(clk, net, nodes, recordsPerNode, period)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, n := range fleet {
			_ = n.Close()
		}
	}()

	// Let the tail of the registration storm (residual sync repairs, ARQ
	// retransmissions) drain before measuring: steady state is reached
	// when several consecutive periods carry approximately the heartbeat
	// digests alone.
	quiesce := clk.Now().Add(3 * time.Minute)
	quiet := 0
	for quiet < 3 {
		net.ResetWireStats()
		clk.Sleep(period)
		pkts, _, _ := net.WireStats()
		if pkts <= uint64(nodes+2) {
			quiet++
		} else {
			quiet = 0
		}
		if clk.Now().After(quiesce) {
			return nil, fmt.Errorf("e12: traffic never quiesced (%d pkts/period)", pkts)
		}
	}

	// Steady state: only heartbeat digests should cross the wire.
	const steadyPeriods = 6
	net.ResetWireStats()
	clk.Sleep(steadyPeriods * period)
	packets, bytes, _ := net.WireStats()
	res.SteadyBytesPerPeriod = float64(bytes) / steadyPeriods
	res.SteadyPacketsPerPeriod = float64(packets) / steadyPeriods

	// Convergence: a brand-new offer must be resolvable fleet-wide in
	// well under one announce period (one delta hop, no beacon wait).
	// Median of several probes: a single probe can land on a residual
	// post-bootstrap repair cycle and measure anti-entropy instead.
	last := fleet[len(fleet)-1]
	var probes []time.Duration
	for p := 0; p < 3; p++ {
		name := fmt.Sprintf("fn.fresh.%d", p)
		start := clk.Now()
		if err := fleet[0].RPC().Register(name, "bench", nil, nil,
			qos.CallQoS{}, func(any) (any, error) { return nil, nil }); err != nil {
			return nil, err
		}
		for last.Directory().ProviderCount(naming.KindFunction, name) == 0 {
			if clk.Since(start) > 60*time.Second {
				return nil, fmt.Errorf("e12: fresh offer never converged")
			}
			clk.Sleep(time.Millisecond)
		}
		probes = append(probes, clk.Since(start))
		clk.Sleep(2 * period) // let any repair triggered by the probe settle
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	res.Converge = probes[len(probes)/2]

	// Baseline last (it floods the simulated wire with megabytes of
	// full-state fragments, which would pollute the other measurements):
	// the old protocol's full-state broadcast, one per node per period,
	// measured over the same wire (AnnounceNow still emits the
	// pre-refactor MTAnnounce).
	const baselineRounds = 2
	net.ResetWireStats()
	for round := 0; round < baselineRounds; round++ {
		for _, n := range fleet {
			n.AnnounceNow()
		}
	}
	// Announcements drain through the asynchronous egress plane; flush
	// every node before reading the wire counters.
	for _, n := range fleet {
		n.FlushEgress()
	}
	// Flush returns when the egress queues are empty, not when the medium
	// has delivered what it accepted: the last packets — and any delta
	// repairs their arrival triggers — are still in flight one latency
	// horizon past the flush. Settle them on the virtual timeline before
	// reading the wire counters and the metrics snapshot, so repeated
	// runs observe identical totals.
	clk.Sleep(5 * time.Millisecond)
	_, bytes, _ = net.WireStats()
	res.BaselineBytesPerPeriod = float64(bytes) / baselineRounds
	res.MetricsText = fleet[0].MetricsSnapshot().Text()
	return res, nil
}

// E12ScaleResult is the large-fleet discovery scenario: a fleet size
// whose wall-clock cost is prohibitive under real time (the staggered
// bootstrap alone paces out minutes of announce periods) but cheap under
// a Virtual clock, where only the event count is paid for.
type E12ScaleResult struct {
	Nodes          int
	RecordsPerNode int
	AnnouncePeriod time.Duration

	// BootConverge is first boot to full-fleet catalog convergence
	// (every node holds every other node's catalog at current version).
	BootConverge time.Duration
	// Steady wire cost per announce period once converged.
	SteadyBytesPerPeriod   float64
	SteadyPacketsPerPeriod float64
	// Converge is fresh-offer registration to fleet-wide resolvability.
	Converge time.Duration
}

// RunE12Scale boots a fleet of nodes × recordsPerNode, waits for full
// catalog convergence, then measures steady heartbeat wire cost and
// fresh-offer propagation — E12's measurements at a fleet size (hundreds
// of nodes) only reachable under virtual time. It skips E12's full-state
// baseline flood: at this scale the point is convergence, not contrast.
func RunE12Scale(clk clock.Clock, nodes, recordsPerNode int, seed int64) (*E12ScaleResult, error) {
	clk = clock.Or(clk)
	period := e12Period(nodes)
	res := &E12ScaleResult{Nodes: nodes, RecordsPerNode: recordsPerNode, AnnouncePeriod: period}

	net := netsim.New(netsim.Config{Seed: seed, Latency: 200 * time.Microsecond, Clock: clk})
	defer net.Close()
	start := clk.Now()
	fleet, err := buildE12Fleet(clk, net, nodes, recordsPerNode, period)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, n := range fleet {
			_ = n.Close()
		}
	}()
	res.BootConverge = clk.Since(start)

	// Quiesce: the bootstrap tail (residual sync repairs, ARQ
	// retransmissions) drains within a few periods once every catalog
	// version matches.
	quiesce := clk.Now().Add(10 * time.Minute)
	quiet := 0
	for quiet < 2 {
		net.ResetWireStats()
		clk.Sleep(period)
		pkts, _, _ := net.WireStats()
		if pkts <= uint64(nodes+2) {
			quiet++
		} else {
			quiet = 0
		}
		if clk.Now().After(quiesce) {
			return nil, fmt.Errorf("e12 scale: traffic never quiesced (%d pkts/period)", pkts)
		}
	}

	const steadyPeriods = 3
	net.ResetWireStats()
	clk.Sleep(steadyPeriods * period)
	packets, bytes, _ := net.WireStats()
	res.SteadyBytesPerPeriod = float64(bytes) / steadyPeriods
	res.SteadyPacketsPerPeriod = float64(packets) / steadyPeriods

	// One fresh-offer probe, first node to farthest node.
	last := fleet[len(fleet)-1]
	const name = "fn.fresh.scale"
	start = clk.Now()
	if err := fleet[0].RPC().Register(name, "bench", nil, nil,
		qos.CallQoS{}, func(any) (any, error) { return nil, nil }); err != nil {
		return nil, err
	}
	for last.Directory().ProviderCount(naming.KindFunction, name) == 0 {
		if clk.Since(start) > 60*time.Second {
			return nil, fmt.Errorf("e12 scale: fresh offer never converged")
		}
		clk.Sleep(time.Millisecond)
	}
	res.Converge = clk.Since(start)
	return res, nil
}

// E12ChurnResult measures re-convergence after a partition heals: a node
// cut off from the fleet misses registrations, then pulls the full state
// through anti-entropy sync once the partition heals.
type E12ChurnResult struct {
	Nodes           int
	RecordsPerNode  int
	MissedOffers    int
	AnnouncePeriod  time.Duration
	HealConverge    time.Duration // heal -> partitioned node fully caught up
	SyncsUsed       uint64        // anti-entropy requests the healed node issued
	HeartbeatsAfter uint64        // heartbeats it took to detect the gap
}

// RunE12Churn partitions one node away, registers offers it cannot see,
// heals, and times full re-convergence of the survivor.
func RunE12Churn(clk clock.Clock, nodes, recordsPerNode, missedOffers int, seed int64) (*E12ChurnResult, error) {
	clk = clock.Or(clk)
	period := e12Period(nodes)
	res := &E12ChurnResult{
		Nodes: nodes, RecordsPerNode: recordsPerNode,
		MissedOffers: missedOffers, AnnouncePeriod: period,
	}
	net := netsim.New(netsim.Config{Seed: seed, Latency: 200 * time.Microsecond, Clock: clk})
	defer net.Close()
	fleet, err := buildE12Fleet(clk, net, nodes, recordsPerNode, period)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, n := range fleet {
			_ = n.Close()
		}
	}()

	// Cut the last node off from the first (the registration source);
	// keep the failure detector quiet so the heal exercises version-gap
	// repair rather than a rejoin from scratch.
	src, cut := fleet[0], fleet[len(fleet)-1]
	net.Partition(src.ID(), cut.ID())
	handler := func(any) (any, error) { return nil, nil }
	for i := 0; i < missedOffers; i++ {
		if err := src.RPC().Register(fmt.Sprintf("fn.churn.%04d", i), "bench", nil, nil,
			qos.CallQoS{}, handler); err != nil {
			return nil, err
		}
	}
	// Wait until the (coalesced) registration deltas have actually been
	// broadcast and applied by a connected peer — otherwise the flush
	// could land after the heal and reach the cut node directly, and the
	// scenario would not exercise gap repair at all.
	// The full offer also carries one KindBearer record per datalink on
	// top of the registered resources.
	srcCount := recordsPerNode + missedOffers + len(src.Bearers())
	witness := fleet[1]
	settleDeadline := clk.Now().Add(30 * time.Second)
	for {
		if _, ver, known := witness.Directory().NodeVersion(src.ID()); known && ver == src.OfferVersion() &&
			witness.Directory().NodeRecordCount(src.ID()) == srcCount {
			break
		}
		if clk.Now().After(settleDeadline) {
			return nil, fmt.Errorf("e12 churn: partition-time offers never reached the survivors")
		}
		clk.Sleep(time.Millisecond)
	}
	statsBefore := cut.DiscoveryStats()

	net.Heal(src.ID(), cut.ID())
	healed := clk.Now()
	for {
		if _, ver, known := cut.Directory().NodeVersion(src.ID()); known && ver == src.OfferVersion() &&
			cut.Directory().NodeRecordCount(src.ID()) == srcCount {
			break
		}
		if clk.Since(healed) > 30*time.Second {
			return nil, fmt.Errorf("e12 churn: healed node never re-converged")
		}
		clk.Sleep(500 * time.Microsecond)
	}
	res.HealConverge = clk.Since(healed)
	statsAfter := cut.DiscoveryStats()
	res.SyncsUsed = statsAfter.SyncRequestsSent - statsBefore.SyncRequestsSent
	res.HeartbeatsAfter = statsAfter.HeartbeatsReceived - statsBefore.HeartbeatsReceived
	return res, nil
}
