package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/ingress"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// E17 quantifies the sharded receive pipeline: multi-sender ingest
// throughput against shard count, and the zero-allocation contract on the
// routed-frame path.
//
// Three phases:
//
//   - alloc: exact allocs per routed frame (testing.AllocsPerRun) through a
//     full container on a real clock — transport handler → ingress enqueue →
//     shard worker → decode → dispatch — for the zero-copy Owner handoff,
//     the pooled-copy fallback, and the ack-required path (dedup + pooled
//     ack encode + egress). All three pin at zero. The real clock matters:
//     the virtual clock's trigger park allocates a waiter per wake, which
//     is simulation bookkeeping, not wire-path cost.
//   - scaling: eight senders flood one container through the bearer handler
//     at 1/2/4/8 ingress shards; delivered frames/s is the drain-side
//     throughput (drop-oldest sheds the overrun, so producers never
//     block). Sender identities are chosen to spread evenly at every shard
//     count. Wall-clock, host-dependent.
//   - netsim: four publisher containers feed one four-shard subscriber over
//     a simulated network under the injected clock — deterministic
//     delivered counts through the full middleware stack.
type E17Result struct {
	Alloc   E17AllocResult
	Scaling []E17ScalingPoint
	Netsim  E17NetsimResult
	// MetricsText is the netsim subscriber's observability snapshot (the
	// ingress.* families included).
	MetricsText string
}

// E17AllocResult is the exact allocation count per routed frame for each
// receive-path variant.
type E17AllocResult struct {
	// OwnedPerFrame: the transport provided a refcounted buffer (UDP, bus)
	// and the pipeline retained it — the zero-copy handoff.
	OwnedPerFrame float64
	// CopyPerFrame: no Owner (netsim, stream) — one pooled copy, still no
	// GC allocation.
	CopyPerFrame float64
	// AckedPerFrame: FlagAckRequired adds dedup, pooled ack encode and an
	// egress enqueue to the owned path.
	AckedPerFrame float64
}

// E17ScalingPoint is one shard count of the multi-sender ingest sweep.
type E17ScalingPoint struct {
	Shards    int
	Senders   int
	Delivered uint64
	Dropped   uint64
	// FramesPerSec is delivered frames per wall second — drain throughput.
	FramesPerSec float64
}

// E17NetsimResult is the deterministic end-to-end phase.
type E17NetsimResult struct {
	Senders   int
	Samples   int // per sender
	Delivered int
	// WirePackets / WireBytes cover the publish window.
	WirePackets, WireBytes uint64
}

// RunE17 runs the sweep. samples sizes the netsim phase (per sender);
// scalingDur is the flood window per shard count (0 skips the wall-clock
// scaling phase); clk drives only the netsim phase — the alloc and scaling
// phases construct their own real-clock containers.
func RunE17(clk clock.Clock, samples int, scalingDur time.Duration, seed int64) (*E17Result, error) {
	clk = clock.Or(clk)
	res := &E17Result{}
	if err := e17Alloc(res); err != nil {
		return nil, fmt.Errorf("e17 alloc: %w", err)
	}
	if scalingDur > 0 {
		for _, shards := range []int{1, 2, 4, 8} {
			pt, err := e17ScalingPoint(shards, scalingDur)
			if err != nil {
				return nil, fmt.Errorf("e17 scaling %d shards: %w", shards, err)
			}
			res.Scaling = append(res.Scaling, pt)
		}
	}
	if err := e17Netsim(clk, res, samples, seed); err != nil {
		return nil, fmt.Errorf("e17 netsim: %w", err)
	}
	return res, nil
}

// ScalingRatio returns frames/s at `num` shards over frames/s at `den`
// shards (0 when either point is missing or empty).
func (r *E17Result) ScalingRatio(num, den int) float64 {
	var n, d float64
	for _, pt := range r.Scaling {
		if pt.Shards == num {
			n = pt.FramesPerSec
		}
		if pt.Shards == den {
			d = pt.FramesPerSec
		}
	}
	if d == 0 {
		return 0
	}
	return n / d
}

// e17Bearer is a minimal datagram bearer: it records the container's
// receive handler so the harness can inject packets exactly as a NIC
// dispatch loop would, and discards egress output (the measured path is
// receive-side). Group membership and addressing are irrelevant to it.
type e17Bearer struct {
	id transport.NodeID
	mu sync.Mutex
	h  transport.Handler
}

func (b *e17Bearer) Node() transport.NodeID              { return b.id }
func (b *e17Bearer) Send(transport.NodeID, []byte) error { return nil }
func (b *e17Bearer) SendGroup(string, []byte) error      { return nil }
func (b *e17Bearer) Join(string) error                   { return nil }
func (b *e17Bearer) Leave(string) error                  { return nil }
func (b *e17Bearer) Stats() transport.Stats              { return transport.Stats{} }
func (b *e17Bearer) Close() error                        { return nil }

func (b *e17Bearer) SetHandler(h transport.Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.h = h
}

func (b *e17Bearer) handler() transport.Handler {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.h
}

// e17Node builds a quiet container for ingest measurement: real clock, no
// peers, discovery ticking once an hour so nothing fires during a
// measurement window.
func e17Node(id transport.NodeID, shards int) (*core.Node, *e17Bearer, error) {
	bearer := &e17Bearer{id: id}
	node, err := core.NewNode(
		core.WithDatagram(bearer),
		core.WithAnnouncePeriod(time.Hour),
		core.WithIngressShards(shards),
	)
	if err != nil {
		return nil, nil, err
	}
	if bearer.handler() == nil {
		_ = node.Close()
		return nil, nil, fmt.Errorf("node installed no receive handler")
	}
	return node, bearer, nil
}

// e17Frame encodes the canonical ingest frame: a type the dispatcher
// decodes, dedups and drops at the routing switch, so the measurement is
// pure receive machinery with no engine behind it.
func e17Frame(flags uint8, seq uint64, payload int) []byte {
	raw, err := protocol.EncodeFrame(&protocol.Frame{
		Type:     protocol.MTFileCancel,
		Flags:    flags,
		Seq:      seq,
		Priority: qos.PriorityNormal,
		Channel:  "e17.ingest",
		Payload:  make([]byte, payload),
	})
	if err != nil {
		panic(err)
	}
	return raw
}

// e17Alloc measures exact allocations per routed frame through the full
// container receive path.
func e17Alloc(res *E17Result) error {
	node, bearer, err := e17Node("e17-alloc", 1)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	h := bearer.handler()

	// Each op injects one packet and spins until the pipeline has
	// dispatched it, so the shard worker's decode and dispatch land inside
	// the measurement window (AllocsPerRun counts process-global mallocs).
	done := node.IngressDelivered()
	feed := func(pkt transport.Packet) {
		done++
		h(pkt)
		for node.IngressDelivered() < done {
			runtime.Gosched()
		}
	}

	raw := e17Frame(0, 7, 64)
	copyOp := func() {
		feed(transport.Packet{From: "e17-src-copy", Payload: raw})
	}
	ownedOp := func() {
		buf := append(bufpool.Get(len(raw)), raw...)
		owner := bufpool.Share(buf)
		feed(transport.Packet{From: "e17-src-owned", Payload: buf, Owner: owner})
		owner.Release()
	}
	ackSeq := uint64(0)
	ackTemplate := protocol.Frame{
		Type:     protocol.MTFileCancel,
		Flags:    protocol.FlagAckRequired,
		Priority: qos.PriorityNormal,
		Channel:  "e17.ingest",
		Payload:  make([]byte, 64),
	}
	wire := protocol.FrameWireSize(&ackTemplate)
	ackedOp := func() {
		ackSeq++
		f := ackTemplate
		f.Seq = ackSeq
		buf, err := protocol.AppendFrame(bufpool.Get(wire), &f)
		if err != nil {
			panic(err)
		}
		owner := bufpool.Share(buf)
		feed(transport.Packet{From: "e17-src-acked", Payload: buf, Owner: owner})
		owner.Release()
	}

	measure := func(op func()) float64 {
		// Warm pools, per-sender dedup windows, lane state and intern
		// tables out of the measurement.
		for i := 0; i < 64; i++ {
			op()
		}
		runtime.GC()
		return testing.AllocsPerRun(200, op)
	}
	res.Alloc.CopyPerFrame = measure(copyOp)
	res.Alloc.OwnedPerFrame = measure(ownedOp)
	res.Alloc.AckedPerFrame = measure(ackedOp)
	return nil
}

// e17Senders picks `count` source identities that hash onto distinct
// shards of an 8-way pipeline — residues 0..count-1 in order — so the
// flood spreads evenly at every shard count in the sweep (distinct mod 8
// residues cover mod 4 and mod 2 evenly too).
func e17Senders(count int) []transport.NodeID {
	ids := make([]transport.NodeID, count)
	for i, probe := 0, 0; i < count; probe++ {
		id := transport.NodeID(fmt.Sprintf("e17-sender-%d", probe))
		if ingress.ShardFor(id, 8) == i {
			ids[i] = id
			i++
		}
	}
	return ids
}

// e17ScalingPoint floods one container with 8 concurrent senders for dur
// and reports drain-side throughput.
func e17ScalingPoint(shards int, dur time.Duration) (E17ScalingPoint, error) {
	node, bearer, err := e17Node("e17-scale", shards)
	if err != nil {
		return E17ScalingPoint{}, err
	}
	defer func() { _ = node.Close() }()
	h := bearer.handler()

	senders := e17Senders(8)
	pt := E17ScalingPoint{Shards: shards, Senders: len(senders)}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, id := range senders {
		id := id
		raw := e17Frame(0, 7, 200)
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkt := transport.Packet{From: id, Payload: raw}
			for !stop.Load() {
				h(pkt)
			}
		}()
	}
	start := time.Now()
	base := node.IngressDelivered()
	time.Sleep(dur)
	delivered := node.IngressDelivered() - base
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	pt.Delivered = delivered
	pt.Dropped = node.Metrics().SumCounters("ingress", "drops")
	pt.FramesPerSec = float64(delivered) / elapsed.Seconds()
	return pt, nil
}

// e17Netsim: four publishers feed one four-shard subscriber over a
// simulated network; deterministic under the injected clock.
func e17Netsim(clk clock.Clock, res *E17Result, samples int, seed int64) error {
	const senders = 4
	net := netsim.New(netsim.Config{Seed: seed, Latency: time.Millisecond, Clock: clk})
	defer net.Close()

	mk := func(id transport.NodeID, opts ...core.NodeOption) (*core.Node, error) {
		ep, err := net.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(append([]core.NodeOption{
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(100 * time.Millisecond),
		}, opts...)...)
	}

	gs, err := mk("gs", core.WithIngressShards(4))
	if err != nil {
		return err
	}
	defer func() { _ = gs.Close() }()

	typ := presentation.Uint32()
	var delivered atomic.Int64
	pubs := make([]*variables.Publisher, senders)
	for i := 0; i < senders; i++ {
		uav, err := mk(transport.NodeID(fmt.Sprintf("uav%d", i)))
		if err != nil {
			return err
		}
		defer func() { _ = uav.Close() }()
		name := fmt.Sprintf("e17.pos%d", i)
		pubs[i], err = uav.Variables().Offer(name, "bench", typ, qos.VariableQoS{Validity: time.Hour})
		if err != nil {
			return err
		}
		if err := waitProviders(clk, gs, naming.KindVariable, name, 1, 5*time.Second); err != nil {
			return err
		}
		sub, err := gs.Variables().Subscribe(name, typ, variables.SubscribeOptions{
			OnSample: func(any, time.Time) { delivered.Add(1) },
		})
		if err != nil {
			return err
		}
		defer sub.Close()
	}

	// Warm up until every flow delivers (group subscriptions landed).
	deadline := clk.Now().Add(5 * time.Second)
	for delivered.Load() < senders {
		if clk.Now().After(deadline) {
			return fmt.Errorf("only %d/%d flows delivered a first sample", delivered.Load(), senders)
		}
		for _, p := range pubs {
			if err := p.Publish(uint32(0)); err != nil {
				return err
			}
		}
		clk.Sleep(5 * time.Millisecond)
	}

	startPkts, startBytes, _ := net.WireStats()
	before := delivered.Load()
	for i := 0; i < samples; i++ {
		for _, p := range pubs {
			if err := p.Publish(uint32(i + 1)); err != nil {
				return err
			}
		}
		clk.Sleep(2 * time.Millisecond)
	}
	deadline = clk.Now().Add(5 * time.Second)
	for delivered.Load()-before < int64(samples*senders) && clk.Now().Before(deadline) {
		clk.Sleep(5 * time.Millisecond)
	}
	pkts, bytes, _ := net.WireStats()

	res.Netsim = E17NetsimResult{
		Senders:     senders,
		Samples:     samples,
		Delivered:   int(delivered.Load() - before),
		WirePackets: pkts - startPkts,
		WireBytes:   bytes - startBytes,
	}
	res.MetricsText = gs.MetricsSnapshot().Text()
	return nil
}
