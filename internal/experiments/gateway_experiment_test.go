package experiments

import (
	"testing"

	"uavmw/internal/clock"
)

// TestRunE16GatewayFanOutScales pins the gateway tentpole at CI scale:
// the air link costs the same regardless of audience size, the marginal
// per-client allocation cost is zero, and stalled consumers are evicted
// without dragging healthy clients' p99 past the acceptance bound.
func TestRunE16GatewayFanOutScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-phase gateway scale run; skipped in -short")
	}
	var res *E16Result
	el, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE16(clk, []int{200, 2000}, 10, 16)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("e16 virtual: %v scenario in %v wall", el.Virtual, el.Wall)

	for _, pt := range res.Sweep {
		want := int64(pt.Clients) * int64(pt.Samples)
		if pt.Delivered != want {
			t.Errorf("%d clients: delivered %d frames, want %d", pt.Clients, pt.Delivered, want)
		}
		if pt.AirBytes == 0 {
			t.Errorf("%d clients: no air traffic measured", pt.Clients)
		}
	}
	// 10x the clients must not move the air link: one fabric subscription
	// serves them all. Discovery heartbeats add noise, hence the slack.
	if res.AirFlatnessRatio > 1.5 || res.AirFlatnessRatio < 0.5 {
		t.Errorf("air bytes/sample ratio across the sweep = %.2f, want ~1 (flat)", res.AirFlatnessRatio)
	}

	// Steady-state allocations per delivered sample must not grow with
	// the audience: the encode is per-occurrence, the fan-out is free.
	if res.Alloc.PerClientMarginal > 0.01 {
		t.Errorf("marginal allocs per client per sample = %.4f (%.1f at %d clients, %.1f at %d), want 0",
			res.Alloc.PerClientMarginal,
			res.Alloc.SmallPerSample, res.Alloc.SmallClients,
			res.Alloc.BigPerSample, res.Alloc.BigClients)
	}

	// Every deliberately stalled consumer must be evicted...
	if res.Slow.Evicted != int64(res.Slow.StalledClients) {
		t.Errorf("evicted %d of %d stalled clients", res.Slow.Evicted, res.Slow.StalledClients)
	}
	// ...without stalling the other N-1: healthy completion p99 within 2x
	// the clean baseline (5ms absolute floor so a microsecond baseline
	// does not turn scheduler jitter into a failure).
	if res.Slow.StalledP99Ms > 2*res.Slow.BaselineP99Ms && res.Slow.StalledP99Ms > res.Slow.BaselineP99Ms+5 {
		t.Errorf("healthy p99 %.2fms with stalled consumers vs %.2fms baseline (>2x)",
			res.Slow.StalledP99Ms, res.Slow.BaselineP99Ms)
	}
}
