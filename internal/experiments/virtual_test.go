package experiments

import (
	"testing"

	"uavmw/internal/clock"
)

// Two virtual runs of the same scenario with the same seed must produce
// byte-identical results: the clock starts at the same epoch, the netsim
// medium draws from the same seeded stream, and event order is serialized
// by the clock — so every measured field (wire bytes, packet counts,
// convergence latencies) lands on exactly the same value. This is the
// regression for the determinism property itself; any time.Now or
// unmanaged wake-up sneaking back into a measured path shows up here as
// a flaky diff.
func TestVirtualRunsAreDeterministic(t *testing.T) {
	run := func() E12Result {
		var res *E12Result
		_, err := RunVirtual(func(clk clock.Clock) error {
			var err error
			res, err = RunE12(clk, 4, 25, 12)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results:\n  first:  %+v\n  second: %+v", a, b)
	}
	// The comparison above includes MetricsText: two same-seed runs must
	// export byte-identical observability snapshots. Guard against the
	// field silently becoming empty, which would make that vacuous.
	if a.MetricsText == "" {
		t.Fatal("E12 result carries no metrics snapshot")
	}
	if a.MetricsText != b.MetricsText {
		t.Fatal("same seed, different metrics snapshots") // unreachable given a == b; kept for clarity on partial failures
	}
}

// The 256-node discovery scenario exists only because of the virtual
// clock: its announce period is 1s and the staggered bootstrap alone
// paces out minutes of scenario time, which under real time would be a
// minutes-long test. Under virtual time the fleet must boot, converge,
// settle to heartbeat-only wire cost, and propagate a fresh offer in
// well under a period.
func TestE12ScaleConverges256Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node fleet is the CI-scale scenario; skipped in -short")
	}
	var res *E12ScaleResult
	el, err := RunVirtual(func(clk clock.Clock) error {
		var err error
		res, err = RunE12Scale(clk, 256, 2, 256)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("e12 scale: boot %v, steady %.0f pkts/period, converge %v; %v of scenario in %v of wall (%.0fx)",
		res.BootConverge, res.SteadyPacketsPerPeriod, res.Converge,
		el.Virtual, el.Wall, el.Speedup())
	if res.Converge >= res.AnnouncePeriod {
		t.Errorf("fresh offer converged in %v, want under one announce period (%v)",
			res.Converge, res.AnnouncePeriod)
	}
	// Steady state is heartbeat digests: one multicast per node per
	// period, with a small allowance for residual repair traffic.
	if res.SteadyPacketsPerPeriod > float64(res.Nodes)*1.5 {
		t.Errorf("steady wire cost %.0f pkts/period for %d nodes: fleet did not settle to heartbeats",
			res.SteadyPacketsPerPeriod, res.Nodes)
	}
}
