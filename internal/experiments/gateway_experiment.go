package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/gateway"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// E16 quantifies the ground gateway's scale contract: N external clients
// following live telemetry through one gateway must cost the air link
// nothing extra and the gateway a flat, allocation-free amount per
// client.
//
// Three phases:
//
//   - sweep (virtual time): 1k/10k/100k in-memory clients behind one
//     gateway node that subscribes once over a simulated air link. The
//     air-side bytes per published sample must be flat in the client
//     count — the whole point of shared-subscription multiplexing.
//   - alloc (real clock): marginal allocations per delivered sample per
//     client across a small and a large audience, via the public
//     subscribe path. The encode is paid once per occurrence; the
//     per-client delta must pin at zero.
//   - slow (real clock): per-sample completion latency across 1k healthy
//     clients with and without deliberately stalled consumers attached.
//     The stalled clients must be evicted, and the healthy p99 must stay
//     within the eviction criterion bound of the clean baseline.
type E16Result struct {
	Sweep []E16SweepPoint
	Alloc E16AllocResult
	Slow  E16SlowResult
	// AirFlatnessRatio is bytes-per-sample at the largest sweep point
	// over the smallest — ~1.0 when the air link is truly flat.
	AirFlatnessRatio float64
	// MetricsText is the gateway node's observability snapshot from the
	// largest sweep point (gateway.* families included).
	MetricsText string
}

// E16SweepPoint is one client-count point of the virtual-time sweep.
type E16SweepPoint struct {
	Clients   int
	Samples   int
	Delivered int64 // frames received across all clients
	// AirPackets/AirBytes is simulated-wire cost during the publish
	// window (discovery heartbeats included; they are steady-state).
	AirPackets, AirBytes uint64
	AirBytesPerSample    float64
	// ClientBytes is what the gateway pushed to external consumers.
	ClientBytes int64
}

// E16AllocResult is the fan-out allocation gate.
type E16AllocResult struct {
	SmallClients, BigClients int
	SmallPerSample           float64 // allocs per delivered sample, small audience
	BigPerSample             float64
	// PerClientMarginal is (big-small)/(bigClients-smallClients): the
	// steady-state allocation cost of one more client per sample.
	PerClientMarginal float64
}

// E16SlowResult is the slow-consumer isolation phase.
type E16SlowResult struct {
	HealthyClients int
	StalledClients int
	Samples        int
	Evicted        int64
	// Per-sample completion latency (publish → last healthy delivery).
	BaselineP50Ms, BaselineP99Ms float64
	StalledP50Ms, StalledP99Ms   float64
}

// e16Conn counts delivered frames and bytes; never blocks.
type e16Conn struct {
	frames *atomic.Int64
	bytes  *atomic.Int64
}

func (c *e16Conn) Write(p []byte) (int, error) {
	c.bytes.Add(int64(len(p)))
	c.frames.Add(1)
	return len(p), nil
}
func (c *e16Conn) Close() error                     { return nil }
func (c *e16Conn) SetWriteDeadline(time.Time) error { return nil }

// e16StallConn models a jammed consumer: writes park until the deadline
// and fail with a timeout.
type e16StallConn struct {
	deadline atomic.Int64 // unix nanos
}

func (c *e16StallConn) Write(p []byte) (int, error) {
	if d := time.Until(time.Unix(0, c.deadline.Load())); d > 0 {
		time.Sleep(d)
	}
	return 0, errE16Stall{}
}
func (c *e16StallConn) Close() error { return nil }
func (c *e16StallConn) SetWriteDeadline(t time.Time) error {
	c.deadline.Store(t.UnixNano())
	return nil
}

type errE16Stall struct{}

func (errE16Stall) Error() string   { return "e16: simulated stalled consumer" }
func (errE16Stall) Timeout() bool   { return true }
func (errE16Stall) Temporary() bool { return true }

// RunE16 runs the sweep at the given client counts (sorted ascending)
// with `samples` published points per sweep step.
func RunE16(clk clock.Clock, clientCounts []int, samples int, seed int64) (*E16Result, error) {
	clk = clock.Or(clk)
	res := &E16Result{}

	for i, n := range clientCounts {
		pt, metrics, err := e16Sweep(clk, n, samples, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("e16 sweep %d clients: %w", n, err)
		}
		res.Sweep = append(res.Sweep, pt)
		res.MetricsText = metrics
	}
	if len(res.Sweep) > 1 {
		first, last := res.Sweep[0], res.Sweep[len(res.Sweep)-1]
		if first.AirBytesPerSample > 0 {
			res.AirFlatnessRatio = last.AirBytesPerSample / first.AirBytesPerSample
		}
	} else if len(res.Sweep) == 1 {
		res.AirFlatnessRatio = 1
	}

	alloc, err := e16Alloc()
	if err != nil {
		return nil, fmt.Errorf("e16 alloc: %w", err)
	}
	res.Alloc = alloc

	slow, err := e16Slow(samples, seed)
	if err != nil {
		return nil, fmt.Errorf("e16 slow: %w", err)
	}
	res.Slow = slow
	return res, nil
}

// e16Pair builds a uav publisher node and a gateway-hosting node on one
// simulated medium.
func e16Pair(clk clock.Clock, seed int64, opts gateway.Options) (*netsim.Net, *core.Node, *gateway.Gateway, *variables.Publisher, error) {
	clk = clock.Or(clk)
	sim := netsim.New(netsim.Config{Seed: seed, Latency: 2 * time.Millisecond, Clock: clk})
	fail := func(err error) (*netsim.Net, *core.Node, *gateway.Gateway, *variables.Publisher, error) {
		sim.Close()
		return nil, nil, nil, nil, err
	}
	mk := func(id transport.NodeID) (*core.Node, error) {
		ep, err := sim.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(100*time.Millisecond),
		)
	}
	uav, err := mk("uav")
	if err != nil {
		return fail(err)
	}
	gs, err := mk("gs")
	if err != nil {
		_ = uav.Close()
		return fail(err)
	}
	pub, err := uav.Variables().Offer("e16.pos", "bench", presentation.Uint32(), qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		_ = uav.Close()
		_ = gs.Close()
		return fail(err)
	}
	if err := waitProviders(clk, gs, naming.KindVariable, "e16.pos", 1, 5*time.Second); err != nil {
		_ = uav.Close()
		_ = gs.Close()
		return fail(err)
	}
	g := gateway.New(gs, opts)
	// Closing the gateway closes its clients and fabric subscriptions;
	// closing the nodes tears the rest down. Caller owns all of it via
	// the returned cleanup ordering (gateway, uav node, gs node, sim).
	return sim, uav, g, pub, nil
}

// e16Sweep runs one virtual-time point: n clients, `samples` published
// values, air-link cost measured over the publish window.
func e16Sweep(clk clock.Clock, n, samples int, seed int64) (E16SweepPoint, string, error) {
	pt := E16SweepPoint{Clients: n, Samples: samples}
	sim, uav, g, pub, err := e16Pair(clk, seed, gateway.Options{Shards: 8, QueueLen: 8})
	if err != nil {
		return pt, "", err
	}
	defer sim.Close()
	defer func() { _ = uav.Close() }()
	defer func() { _ = g.Node().Close() }()
	defer g.Close()

	var frames, bytes atomic.Int64
	for i := 0; i < n; i++ {
		c, err := g.Attach(&e16Conn{frames: &frames, bytes: &bytes})
		if err != nil {
			return pt, "", err
		}
		if err := c.Subscribe(gateway.StreamVariable, "e16.pos"); err != nil {
			return pt, "", err
		}
	}

	// Warm-up: publish until every client has heard at least one sample
	// (group join and first fan-out landed).
	deadline := clk.Now().Add(10 * time.Second)
	for frames.Load() < int64(n) {
		if clk.Now().After(deadline) {
			return pt, "", fmt.Errorf("warm-up: %d/%d clients heard a sample", frames.Load(), n)
		}
		if err := pub.Publish(uint32(0)); err != nil {
			return pt, "", err
		}
		clk.Sleep(5 * time.Millisecond)
	}

	startPkts, startBytes, _ := sim.WireStats()
	startFrames, startClientBytes := frames.Load(), bytes.Load()
	for i := 0; i < samples; i++ {
		if err := pub.Publish(uint32(i + 1)); err != nil {
			return pt, "", err
		}
		clk.Sleep(2 * time.Millisecond)
	}
	want := startFrames + int64(samples)*int64(n)
	deadline = clk.Now().Add(10 * time.Second)
	for frames.Load() < want && clk.Now().Before(deadline) {
		clk.Sleep(5 * time.Millisecond)
	}
	pkts, wbytes, _ := sim.WireStats()

	pt.Delivered = frames.Load() - startFrames
	pt.AirPackets = pkts - startPkts
	pt.AirBytes = wbytes - startBytes
	pt.ClientBytes = bytes.Load() - startClientBytes
	if samples > 0 {
		pt.AirBytesPerSample = float64(pt.AirBytes) / float64(samples)
	}
	return pt, g.Node().MetricsSnapshot().Text(), nil
}

// e16AllocPoint measures allocations per delivered sample with n clients
// attached, publish→encode→fan-out→write inclusive, on a quiet
// real-clock node with a local publisher (no air traffic in the loop).
func e16AllocPoint(n int) (float64, error) {
	sim := netsim.New(netsim.Config{Seed: 99, Latency: time.Millisecond})
	defer sim.Close()
	ep, err := sim.Node("gs")
	if err != nil {
		return 0, err
	}
	node, err := core.NewNode(core.WithDatagram(ep), core.WithAnnouncePeriod(time.Hour))
	if err != nil {
		return 0, err
	}
	defer func() { _ = node.Close() }()

	pub, err := node.Variables().Offer("e16.alloc", "bench", presentation.Uint32(), qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		return 0, err
	}
	node.AnnounceNow() // installs the record in the local directory
	g := gateway.New(node, gateway.Options{Shards: 4, QueueLen: 8})
	defer g.Close()

	var frames, bytes atomic.Int64
	for i := 0; i < n; i++ {
		c, err := g.Attach(&e16Conn{frames: &frames, bytes: &bytes})
		if err != nil {
			return 0, err
		}
		if err := c.Subscribe(gateway.StreamVariable, "e16.alloc"); err != nil {
			return 0, err
		}
	}

	var v atomic.Uint32
	op := func() {
		want := frames.Load() + int64(n)
		if err := pub.Publish(v.Add(1)); err != nil {
			panic(err)
		}
		for frames.Load() < want {
			runtime.Gosched()
		}
	}
	for i := 0; i < 16; i++ {
		op()
	}
	runtime.GC()
	return testing.AllocsPerRun(100, op), nil
}

// e16Alloc computes the marginal per-client allocation cost.
func e16Alloc() (E16AllocResult, error) {
	const small, big = 16, 256
	res := E16AllocResult{SmallClients: small, BigClients: big}
	var err error
	if res.SmallPerSample, err = e16AllocPoint(small); err != nil {
		return res, err
	}
	if res.BigPerSample, err = e16AllocPoint(big); err != nil {
		return res, err
	}
	res.PerClientMarginal = (res.BigPerSample - res.SmallPerSample) / float64(big-small)
	return res, nil
}

// e16SlowRun measures per-sample completion latency (publish → last
// healthy delivery) across `healthy` clients with `stalled` jammed
// consumers attached, on the real clock.
func e16SlowRun(healthy, stalled, samples int, seed int64) (p50, p99 float64, evicted int64, err error) {
	sim, uav, g, pub, err := e16Pair(nil, seed, gateway.Options{
		Shards:     8,
		QueueLen:   16,
		WriteStall: 50 * time.Millisecond,
		StallLimit: 3,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer sim.Close()
	defer func() { _ = uav.Close() }()
	defer func() { _ = g.Node().Close() }()
	defer g.Close()

	var frames, bytes atomic.Int64
	for i := 0; i < healthy; i++ {
		c, err := g.Attach(&e16Conn{frames: &frames, bytes: &bytes})
		if err != nil {
			return 0, 0, 0, err
		}
		if err := c.Subscribe(gateway.StreamVariable, "e16.pos"); err != nil {
			return 0, 0, 0, err
		}
	}
	for i := 0; i < stalled; i++ {
		c, err := g.Attach(&e16StallConn{})
		if err != nil {
			return 0, 0, 0, err
		}
		if err := c.Subscribe(gateway.StreamVariable, "e16.pos"); err != nil {
			return 0, 0, 0, err
		}
	}

	// Warm-up: every healthy client hears a sample; the stalled clients
	// take their one fast-path stall here, outside the measured window.
	deadline := time.Now().Add(10 * time.Second)
	for frames.Load() < int64(healthy) {
		if time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("warm-up: %d/%d clients heard a sample", frames.Load(), healthy)
		}
		if err := pub.Publish(uint32(0)); err != nil {
			return 0, 0, 0, err
		}
		time.Sleep(5 * time.Millisecond)
	}

	lat := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		want := frames.Load() + int64(healthy)
		t0 := time.Now()
		if err := pub.Publish(uint32(i + 1)); err != nil {
			return 0, 0, 0, err
		}
		sampleDeadline := t0.Add(2 * time.Second)
		for frames.Load() < want {
			if time.Now().After(sampleDeadline) {
				return 0, 0, 0, fmt.Errorf("sample %d: %d/%d deliveries", i, frames.Load()-(want-int64(healthy)), healthy)
			}
			runtime.Gosched()
		}
		lat = append(lat, time.Since(t0))
		time.Sleep(time.Millisecond)
	}

	// Stalled clients must be gone: 3 misses x 50ms fits well inside the
	// measurement window, but wait out stragglers to be exact.
	snap := func() int64 {
		return int64(g.Node().Metrics().SumCounters("gateway", "evictions"))
	}
	deadline = time.Now().Add(5 * time.Second)
	for snap() < int64(stalled) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return quantileMs(lat, 0.50), quantileMs(lat, 0.99), snap(), nil
}

// e16Slow runs the clean baseline and the stalled-consumer run.
func e16Slow(samples int, seed int64) (E16SlowResult, error) {
	const healthy, stalled = 1000, 4
	if samples < 50 {
		samples = 50
	}
	res := E16SlowResult{HealthyClients: healthy, StalledClients: stalled, Samples: samples}
	var err error
	var evicted int64
	if res.BaselineP50Ms, res.BaselineP99Ms, evicted, err = e16SlowRun(healthy, 0, samples, seed); err != nil {
		return res, err
	}
	if evicted != 0 {
		return res, fmt.Errorf("baseline run evicted %d clients", evicted)
	}
	if res.StalledP50Ms, res.StalledP99Ms, res.Evicted, err = e16SlowRun(healthy, stalled, samples, seed+1); err != nil {
		return res, err
	}
	return res, nil
}

// quantileMs returns the q-quantile of lat in milliseconds (nearest-rank).
func quantileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
