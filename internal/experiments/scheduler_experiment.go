package experiments

import (
	"sync"
	"time"

	"uavmw/internal/metrics"
	"uavmw/internal/qos"
	"uavmw/internal/scheduler"
)

// RunE8 loads a fixed-priority pool with a background flood of bulk jobs
// while foreground jobs of every priority arrive; it reports the queue
// latency distribution per class. The soft-real-time claim (§6) holds if
// critical-class latency stays low and bounded while bulk latency grows
// with load.
func RunE8(workers, backgroundJobs, foregroundJobs int, jobWork time.Duration) (*E8Result, error) {
	pool := scheduler.NewPool(scheduler.WithWorkers(workers), scheduler.WithQueueCap(1<<17))
	defer pool.Stop()

	res := &E8Result{
		Workers:    workers,
		Load:       backgroundJobs,
		Priorities: make(map[qos.Priority]*metrics.Histogram, qos.NumLevels()),
	}
	for _, pr := range qos.Levels() {
		res.Priorities[pr] = &metrics.Histogram{}
	}

	busy := func() {
		deadline := time.Now().Add(jobWork)
		for time.Now().Before(deadline) {
		}
	}

	var wg sync.WaitGroup
	// Background flood at bulk priority.
	for i := 0; i < backgroundJobs; i++ {
		wg.Add(1)
		if err := pool.Submit(qos.PriorityBulk, func() {
			busy()
			wg.Done()
		}); err != nil {
			wg.Done()
			return nil, err
		}
	}
	// Foreground jobs across all classes, submitted while the flood
	// drains; their enqueue->run delay is the measurement.
	for i := 0; i < foregroundJobs; i++ {
		for _, pr := range qos.Levels() {
			pr := pr
			wg.Add(1)
			enqueued := time.Now()
			if err := pool.Submit(pr, func() {
				res.Priorities[pr].Observe(time.Since(enqueued))
				busy()
				wg.Done()
			}); err != nil {
				wg.Done()
				return nil, err
			}
		}
		time.Sleep(jobWork) // arrival pacing
	}
	wg.Wait()
	return res, nil
}
