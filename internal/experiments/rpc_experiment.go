package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/metrics"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/rpc"
	"uavmw/internal/transport"
)

// E11Result measures the concurrent RPC engine (§4.3) under a stalled
// pinned provider: throughput and latency at N concurrent callers, with
// and without hedged failover, under netsim loss. The pinned provider
// sleeps past the call deadline, so every call that meets its deadline did
// so by reaching the redundant fast provider — by hedging, or by an MTBusy
// shed, or not at all.
type E11Result struct {
	Callers    int
	Hedged     bool
	Loss       float64
	Deadline   time.Duration
	SlowDelay  time.Duration
	OK         int                // calls completed within the deadline
	Failed     int                // calls that missed the deadline
	Hedges     uint64             // speculative dispatches issued
	BusyRej    uint64             // requests shed by the slow provider
	Wall       time.Duration      // wall clock for the whole run
	Throughput float64            // successful calls per second
	Latency    *metrics.Histogram // successful-call latency
}

// RunE11 runs callers goroutines, each issuing callsPerCaller invocations
// of a function offered by two providers: "a-slow" (which static binding
// pins first, and which sleeps slowDelay per call) and "b-fast". With
// slowDelay beyond the deadline, un-hedged calls burn their whole budget
// on the stalled pin; hedged calls dispatch speculatively to the fast
// replica after 20% of the deadline and win.
func RunE11(clk clock.Clock, callers, callsPerCaller int, hedged bool, loss float64, slowDelay time.Duration, seed int64) (*E11Result, error) {
	clk = clock.Or(clk)
	const deadline = 250 * time.Millisecond
	res := &E11Result{
		Callers:   callers,
		Hedged:    hedged,
		Loss:      loss,
		Deadline:  deadline,
		SlowDelay: slowDelay,
		Latency:   &metrics.Histogram{},
	}

	net := netsim.New(netsim.Config{Loss: loss, Seed: seed, Latency: 300 * time.Microsecond, Clock: clk})
	defer net.Close()
	mk := func(id transport.NodeID) (*core.Node, error) {
		ep, err := net.Node(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithClock(clk),
			core.WithDatagram(ep),
			core.WithAnnouncePeriod(2*time.Second), // deltas announce registrations; heartbeats stay out of the way
			core.WithARQ(protocol.WithTimeout(4*time.Millisecond), protocol.WithMaxRetries(15)),
		)
	}
	slow, err := mk("a-slow")
	if err != nil {
		return nil, err
	}
	defer func() { _ = slow.Close() }()
	fast, err := mk("b-fast")
	if err != nil {
		return nil, err
	}
	defer func() { _ = fast.Close() }()
	client, err := mk("client")
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()

	retT := presentation.String_()
	if err := slow.RPC().Register("e11.fn", "bench", nil, retT, qos.CallQoS{},
		func(any) (any, error) {
			if slowDelay > 0 {
				clk.Sleep(slowDelay)
			}
			return "a-slow", nil
		}); err != nil {
		return nil, err
	}
	if err := fast.RPC().Register("e11.fn", "bench", nil, retT, qos.CallQoS{},
		func(any) (any, error) { return "b-fast", nil }); err != nil {
		return nil, err
	}
	if err := waitProviders(clk, client, kindFunction, "e11.fn", 2, 5*time.Second); err != nil {
		return nil, err
	}

	q := qos.CallQoS{
		Binding:  qos.BindStatic, // pins the lexicographically-lowest node: a-slow
		Deadline: deadline,
	}
	if hedged {
		q.HedgeAfter = 0.2
	}

	type tally struct {
		ok, failed int
	}
	var (
		mu      sync.Mutex
		lats    []time.Duration
		totals  tally
		wg      sync.WaitGroup
		ctx     = context.Background()
		callErr error
	)
	start := clk.Now()
	for c := 0; c < callers; c++ {
		wg.Add(1)
		clock.Go(clk, func() {
			defer wg.Done()
			local := tally{}
			localLats := make([]time.Duration, 0, callsPerCaller)
			for i := 0; i < callsPerCaller; i++ {
				t0 := clk.Now()
				_, err := client.RPC().Call(ctx, "e11.fn", nil, nil, retT, q)
				if err != nil {
					if !errors.Is(err, rpc.ErrDeadline) && !errors.Is(err, rpc.ErrAllProvidersFailed) {
						mu.Lock()
						if callErr == nil {
							callErr = fmt.Errorf("e11 unexpected call error: %w", err)
						}
						mu.Unlock()
						return
					}
					local.failed++
					continue
				}
				local.ok++
				localLats = append(localLats, clk.Since(t0))
			}
			mu.Lock()
			totals.ok += local.ok
			totals.failed += local.failed
			lats = append(lats, localLats...)
			mu.Unlock()
		})
	}
	// Caller goroutines are registered with the clock so their measured
	// windows (t0 -> reply) cannot have virtual time advance underneath the
	// dispatch work; the coordinator itself must not stall virtual time
	// while it waits for them.
	clock.Blocking(clk, wg.Wait)
	res.Wall = clk.Since(start)
	if callErr != nil {
		return nil, callErr
	}
	res.OK = totals.ok
	res.Failed = totals.failed
	for _, d := range lats {
		res.Latency.Observe(d)
	}
	res.Hedges = client.RPC().Hedges()
	res.BusyRej = slow.RPC().BusyRejects()
	if res.Wall > 0 {
		res.Throughput = float64(res.OK) / res.Wall.Seconds()
	}
	return res, nil
}
