package telemetry

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleFix() Fix {
	return Fix{
		Lat:       41.275,
		Lon:       1.987,
		AltM:      120.5,
		SpeedMS:   25,
		CourseDeg: 92.4,
		Time:      time.Date(2026, 6, 10, 12, 30, 45, 0, time.UTC),
		Valid:     true,
	}
}

func TestRMCRoundTrip(t *testing.T) {
	f := sampleFix()
	raw := EncodeRMC(f)
	if !strings.HasPrefix(raw, "$GPRMC,") {
		t.Fatalf("sentence %q", raw)
	}
	got, err := ParseRMC(raw)
	if err != nil {
		t.Fatalf("ParseRMC(%q): %v", raw, err)
	}
	if math.Abs(got.Lat-f.Lat) > 1e-5 || math.Abs(got.Lon-f.Lon) > 1e-5 {
		t.Errorf("position (%v,%v) vs (%v,%v)", got.Lat, got.Lon, f.Lat, f.Lon)
	}
	if math.Abs(got.SpeedMS-f.SpeedMS) > 0.1 {
		t.Errorf("speed %v vs %v", got.SpeedMS, f.SpeedMS)
	}
	if math.Abs(got.CourseDeg-f.CourseDeg) > 0.1 {
		t.Errorf("course %v vs %v", got.CourseDeg, f.CourseDeg)
	}
	if !got.Valid {
		t.Error("validity lost")
	}
}

func TestGGARoundTrip(t *testing.T) {
	f := sampleFix()
	raw := EncodeGGA(f)
	got, err := ParseGGA(raw)
	if err != nil {
		t.Fatalf("ParseGGA(%q): %v", raw, err)
	}
	if math.Abs(got.AltM-f.AltM) > 0.1 {
		t.Errorf("altitude %v vs %v", got.AltM, f.AltM)
	}
	if !got.Valid {
		t.Error("fix quality lost")
	}
}

func TestSouthWestHemispheres(t *testing.T) {
	f := sampleFix()
	f.Lat, f.Lon = -33.8688, -151.2093 // negative on both axes
	got, err := ParseRMC(EncodeRMC(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lat >= 0 || got.Lon >= 0 {
		t.Errorf("hemisphere signs lost: %v,%v", got.Lat, got.Lon)
	}
	if math.Abs(got.Lat-f.Lat) > 1e-5 || math.Abs(got.Lon-f.Lon) > 1e-5 {
		t.Errorf("(%v,%v) vs (%v,%v)", got.Lat, got.Lon, f.Lat, f.Lon)
	}
}

func TestInvalidFixStatus(t *testing.T) {
	f := sampleFix()
	f.Valid = false
	got, err := ParseRMC(EncodeRMC(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid {
		t.Error("void status parsed as valid")
	}
	gga, err := ParseGGA(EncodeGGA(f))
	if err != nil {
		t.Fatal(err)
	}
	if gga.Valid {
		t.Error("quality-0 parsed as valid")
	}
}

func TestChecksumRejected(t *testing.T) {
	raw := EncodeRMC(sampleFix())
	bad := raw[:len(raw)-2] + "00"
	if _, err := ParseRMC(bad); err == nil {
		t.Error("corrupt checksum accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "$", "GPRMC,no-dollar", "$GPRMC,123*", "$GPRMC,123*ZZ",
		"$GPGGA,090000.00,4116.5000,N,00159.2200,E,1,08,1.0,120.0,M,0.0,M,,*00",
	}
	for _, raw := range cases {
		if _, err := ParseRMC(raw); err == nil {
			t.Errorf("ParseRMC(%q) accepted", raw)
		}
	}
	// GGA parser must reject RMC sentences.
	if _, err := ParseGGA(EncodeRMC(sampleFix())); err == nil {
		t.Error("ParseGGA accepted GPRMC")
	}
	if _, err := ParseRMC(EncodeGGA(sampleFix())); err == nil {
		t.Error("ParseRMC accepted GPGGA")
	}
}

func TestEncodeBurst(t *testing.T) {
	burst := Encode(sampleFix())
	lines := strings.Split(strings.TrimSpace(burst), "\r\n")
	if len(lines) != 2 {
		t.Fatalf("burst = %q", burst)
	}
	if _, err := ParseRMC(lines[0]); err != nil {
		t.Errorf("line 1: %v", err)
	}
	if _, err := ParseGGA(lines[1]); err != nil {
		t.Errorf("line 2: %v", err)
	}
}

func TestPositionRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(latRaw, lonRaw uint32) bool {
		lat := float64(latRaw%170000)/1000 - 85  // [-85, 85)
		lon := float64(lonRaw%358000)/1000 - 179 // [-179, 179)
		f := Fix{Lat: lat, Lon: lon, Time: time.Unix(1_750_000_000, 0), Valid: true}
		got, err := ParseRMC(EncodeRMC(f))
		if err != nil {
			return false
		}
		// 4 decimal NMEA minutes ≈ 0.18 m of precision; allow 1e-5 deg.
		return math.Abs(got.Lat-lat) < 2e-5 && math.Abs(got.Lon-lon) < 2e-5
	}, cfg); err != nil {
		t.Error(err)
	}
}
