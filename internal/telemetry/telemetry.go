// Package telemetry implements the external telemetry interface of the
// paper's §6 anecdote: "the telemetry interface with FlightGear simulator
// has been done by a person without previous knowledge of the architecture
// in only 2 days". It encodes aircraft state as NMEA-0183 sentences (the
// lingua franca of GPS consumers, which FlightGear accepts) and parses them
// back, so any external tool can consume the middleware's position
// variable through a byte stream.
package telemetry

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Fix is the telemetry sample exchanged with external consumers.
type Fix struct {
	// Lat, Lon in signed degrees.
	Lat, Lon float64
	// AltM in meters.
	AltM float64
	// SpeedMS is ground speed in m/s.
	SpeedMS float64
	// CourseDeg is ground track in degrees.
	CourseDeg float64
	// Time is the fix instant (UTC).
	Time time.Time
	// Valid reports GPS fix validity.
	Valid bool
}

// ErrBadSentence tags parse failures.
var ErrBadSentence = errors.New("bad NMEA sentence")

const (
	knotsPerMS = 1.9438444924406046
)

// checksum computes the NMEA XOR checksum of the payload between '$' and '*'.
func checksum(payload string) byte {
	var c byte
	for i := 0; i < len(payload); i++ {
		c ^= payload[i]
	}
	return c
}

// latField renders latitude as ddmm.mmmm plus hemisphere.
func latField(lat float64) (string, string) {
	hemi := "N"
	if lat < 0 {
		hemi = "S"
		lat = -lat
	}
	deg := math.Floor(lat)
	minutes := (lat - deg) * 60
	return fmt.Sprintf("%02.0f%07.4f", deg, minutes), hemi
}

// lonField renders longitude as dddmm.mmmm plus hemisphere.
func lonField(lon float64) (string, string) {
	hemi := "E"
	if lon < 0 {
		hemi = "W"
		lon = -lon
	}
	deg := math.Floor(lon)
	minutes := (lon - deg) * 60
	return fmt.Sprintf("%03.0f%07.4f", deg, minutes), hemi
}

// EncodeRMC renders a $GPRMC sentence (position, speed, course).
func EncodeRMC(f Fix) string {
	status := "V"
	if f.Valid {
		status = "A"
	}
	latS, latH := latField(f.Lat)
	lonS, lonH := lonField(f.Lon)
	payload := fmt.Sprintf("GPRMC,%s,%s,%s,%s,%s,%s,%.1f,%.1f,%s,,",
		f.Time.UTC().Format("150405.00"), status,
		latS, latH, lonS, lonH,
		f.SpeedMS*knotsPerMS, f.CourseDeg,
		f.Time.UTC().Format("020106"))
	return fmt.Sprintf("$%s*%02X", payload, checksum(payload))
}

// EncodeGGA renders a $GPGGA sentence (position, altitude, fix quality).
func EncodeGGA(f Fix) string {
	quality := 0
	if f.Valid {
		quality = 1
	}
	latS, latH := latField(f.Lat)
	lonS, lonH := lonField(f.Lon)
	payload := fmt.Sprintf("GPGGA,%s,%s,%s,%s,%s,%d,08,1.0,%.1f,M,0.0,M,,",
		f.Time.UTC().Format("150405.00"),
		latS, latH, lonS, lonH,
		quality, f.AltM)
	return fmt.Sprintf("$%s*%02X", payload, checksum(payload))
}

// Encode renders the standard two-sentence burst for one fix.
func Encode(f Fix) string {
	return EncodeRMC(f) + "\r\n" + EncodeGGA(f) + "\r\n"
}

// verify splits a raw sentence, checking frame and checksum, returning the
// comma-separated fields (first field is the sentence type).
func verify(raw string) ([]string, error) {
	raw = strings.TrimSpace(raw)
	if len(raw) < 9 || raw[0] != '$' {
		return nil, fmt.Errorf("telemetry: %q: %w", raw, ErrBadSentence)
	}
	star := strings.LastIndexByte(raw, '*')
	if star < 0 || star+3 > len(raw) {
		return nil, fmt.Errorf("telemetry: missing checksum: %w", ErrBadSentence)
	}
	payload := raw[1:star]
	want, err := strconv.ParseUint(raw[star+1:star+3], 16, 8)
	if err != nil {
		return nil, fmt.Errorf("telemetry: checksum field: %w", ErrBadSentence)
	}
	if checksum(payload) != byte(want) {
		return nil, fmt.Errorf("telemetry: checksum mismatch: %w", ErrBadSentence)
	}
	return strings.Split(payload, ","), nil
}

func parseCoord(field, hemi string, degDigits int) (float64, error) {
	if len(field) < degDigits+2 {
		return 0, fmt.Errorf("telemetry: coordinate %q: %w", field, ErrBadSentence)
	}
	deg, err := strconv.ParseFloat(field[:degDigits], 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: coordinate %q: %w", field, ErrBadSentence)
	}
	minutes, err := strconv.ParseFloat(field[degDigits:], 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: coordinate %q: %w", field, ErrBadSentence)
	}
	v := deg + minutes/60
	if hemi == "S" || hemi == "W" {
		v = -v
	}
	return v, nil
}

// ParseRMC extracts position/speed/course from a $GPRMC sentence.
func ParseRMC(raw string) (Fix, error) {
	fields, err := verify(raw)
	if err != nil {
		return Fix{}, err
	}
	if fields[0] != "GPRMC" || len(fields) < 10 {
		return Fix{}, fmt.Errorf("telemetry: not GPRMC: %w", ErrBadSentence)
	}
	var f Fix
	f.Valid = fields[2] == "A"
	if f.Lat, err = parseCoord(fields[3], fields[4], 2); err != nil {
		return Fix{}, err
	}
	if f.Lon, err = parseCoord(fields[5], fields[6], 3); err != nil {
		return Fix{}, err
	}
	if fields[7] != "" {
		knots, err := strconv.ParseFloat(fields[7], 64)
		if err != nil {
			return Fix{}, fmt.Errorf("telemetry: speed %q: %w", fields[7], ErrBadSentence)
		}
		f.SpeedMS = knots / knotsPerMS
	}
	if fields[8] != "" {
		if f.CourseDeg, err = strconv.ParseFloat(fields[8], 64); err != nil {
			return Fix{}, fmt.Errorf("telemetry: course %q: %w", fields[8], ErrBadSentence)
		}
	}
	return f, nil
}

// ParseGGA extracts position/altitude from a $GPGGA sentence.
func ParseGGA(raw string) (Fix, error) {
	fields, err := verify(raw)
	if err != nil {
		return Fix{}, err
	}
	if fields[0] != "GPGGA" || len(fields) < 12 {
		return Fix{}, fmt.Errorf("telemetry: not GPGGA: %w", ErrBadSentence)
	}
	var f Fix
	if f.Lat, err = parseCoord(fields[2], fields[3], 2); err != nil {
		return Fix{}, err
	}
	if f.Lon, err = parseCoord(fields[4], fields[5], 3); err != nil {
		return Fix{}, err
	}
	f.Valid = fields[6] != "0" && fields[6] != ""
	if fields[9] != "" {
		if f.AltM, err = strconv.ParseFloat(fields[9], 64); err != nil {
			return Fix{}, fmt.Errorf("telemetry: altitude %q: %w", fields[9], ErrBadSentence)
		}
	}
	return f, nil
}
