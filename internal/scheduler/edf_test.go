package scheduler

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/qos"
)

func TestEDFRunsJobs(t *testing.T) {
	e := NewEDF(WithEDFWorkers(2))
	defer e.Stop()
	var done sync.WaitGroup
	var count atomic.Int64
	for i := 0; i < 50; i++ {
		done.Add(1)
		if err := e.SubmitDeadline(func() {
			count.Add(1)
			done.Done()
		}, time.Now().Add(time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	done.Wait()
	if count.Load() != 50 {
		t.Errorf("ran %d", count.Load())
	}
	if e.Executed() != 50 {
		t.Errorf("Executed = %d", e.Executed())
	}
}

func TestEDFDeadlineOrdering(t *testing.T) {
	// One worker blocked; jobs with scrambled deadlines must run
	// earliest-deadline-first regardless of submission order.
	e := NewEDF(WithEDFWorkers(1))
	defer e.Stop()

	release := make(chan struct{})
	started := make(chan struct{})
	_ = e.SubmitDeadline(func() { close(started); <-release }, time.Now())
	<-started

	var mu sync.Mutex
	var order []int
	var done sync.WaitGroup
	base := time.Now().Add(time.Hour)
	// Deadlines: job i has deadline base + (5-i) minutes -> run order 4,3,2,1,0.
	for i := 0; i < 5; i++ {
		i := i
		done.Add(1)
		_ = e.SubmitDeadline(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			done.Done()
		}, base.Add(time.Duration(5-i)*time.Minute))
	}
	close(release)
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEDFFIFOTiebreak(t *testing.T) {
	e := NewEDF(WithEDFWorkers(1))
	defer e.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	_ = e.SubmitDeadline(func() { close(started); <-release }, time.Now())
	<-started

	deadline := time.Now().Add(time.Hour)
	var mu sync.Mutex
	var order []int
	var done sync.WaitGroup
	for i := 0; i < 10; i++ {
		i := i
		done.Add(1)
		_ = e.SubmitDeadline(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			done.Done()
		}, deadline)
	}
	close(release)
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-deadline FIFO violated: %v", order)
		}
	}
}

func TestEDFSubmitMapsPriorities(t *testing.T) {
	// Through the plain Scheduler interface, a critical job must overtake
	// queued bulk jobs because its class deadline is far tighter.
	e := NewEDF(WithEDFWorkers(1))
	defer e.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	_ = e.Submit(qos.PriorityNormal, func() { close(started); <-release })
	<-started

	var mu sync.Mutex
	var order []string
	var done sync.WaitGroup
	done.Add(2)
	_ = e.Submit(qos.PriorityBulk, func() {
		mu.Lock()
		order = append(order, "bulk")
		mu.Unlock()
		done.Done()
	})
	_ = e.Submit(qos.PriorityCritical, func() {
		mu.Lock()
		order = append(order, "critical")
		mu.Unlock()
		done.Done()
	})
	close(release)
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "critical" {
		t.Errorf("order = %v", order)
	}
}

func TestEDFDynamicPriorityBeatsFixed(t *testing.T) {
	// The behaviour fixed priorities cannot express: an old bulk job with
	// a near deadline must run before a fresh critical job whose deadline
	// is farther away.
	e := NewEDF(WithEDFWorkers(1))
	defer e.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	_ = e.SubmitDeadline(func() { close(started); <-release }, time.Now())
	<-started

	var mu sync.Mutex
	var order []string
	var done sync.WaitGroup
	done.Add(2)
	now := time.Now()
	_ = e.SubmitDeadline(func() {
		mu.Lock()
		order = append(order, "old-bulk")
		mu.Unlock()
		done.Done()
	}, now.Add(2*time.Millisecond)) // imminent deadline
	_ = e.SubmitDeadline(func() {
		mu.Lock()
		order = append(order, "fresh-critical")
		mu.Unlock()
		done.Done()
	}, now.Add(10*time.Second)) // far deadline despite "critical" nature
	close(release)
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "old-bulk" {
		t.Errorf("EDF did not prefer the imminent deadline: %v", order)
	}
}

func TestEDFStopAndErrors(t *testing.T) {
	e := NewEDF()
	if err := e.Submit(qos.Priority(0), func() {}); !errors.Is(err, ErrBadPriority) {
		t.Errorf("bad priority: %v", err)
	}
	if err := e.SubmitDeadline(nil, time.Now()); !errors.Is(err, ErrBadPriority) {
		t.Errorf("nil job: %v", err)
	}
	e.Stop()
	e.Stop() // idempotent
	if err := e.Submit(qos.PriorityNormal, func() {}); !errors.Is(err, ErrStopped) {
		t.Errorf("after stop: %v", err)
	}
	if err := e.SubmitDeadline(func() {}, time.Now()); !errors.Is(err, ErrStopped) {
		t.Errorf("deadline after stop: %v", err)
	}
}

func TestEDFLatenessTracked(t *testing.T) {
	e := NewEDF(WithEDFWorkers(1))
	defer e.Stop()
	var done sync.WaitGroup
	done.Add(1)
	// Deadline already past: the job is tardy by construction.
	_ = e.SubmitDeadline(func() {
		time.Sleep(2 * time.Millisecond)
		done.Done()
	}, time.Now().Add(-time.Millisecond))
	done.Wait()
	deadline := time.Now().Add(time.Second)
	for e.Lateness().Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Lateness().Count() == 0 {
		t.Error("tardy job not recorded")
	}
}

func TestEDFPluggableIntoContainerInterface(t *testing.T) {
	// The container only knows the Scheduler interface; EDF satisfies it.
	var s Scheduler = NewEDF(WithEDFWorkers(1))
	var done sync.WaitGroup
	done.Add(1)
	if err := s.Submit(qos.PriorityHigh, func() { done.Done() }); err != nil {
		t.Fatal(err)
	}
	done.Wait()
	s.Stop()
}

func TestEDFBacklog(t *testing.T) {
	e := NewEDF(WithEDFWorkers(1))
	defer e.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	_ = e.SubmitDeadline(func() { close(started); <-release }, time.Now())
	<-started
	for i := 0; i < 4; i++ {
		_ = e.SubmitDeadline(func() {}, time.Now().Add(time.Hour))
	}
	if got := e.Backlog(); got != 4 {
		t.Errorf("Backlog = %d", got)
	}
	close(release)
}
