package scheduler

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/qos"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(WithWorkers(2))
	defer p.Stop()
	var done sync.WaitGroup
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		done.Add(1)
		if err := p.Submit(qos.PriorityNormal, func() {
			count.Add(1)
			done.Done()
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	done.Wait()
	if count.Load() != 100 {
		t.Errorf("ran %d jobs", count.Load())
	}
	if p.Executed(qos.PriorityNormal) != 100 {
		t.Errorf("Executed = %d", p.Executed(qos.PriorityNormal))
	}
}

func TestPoolPriorityOrdering(t *testing.T) {
	// One worker; first job blocks until all submissions are queued, then
	// execution order must be critical > high > normal > low > bulk.
	p := NewPool(WithWorkers(1))
	defer p.Stop()

	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(qos.PriorityNormal, func() {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []qos.Priority
	var done sync.WaitGroup
	submit := func(pr qos.Priority) {
		done.Add(1)
		if err := p.Submit(pr, func() {
			mu.Lock()
			order = append(order, pr)
			mu.Unlock()
			done.Done()
		}); err != nil {
			t.Errorf("Submit(%v): %v", pr, err)
		}
	}
	// Submit in scrambled order.
	submit(qos.PriorityBulk)
	submit(qos.PriorityHigh)
	submit(qos.PriorityLow)
	submit(qos.PriorityCritical)
	submit(qos.PriorityNormal)

	close(release)
	done.Wait()

	want := []qos.Priority{
		qos.PriorityCritical, qos.PriorityHigh, qos.PriorityNormal,
		qos.PriorityLow, qos.PriorityBulk,
	}
	mu.Lock()
	defer mu.Unlock()
	for i, pr := range want {
		if order[i] != pr {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestPoolFIFOWithinPriority(t *testing.T) {
	p := NewPool(WithWorkers(1))
	defer p.Stop()

	release := make(chan struct{})
	started := make(chan struct{})
	_ = p.Submit(qos.PriorityNormal, func() { close(started); <-release })
	<-started

	var mu sync.Mutex
	var order []int
	var done sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		done.Add(1)
		_ = p.Submit(qos.PriorityNormal, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			done.Done()
		})
	}
	close(release)
	done.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(WithWorkers(1), WithQueueCap(2))
	defer p.Stop()

	release := make(chan struct{})
	started := make(chan struct{})
	_ = p.Submit(qos.PriorityNormal, func() { close(started); <-release })
	<-started

	if err := p.Submit(qos.PriorityNormal, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(qos.PriorityNormal, func() {}); err != nil {
		t.Fatal(err)
	}
	err := p.Submit(qos.PriorityNormal, func() {})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("want ErrQueueFull, got %v", err)
	}
	if p.Rejected(qos.PriorityNormal) != 1 {
		t.Errorf("Rejected = %d", p.Rejected(qos.PriorityNormal))
	}
	// Other priorities have their own capacity.
	if err := p.Submit(qos.PriorityHigh, func() {}); err != nil {
		t.Errorf("other priority rejected: %v", err)
	}
	close(release)
}

func TestPoolStop(t *testing.T) {
	p := NewPool(WithWorkers(2))
	var ran atomic.Bool
	release := make(chan struct{})
	started := make(chan struct{})
	_ = p.Submit(qos.PriorityNormal, func() { close(started); <-release })
	<-started
	// Queued behind the blocker; will be discarded by Stop.
	_ = p.Submit(qos.PriorityNormal, func() { ran.Store(true) })

	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p.Stop()
	p.Stop() // idempotent
	if ran.Load() {
		t.Error("queued job ran after Stop")
	}
	if err := p.Submit(qos.PriorityNormal, func() {}); !errors.Is(err, ErrStopped) {
		t.Errorf("Submit after Stop: %v", err)
	}
}

func TestPoolBadSubmissions(t *testing.T) {
	p := NewPool(WithWorkers(1))
	defer p.Stop()
	if err := p.Submit(qos.Priority(0), func() {}); !errors.Is(err, ErrBadPriority) {
		t.Errorf("zero priority: %v", err)
	}
	if err := p.Submit(qos.Priority(99), func() {}); !errors.Is(err, ErrBadPriority) {
		t.Errorf("big priority: %v", err)
	}
	if err := p.Submit(qos.PriorityNormal, nil); !errors.Is(err, ErrBadPriority) {
		t.Errorf("nil job: %v", err)
	}
}

func TestPoolQueueDelayMetric(t *testing.T) {
	p := NewPool(WithWorkers(1))
	defer p.Stop()
	var done sync.WaitGroup
	for i := 0; i < 10; i++ {
		done.Add(1)
		_ = p.Submit(qos.PriorityHigh, func() { done.Done() })
	}
	done.Wait()
	h := p.QueueDelay(qos.PriorityHigh)
	if h == nil || h.Count() != 10 {
		t.Errorf("queue delay observations = %v", h)
	}
	if p.QueueDelay(qos.Priority(0)) != nil {
		t.Error("invalid priority must return nil histogram")
	}
}

func TestPoolBacklog(t *testing.T) {
	p := NewPool(WithWorkers(1))
	defer p.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	_ = p.Submit(qos.PriorityNormal, func() { close(started); <-release })
	<-started
	for i := 0; i < 5; i++ {
		_ = p.Submit(qos.PriorityNormal, func() {})
	}
	if got := p.Backlog(); got != 5 {
		t.Errorf("Backlog = %d, want 5", got)
	}
	close(release)
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(WithWorkers(4))
	defer p.Stop()
	var count atomic.Int64
	var wg sync.WaitGroup
	prios := qos.Levels()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pr := prios[(g+i)%len(prios)]
				for {
					err := p.Submit(pr, func() { count.Add(1) })
					if err == nil {
						break
					}
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.After(5 * time.Second)
	for count.Load() < 1600 {
		select {
		case <-deadline:
			t.Fatalf("only %d of 1600 jobs ran", count.Load())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestInlineScheduler(t *testing.T) {
	s := NewInline()
	ran := false
	if err := s.Submit(qos.PriorityNormal, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("inline job did not run synchronously")
	}
	if err := s.Submit(qos.Priority(0), func() {}); !errors.Is(err, ErrBadPriority) {
		t.Errorf("bad priority: %v", err)
	}
	if err := s.Submit(qos.PriorityNormal, nil); !errors.Is(err, ErrBadPriority) {
		t.Errorf("nil job: %v", err)
	}
	s.Stop()
	if err := s.Submit(qos.PriorityNormal, func() {}); !errors.Is(err, ErrStopped) {
		t.Errorf("after stop: %v", err)
	}
}

func TestSchedulerPluggability(t *testing.T) {
	// F4: both implementations satisfy the interface and run work.
	for _, s := range []Scheduler{NewPool(WithWorkers(1)), NewInline()} {
		var done sync.WaitGroup
		done.Add(1)
		if err := s.Submit(qos.PriorityCritical, func() { done.Done() }); err != nil {
			t.Fatal(err)
		}
		done.Wait()
		s.Stop()
	}
}
