// Package scheduler implements the pluggable execution scheduler of the
// paper's §6: "our implementation also [has a] pluggable scheduler that
// queues and arranges event/variable handlers and service calls execution
// ... basically a simple thread pool with fixed priorities for each named
// primitive". Handlers submitted at higher priority always run before
// queued lower-priority work; within one priority, order is FIFO. This is
// soft real time: no preemption, no deadline guarantees — exactly the
// paper's stated scope.
package scheduler

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/qos"
)

// Job is one unit of handler work.
type Job func()

// Scheduler orders and executes handler work. Implementations must be safe
// for concurrent use.
type Scheduler interface {
	// Submit enqueues job at priority p. It returns ErrQueueFull when the
	// per-priority queue is saturated and ErrStopped after Stop.
	Submit(p qos.Priority, job Job) error
	// Stop drains nothing: queued jobs are discarded, running jobs finish,
	// and all workers exit before Stop returns. Idempotent.
	Stop()
}

// Errors.
var (
	// ErrQueueFull reports a saturated priority queue (backpressure).
	ErrQueueFull = errors.New("scheduler queue full")
	// ErrStopped reports Submit after Stop.
	ErrStopped = errors.New("scheduler stopped")
	// ErrBadPriority reports an out-of-range priority.
	ErrBadPriority = errors.New("invalid priority")
)

// Pool is the fixed-priority worker pool. Workers always take from the
// highest-priority non-empty queue.
type Pool struct {
	clk      clock.Clock
	mu       sync.Mutex
	cond     *clock.Cond
	queues   []jobQueue // index = qos.Priority.Index(), ascending urgency
	queueCap int
	stopped  bool
	pending  int

	workers int
	wg      sync.WaitGroup

	queueDelay []*metrics.Histogram // per priority
	executed   []*metrics.Counter
	rejected   []*metrics.Counter
}

type queuedJob struct {
	job      Job
	enqueued time.Time
}

// jobQueue is an amortized O(1) FIFO.
type jobQueue struct {
	items []queuedJob
	head  int
}

func (q *jobQueue) push(j queuedJob) { q.items = append(q.items, j) }

func (q *jobQueue) pop() (queuedJob, bool) {
	if q.head >= len(q.items) {
		return queuedJob{}, false
	}
	j := q.items[q.head]
	q.items[q.head] = queuedJob{} // release references
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return j, true
}

func (q *jobQueue) len() int { return len(q.items) - q.head }

// Defaults.
const (
	// DefaultWorkers matches the paper's low-resource nodes: a small
	// fixed pool, not one goroutine per message.
	DefaultWorkers = 4
	// DefaultQueueCap bounds each priority queue.
	DefaultQueueCap = 4096
)

// PoolOption customizes a Pool.
type PoolOption func(*poolConfig)

type poolConfig struct {
	workers  int
	queueCap int
	clk      clock.Clock
}

// WithWorkers sets the worker count (>=1).
func WithWorkers(n int) PoolOption {
	return func(c *poolConfig) {
		if n >= 1 {
			c.workers = n
		}
	}
}

// WithPoolClock sets the pool's time source (default: the wall clock).
// Under a virtual clock the workers are registered with it, so simulated
// time halts while handlers run — handler latency histograms then
// measure queueing, not wall-clock scheduling noise.
func WithPoolClock(c clock.Clock) PoolOption {
	return func(cfg *poolConfig) {
		if c != nil {
			cfg.clk = c
		}
	}
}

// WithQueueCap bounds each per-priority queue (>=1).
func WithQueueCap(n int) PoolOption {
	return func(c *poolConfig) {
		if n >= 1 {
			c.queueCap = n
		}
	}
}

var _ Scheduler = (*Pool)(nil)

// NewPool starts a fixed-priority pool.
func NewPool(opts ...PoolOption) *Pool {
	cfg := poolConfig{workers: DefaultWorkers, queueCap: DefaultQueueCap}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := qos.NumLevels()
	p := &Pool{
		clk:        clock.Or(cfg.clk),
		queues:     make([]jobQueue, n),
		workers:    cfg.workers,
		queueDelay: make([]*metrics.Histogram, n),
		executed:   make([]*metrics.Counter, n),
		rejected:   make([]*metrics.Counter, n),
	}
	p.cond = clock.NewCond(p.clk, &p.mu)
	p.queueCap = cfg.queueCap
	for i := 0; i < n; i++ {
		p.queueDelay[i] = &metrics.Histogram{}
		p.executed[i] = &metrics.Counter{}
		p.rejected[i] = &metrics.Counter{}
	}
	p.wg.Add(cfg.workers)
	for i := 0; i < cfg.workers; i++ {
		clock.Go(p.clk, p.worker)
	}
	return p
}

// Submit implements Scheduler.
func (p *Pool) Submit(pr qos.Priority, job Job) error {
	idx := pr.Index()
	if idx < 0 {
		return fmt.Errorf("scheduler: priority %d: %w", pr, ErrBadPriority)
	}
	if job == nil {
		return fmt.Errorf("scheduler: nil job: %w", ErrBadPriority)
	}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return fmt.Errorf("scheduler: %w", ErrStopped)
	}
	if p.queues[idx].len() >= p.queueCap {
		p.mu.Unlock()
		p.rejected[idx].Inc()
		return fmt.Errorf("scheduler: priority %v: %w", pr, ErrQueueFull)
	}
	p.queues[idx].push(queuedJob{job: job, enqueued: p.clk.Now()})
	p.pending++
	p.mu.Unlock()
	p.cond.Signal()
	return nil
}

// worker runs jobs highest-priority-first until Stop.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.pending == 0 && !p.stopped {
			p.cond.Wait()
		}
		if p.stopped {
			p.mu.Unlock()
			return
		}
		var (
			qj  queuedJob
			idx int
		)
		for i := len(p.queues) - 1; i >= 0; i-- {
			if j, ok := p.queues[i].pop(); ok {
				qj, idx = j, i
				p.pending--
				break
			}
		}
		p.mu.Unlock()
		if qj.job == nil {
			continue
		}
		p.queueDelay[idx].Observe(p.clk.Since(qj.enqueued))
		qj.job()
		p.executed[idx].Inc()
	}
}

// Stop implements Scheduler.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	for i := range p.queues {
		p.queues[i] = jobQueue{}
	}
	p.pending = 0
	p.mu.Unlock()
	p.cond.Broadcast()
	// Workers mid-job may be parked on a Virtual clock (a handler sleeping
	// in simulated time): the drain must let time advance under them.
	clock.Blocking(p.clk, p.wg.Wait)
}

// QueueDelay exposes the queue-latency histogram for a priority, for the
// E8 soft-real-time experiment.
func (p *Pool) QueueDelay(pr qos.Priority) *metrics.Histogram {
	idx := pr.Index()
	if idx < 0 {
		return nil
	}
	return p.queueDelay[idx]
}

// Executed reports how many jobs of a priority have completed.
func (p *Pool) Executed(pr qos.Priority) uint64 {
	idx := pr.Index()
	if idx < 0 {
		return 0
	}
	return p.executed[idx].Value()
}

// Rejected reports how many submissions of a priority were refused.
func (p *Pool) Rejected(pr qos.Priority) uint64 {
	idx := pr.Index()
	if idx < 0 {
		return 0
	}
	return p.rejected[idx].Value()
}

// Backlog reports currently queued jobs across priorities.
func (p *Pool) Backlog() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Inline is a pass-through scheduler that runs jobs synchronously on the
// caller's goroutine. It exists to demonstrate scheduler pluggability (F4)
// and as the baseline in the E8 ablation.
type Inline struct {
	mu      sync.Mutex
	stopped bool
}

var _ Scheduler = (*Inline)(nil)

// NewInline returns an inline scheduler.
func NewInline() *Inline { return &Inline{} }

// Submit implements Scheduler.
func (s *Inline) Submit(pr qos.Priority, job Job) error {
	if !pr.Valid() {
		return fmt.Errorf("scheduler: priority %d: %w", pr, ErrBadPriority)
	}
	if job == nil {
		return fmt.Errorf("scheduler: nil job: %w", ErrBadPriority)
	}
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return fmt.Errorf("scheduler: %w", ErrStopped)
	}
	job()
	return nil
}

// Stop implements Scheduler.
func (s *Inline) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
}
