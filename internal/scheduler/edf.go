package scheduler

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/qos"
)

// EDF is the earliest-deadline-first scheduler the paper lists as future
// work ("as a future work we plan to introduce real-time approach for the
// critical events and services", §7). Jobs carry absolute deadlines;
// workers always run the job whose deadline is nearest, so a tardy
// low-priority job eventually overtakes a stream of far-deadline
// high-priority work — the classic dynamic-priority behaviour a
// fixed-priority pool cannot express.
//
// It implements the plain Scheduler interface by mapping each priority
// class to a default relative deadline, so it can be plugged into the
// container unchanged (WithScheduler(scheduler.NewEDF())); deadline-aware
// callers use SubmitDeadline directly. Still soft real time: no
// preemption, no admission test — Go's runtime is not an RTOS, the same
// caveat the paper's CLR prototype carried.
type EDF struct {
	clk     clock.Clock
	mu      sync.Mutex
	cond    *clock.Cond
	queue   edfHeap
	seq     uint64
	stopped bool

	wg sync.WaitGroup

	classDeadline [5]time.Duration // by qos.Priority.Index()

	lateness *metrics.Histogram // completion time minus deadline (tardy only)
	executed *metrics.Counter
}

type edfJob struct {
	deadline time.Time
	seq      uint64 // FIFO tiebreaker
	job      Job
	enqueued time.Time
}

type edfHeap []edfJob

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(edfJob)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = edfJob{}
	*h = old[:n-1]
	return j
}

// Default per-class relative deadlines for the Scheduler-interface path:
// urgent classes get tight deadlines, bulk gets a loose one.
var defaultClassDeadlines = [5]time.Duration{
	// index 0 = bulk ... index 4 = critical
	500 * time.Millisecond,
	100 * time.Millisecond,
	20 * time.Millisecond,
	5 * time.Millisecond,
	time.Millisecond,
}

// EDFOption customizes the scheduler.
type EDFOption func(*edfConfig)

type edfConfig struct {
	workers        int
	classDeadlines [5]time.Duration
	clk            clock.Clock
}

// WithEDFWorkers sets the worker count (>=1, default DefaultWorkers).
func WithEDFWorkers(n int) EDFOption {
	return func(c *edfConfig) {
		if n >= 1 {
			c.workers = n
		}
	}
}

// WithEDFClock sets the scheduler's time source (default: the wall
// clock). Deadline arithmetic — assignment on Submit and the tardiness
// measurement after each job — runs on this clock, so shedding decisions
// are reproducible in simulation.
func WithEDFClock(c clock.Clock) EDFOption {
	return func(cfg *edfConfig) {
		if c != nil {
			cfg.clk = c
		}
	}
}

// WithClassDeadline overrides the relative deadline assigned to a priority
// class on the Submit path.
func WithClassDeadline(p qos.Priority, d time.Duration) EDFOption {
	return func(c *edfConfig) {
		if idx := p.Index(); idx >= 0 && d > 0 {
			c.classDeadlines[idx] = d
		}
	}
}

var _ Scheduler = (*EDF)(nil)

// NewEDF starts an earliest-deadline-first pool.
func NewEDF(opts ...EDFOption) *EDF {
	cfg := edfConfig{workers: DefaultWorkers, classDeadlines: defaultClassDeadlines}
	for _, opt := range opts {
		opt(&cfg)
	}
	e := &EDF{
		clk:           clock.Or(cfg.clk),
		classDeadline: cfg.classDeadlines,
		lateness:      &metrics.Histogram{},
		executed:      &metrics.Counter{},
	}
	e.cond = clock.NewCond(e.clk, &e.mu)
	e.wg.Add(cfg.workers)
	for i := 0; i < cfg.workers; i++ {
		clock.Go(e.clk, e.worker)
	}
	return e
}

// Submit implements Scheduler: the priority class selects the relative
// deadline.
func (e *EDF) Submit(p qos.Priority, job Job) error {
	idx := p.Index()
	if idx < 0 {
		return fmt.Errorf("scheduler: priority %d: %w", p, ErrBadPriority)
	}
	return e.SubmitDeadline(job, e.clk.Now().Add(e.classDeadline[idx]))
}

// SubmitDeadline enqueues job with an absolute deadline.
func (e *EDF) SubmitDeadline(job Job, deadline time.Time) error {
	if job == nil {
		return fmt.Errorf("scheduler: nil job: %w", ErrBadPriority)
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return fmt.Errorf("scheduler: %w", ErrStopped)
	}
	e.seq++
	heap.Push(&e.queue, edfJob{
		deadline: deadline,
		seq:      e.seq,
		job:      job,
		enqueued: e.clk.Now(),
	})
	e.mu.Unlock()
	e.cond.Signal()
	return nil
}

func (e *EDF) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.stopped {
			e.cond.Wait()
		}
		if e.stopped {
			e.mu.Unlock()
			return
		}
		j := heap.Pop(&e.queue).(edfJob)
		e.mu.Unlock()

		j.job()
		e.executed.Inc()
		if tardy := e.clk.Since(j.deadline); tardy > 0 {
			e.lateness.Observe(tardy)
		}
	}
}

// Stop implements Scheduler: queued jobs are discarded.
func (e *EDF) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.queue = nil
	e.mu.Unlock()
	e.cond.Broadcast()
	clock.Blocking(e.clk, e.wg.Wait)
}

// Executed reports completed jobs.
func (e *EDF) Executed() uint64 { return e.executed.Value() }

// Lateness exposes the tardiness histogram (jobs completed past deadline).
func (e *EDF) Lateness() *metrics.Histogram { return e.lateness }

// Backlog reports queued jobs.
func (e *EDF) Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}
