package scheduler

import (
	"testing"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/qos"
)

// Regression for EDF deadline arithmetic bypassing the injected clock:
// with one worker occupied by a long job, a 5ms-deadline job can only run
// at t0+10ms — a 5ms miss that exists solely under this virtual schedule.
// If Submit/lateness used time.Now directly, the measured tardiness would
// be the (years-wide) gap between the wall clock and the virtual epoch,
// not exactly 5ms.
func TestEDFDeadlineMissUnderVirtualSchedule(t *testing.T) {
	v := clock.NewVirtual()
	e := NewEDF(WithEDFWorkers(1), WithEDFClock(v))
	defer e.Stop()

	doneB := make(chan struct{})
	v.Run(func() {
		// A occupies the only worker for 10ms of virtual time; it submits
		// B (deadline +5ms) from inside itself so the schedule is exact.
		if err := e.SubmitDeadline(func() {
			_ = e.SubmitDeadline(func() { close(doneB) }, v.Now().Add(5*time.Millisecond))
			v.Sleep(10 * time.Millisecond)
		}, v.Now().Add(20*time.Millisecond)); err != nil {
			t.Fatalf("submit A: %v", err)
		}
		clock.Blocking(v, func() { <-doneB })
	})

	lat := e.Lateness()
	if got := lat.Count(); got != 1 {
		t.Fatalf("lateness observations = %d, want exactly 1 (only B misses)", got)
	}
	if got := lat.Max(); got != 5*time.Millisecond {
		t.Fatalf("B's tardiness = %v, want exactly 5ms: EDF deadline arithmetic is not on the injected clock", got)
	}
}

// The Submit path must assign class deadlines on the injected clock too.
func TestEDFSubmitClassDeadlineOnClock(t *testing.T) {
	v := clock.NewVirtual()
	e := NewEDF(WithEDFWorkers(1), WithEDFClock(v), WithClassDeadline(qos.PriorityCritical, 2*time.Millisecond))
	defer e.Stop()

	done := make(chan struct{})
	v.Run(func() {
		if err := e.SubmitDeadline(func() {
			_ = e.Submit(qos.PriorityCritical, func() { close(done) })
			v.Sleep(8 * time.Millisecond)
		}, v.Now().Add(time.Hour)); err != nil {
			t.Fatalf("submit filler: %v", err)
		}
		clock.Blocking(v, func() { <-done })
	})

	lat := e.Lateness()
	if got := lat.Count(); got != 1 {
		t.Fatalf("lateness observations = %d, want 1", got)
	}
	if got := lat.Max(); got != 6*time.Millisecond {
		t.Fatalf("critical job tardiness = %v, want exactly 6ms (ran at +8ms against a +2ms class deadline)", got)
	}
}
