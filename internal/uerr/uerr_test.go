package uerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"uavmw/internal/metrics"
)

var (
	testSend    = Register("uerrtest.beacon_send", CatSend)
	testDecode  = Register("uerrtest.frame_decode", CatDecode)
	testTimeout = Register("uerrtest.ack_wait", CatTimeout)
)

func TestRegisterRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"", "noperiod", "Upper.case", "comp.Name", "comp.", ".name",
		"comp.na-me", "comp.err", "comp.error_path", "err.thing",
		"comp.name.extra",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", bad)
				}
			}()
			Register(bad, CatSend)
		}()
	}
}

func TestRegisterRejectsDuplicateAndBadCategory(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register did not panic")
			}
		}()
		Register("uerrtest.beacon_send", CatSend)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CatUnknown Register did not panic")
			}
		}()
		Register("uerrtest.other_thing", CatUnknown)
	}()
}

func TestCodeParts(t *testing.T) {
	if testSend.Component() != "uerrtest" || testSend.Name() != "beacon_send" {
		t.Errorf("code parts = %q/%q", testSend.Component(), testSend.Name())
	}
}

func TestNewCountsInRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	err := New(reg, testSend, "egress refused the frame")
	if err.Category != CatSend {
		t.Errorf("category = %v", err.Category)
	}
	if got := reg.SumCounters("uerrtest", "errors", metrics.L("category", "send")); got != 1 {
		t.Errorf("send errors counted = %d, want 1", got)
	}
	if got := reg.SumCounters("uerrtest", "errors", metrics.L("code", "beacon_send")); got != 1 {
		t.Errorf("code-labeled count = %d, want 1", got)
	}
	// nil registry must not panic.
	_ = New(nil, testSend, "uncounted")
}

func TestWrapKeepsCauseReachable(t *testing.T) {
	sentinel := errors.New("transport closed")
	reg := metrics.NewRegistry()
	err := Wrapf(reg, testTimeout, sentinel, "seq %d unacked", 42)
	if !errors.Is(err, sentinel) {
		t.Error("errors.Is lost the cause")
	}
	if !Is(err, sentinel) {
		t.Error("passthrough Is lost the cause")
	}
	var e *E
	if !errors.As(err, &e) || e.Code != testTimeout {
		t.Error("errors.As failed to recover *E")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if code, ok := CodeOf(wrapped); !ok || code != testTimeout {
		t.Errorf("CodeOf(wrapped) = %q, %v", code, ok)
	}
	if cat, ok := CategoryOf(wrapped); !ok || cat != CatTimeout {
		t.Errorf("CategoryOf(wrapped) = %v, %v", cat, ok)
	}
	if !IsCode(wrapped, testTimeout) || IsCode(wrapped, testSend) {
		t.Error("IsCode mismatch")
	}
	if !IsCategory(wrapped, CatTimeout) || IsCategory(wrapped, CatAdmission) {
		t.Error("IsCategory mismatch")
	}
}

func TestErrorString(t *testing.T) {
	cause := errors.New("short write")
	err := Wrap(nil, testDecode, cause, "truncated header")
	want := "uerrtest.frame_decode: truncated header: short write"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	if got := New(nil, testDecode, "").Error(); got != "uerrtest.frame_decode" {
		t.Errorf("bare Error() = %q", got)
	}
}

func TestIsMatchesByCode(t *testing.T) {
	a := New(nil, testSend, "first")
	b := New(nil, testSend, "second")
	c := New(nil, testDecode, "other")
	if !errors.Is(a, b) {
		t.Error("same-code errors must Is-match")
	}
	if errors.Is(a, c) {
		t.Error("different-code errors must not Is-match")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatEncode: "encode", CatDecode: "decode", CatSend: "send",
		CatTimeout: "timeout", CatAdmission: "admission",
		CatResource: "resource", CatProtocol: "protocol_violation",
		CatUnknown: "unknown",
	}
	for cat, s := range want {
		if cat.String() != s {
			t.Errorf("%d.String() = %q, want %q", cat, cat.String(), s)
		}
	}
}

func TestRegisteredCodesSorted(t *testing.T) {
	codes := RegisteredCodes()
	if len(codes) < 3 {
		t.Fatalf("expected at least the test codes, got %v", codes)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Fatalf("codes not sorted at %d: %v", i, codes)
		}
	}
	found := false
	for _, c := range codes {
		if strings.HasPrefix(string(c), "uerrtest.") {
			found = true
		}
	}
	if !found {
		t.Error("test codes missing from RegisteredCodes")
	}
}

func TestUnregisteredCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with unregistered code did not panic")
		}
	}()
	_ = New(nil, Code("ghost.code"), "boo")
}
