// Package uerr is the middleware's typed error taxonomy. Every wire-path
// failure — an encode that can't round-trip, a send the egress plane
// refused, an ARQ retry budget spent, a malformed frame dropped on
// arrival, an admission-control shed — is constructed through this
// package instead of an anonymous counter increment or a discarded
// `_ = err`, so failures carry *which component* and *which kind of
// failure* wherever they propagate, and are counted the moment they are
// born.
//
// The taxonomy has two axes:
//
//   - Category: the failure kind — encode/decode, send, timeout,
//     admission, resource, protocol violation. Categories are closed: a
//     new failure mode must pick one (or extend the enum deliberately).
//   - Code: a registry-validated "component.name" identifier (lowercase,
//     underscores; never containing "err"/"error"), registered once at
//     package init via Register. Malformed or duplicate codes panic at
//     init, so a typo cannot ship.
//
// Construction auto-increments the owning component's
// "<component>.errors" counter family in the supplied metrics.Registry,
// labeled {category, code} — the observability-plane contract that makes
// every dropped frame visible in Node.MetricsSnapshot without any layer
// remembering to count. A nil registry skips counting (unit-test
// construction, engines wired to bare fabrics).
//
// uerr errors interoperate with the standard errors package: Wrap keeps
// the cause reachable through errors.Is / errors.As (this package
// re-exports the passthroughs, birdnet-go-style, so callers need not
// import both), and CodeOf / CategoryOf recover the taxonomy from
// anywhere in a wrapped chain.
package uerr

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"uavmw/internal/metrics"
)

// Category classifies a failure by kind, orthogonal to which component it
// happened in.
type Category uint8

// The closed category space. CatProtocol covers protocol violations:
// frames that decode but break the protocol contract (wrong node in the
// payload, unknown call ids, signature mismatches).
const (
	CatUnknown Category = iota
	CatEncode
	CatDecode
	CatSend
	CatTimeout
	CatAdmission
	CatResource
	CatProtocol
)

// String returns the category's label value in error metric families.
func (c Category) String() string {
	switch c {
	case CatEncode:
		return "encode"
	case CatDecode:
		return "decode"
	case CatSend:
		return "send"
	case CatTimeout:
		return "timeout"
	case CatAdmission:
		return "admission"
	case CatResource:
		return "resource"
	case CatProtocol:
		return "protocol_violation"
	default:
		return "unknown"
	}
}

// Code is a validated "component.name" error identifier. Construct only
// through Register.
type Code string

// Component returns the code's component prefix.
func (c Code) Component() string {
	s := string(c)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return s
}

// Name returns the code's name suffix.
func (c Code) Name() string {
	s := string(c)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

var (
	regMu    sync.RWMutex
	registry = make(map[Code]Category)
)

// wordOK validates one code segment: lowercase letters, digits,
// underscores, starting with a letter.
func wordOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case (r == '_' || (r >= '0' && r <= '9')) && i > 0:
		default:
			return false
		}
	}
	return true
}

// Register validates and registers a code with its category, returning the
// Code for package-level var blocks:
//
//	var codeBeaconSend = uerr.Register("discovery.beacon_send", uerr.CatSend)
//
// It panics on a malformed code (must be "component.name", lowercase with
// underscores, no "err"/"error" segments — the counter family already says
// it's an error), an unknown category, or a duplicate registration: error
// codes are a fleet-wide vocabulary and collisions are bugs.
func Register(code string, cat Category) Code {
	component, name, ok := strings.Cut(code, ".")
	if !ok || !wordOK(component) || !wordOK(name) {
		panic(fmt.Sprintf("uerr: malformed code %q: want lowercase component.name", code))
	}
	for _, seg := range []string{component, name} {
		for _, word := range strings.Split(seg, "_") {
			if word == "err" || word == "error" || word == "errors" {
				panic(fmt.Sprintf("uerr: code %q contains %q: the error family already says so", code, word))
			}
		}
	}
	if cat == CatUnknown || cat > CatProtocol {
		panic(fmt.Sprintf("uerr: code %q registered with invalid category %d", code, cat))
	}
	c := Code(code)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, dup := registry[c]; dup {
		panic(fmt.Sprintf("uerr: duplicate code %q (already %s)", code, prev))
	}
	registry[c] = cat
	return c
}

// CategoryFor reports the registered category of a code.
func CategoryFor(code Code) (Category, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	cat, ok := registry[code]
	return cat, ok
}

// RegisteredCodes lists every registered code, sorted — the lint and the
// taxonomy doc table read it.
func RegisteredCodes() []Code {
	regMu.RLock()
	out := make([]Code, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// E is one typed middleware error.
type E struct {
	// Code is the registry-validated "component.name" identifier.
	Code Code
	// Category is the failure kind (fixed by the code's registration).
	Category Category
	msg      string
	cause    error
}

// Error renders "component.name: msg: cause".
func (e *E) Error() string {
	var b strings.Builder
	b.WriteString(string(e.Code))
	if e.msg != "" {
		b.WriteString(": ")
		b.WriteString(e.msg)
	}
	if e.cause != nil {
		b.WriteString(": ")
		b.WriteString(e.cause.Error())
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *E) Unwrap() error { return e.cause }

// Is matches another *E with the same Code, so
// errors.Is(err, &uerr.E{Code: c}) and sentinel comparisons both work.
func (e *E) Is(target error) bool {
	if t, ok := target.(*E); ok {
		return t.Code == e.Code
	}
	return false
}

// Component returns the owning component (the code prefix).
func (e *E) Component() string { return e.Code.Component() }

// count increments the code's error family in reg: one counter family per
// component, named "errors", labeled by category and code name.
func count(reg *metrics.Registry, code Code, cat Category) {
	if reg == nil {
		return
	}
	reg.Counter(code.Component(), "errors",
		metrics.L("category", cat.String()),
		metrics.L("code", code.Name())).Inc()
}

// Handle pre-resolves code's error-family counter in reg — the same
// series New/Wrap feed — for hot paths that must count a failure without
// constructing an error value (per-frame drop-oldest eviction in a
// flooded egress lane). It panics on an unregistered code or nil reg:
// handle resolution happens at construction time, where a nil registry
// is a wiring bug.
func Handle(reg *metrics.Registry, code Code) *metrics.Counter {
	cat, ok := CategoryFor(code)
	if !ok {
		panic(fmt.Sprintf("uerr: code %q used before Register", code))
	}
	return reg.Counter(code.Component(), "errors",
		metrics.L("category", cat.String()),
		metrics.L("code", code.Name()))
}

// newE builds an E for a registered code, panicking on unregistered codes:
// construction sites pass package-level Code vars, so an unregistered code
// is a wiring bug the first test run catches.
func newE(reg *metrics.Registry, code Code, msg string, cause error) *E {
	cat, ok := CategoryFor(code)
	if !ok {
		panic(fmt.Sprintf("uerr: code %q used before Register", code))
	}
	count(reg, code, cat)
	return &E{Code: code, Category: cat, msg: msg, cause: cause}
}

// New constructs a typed error and counts it in reg (nil reg skips
// counting).
func New(reg *metrics.Registry, code Code, msg string) *E {
	return newE(reg, code, msg, nil)
}

// Newf is New with a formatted message. A %w verb is not supported here;
// use Wrap to keep a cause reachable.
func Newf(reg *metrics.Registry, code Code, format string, args ...any) *E {
	return newE(reg, code, fmt.Sprintf(format, args...), nil)
}

// Wrap constructs a typed error around cause and counts it in reg. The
// cause stays reachable through errors.Is / errors.As, so existing
// sentinel checks (protocol.ErrTimeout, transport.ErrClosed) keep working
// when a path is lifted onto the taxonomy.
func Wrap(reg *metrics.Registry, code Code, cause error, msg string) *E {
	return newE(reg, code, msg, cause)
}

// Wrapf is Wrap with a formatted message.
func Wrapf(reg *metrics.Registry, code Code, cause error, format string, args ...any) *E {
	return newE(reg, code, fmt.Sprintf(format, args...), cause)
}

// Note counts err against code when err is non-nil — the pattern for
// wire-path failures with no caller to return to (beacon loops, ack
// emission, fire-and-forget repair sends). It returns the typed error
// (nil when err is nil) so call sites that do have a caller can still
// propagate it.
func Note(reg *metrics.Registry, code Code, err error, msg string) error {
	if err == nil {
		return nil
	}
	return Wrap(reg, code, err, msg)
}

// CodeOf returns the outermost uerr code in err's chain.
func CodeOf(err error) (Code, bool) {
	var e *E
	if errors.As(err, &e) {
		return e.Code, true
	}
	return "", false
}

// CategoryOf returns the outermost uerr category in err's chain.
func CategoryOf(err error) (Category, bool) {
	var e *E
	if errors.As(err, &e) {
		return e.Category, true
	}
	return CatUnknown, false
}

// IsCode reports whether err's chain carries the given code.
func IsCode(err error, code Code) bool {
	for err != nil {
		if e, ok := err.(*E); ok && e.Code == code {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// IsCategory reports whether err's chain carries the given category.
func IsCategory(err error, cat Category) bool {
	for err != nil {
		if e, ok := err.(*E); ok && e.Category == cat {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Standard-library passthroughs, so wire-path packages import only uerr.

// Is reports whether any error in err's chain matches target.
func Is(err, target error) bool { return errors.Is(err, target) }

// As finds the first error in err's chain matching target's type.
func As(err error, target any) bool { return errors.As(err, target) }

// Unwrap returns err's cause, if any.
func Unwrap(err error) error { return errors.Unwrap(err) }
