package services

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"uavmw/internal/flightsim"
	"uavmw/internal/netsim"
	"uavmw/internal/transport"
)

const (
	testLat = 41.2750
	testLon = 1.9870
)

// testPlan is a short two-row survey with 4 photo sites.
func testPlan() flightsim.FlightPlan {
	return flightsim.SurveyPlan("test-survey", testLat, testLon, 2, 600, 200, 120, 25)
}

func busFactory(bus *transport.Bus) func(transport.NodeID) (transport.Transport, error) {
	return func(id transport.NodeID) (transport.Transport, error) {
		return bus.Endpoint(id)
	}
}

func TestFigure3MissionOnBus(t *testing.T) {
	var gsOut bytes.Buffer
	var mu sync.Mutex
	syncOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return gsOut.Write(p)
	})

	plan := testPlan()
	res, err := RunMission(MissionConfig{
		Plan:       plan,
		Transports: busFactory(transport.NewBus()),
		TimeScale:  40,
		SampleRate: 20 * time.Millisecond,
		Out:        syncOut,
		Timeout:    90 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunMission: %v", err)
	}

	if res.Photos != 4 {
		t.Errorf("photos = %d, want 4", res.Photos)
	}
	if res.Stored != 4 {
		t.Errorf("stored = %d, want 4", res.Stored)
	}
	// Camera policy: photos 1-4 -> targets on indexes 3 (1+index%2 when
	// index%3==0): index 3 has targets, so at least one detection.
	if res.Detections == 0 {
		t.Error("no detections in a plan with targeted photos")
	}
	if res.TrackPoints == 0 {
		t.Error("no GPS track recorded")
	}
	if res.GSPositions == 0 {
		t.Error("ground station saw no positions")
	}
	if res.GSEvents[EvtMissionComplete] != 1 {
		t.Errorf("mission-complete events = %d", res.GSEvents[EvtMissionComplete])
	}
	if res.GSEvents[EvtPhotoReady] != 4 {
		t.Errorf("photo-ready events = %d", res.GSEvents[EvtPhotoReady])
	}

	mu.Lock()
	out := gsOut.String()
	mu.Unlock()
	for _, want := range []string{"[gs] pos", EvtPhotoReady, EvtMissionComplete} {
		if !strings.Contains(out, want) {
			t.Errorf("ground station output missing %q", want)
		}
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestFigure3MissionUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy mission is slow")
	}
	net := netsim.New(netsim.Config{Loss: 0.05, Seed: 13, Latency: time.Millisecond})
	defer net.Close()
	res, err := RunMission(MissionConfig{
		Plan: testPlan(),
		Transports: func(id transport.NodeID) (transport.Transport, error) {
			return net.Node(id)
		},
		TimeScale:  40,
		SampleRate: 20 * time.Millisecond,
		Timeout:    120 * time.Second,
	})
	if err != nil {
		t.Fatalf("mission under 5%% loss: %v", err)
	}
	if res.Photos != 4 || res.Stored != 4 {
		t.Errorf("photos=%d stored=%d, want 4/4", res.Photos, res.Stored)
	}
}

func TestMissionConfigValidation(t *testing.T) {
	if _, err := RunMission(MissionConfig{Plan: testPlan()}); err == nil {
		t.Error("missing transport factory must fail")
	}
	bad := testPlan()
	bad.Waypoints = bad.Waypoints[:1]
	if _, err := RunMission(MissionConfig{
		Plan:       bad,
		Transports: busFactory(transport.NewBus()),
	}); err == nil {
		t.Error("invalid plan must fail")
	}
}

func TestPositionValueCanonical(t *testing.T) {
	ac, err := flightsim.New(testPlan(), flightsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := PositionValue(ac.State())
	if err := checkPosition(v); err != nil {
		t.Fatal(err)
	}
}

func checkPosition(v map[string]any) error {
	// TypePosition.Check through the presentation layer.
	return presentationCheck(TypePosition, v)
}

func TestMissionTimesOutWhenCameraMissing(t *testing.T) {
	// A deployment without the camera can't satisfy mission control's
	// dependency check (the §4.3 emergency condition).
	bus := transport.NewBus()
	factory := busFactory(bus)
	plan := testPlan()
	_, err := runMissionWithoutCamera(t, plan, factory)
	if err == nil {
		t.Fatal("mission without camera must fail startup")
	}
	if !errors.Is(err, errDependency()) && !strings.Contains(err.Error(), "emergency") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}
