package services

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/filetransfer"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Storage is the generic storage/retrieval service (§5: "provides storage
// and retrieval of data by providing access to an inner file system"). It
// archives every announced photo via the file-transfer primitive and
// records the GPS track from the position variable, exposing query
// functions over remote invocation.
type Storage struct {
	// MaxTrackPoints bounds the recorded track (default 100k).
	MaxTrackPoints int

	mu    sync.Mutex
	files map[string][]byte
	track []map[string]any

	ctx *core.Context
}

var _ core.Service = (*Storage)(nil)
var _ core.Resourced = (*Storage)(nil)

// Name implements core.Service.
func (s *Storage) Name() string { return "storage" }

// Manifest implements core.Resourced.
func (s *Storage) Manifest() core.Manifest {
	return core.Manifest{MemoryKB: 65536, CPUShare: 0.05}
}

// Init implements core.Service.
func (s *Storage) Init(ctx *core.Context) error {
	s.ctx = ctx
	s.files = make(map[string][]byte)
	if s.MaxTrackPoints <= 0 {
		s.MaxTrackPoints = 100_000
	}

	// Track recording from the position variable (§5: "It is told to
	// store the photos and the GPS positions by the MC").
	if _, err := ctx.SubscribeVariable(VarPosition, TypePosition, subscribeOpts(func(v any, _ time.Time) {
		m, ok := v.(map[string]any)
		if !ok {
			return
		}
		s.mu.Lock()
		if len(s.track) < s.MaxTrackPoints {
			s.track = append(s.track, m)
		}
		s.mu.Unlock()
	})); err != nil {
		return err
	}

	// Archive photos as they are announced.
	if _, err := ctx.SubscribeEvent(EvtPhotoReady, TypePhotoReady, qos.EventQoS{},
		func(v any, from transport.NodeID) { s.archive(v) }); err != nil {
		return err
	}

	// Query surface.
	if err := ctx.RegisterFunction(FnStorageList, nil, TypeStringList, qos.CallQoS{},
		func(any) (any, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			names := make([]string, 0, len(s.files))
			for name := range s.files {
				names = append(names, name)
			}
			sort.Strings(names)
			return names, nil
		}); err != nil {
		return err
	}
	if err := ctx.RegisterFunction(FnStorageStat, TypeStorageStatArgs, TypeStorageStatRet, qos.CallQoS{},
		func(args any) (any, error) {
			m, ok := args.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("storage: bad stat args %T", args)
			}
			name, _ := m["name"].(string)
			s.mu.Lock()
			defer s.mu.Unlock()
			data, found := s.files[name]
			return map[string]any{"size": uint32(len(data)), "found": found}, nil
		}); err != nil {
		return err
	}
	if err := ctx.RegisterFunction(FnStorageTrackLen, nil, presentationU32(), qos.CallQoS{},
		func(any) (any, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			return uint32(len(s.track)), nil
		}); err != nil {
		return err
	}
	return nil
}

func (s *Storage) archive(v any) {
	m, ok := v.(map[string]any)
	if !ok {
		return
	}
	name, _ := m["name"].(string)
	if name == "" {
		return
	}
	fetchCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	data, rev, err := s.ctx.FetchFile(fetchCtx, name, filetransfer.FetchOptions{})
	if err != nil {
		s.ctx.Logf("archive %q: %v", name, err)
		return
	}
	s.mu.Lock()
	s.files[name] = data
	s.mu.Unlock()
	_ = rev
}

// Start implements core.Service.
func (s *Storage) Start(*core.Context) error { return nil }

// Stop implements core.Service.
func (s *Storage) Stop(*core.Context) error { return nil }

// FileCount reports archived resources.
func (s *Storage) FileCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// File returns one archived resource.
func (s *Storage) File(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	return data, ok
}

// TrackLen reports recorded track points.
func (s *Storage) TrackLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.track)
}
