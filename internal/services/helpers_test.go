package services

import (
	"testing"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/flightsim"
	"uavmw/internal/presentation"
	"uavmw/internal/rpc"
	"uavmw/internal/transport"
)

func presentationCheck(t *presentation.Type, v any) error {
	return presentation.Check(t, v)
}

func errDependency() error { return rpc.ErrDependency }

// runMissionWithoutCamera brings up only the flight computer; mission
// control's dependency check must fail.
func runMissionWithoutCamera(t *testing.T, plan flightsim.FlightPlan,
	factory func(transport.NodeID) (transport.Transport, error)) (*core.Node, error) {
	t.Helper()
	tr, err := factory("fcs-solo")
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.WithDatagram(tr), core.WithAnnouncePeriod(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	aircraft, err := flightsim.New(plan, flightsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddService(&GPS{Aircraft: aircraft, SampleRate: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	mc := &MissionControl{Plan: plan, DependencyTimeout: 200 * time.Millisecond}
	if _, err := node.AddService(mc); err != nil {
		t.Fatal(err)
	}
	return node, node.StartServices()
}
