package services

import (
	"fmt"
	"io"
	"sync"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/telemetry"
)

// TelemetryBridge reproduces the paper's §6 FlightGear integration: it
// subscribes to the position variable and writes NMEA sentence bursts to
// any byte stream (a file, a UDP socket toward FlightGear, a terminal).
// The whole service is a page of code — the point of the anecdote.
type TelemetryBridge struct {
	// Out receives the NMEA byte stream; required.
	Out io.Writer

	mu    sync.Mutex
	fixes uint64
}

var _ core.Service = (*TelemetryBridge)(nil)

// Name implements core.Service.
func (b *TelemetryBridge) Name() string { return "telemetry-bridge" }

// Init implements core.Service.
func (b *TelemetryBridge) Init(ctx *core.Context) error {
	if b.Out == nil {
		return fmt.Errorf("telemetry-bridge: no output writer")
	}
	_, err := ctx.SubscribeVariable(VarPosition, TypePosition, subscribeOpts(func(v any, ts time.Time) {
		m, ok := v.(map[string]any)
		if !ok {
			return
		}
		lat, _ := m["lat"].(float64)
		lon, _ := m["lon"].(float64)
		alt, _ := m["alt"].(float32)
		speed, _ := m["speed"].(float32)
		heading, _ := m["heading"].(float32)
		fix, _ := m["fix"].(uint8)
		burst := telemetry.Encode(telemetry.Fix{
			Lat:       lat,
			Lon:       lon,
			AltM:      float64(alt),
			SpeedMS:   float64(speed),
			CourseDeg: float64(heading),
			Time:      ts,
			Valid:     fix > 0,
		})
		if _, err := io.WriteString(b.Out, burst); err != nil {
			ctx.Logf("telemetry write: %v", err)
			return
		}
		b.mu.Lock()
		b.fixes++
		b.mu.Unlock()
	}))
	return err
}

// Start implements core.Service.
func (b *TelemetryBridge) Start(*core.Context) error { return nil }

// Stop implements core.Service.
func (b *TelemetryBridge) Stop(*core.Context) error { return nil }

// Fixes reports emitted telemetry bursts.
func (b *TelemetryBridge) Fixes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fixes
}
