package services

import (
	"context"
	"sync"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/events"
	"uavmw/internal/filetransfer"
	"uavmw/internal/imaging"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Video is the on-board image-processing service, the paper's FPGA module
// (§5): it pulls every announced photo through the file-transfer primitive,
// runs the feature detector, and raises a detection event "if the video
// process detects the pre-programmed characteristics in the image".
type Video struct {
	// Threshold is the detector intensity threshold (default 150).
	Threshold uint8
	// MinPixels is the minimum blob size (default 9).
	MinPixels int

	detPub *events.Publisher
	ctx    *core.Context

	mu         sync.Mutex
	processed  uint64
	detections uint64
}

var _ core.Service = (*Video)(nil)
var _ core.Resourced = (*Video)(nil)

// Name implements core.Service.
func (v *Video) Name() string { return "video" }

// Manifest implements core.Resourced: the FPGA fabric is exclusive.
func (v *Video) Manifest() core.Manifest {
	return core.Manifest{MemoryKB: 16384, CPUShare: 0.3, Devices: []string{"/dev/fpga0"}}
}

// Init implements core.Service.
func (v *Video) Init(ctx *core.Context) error {
	v.ctx = ctx
	if v.Threshold == 0 {
		v.Threshold = 150
	}
	if v.MinPixels <= 0 {
		v.MinPixels = 9
	}
	det, err := ctx.OfferEvent(EvtDetection, TypeDetection, qos.EventQoS{})
	if err != nil {
		return err
	}
	v.detPub = det
	if _, err := ctx.SubscribeEvent(EvtPhotoReady, TypePhotoReady, qos.EventQoS{},
		func(payload any, from transport.NodeID) { v.process(payload) }); err != nil {
		return err
	}
	return nil
}

func (v *Video) process(payload any) {
	m, ok := payload.(map[string]any)
	if !ok {
		return
	}
	name, _ := m["name"].(string)
	if name == "" {
		return
	}
	fetchCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	data, _, err := v.ctx.FetchFile(fetchCtx, name, filetransfer.FetchOptions{})
	if err != nil {
		v.ctx.Logf("fetch %q: %v", name, err)
		return
	}
	img, err := imaging.DecodePNG(data)
	if err != nil {
		v.ctx.Logf("decode %q: %v", name, err)
		return
	}
	dets := imaging.DetectBlobs(img, v.Threshold, v.MinPixels)

	v.mu.Lock()
	v.processed++
	v.detections += uint64(len(dets))
	v.mu.Unlock()

	if len(dets) == 0 {
		return
	}
	best := dets[0]
	for _, d := range dets[1:] {
		if d.Score > best.Score {
			best = d
		}
	}
	pubCtx, cancelPub := publishContext()
	defer cancelPub()
	if err := v.detPub.Publish(pubCtx, map[string]any{
		"name":  name,
		"count": uint32(len(dets)),
		"x":     uint32(best.X),
		"y":     uint32(best.Y),
		"score": best.Score,
	}); err != nil {
		v.ctx.Logf("publish detection for %q: %v", name, err)
	}
}

// Start implements core.Service.
func (v *Video) Start(*core.Context) error { return nil }

// Stop implements core.Service.
func (v *Video) Stop(*core.Context) error { return nil }

// Stats reports processed frames and total detections.
func (v *Video) Stats() (processed, detections uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.processed, v.detections
}
