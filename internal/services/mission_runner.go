package services

import (
	"errors"
	"fmt"
	"io"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/filetransfer"
	"uavmw/internal/flightsim"
	"uavmw/internal/protocol"
	"uavmw/internal/transport"
)

// MissionConfig assembles the paper's Figure 3 deployment: four containers
// (flight computer, payload computer, storage computer, ground station)
// running the six services, on any transport substrate.
type MissionConfig struct {
	// Plan is the flight plan; required.
	Plan flightsim.FlightPlan
	// Transports creates the per-node transport; required. Called with
	// node ids "fcs", "payload", "storage", "ground".
	Transports func(id transport.NodeID) (transport.Transport, error)
	// TimeScale compresses simulated flight time (default 20x).
	TimeScale float64
	// SampleRate is the GPS publication period (default 25 ms).
	SampleRate time.Duration
	// Out receives ground-station terminal output (default io.Discard).
	Out io.Writer
	// Timeout bounds the whole mission (default 2 min).
	Timeout time.Duration
	// AnnouncePeriod tunes discovery (default 50 ms).
	AnnouncePeriod time.Duration
	// Wind adds disturbance to the airframe model.
	Wind flightsim.Options
	// Clock injects the mission's time source (nil means the wall clock).
	// With a clock.Virtual, the whole Figure 3 deployment — discovery,
	// GPS sampling, transfers, the completion poll — runs in
	// discrete-event time; callers drive it from a registered goroutine
	// (clock.Virtual.Run).
	Clock clock.Clock
}

// MissionResult summarizes a completed mission.
type MissionResult struct {
	// Photos requested by mission control.
	Photos uint32
	// Detections raised by the video service.
	Detections uint64
	// Stored files archived by the storage service.
	Stored int
	// TrackPoints recorded by the storage service.
	TrackPoints int
	// GSPositions and GSEvents are ground-station reception counts.
	GSPositions uint64
	GSEvents    map[string]uint64
	// Elapsed is wall-clock mission duration.
	Elapsed time.Duration
}

// ErrMissionTimeout reports an incomplete mission.
var ErrMissionTimeout = errors.New("mission timed out")

// Node ids of the Figure 3 deployment.
const (
	NodeFCS     transport.NodeID = "fcs"
	NodePayload transport.NodeID = "payload"
	NodeStorage transport.NodeID = "storage"
	NodeGround  transport.NodeID = "ground"
)

// RunMission executes the Figure 3 scenario end to end and returns the
// outcome. It is used by the imaging-mission example, the uavmission CLI,
// the F3 integration test and the E9 benchmark.
func RunMission(cfg MissionConfig) (*MissionResult, error) {
	if cfg.Transports == nil {
		return nil, fmt.Errorf("services: no transport factory")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 20
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 25 * time.Millisecond
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.AnnouncePeriod <= 0 {
		cfg.AnnouncePeriod = 50 * time.Millisecond
	}

	aircraft, err := flightsim.New(cfg.Plan, cfg.Wind)
	if err != nil {
		return nil, err
	}
	clk := clock.Or(cfg.Clock)

	newNode := func(id transport.NodeID) (*core.Node, error) {
		tr, err := cfg.Transports(id)
		if err != nil {
			return nil, err
		}
		return core.NewNode(
			core.WithDatagram(tr),
			core.WithClock(clk),
			core.WithAnnouncePeriod(cfg.AnnouncePeriod),
			core.WithARQ(protocol.WithTimeout(10*time.Millisecond)),
			core.WithFileTransfer(filetransfer.WithQueryWindow(15*time.Millisecond)),
		)
	}

	nodes := make([]*core.Node, 0, 4)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	fcs, err := newNode(NodeFCS)
	if err != nil {
		return nil, err
	}
	nodes = append(nodes, fcs)
	payload, err := newNode(NodePayload)
	if err != nil {
		return nil, err
	}
	nodes = append(nodes, payload)
	storageNode, err := newNode(NodeStorage)
	if err != nil {
		return nil, err
	}
	nodes = append(nodes, storageNode)
	ground, err := newNode(NodeGround)
	if err != nil {
		return nil, err
	}
	nodes = append(nodes, ground)

	gps := &GPS{Aircraft: aircraft, SampleRate: cfg.SampleRate, TimeScale: cfg.TimeScale}
	mc := &MissionControl{Plan: cfg.Plan}
	camera := &Camera{}
	video := &Video{}
	storage := &Storage{}
	gs := &GroundStation{Out: cfg.Out}

	// Mission control registers (and therefore starts) before the GPS:
	// its Start blocks until the camera is prepared and subscribed, so no
	// position sample can race past an unarmed mission state machine.
	if _, err := fcs.AddService(mc); err != nil {
		return nil, err
	}
	if _, err := fcs.AddService(gps); err != nil {
		return nil, err
	}
	if _, err := payload.AddService(camera); err != nil {
		return nil, err
	}
	if _, err := payload.AddService(video); err != nil {
		return nil, err
	}
	if _, err := storageNode.AddService(storage); err != nil {
		return nil, err
	}
	if _, err := ground.AddService(gs); err != nil {
		return nil, err
	}

	// Bring up providers first so mission control's dependency check and
	// camera preparation resolve; its Init polls across discovery anyway.
	start := clk.Now()
	if err := payload.StartServices(); err != nil {
		return nil, err
	}
	if err := storageNode.StartServices(); err != nil {
		return nil, err
	}
	if err := ground.StartServices(); err != nil {
		return nil, err
	}
	if err := fcs.StartServices(); err != nil {
		return nil, err
	}

	expectedPhotos := 0
	for _, wp := range cfg.Plan.Waypoints {
		if wp.Photo {
			expectedPhotos++
		}
	}

	deadline := clk.Now().Add(cfg.Timeout)
	for {
		photos, _, complete := mc.Progress()
		processed, _ := video.Stats()
		if complete &&
			int(photos) == expectedPhotos &&
			storage.FileCount() == expectedPhotos &&
			processed == uint64(expectedPhotos) &&
			gs.EventCount(EvtMissionComplete) >= 1 {
			// The ground station has the completion event, so every
			// acknowledgment round-trip has settled; teardown is quiet.
			break
		}
		if clk.Now().After(deadline) {
			return nil, fmt.Errorf(
				"services: photos=%d/%d stored=%d processed=%d complete=%v: %w",
				photos, expectedPhotos, storage.FileCount(), processed, complete,
				ErrMissionTimeout)
		}
		clk.Sleep(5 * time.Millisecond)
	}

	photos, detections, _ := mc.Progress()
	result := &MissionResult{
		Photos:      photos,
		Detections:  detections,
		Stored:      storage.FileCount(),
		TrackPoints: storage.TrackLen(),
		GSPositions: gs.Positions(),
		Elapsed:     clk.Since(start),
		GSEvents: map[string]uint64{
			EvtPhotoRequest:    gs.EventCount(EvtPhotoRequest),
			EvtPhotoReady:      gs.EventCount(EvtPhotoReady),
			EvtDetection:       gs.EventCount(EvtDetection),
			EvtMissionComplete: gs.EventCount(EvtMissionComplete),
		},
	}
	return result, nil
}
