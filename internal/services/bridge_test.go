package services

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/qos"
	"uavmw/internal/telemetry"
	"uavmw/internal/transport"
	"uavmw/internal/variables"
)

// localPositionNode brings up one node with svc installed and a local
// position publisher announced into its own directory — the smallest
// harness that drives a subscribing service through the real variable
// plane.
func localPositionNode(t *testing.T, svc core.Service) *variables.Publisher {
	t.Helper()
	bus := transport.NewBus()
	ep, err := bus.Endpoint("gs-local")
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.WithDatagram(ep), core.WithAnnouncePeriod(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	if _, err := node.AddService(svc); err != nil {
		t.Fatal(err)
	}
	pub, err := node.Variables().Offer(VarPosition, "test", TypePosition, qos.VariableQoS{Validity: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	node.AnnounceNow()
	if err := node.StartServices(); err != nil {
		t.Fatal(err)
	}
	return pub
}

// publishUntil re-publishes v until cond holds (subscription binding is
// asynchronous behind discovery).
func publishUntil(t *testing.T, pub *variables.Publisher, v map[string]any, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("no sample delivered within 5s")
		}
		if err := pub.Publish(v); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testPositionValue() map[string]any {
	return map[string]any{
		"lat":      testLat,
		"lon":      testLon,
		"alt":      float32(120.5),
		"speed":    float32(25.5),
		"heading":  float32(93.5),
		"fix":      uint8(3),
		"wp":       uint32(2),
		"complete": false,
	}
}

// TestLastPositionReturnsCopy is the aliasing regression: LastPosition
// used to hand out the internal map, so a caller's mutation corrupted
// the console's state (and raced with the subscription callback).
func TestLastPositionReturnsCopy(t *testing.T) {
	gs := &GroundStation{Out: io.Discard}
	pub := localPositionNode(t, gs)
	publishUntil(t, pub, testPositionValue(), func() bool { return gs.Positions() > 0 })

	first, ok := gs.LastPosition()
	if !ok {
		t.Fatal("LastPosition empty after a delivered sample")
	}
	first["lat"] = float64(-90)
	delete(first, "alt")

	second, ok := gs.LastPosition()
	if !ok {
		t.Fatal("LastPosition empty on second call")
	}
	if got := second["lat"]; got != testLat {
		t.Errorf("mutation of a returned map leaked into internal state: lat = %v, want %v", got, testLat)
	}
	if _, ok := second["alt"]; !ok {
		t.Error("deleting a key on a returned map removed it from internal state")
	}
}

// TestTelemetryBridgeNMEABurst pins the bridge's output bytes for a known
// position sample: the burst must equal telemetry.Encode of the fix the
// bridge is specified to assemble (coordinates, unit conversions,
// checksums — everything).
func TestTelemetryBridgeNMEABurst(t *testing.T) {
	var mu sync.Mutex
	var out bytes.Buffer
	bridge := &TelemetryBridge{Out: writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})}
	pub := localPositionNode(t, bridge)
	publishUntil(t, pub, testPositionValue(), func() bool { return bridge.Fixes() > 0 })

	mu.Lock()
	burst := out.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(burst), "\r\n")
	if len(lines) < 2 {
		t.Fatalf("burst = %q, want RMC + GGA", burst)
	}
	if !strings.HasPrefix(lines[0], "$GPRMC,") || !strings.HasPrefix(lines[1], "$GPGGA,") {
		t.Fatalf("burst lines = %q, %q", lines[0], lines[1])
	}

	// The sample timestamp is assigned by the variable plane; recover it
	// from the emitted sentence (it is centisecond-truncated there), then
	// the whole burst must reproduce byte for byte.
	fields := strings.Split(strings.TrimPrefix(lines[0], "$"), ",")
	ts, err := time.Parse("150405.00 020106", fields[1]+" "+fields[9])
	if err != nil {
		t.Fatalf("timestamp fields %q %q: %v", fields[1], fields[9], err)
	}
	want := telemetry.Encode(telemetry.Fix{
		Lat:       testLat,
		Lon:       testLon,
		AltM:      float64(float32(120.5)),
		SpeedMS:   float64(float32(25.5)),
		CourseDeg: float64(float32(93.5)),
		Time:      ts,
		Valid:     true,
	})
	if !strings.HasPrefix(burst, want) {
		t.Errorf("burst:\n%q\nwant prefix:\n%q", burst, want)
	}
}

// failWriter refuses every write, counting attempts.
type failWriter struct{ calls atomic.Int64 }

func (f *failWriter) Write([]byte) (int, error) {
	f.calls.Add(1)
	return 0, errors.New("telemetry sink full")
}

// TestTelemetryBridgeWriteFailureNotCounted: a burst the consumer never
// received is not a delivered fix.
func TestTelemetryBridgeWriteFailureNotCounted(t *testing.T) {
	fw := &failWriter{}
	bridge := &TelemetryBridge{Out: fw}
	pub := localPositionNode(t, bridge)
	publishUntil(t, pub, testPositionValue(), func() bool { return fw.calls.Load() >= 3 })

	if got := bridge.Fixes(); got != 0 {
		t.Errorf("Fixes() = %d after %d failed writes, want 0", got, fw.calls.Load())
	}
}
