// Package services implements the paper's §5 application example as
// reusable avionics services: GPS, Mission Control, Camera, Storage, Video
// Processing, Ground Station and a FlightGear-style telemetry bridge. Each
// is "generic enough to be reutilized in most of the UAV missions" — they
// know only the middleware Context API and the shared resource names and
// payload types declared here.
package services

import (
	"time"

	"uavmw/internal/flightsim"
	"uavmw/internal/presentation"
)

// Resource names shared by the mission services. Everything is addressed
// by these names; no service knows where another runs (§3).
const (
	// VarPosition is the GPS position variable (§5: "the GPS which
	// generates the position variable").
	VarPosition = "gps.position"
	// EvtPhotoRequest asks the camera for a photo at the current point.
	EvtPhotoRequest = "mission.photo"
	// EvtPhotoReady announces a captured photo's file resource.
	EvtPhotoReady = "camera.photo-ready"
	// EvtDetection reports an on-board image-processing hit.
	EvtDetection = "video.detection"
	// EvtMissionComplete reports plan completion.
	EvtMissionComplete = "mission.complete"
	// FnCameraPrepare configures the camera before the first photo
	// ("the MC instructs the camera to prepare itself to take photos and
	// publish them with the specified name").
	FnCameraPrepare = "camera.prepare"
	// FnStorageList lists stored resources.
	FnStorageList = "storage.list"
	// FnStorageStat reports one stored resource's size.
	FnStorageStat = "storage.stat"
	// FnStorageTrackLen reports recorded GPS track points.
	FnStorageTrackLen = "storage.track-len"
)

// Payload types for the shared resources.
var (
	// TypePosition is the GPS position sample.
	TypePosition = presentation.MustParse(
		"{lat:f64,lon:f64,alt:f32,speed:f32,heading:f32,fix:u8,wp:u32,complete:bool}")
	// TypePhotoRequest is the photo-trigger event payload.
	TypePhotoRequest = presentation.MustParse("{name:str,index:u32,lat:f64,lon:f64}")
	// TypePhotoReady is the photo-availability event payload.
	TypePhotoReady = presentation.MustParse("{name:str,index:u32}")
	// TypeDetection is the detection event payload.
	TypeDetection = presentation.MustParse("{name:str,count:u32,x:u32,y:u32,score:f64}")
	// TypeMissionComplete is the completion event payload.
	TypeMissionComplete = presentation.MustParse("{photos:u32,elapsed_ms:u32}")
	// TypeCameraPrepareArgs configures photo naming and geometry.
	TypeCameraPrepareArgs = presentation.MustParse("{prefix:str,width:u32,height:u32}")
	// TypeStorageStatArgs names a stored resource.
	TypeStorageStatArgs = presentation.MustParse("{name:str}")
	// TypeStorageStatRet reports its size.
	TypeStorageStatRet = presentation.MustParse("{size:u32,found:bool}")
	// TypeStringList is a list of names.
	TypeStringList = presentation.MustParse("[]str")
)

// PositionValue converts an aircraft state into the canonical VarPosition
// payload.
func PositionValue(st flightsim.State) map[string]any {
	fix := uint8(3)
	return map[string]any{
		"lat":      st.Lat,
		"lon":      st.Lon,
		"alt":      float32(st.AltM),
		"speed":    float32(st.SpeedMS),
		"heading":  float32(st.HeadingDeg),
		"fix":      fix,
		"wp":       uint32(st.Waypoint),
		"complete": st.Complete,
	}
}

// DefaultSampleRate is the GPS publication period.
const DefaultSampleRate = 100 * time.Millisecond
