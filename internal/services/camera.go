package services

import (
	"fmt"
	"strings"
	"sync"

	"uavmw/internal/core"
	"uavmw/internal/events"
	"uavmw/internal/imaging"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Camera is the payload service (§5): prepared through remote invocation,
// triggered by mission events, publishing each captured frame as a file
// resource and announcing it with an event.
type Camera struct {
	// TargetsFor decides how many detectable features appear in photo
	// index i (default: one target in every third photo).
	TargetsFor func(index uint32) int
	// Noise is the frame background noise level (default 40).
	Noise int

	mu       sync.Mutex
	prepared bool
	prefix   string
	width    uint32
	height   uint32
	count    uint32

	ready *events.Publisher
	ctx   *core.Context
}

var _ core.Service = (*Camera)(nil)
var _ core.Resourced = (*Camera)(nil)

// Name implements core.Service.
func (c *Camera) Name() string { return "camera" }

// Manifest implements core.Resourced: the imager is an exclusive device.
func (c *Camera) Manifest() core.Manifest {
	return core.Manifest{MemoryKB: 4096, CPUShare: 0.15, Devices: []string{"/dev/video0"}}
}

// Init implements core.Service.
func (c *Camera) Init(ctx *core.Context) error {
	c.ctx = ctx
	if c.TargetsFor == nil {
		c.TargetsFor = func(index uint32) int {
			if index%3 == 0 {
				return 1 + int(index%2)
			}
			return 0
		}
	}
	if c.Noise <= 0 {
		c.Noise = 40
	}

	ready, err := ctx.OfferEvent(EvtPhotoReady, TypePhotoReady, qos.EventQoS{})
	if err != nil {
		return err
	}
	c.ready = ready

	// Remote-invocation surface: prepare(prefix, geometry) -> bool.
	if err := ctx.RegisterFunction(FnCameraPrepare, TypeCameraPrepareArgs,
		presentationBool(), qos.CallQoS{}, func(args any) (any, error) {
			m, ok := args.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("camera: bad prepare args %T", args)
			}
			return c.prepare(m)
		}); err != nil {
		return err
	}

	// Photo trigger events from mission control.
	if _, err := ctx.SubscribeEvent(EvtPhotoRequest, TypePhotoRequest, qos.EventQoS{},
		func(v any, from transport.NodeID) { c.takePhoto(v) }); err != nil {
		return err
	}
	return nil
}

func (c *Camera) prepare(args map[string]any) (bool, error) {
	prefix, _ := args["prefix"].(string)
	width, _ := args["width"].(uint32)
	height, _ := args["height"].(uint32)
	if prefix == "" || strings.ContainsAny(prefix, " /") {
		return false, fmt.Errorf("camera: bad photo prefix %q", prefix)
	}
	if width == 0 || height == 0 {
		return false, fmt.Errorf("camera: bad geometry %dx%d", width, height)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prepared = true
	c.prefix = prefix
	c.width = width
	c.height = height
	return true, nil
}

// takePhoto captures, offers the file, and announces it.
func (c *Camera) takePhoto(v any) {
	req, ok := v.(map[string]any)
	if !ok {
		return
	}
	c.mu.Lock()
	if !c.prepared {
		c.mu.Unlock()
		c.ctx.Logf("photo requested before prepare; ignoring")
		return
	}
	width, height, noise := c.width, c.height, c.Noise
	c.count++
	shot := c.count
	c.mu.Unlock()

	name, _ := req["name"].(string)
	index, _ := req["index"].(uint32)
	img, _, err := imaging.Generate(imaging.FrameSpec{
		Width:       int(width),
		Height:      int(height),
		TargetCount: c.TargetsFor(index),
		NoiseLevel:  noise,
		Seed:        int64(index) + 1,
	})
	if err != nil {
		c.ctx.Logf("generate frame: %v", err)
		return
	}
	data, err := imaging.EncodePNG(img)
	if err != nil {
		c.ctx.Logf("encode frame: %v", err)
		return
	}
	if _, err := c.ctx.OfferFile(name, data, qos.TransferQoS{}); err != nil {
		c.ctx.Logf("offer photo %q: %v", name, err)
		return
	}
	ctx, cancel := publishContext()
	defer cancel()
	if err := c.ready.Publish(ctx, map[string]any{"name": name, "index": index}); err != nil {
		c.ctx.Logf("announce photo %q: %v", name, err)
	}
	_ = shot
}

// Start implements core.Service.
func (c *Camera) Start(*core.Context) error { return nil }

// Stop implements core.Service.
func (c *Camera) Stop(*core.Context) error { return nil }

// Shots reports photos captured.
func (c *Camera) Shots() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}
