package services

import (
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/flightsim"
	"uavmw/internal/qos"
	"uavmw/internal/variables"
)

// GPS drives the flight-dynamics substrate and publishes the position
// variable at a fixed rate — the paper's "starting service" (§5). The
// variable primitive is chosen "for its high efficiency ... over the safer
// event primitive" exactly as the paper argues: consumers tolerate lost
// samples.
type GPS struct {
	// Aircraft is the simulated airframe; required.
	Aircraft *flightsim.Aircraft
	// SampleRate is the publication period (default DefaultSampleRate).
	SampleRate time.Duration
	// TimeScale multiplies simulated time per tick, letting a long
	// mission run in seconds of wall clock (default 1.0).
	TimeScale float64
	// Validity is the sample validity announced to subscribers
	// (default 5 sample periods).
	Validity time.Duration

	pub  *variables.Publisher
	stop chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	published uint64
}

var _ core.Service = (*GPS)(nil)
var _ core.Resourced = (*GPS)(nil)

// Name implements core.Service.
func (g *GPS) Name() string { return "gps" }

// Manifest implements core.Resourced: the GPS owns the receiver device.
func (g *GPS) Manifest() core.Manifest {
	return core.Manifest{MemoryKB: 256, CPUShare: 0.05, Devices: []string{"/dev/gps0"}}
}

// Init implements core.Service.
func (g *GPS) Init(ctx *core.Context) error {
	if g.Aircraft == nil {
		return fmt.Errorf("gps: no aircraft model")
	}
	if g.SampleRate <= 0 {
		g.SampleRate = DefaultSampleRate
	}
	if g.TimeScale <= 0 {
		g.TimeScale = 1
	}
	if g.Validity <= 0 {
		g.Validity = 5 * g.SampleRate
	}
	pub, err := ctx.OfferVariable(VarPosition, TypePosition, qos.VariableQoS{
		Validity: g.Validity,
		Period:   g.SampleRate,
		Priority: qos.PriorityNormal,
	})
	if err != nil {
		return err
	}
	g.pub = pub
	return nil
}

// Start implements core.Service.
func (g *GPS) Start(ctx *core.Context) error {
	g.stop = make(chan struct{})
	g.wg.Add(1)
	clock.Go(ctx.Clock(), func() { g.run(ctx) })
	return nil
}

func (g *GPS) run(ctx *core.Context) {
	defer g.wg.Done()
	// The sample cadence rides the container's clock: under a virtual
	// clock a whole mission's worth of GPS ticks runs in discrete-event
	// time, drift-free.
	ticker := ctx.Clock().NewTicker(g.SampleRate)
	defer ticker.Stop()
	simStep := time.Duration(float64(g.SampleRate) * g.TimeScale)
	for ticker.Wait(g.stop) {
		st := g.Aircraft.Step(simStep)
		if err := g.pub.Publish(PositionValue(st)); err != nil {
			ctx.Logf("publish position: %v", err)
			continue
		}
		g.mu.Lock()
		g.published++
		g.mu.Unlock()
	}
}

// Stop implements core.Service.
func (g *GPS) Stop(*core.Context) error {
	if g.stop != nil {
		close(g.stop)
		g.wg.Wait()
		g.stop = nil
	}
	return nil
}

// Published reports samples published so far.
func (g *GPS) Published() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.published
}
