package services

import (
	"context"
	"time"

	"uavmw/internal/presentation"
	"uavmw/internal/variables"
)

// publishContext bounds an event publication; mission events must not hang
// a service forever when a subscriber node is dying.
func publishContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// presentationBool keeps call sites terse.
func presentationBool() *presentation.Type { return presentation.Bool() }

// presentationU32 keeps call sites terse.
func presentationU32() *presentation.Type { return presentation.Uint32() }

// subscribeOpts builds variable subscription options with just a sample
// callback, the common service case.
func subscribeOpts(onSample func(v any, ts time.Time)) variables.SubscribeOptions {
	return variables.SubscribeOptions{OnSample: onSample}
}
