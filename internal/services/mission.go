package services

import (
	"context"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/events"
	"uavmw/internal/flightsim"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// MissionControl is the orchestrating service (§5): it "monitors the status
// of the mission and following a provided flight plan orquestrates the rest
// of services to autonomously accomplish the mission". It prepares the
// camera via remote invocation, watches the position variable, fires photo
// events at the plan's photo waypoints, counts detections, and raises the
// completion event.
type MissionControl struct {
	// Plan is the mission flight plan; required.
	Plan flightsim.FlightPlan
	// PhotoRadiusM triggers a photo within this distance of a photo
	// waypoint (default 80 m).
	PhotoRadiusM float64
	// PhotoPrefix names photo resources "<prefix>.<index>" (default
	// "photo").
	PhotoPrefix string
	// PhotoWidth/PhotoHeight request camera geometry (default 640x480).
	PhotoWidth, PhotoHeight uint32
	// DependencyTimeout bounds the §4.3 startup dependency wait across
	// asynchronous discovery (default 5 s).
	DependencyTimeout time.Duration

	photoReq *events.Publisher
	complete *events.Publisher
	ctx      *core.Context

	mu          sync.Mutex
	armed       bool         // photo logic enabled (camera prepared + subscribed)
	shot        map[int]bool // photo waypoint index -> requested
	photoIndex  uint32
	detections  uint64
	completeAt  time.Time
	completeSet bool
	started     time.Time
}

var _ core.Service = (*MissionControl)(nil)

// Name implements core.Service.
func (mc *MissionControl) Name() string { return "mission-control" }

// Init implements core.Service.
func (mc *MissionControl) Init(ctx *core.Context) error {
	mc.ctx = ctx
	if err := mc.Plan.Validate(); err != nil {
		return err
	}
	if mc.PhotoRadiusM <= 0 {
		mc.PhotoRadiusM = 80
	}
	if mc.PhotoPrefix == "" {
		mc.PhotoPrefix = "photo"
	}
	if mc.PhotoWidth == 0 {
		mc.PhotoWidth = 640
	}
	if mc.PhotoHeight == 0 {
		mc.PhotoHeight = 480
	}
	if mc.DependencyTimeout <= 0 {
		mc.DependencyTimeout = 5 * time.Second
	}
	mc.shot = make(map[int]bool)

	// §4.3: check required functions exist before the mission starts.
	// Discovery is asynchronous, so poll up to the timeout before
	// declaring the emergency condition.
	clk := ctx.Clock()
	deadline := clk.Now().Add(mc.DependencyTimeout)
	for {
		err := ctx.RequireFunctions(FnCameraPrepare)
		if err == nil {
			break
		}
		if clk.Now().After(deadline) {
			return fmt.Errorf("mission-control: emergency, dependencies unmet: %w", err)
		}
		clk.Sleep(20 * time.Millisecond)
	}

	photoReq, err := ctx.OfferEvent(EvtPhotoRequest, TypePhotoRequest, qos.EventQoS{})
	if err != nil {
		return err
	}
	mc.photoReq = photoReq
	complete, err := ctx.OfferEvent(EvtMissionComplete, TypeMissionComplete, qos.EventQoS{})
	if err != nil {
		return err
	}
	mc.complete = complete

	if _, err := ctx.SubscribeVariable(VarPosition, TypePosition, subscribeOpts(mc.onPosition)); err != nil {
		return err
	}
	if _, err := ctx.SubscribeEvent(EvtDetection, TypeDetection, qos.EventQoS{},
		func(v any, from transport.NodeID) {
			mc.mu.Lock()
			mc.detections++
			mc.mu.Unlock()
		}); err != nil {
		return err
	}
	return nil
}

// Start implements core.Service: prepare the camera through remote
// invocation ("all these initialization have remote call semantics").
func (mc *MissionControl) Start(ctx *core.Context) error {
	clk := ctx.Clock()
	mc.mu.Lock()
	mc.started = clk.Now()
	mc.mu.Unlock()
	callCtx, cancel := context.WithTimeout(context.Background(), mc.DependencyTimeout)
	defer cancel()
	ok, err := ctx.Call(callCtx, FnCameraPrepare, map[string]any{
		"prefix": mc.PhotoPrefix,
		"width":  mc.PhotoWidth,
		"height": mc.PhotoHeight,
	}, TypeCameraPrepareArgs, presentationBool(), qos.CallQoS{Deadline: mc.DependencyTimeout})
	if err != nil {
		return fmt.Errorf("mission-control: camera prepare: %w", err)
	}
	if ok != true {
		return fmt.Errorf("mission-control: camera refused preparation")
	}
	// Hold the mission until the photo topic has a subscriber: the
	// camera's guaranteed-delivery subscription is established through
	// discovery, and a plan may place its first photo waypoint at the
	// launch point, so firing before anyone listens would silently lose
	// the trigger.
	deadline := clk.Now().Add(mc.DependencyTimeout)
	for len(mc.photoReq.Subscribers()) == 0 {
		if clk.Now().After(deadline) {
			return fmt.Errorf("mission-control: no %s subscriber within %v", EvtPhotoRequest, mc.DependencyTimeout)
		}
		clk.Sleep(5 * time.Millisecond)
	}
	mc.mu.Lock()
	mc.armed = true
	mc.mu.Unlock()
	return nil
}

// onPosition drives the mission state machine from position samples.
func (mc *MissionControl) onPosition(v any, _ time.Time) {
	m, ok := v.(map[string]any)
	if !ok {
		return
	}
	lat, _ := m["lat"].(float64)
	lon, _ := m["lon"].(float64)
	complete, _ := m["complete"].(bool)

	type photoShot struct {
		name  string
		index uint32
	}
	var fire []photoShot
	mc.mu.Lock()
	if !mc.armed {
		mc.mu.Unlock()
		return
	}
	for i, wp := range mc.Plan.Waypoints {
		if !wp.Photo || mc.shot[i] {
			continue
		}
		if flightsim.DistanceM(lat, lon, wp.Lat, wp.Lon) <= mc.PhotoRadiusM {
			mc.shot[i] = true
			mc.photoIndex++
			fire = append(fire, photoShot{
				name:  fmt.Sprintf("%s.%04d", mc.PhotoPrefix, mc.photoIndex),
				index: mc.photoIndex,
			})
		}
	}
	var fireComplete bool
	var photos uint32
	var elapsed time.Duration
	if complete && !mc.completeSet {
		mc.completeSet = true
		now := mc.ctx.Clock().Now()
		mc.completeAt = now
		fireComplete = true
		photos = mc.photoIndex
		elapsed = now.Sub(mc.started)
	}
	mc.mu.Unlock()

	for _, shot := range fire {
		pubCtx, cancel := publishContext()
		err := mc.photoReq.Publish(pubCtx, map[string]any{
			"name": shot.name, "index": shot.index, "lat": lat, "lon": lon,
		})
		cancel()
		if err != nil {
			mc.ctx.Logf("photo request %q: %v", shot.name, err)
		}
	}
	if fireComplete {
		pubCtx, cancel := publishContext()
		defer cancel()
		if err := mc.complete.Publish(pubCtx, map[string]any{
			"photos": photos, "elapsed_ms": uint32(elapsed / time.Millisecond),
		}); err != nil {
			mc.ctx.Logf("mission complete event: %v", err)
		}
	}
}

// Stop implements core.Service.
func (mc *MissionControl) Stop(*core.Context) error { return nil }

// Progress reports photos requested, detections seen and completion.
func (mc *MissionControl) Progress() (photos uint32, detections uint64, complete bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.photoIndex, mc.detections, mc.completeSet
}
