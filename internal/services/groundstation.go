package services

import (
	"fmt"
	"io"
	"sync"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// GroundStation is the operator console (§5: "basically shows the
// subscribed variables and events in a terminal"). Output goes to any
// io.Writer; tests capture it, the CLI points it at stdout.
type GroundStation struct {
	// Out receives the terminal lines; required.
	Out io.Writer
	// PositionEvery throttles position printing to one line per N
	// samples (default 10).
	PositionEvery int

	mu        sync.Mutex
	positions uint64
	events    map[string]uint64
	lastPos   map[string]any
}

var _ core.Service = (*GroundStation)(nil)

// Name implements core.Service.
func (gs *GroundStation) Name() string { return "ground-station" }

// Init implements core.Service.
func (gs *GroundStation) Init(ctx *core.Context) error {
	if gs.Out == nil {
		return fmt.Errorf("ground-station: no output writer")
	}
	if gs.PositionEvery <= 0 {
		gs.PositionEvery = 10
	}
	gs.events = make(map[string]uint64)

	if _, err := ctx.SubscribeVariable(VarPosition, TypePosition, subscribeOpts(func(v any, ts time.Time) {
		m, ok := v.(map[string]any)
		if !ok {
			return
		}
		gs.mu.Lock()
		gs.positions++
		gs.lastPos = m
		print := gs.positions%uint64(gs.PositionEvery) == 1
		gs.mu.Unlock()
		if print {
			fmt.Fprintf(gs.Out, "[gs] pos %s\n", presentation.FormatValue(TypePosition, m))
		}
	})); err != nil {
		return err
	}

	topics := []struct {
		name string
		typ  *presentation.Type
	}{
		{EvtPhotoRequest, TypePhotoRequest},
		{EvtPhotoReady, TypePhotoReady},
		{EvtDetection, TypeDetection},
		{EvtMissionComplete, TypeMissionComplete},
	}
	for _, topic := range topics {
		topic := topic
		if _, err := ctx.SubscribeEvent(topic.name, topic.typ, qos.EventQoS{},
			func(v any, from transport.NodeID) {
				gs.mu.Lock()
				gs.events[topic.name]++
				gs.mu.Unlock()
				fmt.Fprintf(gs.Out, "[gs] %s from %s: %s\n",
					topic.name, from, presentation.FormatValue(topic.typ, v))
			}); err != nil {
			return err
		}
	}
	return nil
}

// Start implements core.Service.
func (gs *GroundStation) Start(*core.Context) error { return nil }

// Stop implements core.Service.
func (gs *GroundStation) Stop(*core.Context) error { return nil }

// Positions reports received position samples.
func (gs *GroundStation) Positions() uint64 {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.positions
}

// EventCount reports occurrences seen for a topic.
func (gs *GroundStation) EventCount(topic string) uint64 {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.events[topic]
}

// LastPosition returns the freshest position sample, if any. The result
// is a deep copy: the internal map is shared with the subscription
// callback and would otherwise race with (or be mutated under) the
// caller.
func (gs *GroundStation) LastPosition() (map[string]any, bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.lastPos == nil {
		return nil, false
	}
	return presentation.DeepCopy(gs.lastPos).(map[string]any), true
}
