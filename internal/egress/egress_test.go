package egress

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// gateSender records transmissions and can hold the drainer on a gate so
// tests can fill queues while the first datagram is "on the wire".
type gateSender struct {
	mu    sync.Mutex
	sends []sendRec
	gate  chan struct{} // when non-nil, each send blocks until a token
	errs  error
}

type sendRec struct {
	to    transport.NodeID
	group string
	raw   []byte
}

func (s *gateSender) Send(to transport.NodeID, payload []byte) error {
	return s.record(sendRec{to: to, raw: payload})
}

func (s *gateSender) SendGroup(group string, payload []byte) error {
	return s.record(sendRec{group: group, raw: payload})
}

func (s *gateSender) record(r sendRec) error {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sends = append(s.sends, r)
	return s.errs
}

func (s *gateSender) snapshot() []sendRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]sendRec(nil), s.sends...)
}

func frameBytes(t *testing.T, typ protocol.MsgType, p qos.Priority, seq uint64, size int) []byte {
	t.Helper()
	raw, err := protocol.EncodeFrame(&protocol.Frame{
		Type: typ, Priority: p, Channel: "t", Seq: seq, Payload: make([]byte, size),
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// decodeAll expands a sent datagram into its logical frames (unpacking
// batches) and returns their seqs in order.
func decodeAll(t *testing.T, recs []sendRec) []uint64 {
	t.Helper()
	var seqs []uint64
	for _, r := range recs {
		f, err := protocol.DecodeFrame(r.raw)
		if err != nil {
			t.Fatalf("decode sent datagram: %v", err)
		}
		if f.Type != protocol.MTBatch {
			seqs = append(seqs, f.Seq)
			continue
		}
		subs, err := protocol.DecodeBatch(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range subs {
			inner, err := protocol.DecodeFrame(sub)
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, inner.Seq)
		}
	}
	return seqs
}

// waitDequeued blocks until the drainer has popped n frames of class pr —
// i.e. the gated sender is now holding the wire and later enqueues will
// observably queue behind it.
func waitDequeued(t *testing.T, p *Plane, pr qos.Priority, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Class(pr).Sent < n {
		if time.Now().After(deadline) {
			t.Fatalf("drainer never dequeued %d %v frames", n, pr)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitSends(t *testing.T, s *gateSender, want int) []sendRec {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := s.snapshot()
		if len(recs) >= want {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d datagrams sent", len(recs), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClassCountMatchesQoS(t *testing.T) {
	if numClasses != qos.NumLevels() {
		t.Fatalf("numClasses = %d, qos.NumLevels() = %d", numClasses, qos.NumLevels())
	}
}

// TestStrictPriorityOrdering is the regression test pinning the egress
// queue's ordering guarantee: with bulk frames queued ahead in time, a
// later-enqueued critical frame is transmitted first.
func TestStrictPriorityOrdering(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{CoalesceMax: -1})
	defer p.Close()

	// Hold the drainer on the first bulk frame while the rest queue up.
	if err := p.Enqueue("gs", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, 1, 600)); err != nil {
		t.Fatal(err)
	}
	waitDequeued(t, p, qos.PriorityBulk, 1)
	for seq := uint64(2); seq <= 6; seq++ {
		if err := p.Enqueue("gs", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, seq, 600)); err != nil {
			t.Fatal(err)
		}
	}
	// Enqueued last, must transmit before every still-queued bulk frame.
	if err := p.Enqueue("gs", qos.PriorityCritical, frameBytes(t, protocol.MTEvent, qos.PriorityCritical, 100, 40)); err != nil {
		t.Fatal(err)
	}
	close(s.gate) // release the wire
	recs := waitSends(t, s, 7)
	seqs := decodeAll(t, recs)
	if seqs[0] != 1 {
		t.Fatalf("first datagram seq = %d, want 1 (already draining)", seqs[0])
	}
	if seqs[1] != 100 {
		t.Fatalf("critical frame drained at position %v, want immediately after in-flight bulk (order %v)", seqs[1], seqs)
	}
	for i, want := range []uint64{2, 3, 4, 5, 6} {
		if seqs[2+i] != want {
			t.Fatalf("bulk order broken: %v", seqs)
		}
	}
}

func TestRoundRobinAcrossDestinationsWithinClass(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{CoalesceMax: -1})
	defer p.Close()
	if err := p.Enqueue("hold", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 1, 10)); err != nil {
		t.Fatal(err)
	}
	waitDequeued(t, p, qos.PriorityNormal, 1)
	for seq := uint64(10); seq < 13; seq++ {
		_ = p.Enqueue("a", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, seq, 10))
		_ = p.Enqueue("b", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, seq+10, 10))
	}
	close(s.gate)
	recs := waitSends(t, s, 7)
	// After the held frame, destinations a and b must alternate.
	var destOrder []transport.NodeID
	for _, r := range recs[1:] {
		destOrder = append(destOrder, r.to)
	}
	for i := 1; i < len(destOrder); i++ {
		if destOrder[i] == destOrder[i-1] {
			t.Fatalf("no round-robin: %v", destOrder)
		}
	}
}

func TestDropOldestOverflow(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{QueueCap: 4, CoalesceMax: -1})
	defer p.Close()
	_ = p.Enqueue("hold", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, 1, 10))
	waitDequeued(t, p, qos.PriorityBulk, 1)
	for seq := uint64(10); seq < 20; seq++ { // 10 frames into a cap-4 queue
		_ = p.Enqueue("gs", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, seq, 10))
	}
	close(s.gate)
	recs := waitSends(t, s, 1+4)
	seqs := decodeAll(t, recs)
	want := []uint64{1, 16, 17, 18, 19} // newest 4 survive, oldest dropped
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("drop-oldest order = %v, want %v", seqs, want)
		}
	}
	st := p.Stats().Class(qos.PriorityBulk)
	if st.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", st.Dropped)
	}
	if st.Enqueued != 11 || st.Sent != 5 {
		t.Fatalf("enqueued/sent = %d/%d, want 11/5", st.Enqueued, st.Sent)
	}
}

func TestCoalescingPacksSmallFramesIntoOneDatagram(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{})
	defer p.Close()
	_ = p.Enqueue("hold", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 1, 10))
	waitDequeued(t, p, qos.PriorityNormal, 1)
	for seq := uint64(2); seq <= 9; seq++ {
		_ = p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, seq, 50))
	}
	close(s.gate)
	recs := waitSends(t, s, 2)
	if len(s.snapshot()) != 2 {
		t.Fatalf("sent %d datagrams, want 2 (hold + one batch)", len(s.snapshot()))
	}
	seqs := decodeAll(t, recs)
	if len(seqs) != 9 {
		t.Fatalf("decoded %d frames, want 9: %v", len(seqs), seqs)
	}
	for i, want := range []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		if seqs[i] != want {
			t.Fatalf("batch order = %v", seqs)
		}
	}
	st := p.Stats().Class(qos.PriorityNormal)
	if st.Coalesced != 8 {
		t.Fatalf("coalesced = %d, want 8", st.Coalesced)
	}
	if st.Datagrams != 2 {
		t.Fatalf("datagrams = %d, want 2", st.Datagrams)
	}
}

func TestCoalescingRespectsDatagramBudget(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{MaxDatagram: 700, CoalesceMax: 512})
	defer p.Close()
	_ = p.Enqueue("hold", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 1, 10))
	waitDequeued(t, p, qos.PriorityNormal, 1)
	for seq := uint64(2); seq <= 5; seq++ {
		_ = p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, seq, 250))
	}
	close(s.gate)
	recs := waitSends(t, s, 3)
	for _, r := range recs {
		if len(r.raw) > 700 {
			t.Fatalf("datagram %d bytes exceeds 700 budget", len(r.raw))
		}
	}
	if got := len(decodeAll(t, recs)); got != 5 {
		t.Fatalf("frames delivered = %d, want 5", got)
	}
}

func TestLargeFramesNeverCoalesce(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{})
	defer p.Close()
	_ = p.Enqueue("hold", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, 1, 10))
	waitDequeued(t, p, qos.PriorityBulk, 1)
	for seq := uint64(2); seq <= 4; seq++ {
		_ = p.Enqueue("gs", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, seq, 1200))
	}
	close(s.gate)
	recs := waitSends(t, s, 4)
	for _, r := range recs {
		f, err := protocol.DecodeFrame(r.raw)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type == protocol.MTBatch {
			t.Fatal("1200-byte chunks were coalesced")
		}
	}
}

func TestBulkPacingShapesRate(t *testing.T) {
	s := &gateSender{}
	const rate = 100_000 // B/s
	p := New(s, Config{BulkRateBPS: rate, BulkBurst: 1200, CoalesceMax: -1})
	defer p.Close()
	const n, size = 20, 1000
	raws := make([][]byte, n)
	for i := range raws {
		raws[i] = frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, uint64(i+1), size)
	}
	wire := len(raws[0]) * n
	start := time.Now()
	for _, raw := range raws {
		_ = p.Enqueue("gs", qos.PriorityBulk, raw)
	}
	waitSends(t, s, n)
	elapsed := time.Since(start)
	// First ~burst bytes pass free; the rest are paced at the rate.
	expect := time.Duration(float64(wire-1200) / rate * float64(time.Second))
	if elapsed < expect/2 {
		t.Fatalf("drained %d wire bytes in %v, pacing expects ≈%v", wire, elapsed, expect)
	}
	if elapsed > 4*expect {
		t.Fatalf("pacing too slow: %v for ≈%v of traffic", elapsed, expect)
	}
	if p.Stats().BulkWaits == 0 {
		t.Fatal("pacer never throttled")
	}
}

func TestBulkPacingDoesNotDelayHigherClasses(t *testing.T) {
	s := &gateSender{}
	p := New(s, Config{BulkRateBPS: 10_000, BulkBurst: 600, CoalesceMax: -1})
	defer p.Close()
	// Saturate bulk far beyond the bucket.
	for seq := uint64(1); seq <= 10; seq++ {
		_ = p.Enqueue("gs", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, seq, 500))
	}
	time.Sleep(20 * time.Millisecond) // drainer now waiting on tokens
	start := time.Now()
	_ = p.Enqueue("gs", qos.PriorityCritical, frameBytes(t, protocol.MTEvent, qos.PriorityCritical, 99, 40))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := p.Stats().Class(qos.PriorityCritical); st.Sent == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("critical frame stuck behind bulk pacing")
		}
		time.Sleep(time.Millisecond)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("critical frame waited %v behind throttled bulk", waited)
	}
}

func TestCloseFlushesQueuedFrames(t *testing.T) {
	s := &gateSender{gate: make(chan struct{})}
	p := New(s, Config{CoalesceMax: -1})
	_ = p.Enqueue("hold", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 1, 10))
	waitDequeued(t, p, qos.PriorityNormal, 1)
	for seq := uint64(2); seq <= 5; seq++ {
		_ = p.EnqueueGroup("g", qos.PriorityHigh, frameBytes(t, protocol.MTBye, qos.PriorityHigh, seq, 10))
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	close(s.gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
	if got := len(decodeAll(t, s.snapshot())); got != 5 {
		t.Fatalf("flushed %d frames, want 5", got)
	}
	if err := p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 9, 10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
}

func TestGroupAndUnicastLanesAreIndependent(t *testing.T) {
	s := &gateSender{}
	p := New(s, Config{CoalesceMax: -1})
	defer p.Close()
	_ = p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 1, 10))
	_ = p.EnqueueGroup("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 2, 10))
	recs := waitSends(t, s, 2)
	var uni, grp int
	for _, r := range recs {
		if r.group != "" {
			grp++
		} else {
			uni++
		}
	}
	if uni != 1 || grp != 1 {
		t.Fatalf("unicast/group sends = %d/%d, want 1/1", uni, grp)
	}
}

func TestStatsTotals(t *testing.T) {
	s := &gateSender{}
	p := New(s, Config{CoalesceMax: -1})
	defer p.Close()
	for i, pr := range qos.Levels() {
		_ = p.Enqueue(transport.NodeID(fmt.Sprintf("n%d", i)), pr, frameBytes(t, protocol.MTSample, pr, uint64(i+1), 20))
	}
	waitSends(t, s, 5)
	tot := p.Stats().Totals()
	if tot.Enqueued != 5 || tot.Sent != 5 || tot.Dropped != 0 {
		t.Fatalf("totals = %+v", tot)
	}
	for _, pr := range qos.Levels() {
		if st := p.Stats().Class(pr); st.Sent != 1 {
			t.Fatalf("class %v sent = %d, want 1", pr, st.Sent)
		}
	}
}
