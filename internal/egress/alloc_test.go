package egress

import (
	"testing"

	"uavmw/internal/bufpool"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// notifySender transmits into the void and signals completion. It must not
// allocate: the enqueue→drain alloc gate below measures process-wide
// allocations, drainer goroutine included.
type notifySender struct {
	done chan struct{}
}

func (s *notifySender) Send(transport.NodeID, []byte) error {
	s.done <- struct{}{}
	return nil
}

func (s *notifySender) SendGroup(string, []byte) error {
	s.done <- struct{}{}
	return nil
}

// TestEnqueueDrainAllocs pins the steady-state allocation cost of the
// owned-buffer unicast path: pooled encode, enqueue, lane drain, transmit,
// buffer release. The whole cycle must stay allocation-free — this is the
// per-frame path every best-effort send rides.
func TestEnqueueDrainAllocs(t *testing.T) {
	s := &notifySender{done: make(chan struct{}, 1)}
	p := New(s, Config{CoalesceMax: -1})
	defer p.Close()

	frame, err := protocol.EncodeFrame(&protocol.Frame{
		Type: protocol.MTSample, Priority: qos.PriorityNormal,
		Channel: "t", Seq: 1, Payload: make([]byte, 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func() {
		raw := append(bufpool.Get(len(frame)), frame...)
		if err := p.EnqueueOwned("peer", qos.PriorityNormal, raw); err != nil {
			t.Fatal(err)
		}
		<-s.done
	}
	// Warm the pools and the drainer's scratch state.
	for i := 0; i < 8; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Errorf("enqueue→drain: %v allocs/op, want 0", allocs)
	}
}
