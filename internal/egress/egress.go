// Package egress implements the container's priority-aware transmit path.
//
// The paper attaches a priority to every primitive (§4) and enforces it in
// the container's fixed-priority pool (§6) — but scheduler enforcement is
// receiver-side only. On a bandwidth-constrained link the inversion happens
// at the *sender*: a bulk file transfer that hands the transport 60KB of
// chunks has already serialized them ahead of any PriorityCritical alarm
// published a moment later. This package closes that gap with transmit-side
// QoS:
//
//   - per-destination (node or multicast group) lanes, one strict-priority
//     FIFO queue per qos.Priority class, drained highest class first with
//     round-robin fairness among destinations inside a class;
//   - a token-bucket pacer that shapes the PriorityBulk class to a
//     configured rate, so bulk traffic never fills a link queue that
//     urgent frames would then have to wait behind;
//   - drop-oldest overflow per (destination, class) queue — a stalled
//     destination sheds its stalest frames first and never blocks senders;
//   - frame coalescing: small frames waiting for the same destination in
//     the same class are packed into one protocol.MTBatch datagram, fewer
//     syscalls and wire packets on small-frame-heavy paths.
//
// The plane is multi-bearer: a node with several heterogeneous datalinks
// (WiFi, radio modem, satcom) registers each as a named bearer, and lanes
// are keyed (bearer, destination, class). Every bearer owns its queues, its
// drain goroutine and its own bulk token bucket, so a 1 Mb/s WiFi pipe and
// a 250 kb/s radio modem are paced independently. A pluggable Selector
// (installed by the container, combining qos.LinkPolicy with per-bearer
// link-monitor health) routes each frame to a bearer at enqueue time;
// Reroute moves a blacked-out bearer's queued frames through the selector
// again so failover does not strand traffic. A plane built with New has a
// single default bearer and behaves exactly like the pre-bearer plane.
//
// The plane sits between the container's Send* methods and the datagram
// transports; the stream transport (TCP) paces itself and bypasses it.
package egress

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// Wire-path error codes: transmit failures and drop-oldest evictions
// land in the "egress.errors" registry family by category, alongside the
// per-bearer operational counters.
var (
	codeTransmit     = uerr.Register("egress.transmit", uerr.CatSend)
	codeLaneOverflow = uerr.Register("egress.lane_overflow", uerr.CatResource)
	codeRerouteDrop  = uerr.Register("egress.reroute_drop", uerr.CatResource)
)

// Sender is the downstream transmit interface (one raw datagram transport).
// Implementations must not retain payload once the call returns — the plane
// recycles pooled datagrams immediately after a send — so a sender that
// delivers asynchronously (in-process bus, network simulator) copies first.
// A Sender that also implements transport.BatchSender gets runs of queued
// datagrams handed over in one call (syscall batching); bearers detect that
// at registration time.
type Sender interface {
	Send(to transport.NodeID, payload []byte) error
	SendGroup(group string, payload []byte) error
}

// Selector routes frames to bearers. The container implements it by
// combining the static class→bearer policy (qos.LinkPolicy) with dynamic
// link-monitor health and per-peer reachability. Implementations must be
// fast and must not call back into the Plane. Returned names that don't
// match a registered bearer fall back to the default bearer.
type Selector interface {
	// Unicast names the bearer to carry one frame to the given node at the
	// given class.
	Unicast(to transport.NodeID, pr qos.Priority) string
	// Group names the bearers to carry one group frame; the frame is
	// enqueued once per distinct name (discovery rides every live bearer,
	// data groups usually exactly one).
	Group(group string, pr qos.Priority) []string
}

// DefaultBearer names the bearer created by New for single-link nodes.
const DefaultBearer = "datagram"

// Defaults applied when Config fields are zero.
const (
	// DefaultQueueCap bounds each (destination, class) queue in frames.
	DefaultQueueCap = 256
	// DefaultCoalesceMax is the largest frame eligible for coalescing;
	// bigger frames (file chunks, fragments) always ride alone.
	DefaultCoalesceMax = 512
	// DefaultBulkBurst is the bulk token bucket capacity in bytes.
	DefaultBulkBurst = 4096
)

// numClasses mirrors qos.NumLevels(); sized as a constant for arrays. A
// test pins the two against each other.
const numClasses = 5

// bulkClass is the dense index of qos.PriorityBulk.
var bulkClass = qos.PriorityBulk.Index()

// Errors.
var (
	// ErrClosed reports an enqueue on a closed plane.
	ErrClosed = errors.New("egress plane closed")
	// ErrNoBearer reports an operation on a plane with no bearers, or an
	// AddBearer conflict.
	ErrNoBearer = errors.New("no such egress bearer")
)

// Config tunes one bearer's lanes and pacing.
type Config struct {
	// BulkRateBPS token-bucket-shapes the bearer's PriorityBulk lane to
	// this many wire bytes/second. Zero disables shaping (bulk drains at
	// transport speed, still strictly below every other class).
	BulkRateBPS int64
	// BulkBurst is the bucket capacity in bytes (default DefaultBulkBurst).
	// It bounds how far ahead of the shaped rate a bulk burst may run, and
	// therefore how much bulk can sit in front of an urgent frame at the
	// link: keep it near one datagram on tightly constrained links.
	BulkBurst int
	// QueueCap bounds each (destination, class) queue in frames (default
	// DefaultQueueCap). On overflow the oldest frame in that queue drops.
	QueueCap int
	// MaxDatagram is the size budget for coalesced batch datagrams
	// (default protocol.DefaultMTU).
	MaxDatagram int
	// CoalesceMax is the largest frame eligible for coalescing (default
	// DefaultCoalesceMax); negative disables coalescing entirely.
	CoalesceMax int
	// Clock is the time source pacing the bearer (token refill, bulk
	// waits); nil means the wall clock.
	Clock clock.Clock
	// Metrics is the registry receiving the bearer's counter families
	// ("egress" component, series labeled by bearer and class) and its
	// typed-error counts. Nil gets a private registry, so bare test
	// planes keep working unchanged.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.BulkBurst <= 0 {
		c.BulkBurst = DefaultBulkBurst
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.MaxDatagram <= 0 {
		c.MaxDatagram = protocol.DefaultMTU
	}
	if c.CoalesceMax == 0 {
		c.CoalesceMax = DefaultCoalesceMax
	}
	return c
}

// destKey identifies a lane within a bearer: exactly one of node or group
// is set.
type destKey struct {
	node  transport.NodeID
	group string
}

// item is one queued encoded datagram. owned marks frames whose storage
// the plane took responsibility for (pooled buffers from the zero-alloc
// send paths): the bearer returns them to bufpool after the bytes are on
// the wire (or evicted). Borrowed frames — anything a caller may still
// alias, like ARQ retransmission state — are left to the GC.
type item struct {
	raw   []byte
	owned bool
}

// release returns an owned item's storage to the pool.
func (it item) release() {
	if it.owned {
		bufpool.Put(it.raw)
	}
}

// lane holds one destination's per-class queues on one bearer.
// lane queues are head-indexed rings over a reusable backing array: popping
// advances head instead of re-slicing the base away, so the array's capacity
// survives a full drain and the steady-state enqueue→drain cycle never
// reallocates it.
type lane struct {
	key    destKey
	q      [numClasses][]item
	head   [numClasses]int
	queued [numClasses]bool // lane is on the ready list for the class
}

// size reports the frames queued at class c.
func (ln *lane) size(c int) int { return len(ln.q[c]) - ln.head[c] }

// peek returns the head item of class c without removing it.
func (ln *lane) peek(c int) *item { return &ln.q[c][ln.head[c]] }

// pop removes and returns the head item of class c, rewinding the ring to
// the start of its backing array when it empties.
func (ln *lane) pop(c int) item {
	it := ln.q[c][ln.head[c]]
	ln.q[c][ln.head[c]] = item{} // drop the buffer reference
	ln.head[c]++
	if ln.head[c] == len(ln.q[c]) {
		ln.q[c] = ln.q[c][:0]
		ln.head[c] = 0
	}
	return it
}

// push appends an item at class c, compacting dead head space before
// growing the backing array.
func (ln *lane) push(c int, it item) {
	if ln.head[c] > 0 && len(ln.q[c]) == cap(ln.q[c]) {
		n := copy(ln.q[c], ln.q[c][ln.head[c]:])
		for i := n; i < len(ln.q[c]); i++ {
			ln.q[c][i] = item{}
		}
		ln.q[c] = ln.q[c][:n]
		ln.head[c] = 0
	}
	ln.q[c] = append(ln.q[c], it)
}

// popLane removes the front entry in place, preserving the backing array's
// capacity (a plain q[1:] re-slice would slide the base away and force the
// next append to reallocate).
func popLane(q []*lane) []*lane {
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

func (ln *lane) empty() bool {
	for c := range ln.q {
		if ln.size(c) > 0 {
			return false
		}
	}
	return true
}

// ClassStats counts egress activity for one priority class.
type ClassStats struct {
	// Enqueued counts frames accepted into lanes of this class.
	Enqueued uint64
	// Sent counts frames handed to the transport (batched frames count
	// individually).
	Sent uint64
	// Datagrams counts transport sends (a batch counts once).
	Datagrams uint64
	// Coalesced counts frames that shared a batch datagram with others.
	Coalesced uint64
	// Dropped counts frames evicted by drop-oldest overflow.
	Dropped uint64
	// Bytes counts wire bytes handed to the transport.
	Bytes uint64
}

// Stats is a snapshot of plane (or single-bearer) activity. It is a view
// over the node registry's "egress" families: bearers increment
// pre-resolved counter handles, and snapshotting reads the same series
// MetricsSnapshot exports.
type Stats struct {
	// PerClass is indexed by qos.Priority.Index().
	PerClass [numClasses]ClassStats
	// SendErrors counts transport send failures (frames already dequeued).
	SendErrors uint64
	// BulkWaits counts drains that had to pause for bulk tokens.
	BulkWaits uint64
	// Rerouted counts frames moved off this bearer by Reroute (zero in the
	// aggregate of a healthy plane's lifetime only if no failover ran).
	Rerouted uint64
}

// Class returns the stats for one priority level.
func (s Stats) Class(p qos.Priority) ClassStats {
	if i := p.Index(); i >= 0 {
		return s.PerClass[i]
	}
	return ClassStats{}
}

// Totals sums the per-class counters.
func (s Stats) Totals() ClassStats {
	var t ClassStats
	for _, c := range s.PerClass {
		t.Enqueued += c.Enqueued
		t.Sent += c.Sent
		t.Datagrams += c.Datagrams
		t.Coalesced += c.Coalesced
		t.Dropped += c.Dropped
		t.Bytes += c.Bytes
	}
	return t
}

func (s *Stats) add(other Stats) {
	for i := range s.PerClass {
		c, o := &s.PerClass[i], other.PerClass[i]
		c.Enqueued += o.Enqueued
		c.Sent += o.Sent
		c.Datagrams += o.Datagrams
		c.Coalesced += o.Coalesced
		c.Dropped += o.Dropped
		c.Bytes += o.Bytes
	}
	s.SendErrors += other.SendErrors
	s.BulkWaits += other.BulkWaits
	s.Rerouted += other.Rerouted
}

// Plane is one container's egress plane: one or more bearers plus the
// selector that routes frames among them. Construct with New (single
// default bearer) or NewPlane + AddBearer; Close flushes what it can and
// stops every drainer.
type Plane struct {
	mu       sync.RWMutex
	bearers  map[string]*bearer
	order    []string // registration order; order[0] is the default bearer
	selector Selector
	closed   bool
}

// NewPlane builds an empty plane; register links with AddBearer before
// enqueueing.
func NewPlane() *Plane {
	return &Plane{bearers: make(map[string]*bearer)}
}

// New builds a plane with a single bearer named DefaultBearer draining
// into sender — the one-datalink configuration.
func New(sender Sender, cfg Config) *Plane {
	p := NewPlane()
	_ = p.AddBearer(DefaultBearer, sender, cfg)
	return p
}

// AddBearer registers a named bearer draining into sender with its own
// lanes and pacing. The first bearer registered is the default (used when
// no selector is installed or a selector names an unknown bearer).
func (p *Plane) AddBearer(name string, sender Sender, cfg Config) error {
	if name == "" {
		return fmt.Errorf("egress: empty bearer name: %w", ErrNoBearer)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if _, dup := p.bearers[name]; dup {
		return fmt.Errorf("egress: bearer %q already registered: %w", name, ErrNoBearer)
	}
	p.bearers[name] = newBearer(name, sender, cfg)
	p.order = append(p.order, name)
	return nil
}

// SetSelector installs the bearer-routing policy. A nil selector routes
// everything to the default bearer.
func (p *Plane) SetSelector(s Selector) {
	p.mu.Lock()
	p.selector = s
	p.mu.Unlock()
}

// Bearers lists registered bearer names in registration order.
func (p *Plane) Bearers() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.order...)
}

// getSelector snapshots the selector.
func (p *Plane) getSelector() Selector {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.selector
}

// bearerOrDefault resolves name, falling back to the default bearer. Nil
// when the plane is closed or has no bearers.
func (p *Plane) bearerOrDefault(name string) *bearer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed || len(p.order) == 0 {
		return nil
	}
	if b, ok := p.bearers[name]; ok {
		return b
	}
	return p.bearers[p.order[0]]
}

// Enqueue queues one encoded datagram for a unicast destination on the
// bearer the selector chooses. The caller keeps ownership of raw's storage
// (the plane treats it as GC-owned); senders encoding into pooled buffers
// use EnqueueOwned instead.
func (p *Plane) Enqueue(to transport.NodeID, pr qos.Priority, raw []byte) error {
	return p.enqueueUnicast(to, pr, item{raw: raw})
}

// EnqueueOwned is Enqueue with a transfer of buffer ownership: raw must be
// a bufpool buffer nothing else aliases, and the plane releases it back to
// the pool once the bytes are on the wire, evicted, or the enqueue fails.
// The caller must not touch raw after the call, success or not.
func (p *Plane) EnqueueOwned(to transport.NodeID, pr qos.Priority, raw []byte) error {
	return p.enqueueUnicast(to, pr, item{raw: raw, owned: true})
}

func (p *Plane) enqueueUnicast(to transport.NodeID, pr qos.Priority, it item) error {
	var name string
	if s := p.getSelector(); s != nil {
		name = s.Unicast(to, pr)
	}
	b := p.bearerOrDefault(name)
	if b == nil {
		it.release()
		return ErrClosed
	}
	return b.enqueue(destKey{node: to}, pr, it)
}

// EnqueueOn queues one encoded unicast datagram pinned to the named
// bearer, bypassing the selector — used for replies that must ride the
// link they arrived on (ARQ acks, probe echoes), so acknowledgment traffic
// measures the same bearer as the data it acknowledges. An unknown name
// falls back to the default bearer.
func (p *Plane) EnqueueOn(bearerName string, to transport.NodeID, pr qos.Priority, raw []byte) error {
	return p.enqueueOn(bearerName, to, pr, item{raw: raw})
}

// EnqueueOnOwned is EnqueueOn with ownership transfer (see EnqueueOwned).
func (p *Plane) EnqueueOnOwned(bearerName string, to transport.NodeID, pr qos.Priority, raw []byte) error {
	return p.enqueueOn(bearerName, to, pr, item{raw: raw, owned: true})
}

func (p *Plane) enqueueOn(bearerName string, to transport.NodeID, pr qos.Priority, it item) error {
	b := p.bearerOrDefault(bearerName)
	if b == nil {
		it.release()
		return ErrClosed
	}
	return b.enqueue(destKey{node: to}, pr, it)
}

// EnqueueGroup queues one encoded datagram for a multicast group on every
// bearer the selector names (once per distinct name). The caller keeps
// ownership of raw's storage.
func (p *Plane) EnqueueGroup(group string, pr qos.Priority, raw []byte) error {
	return p.enqueueGroup(group, pr, item{raw: raw})
}

// EnqueueGroupOwned is EnqueueGroup with ownership transfer (see
// EnqueueOwned). When the selector fans the frame out to several bearers
// the same bytes sit in several queues at once, so ownership degrades to
// GC (the buffer is not recycled); the single-bearer case — all data
// groups — releases to the pool as usual.
func (p *Plane) EnqueueGroupOwned(group string, pr qos.Priority, raw []byte) error {
	return p.enqueueGroup(group, pr, item{raw: raw, owned: true})
}

func (p *Plane) enqueueGroup(group string, pr qos.Priority, it item) error {
	var names []string
	if s := p.getSelector(); s != nil {
		names = s.Group(group, pr)
	}
	if len(names) == 0 {
		b := p.bearerOrDefault("")
		if b == nil {
			it.release()
			return ErrClosed
		}
		return b.enqueue(destKey{group: group}, pr, it)
	}
	var firstErr error
	accepted := false
	seen := make(map[string]bool, len(names))
	targets := make([]*bearer, 0, len(names))
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		b := p.bearerOrDefault(name)
		if b == nil {
			if firstErr == nil {
				firstErr = ErrClosed
			}
			continue
		}
		targets = append(targets, b)
	}
	if len(targets) > 1 {
		// Fan-out: several queues alias the bytes; no single release point.
		it.owned = false
	}
	if len(targets) == 0 {
		it.release()
	}
	for _, b := range targets {
		if err := b.enqueue(destKey{group: group}, pr, it); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted = true
	}
	if accepted {
		return nil
	}
	return firstErr
}

// Stats snapshots the plane counters aggregated across bearers.
func (p *Plane) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var s Stats
	for _, name := range p.order {
		s.add(p.bearers[name].snapshot())
	}
	return s
}

// BearerStats snapshots one bearer's counters.
func (p *Plane) BearerStats(name string) (Stats, bool) {
	p.mu.RLock()
	b := p.bearers[name]
	p.mu.RUnlock()
	if b == nil {
		return Stats{}, false
	}
	return b.snapshot(), true
}

// SetBulkRate changes the default bearer's bulk shaping rate at runtime
// (0 disables) — the single-datalink API.
func (p *Plane) SetBulkRate(bps int64) {
	if b := p.bearerOrDefault(""); b != nil {
		b.setBulkRate(bps)
	}
}

// SetBearerBulkRate changes one bearer's bulk shaping rate at runtime.
// It reports whether the bearer exists.
func (p *Plane) SetBearerBulkRate(name string, bps int64) bool {
	p.mu.RLock()
	b := p.bearers[name]
	p.mu.RUnlock()
	if b == nil {
		return false
	}
	b.setBulkRate(bps)
	return true
}

// Reroute drains everything queued on the named bearer and re-enqueues it
// through the selector — called when a bearer's link monitor declares it
// down, so already-queued frames follow their class's failover order
// instead of draining into a dead link. Unicast frames the selector routes
// back to the same bearer stay on it; group frames never return to the
// drained bearer — they ride the first *other* bearer the selector names
// (fan-out groups like discovery already put their own copies on every
// live bearer at enqueue time, and receivers dedup, so one surviving copy
// suffices). Returns the number of frames moved or requeued.
func (p *Plane) Reroute(name string) int {
	p.mu.RLock()
	b := p.bearers[name]
	p.mu.RUnlock()
	if b == nil {
		return 0
	}
	sel := p.getSelector()
	items := b.drainQueued()
	for _, qf := range items {
		pr := qos.PriorityBulk + qos.Priority(qf.class)
		if qf.key.group == "" {
			uerr.Note(b.reg, codeRerouteDrop, p.enqueueUnicast(qf.key.node, pr, qf.item),
				"reroute off "+name)
			continue
		}
		target := ""
		if sel != nil {
			for _, cand := range sel.Group(qf.key.group, pr) {
				if cand != name {
					target = cand
					break
				}
			}
		}
		if target == "" {
			// No other bearer to carry it: leave it on the drained one
			// rather than dropping silently.
			target = name
		}
		uerr.Note(b.reg, codeRerouteDrop, p.enqueueOnGroup(target, qf.key.group, pr, qf.item),
			"reroute off "+name)
	}
	return len(items)
}

// EnqueueOnGroup queues one encoded group datagram pinned to the named
// bearer, bypassing the selector. An unknown name falls back to the
// default bearer.
func (p *Plane) EnqueueOnGroup(bearerName, group string, pr qos.Priority, raw []byte) error {
	return p.enqueueOnGroup(bearerName, group, pr, item{raw: raw})
}

func (p *Plane) enqueueOnGroup(bearerName, group string, pr qos.Priority, it item) error {
	b := p.bearerOrDefault(bearerName)
	if b == nil {
		it.release()
		return ErrClosed
	}
	return b.enqueue(destKey{group: group}, pr, it)
}

// Flush blocks until every frame queued at call time on every bearer has
// been handed to its transport (shaped bulk included, at its paced rate).
// Frames enqueued while flushing extend the wait. Experiments use it to
// line wire-level measurements up with the asynchronous drain; a closed
// plane is already flushed.
func (p *Plane) Flush() {
	p.mu.RLock()
	bearers := make([]*bearer, 0, len(p.order))
	for _, name := range p.order {
		bearers = append(bearers, p.bearers[name])
	}
	p.mu.RUnlock()
	for _, b := range bearers {
		b.flush()
	}
}

// Close stops every bearer's drainer and synchronously flushes everything
// still queued, in priority order, ignoring pacing — a closing container's
// goodbye and any pending acknowledgments still reach the wire. Enqueues
// after Close fail with ErrClosed.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	bearers := make([]*bearer, 0, len(p.order))
	for _, name := range p.order {
		bearers = append(bearers, p.bearers[name])
	}
	p.mu.Unlock()
	for _, b := range bearers {
		b.close()
	}
}

// bearer is one datalink's lanes, pacer and drain goroutine.
type bearer struct {
	name   string
	cfg    Config
	sender Sender
	// batch is non-nil when sender supports syscall-batched transmission;
	// the drainer then hands it runs of queued datagrams in one call.
	batch transport.BatchSender

	clk clock.Clock

	// Drainer-private scratch, reused across drains so the steady-state
	// transmit path allocates nothing. collect* are filled under b.mu by
	// collectLocked; batchMsgs/batchOwned only ever touched by the drain
	// goroutine.
	collectRaw   [][]byte
	collectOwned []bool
	batchMsgs    []transport.BatchMessage
	batchOwned   []bool

	mu           sync.Mutex
	idle         *clock.Cond // signalled when a transmit completes
	lanes        map[destKey]*lane
	laneFree     []*lane // recycled drained lanes (bounded)
	ready        [numClasses][]*lane
	tokens       float64 // bulk bucket fill, bytes; may go briefly negative
	lastRefill   time.Time
	rate         int64 // current bulk shaping rate (0 = off)
	transmitting bool  // drainer holds a dequeued datagram
	reg          *metrics.Registry
	ctr          bearerCounters
	closed       bool

	trigger clock.Trigger
	stop    chan struct{}
	wg      sync.WaitGroup
}

// classCounters holds one (bearer, class) series set, pre-resolved so the
// drain path pays one atomic add per counter, no registry lookups.
type classCounters struct {
	enqueued, sent, datagrams, coalesced, dropped, bytes *metrics.Counter
}

// bearerCounters holds one bearer's registry handles.
type bearerCounters struct {
	perClass     [numClasses]classCounters
	bulkWaits    *metrics.Counter
	rerouted     *metrics.Counter
	sendFailures *metrics.Counter
	// overflow is the pre-resolved "egress.errors" series for drop-oldest
	// evictions: the eviction is a per-frame hot-path event with no error
	// value to hand anyone, so it counts through the handle rather than a
	// uerr construction.
	overflow *metrics.Counter
}

func newBearerCounters(reg *metrics.Registry, bearerName string) bearerCounters {
	lb := metrics.L("bearer", bearerName)
	var ctr bearerCounters
	for _, pr := range qos.Levels() {
		cl := metrics.L("class", pr.String())
		c := func(name string) *metrics.Counter { return reg.Counter("egress", name, lb, cl) }
		ctr.perClass[pr.Index()] = classCounters{
			enqueued:  c("enqueued"),
			sent:      c("sent"),
			datagrams: c("datagrams"),
			coalesced: c("coalesced"),
			dropped:   c("dropped"),
			bytes:     c("bytes"),
		}
	}
	ctr.bulkWaits = reg.Counter("egress", "bulk_waits", lb)
	ctr.rerouted = reg.Counter("egress", "rerouted", lb)
	ctr.sendFailures = reg.Counter("egress", "send_failures", lb)
	ctr.overflow = uerr.Handle(reg, codeLaneOverflow)
	return ctr
}

func newBearer(name string, sender Sender, cfg Config) *bearer {
	cfg = cfg.withDefaults()
	clk := clock.Or(cfg.Clock)
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	b := &bearer{
		name:       name,
		cfg:        cfg,
		sender:     sender,
		clk:        clk,
		lanes:      make(map[destKey]*lane),
		rate:       cfg.BulkRateBPS,
		tokens:     float64(cfg.BulkBurst),
		lastRefill: clk.Now(),
		reg:        reg,
		ctr:        newBearerCounters(reg, name),
		trigger:    clock.NewTrigger(clk),
		stop:       make(chan struct{}),
	}
	b.batch, _ = sender.(transport.BatchSender)
	b.idle = clock.NewCond(clk, &b.mu)
	b.wg.Add(1)
	clock.Go(clk, b.run)
	return b
}

func (b *bearer) setBulkRate(bps int64) {
	b.mu.Lock()
	b.refillLocked(b.clk.Now())
	b.rate = bps
	b.mu.Unlock()
	b.signal()
}

// snapshot reads the bearer's registry series back into the Stats shape.
func (b *bearer) snapshot() Stats {
	var s Stats
	for i, cc := range b.ctr.perClass {
		s.PerClass[i] = ClassStats{
			Enqueued:  cc.enqueued.Value(),
			Sent:      cc.sent.Value(),
			Datagrams: cc.datagrams.Value(),
			Coalesced: cc.coalesced.Value(),
			Dropped:   cc.dropped.Value(),
			Bytes:     cc.bytes.Value(),
		}
	}
	s.SendErrors = b.ctr.sendFailures.Value()
	s.BulkWaits = b.ctr.bulkWaits.Value()
	s.Rerouted = b.ctr.rerouted.Value()
	return s
}

func (b *bearer) enqueue(key destKey, pr qos.Priority, it item) error {
	c := pr.Index()
	if c < 0 {
		c = qos.PriorityNormal.Index()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		it.release()
		return ErrClosed
	}
	ln := b.lanes[key]
	if ln == nil {
		if n := len(b.laneFree); n > 0 {
			ln = b.laneFree[n-1]
			b.laneFree[n-1] = nil
			b.laneFree = b.laneFree[:n-1]
			ln.key = key
		} else {
			ln = &lane{key: key}
		}
		b.lanes[key] = ln
	}
	if ln.size(c) >= b.cfg.QueueCap {
		// Drop-oldest: the stalest frame in this lane+class makes room.
		ln.pop(c).release()
		b.ctr.perClass[c].dropped.Inc()
		b.ctr.overflow.Inc()
	}
	ln.push(c, it)
	b.ctr.perClass[c].enqueued.Inc()
	if !ln.queued[c] {
		ln.queued[c] = true
		b.ready[c] = append(b.ready[c], ln)
	}
	b.mu.Unlock()
	b.signal()
	return nil
}

func (b *bearer) signal() { b.trigger.Signal() }

// refillLocked accrues bulk tokens. Caller holds b.mu.
func (b *bearer) refillLocked(now time.Time) {
	if elapsed := now.Sub(b.lastRefill); elapsed > 0 && b.rate > 0 {
		b.tokens += elapsed.Seconds() * float64(b.rate)
		if burst := float64(b.cfg.BulkBurst); b.tokens > burst {
			b.tokens = burst
		}
	}
	b.lastRefill = now
}

// next picks the next datagram to transmit: the head of the highest
// non-empty class, round-robin across that class's destinations, coalescing
// small same-lane same-class frames into a batch. If only throttled bulk is
// pending it returns wait > 0 instead. owned marks a datagram the drainer
// must return to bufpool after transmission (a pooled batch buffer or an
// ownership-transferred single frame).
func (b *bearer) next() (datagram []byte, key destKey, owned bool, wait time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for c := numClasses - 1; c >= 0; c-- {
		for len(b.ready[c]) > 0 {
			ln := b.ready[c][0]
			if ln.size(c) == 0 { // emptied by a flush; drop the entry
				b.ready[c] = popLane(b.ready[c])
				ln.queued[c] = false
				b.reapLocked(ln)
				continue
			}
			if c == bulkClass && b.rate > 0 {
				b.refillLocked(b.clk.Now())
				// A frame larger than the whole bucket must still pass
				// once the bucket is full; the deficit is repaid below.
				need := float64(len(ln.peek(c).raw))
				if burst := float64(b.cfg.BulkBurst); need > burst {
					need = burst
				}
				if b.tokens < need {
					b.ctr.bulkWaits.Inc()
					wait = time.Duration((need - b.tokens) / float64(b.rate) * float64(time.Second))
					if wait <= 0 {
						wait = time.Millisecond
					}
					return nil, destKey{}, false, wait, false
				}
			}
			n := b.collectLocked(ln, c)
			if n == 1 {
				datagram = b.collectRaw[0]
				owned = b.collectOwned[0]
			} else {
				// Coalesce into one pooled wire buffer: each inner frame
				// is copied exactly once, directly into its batch slot.
				size := protocol.BatchOverhead(n)
				for _, f := range b.collectRaw {
					size += len(f)
				}
				buf := bufpool.Get(size)
				dst, err := protocol.AppendBatch(buf, b.collectRaw, qos.PriorityBulk+qos.Priority(c))
				if err != nil {
					// Cannot happen with well-formed queues; fall back to
					// the head frame alone rather than wedging the lane.
					bufpool.Put(buf)
					datagram = b.collectRaw[0]
					owned = b.collectOwned[0]
					for i := 1; i < n; i++ {
						if b.collectOwned[i] {
							bufpool.Put(b.collectRaw[i])
						}
					}
					n = 1
				} else {
					// The inner frames' bytes now live in the batch buffer;
					// recycle the pooled ones immediately.
					for i, f := range b.collectRaw {
						if b.collectOwned[i] {
							bufpool.Put(f)
						}
					}
					datagram = dst
					owned = true
					b.ctr.perClass[c].coalesced.Add(uint64(n))
				}
			}
			if c == bulkClass && b.rate > 0 {
				b.tokens -= float64(len(datagram))
			}
			b.ctr.perClass[c].sent.Add(uint64(n))
			b.ctr.perClass[c].datagrams.Inc()
			b.ctr.perClass[c].bytes.Add(uint64(len(datagram)))
			key = ln.key // reapLocked may recycle ln below
			// Rotate for round-robin fairness within the class,
			// in place so the ready array's capacity survives.
			if ln.size(c) > 0 {
				q := b.ready[c]
				copy(q, q[1:])
				q[len(q)-1] = ln
			} else {
				b.ready[c] = popLane(b.ready[c])
				ln.queued[c] = false
				b.reapLocked(ln)
			}
			b.transmitting = true
			return datagram, key, owned, 0, true
		}
	}
	return nil, destKey{}, false, 0, false
}

// collectLocked pops the head frame of lane ln at class c plus any
// immediately following small frames that fit one batch datagram, filling
// the bearer's reusable collect scratch. Caller holds b.mu.
func (b *bearer) collectLocked(ln *lane, c int) int {
	head := ln.pop(c)
	b.collectRaw = append(b.collectRaw[:0], head.raw)
	b.collectOwned = append(b.collectOwned[:0], head.owned)
	if b.cfg.CoalesceMax < 0 || len(head.raw) > b.cfg.CoalesceMax {
		return 1
	}
	total := protocol.BatchOverhead(1) + len(head.raw)
	for ln.size(c) > 0 {
		nxt := ln.peek(c)
		if len(nxt.raw) > b.cfg.CoalesceMax ||
			total+protocol.BatchEntryOverhead+len(nxt.raw) > b.cfg.MaxDatagram {
			break
		}
		it := ln.pop(c)
		b.collectRaw = append(b.collectRaw, it.raw)
		b.collectOwned = append(b.collectOwned, it.owned)
		total += protocol.BatchEntryOverhead + len(it.raw)
	}
	return len(b.collectRaw)
}

// reapLocked deletes a fully drained lane so the map stays bounded by the
// set of destinations with traffic in flight. Caller holds b.mu.
func (b *bearer) reapLocked(ln *lane) {
	if !ln.empty() {
		return
	}
	for _, q := range ln.queued {
		if q {
			return
		}
	}
	delete(b.lanes, ln.key)
	// Recycle the lane (its queue arrays keep their capacity) so churning
	// one destination does not allocate a lane per frame.
	if len(b.laneFree) < 8 {
		ln.key = destKey{}
		b.laneFree = append(b.laneFree, ln)
	}
}

// transmit hands one datagram to the transport.
func (b *bearer) transmit(key destKey, datagram []byte) {
	var err error
	if key.group != "" {
		err = b.sender.SendGroup(key.group, datagram)
	} else {
		err = b.sender.Send(key.node, datagram)
	}
	if err != nil {
		b.ctr.sendFailures.Inc()
		uerr.Note(b.reg, codeTransmit, err, "transport send on "+b.name)
	}
}

// maxSyscallBatch bounds how many queued datagrams one BatchSender call
// carries — enough to amortize the syscall, small enough to keep the
// drainer responsive to newly enqueued critical frames.
const maxSyscallBatch = 32

// run is the drain goroutine. It parks on the clock between frames, so
// under a Virtual clock bulk pacing is discrete-event driven. Senders that
// implement transport.BatchSender get runs of datagrams handed over in one
// call; everything else drains strictly one datagram per send, which also
// keeps the deterministic simulators' event order stable.
func (b *bearer) run() {
	defer b.wg.Done()
	for {
		var wait time.Duration
		var ok bool
		if b.batch != nil {
			wait, ok = b.drainBatch()
		} else {
			var datagram []byte
			var key destKey
			var owned bool
			datagram, key, owned, wait, ok = b.next()
			if ok {
				b.transmit(key, datagram)
				if owned {
					bufpool.Put(datagram)
				}
				b.mu.Lock()
				b.transmitting = false
				b.idle.Broadcast()
				b.mu.Unlock()
			}
		}
		if ok {
			continue
		}
		if wait <= 0 {
			wait = -1 // nothing queued: park until signalled
		}
		// Throttled bulk pending: sleep for tokens, but wake early if
		// higher-class work arrives.
		if !b.trigger.Wait(wait, b.stop) {
			return
		}
	}
}

// drainBatch dequeues up to maxSyscallBatch ready datagrams and hands them
// to the sender's BatchSender in one call. Pacing and priority still come
// from next(): a throttled bulk lane ends the run and its wait is returned.
func (b *bearer) drainBatch() (wait time.Duration, ok bool) {
	msgs := b.batchMsgs[:0]
	owned := b.batchOwned[:0]
	for len(msgs) < maxSyscallBatch {
		datagram, key, own, w, k := b.next()
		if !k {
			wait = w
			break
		}
		msgs = append(msgs, transport.BatchMessage{To: key.node, Group: key.group, Payload: datagram})
		owned = append(owned, own)
	}
	if len(msgs) == 0 {
		b.batchMsgs, b.batchOwned = msgs, owned
		return wait, false
	}
	if err := b.batch.SendBatch(msgs); err != nil {
		b.ctr.sendFailures.Inc()
		uerr.Note(b.reg, codeTransmit, err, "batched transport send on "+b.name)
	}
	for i := range msgs {
		if owned[i] {
			bufpool.Put(msgs[i].Payload)
		}
		msgs[i] = transport.BatchMessage{} // drop pooled-buffer refs
	}
	b.batchMsgs, b.batchOwned = msgs[:0], owned[:0]
	b.mu.Lock()
	b.transmitting = false
	b.idle.Broadcast()
	b.mu.Unlock()
	return wait, true
}

func (b *bearer) flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.closed && (b.transmitting || b.pendingLocked()) {
		b.idle.Wait()
	}
}

// pendingLocked reports whether any lane still holds frames. Caller holds
// b.mu.
func (b *bearer) pendingLocked() bool {
	for c := range b.ready {
		for _, ln := range b.ready[c] {
			if ln.size(c) > 0 {
				return true
			}
		}
	}
	return false
}

// queuedFrame is one frame pulled off a bearer by drainQueued, ownership
// included.
type queuedFrame struct {
	key   destKey
	class int
	item  item
}

// drainQueued atomically removes everything queued on the bearer and
// returns it in strict class-descending order for re-enqueueing elsewhere.
func (b *bearer) drainQueued() []queuedFrame {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	var out []queuedFrame
	for c := numClasses - 1; c >= 0; c-- {
		for _, ln := range b.ready[c] {
			for _, it := range ln.q[c][ln.head[c]:] {
				out = append(out, queuedFrame{key: ln.key, class: c, item: it})
			}
			ln.q[c] = nil
			ln.head[c] = 0
			ln.queued[c] = false
		}
		b.ready[c] = nil
	}
	for key, ln := range b.lanes {
		if ln.empty() {
			delete(b.lanes, key)
		}
	}
	b.ctr.rerouted.Add(uint64(len(out)))
	b.idle.Broadcast()
	return out
}

func (b *bearer) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.idle.Broadcast()
	b.mu.Unlock()
	close(b.stop)
	clock.Blocking(b.clk, b.wg.Wait)

	b.mu.Lock()
	defer b.mu.Unlock()
	for c := numClasses - 1; c >= 0; c-- {
		for _, ln := range b.ready[c] {
			for _, it := range ln.q[c][ln.head[c]:] {
				var err error
				if ln.key.group != "" {
					err = b.sender.SendGroup(ln.key.group, it.raw)
				} else {
					err = b.sender.Send(ln.key.node, it.raw)
				}
				if err != nil {
					b.ctr.sendFailures.Inc()
					uerr.Note(b.reg, codeTransmit, err, "final flush on "+b.name)
				}
				b.ctr.perClass[c].sent.Inc()
				b.ctr.perClass[c].datagrams.Inc()
				b.ctr.perClass[c].bytes.Add(uint64(len(it.raw)))
				it.release()
			}
			ln.q[c] = nil
			ln.head[c] = 0
			ln.queued[c] = false
		}
		b.ready[c] = nil
	}
	b.lanes = make(map[destKey]*lane)
}
