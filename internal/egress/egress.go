// Package egress implements the container's priority-aware transmit path.
//
// The paper attaches a priority to every primitive (§4) and enforces it in
// the container's fixed-priority pool (§6) — but scheduler enforcement is
// receiver-side only. On a bandwidth-constrained link the inversion happens
// at the *sender*: a bulk file transfer that hands the transport 60KB of
// chunks has already serialized them ahead of any PriorityCritical alarm
// published a moment later. This package closes that gap with transmit-side
// QoS:
//
//   - per-destination (node or multicast group) lanes, one strict-priority
//     FIFO queue per qos.Priority class, drained highest class first with
//     round-robin fairness among destinations inside a class;
//   - a token-bucket pacer that shapes the PriorityBulk class to a
//     configured rate, so bulk traffic never fills a link queue that
//     urgent frames would then have to wait behind;
//   - drop-oldest overflow per (destination, class) queue — a stalled
//     destination sheds its stalest frames first and never blocks senders;
//   - frame coalescing: small frames waiting for the same destination in
//     the same class are packed into one protocol.MTBatch datagram, fewer
//     syscalls and wire packets on small-frame-heavy paths.
//
// The plane sits between the container's Send* methods and the datagram
// transport; the stream transport (TCP) paces itself and bypasses it.
package egress

import (
	"errors"
	"sync"
	"time"

	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Sender is the downstream transmit interface (the raw datagram transport).
type Sender interface {
	Send(to transport.NodeID, payload []byte) error
	SendGroup(group string, payload []byte) error
}

// Defaults applied when Config fields are zero.
const (
	// DefaultQueueCap bounds each (destination, class) queue in frames.
	DefaultQueueCap = 256
	// DefaultCoalesceMax is the largest frame eligible for coalescing;
	// bigger frames (file chunks, fragments) always ride alone.
	DefaultCoalesceMax = 512
	// DefaultBulkBurst is the bulk token bucket capacity in bytes.
	DefaultBulkBurst = 4096
)

// numClasses mirrors qos.NumLevels(); sized as a constant for arrays. A
// test pins the two against each other.
const numClasses = 5

// bulkClass is the dense index of qos.PriorityBulk.
var bulkClass = qos.PriorityBulk.Index()

// ErrClosed reports an enqueue on a closed plane.
var ErrClosed = errors.New("egress plane closed")

// Config tunes a Plane.
type Config struct {
	// BulkRateBPS token-bucket-shapes the PriorityBulk lane to this many
	// wire bytes/second. Zero disables shaping (bulk drains at transport
	// speed, still strictly below every other class).
	BulkRateBPS int64
	// BulkBurst is the bucket capacity in bytes (default DefaultBulkBurst).
	// It bounds how far ahead of the shaped rate a bulk burst may run, and
	// therefore how much bulk can sit in front of an urgent frame at the
	// link: keep it near one datagram on tightly constrained links.
	BulkBurst int
	// QueueCap bounds each (destination, class) queue in frames (default
	// DefaultQueueCap). On overflow the oldest frame in that queue drops.
	QueueCap int
	// MaxDatagram is the size budget for coalesced batch datagrams
	// (default protocol.DefaultMTU).
	MaxDatagram int
	// CoalesceMax is the largest frame eligible for coalescing (default
	// DefaultCoalesceMax); negative disables coalescing entirely.
	CoalesceMax int
}

func (c Config) withDefaults() Config {
	if c.BulkBurst <= 0 {
		c.BulkBurst = DefaultBulkBurst
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.MaxDatagram <= 0 {
		c.MaxDatagram = protocol.DefaultMTU
	}
	if c.CoalesceMax == 0 {
		c.CoalesceMax = DefaultCoalesceMax
	}
	return c
}

// destKey identifies a lane: exactly one of node or group is set.
type destKey struct {
	node  transport.NodeID
	group string
}

// lane holds one destination's per-class queues.
type lane struct {
	key    destKey
	q      [numClasses][][]byte
	queued [numClasses]bool // lane is on the ready list for the class
}

func (ln *lane) empty() bool {
	for c := range ln.q {
		if len(ln.q[c]) > 0 {
			return false
		}
	}
	return true
}

// ClassStats counts egress activity for one priority class.
type ClassStats struct {
	// Enqueued counts frames accepted into lanes of this class.
	Enqueued uint64
	// Sent counts frames handed to the transport (batched frames count
	// individually).
	Sent uint64
	// Datagrams counts transport sends (a batch counts once).
	Datagrams uint64
	// Coalesced counts frames that shared a batch datagram with others.
	Coalesced uint64
	// Dropped counts frames evicted by drop-oldest overflow.
	Dropped uint64
	// Bytes counts wire bytes handed to the transport.
	Bytes uint64
}

// Stats is a snapshot of plane activity.
type Stats struct {
	// PerClass is indexed by qos.Priority.Index().
	PerClass [numClasses]ClassStats
	// SendErrors counts transport send failures (frames already dequeued).
	SendErrors uint64
	// BulkWaits counts drains that had to pause for bulk tokens.
	BulkWaits uint64
}

// Class returns the stats for one priority level.
func (s Stats) Class(p qos.Priority) ClassStats {
	if i := p.Index(); i >= 0 {
		return s.PerClass[i]
	}
	return ClassStats{}
}

// Totals sums the per-class counters.
func (s Stats) Totals() ClassStats {
	var t ClassStats
	for _, c := range s.PerClass {
		t.Enqueued += c.Enqueued
		t.Sent += c.Sent
		t.Datagrams += c.Datagrams
		t.Coalesced += c.Coalesced
		t.Dropped += c.Dropped
		t.Bytes += c.Bytes
	}
	return t
}

// Plane is one container's egress plane. Construct with New; Close flushes
// what it can and stops the drainer.
type Plane struct {
	cfg    Config
	sender Sender

	mu           sync.Mutex
	idle         *sync.Cond // signalled when a transmit completes
	lanes        map[destKey]*lane
	ready        [numClasses][]*lane
	tokens       float64 // bulk bucket fill, bytes; may go briefly negative
	lastRefill   time.Time
	rate         int64 // current bulk shaping rate (0 = off)
	transmitting bool  // drainer holds a dequeued datagram
	stats        Stats
	closed       bool

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds and starts a plane draining into sender.
func New(sender Sender, cfg Config) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:        cfg,
		sender:     sender,
		lanes:      make(map[destKey]*lane),
		rate:       cfg.BulkRateBPS,
		tokens:     float64(cfg.BulkBurst),
		lastRefill: time.Now(),
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
	}
	p.idle = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.run()
	return p
}

// SetBulkRate changes the bulk shaping rate at runtime (0 disables). Useful
// when link capacity is discovered or negotiated after construction.
func (p *Plane) SetBulkRate(bps int64) {
	p.mu.Lock()
	p.refillLocked(time.Now())
	p.rate = bps
	p.mu.Unlock()
	p.signal()
}

// Stats snapshots the plane counters.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Enqueue queues one encoded datagram for a unicast destination.
func (p *Plane) Enqueue(to transport.NodeID, pr qos.Priority, raw []byte) error {
	return p.enqueue(destKey{node: to}, pr, raw)
}

// EnqueueGroup queues one encoded datagram for a multicast group.
func (p *Plane) EnqueueGroup(group string, pr qos.Priority, raw []byte) error {
	return p.enqueue(destKey{group: group}, pr, raw)
}

func (p *Plane) enqueue(key destKey, pr qos.Priority, raw []byte) error {
	c := pr.Index()
	if c < 0 {
		c = qos.PriorityNormal.Index()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	ln := p.lanes[key]
	if ln == nil {
		ln = &lane{key: key}
		p.lanes[key] = ln
	}
	if len(ln.q[c]) >= p.cfg.QueueCap {
		// Drop-oldest: the stalest frame in this lane+class makes room.
		ln.q[c] = ln.q[c][1:]
		p.stats.PerClass[c].Dropped++
	}
	ln.q[c] = append(ln.q[c], raw)
	p.stats.PerClass[c].Enqueued++
	if !ln.queued[c] {
		ln.queued[c] = true
		p.ready[c] = append(p.ready[c], ln)
	}
	p.mu.Unlock()
	p.signal()
	return nil
}

func (p *Plane) signal() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// refillLocked accrues bulk tokens. Caller holds p.mu.
func (p *Plane) refillLocked(now time.Time) {
	if elapsed := now.Sub(p.lastRefill); elapsed > 0 && p.rate > 0 {
		p.tokens += elapsed.Seconds() * float64(p.rate)
		if burst := float64(p.cfg.BulkBurst); p.tokens > burst {
			p.tokens = burst
		}
	}
	p.lastRefill = now
}

// next picks the next datagram to transmit: the head of the highest
// non-empty class, round-robin across that class's destinations, coalescing
// small same-lane same-class frames into a batch. If only throttled bulk is
// pending it returns wait > 0 instead.
func (p *Plane) next() (datagram []byte, key destKey, wait time.Duration, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := numClasses - 1; c >= 0; c-- {
		for len(p.ready[c]) > 0 {
			ln := p.ready[c][0]
			if len(ln.q[c]) == 0 { // emptied by a flush; drop the entry
				p.ready[c] = p.ready[c][1:]
				ln.queued[c] = false
				p.reapLocked(ln)
				continue
			}
			if c == bulkClass && p.rate > 0 {
				p.refillLocked(time.Now())
				// A frame larger than the whole bucket must still pass
				// once the bucket is full; the deficit is repaid below.
				need := float64(len(ln.q[c][0]))
				if burst := float64(p.cfg.BulkBurst); need > burst {
					need = burst
				}
				if p.tokens < need {
					p.stats.BulkWaits++
					wait = time.Duration((need - p.tokens) / float64(p.rate) * float64(time.Second))
					if wait <= 0 {
						wait = time.Millisecond
					}
					return nil, destKey{}, wait, false
				}
			}
			frames := p.collectLocked(ln, c)
			if len(frames) == 1 {
				datagram = frames[0]
			} else {
				var err error
				datagram, err = protocol.EncodeBatch(frames, qos.PriorityBulk+qos.Priority(c))
				if err != nil {
					// Cannot happen with well-formed queues; fall back to
					// the head frame alone rather than wedging the lane.
					datagram = frames[0]
					frames = frames[:1]
				} else {
					p.stats.PerClass[c].Coalesced += uint64(len(frames))
				}
			}
			if c == bulkClass && p.rate > 0 {
				p.tokens -= float64(len(datagram))
			}
			p.stats.PerClass[c].Sent += uint64(len(frames))
			p.stats.PerClass[c].Datagrams++
			p.stats.PerClass[c].Bytes += uint64(len(datagram))
			// Rotate for round-robin fairness within the class.
			p.ready[c] = p.ready[c][1:]
			if len(ln.q[c]) > 0 {
				p.ready[c] = append(p.ready[c], ln)
			} else {
				ln.queued[c] = false
				p.reapLocked(ln)
			}
			p.transmitting = true
			return datagram, ln.key, 0, true
		}
	}
	return nil, destKey{}, 0, false
}

// collectLocked pops the head frame of lane ln at class c plus any
// immediately following small frames that fit one batch datagram. Caller
// holds p.mu.
func (p *Plane) collectLocked(ln *lane, c int) [][]byte {
	head := ln.q[c][0]
	ln.q[c] = ln.q[c][1:]
	frames := [][]byte{head}
	if p.cfg.CoalesceMax < 0 || len(head) > p.cfg.CoalesceMax {
		return frames
	}
	total := protocol.BatchOverhead(1) + len(head)
	for len(ln.q[c]) > 0 {
		nxt := ln.q[c][0]
		if len(nxt) > p.cfg.CoalesceMax ||
			total+protocol.BatchEntryOverhead+len(nxt) > p.cfg.MaxDatagram {
			break
		}
		ln.q[c] = ln.q[c][1:]
		frames = append(frames, nxt)
		total += protocol.BatchEntryOverhead + len(nxt)
	}
	return frames
}

// reapLocked deletes a fully drained lane so the map stays bounded by the
// set of destinations with traffic in flight. Caller holds p.mu.
func (p *Plane) reapLocked(ln *lane) {
	if !ln.empty() {
		return
	}
	for _, q := range ln.queued {
		if q {
			return
		}
	}
	delete(p.lanes, ln.key)
}

// transmit hands one datagram to the transport.
func (p *Plane) transmit(key destKey, datagram []byte) {
	var err error
	if key.group != "" {
		err = p.sender.SendGroup(key.group, datagram)
	} else {
		err = p.sender.Send(key.node, datagram)
	}
	if err != nil {
		p.mu.Lock()
		p.stats.SendErrors++
		p.mu.Unlock()
	}
}

// run is the drain goroutine.
func (p *Plane) run() {
	defer p.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		datagram, key, wait, ok := p.next()
		if ok {
			p.transmit(key, datagram)
			p.mu.Lock()
			p.transmitting = false
			p.idle.Broadcast()
			p.mu.Unlock()
			continue
		}
		if wait > 0 {
			// Only throttled bulk is pending: sleep for tokens, but wake
			// early if higher-class work arrives.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-p.stop:
				return
			case <-p.wake:
			case <-timer.C:
			}
			continue
		}
		select {
		case <-p.stop:
			return
		case <-p.wake:
		}
	}
}

// Flush blocks until every frame queued at call time has been handed to
// the transport (shaped bulk included, at its paced rate). Frames enqueued
// while flushing extend the wait. Experiments use it to line wire-level
// measurements up with the asynchronous drain; a closed plane is already
// flushed.
func (p *Plane) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && (p.transmitting || p.pendingLocked()) {
		p.idle.Wait()
	}
}

// pendingLocked reports whether any lane still holds frames. Caller holds
// p.mu.
func (p *Plane) pendingLocked() bool {
	for c := range p.ready {
		for _, ln := range p.ready[c] {
			if len(ln.q[c]) > 0 {
				return true
			}
		}
	}
	return false
}

// Close stops the drainer and synchronously flushes everything still
// queued, in priority order, ignoring pacing — a closing container's
// goodbye and any pending acknowledgments still reach the wire. Enqueues
// after Close fail with ErrClosed.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.idle.Broadcast()
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	for c := numClasses - 1; c >= 0; c-- {
		for _, ln := range p.ready[c] {
			for _, raw := range ln.q[c] {
				if ln.key.group != "" {
					_ = p.sender.SendGroup(ln.key.group, raw)
				} else {
					_ = p.sender.Send(ln.key.node, raw)
				}
				p.stats.PerClass[c].Sent++
				p.stats.PerClass[c].Datagrams++
				p.stats.PerClass[c].Bytes += uint64(len(raw))
			}
			ln.q[c] = nil
			ln.queued[c] = false
		}
		p.ready[c] = nil
	}
	p.lanes = make(map[destKey]*lane)
}
