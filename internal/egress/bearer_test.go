package egress

import (
	"sync"
	"testing"
	"time"

	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// funcSelector adapts closures to the Selector interface.
type funcSelector struct {
	mu      sync.Mutex
	unicast func(to transport.NodeID, pr qos.Priority) string
	group   func(group string, pr qos.Priority) []string
}

func (s *funcSelector) Unicast(to transport.NodeID, pr qos.Priority) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unicast == nil {
		return ""
	}
	return s.unicast(to, pr)
}

func (s *funcSelector) Group(group string, pr qos.Priority) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.group == nil {
		return nil
	}
	return s.group(group, pr)
}

func (s *funcSelector) set(unicast func(transport.NodeID, qos.Priority) string, group func(string, qos.Priority) []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unicast, s.group = unicast, group
}

// twoBearers builds a plane with wifi+radio bearers on fresh senders.
func twoBearers(t *testing.T, wifiCfg, radioCfg Config) (*Plane, *gateSender, *gateSender) {
	t.Helper()
	wifi, radio := &gateSender{}, &gateSender{}
	p := NewPlane()
	if err := p.AddBearer("wifi", wifi, wifiCfg); err != nil {
		t.Fatal(err)
	}
	if err := p.AddBearer("radio", radio, radioCfg); err != nil {
		t.Fatal(err)
	}
	return p, wifi, radio
}

func TestSingleBearerCompat(t *testing.T) {
	s := &gateSender{}
	p := New(s, Config{})
	defer p.Close()
	names := p.Bearers()
	if len(names) != 1 || names[0] != DefaultBearer {
		t.Fatalf("Bearers() = %v, want [%s]", names, DefaultBearer)
	}
	if err := p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 1, 8)); err != nil {
		t.Fatal(err)
	}
	waitSends(t, s, 1)
}

func TestAddBearerValidation(t *testing.T) {
	p := NewPlane()
	if err := p.AddBearer("", &gateSender{}, Config{}); err == nil {
		t.Error("empty bearer name accepted")
	}
	if err := p.AddBearer("wifi", &gateSender{}, Config{}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddBearer("wifi", &gateSender{}, Config{}); err == nil {
		t.Error("duplicate bearer name accepted")
	}
	p.Close()
	if err := p.AddBearer("late", &gateSender{}, Config{}); err == nil {
		t.Error("AddBearer after Close accepted")
	}
}

func TestSelectorRoutesUnicastPerClass(t *testing.T) {
	p, wifi, radio := twoBearers(t, Config{}, Config{})
	defer p.Close()
	sel := &funcSelector{}
	sel.set(func(_ transport.NodeID, pr qos.Priority) string {
		if pr >= qos.PriorityHigh {
			return "radio"
		}
		return "wifi"
	}, nil)
	p.SetSelector(sel)

	if err := p.Enqueue("gs", qos.PriorityCritical, frameBytes(t, protocol.MTEvent, qos.PriorityCritical, 1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue("gs", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, 2, 8)); err != nil {
		t.Fatal(err)
	}
	radioRecs := waitSends(t, radio, 1)
	wifiRecs := waitSends(t, wifi, 1)
	if seqs := decodeAll(t, radioRecs); len(seqs) != 1 || seqs[0] != 1 {
		t.Errorf("radio carried %v, want the critical frame (seq 1)", seqs)
	}
	if seqs := decodeAll(t, wifiRecs); len(seqs) != 1 || seqs[0] != 2 {
		t.Errorf("wifi carried %v, want the bulk frame (seq 2)", seqs)
	}
	ws, ok := p.BearerStats("wifi")
	if !ok || ws.Class(qos.PriorityBulk).Sent != 1 {
		t.Errorf("wifi bearer stats = %+v, want 1 bulk sent", ws.Class(qos.PriorityBulk))
	}
	if agg := p.Stats().Totals().Sent; agg != 2 {
		t.Errorf("aggregate sent = %d, want 2", agg)
	}
}

func TestUnknownSelectorNameFallsBackToDefault(t *testing.T) {
	p, wifi, _ := twoBearers(t, Config{}, Config{})
	defer p.Close()
	sel := &funcSelector{}
	sel.set(func(transport.NodeID, qos.Priority) string { return "satcom" }, nil)
	p.SetSelector(sel)
	if err := p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, protocol.MTSample, qos.PriorityNormal, 7, 8)); err != nil {
		t.Fatal(err)
	}
	waitSends(t, wifi, 1) // wifi registered first = default
}

func TestEnqueueOnPinsBearer(t *testing.T) {
	p, _, radio := twoBearers(t, Config{}, Config{})
	defer p.Close()
	sel := &funcSelector{}
	sel.set(func(transport.NodeID, qos.Priority) string { return "wifi" }, nil)
	p.SetSelector(sel)
	// An ack that arrived on radio must be answered on radio, whatever the
	// selector prefers for fresh traffic.
	if err := p.EnqueueOn("radio", "gs", qos.PriorityCritical, frameBytes(t, protocol.MTAck, qos.PriorityCritical, 3, 0)); err != nil {
		t.Fatal(err)
	}
	waitSends(t, radio, 1)
}

func TestGroupFramesRideEverySelectedBearerOnce(t *testing.T) {
	p, wifi, radio := twoBearers(t, Config{}, Config{})
	defer p.Close()
	sel := &funcSelector{}
	sel.set(nil, func(string, qos.Priority) []string {
		return []string{"wifi", "radio", "wifi"} // duplicate collapses
	})
	p.SetSelector(sel)
	if err := p.EnqueueGroup("uavmw.disco", qos.PriorityNormal, frameBytes(t, protocol.MTHeartbeat, qos.PriorityNormal, 9, 16)); err != nil {
		t.Fatal(err)
	}
	wifiRecs := waitSends(t, wifi, 1)
	radioRecs := waitSends(t, radio, 1)
	time.Sleep(10 * time.Millisecond)
	if n := len(wifi.snapshot()); n != 1 {
		t.Errorf("wifi got %d copies, want 1", n)
	}
	if wifiRecs[0].group != "uavmw.disco" || radioRecs[0].group != "uavmw.disco" {
		t.Error("group datagrams should carry the group key")
	}
}

func TestPerBearerBulkPacingIsIndependent(t *testing.T) {
	// wifi bulk is starved by a tiny rate; radio is unshaped and must not
	// inherit wifi's wait.
	p, wifi, radio := twoBearers(t,
		Config{BulkRateBPS: 1, BulkBurst: 1},
		Config{})
	defer p.Close()
	sel := &funcSelector{}
	sel.set(func(to transport.NodeID, _ qos.Priority) string {
		if to == "far" {
			return "radio"
		}
		return "wifi"
	}, nil)
	p.SetSelector(sel)
	// The bucket starts full, so wifi's first frame passes and repays a
	// deficit; the second must wait essentially forever at 1 B/s.
	for seq := uint64(1); seq <= 2; seq++ {
		if err := p.Enqueue("near", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, seq, 600)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Enqueue("far", qos.PriorityBulk, frameBytes(t, protocol.MTFileChunk, qos.PriorityBulk, 3, 600)); err != nil {
		t.Fatal(err)
	}
	waitSends(t, radio, 1) // radio drains immediately
	waitSends(t, wifi, 1)  // wifi's burst-funded first frame
	time.Sleep(20 * time.Millisecond)
	if n := len(wifi.snapshot()); n != 1 {
		t.Errorf("wifi should be waiting for tokens after 1 send, sent %d", n)
	}
	rs, _ := p.BearerStats("wifi")
	if rs.BulkWaits == 0 {
		t.Error("wifi bearer should have recorded bulk waits")
	}
}

func TestRerouteMovesQueuedFramesToSurvivingBearer(t *testing.T) {
	p, wifi, radio := twoBearers(t, Config{}, Config{})
	defer p.Close()
	wifiDown := false
	var mu sync.Mutex
	sel := &funcSelector{}
	sel.set(func(transport.NodeID, qos.Priority) string {
		mu.Lock()
		defer mu.Unlock()
		if wifiDown {
			return "radio"
		}
		return "wifi"
	}, nil)
	p.SetSelector(sel)

	// Hold wifi's wire so frames stay queued behind the first datagram.
	wifi.gate = make(chan struct{})
	for seq := uint64(1); seq <= 4; seq++ {
		if err := p.Enqueue("gs", qos.PriorityHigh, frameBytes(t, protocol.MTEvent, qos.PriorityHigh, seq, 700)); err != nil {
			t.Fatal(err)
		}
	}
	waitDequeued(t, p, qos.PriorityHigh, 1) // drainer holds frame 1 at the gate

	mu.Lock()
	wifiDown = true
	mu.Unlock()
	moved := p.Reroute("wifi")
	if moved == 0 {
		t.Fatal("Reroute moved nothing")
	}
	recs := waitSends(t, radio, moved)
	seqs := decodeAll(t, recs)
	if len(seqs) != moved {
		t.Fatalf("radio carried %d frames, want %d", len(seqs), moved)
	}
	rs, _ := p.BearerStats("wifi")
	if rs.Rerouted != uint64(moved) {
		t.Errorf("wifi Rerouted = %d, want %d", rs.Rerouted, moved)
	}
	close(wifi.gate) // release the in-flight frame
}

func TestSetBearerBulkRate(t *testing.T) {
	p, _, _ := twoBearers(t, Config{}, Config{})
	defer p.Close()
	if !p.SetBearerBulkRate("radio", 1000) {
		t.Error("known bearer rejected")
	}
	if p.SetBearerBulkRate("satcom", 1000) {
		t.Error("unknown bearer accepted")
	}
}

func TestRerouteGroupFramesAvoidDeadBearer(t *testing.T) {
	p, wifi, radio := twoBearers(t, Config{}, Config{})
	defer p.Close()
	sel := &funcSelector{}
	// Discovery-style fan-out: the selector always names both bearers.
	sel.set(nil, func(string, qos.Priority) []string { return []string{"wifi", "radio"} })
	p.SetSelector(sel)

	wifi.gate = make(chan struct{})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := p.EnqueueGroup("uavmw.disco", qos.PriorityNormal, frameBytes(t, protocol.MTHeartbeat, qos.PriorityNormal, seq, 700)); err != nil {
			t.Fatal(err)
		}
	}
	waitSends(t, radio, 3)                    // radio copies drain freely
	waitDequeued(t, p, qos.PriorityNormal, 4) // wifi's drainer holds one at the gate
	before := len(radio.snapshot())

	moved := p.Reroute("wifi")
	if moved == 0 {
		t.Fatal("Reroute moved nothing")
	}
	// The stranded wifi copies must land on radio — never back on wifi.
	waitSends(t, radio, before+moved)
	ws, _ := p.BearerStats("wifi")
	if got := ws.Class(qos.PriorityNormal).Enqueued; got != 3 {
		t.Errorf("wifi re-accepted rerouted group frames (enqueued %d, want the original 3)", got)
	}
	close(wifi.gate)
}
