package egress

import (
	"errors"
	"testing"

	"uavmw/internal/metrics"
	"uavmw/internal/qos"
	"uavmw/internal/uerr"
)

// A transport send failure on the egress drain used to vanish into an
// anonymous per-bearer counter; now it must land in the shared registry
// as both the operational send_failures series and a typed
// egress.errors{category=send} count.
func TestSendFailuresAreCountedInRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	s := &gateSender{errs: errors.New("radio dead")}
	p := New(s, Config{Metrics: reg})
	defer p.Close()

	const sends = 5
	for i := 0; i < sends; i++ {
		if err := p.Enqueue("gs", qos.PriorityHigh, frameBytes(t, 20, qos.PriorityHigh, uint64(i), 600)); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()

	st := p.Stats()
	if st.SendErrors == 0 {
		t.Fatal("SendErrors = 0 after a failing transport drained frames")
	}
	typed := reg.SumCounters("egress", "errors", metrics.L("category", uerr.CatSend.String()))
	if typed != st.SendErrors {
		t.Fatalf("egress.errors{send} = %d, want %d (every send failure typed and counted)",
			typed, st.SendErrors)
	}
	if got := reg.SumCounters("egress", "send_failures"); got != st.SendErrors {
		t.Fatalf("send_failures series = %d, Stats view = %d: view and registry disagree", got, st.SendErrors)
	}
}

// Drop-oldest eviction is a per-frame hot-path failure with no error
// value; it must still increment the egress.errors{category=resource}
// family through its pre-resolved handle.
func TestLaneOverflowCountsResourceErrors(t *testing.T) {
	reg := metrics.NewRegistry()
	s := &gateSender{gate: make(chan struct{})} // hold the drainer: queues fill
	p := New(s, Config{Metrics: reg, QueueCap: 2, CoalesceMax: -1})

	const sends = 8
	for i := 0; i < sends; i++ {
		if err := p.Enqueue("gs", qos.PriorityNormal, frameBytes(t, 20, qos.PriorityNormal, uint64(i), 600)); err != nil {
			t.Fatal(err)
		}
	}
	close(s.gate)
	p.Close()

	dropped := p.Stats().Totals().Dropped
	if dropped == 0 {
		t.Fatal("no drops with QueueCap=2 and a gated drainer")
	}
	typed := reg.SumCounters("egress", "errors", metrics.L("category", uerr.CatResource.String()))
	if typed < dropped {
		t.Fatalf("egress.errors{resource} = %d, want >= %d dropped frames", typed, dropped)
	}
}
