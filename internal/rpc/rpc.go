// Package rpc implements the paper's §4.3 communication primitive: remote
// invocation of named functions with typed parameters and an optional
// return value. Binding is static (pinned provider, pre-allocated
// resources) or dynamic (load-balanced); on provider failure the middleware
// "will detect the situation and redirect requests to the redundant
// service", letting the mission continue "perhaps in a degraded mode". At
// startup, services "check that all the functions they need ... are
// provided" — the DependencyCheck API.
//
// The engine is built for concurrent callers: the pending-call table is
// sharded by call id so unrelated calls never contend on one lock, and a
// call's remaining deadline travels on the wire (protocol.Frame.Budget) so
// providers can shed requests whose budget is already spent instead of
// wasting work on replies nobody can use. Two mechanisms bound latency
// under provider trouble:
//
//   - hedged failover (qos.CallQoS.HedgeAfter): after a configurable
//     fraction of the deadline with no reply, the call is speculatively
//     dispatched to the next untried provider and the first answer wins;
//   - server-side admission control (SetInflightLimit): a provider at its
//     concurrency limit answers MTBusy immediately, so the caller fails
//     over to a redundant provider instead of queueing blind.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/encoding"
	"uavmw/internal/fabric"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// Wire-path error codes: admission sheds, malformed replies and protocol
// violations land in the registry's "rpc.errors" family by category.
var (
	codeBusyShed        = uerr.Register("rpc.busy_shed", uerr.CatAdmission)
	codeUnknownFunction = uerr.Register("rpc.unknown_function", uerr.CatProtocol)
	codeReplyDecode     = uerr.Register("rpc.reply_decode", uerr.CatDecode)
	codeArgsDecode      = uerr.Register("rpc.args_decode", uerr.CatDecode)
)

// Errors.
var (
	// ErrNoProvider reports a call to a function nobody offers — the
	// condition that must trigger "the programmed emergency procedure".
	ErrNoProvider = errors.New("no provider for function")
	// ErrAllProvidersFailed reports failover exhaustion.
	ErrAllProvidersFailed = errors.New("all providers failed")
	// ErrDuplicateName reports a second registration of a function name
	// in one node.
	ErrDuplicateName = errors.New("function already registered")
	// ErrBadSignature reports caller/provider type disagreement.
	ErrBadSignature = errors.New("function signature mismatch")
	// ErrDeadline reports a call that exceeded its QoS deadline.
	ErrDeadline = errors.New("call deadline exceeded")
	// ErrBusy reports a provider that shed the request (admission
	// control); the engine treats it as an infrastructure failure and
	// fails over.
	ErrBusy = errors.New("provider busy")
	// ErrDependency reports unmet startup dependencies (E12).
	ErrDependency = errors.New("unmet function dependencies")
)

// AppError is a remote application-level failure: the function executed and
// returned an error. App errors do not trigger failover — the call
// succeeded at the middleware level.
type AppError struct {
	Name    string // function name
	Message string
}

// Error implements error.
func (e *AppError) Error() string {
	return fmt.Sprintf("rpc: %s: remote error: %s", e.Name, e.Message)
}

// Handler executes one invocation. args is canonical for the registered
// argument type (nil when the function takes no arguments). A returned
// error travels to the caller as an AppError.
type Handler func(args any) (any, error)

// DefaultCallDeadline bounds a call (including failover) when the QoS does
// not set one.
const DefaultCallDeadline = 2 * time.Second

// numPendingShards partitions the pending-call table so concurrent callers
// on unrelated calls never contend on one mutex. Must be a power of two.
const numPendingShards = 16

// pendingShard holds the pending calls whose ids hash onto it.
type pendingShard struct {
	mu    sync.Mutex
	calls map[uint64]*pendingCall
}

// Engine is the per-container remote-invocation runtime.
type Engine struct {
	f   fabric.Fabric
	clk clock.Clock

	regMu     sync.Mutex
	functions map[string]*registration

	pinMu sync.Mutex
	pins  map[string]transport.NodeID // static-binding pins per function

	pending [numPendingShards]pendingShard

	// inflightLimit caps concurrently executing remote-call handlers
	// (0 = unlimited); excess requests are answered MTBusy.
	inflightLimit atomic.Int64
	inflight      atomic.Int64

	// Registry handles, resolved once at construction. busyRejects is the
	// pre-resolved "rpc.errors" admission series (a shed is a per-request
	// event with no error value to hand anyone); hedges is an ordinary
	// counter family.
	reg         *metrics.Registry
	busyRejects *metrics.Counter
	hedges      *metrics.Counter
}

type registration struct {
	name    string
	service string
	argType *presentation.Type // nil = no args
	retType *presentation.Type // nil = no return value
	handler Handler
	q       qos.CallQoS
	calls   *metrics.Counter // "rpc.calls" series labeled by function
}

// pendingCall carries one in-flight remote attempt's reply slot. The
// completer stores the result and signals the trigger — under a Virtual
// clock the Signal releases the waiting attempt's parked count inside the
// clock lock, so virtual time cannot advance past a just-delivered reply
// (a raw channel send would leave the waiter invisible to the clock while
// it is runnable, letting time jump to the call deadline underneath it).
type pendingCall struct {
	trig clock.Trigger
	mu   sync.Mutex
	res  *callResult
}

// complete delivers res; only the first result wins (a busy shed racing a
// late success, say).
func (pc *pendingCall) complete(res callResult) {
	pc.mu.Lock()
	if pc.res == nil {
		pc.res = &res
	}
	pc.mu.Unlock()
	pc.trig.Signal()
}

func (pc *pendingCall) take() *callResult {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.res
}

type callResult struct {
	payload  []byte
	appErr   string
	infraErr bool
	busy     bool
	sendErr  error // reliable-send failure before any reply
	from     transport.NodeID
}

// New builds the engine for a container.
func New(f fabric.Fabric) *Engine {
	clk := clock.Clock(clock.Real{})
	if c, ok := f.(fabric.Clocked); ok {
		clk = clock.Or(c.Clock())
	}
	reg := fabric.MetricsOf(f)
	e := &Engine{
		f:           f,
		clk:         clk,
		functions:   make(map[string]*registration),
		pins:        make(map[string]transport.NodeID),
		reg:         reg,
		busyRejects: uerr.Handle(reg, codeBusyShed),
		hedges:      reg.Counter("rpc", "hedges"),
	}
	for i := range e.pending {
		e.pending[i].calls = make(map[uint64]*pendingCall)
	}
	return e
}

// SetInflightLimit caps how many remote-call handlers may execute
// concurrently on this provider; requests beyond the cap are answered
// MTBusy so callers fail over instead of queueing blind. Zero (the
// default) removes the cap.
func (e *Engine) SetInflightLimit(n int) {
	if n < 0 {
		n = 0
	}
	e.inflightLimit.Store(int64(n))
}

// BusyRejects reports how many incoming calls this provider has shed via
// MTBusy (admission control + budget shedding).
func (e *Engine) BusyRejects() uint64 { return e.busyRejects.Value() }

// Inflight reports how many remote-call handlers are executing right now
// (diagnostics / load probes).
func (e *Engine) Inflight() int { return int(e.inflight.Load()) }

// Hedges reports how many speculative hedged dispatches this caller has
// issued.
func (e *Engine) Hedges() uint64 { return e.hedges.Value() }

// Stats is a snapshot of the engine — a view over the registry's "rpc"
// families, the same series Node.MetricsSnapshot exports.
type Stats struct {
	// BusyRejects counts requests this provider shed via MTBusy.
	BusyRejects uint64
	// Hedges counts speculative hedged dispatches issued by this caller.
	Hedges uint64
	// Inflight is the number of handlers executing at snapshot time.
	Inflight int
	// DecodeDrops counts malformed replies and argument payloads dropped.
	DecodeDrops uint64
	// ProtocolViolations counts wire-contract breaches (unknown function
	// names offered as providers, admission sheds excluded).
	ProtocolViolations uint64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	cat := func(c uerr.Category) uint64 {
		return e.reg.SumCounters("rpc", "errors", metrics.L("category", c.String()))
	}
	return Stats{
		BusyRejects:        e.busyRejects.Value(),
		Hedges:             e.hedges.Value(),
		Inflight:           int(e.inflight.Load()),
		DecodeDrops:        cat(uerr.CatDecode),
		ProtocolViolations: cat(uerr.CatProtocol),
	}
}

// Register exposes a function. argType/retType may be nil for void.
func (e *Engine) Register(name, service string, argType, retType *presentation.Type, q qos.CallQoS, h Handler) error {
	if h == nil {
		return fmt.Errorf("rpc: nil handler for %q: %w", name, ErrBadSignature)
	}
	if argType != nil {
		if err := argType.Validate(); err != nil {
			return err
		}
	}
	if retType != nil {
		if err := retType.Validate(); err != nil {
			return err
		}
	}
	if err := q.Validate(); err != nil {
		return err
	}
	e.regMu.Lock()
	if _, dup := e.functions[name]; dup {
		e.regMu.Unlock()
		return fmt.Errorf("rpc: %q: %w", name, ErrDuplicateName)
	}
	e.functions[name] = &registration{
		name:    name,
		service: service,
		argType: argType,
		retType: retType,
		handler: h,
		q:       q.Normalize(),
		calls:   e.reg.Counter("rpc", "calls", metrics.L("function", name)),
	}
	e.regMu.Unlock()
	e.f.OfferChanged()
	return nil
}

// Unregister withdraws a function. It is idempotent and also clears any
// static-binding pin recorded under the same name, so a later re-resolve
// starts fresh.
func (e *Engine) Unregister(name string) {
	e.regMu.Lock()
	_, had := e.functions[name]
	delete(e.functions, name)
	e.regMu.Unlock()
	e.pinMu.Lock()
	delete(e.pins, name)
	e.pinMu.Unlock()
	if had {
		e.f.OfferChanged()
	}
}

func sigOf(t *presentation.Type) string {
	if t == nil {
		return ""
	}
	return t.String()
}

// pendingFor returns the shard owning callID.
func (e *Engine) pendingFor(callID uint64) *pendingShard {
	return &e.pending[callID&(numPendingShards-1)]
}

// attemptOutcome is one provider's answer in the failover/hedging race.
type attemptOutcome struct {
	provider transport.NodeID
	value    any
	appErr   error
	err      error
}

// Call invokes name with args under the caller's QoS. It coerces args to
// the provider's argument type, resolves a provider per the binding policy,
// and fails over across redundant providers on infrastructure errors
// (including MTBusy sheds). With q.HedgeAfter > 0 the failover is hedged:
// after that fraction of the deadline with no reply, the call is
// speculatively dispatched to the next untried provider and the first
// successful answer wins; losers are cancelled.
func (e *Engine) Call(ctx context.Context, name string, args any, argType, retType *presentation.Type, q qos.CallQoS) (any, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	deadline := q.Deadline
	if deadline <= 0 {
		deadline = DefaultCallDeadline
	}
	// The call deadline rides the injected clock (not context.WithTimeout,
	// which only knows wall time): a timer cancels the context when the
	// clock says the budget is spent, so virtual-time runs see the same
	// deadline behaviour as real ones.
	var cancel context.CancelFunc
	ctx, cancel = context.WithCancel(ctx)
	defer cancel()
	dlAt := e.clk.Now().Add(deadline)
	dlTimer := e.clk.AfterFunc(deadline, cancel)
	defer dlTimer.Stop()

	// Encode arguments once.
	var payload []byte
	if argType != nil {
		cv, err := presentation.Coerce(argType, args)
		if err != nil {
			return nil, err
		}
		payload, err = e.f.Encoding().Marshal(argType, cv)
		if err != nil {
			return nil, err
		}
	} else if args != nil {
		return nil, fmt.Errorf("rpc: %q takes no arguments: %w", name, ErrBadSignature)
	}

	maxAttempts := q.Retries + 1
	if q.Retries == 0 {
		maxAttempts = 1 + e.f.Directory().ProviderCount(naming.KindFunction, name)
		if e.hasLocal(name) {
			maxAttempts++
		}
	}

	tried := make(map[transport.NodeID]bool)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	inflight, launched := 0, 0
	var (
		lastErr error
		appErr  error // first application error; held until the race settles
	)

	// Attempt outcomes arrive through a trigger-signalled queue rather than
	// a raw channel: under a Virtual clock the Signal wakes this goroutine
	// with its parked count released inside the clock lock, so time cannot
	// advance between an outcome landing and the race loop acting on it.
	var (
		outMu    sync.Mutex
		outcomes []attemptOutcome
	)
	trig := clock.NewTrigger(e.clk)
	report := func(out attemptOutcome) {
		outMu.Lock()
		outcomes = append(outcomes, out)
		outMu.Unlock()
		trig.Signal()
	}
	drain := func() []attemptOutcome {
		outMu.Lock()
		batch := outcomes
		outcomes = nil
		outMu.Unlock()
		return batch
	}

	// launch dispatches one attempt against the next untried provider;
	// it reports the selection error when none remains. Attempts are
	// registered with the clock: their dispatch work pins virtual time.
	launch := func() error {
		provider, local, err := e.selectProvider(name, argType, retType, q, tried)
		if err != nil {
			return err
		}
		tried[provider] = true
		actx, acancel := context.WithCancel(ctx)
		cancels = append(cancels, acancel)
		inflight++
		launched++
		clock.Go(e.clk, func() {
			var out attemptOutcome
			out.provider = provider
			if local {
				out.value, out.appErr, out.err = e.callLocal(actx, name, payload, argType, retType, q)
			} else {
				out.value, out.appErr, out.err = e.callRemote(actx, provider, name, payload, retType, q, dlAt)
			}
			report(out)
		})
		return nil
	}

	// Hedging: after HedgeAfter*deadline with no reply the call dispatches
	// the next provider speculatively; each fresh dispatch re-arms the
	// window so a string of slow providers keeps cascading until providers
	// or the deadline run out.
	var (
		hedgeDelay time.Duration
		hedgeAt    time.Time
		hedging    bool
	)
	if q.HedgeAfter > 0 {
		hedgeDelay = time.Duration(q.HedgeAfter * float64(deadline))
		hedging = hedgeDelay > 0
	}
	rearmHedge := func() {
		if hedging {
			hedgeAt = e.clk.Now().Add(hedgeDelay)
		}
	}

	// settle consumes one attempt outcome. It returns (value, err, true)
	// when the call is decided; (_, _, false) while the race continues.
	settle := func(out attemptOutcome) (any, error, bool) {
		inflight--
		if out.err == nil && out.appErr == nil {
			// First successful answer wins; the static pin follows the
			// winner, not the speculative dispatch.
			if q.Binding == qos.BindStatic && out.provider != e.f.Self() {
				e.setPin(name, out.provider)
			}
			return out.value, nil, true
		}
		if out.err == nil {
			// Application error: the function executed, so no new
			// attempts are warranted (no failover on app errors) — but
			// a hedged sibling already in flight may still win with a
			// success, so hold the error until the race settles.
			if appErr == nil {
				appErr = out.appErr
			}
			if inflight == 0 {
				return nil, appErr, true
			}
			return nil, nil, false
		}
		// Infrastructure failure: fail over to the next provider —
		// unless the function already executed somewhere or the
		// deadline has already passed (no point launching dead-on-
		// arrival attempts from the drain path).
		lastErr = out.err
		e.unpin(name, out.provider)
		if appErr == nil && ctx.Err() == nil && launched < maxAttempts && launch() == nil {
			rearmHedge()
			return nil, nil, false
		}
		if inflight == 0 {
			if appErr != nil {
				return nil, appErr, true
			}
			if ctx.Err() != nil {
				// The race ended because the deadline expired (the
				// last attempt's outcome may arrive via results rather
				// than the ctx.Done branch): report a deadline miss,
				// not provider exhaustion.
				e.unpinTried(name, tried)
				return nil, fmt.Errorf("rpc: %s: %w (last: %v)", name, ErrDeadline, lastErr), true
			}
			return nil, fmt.Errorf("rpc: %s after %d attempts: %w (last: %v)",
				name, launched, ErrAllProvidersFailed, lastErr), true
		}
		return nil, nil, false
	}

	// The race loop parks on the trigger (managed: under a Virtual clock a
	// wake — outcome, hedge edge or deadline — is accounted before this
	// goroutine runs). Live makes the caller itself visible to the clock
	// for the call's duration, so the dispatch work between parks pins
	// virtual time instead of letting it advance underneath the race.
	race := func() (any, error) {
		if err := launch(); err != nil {
			return nil, err
		}
		rearmHedge()
		for {
			for _, out := range drain() {
				if v, err, done := settle(out); done {
					return v, err
				}
			}
			if hedging && appErr == nil && !e.clk.Now().Before(hedgeAt) {
				if launched < maxAttempts && launch() == nil {
					e.hedges.Inc()
					rearmHedge()
				} else {
					hedging = false // no untried provider left; stop hedging
				}
				continue
			}
			wait := time.Duration(-1)
			if hedging && appErr == nil {
				wait = hedgeAt.Sub(e.clk.Now())
			}
			if !trig.Wait(wait, ctx.Done()) {
				// Deadline (or caller cancellation). An outcome may have
				// landed in the same scheduling window the deadline fired
				// in; a winner that made it in time must not be reported
				// as a deadline miss.
				for _, out := range drain() {
					if v, err, done := settle(out); done {
						return v, err
					}
				}
				if appErr != nil {
					return nil, appErr
				}
				// A provider that burned the whole deadline without
				// answering must not keep its static pin: the attempt
				// goroutines' timeout outcomes may never be observed (they
				// race this branch), so clear the pins here before the
				// next call re-resolves.
				e.unpinTried(name, tried)
				if lastErr != nil {
					return nil, fmt.Errorf("rpc: %s: %w (last: %v)", name, ErrDeadline, lastErr)
				}
				return nil, fmt.Errorf("rpc: %s: %w", name, ErrDeadline)
			}
		}
	}
	var retV any
	var retErr error
	clock.Live(e.clk, func() { retV, retErr = race() })
	return retV, retErr
}

func (e *Engine) hasLocal(name string) bool {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	_, ok := e.functions[name]
	return ok
}

// selectProvider resolves the next untried provider, preferring the local
// registration (bypass) and honoring static pins.
func (e *Engine) selectProvider(name string, argType, retType *presentation.Type, q qos.CallQoS, tried map[transport.NodeID]bool) (transport.NodeID, bool, error) {
	self := e.f.Self()
	if e.hasLocal(name) && !tried[self] {
		return self, true, nil
	}
	e.pinMu.Lock()
	pinned := e.pins[name]
	e.pinMu.Unlock()

	dir := e.f.Directory()
	// First choice goes through Select, which applies the binding policy
	// (pin liveness for static, load-balancing for dynamic).
	rec, err := dir.Select(naming.KindFunction, name, q.Binding, pinned)
	if err == nil && tried[rec.Node] {
		// Failover attempt: walk the full provider list for an untried
		// node instead.
		err = fmt.Errorf("rpc: %s: %w", name, ErrNoProvider)
		for _, alt := range dir.Lookup(naming.KindFunction, name) {
			if !tried[alt.Node] {
				rec, err = alt, nil
				break
			}
		}
	}
	if err != nil {
		return "", false, fmt.Errorf("rpc: %s: %w", name, ErrNoProvider)
	}
	if err := checkSignature(rec, argType, retType); err != nil {
		return "", false, err
	}
	// Static pins are NOT written here: a speculative hedge dispatch must
	// not move the pin. The Call loop pins the provider that actually
	// wins the race.
	return rec.Node, false, nil
}

func checkSignature(rec naming.Record, argType, retType *presentation.Type) error {
	if rec.ArgSig != sigOf(argType) {
		return fmt.Errorf("rpc: %s: provider args %q, caller %q: %w",
			rec.Name, rec.ArgSig, sigOf(argType), ErrBadSignature)
	}
	if rec.TypeSig != sigOf(retType) {
		return fmt.Errorf("rpc: %s: provider returns %q, caller wants %q: %w",
			rec.Name, rec.TypeSig, sigOf(retType), ErrBadSignature)
	}
	return nil
}

// unpinTried clears the static pin if it points at any provider this call
// dispatched to and got no timely answer from (deadline-miss cleanup).
func (e *Engine) unpinTried(name string, tried map[transport.NodeID]bool) {
	e.pinMu.Lock()
	defer e.pinMu.Unlock()
	if tried[e.pins[name]] {
		delete(e.pins, name)
	}
}

func (e *Engine) setPin(name string, node transport.NodeID) {
	e.pinMu.Lock()
	e.pins[name] = node
	e.pinMu.Unlock()
}

func (e *Engine) unpin(name string, node transport.NodeID) {
	e.pinMu.Lock()
	defer e.pinMu.Unlock()
	if e.pins[name] == node {
		delete(e.pins, name)
	}
}

// callLocal executes a local registration through the scheduler (bypass
// path: no encode/decode of the return value, but arguments were already
// encoded once for uniformity — decode them back).
func (e *Engine) callLocal(ctx context.Context, name string, payload []byte, argType, retType *presentation.Type, q qos.CallQoS) (any, error, error) {
	e.regMu.Lock()
	reg := e.functions[name]
	e.regMu.Unlock()
	if reg == nil {
		return nil, nil, fmt.Errorf("rpc: %s: %w", name, ErrNoProvider)
	}
	if sigOf(reg.argType) != sigOf(argType) || sigOf(reg.retType) != sigOf(retType) {
		return nil, nil, fmt.Errorf("rpc: %s local: %w", name, ErrBadSignature)
	}
	var args any
	if reg.argType != nil {
		decoded, err := e.f.Encoding().Unmarshal(reg.argType, payload)
		if err != nil {
			return nil, nil, err
		}
		args = decoded
	}
	// The handler's result comes back through a trigger-signalled slot so
	// the wait is clock-managed (see pendingCall).
	type res struct {
		v   any
		err error
	}
	var (
		rmu sync.Mutex
		out *res
	)
	trig := clock.NewTrigger(e.clk)
	if err := e.f.Schedule(q.Priority, func() {
		v, err := reg.handler(args)
		rmu.Lock()
		out = &res{v: v, err: err}
		rmu.Unlock()
		trig.Signal()
	}); err != nil {
		return nil, nil, err
	}
	for {
		rmu.Lock()
		r := out
		rmu.Unlock()
		if r != nil {
			reg.calls.Inc()
			if r.err != nil {
				return nil, &AppError{Name: name, Message: r.err.Error()}, nil
			}
			if reg.retType == nil {
				return nil, nil, nil
			}
			cv, err := presentation.Coerce(reg.retType, r.v)
			if err != nil {
				return nil, &AppError{Name: name, Message: err.Error()}, nil
			}
			return cv, nil, nil
		}
		if !trig.Wait(-1, ctx.Done()) {
			return nil, nil, fmt.Errorf("rpc: %s local: %w", name, ErrDeadline)
		}
	}
}

// callRemote performs one remote attempt. The caller's remaining deadline
// is stamped onto the MTCall frame so the provider can shed the request if
// the budget is spent before a handler runs.
func (e *Engine) callRemote(ctx context.Context, provider transport.NodeID, name string, payload []byte, retType *presentation.Type, q qos.CallQoS, dlAt time.Time) (any, error, error) {
	callID := e.f.NextSeq()
	pc := &pendingCall{trig: clock.NewTrigger(e.clk)}
	sh := e.pendingFor(callID)
	sh.mu.Lock()
	sh.calls[callID] = pc
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		delete(sh.calls, callID)
		sh.mu.Unlock()
	}()

	budget := dlAt.Sub(e.clk.Now())
	if budget <= 0 {
		return nil, nil, fmt.Errorf("rpc: %s to %q: %w", name, provider, ErrDeadline)
	}
	// The call's QoS priority selects both the remote handler's scheduler
	// class and the local egress lane the request drains from, so an
	// urgent call overtakes queued bulk on its way out too.
	frame := &protocol.Frame{
		Type:     protocol.MTCall,
		Encoding: e.f.Encoding().ID(),
		Priority: q.Priority,
		Channel:  name,
		Seq:      callID,
		Budget:   budget,
		Payload:  payload,
	}
	e.f.SendReliable(provider, frame, q.Reliability, func(err error) {
		if err != nil {
			pc.complete(callResult{sendErr: err})
		}
	})

	for {
		if res := pc.take(); res != nil {
			if res.sendErr != nil {
				return nil, nil, fmt.Errorf("rpc: %s to %q: %w", name, provider, res.sendErr)
			}
			if res.busy {
				return nil, nil, fmt.Errorf("rpc: %s to %q: %w", name, provider, ErrBusy)
			}
			if res.infraErr {
				return nil, nil, uerr.Newf(e.reg, codeUnknownFunction,
					"%s: provider %q has no such function", name, provider)
			}
			if res.appErr != "" {
				return nil, &AppError{Name: name, Message: res.appErr}, nil
			}
			if retType == nil {
				return nil, nil, nil
			}
			v, err := e.f.Encoding().Unmarshal(retType, res.payload)
			if err != nil {
				return nil, nil, err
			}
			return v, nil, nil
		}
		if !pc.trig.Wait(-1, ctx.Done()) {
			return nil, nil, fmt.Errorf("rpc: %s to %q: %w", name, provider, ErrDeadline)
		}
	}
}

// HandleCall executes an incoming MTCall and replies. Admission control
// runs before any work: a provider at its concurrency limit, or one whose
// scheduler rejects the job, or a request whose wire-propagated deadline
// budget is already spent by the time the handler would run, all answer
// MTBusy so the caller fails over immediately.
func (e *Engine) HandleCall(from transport.NodeID, fr *protocol.Frame) {
	e.regMu.Lock()
	reg := e.functions[fr.Channel]
	e.regMu.Unlock()
	callID := fr.Seq
	// The scheduled handler below outlives fr (the fabric pools decoded
	// frames), so everything it needs is captured as scalars here.
	rawPr, ch := fr.Priority, fr.Channel
	if reg == nil {
		e.sendReply(from, protocol.MTError, 0, rawPr, ch, callID, nil)
		return
	}
	// Concurrency limit: strict reserve-then-check so the cap holds under
	// concurrent arrivals.
	limit := e.inflightLimit.Load()
	if e.inflight.Add(1) > limit && limit > 0 {
		e.inflight.Add(-1)
		e.replyBusy(from, callID, rawPr, ch)
		return
	}
	arrival := e.clk.Now()
	var args any
	if reg.argType != nil {
		decoded, err := e.f.Encoding().Unmarshal(reg.argType, fr.Payload)
		if err != nil {
			e.inflight.Add(-1)
			uerr.Wrapf(e.reg, codeArgsDecode, err, "%s from %q", reg.name, from)
			e.replyAppError(from, callID, rawPr, ch, fmt.Sprintf("bad arguments: %v", err))
			return
		}
		args = decoded
	}
	pr := fr.Priority
	if !pr.Valid() {
		pr = reg.q.Priority
	}
	handler := reg.handler
	budget := fr.Budget
	if err := e.f.Schedule(pr, func() {
		defer e.inflight.Add(-1)
		if budget > 0 && e.clk.Since(arrival) >= budget {
			// Provider-side queueing alone has consumed the caller's
			// whole budget, so the reply cannot arrive in time: shed
			// instead of wasting work. (Network transit before arrival
			// is not counted — the two nodes' clocks are not assumed
			// synchronized — so this catches queueing delay, the
			// dominant term on an overloaded provider, not every spent
			// budget.)
			e.replyBusy(from, callID, rawPr, ch)
			return
		}
		v, err := handler(args)
		reg.calls.Inc()
		if err != nil {
			e.replyAppError(from, callID, rawPr, ch, err.Error())
			return
		}
		var payload []byte
		if reg.retType != nil {
			cv, cerr := presentation.Coerce(reg.retType, v)
			if cerr != nil {
				e.replyAppError(from, callID, rawPr, ch, cerr.Error())
				return
			}
			payload, cerr = e.f.Encoding().Marshal(reg.retType, cv)
			if cerr != nil {
				e.replyAppError(from, callID, rawPr, ch, cerr.Error())
				return
			}
		}
		e.sendReply(from, protocol.MTReturn, e.f.Encoding().ID(), pr, ch, callID, payload)
	}); err != nil {
		// Scheduler saturated: shed so the caller fails over rather than
		// treating local overload as an application error.
		e.inflight.Add(-1)
		e.replyBusy(from, callID, rawPr, ch)
	}
}

// sendReply builds one reply frame (MTReturn / MTError / MTBusy) on pooled
// storage — the frame from the protocol frame pool, the call-id-prefixed
// payload from bufpool — and recycles both once SendReliable returns (the
// fabric encodes synchronously and retains neither).
func (e *Engine) sendReply(to transport.NodeID, mt protocol.MsgType, enc uint8, pr qos.Priority, ch string, callID uint64, body []byte) {
	buf := bufpool.Get(8 + len(body))
	buf = binary.BigEndian.AppendUint64(buf, callID)
	buf = append(buf, body...)
	reply := protocol.GetFrame()
	*reply = protocol.Frame{
		Type:     mt,
		Encoding: enc,
		Priority: pr,
		Channel:  ch,
		Payload:  buf,
	}
	e.f.SendReliable(to, reply, qos.ReliableARQ, nil)
	protocol.PutFrame(reply)
	bufpool.Put(buf)
}

// replyBusy sheds one request with an explicit MTBusy (§4.3 admission
// control); the caller treats it as an infrastructure failure and fails
// over.
func (e *Engine) replyBusy(to transport.NodeID, callID uint64, pr qos.Priority, ch string) {
	e.busyRejects.Inc()
	e.sendReply(to, protocol.MTBusy, 0, pr, ch, callID, nil)
}

func (e *Engine) replyAppError(to transport.NodeID, callID uint64, pr qos.Priority, ch string, msg string) {
	buf := bufpool.Get(12 + len(msg))
	buf = binary.BigEndian.AppendUint64(buf, callID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(msg)))
	buf = append(buf, msg...)
	reply := protocol.GetFrame()
	*reply = protocol.Frame{
		Type:     protocol.MTError,
		Flags:    protocol.FlagAppError,
		Priority: pr,
		Channel:  ch,
		Payload:  buf,
	}
	e.f.SendReliable(to, reply, qos.ReliableARQ, nil)
	protocol.PutFrame(reply)
	bufpool.Put(buf)
}

// Replies must not reuse the caller-allocated call id as their wire
// sequence number: frame seq spaces (ARQ pending state, receive-side
// dedup) are per sender, so a reply frame squatting a number from the
// caller's space can collide with an unrelated frame the provider sends
// later under its own numbering — and be silently dropped as a duplicate.
// The call id therefore travels as a u64 prefix of the reply payload and
// the reply's Seq is provider-allocated (SendReliable fills it).

// encodeReply prefixes a reply body with the call id it answers.
func encodeReply(callID uint64, body []byte) []byte {
	w := encoding.NewWriter(8 + len(body))
	w.Uint64(callID)
	w.Raw(body)
	return w.Bytes()
}

// decodeReply splits a reply payload into call id and body.
func decodeReply(payload []byte) (callID uint64, body []byte, ok bool) {
	r := encoding.NewReader(payload)
	callID = r.Uint64()
	if r.Err() != nil {
		return 0, nil, false
	}
	return callID, r.Raw(r.Remaining()), true
}

// HandleReturn completes a pending call with a success reply.
func (e *Engine) HandleReturn(from transport.NodeID, fr *protocol.Frame) {
	callID, body, ok := decodeReply(fr.Payload)
	if !ok {
		uerr.Newf(e.reg, codeReplyDecode, "return from %q", from)
		return
	}
	e.complete(callID, callResult{payload: append([]byte(nil), body...), from: from})
}

// HandleBusy completes a pending call with a provider shed; the call loop
// fails over to the next provider.
func (e *Engine) HandleBusy(from transport.NodeID, fr *protocol.Frame) {
	callID, _, ok := decodeReply(fr.Payload)
	if !ok {
		uerr.Newf(e.reg, codeReplyDecode, "busy from %q", from)
		return
	}
	e.complete(callID, callResult{busy: true, from: from})
}

// HandleError completes a pending call with a failure reply.
func (e *Engine) HandleError(from transport.NodeID, fr *protocol.Frame) {
	callID, body, ok := decodeReply(fr.Payload)
	if !ok {
		uerr.Newf(e.reg, codeReplyDecode, "error reply from %q", from)
		return
	}
	if fr.Flags&protocol.FlagAppError != 0 {
		r := encoding.NewReader(body)
		msg := r.String()
		if r.Err() != nil {
			msg = "remote error"
		}
		e.complete(callID, callResult{appErr: msg, from: from})
		return
	}
	e.complete(callID, callResult{infraErr: true, from: from})
}

func (e *Engine) complete(callID uint64, res callResult) {
	sh := e.pendingFor(callID)
	sh.mu.Lock()
	pc := sh.calls[callID]
	sh.mu.Unlock()
	if pc == nil {
		return // late reply after failover or deadline
	}
	pc.complete(res)
}

// DependencyCheck verifies every named function has at least one provider,
// locally or in the directory (§4.3 startup behaviour, experiment E12).
// The returned error lists every missing name.
func (e *Engine) DependencyCheck(names ...string) error {
	var missing []string
	for _, name := range names {
		if e.hasLocal(name) {
			continue
		}
		if e.f.Directory().ProviderCount(naming.KindFunction, name) > 0 {
			continue
		}
		missing = append(missing, name)
	}
	if len(missing) > 0 {
		return fmt.Errorf("rpc: missing %s: %w", strings.Join(missing, ", "), ErrDependency)
	}
	return nil
}

// Records lists this node's registered functions for announcements.
func (e *Engine) Records() []naming.Record {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	out := make([]naming.Record, 0, len(e.functions))
	for _, reg := range e.functions {
		out = append(out, naming.Record{
			Kind:    naming.KindFunction,
			Name:    reg.name,
			Service: reg.service,
			Node:    e.f.Self(),
			TypeSig: sigOf(reg.retType),
			ArgSig:  sigOf(reg.argType),
		})
	}
	return out
}

// Calls reports how many times a local function has executed.
func (e *Engine) Calls(name string) uint64 {
	e.regMu.Lock()
	reg := e.functions[name]
	e.regMu.Unlock()
	if reg != nil {
		return reg.calls.Value()
	}
	return 0
}
