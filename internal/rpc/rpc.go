// Package rpc implements the paper's §4.3 communication primitive: remote
// invocation of named functions with typed parameters and an optional
// return value. Binding is static (pinned provider, pre-allocated
// resources) or dynamic (load-balanced); on provider failure the middleware
// "will detect the situation and redirect requests to the redundant
// service", letting the mission continue "perhaps in a degraded mode". At
// startup, services "check that all the functions they need ... are
// provided" — the DependencyCheck API.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/fabric"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Errors.
var (
	// ErrNoProvider reports a call to a function nobody offers — the
	// condition that must trigger "the programmed emergency procedure".
	ErrNoProvider = errors.New("no provider for function")
	// ErrAllProvidersFailed reports failover exhaustion.
	ErrAllProvidersFailed = errors.New("all providers failed")
	// ErrDuplicateName reports a second registration of a function name
	// in one node.
	ErrDuplicateName = errors.New("function already registered")
	// ErrBadSignature reports caller/provider type disagreement.
	ErrBadSignature = errors.New("function signature mismatch")
	// ErrDeadline reports a call that exceeded its QoS deadline.
	ErrDeadline = errors.New("call deadline exceeded")
	// ErrDependency reports unmet startup dependencies (E12).
	ErrDependency = errors.New("unmet function dependencies")
)

// AppError is a remote application-level failure: the function executed and
// returned an error. App errors do not trigger failover — the call
// succeeded at the middleware level.
type AppError struct {
	Name    string // function name
	Message string
}

// Error implements error.
func (e *AppError) Error() string {
	return fmt.Sprintf("rpc: %s: remote error: %s", e.Name, e.Message)
}

// Handler executes one invocation. args is canonical for the registered
// argument type (nil when the function takes no arguments). A returned
// error travels to the caller as an AppError.
type Handler func(args any) (any, error)

// DefaultCallDeadline bounds a call (including failover) when the QoS does
// not set one.
const DefaultCallDeadline = 2 * time.Second

// Engine is the per-container remote-invocation runtime.
type Engine struct {
	f fabric.Fabric

	mu        sync.Mutex
	functions map[string]*registration
	pending   map[uint64]*pendingCall
	pins      map[string]transport.NodeID // static-binding pins per function
}

type registration struct {
	name    string
	service string
	argType *presentation.Type // nil = no args
	retType *presentation.Type // nil = no return value
	handler Handler
	q       qos.CallQoS
	calls   uint64
}

type pendingCall struct {
	done chan callResult
}

type callResult struct {
	payload  []byte
	appErr   string
	infraErr bool
	from     transport.NodeID
}

// New builds the engine for a container.
func New(f fabric.Fabric) *Engine {
	return &Engine{
		f:         f,
		functions: make(map[string]*registration),
		pending:   make(map[uint64]*pendingCall),
		pins:      make(map[string]transport.NodeID),
	}
}

// Register exposes a function. argType/retType may be nil for void.
func (e *Engine) Register(name, service string, argType, retType *presentation.Type, q qos.CallQoS, h Handler) error {
	if h == nil {
		return fmt.Errorf("rpc: nil handler for %q: %w", name, ErrBadSignature)
	}
	if argType != nil {
		if err := argType.Validate(); err != nil {
			return err
		}
	}
	if retType != nil {
		if err := retType.Validate(); err != nil {
			return err
		}
	}
	if err := q.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.functions[name]; dup {
		return fmt.Errorf("rpc: %q: %w", name, ErrDuplicateName)
	}
	e.functions[name] = &registration{
		name:    name,
		service: service,
		argType: argType,
		retType: retType,
		handler: h,
		q:       q.Normalize(),
	}
	return nil
}

// Unregister withdraws a function.
func (e *Engine) Unregister(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.functions, name)
}

func sigOf(t *presentation.Type) string {
	if t == nil {
		return ""
	}
	return t.String()
}

// Call invokes name with args under the caller's QoS. It coerces args to
// the provider's argument type, resolves a provider per the binding policy,
// and fails over across redundant providers on infrastructure errors.
func (e *Engine) Call(ctx context.Context, name string, args any, argType, retType *presentation.Type, q qos.CallQoS) (any, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	deadline := q.Deadline
	if deadline <= 0 {
		deadline = DefaultCallDeadline
	}
	var cancel context.CancelFunc
	ctx, cancel = context.WithTimeout(ctx, deadline)
	defer cancel()

	// Encode arguments once.
	var payload []byte
	if argType != nil {
		cv, err := presentation.Coerce(argType, args)
		if err != nil {
			return nil, err
		}
		payload, err = e.f.Encoding().Marshal(argType, cv)
		if err != nil {
			return nil, err
		}
	} else if args != nil {
		return nil, fmt.Errorf("rpc: %q takes no arguments: %w", name, ErrBadSignature)
	}

	tried := make(map[transport.NodeID]bool)
	maxAttempts := q.Retries + 1
	if q.Retries == 0 {
		maxAttempts = 1 + e.f.Directory().ProviderCount(naming.KindFunction, name)
		if e.hasLocal(name) {
			maxAttempts++
		}
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("rpc: %s: %w", name, ErrDeadline)
		}
		provider, local, err := e.selectProvider(name, argType, retType, q, tried)
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("rpc: %s: %w (last: %v)", name, ErrAllProvidersFailed, lastErr)
			}
			return nil, err
		}
		tried[provider] = true
		var (
			value  any
			appErr error
		)
		if local {
			value, appErr, err = e.callLocal(ctx, name, payload, argType, retType, q)
		} else {
			value, appErr, err = e.callRemote(ctx, provider, name, payload, retType, q)
		}
		if err != nil {
			// Infrastructure failure: failover to the next provider.
			lastErr = err
			e.unpin(name, provider)
			continue
		}
		if appErr != nil {
			return nil, appErr // semantic failure; no failover
		}
		return value, nil
	}
	if lastErr == nil {
		lastErr = ErrNoProvider
	}
	return nil, fmt.Errorf("rpc: %s after %d attempts: %w (last: %v)", name, maxAttempts, ErrAllProvidersFailed, lastErr)
}

func (e *Engine) hasLocal(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.functions[name]
	return ok
}

// selectProvider resolves the next untried provider, preferring the local
// registration (bypass) and honoring static pins.
func (e *Engine) selectProvider(name string, argType, retType *presentation.Type, q qos.CallQoS, tried map[transport.NodeID]bool) (transport.NodeID, bool, error) {
	self := e.f.Self()
	if e.hasLocal(name) && !tried[self] {
		return self, true, nil
	}
	e.mu.Lock()
	pinned := e.pins[name]
	e.mu.Unlock()

	dir := e.f.Directory()
	// First choice goes through Select, which applies the binding policy
	// (pin liveness for static, load-balancing for dynamic).
	rec, err := dir.Select(naming.KindFunction, name, q.Binding, pinned)
	if err == nil && tried[rec.Node] {
		// Failover attempt: walk the full provider list for an untried
		// node instead.
		err = fmt.Errorf("rpc: %s: %w", name, ErrNoProvider)
		for _, alt := range dir.Lookup(naming.KindFunction, name) {
			if !tried[alt.Node] {
				rec, err = alt, nil
				break
			}
		}
	}
	if err != nil {
		return "", false, fmt.Errorf("rpc: %s: %w", name, ErrNoProvider)
	}
	if err := checkSignature(rec, argType, retType); err != nil {
		return "", false, err
	}
	if q.Binding == qos.BindStatic {
		e.mu.Lock()
		e.pins[name] = rec.Node
		e.mu.Unlock()
	}
	return rec.Node, false, nil
}

func checkSignature(rec naming.Record, argType, retType *presentation.Type) error {
	if rec.ArgSig != sigOf(argType) {
		return fmt.Errorf("rpc: %s: provider args %q, caller %q: %w",
			rec.Name, rec.ArgSig, sigOf(argType), ErrBadSignature)
	}
	if rec.TypeSig != sigOf(retType) {
		return fmt.Errorf("rpc: %s: provider returns %q, caller wants %q: %w",
			rec.Name, rec.TypeSig, sigOf(retType), ErrBadSignature)
	}
	return nil
}

func (e *Engine) unpin(name string, node transport.NodeID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pins[name] == node {
		delete(e.pins, name)
	}
}

// callLocal executes a local registration through the scheduler (bypass
// path: no encode/decode of the return value, but arguments were already
// encoded once for uniformity — decode them back).
func (e *Engine) callLocal(ctx context.Context, name string, payload []byte, argType, retType *presentation.Type, q qos.CallQoS) (any, error, error) {
	e.mu.Lock()
	reg := e.functions[name]
	e.mu.Unlock()
	if reg == nil {
		return nil, nil, fmt.Errorf("rpc: %s: %w", name, ErrNoProvider)
	}
	if sigOf(reg.argType) != sigOf(argType) || sigOf(reg.retType) != sigOf(retType) {
		return nil, nil, fmt.Errorf("rpc: %s local: %w", name, ErrBadSignature)
	}
	var args any
	if reg.argType != nil {
		decoded, err := e.f.Encoding().Unmarshal(reg.argType, payload)
		if err != nil {
			return nil, nil, err
		}
		args = decoded
	}
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, 1)
	if err := e.f.Schedule(q.Priority, func() {
		v, err := reg.handler(args)
		ch <- res{v: v, err: err}
	}); err != nil {
		return nil, nil, err
	}
	select {
	case r := <-ch:
		e.mu.Lock()
		reg.calls++
		e.mu.Unlock()
		if r.err != nil {
			return nil, &AppError{Name: name, Message: r.err.Error()}, nil
		}
		if reg.retType == nil {
			return nil, nil, nil
		}
		cv, err := presentation.Coerce(reg.retType, r.v)
		if err != nil {
			return nil, &AppError{Name: name, Message: err.Error()}, nil
		}
		return cv, nil, nil
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("rpc: %s local: %w", name, ErrDeadline)
	}
}

// callRemote performs one remote attempt.
func (e *Engine) callRemote(ctx context.Context, provider transport.NodeID, name string, payload []byte, retType *presentation.Type, q qos.CallQoS) (any, error, error) {
	callID := e.f.NextSeq()
	pc := &pendingCall{done: make(chan callResult, 1)}
	e.mu.Lock()
	e.pending[callID] = pc
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, callID)
		e.mu.Unlock()
	}()

	frame := &protocol.Frame{
		Type:     protocol.MTCall,
		Encoding: e.f.Encoding().ID(),
		Priority: q.Priority,
		Channel:  name,
		Seq:      callID,
		Payload:  payload,
	}
	sendErr := make(chan error, 1)
	e.f.SendReliable(provider, frame, q.Reliability, func(err error) {
		if err != nil {
			sendErr <- err
		}
	})

	select {
	case err := <-sendErr:
		return nil, nil, fmt.Errorf("rpc: %s to %q: %w", name, provider, err)
	case res := <-pc.done:
		if res.infraErr {
			return nil, nil, fmt.Errorf("rpc: %s: provider %q has no such function", name, provider)
		}
		if res.appErr != "" {
			return nil, &AppError{Name: name, Message: res.appErr}, nil
		}
		if retType == nil {
			return nil, nil, nil
		}
		v, err := e.f.Encoding().Unmarshal(retType, res.payload)
		if err != nil {
			return nil, nil, err
		}
		return v, nil, nil
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("rpc: %s to %q: %w", name, provider, ErrDeadline)
	}
}

// HandleCall executes an incoming MTCall and replies.
func (e *Engine) HandleCall(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	reg := e.functions[fr.Channel]
	e.mu.Unlock()
	callID := fr.Seq
	if reg == nil {
		reply := &protocol.Frame{
			Type:     protocol.MTError,
			Priority: fr.Priority,
			Channel:  fr.Channel,
			Seq:      callID,
		}
		e.f.SendReliable(from, reply, qos.ReliableARQ, nil)
		return
	}
	var args any
	if reg.argType != nil {
		decoded, err := e.f.Encoding().Unmarshal(reg.argType, fr.Payload)
		if err != nil {
			e.replyAppError(from, fr, fmt.Sprintf("bad arguments: %v", err))
			return
		}
		args = decoded
	}
	pr := fr.Priority
	if !pr.Valid() {
		pr = reg.q.Priority
	}
	handler := reg.handler
	if err := e.f.Schedule(pr, func() {
		v, err := handler(args)
		e.mu.Lock()
		reg.calls++
		e.mu.Unlock()
		if err != nil {
			e.replyAppError(from, fr, err.Error())
			return
		}
		var payload []byte
		if reg.retType != nil {
			cv, cerr := presentation.Coerce(reg.retType, v)
			if cerr != nil {
				e.replyAppError(from, fr, cerr.Error())
				return
			}
			payload, cerr = e.f.Encoding().Marshal(reg.retType, cv)
			if cerr != nil {
				e.replyAppError(from, fr, cerr.Error())
				return
			}
		}
		reply := &protocol.Frame{
			Type:     protocol.MTReturn,
			Encoding: e.f.Encoding().ID(),
			Priority: pr,
			Channel:  fr.Channel,
			Seq:      callID,
			Payload:  payload,
		}
		e.f.SendReliable(from, reply, qos.ReliableARQ, nil)
	}); err != nil {
		e.replyAppError(from, fr, "scheduler saturated")
	}
}

func (e *Engine) replyAppError(to transport.NodeID, call *protocol.Frame, msg string) {
	w := encoding.NewWriter(len(msg) + 4)
	w.String(msg)
	reply := &protocol.Frame{
		Type:     protocol.MTError,
		Flags:    protocol.FlagAppError,
		Priority: call.Priority,
		Channel:  call.Channel,
		Seq:      call.Seq,
		Payload:  w.Bytes(),
	}
	e.f.SendReliable(to, reply, qos.ReliableARQ, nil)
}

// HandleReturn completes a pending call with a success reply.
func (e *Engine) HandleReturn(from transport.NodeID, fr *protocol.Frame) {
	e.complete(fr.Seq, callResult{payload: append([]byte(nil), fr.Payload...), from: from})
}

// HandleError completes a pending call with a failure reply.
func (e *Engine) HandleError(from transport.NodeID, fr *protocol.Frame) {
	if fr.Flags&protocol.FlagAppError != 0 {
		r := encoding.NewReader(fr.Payload)
		msg := r.String()
		if r.Err() != nil {
			msg = "remote error"
		}
		e.complete(fr.Seq, callResult{appErr: msg, from: from})
		return
	}
	e.complete(fr.Seq, callResult{infraErr: true, from: from})
}

func (e *Engine) complete(callID uint64, res callResult) {
	e.mu.Lock()
	pc := e.pending[callID]
	e.mu.Unlock()
	if pc == nil {
		return // late reply after failover or deadline
	}
	select {
	case pc.done <- res:
	default:
	}
}

// DependencyCheck verifies every named function has at least one provider,
// locally or in the directory (§4.3 startup behaviour, experiment E12).
// The returned error lists every missing name.
func (e *Engine) DependencyCheck(names ...string) error {
	var missing []string
	for _, name := range names {
		if e.hasLocal(name) {
			continue
		}
		if e.f.Directory().ProviderCount(naming.KindFunction, name) > 0 {
			continue
		}
		missing = append(missing, name)
	}
	if len(missing) > 0 {
		return fmt.Errorf("rpc: missing %s: %w", strings.Join(missing, ", "), ErrDependency)
	}
	return nil
}

// Records lists this node's registered functions for announcements.
func (e *Engine) Records() []naming.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]naming.Record, 0, len(e.functions))
	for _, reg := range e.functions {
		out = append(out, naming.Record{
			Kind:    naming.KindFunction,
			Name:    reg.name,
			Service: reg.service,
			Node:    e.f.Self(),
			TypeSig: sigOf(reg.retType),
			ArgSig:  sigOf(reg.argType),
		})
	}
	return out
}

// Calls reports how many times a local function has executed.
func (e *Engine) Calls(name string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg := e.functions[name]; reg != nil {
		return reg.calls
	}
	return 0
}
