package rpc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// fakeFabric routes reliable frames through an optional peer engine so two
// rpc engines can converse without a container.
type fakeFabric struct {
	self transport.NodeID
	dir  *naming.Directory
	seq  atomic.Uint64

	mu    sync.Mutex
	peers map[transport.NodeID]*Engine
	drop  map[transport.NodeID]bool
}

func newFakeFabric(self transport.NodeID) *fakeFabric {
	return &fakeFabric{
		self:  self,
		dir:   naming.NewDirectory(time.Minute),
		peers: make(map[transport.NodeID]*Engine),
		drop:  make(map[transport.NodeID]bool),
	}
}

func (f *fakeFabric) Self() transport.NodeID       { return f.self }
func (f *fakeFabric) Encoding() encoding.Encoding  { return encoding.Binary{} }
func (f *fakeFabric) Directory() *naming.Directory { return f.dir }
func (f *fakeFabric) NextSeq() uint64              { return f.seq.Add(1) }
func (f *fakeFabric) Schedule(_ qos.Priority, job func()) error {
	go job() // calls block on replies, so run handler work concurrently
	return nil
}
func (f *fakeFabric) SendBestEffort(transport.NodeID, *protocol.Frame) error { return nil }
func (f *fakeFabric) SendGroup(string, *protocol.Frame) error                { return nil }
func (f *fakeFabric) Join(string) error                                      { return nil }
func (f *fakeFabric) Leave(string) error                                     { return nil }

func (f *fakeFabric) SendReliable(to transport.NodeID, fr *protocol.Frame, _ qos.Reliability, done func(error)) {
	f.mu.Lock()
	peer := f.peers[to]
	dropped := f.drop[to]
	f.mu.Unlock()
	if dropped || peer == nil {
		if done != nil {
			done(errors.New("unreachable"))
		}
		return
	}
	if done != nil {
		done(nil)
	}
	// Deliver on a fresh goroutine like a real dispatcher.
	cp := *fr
	cp.Payload = append([]byte(nil), fr.Payload...)
	go dispatch(peer, f.self, &cp)
}

func dispatch(e *Engine, from transport.NodeID, fr *protocol.Frame) {
	switch fr.Type {
	case protocol.MTCall:
		e.HandleCall(from, fr)
	case protocol.MTReturn:
		e.HandleReturn(from, fr)
	case protocol.MTError:
		e.HandleError(from, fr)
	}
}

// wire connects a client and a server engine through fake fabrics and
// announces the server's functions into the client's directory.
func wire(t *testing.T) (client, server *Engine, cf, sf *fakeFabric) {
	t.Helper()
	cf = newFakeFabric("client")
	sf = newFakeFabric("server")
	client = New(cf)
	server = New(sf)
	cf.peers["server"] = server
	sf.peers["client"] = client
	return client, server, cf, sf
}

func announce(t *testing.T, f *fakeFabric, node transport.NodeID, e *Engine) {
	t.Helper()
	f.dir.Apply(&naming.Announcement{Node: node, Epoch: 1, Records: e.Records()}, time.Now())
}

var (
	addArgs = presentation.MustParse("{a:i32,b:i32}")
	i32     = presentation.Int32()
)

func registerAdd(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Register("add", "calc", addArgs, i32, qos.CallQoS{},
		func(args any) (any, error) {
			m := args.(map[string]any)
			return m["a"].(int32) + m["b"].(int32), nil
		}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := e.Register("f", "svc", presentation.StructOf(), nil, qos.CallQoS{},
		func(any) (any, error) { return nil, nil }); err == nil {
		t.Error("invalid arg type accepted")
	}
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{Retries: -1},
		func(any) (any, error) { return nil, nil }); err == nil {
		t.Error("invalid QoS accepted")
	}
	ok := func(any) (any, error) { return nil, nil }
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, ok); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, ok); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate: %v", err)
	}
	e.Unregister("f")
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, ok); err != nil {
		t.Errorf("re-register after unregister: %v", err)
	}
}

func TestLocalCallBypass(t *testing.T) {
	e := New(newFakeFabric("n"))
	registerAdd(t, e)
	got, err := e.Call(context.Background(), "add", map[string]any{"a": 2, "b": 3}, addArgs, i32, qos.CallQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if got != int32(5) {
		t.Errorf("got %v", got)
	}
	if e.Calls("add") != 1 {
		t.Errorf("Calls = %d", e.Calls("add"))
	}
	if e.Calls("ghost") != 0 {
		t.Error("unknown function has calls")
	}
}

func TestRemoteCall(t *testing.T) {
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	got, err := client.Call(context.Background(), "add",
		map[string]any{"a": 20, "b": 22}, addArgs, i32, qos.CallQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if got != int32(42) {
		t.Errorf("got %v", got)
	}
}

func TestRemoteAppError(t *testing.T) {
	client, server, cf, _ := wire(t)
	if err := server.Register("boom", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) { return nil, errors.New("kaput") }); err != nil {
		t.Fatal(err)
	}
	announce(t, cf, "server", server)

	_, err := client.Call(context.Background(), "boom", nil, nil, nil, qos.CallQoS{})
	var appErr *AppError
	if !errors.As(err, &appErr) {
		t.Fatalf("want AppError, got %v", err)
	}
	if !strings.Contains(appErr.Error(), "kaput") {
		t.Errorf("message lost: %v", appErr)
	}
}

func TestSignatureMismatchRejected(t *testing.T) {
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	_, err := client.Call(context.Background(), "add",
		map[string]any{"x": 1.5}, presentation.MustParse("{x:f64}"), i32, qos.CallQoS{})
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("want ErrBadSignature, got %v", err)
	}
	_, err = client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 2}, addArgs, presentation.Float64(), qos.CallQoS{})
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("return mismatch: %v", err)
	}
}

func TestNoProvider(t *testing.T) {
	e := New(newFakeFabric("n"))
	_, err := e.Call(context.Background(), "ghost", nil, nil, nil, qos.CallQoS{})
	if !errors.Is(err, ErrNoProvider) {
		t.Errorf("want ErrNoProvider, got %v", err)
	}
}

func TestFailoverToSecondProvider(t *testing.T) {
	// Two providers; the first is unreachable at send time, so the call
	// must redirect within one Call invocation.
	cf := newFakeFabric("client")
	client := New(cf)
	sfGood := newFakeFabric("good")
	good := New(sfGood)
	sfGood.peers["client"] = client
	cf.peers["good"] = good
	cf.drop["bad"] = true

	retT := presentation.String_()
	if err := good.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) { return "good", nil }); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	cf.dir.Apply(&naming.Announcement{Node: "bad", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindFunction, Name: "fn", Service: "svc", Node: "bad", TypeSig: retT.String()},
	}}, now)
	cf.dir.Apply(&naming.Announcement{Node: "good", Epoch: 1, Records: good.Records()}, now)

	got, err := client.Call(context.Background(), "fn", nil, nil, retT, qos.CallQoS{})
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if got != "good" {
		t.Errorf("served by %v", got)
	}
}

func TestDeadlineRespected(t *testing.T) {
	client, server, cf, _ := wire(t)
	if err := server.Register("slow", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) {
			time.Sleep(time.Second)
			return nil, nil
		}); err != nil {
		t.Fatal(err)
	}
	announce(t, cf, "server", server)

	start := time.Now()
	_, err := client.Call(context.Background(), "slow", nil, nil, nil,
		qos.CallQoS{Deadline: 50 * time.Millisecond, Retries: 1})
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("call took %v despite 50ms deadline", elapsed)
	}
}

func TestHandleCallUnknownFunction(t *testing.T) {
	client, _, cf, sf := wire(t)
	// Server with no functions: an infra error must come back, and with a
	// single provider the call fails as all-providers-failed.
	cf.dir.Apply(&naming.Announcement{Node: "server", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindFunction, Name: "phantom", Service: "svc", Node: "server"},
	}}, time.Now())
	_ = sf
	_, err := client.Call(context.Background(), "phantom", nil, nil, nil,
		qos.CallQoS{Deadline: time.Second})
	if err == nil {
		t.Fatal("phantom call succeeded")
	}
	if !errors.Is(err, ErrAllProvidersFailed) && !errors.Is(err, ErrDeadline) {
		t.Errorf("unexpected failure mode: %v", err)
	}
}

func TestDependencyCheck(t *testing.T) {
	e := New(newFakeFabric("n"))
	ok := func(any) (any, error) { return nil, nil }
	if err := e.Register("have.local", "svc", nil, nil, qos.CallQoS{}, ok); err != nil {
		t.Fatal(err)
	}
	// Remote provider via directory.
	e.f.Directory().Apply(&naming.Announcement{Node: "remote", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindFunction, Name: "have.remote", Service: "svc", Node: "remote"},
	}}, time.Now())

	if err := e.DependencyCheck("have.local", "have.remote"); err != nil {
		t.Errorf("satisfied deps failed: %v", err)
	}
	err := e.DependencyCheck("have.local", "missing.one", "missing.two")
	if !errors.Is(err, ErrDependency) {
		t.Fatalf("want ErrDependency, got %v", err)
	}
	for _, name := range []string{"missing.one", "missing.two"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not name %s: %v", name, err)
		}
	}
}

func TestStaticPinUnpinOnFailure(t *testing.T) {
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	q := qos.CallQoS{Binding: qos.BindStatic}
	if _, err := client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 1}, addArgs, i32, q); err != nil {
		t.Fatal(err)
	}
	client.mu.Lock()
	pin := client.pins["add"]
	client.mu.Unlock()
	if pin != "server" {
		t.Fatalf("pin = %q", pin)
	}
	// Provider becomes unreachable: call fails, pin cleared.
	cf.mu.Lock()
	cf.drop["server"] = true
	cf.mu.Unlock()
	if _, err := client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 1}, addArgs, i32,
		qos.CallQoS{Binding: qos.BindStatic, Deadline: 200 * time.Millisecond}); err == nil {
		t.Fatal("unreachable pinned provider succeeded")
	}
	client.mu.Lock()
	pin = client.pins["add"]
	client.mu.Unlock()
	if pin != "" {
		t.Errorf("dead pin retained: %q", pin)
	}
}

func TestLateReplyIgnored(t *testing.T) {
	e := New(newFakeFabric("n"))
	// A reply for a call id nobody is waiting on must be harmless.
	e.HandleReturn("x", &protocol.Frame{Type: protocol.MTReturn, Seq: 999})
	e.HandleError("x", &protocol.Frame{Type: protocol.MTError, Seq: 999})
}
