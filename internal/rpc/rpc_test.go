package rpc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// fakeFabric routes reliable frames through an optional peer engine so two
// rpc engines can converse without a container.
type fakeFabric struct {
	self transport.NodeID
	dir  *naming.Directory
	seq  atomic.Uint64

	// offerChanges counts OfferChanged notifications (the container would
	// broadcast a discovery delta for each).
	offerChanges atomic.Uint64

	mu    sync.Mutex
	peers map[transport.NodeID]*Engine
	drop  map[transport.NodeID]bool
	sent  []*protocol.Frame // every reliable frame this fabric sent
}

func newFakeFabric(self transport.NodeID) *fakeFabric {
	return &fakeFabric{
		self:  self,
		dir:   naming.NewDirectory(time.Minute),
		peers: make(map[transport.NodeID]*Engine),
		drop:  make(map[transport.NodeID]bool),
	}
}

func (f *fakeFabric) Self() transport.NodeID       { return f.self }
func (f *fakeFabric) Encoding() encoding.Encoding  { return encoding.Binary{} }
func (f *fakeFabric) Directory() *naming.Directory { return f.dir }
func (f *fakeFabric) NextSeq() uint64              { return f.seq.Add(1) }
func (f *fakeFabric) OfferChanged()                { f.offerChanges.Add(1) }
func (f *fakeFabric) Schedule(_ qos.Priority, job func()) error {
	go job() // calls block on replies, so run handler work concurrently
	return nil
}
func (f *fakeFabric) SendBestEffort(transport.NodeID, *protocol.Frame) error { return nil }
func (f *fakeFabric) SendGroup(string, *protocol.Frame) error                { return nil }
func (f *fakeFabric) Join(string) error                                      { return nil }
func (f *fakeFabric) Leave(string) error                                     { return nil }

func (f *fakeFabric) SendReliable(to transport.NodeID, fr *protocol.Frame, _ qos.Reliability, done func(error)) {
	f.mu.Lock()
	rec := *fr
	rec.Payload = append([]byte(nil), fr.Payload...)
	f.sent = append(f.sent, &rec)
	peer := f.peers[to]
	dropped := f.drop[to]
	f.mu.Unlock()
	if dropped || peer == nil {
		if done != nil {
			done(errors.New("unreachable"))
		}
		return
	}
	if done != nil {
		done(nil)
	}
	// Deliver on a fresh goroutine like a real dispatcher.
	cp := *fr
	cp.Payload = append([]byte(nil), fr.Payload...)
	go dispatch(peer, f.self, &cp)
}

func dispatch(e *Engine, from transport.NodeID, fr *protocol.Frame) {
	switch fr.Type {
	case protocol.MTCall:
		e.HandleCall(from, fr)
	case protocol.MTReturn:
		e.HandleReturn(from, fr)
	case protocol.MTError:
		e.HandleError(from, fr)
	case protocol.MTBusy:
		e.HandleBusy(from, fr)
	}
}

// wire connects a client and a server engine through fake fabrics and
// announces the server's functions into the client's directory.
func wire(t *testing.T) (client, server *Engine, cf, sf *fakeFabric) {
	t.Helper()
	cf = newFakeFabric("client")
	sf = newFakeFabric("server")
	client = New(cf)
	server = New(sf)
	cf.peers["server"] = server
	sf.peers["client"] = client
	return client, server, cf, sf
}

func announce(t *testing.T, f *fakeFabric, node transport.NodeID, e *Engine) {
	t.Helper()
	f.dir.Apply(&naming.Announcement{Node: node, Epoch: 1, Records: e.Records()}, time.Now())
}

var (
	addArgs = presentation.MustParse("{a:i32,b:i32}")
	i32     = presentation.Int32()
)

func registerAdd(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Register("add", "calc", addArgs, i32, qos.CallQoS{},
		func(args any) (any, error) {
			m := args.(map[string]any)
			return m["a"].(int32) + m["b"].(int32), nil
		}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := e.Register("f", "svc", presentation.StructOf(), nil, qos.CallQoS{},
		func(any) (any, error) { return nil, nil }); err == nil {
		t.Error("invalid arg type accepted")
	}
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{Retries: -1},
		func(any) (any, error) { return nil, nil }); err == nil {
		t.Error("invalid QoS accepted")
	}
	ok := func(any) (any, error) { return nil, nil }
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, ok); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, ok); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate: %v", err)
	}
	e.Unregister("f")
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{}, ok); err != nil {
		t.Errorf("re-register after unregister: %v", err)
	}
}

func TestLocalCallBypass(t *testing.T) {
	e := New(newFakeFabric("n"))
	registerAdd(t, e)
	got, err := e.Call(context.Background(), "add", map[string]any{"a": 2, "b": 3}, addArgs, i32, qos.CallQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if got != int32(5) {
		t.Errorf("got %v", got)
	}
	if e.Calls("add") != 1 {
		t.Errorf("Calls = %d", e.Calls("add"))
	}
	if e.Calls("ghost") != 0 {
		t.Error("unknown function has calls")
	}
}

func TestRemoteCall(t *testing.T) {
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	got, err := client.Call(context.Background(), "add",
		map[string]any{"a": 20, "b": 22}, addArgs, i32, qos.CallQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if got != int32(42) {
		t.Errorf("got %v", got)
	}
}

func TestRemoteAppError(t *testing.T) {
	client, server, cf, _ := wire(t)
	if err := server.Register("boom", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) { return nil, errors.New("kaput") }); err != nil {
		t.Fatal(err)
	}
	announce(t, cf, "server", server)

	_, err := client.Call(context.Background(), "boom", nil, nil, nil, qos.CallQoS{})
	var appErr *AppError
	if !errors.As(err, &appErr) {
		t.Fatalf("want AppError, got %v", err)
	}
	if !strings.Contains(appErr.Error(), "kaput") {
		t.Errorf("message lost: %v", appErr)
	}
}

func TestSignatureMismatchRejected(t *testing.T) {
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	_, err := client.Call(context.Background(), "add",
		map[string]any{"x": 1.5}, presentation.MustParse("{x:f64}"), i32, qos.CallQoS{})
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("want ErrBadSignature, got %v", err)
	}
	_, err = client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 2}, addArgs, presentation.Float64(), qos.CallQoS{})
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("return mismatch: %v", err)
	}
}

func TestNoProvider(t *testing.T) {
	e := New(newFakeFabric("n"))
	_, err := e.Call(context.Background(), "ghost", nil, nil, nil, qos.CallQoS{})
	if !errors.Is(err, ErrNoProvider) {
		t.Errorf("want ErrNoProvider, got %v", err)
	}
}

func TestFailoverToSecondProvider(t *testing.T) {
	// Two providers; the first is unreachable at send time, so the call
	// must redirect within one Call invocation.
	cf := newFakeFabric("client")
	client := New(cf)
	sfGood := newFakeFabric("good")
	good := New(sfGood)
	sfGood.peers["client"] = client
	cf.peers["good"] = good
	cf.drop["bad"] = true

	retT := presentation.String_()
	if err := good.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) { return "good", nil }); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	cf.dir.Apply(&naming.Announcement{Node: "bad", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindFunction, Name: "fn", Service: "svc", Node: "bad", TypeSig: retT.String()},
	}}, now)
	cf.dir.Apply(&naming.Announcement{Node: "good", Epoch: 1, Records: good.Records()}, now)

	got, err := client.Call(context.Background(), "fn", nil, nil, retT, qos.CallQoS{})
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if got != "good" {
		t.Errorf("served by %v", got)
	}
}

func TestDeadlineRespected(t *testing.T) {
	client, server, cf, _ := wire(t)
	if err := server.Register("slow", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) {
			time.Sleep(time.Second)
			return nil, nil
		}); err != nil {
		t.Fatal(err)
	}
	announce(t, cf, "server", server)

	start := time.Now()
	_, err := client.Call(context.Background(), "slow", nil, nil, nil,
		qos.CallQoS{Deadline: 50 * time.Millisecond, Retries: 1})
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("call took %v despite 50ms deadline", elapsed)
	}
}

func TestHandleCallUnknownFunction(t *testing.T) {
	client, _, cf, sf := wire(t)
	// Server with no functions: an infra error must come back, and with a
	// single provider the call fails as all-providers-failed.
	cf.dir.Apply(&naming.Announcement{Node: "server", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindFunction, Name: "phantom", Service: "svc", Node: "server"},
	}}, time.Now())
	_ = sf
	_, err := client.Call(context.Background(), "phantom", nil, nil, nil,
		qos.CallQoS{Deadline: time.Second})
	if err == nil {
		t.Fatal("phantom call succeeded")
	}
	if !errors.Is(err, ErrAllProvidersFailed) && !errors.Is(err, ErrDeadline) {
		t.Errorf("unexpected failure mode: %v", err)
	}
}

func TestDependencyCheck(t *testing.T) {
	e := New(newFakeFabric("n"))
	ok := func(any) (any, error) { return nil, nil }
	if err := e.Register("have.local", "svc", nil, nil, qos.CallQoS{}, ok); err != nil {
		t.Fatal(err)
	}
	// Remote provider via directory.
	e.f.Directory().Apply(&naming.Announcement{Node: "remote", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindFunction, Name: "have.remote", Service: "svc", Node: "remote"},
	}}, time.Now())

	if err := e.DependencyCheck("have.local", "have.remote"); err != nil {
		t.Errorf("satisfied deps failed: %v", err)
	}
	err := e.DependencyCheck("have.local", "missing.one", "missing.two")
	if !errors.Is(err, ErrDependency) {
		t.Fatalf("want ErrDependency, got %v", err)
	}
	for _, name := range []string{"missing.one", "missing.two"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not name %s: %v", name, err)
		}
	}
}

func TestStaticPinUnpinOnFailure(t *testing.T) {
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	q := qos.CallQoS{Binding: qos.BindStatic}
	if _, err := client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 1}, addArgs, i32, q); err != nil {
		t.Fatal(err)
	}
	client.pinMu.Lock()
	pin := client.pins["add"]
	client.pinMu.Unlock()
	if pin != "server" {
		t.Fatalf("pin = %q", pin)
	}
	// Provider becomes unreachable: call fails, pin cleared.
	cf.mu.Lock()
	cf.drop["server"] = true
	cf.mu.Unlock()
	if _, err := client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 1}, addArgs, i32,
		qos.CallQoS{Binding: qos.BindStatic, Deadline: 200 * time.Millisecond}); err == nil {
		t.Fatal("unreachable pinned provider succeeded")
	}
	client.pinMu.Lock()
	pin = client.pins["add"]
	client.pinMu.Unlock()
	if pin != "" {
		t.Errorf("dead pin retained: %q", pin)
	}
}

func TestLateReplyIgnored(t *testing.T) {
	e := New(newFakeFabric("n"))
	// A reply for a call id nobody is waiting on must be harmless, as
	// must a truncated reply payload with no call id at all.
	e.HandleReturn("x", &protocol.Frame{Type: protocol.MTReturn, Payload: encodeReply(999, nil)})
	e.HandleError("x", &protocol.Frame{Type: protocol.MTError, Payload: encodeReply(999, nil)})
	e.HandleBusy("x", &protocol.Frame{Type: protocol.MTBusy, Payload: encodeReply(999, nil)})
	e.HandleReturn("x", &protocol.Frame{Type: protocol.MTReturn})
	e.HandleError("x", &protocol.Frame{Type: protocol.MTError})
	e.HandleBusy("x", &protocol.Frame{Type: protocol.MTBusy})
}

// threeWay wires one client to two server engines ("a-slow" sorts before
// "b-fast", so static binding pins the slow one first).
func threeWay(t *testing.T) (client, slow, fast *Engine, cf *fakeFabric) {
	t.Helper()
	cf = newFakeFabric("client")
	sfSlow := newFakeFabric("a-slow")
	sfFast := newFakeFabric("b-fast")
	client = New(cf)
	slow = New(sfSlow)
	fast = New(sfFast)
	cf.peers["a-slow"] = slow
	cf.peers["b-fast"] = fast
	sfSlow.peers["client"] = client
	sfFast.peers["client"] = client
	return client, slow, fast, cf
}

func TestHedgedCallBeatsSlowProvider(t *testing.T) {
	// The pinned provider stalls past the deadline; a hedged call must
	// speculatively dispatch to the second provider and return its answer
	// well inside the deadline, where an unhedged call times out.
	client, slow, fast, cf := threeWay(t)
	retT := presentation.String_()
	if err := slow.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) {
			time.Sleep(2 * time.Second)
			return "slow", nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := fast.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) { return "fast", nil }); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	cf.dir.Apply(&naming.Announcement{Node: "a-slow", Epoch: 1, Records: slow.Records()}, now)
	cf.dir.Apply(&naming.Announcement{Node: "b-fast", Epoch: 1, Records: fast.Records()}, now)

	q := qos.CallQoS{Binding: qos.BindStatic, Deadline: 600 * time.Millisecond, HedgeAfter: 0.1}
	start := time.Now()
	got, err := client.Call(context.Background(), "fn", nil, nil, retT, q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged call failed: %v", err)
	}
	if got != "fast" {
		t.Errorf("served by %v, want the hedged fast provider", got)
	}
	if elapsed >= 600*time.Millisecond {
		t.Errorf("hedged call took %v, past the deadline", elapsed)
	}
	if client.Hedges() == 0 {
		t.Error("no hedge recorded")
	}
	// The static pin follows the race winner, not the speculative
	// dispatch per se.
	client.pinMu.Lock()
	pin := client.pins["fn"]
	client.pinMu.Unlock()
	if pin != "b-fast" {
		t.Errorf("pin = %q after hedged win, want b-fast", pin)
	}

	// The same call without hedging burns the whole deadline on the
	// stalled pin and fails. (The hedge moved the static pin to the
	// winner; point it back at the stalled provider first.)
	client.pinMu.Lock()
	client.pins["fn"] = "a-slow"
	client.pinMu.Unlock()
	q.HedgeAfter = 0
	q.Deadline = 150 * time.Millisecond
	if _, err := client.Call(context.Background(), "fn", nil, nil, retT, q); !errors.Is(err, ErrDeadline) {
		t.Errorf("unhedged call against stalled pin: %v, want deadline", err)
	}
}

func TestBusyShedTriggersFailover(t *testing.T) {
	// Provider a-slow has a concurrency limit of 1 and is occupied; the
	// next call must receive MTBusy and fail over to b-fast — not queue,
	// not surface an app error.
	client, slow, fast, cf := threeWay(t)
	retT := presentation.String_()
	release := make(chan struct{})
	if err := slow.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) {
			<-release
			return "slow", nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := fast.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) { return "fast", nil }); err != nil {
		t.Fatal(err)
	}
	slow.SetInflightLimit(1)
	now := time.Now()
	cf.dir.Apply(&naming.Announcement{Node: "a-slow", Epoch: 1, Records: slow.Records()}, now)
	cf.dir.Apply(&naming.Announcement{Node: "b-fast", Epoch: 1, Records: fast.Records()}, now)

	q := qos.CallQoS{Binding: qos.BindStatic, Deadline: 2 * time.Second}
	firstDone := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), "fn", nil, nil, retT, q)
		firstDone <- err
	}()
	// Wait until the occupying call is actually executing on a-slow.
	deadline := time.Now().Add(time.Second)
	for slow.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("occupying call never reached the slow provider")
		}
		time.Sleep(time.Millisecond)
	}

	got, err := client.Call(context.Background(), "fn", nil, nil, retT, q)
	if err != nil {
		t.Fatalf("shed call did not fail over: %v", err)
	}
	if got != "fast" {
		t.Errorf("served by %v, want failover to fast", got)
	}
	if slow.BusyRejects() != 1 {
		t.Errorf("BusyRejects = %d, want 1", slow.BusyRejects())
	}
	close(release)
	if err := <-firstDone; err != nil {
		t.Errorf("occupying call failed: %v", err)
	}
}

func TestServerShedsSpentBudget(t *testing.T) {
	// An MTCall whose wire budget is already spent by the time the
	// handler would run must be answered MTBusy, not executed.
	_, server, cf, sf := wire(t)
	_ = cf
	var executed atomic.Bool
	if err := server.Register("fn", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) { executed.Store(true); return nil, nil }); err != nil {
		t.Fatal(err)
	}
	server.HandleCall("client", &protocol.Frame{
		Type: protocol.MTCall, Channel: "fn", Seq: 77, Budget: time.Nanosecond,
	})
	deadline := time.Now().Add(time.Second)
	for {
		sf.mu.Lock()
		var busy *protocol.Frame
		for _, fr := range sf.sent {
			if fr.Type == protocol.MTBusy {
				busy = fr
			}
		}
		sf.mu.Unlock()
		if busy != nil {
			// The call id travels in the reply payload, not the frame
			// seq (replies use the provider's own seq space).
			callID, _, ok := decodeReply(busy.Payload)
			if !ok || callID != 77 || busy.Channel != "fn" {
				t.Fatalf("busy reply mismatched: %+v", busy)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no MTBusy reply to a spent-budget call")
		}
		time.Sleep(time.Millisecond)
	}
	if executed.Load() {
		t.Error("handler ran despite spent budget")
	}
	if server.BusyRejects() != 1 {
		t.Errorf("BusyRejects = %d", server.BusyRejects())
	}
	if server.Calls("fn") != 0 {
		t.Error("shed call counted as executed")
	}
}

func TestCallRemoteStampsBudget(t *testing.T) {
	// The MTCall frame must carry the caller's remaining deadline.
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)
	if _, err := client.Call(context.Background(), "add",
		map[string]any{"a": 1, "b": 2}, addArgs, i32,
		qos.CallQoS{Deadline: 800 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cf.mu.Lock()
	defer cf.mu.Unlock()
	var call *protocol.Frame
	for _, fr := range cf.sent {
		if fr.Type == protocol.MTCall {
			call = fr
		}
	}
	if call == nil {
		t.Fatal("no MTCall recorded")
	}
	if call.Budget <= 0 || call.Budget > 800*time.Millisecond {
		t.Errorf("wire budget %v, want within (0, 800ms]", call.Budget)
	}
}

func TestDeadlineMissUnpinsStalledProvider(t *testing.T) {
	// A statically-pinned provider that burns the whole deadline without
	// answering must lose its pin, so the next call re-resolves instead
	// of re-dialing the stalled node forever.
	client, server, cf, _ := wire(t)
	retT := presentation.String_()
	if err := server.Register("fn", "svc", nil, retT, qos.CallQoS{},
		func(any) (any, error) {
			time.Sleep(2 * time.Second)
			return "late", nil
		}); err != nil {
		t.Fatal(err)
	}
	announce(t, cf, "server", server)

	client.setPin("fn", "server")
	q := qos.CallQoS{Binding: qos.BindStatic, Deadline: 100 * time.Millisecond}
	if _, err := client.Call(context.Background(), "fn", nil, nil, retT, q); !errors.Is(err, ErrDeadline) {
		t.Fatalf("stalled call: %v, want deadline", err)
	}
	client.pinMu.Lock()
	pin, pinned := client.pins["fn"]
	client.pinMu.Unlock()
	if pinned {
		t.Errorf("stalled provider kept its pin: %q", pin)
	}
}

func TestUnregisterClearsPinAndIsIdempotent(t *testing.T) {
	e := New(newFakeFabric("n"))
	if err := e.Register("f", "svc", nil, nil, qos.CallQoS{},
		func(any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	e.pinMu.Lock()
	e.pins["f"] = "stale-provider"
	e.pinMu.Unlock()
	e.Unregister("f")
	e.pinMu.Lock()
	_, pinned := e.pins["f"]
	e.pinMu.Unlock()
	if pinned {
		t.Error("Unregister left a stale pin")
	}
	e.Unregister("f") // second withdraw is a no-op
	if e.hasLocal("f") {
		t.Error("function still registered")
	}
}

func TestConcurrentCallersShardedPending(t *testing.T) {
	// Many concurrent callers through one engine: the sharded pending
	// table must keep every reply matched to its call (run with -race).
	client, server, cf, _ := wire(t)
	registerAdd(t, server)
	announce(t, cf, "server", server)

	const callers, perCaller = 16, 20
	var wg sync.WaitGroup
	errs := make(chan error, callers*perCaller)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				got, err := client.Call(context.Background(), "add",
					map[string]any{"a": c, "b": i}, addArgs, i32, qos.CallQoS{})
				if err != nil {
					errs <- err
					return
				}
				if got != int32(c+i) {
					errs <- errors.New("reply matched to the wrong call")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
