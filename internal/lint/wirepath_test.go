// Package lint holds repo-enforced source checks that run as ordinary go
// tests (CI's `go test ./...` executes them; no extra tooling). They pin
// the observability-plane contract: wire-path failures are constructed
// through the uerr taxonomy, not ad-hoc fmt.Errorf strings, and error
// codes carry a well-formed component plus an explicit category.
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wirePathPackages are the layers whose failures ride the wire or the
// node's send/receive machinery. In these packages a fmt.Errorf must wrap
// a cause (%w) — typically one of the package's sentinel errors surfaced
// through a caller-facing API. A fmt.Errorf without %w manufactures an
// untyped, uncounted error string; construct it through uerr instead so
// it lands in the node registry with a component and category.
var wirePathPackages = []string{
	"internal/core",
	"internal/egress",
	"internal/events",
	"internal/filetransfer",
	"internal/gateway",
	"internal/ingress",
	"internal/link",
	"internal/naming",
	"internal/protocol",
	"internal/rpc",
	"internal/transport",
	"internal/variables",
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// parsePackageFiles parses every non-test .go file under dir.
func parsePackageFiles(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	return files
}

// selectorCall matches a call of the form pkg.Fn and returns its operands.
func selectorCall(n ast.Node) (pkg, fn string, call *ast.CallExpr) {
	c, ok := n.(*ast.CallExpr)
	if !ok {
		return "", "", nil
	}
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", nil
	}
	return id.Name, sel.Sel.Name, c
}

// TestWirePathErrorsAreTyped rejects fmt.Errorf calls without a %w verb
// in wire-path packages. Wrapping a sentinel with %w keeps a caller API's
// errors.Is contract and stays legal; a bare formatted string is an
// untyped error invisible to the metrics plane.
func TestWirePathErrorsAreTyped(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	for _, rel := range wirePathPackages {
		for _, f := range parsePackageFiles(t, fset, filepath.Join(root, rel)) {
			ast.Inspect(f, func(n ast.Node) bool {
				pkg, fn, call := selectorCall(n)
				if pkg != "fmt" || fn != "Errorf" || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Errorf("%s: fmt.Errorf with non-literal format; use uerr so the failure is typed and counted",
						fset.Position(call.Pos()))
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.Contains(format, "%w") {
					t.Errorf("%s: fmt.Errorf without %%w on a wire path; construct through uerr (typed + counted) or wrap a sentinel with %%w",
						fset.Position(call.Pos()))
				}
				return true
			})
		}
	}
}

// wirepathAllocTag marks a reviewed allocation on a wire-path package:
// `//wirepath:alloc <reason>` on the same line as (or the line above) a
// bare make([]byte, ...). Everything else in these packages must come from
// bufpool (steady-state buffers) so the zero-allocation gates keep holding.
const wirepathAllocTag = "wirepath:alloc"

// TestWirePathBuffersArePooled rejects unannotated make([]byte, ...) in
// wire-path packages. A bare make on a per-frame path is exactly the
// allocation the pooled encode/decode work removed; legitimate ones
// (retained copies, pool-miss constructors, one-time rings) carry a
// //wirepath:alloc comment stating why the buffer may not be pooled.
func TestWirePathBuffersArePooled(t *testing.T) {
	root := repoRoot(t)
	sites := 0
	for _, rel := range wirePathPackages {
		dir := filepath.Join(root, rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			// Lines blessed by an annotation: the tag's own line and the
			// one below it (tag-above-statement is the common form).
			annotated := map[int]bool{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, wirepathAllocTag)
					if idx < 0 {
						continue
					}
					if strings.TrimSpace(c.Text[idx+len(wirepathAllocTag):]) == "" {
						t.Errorf("%s: %s needs a reason", fset.Position(c.Pos()), wirepathAllocTag)
					}
					line := fset.Position(c.Pos()).Line
					annotated[line] = true
					annotated[line+1] = true
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, isID := call.Fun.(*ast.Ident); !isID || id.Name != "make" || len(call.Args) < 2 {
					return true
				}
				at, isArr := call.Args[0].(*ast.ArrayType)
				if !isArr || at.Len != nil {
					return true
				}
				if elt, isID := at.Elt.(*ast.Ident); !isID || elt.Name != "byte" {
					return true
				}
				sites++
				if !annotated[fset.Position(call.Pos()).Line] {
					t.Errorf("%s: bare make([]byte, ...) on a wire-path package; use bufpool.Get/Put, or annotate with //%s <reason> if the buffer genuinely cannot be pooled",
						fset.Position(call.Pos()), wirepathAllocTag)
				}
				return true
			})
		}
	}
	if sites == 0 {
		t.Fatal("no make([]byte) sites found; the lint is miswired")
	}
}

// codePattern is the uerr.Register contract: lowercase component.name.
var codePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$`)

// TestErrorCodesCarryComponentAndCategory statically validates every
// uerr.Register call in the repo: the code is a literal "component.name"
// string (no computed codes — the vocabulary must be greppable) and the
// category is an explicit uerr.Cat* selector, never CatUnknown. The
// runtime panics in Register catch the same mistakes, but only on the
// first execution of the offending package; this runs on every file,
// executed or not.
func TestErrorCodesCarryComponentAndCategory(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	registrations := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			pkg, fn, call := selectorCall(n)
			if pkg != "uerr" || fn != "Register" {
				return true
			}
			registrations++
			if len(call.Args) != 2 {
				t.Errorf("%s: uerr.Register wants (code, category)", fset.Position(call.Pos()))
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				t.Errorf("%s: uerr.Register code must be a string literal", fset.Position(call.Pos()))
				return true
			}
			code, uqErr := strconv.Unquote(lit.Value)
			if uqErr != nil || !codePattern.MatchString(code) {
				t.Errorf("%s: code %s is not lowercase component.name", fset.Position(call.Pos()), lit.Value)
			}
			for _, word := range strings.FieldsFunc(code, func(r rune) bool { return r == '.' || r == '_' }) {
				if word == "err" || word == "error" || word == "errors" {
					t.Errorf("%s: code %q contains %q; the errors family already says so",
						fset.Position(call.Pos()), code, word)
				}
			}
			catPkg, catName, _ := selectorCallArg(call.Args[1])
			if catPkg != "uerr" || !strings.HasPrefix(catName, "Cat") || catName == "CatUnknown" {
				t.Errorf("%s: category must be an explicit uerr.Cat* (not CatUnknown), got %s.%s",
					fset.Position(call.Pos()), catPkg, catName)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if registrations == 0 {
		t.Fatal("no uerr.Register calls found; the lint is miswired")
	}
}

// selectorCallArg reads a pkg.Name selector expression argument.
func selectorCallArg(e ast.Expr) (pkg, name string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}
