// Package qos defines the quality-of-service vocabulary shared by the
// middleware communication primitives.
//
// The paper (§4) attaches QoS to each primitive: variables carry a validity
// (how long a sample may be served after it was produced) and a publication
// rate; events carry a latency-oriented priority and a reliability class
// (TCP-like transport or UDP with application-level retransmission); remote
// invocations carry deadlines and binding policies. This package holds only
// the policy types; enforcement lives in each primitive's engine.
package qos

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Priority orders work inside the container scheduler. The paper's prototype
// uses "a simple thread pool with fixed priorities for each named primitive"
// (§6); these are those named levels. Higher value = more urgent.
type Priority uint8

// Priority levels, lowest to highest. They start at 1 so the zero value is
// detectably "unset" and can be defaulted by the container.
const (
	PriorityBulk     Priority = iota + 1 // file-transfer chunks, background
	PriorityLow                          // non-critical telemetry
	PriorityNormal                       // variables, ordinary calls
	PriorityHigh                         // events
	PriorityCritical                     // alarms, emergency procedures
)

// numPriorities is the count of defined levels (for table sizing).
const numPriorities = 5

// Levels returns all priorities from lowest to highest.
func Levels() []Priority {
	return []Priority{PriorityBulk, PriorityLow, PriorityNormal, PriorityHigh, PriorityCritical}
}

// NumLevels reports how many priority levels exist.
func NumLevels() int { return numPriorities }

// Valid reports whether p is one of the defined levels.
func (p Priority) Valid() bool { return p >= PriorityBulk && p <= PriorityCritical }

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityBulk:
		return "bulk"
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	case PriorityCritical:
		return "critical"
	default:
		return fmt.Sprintf("priority(%d)", uint8(p))
	}
}

// Index returns a dense 0-based index for table lookups, or -1 if invalid.
func (p Priority) Index() int {
	if !p.Valid() {
		return -1
	}
	return int(p - PriorityBulk)
}

// Reliability selects how a primitive's messages reach subscribers.
type Reliability uint8

const (
	// BestEffort sends once with no acknowledgment; receivers tolerate
	// loss. Variables default to this (§4.1).
	BestEffort Reliability = iota + 1
	// ReliableARQ sends over an unreliable transport with application-level
	// acknowledgment and retransmission, the scheme §4.2 argues is "more
	// efficient for event messages than the generic case provided by the
	// TCP stack".
	ReliableARQ
	// ReliableStream maps the primitive onto an inherently reliable,
	// ordered transport (TCP).
	ReliableStream
)

// String implements fmt.Stringer.
func (r Reliability) String() string {
	switch r {
	case BestEffort:
		return "best-effort"
	case ReliableARQ:
		return "reliable-arq"
	case ReliableStream:
		return "reliable-stream"
	default:
		return fmt.Sprintf("reliability(%d)", uint8(r))
	}
}

// Valid reports whether r is one of the defined classes.
func (r Reliability) Valid() bool { return r >= BestEffort && r <= ReliableStream }

// Delivery selects how an event publisher fans an occurrence out to its
// remote subscribers.
type Delivery uint8

const (
	// DeliverUnicast sends one reliable copy per subscriber (the paper's
	// baseline event mapping). Cost grows O(N·payload) with the audience.
	DeliverUnicast Delivery = iota + 1
	// DeliverMulticast sends one group-addressed frame per occurrence
	// ("one packet sent can arrive to multiple nodes", §4.1) carrying a
	// per-topic sequence number; subscribers detect gaps and repair them
	// with NACK-triggered unicast retransmissions over the ARQ engine.
	DeliverMulticast
)

// String implements fmt.Stringer.
func (d Delivery) String() string {
	switch d {
	case DeliverUnicast:
		return "unicast"
	case DeliverMulticast:
		return "multicast"
	default:
		return fmt.Sprintf("delivery(%d)", uint8(d))
	}
}

// Valid reports whether d is one of the defined modes.
func (d Delivery) Valid() bool { return d >= DeliverUnicast && d <= DeliverMulticast }

// Binding selects how a remote-invocation client is bound to a provider
// (§4.3: "the middleware ... can also redirect remote calls to server
// services statically or dynamically").
type Binding uint8

const (
	// BindDynamic re-resolves the provider on demand and load-balances
	// across equivalent providers.
	BindDynamic Binding = iota + 1
	// BindStatic pins the provider at subscription time; "useful in
	// critical services where resources ... are pre-allocated" (§4.3).
	// Failover still applies if the pinned provider dies.
	BindStatic
)

// String implements fmt.Stringer.
func (b Binding) String() string {
	switch b {
	case BindDynamic:
		return "dynamic"
	case BindStatic:
		return "static"
	default:
		return fmt.Sprintf("binding(%d)", uint8(b))
	}
}

// VariableQoS is the contract between a variable publisher and its
// subscribers (§4.1).
type VariableQoS struct {
	// Validity is how long a published sample remains servable after its
	// publication instant. While a fresher sample is missing, the cache
	// serves the previous one as long as it is still valid. Zero means
	// samples never expire.
	Validity time.Duration
	// Period is the nominal publication interval. The container uses it to
	// detect publisher silence: after DeadlineFactor*Period without a
	// sample, subscribers get a timeout warning (§4.1 "the service
	// container will warn of this timeout circumstance").
	Period time.Duration
	// DeadlineFactor scales Period into the silence deadline. Zero
	// defaults to 3.
	DeadlineFactor int
	// OnChangeOnly suppresses retransmission of unchanged values between
	// periodic refreshes ("sent at regular intervals or each time a
	// substantial change in its value occurs").
	OnChangeOnly bool
	// Priority for handler scheduling. Zero defaults to PriorityNormal.
	Priority Priority
}

// SilenceDeadline returns the duration after which a publisher is considered
// silent. Zero Period disables silence detection.
func (q VariableQoS) SilenceDeadline() time.Duration {
	if q.Period <= 0 {
		return 0
	}
	f := q.DeadlineFactor
	if f <= 0 {
		f = 3
	}
	return time.Duration(f) * q.Period
}

// Normalize fills defaulted fields, returning the effective policy.
func (q VariableQoS) Normalize() VariableQoS {
	if q.DeadlineFactor <= 0 {
		q.DeadlineFactor = 3
	}
	if !q.Priority.Valid() {
		q.Priority = PriorityNormal
	}
	return q
}

// Validate reports whether the policy is self-consistent.
func (q VariableQoS) Validate() error {
	if q.Validity < 0 {
		return fmt.Errorf("qos: negative validity %v: %w", q.Validity, ErrInvalidPolicy)
	}
	if q.Period < 0 {
		return fmt.Errorf("qos: negative period %v: %w", q.Period, ErrInvalidPolicy)
	}
	if q.Priority != 0 && !q.Priority.Valid() {
		return fmt.Errorf("qos: priority %d out of range: %w", q.Priority, ErrInvalidPolicy)
	}
	return nil
}

// EventQoS is the contract for the event primitive (§4.2).
type EventQoS struct {
	// Reliability chooses ReliableARQ (default) or ReliableStream.
	// BestEffort is rejected: events "guarantee the reception of the sent
	// information to all the subscribed services".
	Reliability Reliability
	// Priority defaults to PriorityHigh; events are latency-sensitive.
	Priority Priority
	// AckTimeout is the initial retransmission timeout for ReliableARQ.
	// Zero defaults to the protocol engine's default.
	AckTimeout time.Duration
	// MaxRetries bounds ARQ retransmissions before the publisher declares
	// a subscriber unreachable. Zero defaults to the engine's default.
	MaxRetries int
	// Delivery chooses unicast fan-out (default) or group-addressed
	// multicast with NACK-based gap repair. Multicast requires
	// ReliableARQ: repairs reuse the datagram ARQ machinery.
	Delivery Delivery
}

// Normalize fills defaulted fields, returning the effective policy.
func (q EventQoS) Normalize() EventQoS {
	if q.Reliability == 0 {
		q.Reliability = ReliableARQ
	}
	if !q.Priority.Valid() {
		q.Priority = PriorityHigh
	}
	if q.Delivery == 0 {
		q.Delivery = DeliverUnicast
	}
	return q
}

// Validate reports whether the policy is usable for events.
func (q EventQoS) Validate() error {
	if q.Reliability == BestEffort {
		return fmt.Errorf("qos: events require guaranteed delivery: %w", ErrInvalidPolicy)
	}
	if q.Reliability != 0 && !q.Reliability.Valid() {
		return fmt.Errorf("qos: reliability %d out of range: %w", q.Reliability, ErrInvalidPolicy)
	}
	if q.AckTimeout < 0 {
		return fmt.Errorf("qos: negative ack timeout %v: %w", q.AckTimeout, ErrInvalidPolicy)
	}
	if q.MaxRetries < 0 {
		return fmt.Errorf("qos: negative max retries %d: %w", q.MaxRetries, ErrInvalidPolicy)
	}
	if q.Delivery != 0 && !q.Delivery.Valid() {
		return fmt.Errorf("qos: delivery %d out of range: %w", q.Delivery, ErrInvalidPolicy)
	}
	if q.Delivery == DeliverMulticast && q.Reliability == ReliableStream {
		return fmt.Errorf("qos: multicast delivery cannot ride a stream transport: %w", ErrInvalidPolicy)
	}
	return nil
}

// CallQoS is the contract for remote invocation (§4.3).
type CallQoS struct {
	// Deadline bounds the whole invocation including failover retries.
	// Zero defaults to the engine default.
	Deadline time.Duration
	// Binding chooses static pinning or dynamic (load-balanced) provider
	// selection. Zero defaults to BindDynamic.
	Binding Binding
	// Retries is the number of *additional* providers tried after the
	// first fails (redundancy failover). Zero defaults to trying every
	// known provider once.
	Retries int
	// HedgeAfter enables hedged failover: the fraction of the deadline
	// (0 < HedgeAfter < 1) to wait for the current provider's reply
	// before speculatively dispatching the same call to the next untried
	// provider and taking whichever answers first. Zero disables hedging.
	// Hedging can execute the function on more than one provider, so it
	// is only safe for idempotent functions.
	HedgeAfter float64
	// Priority defaults to PriorityNormal.
	Priority Priority
	// Reliability: ReliableStream (default) or ReliableARQ. §4.3:
	// "generally mapped ... over TCP, but UDP plus retransmission at the
	// middleware level can also be used". Never multicast.
	Reliability Reliability
}

// Normalize fills defaulted fields, returning the effective policy.
func (q CallQoS) Normalize() CallQoS {
	if q.Binding == 0 {
		q.Binding = BindDynamic
	}
	if !q.Priority.Valid() {
		q.Priority = PriorityNormal
	}
	if q.Reliability == 0 {
		q.Reliability = ReliableStream
	}
	return q
}

// Validate reports whether the policy is usable for calls.
func (q CallQoS) Validate() error {
	if q.Deadline < 0 {
		return fmt.Errorf("qos: negative deadline %v: %w", q.Deadline, ErrInvalidPolicy)
	}
	if q.Retries < 0 {
		return fmt.Errorf("qos: negative retries %d: %w", q.Retries, ErrInvalidPolicy)
	}
	if q.HedgeAfter < 0 || q.HedgeAfter >= 1 {
		return fmt.Errorf("qos: hedge fraction %v outside [0,1): %w", q.HedgeAfter, ErrInvalidPolicy)
	}
	if q.Reliability == BestEffort {
		return fmt.Errorf("qos: calls require a reliable mapping: %w", ErrInvalidPolicy)
	}
	return nil
}

// TransferQoS is the contract for file-based transmission (§4.4).
type TransferQoS struct {
	// ChunkSize is the payload bytes per multicast chunk. Zero defaults to
	// the engine default.
	ChunkSize int
	// Priority defaults to PriorityBulk so transfers never starve events.
	Priority Priority
	// RoundPause is an optional pause between completion rounds, used to
	// cap bandwidth on constrained links. Zero means no pause.
	RoundPause time.Duration
	// RateBPS caps the transfer's transmit rate in estimated wire
	// bytes/second: the publisher paces chunk emission so the egress bulk
	// lane stays shallow and a bandwidth-constrained link is never handed
	// more bulk than it can carry (priority inversion at the link queue).
	// Zero means unpaced. Set it just below the narrowest link on the
	// path; the container-level egress token bucket (which shapes the
	// whole PriorityBulk class) is the backstop when several transfers
	// share a node.
	RateBPS int64
}

// Normalize fills defaulted fields, returning the effective policy.
func (q TransferQoS) Normalize() TransferQoS {
	if !q.Priority.Valid() {
		q.Priority = PriorityBulk
	}
	return q
}

// Validate reports whether the policy is usable for transfers.
func (q TransferQoS) Validate() error {
	if q.ChunkSize < 0 {
		return fmt.Errorf("qos: negative chunk size %d: %w", q.ChunkSize, ErrInvalidPolicy)
	}
	if q.RoundPause < 0 {
		return fmt.Errorf("qos: negative round pause %v: %w", q.RoundPause, ErrInvalidPolicy)
	}
	if q.RateBPS < 0 {
		return fmt.Errorf("qos: negative rate %d B/s: %w", q.RateBPS, ErrInvalidPolicy)
	}
	return nil
}

// BearerProfile describes the static characteristics of one datalink
// (bearer) a node transmits over. A UAV typically carries several dissimilar
// bearers at once — short-range high-bandwidth WiFi, a long-range low-rate
// radio modem, satcom — and the middleware chooses per traffic class which
// one carries each frame (see LinkPolicy). The profile feeds the default
// class→bearer ordering; the link monitor supplies the dynamic half
// (liveness, observed RTT and loss).
type BearerProfile struct {
	// RateBPS is the nominal link capacity in wire bytes/second. Bulk
	// classes prefer the highest-rate healthy bearer. Zero means unknown.
	RateBPS int64
	// Latency is the nominal one-way latency; latency-sensitive classes
	// tie-break toward the lowest.
	Latency time.Duration
	// Robustness ranks how dependable the link is across the mission
	// envelope (range, weather, occlusion): higher is more dependable.
	// Critical classes pin to the most robust healthy bearer.
	Robustness int
	// BulkRateBPS token-bucket-shapes the PriorityBulk egress lane of this
	// bearer (see package egress). Set it at or just below RateBPS so bulk
	// never fills the link queue critical frames would wait behind. Zero
	// inherits the node-wide bulk rate (which may itself be zero: unshaped).
	BulkRateBPS int64
}

// LinkPolicy maps traffic classes to bearers: which datalink each
// qos.Priority class prefers, and in what order the remaining bearers are
// tried when the preferred one is unhealthy (automatic failover order).
type LinkPolicy struct {
	// Affinity[p] lists bearer names in preference order for class p.
	// Bearers not listed are appended in the class's default order, so an
	// affinity entry narrows preference without ever stranding a class with
	// no failover path. A nil map (or missing class) uses the default
	// ordering for every class.
	Affinity map[Priority][]string
}

// Validate reports whether the policy is self-consistent.
func (lp LinkPolicy) Validate() error {
	for p := range lp.Affinity {
		if !p.Valid() {
			return fmt.Errorf("qos: link affinity priority %d out of range: %w", p, ErrInvalidPolicy)
		}
	}
	return nil
}

// Order returns the bearer preference order for class p over the given
// bearer set: the explicit affinity list first (unknown names skipped),
// then every remaining bearer in the class's default order. The default
// order encodes the multi-bearer doctrine: bulk rides the fattest pipe,
// critical pins to the most robust link, and interactive classes chase
// latency.
func (lp LinkPolicy) Order(p Priority, bearers map[string]BearerProfile) []string {
	out := make([]string, 0, len(bearers))
	seen := make(map[string]bool, len(bearers))
	for _, name := range lp.Affinity[p] {
		if _, ok := bearers[name]; ok && !seen[name] {
			out = append(out, name)
			seen[name] = true
		}
	}
	rest := make([]string, 0, len(bearers))
	for name := range bearers {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		return defaultBearerLess(p, rest[i], rest[j], bearers)
	})
	return append(out, rest...)
}

// defaultBearerLess orders bearers a, b for class p by profile, with the
// bearer name as the final deterministic tie-break.
func defaultBearerLess(p Priority, a, b string, bearers map[string]BearerProfile) bool {
	pa, pb := bearers[a], bearers[b]
	type cmp struct{ x, y int64 }
	var keys []cmp
	switch {
	case p <= PriorityLow:
		// Bulk and low telemetry: fattest pipe first, dependability next.
		keys = []cmp{{pa.RateBPS, pb.RateBPS}, {int64(pa.Robustness), int64(pb.Robustness)}}
	case p >= PriorityHigh:
		// Events, alarms, emergencies: most robust link first, then the
		// lowest-latency among equally robust ones.
		keys = []cmp{{int64(pa.Robustness), int64(pb.Robustness)}, {int64(pb.Latency), int64(pa.Latency)}}
	default:
		// Interactive traffic (variables, ordinary calls): lowest latency
		// first, then capacity.
		keys = []cmp{{int64(pb.Latency), int64(pa.Latency)}, {pa.RateBPS, pb.RateBPS}}
	}
	for _, k := range keys {
		if k.x != k.y {
			return k.x > k.y
		}
	}
	return a < b
}

// ErrInvalidPolicy tags every validation failure in this package.
var ErrInvalidPolicy = errors.New("invalid QoS policy")
