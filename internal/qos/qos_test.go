package qos

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestPriorityString(t *testing.T) {
	tests := []struct {
		p    Priority
		want string
	}{
		{PriorityBulk, "bulk"},
		{PriorityLow, "low"},
		{PriorityNormal, "normal"},
		{PriorityHigh, "high"},
		{PriorityCritical, "critical"},
		{Priority(0), "priority(0)"},
		{Priority(99), "priority(99)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Priority(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestPriorityValid(t *testing.T) {
	for _, p := range Levels() {
		if !p.Valid() {
			t.Errorf("Levels() returned invalid priority %v", p)
		}
	}
	if Priority(0).Valid() {
		t.Error("zero priority must be invalid")
	}
	if Priority(numPriorities + 1).Valid() {
		t.Error("out-of-range priority must be invalid")
	}
}

func TestPriorityIndexDense(t *testing.T) {
	seen := make(map[int]bool, NumLevels())
	for _, p := range Levels() {
		idx := p.Index()
		if idx < 0 || idx >= NumLevels() {
			t.Fatalf("Index() of %v = %d out of [0,%d)", p, idx, NumLevels())
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	if got := Priority(0).Index(); got != -1 {
		t.Errorf("invalid priority Index() = %d, want -1", got)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// The scheduler depends on numeric ordering matching urgency.
	if !(PriorityBulk < PriorityLow && PriorityLow < PriorityNormal &&
		PriorityNormal < PriorityHigh && PriorityHigh < PriorityCritical) {
		t.Fatal("priority levels are not monotonically increasing in urgency")
	}
}

func TestReliabilityString(t *testing.T) {
	tests := []struct {
		r    Reliability
		want string
	}{
		{BestEffort, "best-effort"},
		{ReliableARQ, "reliable-arq"},
		{ReliableStream, "reliable-stream"},
		{Reliability(0), "reliability(0)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Reliability(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestVariableQoSSilenceDeadline(t *testing.T) {
	tests := []struct {
		name string
		q    VariableQoS
		want time.Duration
	}{
		{"zero period disables", VariableQoS{}, 0},
		{"default factor 3", VariableQoS{Period: 100 * time.Millisecond}, 300 * time.Millisecond},
		{"explicit factor", VariableQoS{Period: time.Second, DeadlineFactor: 5}, 5 * time.Second},
		{"negative factor defaults", VariableQoS{Period: time.Second, DeadlineFactor: -2}, 3 * time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.SilenceDeadline(); got != tt.want {
				t.Errorf("SilenceDeadline() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVariableQoSNormalize(t *testing.T) {
	q := VariableQoS{}.Normalize()
	if q.Priority != PriorityNormal {
		t.Errorf("default variable priority = %v, want %v", q.Priority, PriorityNormal)
	}
	if q.DeadlineFactor != 3 {
		t.Errorf("default deadline factor = %d, want 3", q.DeadlineFactor)
	}
	q2 := VariableQoS{Priority: PriorityCritical, DeadlineFactor: 7}.Normalize()
	if q2.Priority != PriorityCritical || q2.DeadlineFactor != 7 {
		t.Error("Normalize must not override explicit fields")
	}
}

func TestVariableQoSValidate(t *testing.T) {
	tests := []struct {
		name    string
		q       VariableQoS
		wantErr bool
	}{
		{"zero ok", VariableQoS{}, false},
		{"full ok", VariableQoS{Validity: time.Second, Period: 100 * time.Millisecond, Priority: PriorityHigh}, false},
		{"negative validity", VariableQoS{Validity: -time.Second}, true},
		{"negative period", VariableQoS{Period: -time.Millisecond}, true},
		{"bad priority", VariableQoS{Priority: Priority(42)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.q.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidPolicy) {
				t.Errorf("error %v must wrap ErrInvalidPolicy", err)
			}
		})
	}
}

func TestEventQoSNormalize(t *testing.T) {
	q := EventQoS{}.Normalize()
	if q.Reliability != ReliableARQ {
		t.Errorf("default event reliability = %v, want %v", q.Reliability, ReliableARQ)
	}
	if q.Priority != PriorityHigh {
		t.Errorf("default event priority = %v, want %v", q.Priority, PriorityHigh)
	}
}

func TestEventQoSValidate(t *testing.T) {
	tests := []struct {
		name    string
		q       EventQoS
		wantErr bool
	}{
		{"zero ok", EventQoS{}, false},
		{"arq ok", EventQoS{Reliability: ReliableARQ, AckTimeout: 10 * time.Millisecond, MaxRetries: 4}, false},
		{"stream ok", EventQoS{Reliability: ReliableStream}, false},
		{"best effort rejected", EventQoS{Reliability: BestEffort}, true},
		{"negative timeout", EventQoS{AckTimeout: -1}, true},
		{"negative retries", EventQoS{MaxRetries: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.q.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCallQoSNormalize(t *testing.T) {
	q := CallQoS{}.Normalize()
	if q.Binding != BindDynamic {
		t.Errorf("default binding = %v, want %v", q.Binding, BindDynamic)
	}
	if q.Reliability != ReliableStream {
		t.Errorf("default call reliability = %v, want %v", q.Reliability, ReliableStream)
	}
	if q.Priority != PriorityNormal {
		t.Errorf("default call priority = %v, want %v", q.Priority, PriorityNormal)
	}
}

func TestCallQoSValidate(t *testing.T) {
	tests := []struct {
		name    string
		q       CallQoS
		wantErr bool
	}{
		{"zero ok", CallQoS{}, false},
		{"static ok", CallQoS{Binding: BindStatic, Deadline: time.Second}, false},
		{"negative deadline", CallQoS{Deadline: -time.Second}, true},
		{"negative retries", CallQoS{Retries: -3}, true},
		{"best effort rejected", CallQoS{Reliability: BestEffort}, true},
		{"hedge fraction ok", CallQoS{HedgeAfter: 0.25}, false},
		{"negative hedge", CallQoS{HedgeAfter: -0.1}, true},
		{"hedge at whole deadline", CallQoS{HedgeAfter: 1}, true},
		{"hedge beyond deadline", CallQoS{HedgeAfter: 1.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.q.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransferQoS(t *testing.T) {
	q := TransferQoS{}.Normalize()
	if q.Priority != PriorityBulk {
		t.Errorf("default transfer priority = %v, want %v", q.Priority, PriorityBulk)
	}
	if err := (TransferQoS{ChunkSize: -1}).Validate(); err == nil {
		t.Error("negative chunk size must fail validation")
	}
	if err := (TransferQoS{RoundPause: -time.Second}).Validate(); err == nil {
		t.Error("negative round pause must fail validation")
	}
	if err := (TransferQoS{ChunkSize: 1024, RoundPause: time.Millisecond}).Validate(); err != nil {
		t.Errorf("valid transfer policy rejected: %v", err)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	// Property: Normalize is idempotent for every policy type.
	if err := quick.Check(func(validity, period int64, factor int, onChange bool) bool {
		q := VariableQoS{
			Validity:       time.Duration(validity),
			Period:         time.Duration(period),
			DeadlineFactor: factor,
			OnChangeOnly:   onChange,
		}
		once := q.Normalize()
		return once == once.Normalize()
	}, nil); err != nil {
		t.Errorf("VariableQoS.Normalize not idempotent: %v", err)
	}
	if err := quick.Check(func(rel, prio uint8, timeout int64, retries int) bool {
		q := EventQoS{
			Reliability: Reliability(rel),
			Priority:    Priority(prio),
			AckTimeout:  time.Duration(timeout),
			MaxRetries:  retries,
		}
		once := q.Normalize()
		return once == once.Normalize()
	}, nil); err != nil {
		t.Errorf("EventQoS.Normalize not idempotent: %v", err)
	}
}

func TestValidatedPoliciesSurviveNormalize(t *testing.T) {
	// Property: a policy that validates still validates after Normalize.
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(validity, period uint32, factor uint8) bool {
		q := VariableQoS{
			Validity:       time.Duration(validity),
			Period:         time.Duration(period),
			DeadlineFactor: int(factor),
		}
		if q.Validate() != nil {
			return true // not applicable
		}
		return q.Normalize().Validate() == nil
	}, cfg); err != nil {
		t.Error(err)
	}
}

// e14Bearers is the E14-style two-bearer set used by the LinkPolicy tests:
// a fat short-range low-latency WiFi pipe and a slow long-range robust
// radio modem.
func e14Bearers() map[string]BearerProfile {
	return map[string]BearerProfile{
		"wifi":  {RateBPS: 125_000, Latency: 5 * time.Millisecond, Robustness: 1},
		"radio": {RateBPS: 31_250, Latency: 40 * time.Millisecond, Robustness: 10},
	}
}

func TestLinkPolicyDefaultOrderPerClass(t *testing.T) {
	var lp LinkPolicy
	bearers := e14Bearers()
	cases := []struct {
		p    Priority
		want []string
	}{
		{PriorityBulk, []string{"wifi", "radio"}},     // fat pipe first
		{PriorityLow, []string{"wifi", "radio"}},      // fat pipe first
		{PriorityNormal, []string{"wifi", "radio"}},   // low latency first
		{PriorityHigh, []string{"radio", "wifi"}},     // robust first
		{PriorityCritical, []string{"radio", "wifi"}}, // robust first
	}
	for _, tc := range cases {
		got := lp.Order(tc.p, bearers)
		if len(got) != len(tc.want) {
			t.Fatalf("%v: order %v, want %v", tc.p, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v: order %v, want %v", tc.p, got, tc.want)
				break
			}
		}
	}
}

func TestLinkPolicyAffinityLeadsAndFailoverFollows(t *testing.T) {
	lp := LinkPolicy{Affinity: map[Priority][]string{
		PriorityCritical: {"wifi"},                // override the default robust-first order
		PriorityBulk:     {"sat", "wifi", "wifi"}, // unknown names skipped, dups dropped
	}}
	bearers := e14Bearers()
	if got := lp.Order(PriorityCritical, bearers); got[0] != "wifi" || got[1] != "radio" {
		t.Errorf("critical order = %v, want [wifi radio]", got)
	}
	if got := lp.Order(PriorityBulk, bearers); len(got) != 2 || got[0] != "wifi" || got[1] != "radio" {
		t.Errorf("bulk order = %v, want [wifi radio]", got)
	}
}

func TestLinkPolicyOrderDeterministicOnTies(t *testing.T) {
	var lp LinkPolicy
	bearers := map[string]BearerProfile{"b": {}, "a": {}, "c": {}}
	for i := 0; i < 10; i++ {
		got := lp.Order(PriorityNormal, bearers)
		if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
			t.Fatalf("tie order = %v, want [a b c]", got)
		}
	}
}

func TestLinkPolicyValidate(t *testing.T) {
	good := LinkPolicy{Affinity: map[Priority][]string{PriorityBulk: {"x"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	bad := LinkPolicy{Affinity: map[Priority][]string{Priority(99): {"x"}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid affinity priority accepted")
	}
}
