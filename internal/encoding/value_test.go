package encoding

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"uavmw/internal/presentation"
	"uavmw/internal/presentation/ptest"
)

var gpsType = presentation.MustParse("{lat:f64,lon:f64,alt:f32,fix:u8}")

func gpsValue() map[string]any {
	return map[string]any{"lat": 41.3, "lon": 2.1, "alt": float32(120.5), "fix": uint8(3)}
}

func TestMarshalUnmarshalStruct(t *testing.T) {
	data, err := Marshal(gpsType, gpsValue())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// 8 + 8 + 4 + 1 bytes, no framing overhead.
	if len(data) != 21 {
		t.Errorf("encoded size = %d, want 21", len(data))
	}
	back, err := Unmarshal(gpsType, data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !presentation.EqualValues(gpsValue(), back) {
		t.Errorf("round trip mismatch: %#v", back)
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	data, err := Marshal(presentation.Int32(), int32(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(presentation.Int32(), append(data, 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

func TestEncodeRejectsNonCanonical(t *testing.T) {
	tests := []struct {
		name string
		typ  *presentation.Type
		v    any
	}{
		{"int for i32", presentation.Int32(), 5},
		{"missing field", gpsType, map[string]any{"lat": 1.0}},
		{"wrong container", presentation.VectorOf(presentation.Int8()), "x"},
		{"array len", presentation.ArrayOf(2, presentation.Int8()), []any{int8(1)}},
		{"unknown case", presentation.UnionOf(presentation.C("a", nil)), presentation.Union{Case: "z"}},
		{"void payload", presentation.UnionOf(presentation.C("a", nil)), presentation.Union{Case: "a", Value: 1}},
		{"union not union", presentation.UnionOf(presentation.C("a", nil)), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Marshal(tt.typ, tt.v); err == nil {
				t.Error("expected encode failure")
			}
		})
	}
}

func TestDecodeBadUnionTag(t *testing.T) {
	u := presentation.UnionOf(presentation.C("a", nil), presentation.C("b", nil))
	w := NewWriter(4)
	w.Uint32(9) // only 2 cases
	if _, err := Unmarshal(u, w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad union tag: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeTruncatedStruct(t *testing.T) {
	data, err := Marshal(gpsType, gpsValue())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 8, 16, 20} {
		if _, err := Unmarshal(gpsType, data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 500; i++ {
		typ := ptest.RandomType(r, 4)
		v := ptest.RandomValue(r, typ)
		data, err := Marshal(typ, v)
		if err != nil {
			t.Fatalf("Marshal %s: %v", typ, err)
		}
		back, err := Unmarshal(typ, data)
		if err != nil {
			t.Fatalf("Unmarshal %s: %v", typ, err)
		}
		if !presentation.EqualValues(v, back) {
			t.Fatalf("round trip mismatch for %s:\n in  %#v\n out %#v", typ, v, back)
		}
	}
}

func TestCompiledMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		typ := ptest.RandomType(r, 4)
		v := ptest.RandomValue(r, typ)
		codec, err := Compile(typ)
		if err != nil {
			t.Fatalf("Compile %s: %v", typ, err)
		}
		genData, err := Marshal(typ, v)
		if err != nil {
			t.Fatal(err)
		}
		cData, err := codec.Marshal(v)
		if err != nil {
			t.Fatalf("codec.Marshal: %v", err)
		}
		if !bytes.Equal(genData, cData) {
			t.Fatalf("compiled and generic encodings differ for %s", typ)
		}
		back, err := codec.Unmarshal(cData)
		if err != nil {
			t.Fatalf("codec.Unmarshal: %v", err)
		}
		if !presentation.EqualValues(v, back) {
			t.Fatalf("compiled round trip mismatch for %s", typ)
		}
	}
}

func TestCompiledErrors(t *testing.T) {
	codec := MustCompile(gpsType)
	if _, err := codec.Marshal(map[string]any{"lat": 1.0}); err == nil {
		t.Error("missing field must fail")
	}
	if _, err := codec.Marshal(42); err == nil {
		t.Error("wrong container must fail")
	}
	data, err := codec.Marshal(gpsValue())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Unmarshal(data[:3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := codec.Unmarshal(append(data, 1)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing: %v", err)
	}
	if codec.Type() != gpsType {
		t.Error("Type() must return compiled descriptor")
	}
}

func TestCompileInvalidType(t *testing.T) {
	if _, err := Compile(presentation.ArrayOf(0, presentation.Int8())); err == nil {
		t.Error("Compile of invalid type must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile must panic on invalid type")
		}
	}()
	MustCompile(presentation.StructOf())
}

func TestCompiledVectorAndUnion(t *testing.T) {
	typ := presentation.MustParse("[]<ping:void,data:{seq:u32,body:bytes}>")
	codec := MustCompile(typ)
	v := []any{
		presentation.Union{Case: "ping"},
		presentation.Union{Case: "data", Value: map[string]any{"seq": uint32(7), "body": []byte{1, 2}}},
	}
	data, err := codec.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !presentation.EqualValues(v, back) {
		t.Fatalf("mismatch: %#v", back)
	}
	// Bad union tag through the compiled path.
	w := NewWriter(8)
	w.Uint32(1) // one element
	w.Uint32(5) // bad tag
	if _, err := codec.Unmarshal(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad tag via codec: %v", err)
	}
}

func TestTypeCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		typ := ptest.RandomType(r, 4)
		data := MarshalType(typ)
		back, err := UnmarshalType(data)
		if err != nil {
			t.Fatalf("UnmarshalType: %v", err)
		}
		if !typ.Equal(back) {
			t.Fatalf("type round trip mismatch: %s vs %s", typ, back)
		}
	}
}

func TestTypeCodecErrors(t *testing.T) {
	w := NewWriter(16)
	w.String("not-a-type")
	if _, err := UnmarshalType(w.Bytes()); err == nil {
		t.Error("bad signature must fail")
	}
	if _, err := UnmarshalType([]byte{0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated type: %v", err)
	}
	data := MarshalType(presentation.Float64())
	if _, err := UnmarshalType(append(data, 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing type bytes: %v", err)
	}
}

func TestEncodingPluggability(t *testing.T) {
	// F4: the same canonical value travels through any registered
	// Encoding implementation unchanged.
	encodings := []Encoding{Binary{}, Debug{}}
	r := rand.New(rand.NewSource(31))
	for _, enc := range encodings {
		t.Run(enc.Name(), func(t *testing.T) {
			for i := 0; i < 100; i++ {
				typ := ptest.RandomType(r, 3)
				v := ptest.RandomValue(r, typ)
				data, err := enc.Marshal(typ, v)
				if err != nil {
					t.Fatalf("%s Marshal %s: %v", enc.Name(), typ, err)
				}
				back, err := enc.Unmarshal(typ, data)
				if err != nil {
					t.Fatalf("%s Unmarshal %s: %v", enc.Name(), typ, err)
				}
				if !equalLoose(v, back) {
					t.Fatalf("%s round trip mismatch for %s:\n in  %#v\n out %#v", enc.Name(), typ, v, back)
				}
			}
		})
	}
}

// equalLoose is EqualValues except empty bytes compare equal to nil bytes
// (the JSON debug path decodes empty base64 as empty non-nil slice).
func equalLoose(a, b any) bool {
	if ab, ok := a.([]byte); ok {
		if bb, ok := b.([]byte); ok {
			return bytes.Equal(ab, bb)
		}
		return false
	}
	switch x := a.(type) {
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !equalLoose(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		y, ok := b.(map[string]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if !equalLoose(v, y[k]) {
				return false
			}
		}
		return true
	case presentation.Union:
		y, ok := b.(presentation.Union)
		if !ok {
			return false
		}
		return x.Case == y.Case && equalLoose(x.Value, y.Value)
	default:
		return presentation.EqualValues(a, b)
	}
}

func TestDebugEncodingShape(t *testing.T) {
	enc := Debug{}
	data, err := enc.Marshal(gpsType, gpsValue())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"lat"`, `"lon"`, `"alt"`, `"fix"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("debug encoding missing %s: %s", want, data)
		}
	}
	if _, err := enc.Unmarshal(gpsType, []byte(`{"lat":1`)); err == nil {
		t.Error("bad json must fail")
	}
	if _, err := enc.Unmarshal(gpsType, []byte(`{"lat":1,"lon":2,"alt":3}`)); err == nil {
		t.Error("missing field must fail")
	}
	if _, err := enc.Unmarshal(presentation.Uint8(), []byte(`1.5`)); err == nil {
		t.Error("fractional int must fail")
	}
	if _, err := enc.Marshal(gpsType, 42); err == nil {
		t.Error("non-canonical value must fail")
	}
}

func TestDebugEncodingIDs(t *testing.T) {
	if (Binary{}).ID() == (Debug{}).ID() {
		t.Error("encoding IDs must be distinct")
	}
	if (Binary{}).Name() == (Debug{}).Name() {
		t.Error("encoding names must be distinct")
	}
}

func TestNaNAndInfRoundTrip(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0} {
		data, err := Marshal(presentation.Float64(), v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(presentation.Float64(), data)
		if err != nil {
			t.Fatal(err)
		}
		got := back.(float64)
		if math.IsNaN(v) != math.IsNaN(got) || (!math.IsNaN(v) && got != v) {
			t.Errorf("float64 %v -> %v", v, got)
		}
	}
}
