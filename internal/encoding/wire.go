// Package encoding implements the PEPt "Encoding" subsystem (§6 of the
// paper): the representation of presentation-layer data on the wire.
//
// The default wire format is a compact big-endian binary encoding in the
// spirit of CDR: fixed-width scalars, u32 length prefixes for strings, byte
// sequences and vectors, struct fields in declaration order, and a u32 case
// tag for unions. The package also provides compiled codecs (closures
// specialized per type, the fast path measured in experiment E6) and an
// alternative self-describing debug encoding to demonstrate PEPt
// pluggability (F4).
package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Limits protect receivers from hostile or corrupt length prefixes.
const (
	// MaxSequenceLen bounds decoded string/bytes/vector lengths.
	MaxSequenceLen = 64 << 20
)

// Sentinel errors for decode failures.
var (
	// ErrTruncated reports input shorter than the format requires.
	ErrTruncated = errors.New("truncated input")
	// ErrCorrupt reports structurally invalid input (bad tag, oversized
	// length prefix, trailing bytes).
	ErrCorrupt = errors.New("corrupt input")
)

// Writer appends big-endian primitives to a byte slice. The zero value is
// ready to use; Use Reset to reuse the buffer across messages.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Reset truncates the buffer, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len reports the bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the accumulated buffer. The slice aliases the writer's
// storage; callers that retain it across Reset must copy.
func (w *Writer) Bytes() []byte { return w.buf }

// Bool writes one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Uint8 writes one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 writes two big-endian bytes.
func (w *Writer) Uint16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// Uint32 writes four big-endian bytes.
func (w *Writer) Uint32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// Uint64 writes eight big-endian bytes.
func (w *Writer) Uint64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Int8 writes one byte, two's complement.
func (w *Writer) Int8(v int8) { w.Uint8(uint8(v)) }

// Int16 writes two bytes, two's complement.
func (w *Writer) Int16(v int16) { w.Uint16(uint16(v)) }

// Int32 writes four bytes, two's complement.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Int64 writes eight bytes, two's complement.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float32 writes an IEEE-754 single.
func (w *Writer) Float32(v float32) { w.Uint32(math.Float32bits(v)) }

// Float64 writes an IEEE-754 double.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// String writes a u32 length prefix then the raw bytes.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes_ writes a u32 length prefix then the raw bytes. (Named with a
// trailing underscore because Bytes returns the buffer.)
func (w *Writer) Bytes_(b []byte) {
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader consumes big-endian primitives from a byte slice. It accumulates
// the first error; once failed, every subsequent read returns zero values,
// so call Err once after a batch of reads.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader returns a reader over data. The reader does not copy; the caller
// must not mutate data while reading.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.data) - r.pos }

// Pos reports the current offset.
func (r *Reader) Pos() int { return r.pos }

// ExpectEOF sets ErrCorrupt if unread bytes remain.
func (r *Reader) ExpectEOF() error {
	if r.err == nil && r.pos != len(r.data) {
		r.err = fmt.Errorf("encoding: %d trailing bytes: %w", len(r.data)-r.pos, ErrCorrupt)
	}
	return r.err
}

func (r *Reader) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("encoding: need %d bytes at %d of %d: %w", n, r.pos, len(r.data), ErrTruncated)
		return true
	}
	return false
}

// Bool reads one byte; any nonzero value is true.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

// Uint16 reads two big-endian bytes.
func (r *Reader) Uint16() uint16 {
	if r.fail(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

// Uint32 reads four big-endian bytes.
func (r *Reader) Uint32() uint32 {
	if r.fail(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

// Uint64 reads eight big-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.fail(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

// Int8 reads one byte, two's complement.
func (r *Reader) Int8() int8 { return int8(r.Uint8()) }

// Int16 reads two bytes, two's complement.
func (r *Reader) Int16() int16 { return int16(r.Uint16()) }

// Int32 reads four bytes, two's complement.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Int64 reads eight bytes, two's complement.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float32 reads an IEEE-754 single.
func (r *Reader) Float32() float32 { return math.Float32frombits(r.Uint32()) }

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// seqLen reads and sanity-checks a u32 length prefix.
func (r *Reader) seqLen() int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if n > MaxSequenceLen {
		r.err = fmt.Errorf("encoding: sequence length %d exceeds %d: %w", n, MaxSequenceLen, ErrCorrupt)
		return 0
	}
	if int(n) > r.Remaining() {
		// A length prefix larger than the remaining input is corrupt
		// regardless of element width; fail early with a clear error.
		r.err = fmt.Errorf("encoding: sequence length %d exceeds remaining %d bytes: %w", n, r.Remaining(), ErrTruncated)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.seqLen()
	if r.err != nil || r.fail(n) {
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// RawBytes reads a u32 length-prefixed byte sequence without copying. The
// result aliases the input; callers that retain it must copy. It applies
// the same length sanity checks as String/BytesCopy but allocates nothing,
// which is what the zero-allocation frame decode path needs.
func (r *Reader) RawBytes() []byte {
	n := r.seqLen()
	if r.err != nil || r.fail(n) {
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// BytesCopy reads a length-prefixed byte sequence into fresh storage.
func (r *Reader) BytesCopy() []byte {
	n := r.seqLen()
	if r.err != nil || r.fail(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.pos:])
	r.pos += n
	return out
}

// Raw reads n bytes without copying. The result aliases the input.
func (r *Reader) Raw(n int) []byte {
	if n < 0 {
		r.err = fmt.Errorf("encoding: negative raw length %d: %w", n, ErrCorrupt)
		return nil
	}
	if r.fail(n) {
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// VectorLen reads a u32 element-count prefix for vectors, bounding it by the
// remaining input (each element takes at least one byte).
func (r *Reader) VectorLen() int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if n > MaxSequenceLen {
		r.err = fmt.Errorf("encoding: vector length %d exceeds %d: %w", n, MaxSequenceLen, ErrCorrupt)
		return 0
	}
	if int(n) > r.Remaining() {
		// Every element encodes to at least one byte, so an element
		// count beyond the remaining input is corrupt; rejecting here
		// prevents huge speculative allocations.
		r.err = fmt.Errorf("encoding: vector length %d exceeds remaining %d bytes: %w", n, r.Remaining(), ErrTruncated)
		return 0
	}
	return int(n)
}
