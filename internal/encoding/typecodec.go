package encoding

import (
	"fmt"

	"uavmw/internal/presentation"
)

// Type descriptors travel inside announcement messages so containers can
// verify payload compatibility across nodes (§3 "Name management"). The wire
// form reuses the canonical signature string: it is compact, human-debuggable
// in packet dumps, and the parser already rejects malformed input. A
// fingerprint accompanies it for cheap comparison.

// EncodeType appends the wire form of a type descriptor to w.
func EncodeType(w *Writer, t *presentation.Type) {
	w.String(t.String())
}

// DecodeType reads a type descriptor from r.
func DecodeType(r *Reader) (*presentation.Type, error) {
	sig := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	t, err := presentation.Parse(sig)
	if err != nil {
		return nil, fmt.Errorf("encoding: bad type signature %q: %w", sig, err)
	}
	return t, nil
}

// MarshalType encodes a descriptor into a fresh byte slice.
func MarshalType(t *presentation.Type) []byte {
	w := NewWriter(len(t.String()) + 4)
	EncodeType(w, t)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// UnmarshalType decodes a full buffer into a descriptor.
func UnmarshalType(data []byte) (*presentation.Type, error) {
	r := NewReader(data)
	t, err := DecodeType(r)
	if err != nil {
		return nil, err
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, err
	}
	return t, nil
}
