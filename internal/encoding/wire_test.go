package encoding

import (
	"errors"
	"math"
	"testing"
)

func TestWriterReaderScalars(t *testing.T) {
	w := NewWriter(64)
	w.Bool(true)
	w.Bool(false)
	w.Int8(-5)
	w.Int16(-300)
	w.Int32(-70000)
	w.Int64(math.MinInt64)
	w.Uint8(200)
	w.Uint16(60000)
	w.Uint32(4000000000)
	w.Uint64(math.MaxUint64)
	w.Float32(1.5)
	w.Float64(-2.25)
	w.String("hola")
	w.Bytes_([]byte{9, 8, 7})

	r := NewReader(w.Bytes())
	if !r.Bool() || r.Bool() {
		t.Error("bool round trip failed")
	}
	if got := r.Int8(); got != -5 {
		t.Errorf("int8 = %d", got)
	}
	if got := r.Int16(); got != -300 {
		t.Errorf("int16 = %d", got)
	}
	if got := r.Int32(); got != -70000 {
		t.Errorf("int32 = %d", got)
	}
	if got := r.Int64(); got != math.MinInt64 {
		t.Errorf("int64 = %d", got)
	}
	if got := r.Uint8(); got != 200 {
		t.Errorf("uint8 = %d", got)
	}
	if got := r.Uint16(); got != 60000 {
		t.Errorf("uint16 = %d", got)
	}
	if got := r.Uint32(); got != 4000000000 {
		t.Errorf("uint32 = %d", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("uint64 = %d", got)
	}
	if got := r.Float32(); got != 1.5 {
		t.Errorf("float32 = %v", got)
	}
	if got := r.Float64(); got != -2.25 {
		t.Errorf("float64 = %v", got)
	}
	if got := r.String(); got != "hola" {
		t.Errorf("string = %q", got)
	}
	b := r.BytesCopy()
	if len(b) != 3 || b[0] != 9 {
		t.Errorf("bytes = %v", b)
	}
	if err := r.ExpectEOF(); err != nil {
		t.Errorf("ExpectEOF: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(16)
	w.Uint32(7)
	data := w.Bytes()

	r := NewReader(data[:2])
	r.Uint32()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", r.Err())
	}
	// Error is sticky; further reads return zero without panicking.
	if got := r.Uint64(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
	if r.Uint8() != 0 || r.String() != "" || r.BytesCopy() != nil {
		t.Error("sticky error must zero all reads")
	}
}

func TestReaderStringTruncated(t *testing.T) {
	w := NewWriter(16)
	w.String("hello")
	data := w.Bytes()
	r := NewReader(data[:6]) // prefix says 5 but only 2 payload bytes present
	_ = r.String()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", r.Err())
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Uint8()
	if err := r.ExpectEOF(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("want ErrCorrupt, got %v", err)
	}
}

func TestReaderOversizedPrefixes(t *testing.T) {
	// A length prefix far beyond the buffer must fail without allocating.
	w := NewWriter(8)
	w.Uint32(0xFFFFFFF0)
	r := NewReader(w.Bytes())
	_ = r.String()
	if r.Err() == nil {
		t.Error("oversized string prefix must fail")
	}

	r2 := NewReader(w.Bytes())
	_ = r2.VectorLen()
	if r2.Err() == nil {
		t.Error("oversized vector prefix must fail")
	}
}

func TestReaderRaw(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	b := r.Raw(2)
	if len(b) != 2 || b[1] != 2 {
		t.Errorf("Raw = %v", b)
	}
	if r.Remaining() != 2 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
	if r.Raw(-1) != nil || r.Err() == nil {
		t.Error("negative Raw must fail")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.Uint8(5)
	if w.Bytes()[0] != 5 {
		t.Error("write after Reset broken")
	}
}

func TestReaderPos(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 1, 2})
	r.Uint32()
	if r.Pos() != 4 {
		t.Errorf("Pos = %d", r.Pos())
	}
}
