package encoding

import (
	"fmt"

	"uavmw/internal/presentation"
)

// Codec is a compiled encoder/decoder specialized for one type. Compilation
// walks the descriptor once and builds a tree of closures, removing the
// per-value kind dispatch of the generic path. Experiment E6 benches the
// compiled path against the generic one.
type Codec struct {
	typ *presentation.Type
	enc encFunc
	dec decFunc
}

type encFunc func(w *Writer, v any) error

type decFunc func(r *Reader) any

// Compile builds a codec for t. The descriptor must validate.
func Compile(t *presentation.Type) (*Codec, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	enc, dec := compile(t)
	return &Codec{typ: t, enc: enc, dec: dec}, nil
}

// MustCompile is Compile that panics on error, for static codec variables.
func MustCompile(t *presentation.Type) *Codec {
	c, err := Compile(t)
	if err != nil {
		panic(err)
	}
	return c
}

// Type returns the descriptor the codec was compiled from.
func (c *Codec) Type() *presentation.Type { return c.typ }

// Encode appends the wire form of canonical value v to w.
func (c *Codec) Encode(w *Writer, v any) error { return c.enc(w, v) }

// Decode reads one canonical value from r.
func (c *Codec) Decode(r *Reader) (any, error) {
	v := c.dec(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// Marshal encodes into a fresh byte slice.
func (c *Codec) Marshal(v any) ([]byte, error) {
	w := NewWriter(64)
	if err := c.enc(w, v); err != nil {
		return nil, err
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out, nil
}

// Unmarshal decodes a full buffer, rejecting trailing bytes.
func (c *Codec) Unmarshal(data []byte) (any, error) {
	r := NewReader(data)
	v := c.dec(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, err
	}
	return v, nil
}

func compile(t *presentation.Type) (encFunc, decFunc) {
	switch t.Kind() {
	case presentation.KindVoid:
		return func(w *Writer, v any) error {
				if v != nil {
					return fmt.Errorf("encoding: void carries %T: %w", v, presentation.ErrTypeMismatch)
				}
				return nil
			},
			func(r *Reader) any { return nil }
	case presentation.KindBool:
		return scalarCodec(t, (*Writer).Bool, (*Reader).Bool)
	case presentation.KindInt8:
		return scalarCodec(t, (*Writer).Int8, (*Reader).Int8)
	case presentation.KindInt16:
		return scalarCodec(t, (*Writer).Int16, (*Reader).Int16)
	case presentation.KindInt32:
		return scalarCodec(t, (*Writer).Int32, (*Reader).Int32)
	case presentation.KindInt64:
		return scalarCodec(t, (*Writer).Int64, (*Reader).Int64)
	case presentation.KindUint8:
		return scalarCodec(t, (*Writer).Uint8, (*Reader).Uint8)
	case presentation.KindUint16:
		return scalarCodec(t, (*Writer).Uint16, (*Reader).Uint16)
	case presentation.KindUint32:
		return scalarCodec(t, (*Writer).Uint32, (*Reader).Uint32)
	case presentation.KindUint64:
		return scalarCodec(t, (*Writer).Uint64, (*Reader).Uint64)
	case presentation.KindFloat32:
		return scalarCodec(t, (*Writer).Float32, (*Reader).Float32)
	case presentation.KindFloat64:
		return scalarCodec(t, (*Writer).Float64, (*Reader).Float64)
	case presentation.KindString:
		return scalarCodec(t, (*Writer).String, (*Reader).String)
	case presentation.KindBytes:
		return scalarCodec(t, (*Writer).Bytes_, (*Reader).BytesCopy)
	case presentation.KindArray:
		elemEnc, elemDec := compile(t.Elem())
		n := t.Len()
		return func(w *Writer, v any) error {
				s, ok := v.([]any)
				if !ok {
					return encTypeErr(t, v)
				}
				if len(s) != n {
					return fmt.Errorf("encoding: array wants %d elements, got %d: %w",
						n, len(s), presentation.ErrTypeMismatch)
				}
				for i, e := range s {
					if err := elemEnc(w, e); err != nil {
						return fmt.Errorf("element %d: %w", i, err)
					}
				}
				return nil
			},
			func(r *Reader) any {
				out := make([]any, n)
				for i := range out {
					out[i] = elemDec(r)
					if r.err != nil {
						return nil
					}
				}
				return out
			}
	case presentation.KindVector:
		elemEnc, elemDec := compile(t.Elem())
		return func(w *Writer, v any) error {
				s, ok := v.([]any)
				if !ok {
					return encTypeErr(t, v)
				}
				w.Uint32(uint32(len(s)))
				for i, e := range s {
					if err := elemEnc(w, e); err != nil {
						return fmt.Errorf("element %d: %w", i, err)
					}
				}
				return nil
			},
			func(r *Reader) any {
				n := r.VectorLen()
				if r.err != nil {
					return nil
				}
				out := make([]any, n)
				for i := range out {
					out[i] = elemDec(r)
					if r.err != nil {
						return nil
					}
				}
				return out
			}
	case presentation.KindStruct:
		fields := t.Fields()
		names := make([]string, len(fields))
		encs := make([]encFunc, len(fields))
		decs := make([]decFunc, len(fields))
		for i, f := range fields {
			names[i] = f.Name
			encs[i], decs[i] = compile(f.Type)
		}
		return func(w *Writer, v any) error {
				m, ok := v.(map[string]any)
				if !ok {
					return encTypeErr(t, v)
				}
				for i, name := range names {
					fv, present := m[name]
					if !present {
						return fmt.Errorf("encoding: missing field %q: %w", name, presentation.ErrTypeMismatch)
					}
					if err := encs[i](w, fv); err != nil {
						return fmt.Errorf("field %q: %w", name, err)
					}
				}
				return nil
			},
			func(r *Reader) any {
				m := make(map[string]any, len(names))
				for i, name := range names {
					m[name] = decs[i](r)
					if r.err != nil {
						return nil
					}
				}
				return m
			}
	case presentation.KindUnion:
		cases := t.Cases()
		names := make([]string, len(cases))
		encs := make([]encFunc, len(cases))
		decs := make([]decFunc, len(cases))
		index := make(map[string]int, len(cases))
		for i, c := range cases {
			names[i] = c.Name
			index[c.Name] = i
			encs[i], decs[i] = compile(c.Type)
		}
		return func(w *Writer, v any) error {
				u, ok := v.(presentation.Union)
				if !ok {
					return encTypeErr(t, v)
				}
				idx, known := index[u.Case]
				if !known {
					return fmt.Errorf("encoding: unknown case %q: %w", u.Case, presentation.ErrTypeMismatch)
				}
				w.Uint32(uint32(idx))
				if err := encs[idx](w, u.Value); err != nil {
					return fmt.Errorf("case %q: %w", u.Case, err)
				}
				return nil
			},
			func(r *Reader) any {
				tag := r.Uint32()
				if r.err != nil {
					return nil
				}
				if int(tag) >= len(names) {
					r.err = fmt.Errorf("encoding: union tag %d out of %d cases: %w", tag, len(names), ErrCorrupt)
					return nil
				}
				return presentation.Union{Case: names[tag], Value: decs[tag](r)}
			}
	default:
		// Unreachable after Validate; keep a defensive failure.
		return func(w *Writer, v any) error {
				return fmt.Errorf("encoding: unknown kind %v: %w", t.Kind(), presentation.ErrInvalidType)
			},
			func(r *Reader) any {
				r.err = fmt.Errorf("encoding: unknown kind %v: %w", t.Kind(), presentation.ErrInvalidType)
				return nil
			}
	}
}

// scalarCodec builds the closure pair for a primitive kind from the Writer
// and Reader method pair.
func scalarCodec[T any](t *presentation.Type, write func(*Writer, T), read func(*Reader) T) (encFunc, decFunc) {
	return func(w *Writer, v any) error {
			x, ok := v.(T)
			if !ok {
				return encTypeErr(t, v)
			}
			write(w, x)
			return nil
		},
		func(r *Reader) any { return read(r) }
}
