package encoding

import (
	"fmt"

	"uavmw/internal/presentation"
)

// EncodeValue appends the wire form of the canonical value v (of type t) to
// w. The value must already be canonical (see presentation.Check /
// presentation.Coerce); a non-canonical value yields an error, never a
// partial write rollback — callers encode into per-message writers.
func EncodeValue(w *Writer, t *presentation.Type, v any) error {
	switch t.Kind() {
	case presentation.KindVoid:
		if v != nil {
			return fmt.Errorf("encoding: void carries %T: %w", v, presentation.ErrTypeMismatch)
		}
		return nil
	case presentation.KindBool:
		b, ok := v.(bool)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Bool(b)
		return nil
	case presentation.KindInt8:
		x, ok := v.(int8)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Int8(x)
		return nil
	case presentation.KindInt16:
		x, ok := v.(int16)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Int16(x)
		return nil
	case presentation.KindInt32:
		x, ok := v.(int32)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Int32(x)
		return nil
	case presentation.KindInt64:
		x, ok := v.(int64)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Int64(x)
		return nil
	case presentation.KindUint8:
		x, ok := v.(uint8)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Uint8(x)
		return nil
	case presentation.KindUint16:
		x, ok := v.(uint16)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Uint16(x)
		return nil
	case presentation.KindUint32:
		x, ok := v.(uint32)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Uint32(x)
		return nil
	case presentation.KindUint64:
		x, ok := v.(uint64)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Uint64(x)
		return nil
	case presentation.KindFloat32:
		x, ok := v.(float32)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Float32(x)
		return nil
	case presentation.KindFloat64:
		x, ok := v.(float64)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Float64(x)
		return nil
	case presentation.KindString:
		s, ok := v.(string)
		if !ok {
			return encTypeErr(t, v)
		}
		w.String(s)
		return nil
	case presentation.KindBytes:
		b, ok := v.([]byte)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Bytes_(b)
		return nil
	case presentation.KindArray:
		s, ok := v.([]any)
		if !ok {
			return encTypeErr(t, v)
		}
		if len(s) != t.Len() {
			return fmt.Errorf("encoding: array wants %d elements, got %d: %w",
				t.Len(), len(s), presentation.ErrTypeMismatch)
		}
		for i, e := range s {
			if err := EncodeValue(w, t.Elem(), e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case presentation.KindVector:
		s, ok := v.([]any)
		if !ok {
			return encTypeErr(t, v)
		}
		w.Uint32(uint32(len(s)))
		for i, e := range s {
			if err := EncodeValue(w, t.Elem(), e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case presentation.KindStruct:
		m, ok := v.(map[string]any)
		if !ok {
			return encTypeErr(t, v)
		}
		for _, f := range t.Fields() {
			fv, present := m[f.Name]
			if !present {
				return fmt.Errorf("encoding: missing field %q: %w", f.Name, presentation.ErrTypeMismatch)
			}
			if err := EncodeValue(w, f.Type, fv); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
		return nil
	case presentation.KindUnion:
		u, ok := v.(presentation.Union)
		if !ok {
			return encTypeErr(t, v)
		}
		idx := t.CaseIndex(u.Case)
		if idx < 0 {
			return fmt.Errorf("encoding: unknown case %q: %w", u.Case, presentation.ErrTypeMismatch)
		}
		w.Uint32(uint32(idx))
		if err := EncodeValue(w, t.Cases()[idx].Type, u.Value); err != nil {
			return fmt.Errorf("case %q: %w", u.Case, err)
		}
		return nil
	default:
		return fmt.Errorf("encoding: unknown kind %v: %w", t.Kind(), presentation.ErrInvalidType)
	}
}

func encTypeErr(t *presentation.Type, v any) error {
	return fmt.Errorf("encoding: cannot encode %T as %s: %w", v, t, presentation.ErrTypeMismatch)
}

// DecodeValue reads one value of type t from r, returning it in canonical
// form. Errors are reported through both the return and r.Err().
func DecodeValue(r *Reader, t *presentation.Type) (any, error) {
	v := decodeValue(r, t)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

func decodeValue(r *Reader, t *presentation.Type) any {
	switch t.Kind() {
	case presentation.KindVoid:
		return nil
	case presentation.KindBool:
		return r.Bool()
	case presentation.KindInt8:
		return r.Int8()
	case presentation.KindInt16:
		return r.Int16()
	case presentation.KindInt32:
		return r.Int32()
	case presentation.KindInt64:
		return r.Int64()
	case presentation.KindUint8:
		return r.Uint8()
	case presentation.KindUint16:
		return r.Uint16()
	case presentation.KindUint32:
		return r.Uint32()
	case presentation.KindUint64:
		return r.Uint64()
	case presentation.KindFloat32:
		return r.Float32()
	case presentation.KindFloat64:
		return r.Float64()
	case presentation.KindString:
		return r.String()
	case presentation.KindBytes:
		return r.BytesCopy()
	case presentation.KindArray:
		out := make([]any, t.Len())
		for i := range out {
			out[i] = decodeValue(r, t.Elem())
			if r.Err() != nil {
				return nil
			}
		}
		return out
	case presentation.KindVector:
		n := r.VectorLen()
		if r.Err() != nil {
			return nil
		}
		out := make([]any, n)
		for i := range out {
			out[i] = decodeValue(r, t.Elem())
			if r.Err() != nil {
				return nil
			}
		}
		return out
	case presentation.KindStruct:
		fields := t.Fields()
		m := make(map[string]any, len(fields))
		for _, f := range fields {
			m[f.Name] = decodeValue(r, f.Type)
			if r.Err() != nil {
				return nil
			}
		}
		return m
	case presentation.KindUnion:
		tag := r.Uint32()
		if r.Err() != nil {
			return nil
		}
		cases := t.Cases()
		if int(tag) >= len(cases) {
			r.err = fmt.Errorf("encoding: union tag %d out of %d cases: %w", tag, len(cases), ErrCorrupt)
			return nil
		}
		c := cases[tag]
		return presentation.Union{Case: c.Name, Value: decodeValue(r, c.Type)}
	default:
		r.err = fmt.Errorf("encoding: unknown kind %v: %w", t.Kind(), presentation.ErrInvalidType)
		return nil
	}
}

// Marshal encodes a canonical value into a fresh byte slice.
func Marshal(t *presentation.Type, v any) ([]byte, error) {
	w := NewWriter(64)
	if err := EncodeValue(w, t, v); err != nil {
		return nil, err
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out, nil
}

// Unmarshal decodes a full buffer into a canonical value, rejecting trailing
// bytes.
func Unmarshal(t *presentation.Type, data []byte) (any, error) {
	r := NewReader(data)
	v, err := DecodeValue(r, t)
	if err != nil {
		return nil, err
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, err
	}
	return v, nil
}
