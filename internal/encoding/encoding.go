package encoding

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"uavmw/internal/presentation"
)

// Encoding is the pluggable PEPt encoding subsystem: a strategy for turning
// canonical presentation values into bytes and back. The container selects
// an Encoding per deployment; both ends must agree (the encoding ID travels
// in the protocol frame header).
type Encoding interface {
	// Name identifies the encoding for diagnostics.
	Name() string
	// ID is the one-byte wire identifier carried in frame headers.
	ID() uint8
	// Marshal encodes a canonical value of type t.
	Marshal(t *presentation.Type, v any) ([]byte, error)
	// Unmarshal decodes a complete buffer into a canonical value of type t.
	Unmarshal(t *presentation.Type, data []byte) (any, error)
}

// Wire encoding IDs.
const (
	IDBinary uint8 = 1
	IDDebug  uint8 = 2
)

// Binary is the default compact big-endian encoding.
type Binary struct{}

var _ Encoding = Binary{}

// Name implements Encoding.
func (Binary) Name() string { return "binary" }

// ID implements Encoding.
func (Binary) ID() uint8 { return IDBinary }

// Marshal implements Encoding.
func (Binary) Marshal(t *presentation.Type, v any) ([]byte, error) {
	return Marshal(t, v)
}

// Unmarshal implements Encoding.
func (Binary) Unmarshal(t *presentation.Type, data []byte) (any, error) {
	return Unmarshal(t, data)
}

// Debug is a self-describing JSON encoding for development and ground-side
// tooling. It trades size and speed for grep-ability; it exists chiefly to
// demonstrate that PEPt layers plug (experiment F4) exactly as §6 claims.
type Debug struct{}

var _ Encoding = Debug{}

// Name implements Encoding.
func (Debug) Name() string { return "debug-json" }

// ID implements Encoding.
func (Debug) ID() uint8 { return IDDebug }

// Marshal implements Encoding.
func (Debug) Marshal(t *presentation.Type, v any) ([]byte, error) {
	if err := presentation.Check(t, v); err != nil {
		return nil, err
	}
	return json.Marshal(debugWrap(t, v))
}

// Unmarshal implements Encoding.
func (Debug) Unmarshal(t *presentation.Type, data []byte) (any, error) {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("encoding: debug json: %w", err)
	}
	return debugUnwrap(t, raw)
}

// debugWrap converts canonical values into JSON-marshalable shapes: []byte
// stays []byte (base64), unions become {"case":..., "value":...} objects,
// and 64-bit integers become strings because JSON numbers are float64 and
// lose precision past 2^53.
func debugWrap(t *presentation.Type, v any) any {
	switch t.Kind() {
	case presentation.KindInt64:
		return strconv.FormatInt(v.(int64), 10)
	case presentation.KindUint64:
		return strconv.FormatUint(v.(uint64), 10)
	case presentation.KindUnion:
		u := v.(presentation.Union)
		idx := t.CaseIndex(u.Case)
		return map[string]any{"case": u.Case, "value": debugWrap(t.Cases()[idx].Type, u.Value)}
	case presentation.KindArray, presentation.KindVector:
		s := v.([]any)
		out := make([]any, len(s))
		for i, e := range s {
			out[i] = debugWrap(t.Elem(), e)
		}
		return out
	case presentation.KindStruct:
		m := v.(map[string]any)
		out := make(map[string]any, len(m))
		for _, f := range t.Fields() {
			out[f.Name] = debugWrap(f.Type, m[f.Name])
		}
		return out
	default:
		return v
	}
}

// debugUnwrap rebuilds canonical values from decoded JSON, coercing the
// float64 numbers JSON produces back into the declared widths.
func debugUnwrap(t *presentation.Type, raw any) (any, error) {
	switch t.Kind() {
	case presentation.KindVoid:
		if raw != nil {
			return nil, fmt.Errorf("encoding: debug void carries %T: %w", raw, presentation.ErrTypeMismatch)
		}
		return nil, nil
	case presentation.KindBytes:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("encoding: debug bytes wants base64 string, got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		out, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("encoding: debug bytes: %w", err)
		}
		return out, nil
	case presentation.KindUnion:
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("encoding: debug union wants object, got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		name, ok := m["case"].(string)
		if !ok {
			return nil, fmt.Errorf("encoding: debug union missing case: %w", presentation.ErrTypeMismatch)
		}
		idx := t.CaseIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("encoding: debug union unknown case %q: %w", name, presentation.ErrTypeMismatch)
		}
		val, err := debugUnwrap(t.Cases()[idx].Type, m["value"])
		if err != nil {
			return nil, err
		}
		return presentation.Union{Case: name, Value: val}, nil
	case presentation.KindArray, presentation.KindVector:
		s, ok := raw.([]any)
		if !ok {
			if raw == nil && t.Kind() == presentation.KindVector {
				return []any{}, nil
			}
			return nil, fmt.Errorf("encoding: debug sequence wants array, got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		out := make([]any, len(s))
		for i, e := range s {
			v, err := debugUnwrap(t.Elem(), e)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = v
		}
		if t.Kind() == presentation.KindArray && len(out) != t.Len() {
			return nil, fmt.Errorf("encoding: debug array wants %d elements, got %d: %w",
				t.Len(), len(out), presentation.ErrTypeMismatch)
		}
		return out, nil
	case presentation.KindStruct:
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("encoding: debug struct wants object, got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		out := make(map[string]any, len(t.Fields()))
		for _, f := range t.Fields() {
			fv, present := m[f.Name]
			if !present {
				return nil, fmt.Errorf("encoding: debug struct missing field %q: %w", f.Name, presentation.ErrTypeMismatch)
			}
			v, err := debugUnwrap(f.Type, fv)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", f.Name, err)
			}
			out[f.Name] = v
		}
		return out, nil
	case presentation.KindInt64:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("encoding: debug i64 wants string, got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		x, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("encoding: debug i64: %w", err)
		}
		return x, nil
	case presentation.KindUint64:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("encoding: debug u64 wants string, got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		x, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("encoding: debug u64: %w", err)
		}
		return x, nil
	case presentation.KindBool:
		b, ok := raw.(bool)
		if !ok {
			return nil, fmt.Errorf("encoding: debug bool got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		return b, nil
	case presentation.KindString:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("encoding: debug string got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		return s, nil
	default:
		f, ok := raw.(float64)
		if !ok {
			return nil, fmt.Errorf("encoding: debug number got %T: %w", raw, presentation.ErrTypeMismatch)
		}
		return debugNumber(t, f)
	}
}

func debugNumber(t *presentation.Type, f float64) (any, error) {
	switch t.Kind() {
	case presentation.KindFloat32:
		return float32(f), nil
	case presentation.KindFloat64:
		return f, nil
	}
	if f != math.Trunc(f) {
		return nil, fmt.Errorf("encoding: debug %s got fractional %v: %w", t, f, presentation.ErrTypeMismatch)
	}
	// Large unsigned values exceed int64; route them through uint64.
	if f >= math.MaxInt64 {
		v, err := presentation.Coerce(t, uint64(f))
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	v, err := presentation.Coerce(t, int64(f))
	if err != nil {
		return nil, err
	}
	return v, nil
}
