package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Virtual is the discrete-event clock. Time is a number guarded by a
// mutex; pending wake-ups live in an event heap ordered by (instant,
// insertion seq). The clock tracks how many goroutines are registered
// with it (workers) and how many of those are parked on it (blocked);
// whenever every registered goroutine is parked, the goroutine that
// parked last pops the earliest event, jumps time to it, and fires it —
// waking exactly one sleeper, whose parked count is released at fire
// time so time can never advance past a runnable goroutine.
//
// Goroutines not registered (via Go or Run) may still park on the clock:
// the park temporarily registers them, so their wake-up is ordered like
// any other — but while they are runnable the clock cannot see them, and
// time may advance underneath their work. Register anything long-lived.
//
// Event fire functions run with the clock lock held; they only mutate
// clock-guarded state, close channels, or spawn goroutines — never call
// back into user code synchronously or take other locks.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	events  eventHeap
	workers int           // registered goroutines (incl. temporary park registrations)
	blocked int           // registered goroutines currently parked on the clock
	reg     map[int64]int // registration count per goroutine id
}

// DefaultEpoch is where a Virtual clock starts unless NewVirtualAt is
// used: an arbitrary fixed instant, so two runs of the same scenario see
// identical timestamps.
var DefaultEpoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock at DefaultEpoch.
func NewVirtual() *Virtual { return NewVirtualAt(DefaultEpoch) }

// NewVirtualAt returns a virtual clock whose time starts at start.
func NewVirtualAt(start time.Time) *Virtual {
	return &Virtual{now: start, reg: make(map[int64]int)}
}

var _ Clock = (*Virtual)(nil)

// gid extracts the current goroutine's id from its stack header
// ("goroutine 123 [running]:"). It is how park operations distinguish
// registered callers (account blocked only) from unregistered ones
// (temporarily registered for the park).
func gid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

type event struct {
	at   time.Time
	seq  uint64
	fire func() // runs with v.mu held
	idx  int    // heap index; -1 once popped or removed
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// scheduleLocked arms fire at now+d. Caller holds v.mu.
func (v *Virtual) scheduleLocked(d time.Duration, fire func()) *event {
	if d < 0 {
		d = 0
	}
	return v.scheduleAtLocked(v.now.Add(d), fire)
}

// scheduleAtLocked arms fire at an absolute instant. Caller holds v.mu.
func (v *Virtual) scheduleAtLocked(at time.Time, fire func()) *event {
	v.seq++
	ev := &event{at: at, seq: v.seq, fire: fire}
	heap.Push(&v.events, ev)
	return ev
}

// removeLocked cancels a pending event. Caller holds v.mu.
func (v *Virtual) removeLocked(ev *event) {
	if ev.idx >= 0 {
		heap.Remove(&v.events, ev.idx)
	}
}

// maybeAdvanceLocked fires due events while every registered goroutine
// is parked. Each fire releases at most one sleeper (blocked--), which
// breaks the loop condition until that sleeper parks again — the
// serialization that makes same-instant events deterministic. Caller
// holds v.mu.
func (v *Virtual) maybeAdvanceLocked() {
	for v.workers > 0 && v.blocked >= v.workers && len(v.events) > 0 {
		ev := heap.Pop(&v.events).(*event)
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		ev.fire()
	}
}

// enterParkLocked accounts one goroutine parking on the clock; it
// temporarily registers unregistered callers. Caller holds v.mu and
// passes its gid. The returned temp flag goes back to exitPark.
func (v *Virtual) enterParkLocked(id int64) (temp bool) {
	temp = v.reg[id] == 0
	if temp {
		v.workers++
	}
	v.blocked++
	v.maybeAdvanceLocked()
	return temp
}

// exitPark is the bookkeeping after a park whose blocked count was
// already released (by the event fire or a stop-branch correction).
func (v *Virtual) exitPark(temp bool) {
	v.mu.Lock()
	if temp {
		v.workers--
	}
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Pending reports how many wake-ups are armed (for tests/debugging).
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.events)
}

// Go spawns fn as a goroutine registered with the clock: virtual time
// will not advance while fn is runnable.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.workers++ // counted before spawn so time cannot advance first
	v.mu.Unlock()
	go func() {
		id := gid()
		v.mu.Lock()
		v.reg[id]++
		v.mu.Unlock()
		defer v.unregister(id)
		fn()
	}()
}

// Run registers the calling goroutine for the duration of fn — the
// harness entry point: v.Run(func(){ ...build nodes, sleep, assert... }).
func (v *Virtual) Run(fn func()) {
	id := gid()
	v.mu.Lock()
	v.workers++
	v.reg[id]++
	v.mu.Unlock()
	defer v.unregister(id)
	fn()
}

func (v *Virtual) unregister(id int64) {
	v.mu.Lock()
	if v.reg[id] <= 1 {
		delete(v.reg, id)
	} else {
		v.reg[id]--
	}
	v.workers--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Sleep implements Clock, from registered and unregistered goroutines
// alike.
func (v *Virtual) Sleep(d time.Duration) {
	id := gid()
	ch := make(chan struct{})
	v.mu.Lock()
	v.scheduleLocked(d, func() {
		v.blocked--
		close(ch)
	})
	temp := v.enterParkLocked(id)
	v.mu.Unlock()
	<-ch
	v.exitPark(temp)
}

// sleepStop is SleepStop's virtual arm.
func (v *Virtual) sleepStop(d time.Duration, stop <-chan struct{}) bool {
	id := gid()
	ch := make(chan struct{})
	fired := false
	v.mu.Lock()
	ev := v.scheduleLocked(d, func() {
		fired = true
		v.blocked--
		close(ch)
	})
	temp := v.enterParkLocked(id)
	v.mu.Unlock()
	select {
	case <-ch:
		v.exitPark(temp)
		return true
	case <-stop:
		v.mu.Lock()
		if !fired {
			v.removeLocked(ev)
			v.blocked--
		}
		v.mu.Unlock()
		v.exitPark(temp)
		return false
	}
}

// Blocking marks the caller parked while wait runs, so time may advance
// while it blocks outside the clock. The un-park on return is best
// effort (time may already have advanced past the wake-up); hot loops
// use the managed primitives instead.
func (v *Virtual) Blocking(wait func()) {
	id := gid()
	v.mu.Lock()
	temp := v.enterParkLocked(id)
	v.mu.Unlock()
	wait()
	v.mu.Lock()
	v.blocked--
	v.mu.Unlock()
	v.exitPark(temp)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C()
}

// NewTimer implements Clock: stdlib semantics (capacity-1 channel,
// non-blocking send at fire).
func (v *Virtual) NewTimer(d time.Duration) Timer {
	t := &virtualTimer{v: v, ch: make(chan time.Time, 1)}
	v.mu.Lock()
	t.ev = v.scheduleLocked(d, t.fireChan)
	v.mu.Unlock()
	return t
}

// AfterFunc implements Clock: f runs on its own registered goroutine.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	t := &virtualTimer{v: v, f: f}
	v.mu.Lock()
	t.ev = v.scheduleLocked(d, t.fireFunc)
	v.mu.Unlock()
	return t
}

type virtualTimer struct {
	v  *Virtual
	ch chan time.Time // channel timers
	f  func()         // AfterFunc timers
	ev *event         // pending event; nil once fired/stopped (guarded by v.mu)
}

func (t *virtualTimer) C() <-chan time.Time { return t.ch }

// fireChan runs under v.mu.
func (t *virtualTimer) fireChan() {
	t.ev = nil
	select {
	case t.ch <- t.v.now:
	default:
	}
}

// fireFunc runs under v.mu: the callback gets its own registered
// goroutine, which halts further advancing until it finishes or parks.
func (t *virtualTimer) fireFunc() {
	t.ev = nil
	t.v.workers++
	go func() {
		id := gid()
		t.v.mu.Lock()
		t.v.reg[id]++
		t.v.mu.Unlock()
		defer t.v.unregister(id)
		t.f()
	}()
}

func (t *virtualTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.ev == nil {
		return false
	}
	t.v.removeLocked(t.ev)
	t.ev = nil
	return true
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	active := t.ev != nil
	if active {
		t.v.removeLocked(t.ev)
	}
	fire := t.fireChan
	if t.f != nil {
		fire = t.fireFunc
	}
	t.ev = t.v.scheduleLocked(d, fire)
	return active
}

// NewTicker implements Clock. Cadence is drift-free: the k-th tick fires
// at exactly start + k*d regardless of how late each tick is consumed.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	t := &virtualTicker{v: v, period: d, ch: make(chan time.Time, 1)}
	v.mu.Lock()
	t.next = v.now.Add(d)
	t.ev = v.scheduleAtLocked(t.next, t.fire)
	v.mu.Unlock()
	return t
}

type virtualTicker struct {
	v       *Virtual
	period  time.Duration
	ch      chan time.Time
	next    time.Time
	ev      *event
	waiter  chan struct{} // managed Wait parker
	pending bool          // a tick fired with no waiter parked
	stopped bool
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

// fire runs under v.mu.
func (t *virtualTicker) fire() {
	t.next = t.next.Add(t.period)
	t.ev = t.v.scheduleAtLocked(t.next, t.fire)
	if w := t.waiter; w != nil {
		t.waiter = nil
		t.v.blocked--
		close(w)
		return
	}
	t.pending = true
	select {
	case t.ch <- t.v.now:
	default:
	}
}

func (t *virtualTicker) Stop() {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	t.stopped = true
	if t.ev != nil {
		t.v.removeLocked(t.ev)
		t.ev = nil
	}
}

func (t *virtualTicker) Wait(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return false
	default:
	}
	id := gid()
	v := t.v
	v.mu.Lock()
	if t.stopped {
		v.mu.Unlock()
		return false
	}
	if t.pending {
		t.pending = false
		select {
		case <-t.ch:
		default:
		}
		v.mu.Unlock()
		return true
	}
	w := make(chan struct{})
	t.waiter = w
	temp := v.enterParkLocked(id)
	v.mu.Unlock()
	select {
	case <-w:
		v.exitPark(temp)
		return true
	case <-stop:
		v.mu.Lock()
		if t.waiter == w {
			t.waiter = nil
			v.blocked--
		}
		v.mu.Unlock()
		v.exitPark(temp)
		return false
	}
}
