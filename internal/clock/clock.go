// Package clock is the time plane: every layer that paces, times out,
// sweeps or measures does so through an injected Clock rather than the
// time package, so a whole node graph can run against either wall time
// (Real) or a discrete-event simulated time source (Virtual).
//
// Virtual is the payoff: it advances time only when every goroutine
// registered with it is parked on the clock, so a multi-second mission
// executes in milliseconds of wall time with identical timing semantics —
// the design of time-accurate protocol virtualization applied to the
// middleware's own stack. Determinism follows from the same property:
// same seed, same event order, same wire stats.
//
// Rules for code running under a Virtual clock:
//
//   - Spawn long-lived goroutines with Go (or Virtual.Go) so the clock
//     knows they exist; time never advances while a registered goroutine
//     is runnable.
//   - Park only through clock-managed operations — Sleep, SleepStop,
//     Trigger.Wait, Cond.Wait, Ticker.Wait — whose wake-ups decrement the
//     parked count at fire time, before the sleeper is runnable.
//   - A registered goroutine that must wait on a plain channel (an RPC
//     reply, a WaitGroup) wraps the wait in Blocking so virtual time may
//     advance while it waits. The un-park there is best effort: time can
//     briefly advance past the wake-up, which is why hot loops use the
//     managed primitives instead.
//
// Timer/Ticker channels (C) keep stdlib semantics (capacity-1,
// non-blocking send) for unregistered consumers; registered goroutines
// should prefer the managed waits above.
package clock

import "time"

// Clock is the injected time source.
type Clock interface {
	// Now is the current instant on this clock.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock time after d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that delivers on C after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker with period d (drift-free cadence).
	NewTicker(d time.Duration) Ticker
	// AfterFunc runs f on its own goroutine after d.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer mirrors time.Timer behind the Clock.
type Timer interface {
	// C delivers the fire instant (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop cancels the timer; false if it already fired or was stopped.
	Stop() bool
	// Reset re-arms the timer for d; reports whether it was active.
	Reset(d time.Duration) bool
}

// Ticker mirrors time.Ticker behind the Clock, plus a managed Wait for
// goroutines registered with a Virtual clock.
type Ticker interface {
	// C delivers ticks (capacity 1; ticks coalesce under a slow reader).
	C() <-chan time.Time
	// Stop cancels the ticker.
	Stop()
	// Wait parks until the next tick (true) or stop closes (false). This
	// is the loop-safe receive: under Virtual the wake-up is accounted at
	// fire time, so time cannot advance past the woken loop.
	Wait(stop <-chan struct{}) bool
}

// Go spawns fn registered with c when c is Virtual, as a plain goroutine
// otherwise. Every long-lived goroutine in a clock-injected component
// must be spawned this way or virtual time will advance while it runs.
func Go(c Clock, fn func()) {
	if v, ok := c.(*Virtual); ok {
		v.Go(fn)
		return
	}
	go fn()
}

// Live registers the calling goroutine with a Virtual clock for the
// duration of fn, so time cannot advance while it is runnable — the
// companion to Go for goroutines the component did not spawn itself (an
// engine making its caller's in-call work visible to the clock). Nested
// use and already-registered callers are no-ops; on a Real clock it just
// runs fn.
func Live(c Clock, fn func()) {
	v, ok := c.(*Virtual)
	if !ok {
		fn()
		return
	}
	id := gid()
	v.mu.Lock()
	if v.reg[id] > 0 {
		// Already visible (registering again would inflate the worker
		// count past what one goroutine's park can satisfy).
		v.mu.Unlock()
		fn()
		return
	}
	v.workers++
	v.reg[id]++
	v.mu.Unlock()
	defer v.unregister(id)
	fn()
}

// SleepStop sleeps d or until stop closes; false means stopped. It is
// the clock-safe form of the ubiquitous timer/stop select loop.
func SleepStop(c Clock, d time.Duration, stop <-chan struct{}) bool {
	select {
	case <-stop:
		return false
	default:
	}
	if v, ok := c.(*Virtual); ok {
		return v.sleepStop(d, stop)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// Blocking marks the calling goroutine as parked for the duration of
// wait, so a Virtual clock may advance while it blocks on something the
// clock cannot see (an RPC reply channel, a WaitGroup). On a Real clock
// it just runs wait.
func Blocking(c Clock, wait func()) {
	if v, ok := c.(*Virtual); ok {
		v.Blocking(wait)
		return
	}
	wait()
}

// Or returns c, or Real when c is nil — the idiom for optional clock
// configuration fields.
func Or(c Clock) Clock {
	if c == nil {
		return Real{}
	}
	return c
}
