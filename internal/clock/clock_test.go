package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Equal-deadline events must fire in registration order.
func TestVirtualEqualDeadlineFireOrder(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		v.AfterFunc(50*time.Millisecond, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	v.Run(func() {
		v.Sleep(100 * time.Millisecond)
	})
	// The callbacks all fired before the 100ms sleep could complete (the
	// sleep's own wake-up is behind them in the heap), but give their
	// goroutines a moment in case the runtime is slow to schedule them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 8 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 8 {
		t.Fatalf("fired %d of 8 callbacks", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("fire order %v: want registration order", order)
		}
	}
}

// Sleep wakes in deadline order and time lands exactly on each deadline.
func TestVirtualSleepAdvancesExactly(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Run(func() {
		v.Sleep(250 * time.Millisecond)
		if got := v.Since(start); got != 250*time.Millisecond {
			t.Errorf("after sleep: elapsed %v, want 250ms", got)
		}
		v.Sleep(time.Hour)
		if got := v.Since(start); got != time.Hour+250*time.Millisecond {
			t.Errorf("after second sleep: elapsed %v", got)
		}
	})
}

// Timer Stop/Reset hammered from concurrent goroutines must be race-free
// (run under -race) and never fire a stopped timer late.
func TestVirtualTimerStopResetRace(t *testing.T) {
	v := NewVirtual()
	var fired atomic.Int64
	const timers = 32
	tms := make([]Timer, timers)
	for i := range tms {
		tms[i] = v.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	}
	var wg sync.WaitGroup
	for i := range tms {
		tm := tms[i]
		wg.Add(2)
		go func() { defer wg.Done(); tm.Reset(5 * time.Millisecond) }()
		go func() { defer wg.Done(); tm.Stop() }()
	}
	wg.Wait()
	v.Run(func() { v.Sleep(time.Second) })
	// No assertion on the exact count (Stop/Reset raced by design); the
	// run must simply be race-free and every surviving timer must have
	// fired by now, with none left pending.
	if n := v.Pending(); n != 0 {
		t.Fatalf("%d events still pending after 1s", n)
	}
}

func TestVirtualTimerChannelDelivers(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		tm := v.NewTimer(20 * time.Millisecond)
		start := v.Now()
		v.Sleep(30 * time.Millisecond) // drives time past the fire instant
		select {
		case at := <-tm.C():
			if got := at.Sub(start); got != 20*time.Millisecond {
				t.Errorf("timer delivered %v after start, want 20ms", got)
			}
		default:
			t.Error("timer channel empty after its deadline passed")
		}
		if tm.Stop() {
			t.Error("Stop on fired timer reported active")
		}
	})
}

// Ticker cadence is drift-free: the k-th tick lands at exactly start+k*p
// no matter how late the consumer is.
func TestVirtualTickerDriftFree(t *testing.T) {
	v := NewVirtual()
	const period = 7 * time.Millisecond
	v.Run(func() {
		start := v.Now()
		tk := v.NewTicker(period)
		defer tk.Stop()
		for k := 1; k <= 50; k++ {
			if !tk.Wait(nil) {
				t.Fatal("Wait returned false without stop")
			}
			if got, want := v.Now().Sub(start), time.Duration(k)*period; got != want {
				t.Fatalf("tick %d at +%v, want +%v (drift)", k, got, want)
			}
			if k%10 == 0 {
				// A slow consumer must not shift subsequent ticks.
				v.Sleep(3 * time.Millisecond)
			}
		}
	})
}

// Starvation guard: virtual time must never advance past a runnable
// registered goroutine. A worker woken by Trigger.Signal does observable
// work before parking again; a long sleeper is waiting the whole time —
// the clock must not jump to the sleeper's deadline while the worker is
// runnable.
func TestVirtualNoAdvancePastRunnable(t *testing.T) {
	v := NewVirtual()
	trig := NewTrigger(v)
	start := v.Now()
	var sawAt atomic.Int64
	stop := make(chan struct{})
	v.Go(func() {
		for trig.Wait(-1, stop) {
			// Runnable now: time must still read the instant Signal ran.
			sawAt.Store(int64(v.Since(start)))
			v.Sleep(5 * time.Millisecond)
		}
	})
	v.Run(func() {
		v.Sleep(10 * time.Millisecond)
		trig.Signal()
		v.Sleep(time.Hour) // tempts the clock to jump far ahead
	})
	close(stop)
	if got := time.Duration(sawAt.Load()); got != 10*time.Millisecond {
		t.Fatalf("woken worker observed elapsed %v, want 10ms: time advanced past a runnable goroutine", got)
	}
}

func TestSleepStopVirtual(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		stop := make(chan struct{})
		start := v.Now()
		if !SleepStop(v, 15*time.Millisecond, stop) {
			t.Fatal("SleepStop returned false without stop")
		}
		if got := v.Now().Sub(start); got != 15*time.Millisecond {
			t.Fatalf("slept %v, want 15ms", got)
		}
		close(stop)
		if SleepStop(v, time.Hour, stop) {
			t.Fatal("SleepStop ignored closed stop")
		}
		if got := v.Now().Sub(start); got != 15*time.Millisecond {
			t.Fatalf("stopped sleep advanced time to +%v", got)
		}
	})
}

func TestVirtualCondFIFOAndAccounting(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := NewCond(v, &mu)
	var order []int
	ready := make(chan struct{}, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			mu.Lock()
			ready <- struct{}{}
			cond.Wait()
			order = append(order, i)
			mu.Unlock()
		})
	}
	for i := 0; i < 3; i++ {
		<-ready
	}
	v.Run(func() {
		// All three workers are parked on the cond; time can advance.
		v.Sleep(time.Millisecond)
		cond.Broadcast()
	})
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 {
		t.Fatalf("woke %d of 3 waiters", len(order))
	}
}

func TestTriggerCoalesces(t *testing.T) {
	for _, c := range []Clock{Real{}, Clock(NewVirtual())} {
		trig := NewTrigger(c)
		trig.Signal()
		trig.Signal()
		run := func() {
			if !trig.Wait(-1, nil) {
				t.Fatal("pending signal not consumed")
			}
			if !trig.Wait(time.Millisecond, nil) {
				t.Fatal("deadline expiry must return true")
			}
			stop := make(chan struct{})
			close(stop)
			if trig.Wait(-1, stop) {
				t.Fatal("closed stop must return false")
			}
		}
		if v, ok := c.(*Virtual); ok {
			v.Run(run)
		} else {
			run()
		}
	}
}

func TestRealClockSmoke(t *testing.T) {
	c := Or(nil)
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("real clock did not advance")
	}
	tm := c.NewTimer(time.Millisecond)
	<-tm.C()
	tk := c.NewTicker(time.Millisecond)
	if !tk.Wait(nil) {
		t.Fatal("real ticker Wait failed")
	}
	tk.Stop()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	<-done
}

// Blocking lets time advance while a registered goroutine waits outside
// the clock.
func TestVirtualBlockingExternalWait(t *testing.T) {
	v := NewVirtual()
	ch := make(chan struct{})
	v.Go(func() {
		v.Sleep(20 * time.Millisecond)
		close(ch)
	})
	v.Run(func() {
		start := v.Now()
		Blocking(v, func() { <-ch })
		if got := v.Now().Sub(start); got != 20*time.Millisecond {
			t.Fatalf("external wait resolved at +%v, want +20ms", got)
		}
	})
}
