package clock

import (
	"sync"
	"time"
)

// Trigger is a coalescing wake-up for single-consumer work loops of the
// shape `for { drain work; wait for more or a deadline }` — the netsim
// delivery loop, egress lane drains, the discovery offer flush. Signal
// from any goroutine wakes the parked waiter (or is remembered if none
// is parked); Wait parks until a signal, an optional deadline, or stop.
//
// Under a Virtual clock the wake-up is accounted inside the clock lock,
// so virtual time cannot advance past a loop that has just been
// signalled — the property that keeps event delivery time-accurate.
type Trigger interface {
	// Signal wakes the parked waiter, or marks a pending wake-up.
	Signal()
	// Wait parks until Signal, the deadline d (d < 0 means no deadline),
	// or stop. It returns false only when stop closed; deadline expiry
	// and signals both return true (the loop re-checks its work either
	// way).
	Wait(d time.Duration, stop <-chan struct{}) bool
}

// NewTrigger builds a trigger bound to c.
func NewTrigger(c Clock) Trigger {
	if v, ok := c.(*Virtual); ok {
		return &virtualTrigger{v: v}
	}
	return &realTrigger{ch: make(chan struct{}, 1)}
}

// realTrigger is a capacity-1 channel: a buffered token is exactly the
// "pending wake-up" state, and reusing one channel for the life of the
// trigger keeps the park/unpark cycle allocation-free (the egress drainers
// park once per drained burst — with a per-Wait channel that alloc shows
// up in the wire path's per-frame cost).
type realTrigger struct {
	ch chan struct{}
}

func (t *realTrigger) Signal() {
	select {
	case t.ch <- struct{}{}:
	default: // a wake-up is already pending; coalesce
	}
}

func (t *realTrigger) Wait(d time.Duration, stop <-chan struct{}) bool {
	var tc <-chan time.Time
	if d >= 0 {
		tm := time.NewTimer(d)
		defer tm.Stop()
		tc = tm.C
	}
	select {
	case <-t.ch:
		return true
	case <-tc:
		return true
	case <-stop:
		return false
	}
}

type virtualTrigger struct {
	v       *Virtual
	pending bool     // guarded by v.mu
	waiter  *vparker // guarded by v.mu
}

type vparker struct {
	ch    chan struct{}
	ev    *event
	woken bool
}

func (t *virtualTrigger) Signal() {
	v := t.v
	v.mu.Lock()
	if w := t.waiter; w != nil {
		t.waiter = nil
		w.woken = true
		if w.ev != nil {
			v.removeLocked(w.ev)
			w.ev = nil
		}
		v.blocked--
		close(w.ch)
	} else {
		t.pending = true
	}
	v.mu.Unlock()
}

func (t *virtualTrigger) Wait(d time.Duration, stop <-chan struct{}) bool {
	select {
	case <-stop:
		return false
	default:
	}
	id := gid()
	v := t.v
	v.mu.Lock()
	if t.pending {
		t.pending = false
		v.mu.Unlock()
		return true
	}
	w := &vparker{ch: make(chan struct{})}
	t.waiter = w
	if d >= 0 {
		w.ev = v.scheduleLocked(d, func() {
			if t.waiter == w {
				t.waiter = nil
			}
			w.ev = nil
			w.woken = true
			v.blocked--
			close(w.ch)
		})
	}
	temp := v.enterParkLocked(id)
	v.mu.Unlock()
	select {
	case <-w.ch:
		v.exitPark(temp)
		return true
	case <-stop:
		v.mu.Lock()
		if !w.woken {
			if t.waiter == w {
				t.waiter = nil
			}
			if w.ev != nil {
				v.removeLocked(w.ev)
				w.ev = nil
			}
			v.blocked--
		}
		v.mu.Unlock()
		v.exitPark(temp)
		return false
	}
}

// Cond is sync.Cond behind the Clock: workers idling in a scheduler pool
// park on it, and under a Virtual clock a Signal releases the woken
// waiter's parked count inside the clock lock — virtual time cannot
// advance past a just-dispatched job. FIFO wake order.
type Cond struct {
	// L is held by callers of Wait, as with sync.Cond.
	L sync.Locker

	v       *Virtual   // nil on a real clock
	mu      sync.Mutex // guards waiters on a real clock (v.mu otherwise)
	waiters []chan struct{}
}

// NewCond builds a condition variable bound to c with locker l.
func NewCond(c Clock, l sync.Locker) *Cond {
	v, _ := c.(*Virtual)
	return &Cond{L: l, v: v}
}

// Wait atomically releases L and parks until Signal/Broadcast, then
// re-acquires L. As with sync.Cond, callers re-check their predicate in
// a loop.
func (c *Cond) Wait() {
	ch := make(chan struct{})
	var temp bool
	if c.v != nil {
		id := gid()
		c.v.mu.Lock()
		c.waiters = append(c.waiters, ch)
		temp = c.v.enterParkLocked(id)
		c.v.mu.Unlock()
	} else {
		c.mu.Lock()
		c.waiters = append(c.waiters, ch)
		c.mu.Unlock()
	}
	c.L.Unlock()
	<-ch
	c.L.Lock()
	if c.v != nil {
		c.v.exitPark(temp)
	}
}

// Signal wakes the longest-parked waiter, if any.
func (c *Cond) Signal() {
	if c.v != nil {
		c.v.mu.Lock()
		if len(c.waiters) > 0 {
			ch := c.waiters[0]
			c.waiters = c.waiters[1:]
			c.v.blocked--
			close(ch)
		}
		c.v.mu.Unlock()
		return
	}
	c.mu.Lock()
	if len(c.waiters) > 0 {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		close(ch)
	}
	c.mu.Unlock()
}

// Broadcast wakes every parked waiter.
func (c *Cond) Broadcast() {
	if c.v != nil {
		c.v.mu.Lock()
		for _, ch := range c.waiters {
			c.v.blocked--
			close(ch)
		}
		c.waiters = nil
		c.v.mu.Unlock()
		return
	}
	c.mu.Lock()
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
	c.mu.Unlock()
}
