package clock

import "time"

// Real is the wall clock: a zero-cost pass-through to the time package.
type Real struct{}

var _ Clock = Real{}

func (Real) Now() time.Time                         { return time.Now() }
func (Real) Since(t time.Time) time.Duration        { return time.Since(t) }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (Real) NewTimer(d time.Duration) Timer            { return realTimer{time.NewTimer(d)} }
func (Real) AfterFunc(d time.Duration, f func()) Timer { return realTimer{time.AfterFunc(d, f)} }
func (Real) NewTicker(d time.Duration) Ticker          { return &realTicker{t: time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (rt *realTicker) C() <-chan time.Time { return rt.t.C }
func (rt *realTicker) Stop()               { rt.t.Stop() }

func (rt *realTicker) Wait(stop <-chan struct{}) bool {
	select {
	case <-rt.t.C:
		return true
	case <-stop:
		return false
	}
}
