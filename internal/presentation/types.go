// Package presentation implements the PEPt "Presentation" subsystem (§6 of
// the paper): the datatypes and APIs available to the service programmer.
//
// The paper models variable/event/call payloads on a C-like type system
// (§4.1): booleans, fixed-width integers, floating point, character strings,
// and compositions of those (vector, struct, union). This package provides
// the type descriptors, canonical value representation, structural equality,
// a human-readable signature syntax with a parser, and a registry for named
// types. Wire representation belongs to the sibling encoding package.
package presentation

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Kind enumerates the categories of the C-like type system.
type Kind uint8

// Kinds. They start at 1 so the zero Kind is invalid and detectable.
const (
	KindBool Kind = iota + 1
	KindInt8
	KindInt16
	KindInt32
	KindInt64
	KindUint8
	KindUint16
	KindUint32
	KindUint64
	KindFloat32
	KindFloat64
	KindString
	KindBytes
	KindArray  // fixed-length homogeneous sequence
	KindVector // variable-length homogeneous sequence
	KindStruct // named fields in declaration order
	KindUnion  // tagged alternative
	KindVoid   // payload-less union case
)

// String implements fmt.Stringer using the signature token for the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt8:
		return "i8"
	case KindInt16:
		return "i16"
	case KindInt32:
		return "i32"
	case KindInt64:
		return "i64"
	case KindUint8:
		return "u8"
	case KindUint16:
		return "u16"
	case KindUint32:
		return "u32"
	case KindUint64:
		return "u64"
	case KindFloat32:
		return "f32"
	case KindFloat64:
		return "f64"
	case KindString:
		return "str"
	case KindBytes:
		return "bytes"
	case KindArray:
		return "array"
	case KindVector:
		return "vector"
	case KindStruct:
		return "struct"
	case KindUnion:
		return "union"
	case KindVoid:
		return "void"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Primitive reports whether the kind is a scalar leaf (including string and
// bytes, which need no element descriptors).
func (k Kind) Primitive() bool {
	return k >= KindBool && k <= KindBytes
}

// Field is one member of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Case is one alternative of a union type. Tag values are assigned densely
// from 0 in declaration order and travel on the wire.
type Case struct {
	Name string
	Type *Type // KindVoid for tag-only cases
}

// Type is an immutable type descriptor. Construct with the factory functions
// (Bool, Int32, Array, StructOf, ...); the zero Type is invalid.
type Type struct {
	kind   Kind
	elem   *Type   // array, vector
	length int     // array
	fields []Field // struct
	cases  []Case  // union
	sig    string  // memoized canonical signature
}

// Pre-built singleton descriptors for the primitive types. They are safe to
// share because Type is immutable (signatures are computed eagerly at
// construction, so there is no lazy state to race on).
var (
	typeBool    = &Type{kind: KindBool, sig: "bool"}
	typeInt8    = &Type{kind: KindInt8, sig: "i8"}
	typeInt16   = &Type{kind: KindInt16, sig: "i16"}
	typeInt32   = &Type{kind: KindInt32, sig: "i32"}
	typeInt64   = &Type{kind: KindInt64, sig: "i64"}
	typeUint8   = &Type{kind: KindUint8, sig: "u8"}
	typeUint16  = &Type{kind: KindUint16, sig: "u16"}
	typeUint32  = &Type{kind: KindUint32, sig: "u32"}
	typeUint64  = &Type{kind: KindUint64, sig: "u64"}
	typeFloat32 = &Type{kind: KindFloat32, sig: "f32"}
	typeFloat64 = &Type{kind: KindFloat64, sig: "f64"}
	typeString  = &Type{kind: KindString, sig: "str"}
	typeBytes   = &Type{kind: KindBytes, sig: "bytes"}
	typeVoid    = &Type{kind: KindVoid, sig: "void"}
)

// Bool returns the boolean type descriptor.
func Bool() *Type { return typeBool }

// Int8 returns the 8-bit signed integer type descriptor.
func Int8() *Type { return typeInt8 }

// Int16 returns the 16-bit signed integer type descriptor.
func Int16() *Type { return typeInt16 }

// Int32 returns the 32-bit signed integer type descriptor.
func Int32() *Type { return typeInt32 }

// Int64 returns the 64-bit signed integer type descriptor.
func Int64() *Type { return typeInt64 }

// Uint8 returns the 8-bit unsigned integer type descriptor.
func Uint8() *Type { return typeUint8 }

// Uint16 returns the 16-bit unsigned integer type descriptor.
func Uint16() *Type { return typeUint16 }

// Uint32 returns the 32-bit unsigned integer type descriptor.
func Uint32() *Type { return typeUint32 }

// Uint64 returns the 64-bit unsigned integer type descriptor.
func Uint64() *Type { return typeUint64 }

// Float32 returns the 32-bit IEEE-754 type descriptor.
func Float32() *Type { return typeFloat32 }

// Float64 returns the 64-bit IEEE-754 type descriptor.
func Float64() *Type { return typeFloat64 }

// String_ returns the character-string type descriptor. (The underscore
// avoids shadowing the Stringer convention on Type.)
func String_() *Type { return typeString }

// Bytes returns the opaque byte-sequence type descriptor.
func Bytes() *Type { return typeBytes }

// Void returns the payload-less type used for tag-only union cases.
func Void() *Type { return typeVoid }

// ArrayOf returns a fixed-length array type of n elements of elem.
func ArrayOf(n int, elem *Type) *Type {
	return freeze(&Type{kind: KindArray, elem: elem, length: n})
}

// VectorOf returns a variable-length sequence type of elem.
func VectorOf(elem *Type) *Type {
	return freeze(&Type{kind: KindVector, elem: elem})
}

// StructOf returns a struct type with the given fields, in order.
func StructOf(fields ...Field) *Type {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	return freeze(&Type{kind: KindStruct, fields: fs})
}

// freeze computes the canonical signature once, making the descriptor safe
// for concurrent use forever after.
func freeze(t *Type) *Type {
	var b strings.Builder
	t.writeSig(&b)
	t.sig = b.String()
	return t
}

// F is shorthand for constructing a Field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// UnionOf returns a union type with the given cases, in order. Tags are the
// declaration indices.
func UnionOf(cases ...Case) *Type {
	cs := make([]Case, len(cases))
	copy(cs, cases)
	return freeze(&Type{kind: KindUnion, cases: cs})
}

// C is shorthand for constructing a Case. A nil type means void (tag-only).
func C(name string, t *Type) Case {
	if t == nil {
		t = typeVoid
	}
	return Case{Name: name, Type: t}
}

// Kind returns the type's kind.
func (t *Type) Kind() Kind { return t.kind }

// Elem returns the element type of an array or vector, nil otherwise.
func (t *Type) Elem() *Type { return t.elem }

// Len returns the fixed length of an array, 0 otherwise.
func (t *Type) Len() int {
	if t.kind != KindArray {
		return 0
	}
	return t.length
}

// Fields returns the struct fields (shared slice; callers must not mutate).
func (t *Type) Fields() []Field { return t.fields }

// Cases returns the union cases (shared slice; callers must not mutate).
func (t *Type) Cases() []Case { return t.cases }

// FieldIndex returns the index of the named struct field, or -1.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// CaseIndex returns the tag of the named union case, or -1.
func (t *Type) CaseIndex(name string) int {
	for i, c := range t.cases {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that the descriptor is well formed: known kinds, positive
// array lengths, unique non-empty field/case names, void only inside unions,
// and recursively valid component types.
func (t *Type) Validate() error { return t.validate(false, 0) }

// maxTypeDepth bounds recursion so hostile descriptors cannot overflow the
// stack; real avionics payloads are shallow.
const maxTypeDepth = 32

func (t *Type) validate(insideUnionCase bool, depth int) error {
	if t == nil {
		return fmt.Errorf("presentation: nil type: %w", ErrInvalidType)
	}
	if depth > maxTypeDepth {
		return fmt.Errorf("presentation: type nesting exceeds %d: %w", maxTypeDepth, ErrInvalidType)
	}
	switch t.kind {
	case KindVoid:
		if !insideUnionCase {
			return fmt.Errorf("presentation: void outside union case: %w", ErrInvalidType)
		}
		return nil
	case KindBool, KindInt8, KindInt16, KindInt32, KindInt64,
		KindUint8, KindUint16, KindUint32, KindUint64,
		KindFloat32, KindFloat64, KindString, KindBytes:
		return nil
	case KindArray:
		if t.length <= 0 {
			return fmt.Errorf("presentation: array length %d: %w", t.length, ErrInvalidType)
		}
		return t.elem.validate(false, depth+1)
	case KindVector:
		return t.elem.validate(false, depth+1)
	case KindStruct:
		if len(t.fields) == 0 {
			return fmt.Errorf("presentation: empty struct: %w", ErrInvalidType)
		}
		seen := make(map[string]bool, len(t.fields))
		for _, f := range t.fields {
			if f.Name == "" {
				return fmt.Errorf("presentation: unnamed struct field: %w", ErrInvalidType)
			}
			if !validIdent(f.Name) {
				return fmt.Errorf("presentation: field name %q not an identifier: %w", f.Name, ErrInvalidType)
			}
			if seen[f.Name] {
				return fmt.Errorf("presentation: duplicate field %q: %w", f.Name, ErrInvalidType)
			}
			seen[f.Name] = true
			if err := f.Type.validate(false, depth+1); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
		return nil
	case KindUnion:
		if len(t.cases) == 0 {
			return fmt.Errorf("presentation: empty union: %w", ErrInvalidType)
		}
		seen := make(map[string]bool, len(t.cases))
		for _, c := range t.cases {
			if c.Name == "" {
				return fmt.Errorf("presentation: unnamed union case: %w", ErrInvalidType)
			}
			if !validIdent(c.Name) {
				return fmt.Errorf("presentation: case name %q not an identifier: %w", c.Name, ErrInvalidType)
			}
			if seen[c.Name] {
				return fmt.Errorf("presentation: duplicate case %q: %w", c.Name, ErrInvalidType)
			}
			seen[c.Name] = true
			if err := c.Type.validate(true, depth+1); err != nil {
				return fmt.Errorf("case %q: %w", c.Name, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("presentation: unknown kind %d: %w", t.kind, ErrInvalidType)
	}
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// String returns the canonical structural signature, e.g.
// "{lat:f64,lon:f64,fixes:[]u8}". Equal signatures imply structural equality.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.sig != "" {
		return t.sig
	}
	// Hand-constructed Type literals (tests only) fall back to a fresh
	// walk; factory-built descriptors always have sig set.
	var b strings.Builder
	t.writeSig(&b)
	return b.String()
}

func (t *Type) writeSig(b *strings.Builder) {
	switch t.kind {
	case KindArray:
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(t.length))
		b.WriteByte(']')
		t.elem.writeSig(b)
	case KindVector:
		b.WriteString("[]")
		t.elem.writeSig(b)
	case KindStruct:
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			f.Type.writeSig(b)
		}
		b.WriteByte('}')
	case KindUnion:
		b.WriteByte('<')
		for i, c := range t.cases {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.Name)
			b.WriteByte(':')
			c.Type.writeSig(b)
		}
		b.WriteByte('>')
	default:
		b.WriteString(t.kind.String())
	}
}

// Equal reports structural equality (field and case names included).
func (t *Type) Equal(other *Type) bool {
	if t == other {
		return true
	}
	if t == nil || other == nil {
		return false
	}
	return t.String() == other.String()
}

// Fingerprint returns a 64-bit FNV-1a hash of the structural signature. The
// container includes it in announcements so subscribers can verify payload
// compatibility without shipping whole descriptors on every message.
func (t *Type) Fingerprint() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(t.String()))
	return h.Sum64()
}

// ErrInvalidType tags descriptor validation failures.
var ErrInvalidType = errors.New("invalid type")

// ErrTypeMismatch tags value-vs-type check failures.
var ErrTypeMismatch = errors.New("type mismatch")
