package presentation

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCheckCanonical(t *testing.T) {
	gps := gpsPosition()
	good := map[string]any{"lat": 41.3, "lon": 2.1, "alt": float32(120.5), "fix": uint8(3)}
	if err := Check(gps, good); err != nil {
		t.Fatalf("canonical value rejected: %v", err)
	}
	tests := []struct {
		name string
		typ  *Type
		v    any
	}{
		{"wrong scalar", Float64(), float32(1)},
		{"int for bool", Bool(), 1},
		{"missing field", gps, map[string]any{"lat": 41.3}},
		{"extra field", gps, map[string]any{"lat": 41.3, "lon": 2.1, "alt": float32(1), "fix": uint8(0), "zz": 1}},
		{"wrong field type", gps, map[string]any{"lat": 41.3, "lon": 2.1, "alt": 120.5, "fix": uint8(3)}},
		{"array len", ArrayOf(2, Int8()), []any{int8(1)}},
		{"vector elem", VectorOf(Int8()), []any{int8(1), "x"}},
		{"not slice", VectorOf(Int8()), 7},
		{"union unknown case", UnionOf(C("a", nil)), Union{Case: "b"}},
		{"union payload", UnionOf(C("a", Int8())), Union{Case: "a", Value: "str"}},
		{"void with payload", UnionOf(C("a", nil)), Union{Case: "a", Value: 1}},
		{"not a union", UnionOf(C("a", nil)), 9},
		{"not a struct", gps, []any{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Check(tt.typ, tt.v)
			if err == nil {
				t.Fatal("expected mismatch")
			}
			if !errors.Is(err, ErrTypeMismatch) {
				t.Errorf("error %v must wrap ErrTypeMismatch", err)
			}
		})
	}
}

func TestCoerceScalars(t *testing.T) {
	tests := []struct {
		name string
		typ  *Type
		in   any
		want any
	}{
		{"int to i32", Int32(), 42, int32(42)},
		{"int to i64", Int64(), 42, int64(42)},
		{"int8 widen to i64", Int64(), int8(-5), int64(-5)},
		{"uint to u8", Uint8(), uint(200), uint8(200)},
		{"int to u16", Uint16(), 70, uint16(70)},
		{"int to f64", Float64(), 3, float64(3)},
		{"f32 to f64", Float64(), float32(1.5), float64(1.5)},
		{"f64 to f32", Float32(), 2.5, float32(2.5)},
		{"bool", Bool(), true, true},
		{"string", String_(), "hi", "hi"},
		{"u64 max", Uint64(), uint64(math.MaxUint64), uint64(math.MaxUint64)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Coerce(tt.typ, tt.in)
			if err != nil {
				t.Fatalf("Coerce: %v", err)
			}
			if got != tt.want {
				t.Errorf("Coerce = %#v, want %#v", got, tt.want)
			}
			if err := Check(tt.typ, got); err != nil {
				t.Errorf("coerced value not canonical: %v", err)
			}
		})
	}
}

func TestCoerceRangeErrors(t *testing.T) {
	tests := []struct {
		name string
		typ  *Type
		in   any
	}{
		{"i8 overflow", Int8(), 300},
		{"i8 underflow", Int8(), -300},
		{"i16 overflow", Int16(), 1 << 20},
		{"i32 overflow", Int32(), int64(1) << 40},
		{"u8 overflow", Uint8(), 256},
		{"u16 overflow", Uint16(), 1 << 17},
		{"u32 overflow", Uint32(), int64(1) << 35},
		{"negative to uint", Uint32(), -1},
		{"u64 too big for i64", Int64(), uint64(math.MaxUint64)},
		{"string to int", Int32(), "5"},
		{"bool to float", Float64(), true},
		{"nil to string", String_(), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Coerce(tt.typ, tt.in); err == nil {
				t.Error("expected coercion failure")
			}
		})
	}
}

func TestCoerceSequences(t *testing.T) {
	vec := VectorOf(Float64())
	got, err := Coerce(vec, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Coerce []float64: %v", err)
	}
	if err := Check(vec, got); err != nil {
		t.Fatalf("not canonical: %v", err)
	}
	if s := got.([]any); len(s) != 3 || s[2] != float64(3) {
		t.Errorf("got %#v", got)
	}

	// []int into []i32 with range checks.
	veci := VectorOf(Int32())
	if _, err := Coerce(veci, []int{1, int(math.MaxInt64 & 0x7fffffffffff)}); err == nil {
		t.Error("out-of-range element must fail")
	}

	// [3]f32 from []float64.
	arr := ArrayOf(3, Float32())
	got, err = Coerce(arr, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Coerce to array: %v", err)
	}
	if err := Check(arr, got); err != nil {
		t.Fatalf("not canonical: %v", err)
	}
	if _, err := Coerce(arr, []float64{1, 2}); err == nil {
		t.Error("short array must fail")
	}

	// Vector of u8 accepts []byte.
	vb := VectorOf(Uint8())
	got, err = Coerce(vb, []byte{1, 2})
	if err != nil {
		t.Fatalf("Coerce []byte to []u8: %v", err)
	}
	if err := Check(vb, got); err != nil {
		t.Fatalf("not canonical: %v", err)
	}
}

func TestCoerceStruct(t *testing.T) {
	gps := gpsPosition()
	in := map[string]any{"lat": 41.3, "lon": 2.1, "alt": 120.5, "fix": 3}
	got, err := Coerce(gps, in)
	if err != nil {
		t.Fatalf("Coerce: %v", err)
	}
	if err := Check(gps, got); err != nil {
		t.Fatalf("not canonical: %v", err)
	}
	m := got.(map[string]any)
	if m["alt"] != float32(120.5) || m["fix"] != uint8(3) {
		t.Errorf("narrowing failed: %#v", m)
	}
	if _, err := Coerce(gps, map[string]any{"lat": 1.0}); err == nil {
		t.Error("missing fields must fail")
	}
	if _, err := Coerce(gps, map[string]any{"lat": 41.3, "lon": 2.1, "alt": 1.0, "fix": 0, "bogus": 1}); err == nil {
		t.Error("unknown field must fail")
	}
}

func TestCoerceUnion(t *testing.T) {
	u := UnionOf(C("ok", nil), C("err", String_()))
	got, err := Coerce(u, Union{Case: "err", Value: "boom"})
	if err != nil {
		t.Fatalf("Coerce union: %v", err)
	}
	if err := Check(u, got); err != nil {
		t.Fatalf("not canonical: %v", err)
	}
	if _, err := Coerce(u, Union{Case: "nope"}); err == nil {
		t.Error("unknown case must fail")
	}
	if _, err := Coerce(u, "raw"); err == nil {
		t.Error("non-union value must fail")
	}
	if _, err := Coerce(u, Union{Case: "ok", Value: 3}); err == nil {
		t.Error("void case with payload must fail")
	}
}

func TestZeroValues(t *testing.T) {
	tests := []struct {
		typ  *Type
		want any
	}{
		{Bool(), false},
		{Int8(), int8(0)},
		{Uint64(), uint64(0)},
		{Float32(), float32(0)},
		{String_(), ""},
	}
	for _, tt := range tests {
		if got := Zero(tt.typ); got != tt.want {
			t.Errorf("Zero(%s) = %#v, want %#v", tt.typ, got, tt.want)
		}
	}
	z := Zero(gpsPosition()).(map[string]any)
	if z["lat"] != float64(0) || z["fix"] != uint8(0) {
		t.Errorf("struct zero wrong: %#v", z)
	}
	arr := Zero(ArrayOf(2, Int8())).([]any)
	if len(arr) != 2 || arr[0] != int8(0) {
		t.Errorf("array zero wrong: %#v", arr)
	}
	uz := Zero(UnionOf(C("a", Int16()), C("b", nil))).(Union)
	if uz.Case != "a" || uz.Value != int16(0) {
		t.Errorf("union zero wrong: %#v", uz)
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	gps := gpsPosition()
	orig := map[string]any{"lat": 1.0, "lon": 2.0, "alt": float32(3), "fix": uint8(1)}
	cp := DeepCopy(orig).(map[string]any)
	cp["lat"] = 99.0
	if orig["lat"] != 1.0 {
		t.Error("DeepCopy aliased struct map")
	}
	if err := Check(gps, cp); err != nil {
		t.Errorf("copy not canonical: %v", err)
	}

	b := []byte{1, 2, 3}
	bc := DeepCopy(b).([]byte)
	bc[0] = 9
	if b[0] != 1 {
		t.Error("DeepCopy aliased bytes")
	}

	s := []any{int8(1), []any{int8(2)}}
	sc := DeepCopy(s).([]any)
	sc[1].([]any)[0] = int8(9)
	if s[1].([]any)[0] != int8(2) {
		t.Error("DeepCopy aliased nested slice")
	}

	u := Union{Case: "x", Value: []byte{5}}
	uc := DeepCopy(u).(Union)
	uc.Value.([]byte)[0] = 7
	if u.Value.([]byte)[0] != 5 {
		t.Error("DeepCopy aliased union payload")
	}
}

func TestEqualValues(t *testing.T) {
	tests := []struct {
		name string
		a, b any
		want bool
	}{
		{"ints", int32(4), int32(4), true},
		{"ints differ", int32(4), int32(5), false},
		{"cross-type", int32(4), int64(4), false},
		{"nan equals nan f64", math.NaN(), math.NaN(), true},
		{"nan equals nan f32", float32(math.NaN()), float32(math.NaN()), true},
		{"float vs int", 4.0, int32(4), false},
		{"bytes", []byte{1, 2}, []byte{1, 2}, true},
		{"bytes differ", []byte{1, 2}, []byte{1, 3}, false},
		{"bytes len", []byte{1}, []byte{1, 2}, false},
		{"slices", []any{int8(1)}, []any{int8(1)}, true},
		{"slices differ", []any{int8(1)}, []any{int8(2)}, false},
		{"maps", map[string]any{"a": 1.0}, map[string]any{"a": 1.0}, true},
		{"maps differ", map[string]any{"a": 1.0}, map[string]any{"a": 2.0}, false},
		{"maps keys", map[string]any{"a": 1.0}, map[string]any{"b": 1.0}, false},
		{"unions", Union{Case: "a", Value: int8(1)}, Union{Case: "a", Value: int8(1)}, true},
		{"unions case", Union{Case: "a"}, Union{Case: "b"}, false},
		{"union vs scalar", Union{Case: "a"}, 4, false},
		{"map vs scalar", map[string]any{}, 4, false},
		{"slice vs scalar", []any{}, 4, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EqualValues(tt.a, tt.b); got != tt.want {
				t.Errorf("EqualValues(%#v, %#v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// randomValue builds a canonical value of typ for property tests. Shared
// with the encoding package tests via export_test-style usage.
func randomValue(r *rand.Rand, typ *Type) any {
	switch typ.Kind() {
	case KindVoid:
		return nil
	case KindBool:
		return r.Intn(2) == 0
	case KindInt8:
		return int8(r.Intn(256) - 128)
	case KindInt16:
		return int16(r.Intn(1 << 16))
	case KindInt32:
		return int32(r.Uint32())
	case KindInt64:
		return int64(r.Uint64())
	case KindUint8:
		return uint8(r.Intn(256))
	case KindUint16:
		return uint16(r.Intn(1 << 16))
	case KindUint32:
		return r.Uint32()
	case KindUint64:
		return r.Uint64()
	case KindFloat32:
		return float32(r.NormFloat64())
	case KindFloat64:
		return r.NormFloat64()
	case KindString:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	case KindBytes:
		n := r.Intn(16)
		b := make([]byte, n)
		r.Read(b)
		return b
	case KindArray:
		out := make([]any, typ.Len())
		for i := range out {
			out[i] = randomValue(r, typ.Elem())
		}
		return out
	case KindVector:
		out := make([]any, r.Intn(5))
		for i := range out {
			out[i] = randomValue(r, typ.Elem())
		}
		return out
	case KindStruct:
		m := make(map[string]any, len(typ.Fields()))
		for _, f := range typ.Fields() {
			m[f.Name] = randomValue(r, f.Type)
		}
		return m
	case KindUnion:
		cs := typ.Cases()
		c := cs[r.Intn(len(cs))]
		return Union{Case: c.Name, Value: randomValue(r, c.Type)}
	default:
		return nil
	}
}

func TestRandomValuesCheckAndCopy(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		typ := randomType(r, 4)
		v := randomValue(r, typ)
		if err := Check(typ, v); err != nil {
			t.Fatalf("random value of %s fails Check: %v", typ, err)
		}
		cp := DeepCopy(v)
		if !EqualValues(v, cp) {
			t.Fatalf("DeepCopy not equal for %s", typ)
		}
		if err := Check(typ, cp); err != nil {
			t.Fatalf("copy fails Check: %v", err)
		}
		// Coerce must accept canonical values unchanged.
		cv, err := Coerce(typ, v)
		if err != nil {
			t.Fatalf("Coerce of canonical value: %v", err)
		}
		if !EqualValues(v, cv) {
			t.Fatalf("Coerce changed canonical value for %s", typ)
		}
	}
}

func TestFormatValue(t *testing.T) {
	gps := gpsPosition()
	v := map[string]any{"lat": 41.5, "lon": 2.25, "alt": float32(100), "fix": uint8(3)}
	got := FormatValue(gps, v)
	want := "{lat=41.5 lon=2.25 alt=100 fix=3}"
	if got != want {
		t.Errorf("FormatValue = %q, want %q", got, want)
	}
	if got := FormatValue(Bytes(), []byte{1, 2, 3}); got != "bytes[3]" {
		t.Errorf("bytes format = %q", got)
	}
	u := UnionOf(C("ok", nil), C("err", String_()))
	if got := FormatValue(u, Union{Case: "ok"}); got != "ok" {
		t.Errorf("void case format = %q", got)
	}
	if got := FormatValue(u, Union{Case: "err", Value: "x"}); got != "err(x)" {
		t.Errorf("payload case format = %q", got)
	}
	if got := FormatValue(VectorOf(Int8()), []any{int8(1), int8(2)}); got != "[1 2]" {
		t.Errorf("vector format = %q", got)
	}
	if got := FormatValue(nil, 42); got != "42" {
		t.Errorf("nil type format = %q", got)
	}
}
