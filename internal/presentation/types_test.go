package presentation

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// gpsPosition is the telemetry struct used throughout the test suite; it
// mirrors the paper's GPS "position" variable (§5).
func gpsPosition() *Type {
	return StructOf(
		F("lat", Float64()),
		F("lon", Float64()),
		F("alt", Float32()),
		F("fix", Uint8()),
	)
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindBool, "bool"},
		{KindInt8, "i8"},
		{KindUint64, "u64"},
		{KindFloat64, "f64"},
		{KindString, "str"},
		{KindBytes, "bytes"},
		{KindArray, "array"},
		{KindVector, "vector"},
		{KindStruct, "struct"},
		{KindUnion, "union"},
		{KindVoid, "void"},
		{Kind(0), "kind(0)"},
		{Kind(200), "kind(200)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestKindPrimitive(t *testing.T) {
	for _, k := range []Kind{KindBool, KindInt8, KindInt64, KindUint8, KindFloat32, KindString, KindBytes} {
		if !k.Primitive() {
			t.Errorf("%v must be primitive", k)
		}
	}
	for _, k := range []Kind{KindArray, KindVector, KindStruct, KindUnion, KindVoid, Kind(0)} {
		if k.Primitive() {
			t.Errorf("%v must not be primitive", k)
		}
	}
}

func TestSignatures(t *testing.T) {
	tests := []struct {
		name string
		typ  *Type
		want string
	}{
		{"bool", Bool(), "bool"},
		{"vector of f64", VectorOf(Float64()), "[]f64"},
		{"array", ArrayOf(3, Float32()), "[3]f32"},
		{"nested array", ArrayOf(3, ArrayOf(3, Float64())), "[3][3]f64"},
		{"gps struct", gpsPosition(), "{lat:f64,lon:f64,alt:f32,fix:u8}"},
		{"union", UnionOf(C("ok", nil), C("err", String_())), "<ok:void,err:str>"},
		{"vector of struct", VectorOf(StructOf(F("id", Uint32()))), "[]{id:u32}"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.typ.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestNilTypeString(t *testing.T) {
	var tp *Type
	if got := tp.String(); got != "<nil>" {
		t.Errorf("nil String() = %q", got)
	}
}

func TestEqualStructural(t *testing.T) {
	a := StructOf(F("x", Int32()), F("y", Int32()))
	b := StructOf(F("x", Int32()), F("y", Int32()))
	c := StructOf(F("y", Int32()), F("x", Int32())) // order matters
	if !a.Equal(b) {
		t.Error("structurally identical types must be Equal")
	}
	if a.Equal(c) {
		t.Error("field order must matter for equality")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) must be false")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal types must share a fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different types should (overwhelmingly) differ in fingerprint")
	}
}

func TestValidate(t *testing.T) {
	deep := Float64()
	for i := 0; i < maxTypeDepth+2; i++ {
		deep = VectorOf(deep)
	}
	tests := []struct {
		name    string
		typ     *Type
		wantErr bool
	}{
		{"primitive", Float64(), false},
		{"gps", gpsPosition(), false},
		{"union ok", UnionOf(C("a", nil), C("b", Int32())), false},
		{"zero array", ArrayOf(0, Int8()), true},
		{"negative array", ArrayOf(-1, Int8()), true},
		{"empty struct", StructOf(), true},
		{"dup field", StructOf(F("x", Int8()), F("x", Int8())), true},
		{"unnamed field", StructOf(F("", Int8())), true},
		{"bad ident", StructOf(F("1x", Int8())), true},
		{"bad ident dash", StructOf(F("a-b", Int8())), true},
		{"empty union", UnionOf(), true},
		{"dup case", UnionOf(C("a", nil), C("a", Int8())), true},
		{"void at top of struct", StructOf(F("v", Void())), true},
		{"too deep", deep, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.typ.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidType) {
				t.Errorf("error %v must wrap ErrInvalidType", err)
			}
		})
	}
}

func TestNilValidate(t *testing.T) {
	var tp *Type
	if err := tp.Validate(); err == nil {
		t.Error("nil type must fail validation")
	}
}

func TestAccessors(t *testing.T) {
	arr := ArrayOf(4, Int16())
	if arr.Kind() != KindArray || arr.Len() != 4 || !arr.Elem().Equal(Int16()) {
		t.Errorf("array accessors wrong: %v %v %v", arr.Kind(), arr.Len(), arr.Elem())
	}
	if Float64().Len() != 0 {
		t.Error("Len of non-array must be 0")
	}
	st := gpsPosition()
	if st.FieldIndex("alt") != 2 {
		t.Errorf("FieldIndex(alt) = %d, want 2", st.FieldIndex("alt"))
	}
	if st.FieldIndex("nope") != -1 {
		t.Error("missing field must index -1")
	}
	un := UnionOf(C("a", nil), C("b", Int8()))
	if un.CaseIndex("b") != 1 || un.CaseIndex("zz") != -1 {
		t.Error("CaseIndex wrong")
	}
}

func TestParseRoundTrip(t *testing.T) {
	sigs := []string{
		"bool", "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64",
		"f32", "f64", "str", "bytes",
		"[]f64", "[16]u8", "[3][3]f64",
		"{lat:f64,lon:f64,alt:f32,fix:u8}",
		"<ok:void,err:str>",
		"[]{id:u32,name:str}",
		"{pos:{lat:f64,lon:f64},wps:[]{lat:f64,lon:f64},mode:<auto:void,manual:u8>}",
	}
	for _, sig := range sigs {
		t.Run(sig, func(t *testing.T) {
			typ, err := Parse(sig)
			if err != nil {
				t.Fatalf("Parse(%q): %v", sig, err)
			}
			if got := typ.String(); got != sig {
				t.Errorf("round trip: %q -> %q", sig, got)
			}
		})
	}
}

func TestParseWhitespace(t *testing.T) {
	typ, err := Parse(" { lat : f64 , lon : f64 } ")
	if err != nil {
		t.Fatalf("Parse with spaces: %v", err)
	}
	if typ.String() != "{lat:f64,lon:f64}" {
		t.Errorf("got %q", typ.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "zzz", "i7", "[]", "[3]", "[x]u8", "{x}", "{x:}", "{:u8}",
		"{x:u8", "<a:void", "{x:u8}extra", "{x:u8,x:u8}", "[0]u8",
		"<>", "{}", "void", "[999999999999]u8", "{x:u8,}",
	}
	for _, sig := range bad {
		if _, err := Parse(sig); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", sig)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad signature must panic")
		}
	}()
	MustParse("not-a-type")
}

// randomType builds a random valid descriptor for property tests.
func randomType(r *rand.Rand, depth int) *Type {
	prims := []*Type{
		Bool(), Int8(), Int16(), Int32(), Int64(),
		Uint8(), Uint16(), Uint32(), Uint64(),
		Float32(), Float64(), String_(), Bytes(),
	}
	if depth <= 0 || r.Intn(100) < 50 {
		return prims[r.Intn(len(prims))]
	}
	switch r.Intn(4) {
	case 0:
		return ArrayOf(1+r.Intn(4), randomType(r, depth-1))
	case 1:
		return VectorOf(randomType(r, depth-1))
	case 2:
		n := 1 + r.Intn(4)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = F(fieldName(i), randomType(r, depth-1))
		}
		return StructOf(fields...)
	default:
		n := 1 + r.Intn(3)
		cases := make([]Case, n)
		for i := range cases {
			var ct *Type
			if r.Intn(2) == 0 {
				ct = randomType(r, depth-1)
			}
			cases[i] = C(fieldName(i), ct)
		}
		return UnionOf(cases...)
	}
}

func fieldName(i int) string { return string(rune('a' + i)) }

func TestParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		typ := randomType(r, 4)
		if err := typ.Validate(); err != nil {
			t.Fatalf("random type invalid: %v (%s)", err, typ)
		}
		back, err := Parse(typ.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", typ.String(), err)
		}
		if !typ.Equal(back) {
			t.Fatalf("round trip mismatch: %s vs %s", typ, back)
		}
	}
}

func TestZeroChecks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		typ := randomType(r, 4)
		if err := Check(typ, Zero(typ)); err != nil {
			t.Fatalf("Zero(%s) fails Check: %v", typ, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	gps := gpsPosition()
	if err := reg.Register("gps.position", gps); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Same structure re-registration is a no-op.
	if err := reg.Register("gps.position", StructOf(
		F("lat", Float64()), F("lon", Float64()), F("alt", Float32()), F("fix", Uint8()),
	)); err != nil {
		t.Errorf("re-register identical: %v", err)
	}
	// Conflicting rebind fails.
	if err := reg.Register("gps.position", Float64()); err == nil {
		t.Error("conflicting rebind must fail")
	}
	got, ok := reg.Lookup("gps.position")
	if !ok || !got.Equal(gps) {
		t.Error("Lookup must return the registered type")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Error("Lookup of unknown name must miss")
	}
	if err := reg.Register("", Float64()); err == nil {
		t.Error("empty name must fail")
	}
	if err := reg.Register("bad", ArrayOf(0, Int8())); err == nil {
		t.Error("invalid type must fail registration")
	}
	if err := reg.Register("alt", Float32()); err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "alt" || names[1] != "gps.position" {
		t.Errorf("Names() = %v", names)
	}
	if reg.Len() != 2 {
		t.Errorf("Len() = %d, want 2", reg.Len())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = reg.Register("t"+strings.Repeat("x", i%5), Float64())
		}
	}()
	for i := 0; i < 500; i++ {
		reg.Lookup("txx")
		reg.Names()
	}
	<-done
}

func TestValidIdentProperty(t *testing.T) {
	// Any name accepted by validIdent must survive a struct signature
	// round trip.
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(s string) bool {
		if len(s) == 0 || len(s) > 12 || !validIdent(s) {
			return true // not applicable
		}
		typ := StructOf(F(s, Bool()))
		back, err := Parse(typ.String())
		return err == nil && typ.Equal(back)
	}, cfg); err != nil {
		t.Error(err)
	}
}
