// Package ptest provides random type and value generators shared by the
// test suites of every package that handles presentation values (encoding,
// variables, events, rpc, core). Generators are deterministic given the
// caller's *rand.Rand.
package ptest

import (
	"math/rand"

	"uavmw/internal/presentation"
)

// RandomType builds a random valid descriptor with composite nesting up to
// depth.
func RandomType(r *rand.Rand, depth int) *presentation.Type {
	prims := []*presentation.Type{
		presentation.Bool(),
		presentation.Int8(), presentation.Int16(), presentation.Int32(), presentation.Int64(),
		presentation.Uint8(), presentation.Uint16(), presentation.Uint32(), presentation.Uint64(),
		presentation.Float32(), presentation.Float64(),
		presentation.String_(), presentation.Bytes(),
	}
	if depth <= 0 || r.Intn(100) < 50 {
		return prims[r.Intn(len(prims))]
	}
	switch r.Intn(4) {
	case 0:
		return presentation.ArrayOf(1+r.Intn(4), RandomType(r, depth-1))
	case 1:
		return presentation.VectorOf(RandomType(r, depth-1))
	case 2:
		n := 1 + r.Intn(4)
		fields := make([]presentation.Field, n)
		for i := range fields {
			fields[i] = presentation.F(memberName(i), RandomType(r, depth-1))
		}
		return presentation.StructOf(fields...)
	default:
		n := 1 + r.Intn(3)
		cases := make([]presentation.Case, n)
		for i := range cases {
			var ct *presentation.Type
			if r.Intn(2) == 0 {
				ct = RandomType(r, depth-1)
			}
			cases[i] = presentation.C(memberName(i), ct)
		}
		return presentation.UnionOf(cases...)
	}
}

func memberName(i int) string { return string(rune('a' + i)) }

// RandomValue builds a canonical value of typ.
func RandomValue(r *rand.Rand, typ *presentation.Type) any {
	switch typ.Kind() {
	case presentation.KindVoid:
		return nil
	case presentation.KindBool:
		return r.Intn(2) == 0
	case presentation.KindInt8:
		return int8(r.Intn(256) - 128)
	case presentation.KindInt16:
		return int16(r.Intn(1 << 16))
	case presentation.KindInt32:
		return int32(r.Uint32())
	case presentation.KindInt64:
		return int64(r.Uint64())
	case presentation.KindUint8:
		return uint8(r.Intn(256))
	case presentation.KindUint16:
		return uint16(r.Intn(1 << 16))
	case presentation.KindUint32:
		return r.Uint32()
	case presentation.KindUint64:
		return r.Uint64()
	case presentation.KindFloat32:
		return float32(r.NormFloat64())
	case presentation.KindFloat64:
		return r.NormFloat64()
	case presentation.KindString:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	case presentation.KindBytes:
		n := r.Intn(16)
		b := make([]byte, n)
		r.Read(b)
		return b
	case presentation.KindArray:
		out := make([]any, typ.Len())
		for i := range out {
			out[i] = RandomValue(r, typ.Elem())
		}
		return out
	case presentation.KindVector:
		out := make([]any, r.Intn(5))
		for i := range out {
			out[i] = RandomValue(r, typ.Elem())
		}
		return out
	case presentation.KindStruct:
		fields := typ.Fields()
		m := make(map[string]any, len(fields))
		for _, f := range fields {
			m[f.Name] = RandomValue(r, f.Type)
		}
		return m
	case presentation.KindUnion:
		cs := typ.Cases()
		c := cs[r.Intn(len(cs))]
		return presentation.Union{Case: c.Name, Value: RandomValue(r, c.Type)}
	default:
		return nil
	}
}
