package presentation

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps application-level type names (e.g. "gps.position") to
// descriptors. Containers keep one registry and include fingerprints in
// announcements so peers can detect incompatible payload definitions before
// any data flows. The zero value is ready to use.
type Registry struct {
	mu    sync.RWMutex
	types map[string]*Type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register binds name to t. Re-registering the same structural type is a
// no-op; binding a name to a different structure is an error, because a
// silently changed payload definition is exactly the mismatch the
// fingerprint scheme exists to catch.
func (r *Registry) Register(name string, t *Type) error {
	if name == "" {
		return fmt.Errorf("presentation: empty type name: %w", ErrInvalidType)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("register %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.types == nil {
		r.types = make(map[string]*Type)
	}
	if prev, ok := r.types[name]; ok {
		if prev.Equal(t) {
			return nil
		}
		return fmt.Errorf("presentation: %q already registered as %s, cannot rebind to %s: %w",
			name, prev, t, ErrInvalidType)
	}
	r.types[name] = t
	return nil
}

// Lookup returns the descriptor bound to name.
func (r *Registry) Lookup(name string) (*Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.types[name]
	return t, ok
}

// Names returns all registered names, sorted, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.types))
	for n := range r.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered types.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.types)
}
