package presentation

import (
	"fmt"
	"math"
)

// Canonical value representation, by kind:
//
//	bool            -> bool
//	i8..i64         -> int8, int16, int32, int64
//	u8..u64         -> uint8, uint16, uint32, uint64
//	f32, f64        -> float32, float64
//	str             -> string
//	bytes           -> []byte
//	array, vector   -> []any (elements canonical)
//	struct          -> map[string]any (every field present, canonical)
//	union           -> Union{Case, Value}
//	void            -> nil
//
// Check validates that a value is already canonical; Coerce converts
// convertible inputs (any Go integer width, []float64, missing-field structs
// are rejected, etc.) into canonical form, which is what the publish paths
// accept.

// Union is the canonical value of a union type: the active case name plus
// its payload (nil for void cases).
type Union struct {
	Case  string
	Value any
}

// Check verifies that v is the canonical representation of type t.
func Check(t *Type, v any) error {
	switch t.kind {
	case KindVoid:
		if v != nil {
			return fmt.Errorf("presentation: void carries %T: %w", v, ErrTypeMismatch)
		}
		return nil
	case KindBool:
		return checkIs[bool](t, v)
	case KindInt8:
		return checkIs[int8](t, v)
	case KindInt16:
		return checkIs[int16](t, v)
	case KindInt32:
		return checkIs[int32](t, v)
	case KindInt64:
		return checkIs[int64](t, v)
	case KindUint8:
		return checkIs[uint8](t, v)
	case KindUint16:
		return checkIs[uint16](t, v)
	case KindUint32:
		return checkIs[uint32](t, v)
	case KindUint64:
		return checkIs[uint64](t, v)
	case KindFloat32:
		return checkIs[float32](t, v)
	case KindFloat64:
		return checkIs[float64](t, v)
	case KindString:
		return checkIs[string](t, v)
	case KindBytes:
		return checkIs[[]byte](t, v)
	case KindArray:
		s, ok := v.([]any)
		if !ok {
			return fmt.Errorf("presentation: %s expects []any, got %T: %w", t, v, ErrTypeMismatch)
		}
		if len(s) != t.length {
			return fmt.Errorf("presentation: array wants %d elements, got %d: %w", t.length, len(s), ErrTypeMismatch)
		}
		for i, e := range s {
			if err := Check(t.elem, e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case KindVector:
		s, ok := v.([]any)
		if !ok {
			return fmt.Errorf("presentation: %s expects []any, got %T: %w", t, v, ErrTypeMismatch)
		}
		for i, e := range s {
			if err := Check(t.elem, e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case KindStruct:
		m, ok := v.(map[string]any)
		if !ok {
			return fmt.Errorf("presentation: %s expects map[string]any, got %T: %w", t, v, ErrTypeMismatch)
		}
		if len(m) != len(t.fields) {
			return fmt.Errorf("presentation: struct wants %d fields, got %d: %w", len(t.fields), len(m), ErrTypeMismatch)
		}
		for _, f := range t.fields {
			fv, present := m[f.Name]
			if !present {
				return fmt.Errorf("presentation: missing field %q: %w", f.Name, ErrTypeMismatch)
			}
			if err := Check(f.Type, fv); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
		return nil
	case KindUnion:
		u, ok := v.(Union)
		if !ok {
			return fmt.Errorf("presentation: %s expects Union, got %T: %w", t, v, ErrTypeMismatch)
		}
		idx := t.CaseIndex(u.Case)
		if idx < 0 {
			return fmt.Errorf("presentation: unknown case %q: %w", u.Case, ErrTypeMismatch)
		}
		if err := Check(t.cases[idx].Type, u.Value); err != nil {
			return fmt.Errorf("case %q: %w", u.Case, err)
		}
		return nil
	default:
		return fmt.Errorf("presentation: unknown kind %d: %w", t.kind, ErrInvalidType)
	}
}

func checkIs[T any](t *Type, v any) error {
	if _, ok := v.(T); !ok {
		return fmt.Errorf("presentation: %s expects %T, got %T: %w", t, *new(T), v, ErrTypeMismatch)
	}
	return nil
}

// Coerce converts v into the canonical representation of t, accepting the
// natural Go spellings a service programmer would use: any integer type for
// any integer kind (with range checking), ints/floats for float kinds, typed
// slices ([]float64, []int32, []string, ...) for sequences, and nested
// map[string]any for structs. It returns the canonical value.
func Coerce(t *Type, v any) (any, error) {
	switch t.kind {
	case KindVoid:
		if v != nil {
			return nil, fmt.Errorf("presentation: void carries %T: %w", v, ErrTypeMismatch)
		}
		return nil, nil
	case KindBool:
		b, ok := v.(bool)
		if !ok {
			return nil, coerceErr(t, v)
		}
		return b, nil
	case KindInt8, KindInt16, KindInt32, KindInt64:
		return coerceInt(t, v)
	case KindUint8, KindUint16, KindUint32, KindUint64:
		return coerceUint(t, v)
	case KindFloat32:
		f, ok := toFloat(v)
		if !ok {
			return nil, coerceErr(t, v)
		}
		return float32(f), nil
	case KindFloat64:
		f, ok := toFloat(v)
		if !ok {
			return nil, coerceErr(t, v)
		}
		return f, nil
	case KindString:
		s, ok := v.(string)
		if !ok {
			return nil, coerceErr(t, v)
		}
		return s, nil
	case KindBytes:
		b, ok := v.([]byte)
		if !ok {
			return nil, coerceErr(t, v)
		}
		return b, nil
	case KindArray, KindVector:
		elems, ok := toAnySlice(v)
		if !ok {
			return nil, coerceErr(t, v)
		}
		if t.kind == KindArray && len(elems) != t.length {
			return nil, fmt.Errorf("presentation: array wants %d elements, got %d: %w", t.length, len(elems), ErrTypeMismatch)
		}
		out := make([]any, len(elems))
		for i, e := range elems {
			ce, err := Coerce(t.elem, e)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = ce
		}
		return out, nil
	case KindStruct:
		m, ok := v.(map[string]any)
		if !ok {
			return nil, coerceErr(t, v)
		}
		out := make(map[string]any, len(t.fields))
		for _, f := range t.fields {
			fv, present := m[f.Name]
			if !present {
				return nil, fmt.Errorf("presentation: missing field %q: %w", f.Name, ErrTypeMismatch)
			}
			cv, err := Coerce(f.Type, fv)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", f.Name, err)
			}
			out[f.Name] = cv
		}
		if len(m) != len(t.fields) {
			for name := range m {
				if t.FieldIndex(name) < 0 {
					return nil, fmt.Errorf("presentation: unknown field %q: %w", name, ErrTypeMismatch)
				}
			}
		}
		return out, nil
	case KindUnion:
		u, ok := v.(Union)
		if !ok {
			return nil, coerceErr(t, v)
		}
		idx := t.CaseIndex(u.Case)
		if idx < 0 {
			return nil, fmt.Errorf("presentation: unknown case %q: %w", u.Case, ErrTypeMismatch)
		}
		cv, err := Coerce(t.cases[idx].Type, u.Value)
		if err != nil {
			return nil, fmt.Errorf("case %q: %w", u.Case, err)
		}
		return Union{Case: u.Case, Value: cv}, nil
	default:
		return nil, fmt.Errorf("presentation: unknown kind %d: %w", t.kind, ErrInvalidType)
	}
}

func coerceErr(t *Type, v any) error {
	return fmt.Errorf("presentation: cannot use %T as %s: %w", v, t, ErrTypeMismatch)
}

// toInt64 widens any signed/unsigned Go integer to int64, reporting overflow.
func toInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint:
		if uint64(x) > math.MaxInt64 {
			return 0, false
		}
		return int64(x), true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint64:
		if x > math.MaxInt64 {
			return 0, false
		}
		return int64(x), true
	default:
		return 0, false
	}
}

func toUint64(v any) (uint64, bool) {
	switch x := v.(type) {
	case int:
		if x < 0 {
			return 0, false
		}
		return uint64(x), true
	case int8:
		if x < 0 {
			return 0, false
		}
		return uint64(x), true
	case int16:
		if x < 0 {
			return 0, false
		}
		return uint64(x), true
	case int32:
		if x < 0 {
			return 0, false
		}
		return uint64(x), true
	case int64:
		if x < 0 {
			return 0, false
		}
		return uint64(x), true
	case uint:
		return uint64(x), true
	case uint8:
		return uint64(x), true
	case uint16:
		return uint64(x), true
	case uint32:
		return uint64(x), true
	case uint64:
		return x, true
	default:
		return 0, false
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	default:
		if i, ok := toInt64(v); ok {
			return float64(i), true
		}
		return 0, false
	}
}

func coerceInt(t *Type, v any) (any, error) {
	i, ok := toInt64(v)
	if !ok {
		return nil, coerceErr(t, v)
	}
	switch t.kind {
	case KindInt8:
		if i < math.MinInt8 || i > math.MaxInt8 {
			return nil, rangeErr(t, i)
		}
		return int8(i), nil
	case KindInt16:
		if i < math.MinInt16 || i > math.MaxInt16 {
			return nil, rangeErr(t, i)
		}
		return int16(i), nil
	case KindInt32:
		if i < math.MinInt32 || i > math.MaxInt32 {
			return nil, rangeErr(t, i)
		}
		return int32(i), nil
	default:
		return i, nil
	}
}

func coerceUint(t *Type, v any) (any, error) {
	u, ok := toUint64(v)
	if !ok {
		return nil, coerceErr(t, v)
	}
	switch t.kind {
	case KindUint8:
		if u > math.MaxUint8 {
			return nil, rangeErr(t, int64(u))
		}
		return uint8(u), nil
	case KindUint16:
		if u > math.MaxUint16 {
			return nil, rangeErr(t, int64(u))
		}
		return uint16(u), nil
	case KindUint32:
		if u > math.MaxUint32 {
			return nil, rangeErr(t, int64(u))
		}
		return uint32(u), nil
	default:
		return u, nil
	}
}

func rangeErr(t *Type, i int64) error {
	return fmt.Errorf("presentation: value %d out of range for %s: %w", i, t, ErrTypeMismatch)
}

// toAnySlice accepts []any plus the common typed slices.
func toAnySlice(v any) ([]any, bool) {
	switch s := v.(type) {
	case []any:
		return s, true
	case []bool:
		return box(s), true
	case []int:
		return box(s), true
	case []int8:
		return box(s), true
	case []int16:
		return box(s), true
	case []int32:
		return box(s), true
	case []int64:
		return box(s), true
	case []uint8: // also []byte; vectors of u8 accept both spellings
		return box(s), true
	case []uint16:
		return box(s), true
	case []uint32:
		return box(s), true
	case []uint64:
		return box(s), true
	case []float32:
		return box(s), true
	case []float64:
		return box(s), true
	case []string:
		return box(s), true
	case []map[string]any:
		return box(s), true
	case []Union:
		return box(s), true
	default:
		return nil, false
	}
}

func box[T any](s []T) []any {
	out := make([]any, len(s))
	for i, e := range s {
		out[i] = e
	}
	return out
}

// Zero returns the canonical zero value of t.
func Zero(t *Type) any {
	switch t.kind {
	case KindVoid:
		return nil
	case KindBool:
		return false
	case KindInt8:
		return int8(0)
	case KindInt16:
		return int16(0)
	case KindInt32:
		return int32(0)
	case KindInt64:
		return int64(0)
	case KindUint8:
		return uint8(0)
	case KindUint16:
		return uint16(0)
	case KindUint32:
		return uint32(0)
	case KindUint64:
		return uint64(0)
	case KindFloat32:
		return float32(0)
	case KindFloat64:
		return float64(0)
	case KindString:
		return ""
	case KindBytes:
		return []byte{}
	case KindArray:
		s := make([]any, t.length)
		for i := range s {
			s[i] = Zero(t.elem)
		}
		return s
	case KindVector:
		return []any{}
	case KindStruct:
		m := make(map[string]any, len(t.fields))
		for _, f := range t.fields {
			m[f.Name] = Zero(f.Type)
		}
		return m
	case KindUnion:
		return Union{Case: t.cases[0].Name, Value: Zero(t.cases[0].Type)}
	default:
		return nil
	}
}

// DeepCopy clones a canonical value so caches can hand out values without
// aliasing publisher buffers.
func DeepCopy(v any) any {
	switch x := v.(type) {
	case []byte:
		out := make([]byte, len(x))
		copy(out, x)
		return out
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = DeepCopy(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = DeepCopy(e)
		}
		return out
	case Union:
		return Union{Case: x.Case, Value: DeepCopy(x.Value)}
	default:
		return v // immutable scalar
	}
}

// EqualValues reports semantic equality of two canonical values. Unlike
// reflect.DeepEqual it treats NaN as equal to NaN so "value unchanged"
// suppression (§4.1 OnChangeOnly) behaves for float telemetry.
func EqualValues(a, b any) bool {
	switch x := a.(type) {
	case float32:
		y, ok := b.(float32)
		if !ok {
			return false
		}
		return x == y || (math.IsNaN(float64(x)) && math.IsNaN(float64(y)))
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false
		}
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	case []byte:
		y, ok := b.([]byte)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !EqualValues(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		y, ok := b.(map[string]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, present := y[k]
			if !present || !EqualValues(v, w) {
				return false
			}
		}
		return true
	case Union:
		y, ok := b.(Union)
		if !ok {
			return false
		}
		return x.Case == y.Case && EqualValues(x.Value, y.Value)
	default:
		return a == b
	}
}
