package presentation

import (
	"fmt"
	"strings"
)

// Parse converts a canonical signature string (the syntax produced by
// Type.String) back into a descriptor. It is the inverse of String for every
// valid type:
//
//	primitives  bool i8 i16 i32 i64 u8 u16 u32 u64 f32 f64 str bytes
//	array       [N]T
//	vector      []T
//	struct      {name:T,name:T,...}
//	union       <name:T,name:void,...>
//
// Whitespace is permitted around tokens for hand-written signatures.
func Parse(sig string) (*Type, error) {
	p := &sigParser{in: sig}
	t, err := p.parseType(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("presentation: trailing input %q at %d: %w", p.in[p.pos:], p.pos, ErrInvalidType)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustParse is Parse that panics on error, for package-level type literals
// in tests and examples.
func MustParse(sig string) *Type {
	t, err := Parse(sig)
	if err != nil {
		panic(err)
	}
	return t
}

type sigParser struct {
	in  string
	pos int
}

func (p *sigParser) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("presentation: %s at %d in %q: %w", msg, p.pos, p.in, ErrInvalidType)
}

func (p *sigParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *sigParser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *sigParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

var primitiveTokens = map[string]*Type{
	"bool":  typeBool,
	"i8":    typeInt8,
	"i16":   typeInt16,
	"i32":   typeInt32,
	"i64":   typeInt64,
	"u8":    typeUint8,
	"u16":   typeUint16,
	"u32":   typeUint32,
	"u64":   typeUint64,
	"f32":   typeFloat32,
	"f64":   typeFloat64,
	"str":   typeString,
	"bytes": typeBytes,
	"void":  typeVoid,
}

func (p *sigParser) parseType(depth int) (*Type, error) {
	if depth > maxTypeDepth {
		return nil, p.errf("nesting exceeds %d", maxTypeDepth)
	}
	p.skipSpace()
	switch p.peek() {
	case 0:
		return nil, p.errf("unexpected end of signature")
	case '[':
		return p.parseSequence(depth)
	case '{':
		return p.parseStruct(depth)
	case '<':
		return p.parseUnion(depth)
	default:
		word := p.parseWord()
		if word == "" {
			return nil, p.errf("expected type")
		}
		t, ok := primitiveTokens[word]
		if !ok {
			return nil, p.errf("unknown type %q", word)
		}
		return t, nil
	}
}

func (p *sigParser) parseWord() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		break
	}
	return p.in[start:p.pos]
}

func (p *sigParser) parseSequence(depth int) (*Type, error) {
	p.pos++ // consume '['
	p.skipSpace()
	if p.peek() == ']' { // vector
		p.pos++
		elem, err := p.parseType(depth + 1)
		if err != nil {
			return nil, err
		}
		return VectorOf(elem), nil
	}
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return nil, p.errf("expected array length")
	}
	n := 0
	for _, c := range []byte(p.in[start:p.pos]) {
		n = n*10 + int(c-'0')
		if n > 1<<24 {
			return nil, p.errf("array length too large")
		}
	}
	if err := p.expect(']'); err != nil {
		return nil, err
	}
	elem, err := p.parseType(depth + 1)
	if err != nil {
		return nil, err
	}
	return ArrayOf(n, elem), nil
}

func (p *sigParser) parseStruct(depth int) (*Type, error) {
	p.pos++ // consume '{'
	var fields []Field
	for {
		name := p.parseWord()
		if name == "" {
			return nil, p.errf("expected field name")
		}
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		ft, err := p.parseType(depth + 1)
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: name, Type: ft})
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return StructOf(fields...), nil
		default:
			return nil, p.errf("expected ',' or '}'")
		}
	}
}

func (p *sigParser) parseUnion(depth int) (*Type, error) {
	p.pos++ // consume '<'
	var cases []Case
	for {
		name := p.parseWord()
		if name == "" {
			return nil, p.errf("expected case name")
		}
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		ct, err := p.parseType(depth + 1)
		if err != nil {
			return nil, err
		}
		cases = append(cases, Case{Name: name, Type: ct})
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case '>':
			p.pos++
			return UnionOf(cases...), nil
		default:
			return nil, p.errf("expected ',' or '>'")
		}
	}
}

// FormatValue renders a canonical value in a compact human-readable form for
// ground-station terminals and logs.
func FormatValue(t *Type, v any) string {
	var b strings.Builder
	formatValue(&b, t, v)
	return b.String()
}

func formatValue(b *strings.Builder, t *Type, v any) {
	if t == nil {
		fmt.Fprintf(b, "%v", v)
		return
	}
	switch t.kind {
	case KindVoid:
		b.WriteString("∅")
	case KindBytes:
		if bs, ok := v.([]byte); ok {
			fmt.Fprintf(b, "bytes[%d]", len(bs))
			return
		}
		fmt.Fprintf(b, "%v", v)
	case KindArray, KindVector:
		s, ok := v.([]any)
		if !ok {
			fmt.Fprintf(b, "%v", v)
			return
		}
		b.WriteByte('[')
		for i, e := range s {
			if i > 0 {
				b.WriteByte(' ')
			}
			formatValue(b, t.elem, e)
		}
		b.WriteByte(']')
	case KindStruct:
		m, ok := v.(map[string]any)
		if !ok {
			fmt.Fprintf(b, "%v", v)
			return
		}
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(f.Name)
			b.WriteByte('=')
			formatValue(b, f.Type, m[f.Name])
		}
		b.WriteByte('}')
	case KindUnion:
		u, ok := v.(Union)
		if !ok {
			fmt.Fprintf(b, "%v", v)
			return
		}
		b.WriteString(u.Case)
		idx := t.CaseIndex(u.Case)
		if idx >= 0 && t.cases[idx].Type.kind != KindVoid {
			b.WriteByte('(')
			formatValue(b, t.cases[idx].Type, u.Value)
			b.WriteByte(')')
		}
	default:
		fmt.Fprintf(b, "%v", v)
	}
}
