package variables

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// fakeFabric runs handlers inline and records outgoing frames.
type fakeFabric struct {
	self transport.NodeID
	dir  *naming.Directory
	seq  atomic.Uint64

	// offerChanges counts OfferChanged notifications (the container would
	// broadcast a discovery delta for each).
	offerChanges atomic.Uint64

	mu       sync.Mutex
	group    map[string][]*protocol.Frame
	reliable []*protocol.Frame
	joined   map[string]int
}

func newFakeFabric(self transport.NodeID) *fakeFabric {
	return &fakeFabric{
		self:   self,
		dir:    naming.NewDirectory(time.Minute),
		group:  make(map[string][]*protocol.Frame),
		joined: make(map[string]int),
	}
}

func (f *fakeFabric) Self() transport.NodeID       { return f.self }
func (f *fakeFabric) Encoding() encoding.Encoding  { return encoding.Binary{} }
func (f *fakeFabric) Directory() *naming.Directory { return f.dir }
func (f *fakeFabric) NextSeq() uint64              { return f.seq.Add(1) }
func (f *fakeFabric) OfferChanged()                { f.offerChanges.Add(1) }
func (f *fakeFabric) Schedule(_ qos.Priority, job func()) error {
	job()
	return nil
}

func (f *fakeFabric) SendBestEffort(transport.NodeID, *protocol.Frame) error { return nil }

func (f *fakeFabric) SendGroup(group string, fr *protocol.Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group[group] = append(f.group[group], copyFrame(fr))
	return nil
}

// copyFrame snapshots a frame: the engine recycles frame and payload once
// the send returns, per the fabric no-retention contract.
func copyFrame(fr *protocol.Frame) *protocol.Frame {
	cp := *fr
	cp.Payload = append([]byte(nil), fr.Payload...)
	return &cp
}

func (f *fakeFabric) SendReliable(_ transport.NodeID, fr *protocol.Frame, _ qos.Reliability, done func(error)) {
	f.mu.Lock()
	f.reliable = append(f.reliable, copyFrame(fr))
	f.mu.Unlock()
	if done != nil {
		done(nil)
	}
}

func (f *fakeFabric) Join(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]++
	return nil
}

func (f *fakeFabric) Leave(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]--
	return nil
}

func (f *fakeFabric) groupFrames(group string) []*protocol.Frame {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*protocol.Frame(nil), f.group[group]...)
}

var posType = presentation.MustParse("{lat:f64,lon:f64}")

func TestSamplePayloadRoundTrip(t *testing.T) {
	enc := encoding.Binary{}
	ts := time.Unix(1_750_000_000, 123456789)
	val := map[string]any{"lat": 41.0, "lon": 2.0}
	payload, err := encodeSamplePayload(enc, posType, val, ts, 750*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, gotTS, validity, pub, err := decodeSamplePayload(enc, posType, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !presentation.EqualValues(val, got) {
		t.Errorf("value %v", got)
	}
	if !gotTS.Equal(ts) {
		t.Errorf("ts %v vs %v", gotTS, ts)
	}
	if validity != 750*time.Millisecond {
		t.Errorf("validity %v", validity)
	}
	if pub != 7 {
		t.Errorf("incarnation %d, want 7", pub)
	}
	if _, _, _, _, err := decodeSamplePayload(enc, posType, payload[:4]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestOfferValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if _, err := e.Offer("v", "svc", presentation.ArrayOf(0, presentation.Int8()), qos.VariableQoS{}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := e.Offer("v", "svc", posType, qos.VariableQoS{Validity: -1}); err == nil {
		t.Error("invalid QoS accepted")
	}
	if _, err := e.Offer("v", "svc", posType, qos.VariableQoS{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer("v", "svc", posType, qos.VariableQoS{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate: %v", err)
	}
	if e.PublisherCount() != 1 {
		t.Errorf("PublisherCount = %d", e.PublisherCount())
	}
}

func TestPublishMulticastsAndCaches(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{Validity: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(map[string]any{"lat": 1.0, "lon": 2.0}); err != nil {
		t.Fatal(err)
	}
	frames := f.groupFrames("v:v")
	if len(frames) != 1 || frames[0].Type != protocol.MTSample || frames[0].Seq != 1 {
		t.Fatalf("frames = %+v", frames)
	}
	v, _, ok := p.snapshot()
	if !ok || !presentation.EqualValues(v, map[string]any{"lat": 1.0, "lon": 2.0}) {
		t.Error("snapshot not cached")
	}
	// Coercion failures surface.
	if err := p.Publish("garbage"); err == nil {
		t.Error("bad value accepted")
	}
	p.Close()
	if err := p.Publish(map[string]any{"lat": 1.0, "lon": 2.0}); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
}

func TestOnChangeOnlySuppression(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{OnChangeOnly: true, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]any{"lat": 1.0, "lon": 2.0}
	for i := 0; i < 5; i++ {
		if err := p.Publish(val); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(f.groupFrames("v:v")); got != 1 {
		t.Errorf("unchanged value sent %d times, want 1", got)
	}
	// A changed value goes out immediately.
	if err := p.Publish(map[string]any{"lat": 9.0, "lon": 2.0}); err != nil {
		t.Fatal(err)
	}
	if got := len(f.groupFrames("v:v")); got != 2 {
		t.Errorf("changed value not sent: %d frames", got)
	}
}

func TestSubscribeTypeMismatchRejected(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	f.dir.Apply(&naming.Announcement{
		Node: "remote", Epoch: 1,
		Records: []naming.Record{{
			Kind: naming.KindVariable, Name: "v", Service: "svc",
			Node: "remote", TypeSig: "{x:i32}",
		}},
	}, time.Now())
	if _, err := e.Subscribe("v", posType, SubscribeOptions{}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("want ErrTypeMismatch, got %v", err)
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(); !errors.Is(err, ErrNoValue) {
		t.Errorf("empty Get: %v", err)
	}
	if f.joined["v:v"] != 1 {
		t.Error("subscription did not join the group")
	}
	s.Close()
	s.Close() // idempotent
	if f.joined["v:v"] != 0 {
		t.Error("close did not leave the group")
	}
}

func TestHandleSampleDeliversAndOrders(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	var got atomic.Value
	s, err := e.Subscribe("v", posType, SubscribeOptions{
		OnSample: func(v any, _ time.Time) { got.Store(v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	enc := encoding.Binary{}
	mk := func(lat float64, seq uint64) *protocol.Frame {
		payload, err := encodeSamplePayload(enc, posType, map[string]any{"lat": lat, "lon": 0.0}, time.Now(), 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		return &protocol.Frame{
			Type: protocol.MTSample, Encoding: enc.ID(), Channel: "v",
			Seq: seq, Payload: payload,
		}
	}
	e.HandleSample("remote", mk(1.0, 5))
	v, _, err := s.Get()
	if err != nil || v.(map[string]any)["lat"] != 1.0 {
		t.Fatalf("first sample: %v %v", v, err)
	}
	// A reordered older sample must not overwrite.
	e.HandleSample("remote", mk(0.5, 3))
	v, _, _ = s.Get()
	if v.(map[string]any)["lat"] != 1.0 {
		t.Error("stale sample overwrote newer value")
	}
	// Newer seq wins.
	e.HandleSample("remote", mk(2.0, 6))
	v, _, _ = s.Get()
	if v.(map[string]any)["lat"] != 2.0 {
		t.Error("newer sample rejected")
	}
	samples, _ := s.Stats()
	if samples != 2 {
		t.Errorf("samples = %d, want 2 (stale one dropped)", samples)
	}
}

func TestHandleSnapshotReqRepliesReliably(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	// No value yet: no reply.
	e.HandleSnapshotReq("asker", &protocol.Frame{Type: protocol.MTSnapshotReq, Channel: "v"})
	if len(f.reliable) != 0 {
		t.Error("snapshot replied before any publish")
	}
	if err := p.Publish(map[string]any{"lat": 4.0, "lon": 5.0}); err != nil {
		t.Fatal(err)
	}
	e.HandleSnapshotReq("asker", &protocol.Frame{Type: protocol.MTSnapshotReq, Channel: "v"})
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.reliable) != 1 || f.reliable[0].Type != protocol.MTSnapshotRep {
		t.Fatalf("reliable frames = %+v", f.reliable)
	}
}

func TestRecords(t *testing.T) {
	e := New(newFakeFabric("node9"))
	if _, err := e.Offer("gps.position", "gps", posType, qos.VariableQoS{}); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Kind != naming.KindVariable || r.Name != "gps.position" ||
		r.Node != "node9" || r.TypeSig != posType.String() {
		t.Errorf("record = %+v", r)
	}
}

// sampleFrame builds an MTSample frame for subscriber-side handler tests.
func sampleFrame(t *testing.T, lat float64, pub uint32, seq uint64, ts time.Time) *protocol.Frame {
	t.Helper()
	enc := encoding.Binary{}
	payload, err := encodeSamplePayload(enc, posType, map[string]any{"lat": lat, "lon": 0.0}, ts, 0, pub)
	if err != nil {
		t.Fatal(err)
	}
	return &protocol.Frame{
		Type: protocol.MTSample, Encoding: enc.ID(), Channel: "v",
		Seq: seq, Payload: payload,
	}
}

func TestPublisherRestartResetsReorderFilter(t *testing.T) {
	// A restarted publisher starts a fresh seq numbering at 1. Before the
	// incarnation id rode on the wire, the subscriber's reorder filter
	// discarded every new sample until the new seq overtook the old
	// high-water mark; now the incarnation change resets the filter.
	e := New(newFakeFabric("n"))
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First incarnation, deep into its sequence numbering.
	e.HandleSample("remote", sampleFrame(t, 1.0, 101, 50, time.Now()))
	if v, _, err := s.Get(); err != nil || v.(map[string]any)["lat"] != 1.0 {
		t.Fatalf("first incarnation sample: %v %v", v, err)
	}
	// Publisher restarts: new incarnation, seq back to 1.
	e.HandleSample("remote", sampleFrame(t, 2.0, 202, 1, time.Now()))
	v, _, err := s.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(map[string]any)["lat"] != 2.0 {
		t.Fatal("restarted publisher's first sample discarded as reordered")
	}
	// The filter still works within the new incarnation.
	e.HandleSample("remote", sampleFrame(t, 3.0, 202, 3, time.Now()))
	e.HandleSample("remote", sampleFrame(t, 2.5, 202, 2, time.Now()))
	if v, _, _ := s.Get(); v.(map[string]any)["lat"] != 3.0 {
		t.Error("reorder filter broken after incarnation reset")
	}
	// A delayed duplicate from the dead incarnation (older publish
	// instant) must not flip the filter back and reinstall stale data.
	e.HandleSample("remote", sampleFrame(t, 0.5, 101, 50, time.Now().Add(-time.Minute)))
	if v, _, _ := s.Get(); v.(map[string]any)["lat"] != 3.0 {
		t.Error("pre-restart straggler overwrote the fresh value")
	}
	// And the current incarnation keeps flowing afterwards.
	e.HandleSample("remote", sampleFrame(t, 4.0, 202, 4, time.Now()))
	if v, _, _ := s.Get(); v.(map[string]any)["lat"] != 4.0 {
		t.Error("current incarnation rejected after straggler")
	}
}

func TestPublisherTakeoverWithLaggingClock(t *testing.T) {
	// A replacement publisher on another node whose clock lags the dead
	// one must not be locked out past the grace window: once the cached
	// sample's arrival is no longer recent, the incarnation change wins
	// regardless of the publisher timestamps.
	e := New(newFakeFabric("n"))
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Dead publisher's clock ran a minute ahead.
	e.HandleSample("remote", sampleFrame(t, 1.0, 101, 9, time.Now().Add(time.Minute)))
	// Simulate the grace window having elapsed since that arrival.
	s.mu.Lock()
	s.rxAt = time.Now().Add(-2 * incarnationGrace)
	s.mu.Unlock()
	// Replacement publisher, accurate (therefore "older") clock.
	e.HandleSample("remote", sampleFrame(t, 5.0, 303, 1, time.Now()))
	if v, _, err := s.Get(); err != nil || v.(map[string]any)["lat"] != 5.0 {
		t.Fatalf("takeover publisher locked out: %v %v", v, err)
	}
}

func TestSnapshotOfOldValueIsStale(t *testing.T) {
	// A snapshot reply can carry a value published long ago; its age at
	// arrival (per the publisher clock, clamped >= 0) must count against
	// validity, so a long-expired value is not served as fresh just
	// because it arrived now.
	e := New(newFakeFabric("n"))
	s, err := e.Subscribe("v", posType, SubscribeOptions{
		QoS: qos.VariableQoS{Validity: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e.HandleSnapshotRep("pub", sampleFrame(t, 1.0, 0, 0, time.Now().Add(-10*time.Minute)))
	if _, _, err := s.Get(); !errors.Is(err, ErrStale) {
		t.Errorf("10-minute-old snapshot served as fresh: %v", err)
	}
	// A genuinely fresh sample is served.
	e.HandleSample("remote", sampleFrame(t, 2.0, 55, 1, time.Now()))
	if v, _, err := s.Get(); err != nil || v.(map[string]any)["lat"] != 2.0 {
		t.Errorf("fresh sample: %v %v", v, err)
	}
	// And a publisher clock running ahead cannot subtract age.
	e.HandleSample("remote", sampleFrame(t, 3.0, 55, 2, time.Now().Add(time.Hour)))
	if v, _, err := s.Get(); err != nil || v.(map[string]any)["lat"] != 3.0 {
		t.Errorf("ahead-clock sample: %v %v", v, err)
	}
}

func TestRequireInitialWakesOnArrival(t *testing.T) {
	// The guaranteed-initial-value wait must wake as soon as the snapshot
	// reply lands, well before InitialTimeout, without polling.
	f := newFakeFabric("n")
	e := New(f)
	f.dir.Apply(&naming.Announcement{Node: "pub", Epoch: 1, Records: []naming.Record{
		{Kind: naming.KindVariable, Name: "v", Service: "svc", Node: "pub", TypeSig: posType.String()},
	}}, time.Now())

	const arriveAfter = 30 * time.Millisecond
	go func() {
		time.Sleep(arriveAfter)
		e.HandleSnapshotRep("pub", sampleFrame(t, 9.0, 0, 0, time.Now()))
	}()
	start := time.Now()
	s, err := e.Subscribe("v", posType, SubscribeOptions{
		RequireInitial: true,
		InitialTimeout: 2 * time.Second,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if v, _, err := s.Get(); err != nil || v.(map[string]any)["lat"] != 9.0 {
		t.Fatalf("initial value: %v %v", v, err)
	}
	if elapsed >= time.Second {
		t.Errorf("initial wait took %v; should wake at ~%v", elapsed, arriveAfter)
	}
}

func TestSilenceUsesReceiverClock(t *testing.T) {
	// The publisher's embedded timestamp is an hour in the past (clock
	// skew); the OnTimeout warning must report silence measured from the
	// receiver-side arrival instant, not a bogus ~1h duration.
	e := New(newFakeFabric("n"))
	silences := make(chan time.Duration, 4)
	s, err := e.Subscribe("v", posType, SubscribeOptions{
		QoS:       qos.VariableQoS{Period: 20 * time.Millisecond, DeadlineFactor: 2},
		OnTimeout: func(d time.Duration) { silences <- d },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	skewed := time.Now().Add(-time.Hour)
	e.HandleSample("remote", sampleFrame(t, 1.0, 77, 1, skewed))
	select {
	case silence := <-silences:
		if silence < 0 || silence > 10*time.Second {
			t.Errorf("silence = %v; want a small receiver-side duration", silence)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no timeout warning fired")
	}
}

func TestForeignEncodingIgnored(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e.HandleSample("remote", &protocol.Frame{
		Type: protocol.MTSample, Encoding: 99, Channel: "v", Seq: 1,
		Payload: []byte{1, 2, 3},
	})
	if _, _, err := s.Get(); !errors.Is(err, ErrNoValue) {
		t.Error("foreign-encoded sample was accepted")
	}
}

// TestSnapshotReadAPIs covers the public last-value read surface the
// ground gateway builds its cache on: Publisher.Snapshot before/after a
// publish, Subscription.Snapshot ignoring validity, and both returning
// copies rather than aliases of the cached value.
func TestSnapshotReadAPIs(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{Validity: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Snapshot(); ok {
		t.Fatal("Publisher.Snapshot reported a value before any publish")
	}
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, ok := s.Snapshot(); ok {
		t.Fatal("Subscription.Snapshot reported a value before any sample")
	}

	want := map[string]any{"lat": 1.0, "lon": 2.0}
	if err := p.Publish(want); err != nil {
		t.Fatal(err)
	}
	v, ts, ok := p.Snapshot()
	if !ok || ts.IsZero() || !presentation.EqualValues(v, want) {
		t.Fatalf("Publisher.Snapshot = %v, %v, %v", v, ts, ok)
	}
	// Mutating the returned map must not touch the cache.
	v.(map[string]any)["lat"] = -99.0
	if again, _, _ := p.Snapshot(); !presentation.EqualValues(again, want) {
		t.Fatal("Publisher.Snapshot aliases its cache")
	}

	// The local bypass delivered the sample to the subscription; its
	// snapshot serves the cached value even after validity lapses, where
	// Get reports ErrStale.
	sv, _, ok := s.Snapshot()
	if !ok || !presentation.EqualValues(sv, want) {
		t.Fatalf("Subscription.Snapshot = %v, %v", sv, ok)
	}
	sv.(map[string]any)["lon"] = -99.0
	time.Sleep(15 * time.Millisecond)
	if _, _, err := s.Get(); !errors.Is(err, ErrStale) {
		t.Fatalf("Get past validity: %v", err)
	}
	if again, _, ok := s.Snapshot(); !ok || !presentation.EqualValues(again, want) {
		t.Fatalf("stale Snapshot = %v, %v (want cached value, no staleness)", again, ok)
	}
}
