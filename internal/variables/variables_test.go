package variables

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// fakeFabric runs handlers inline and records outgoing frames.
type fakeFabric struct {
	self transport.NodeID
	dir  *naming.Directory
	seq  atomic.Uint64

	mu       sync.Mutex
	group    map[string][]*protocol.Frame
	reliable []*protocol.Frame
	joined   map[string]int
}

func newFakeFabric(self transport.NodeID) *fakeFabric {
	return &fakeFabric{
		self:   self,
		dir:    naming.NewDirectory(time.Minute),
		group:  make(map[string][]*protocol.Frame),
		joined: make(map[string]int),
	}
}

func (f *fakeFabric) Self() transport.NodeID       { return f.self }
func (f *fakeFabric) Encoding() encoding.Encoding  { return encoding.Binary{} }
func (f *fakeFabric) Directory() *naming.Directory { return f.dir }
func (f *fakeFabric) NextSeq() uint64              { return f.seq.Add(1) }
func (f *fakeFabric) Schedule(_ qos.Priority, job func()) error {
	job()
	return nil
}

func (f *fakeFabric) SendBestEffort(transport.NodeID, *protocol.Frame) error { return nil }

func (f *fakeFabric) SendGroup(group string, fr *protocol.Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group[group] = append(f.group[group], fr)
	return nil
}

func (f *fakeFabric) SendReliable(_ transport.NodeID, fr *protocol.Frame, _ qos.Reliability, done func(error)) {
	f.mu.Lock()
	f.reliable = append(f.reliable, fr)
	f.mu.Unlock()
	if done != nil {
		done(nil)
	}
}

func (f *fakeFabric) Join(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]++
	return nil
}

func (f *fakeFabric) Leave(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]--
	return nil
}

func (f *fakeFabric) groupFrames(group string) []*protocol.Frame {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*protocol.Frame(nil), f.group[group]...)
}

var posType = presentation.MustParse("{lat:f64,lon:f64}")

func TestSamplePayloadRoundTrip(t *testing.T) {
	enc := encoding.Binary{}
	ts := time.Unix(1_750_000_000, 123456789)
	val := map[string]any{"lat": 41.0, "lon": 2.0}
	payload, err := encodeSamplePayload(enc, posType, val, ts, 750*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got, gotTS, validity, err := decodeSamplePayload(enc, posType, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !presentation.EqualValues(val, got) {
		t.Errorf("value %v", got)
	}
	if !gotTS.Equal(ts) {
		t.Errorf("ts %v vs %v", gotTS, ts)
	}
	if validity != 750*time.Millisecond {
		t.Errorf("validity %v", validity)
	}
	if _, _, _, err := decodeSamplePayload(enc, posType, payload[:4]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestOfferValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if _, err := e.Offer("v", "svc", presentation.ArrayOf(0, presentation.Int8()), qos.VariableQoS{}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := e.Offer("v", "svc", posType, qos.VariableQoS{Validity: -1}); err == nil {
		t.Error("invalid QoS accepted")
	}
	if _, err := e.Offer("v", "svc", posType, qos.VariableQoS{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer("v", "svc", posType, qos.VariableQoS{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate: %v", err)
	}
	if e.PublisherCount() != 1 {
		t.Errorf("PublisherCount = %d", e.PublisherCount())
	}
}

func TestPublishMulticastsAndCaches(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{Validity: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(map[string]any{"lat": 1.0, "lon": 2.0}); err != nil {
		t.Fatal(err)
	}
	frames := f.groupFrames("v:v")
	if len(frames) != 1 || frames[0].Type != protocol.MTSample || frames[0].Seq != 1 {
		t.Fatalf("frames = %+v", frames)
	}
	v, _, ok := p.snapshot()
	if !ok || !presentation.EqualValues(v, map[string]any{"lat": 1.0, "lon": 2.0}) {
		t.Error("snapshot not cached")
	}
	// Coercion failures surface.
	if err := p.Publish("garbage"); err == nil {
		t.Error("bad value accepted")
	}
	p.Close()
	if err := p.Publish(map[string]any{"lat": 1.0, "lon": 2.0}); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
}

func TestOnChangeOnlySuppression(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{OnChangeOnly: true, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]any{"lat": 1.0, "lon": 2.0}
	for i := 0; i < 5; i++ {
		if err := p.Publish(val); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(f.groupFrames("v:v")); got != 1 {
		t.Errorf("unchanged value sent %d times, want 1", got)
	}
	// A changed value goes out immediately.
	if err := p.Publish(map[string]any{"lat": 9.0, "lon": 2.0}); err != nil {
		t.Fatal(err)
	}
	if got := len(f.groupFrames("v:v")); got != 2 {
		t.Errorf("changed value not sent: %d frames", got)
	}
}

func TestSubscribeTypeMismatchRejected(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	f.dir.Apply(&naming.Announcement{
		Node: "remote", Epoch: 1,
		Records: []naming.Record{{
			Kind: naming.KindVariable, Name: "v", Service: "svc",
			Node: "remote", TypeSig: "{x:i32}",
		}},
	}, time.Now())
	if _, err := e.Subscribe("v", posType, SubscribeOptions{}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("want ErrTypeMismatch, got %v", err)
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(); !errors.Is(err, ErrNoValue) {
		t.Errorf("empty Get: %v", err)
	}
	if f.joined["v:v"] != 1 {
		t.Error("subscription did not join the group")
	}
	s.Close()
	s.Close() // idempotent
	if f.joined["v:v"] != 0 {
		t.Error("close did not leave the group")
	}
}

func TestHandleSampleDeliversAndOrders(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	var got atomic.Value
	s, err := e.Subscribe("v", posType, SubscribeOptions{
		OnSample: func(v any, _ time.Time) { got.Store(v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	enc := encoding.Binary{}
	mk := func(lat float64, seq uint64) *protocol.Frame {
		payload, err := encodeSamplePayload(enc, posType, map[string]any{"lat": lat, "lon": 0.0}, time.Now(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return &protocol.Frame{
			Type: protocol.MTSample, Encoding: enc.ID(), Channel: "v",
			Seq: seq, Payload: payload,
		}
	}
	e.HandleSample("remote", mk(1.0, 5))
	v, _, err := s.Get()
	if err != nil || v.(map[string]any)["lat"] != 1.0 {
		t.Fatalf("first sample: %v %v", v, err)
	}
	// A reordered older sample must not overwrite.
	e.HandleSample("remote", mk(0.5, 3))
	v, _, _ = s.Get()
	if v.(map[string]any)["lat"] != 1.0 {
		t.Error("stale sample overwrote newer value")
	}
	// Newer seq wins.
	e.HandleSample("remote", mk(2.0, 6))
	v, _, _ = s.Get()
	if v.(map[string]any)["lat"] != 2.0 {
		t.Error("newer sample rejected")
	}
	samples, _ := s.Stats()
	if samples != 2 {
		t.Errorf("samples = %d, want 2 (stale one dropped)", samples)
	}
}

func TestHandleSnapshotReqRepliesReliably(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	p, err := e.Offer("v", "svc", posType, qos.VariableQoS{})
	if err != nil {
		t.Fatal(err)
	}
	// No value yet: no reply.
	e.HandleSnapshotReq("asker", &protocol.Frame{Type: protocol.MTSnapshotReq, Channel: "v"})
	if len(f.reliable) != 0 {
		t.Error("snapshot replied before any publish")
	}
	if err := p.Publish(map[string]any{"lat": 4.0, "lon": 5.0}); err != nil {
		t.Fatal(err)
	}
	e.HandleSnapshotReq("asker", &protocol.Frame{Type: protocol.MTSnapshotReq, Channel: "v"})
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.reliable) != 1 || f.reliable[0].Type != protocol.MTSnapshotRep {
		t.Fatalf("reliable frames = %+v", f.reliable)
	}
}

func TestRecords(t *testing.T) {
	e := New(newFakeFabric("node9"))
	if _, err := e.Offer("gps.position", "gps", posType, qos.VariableQoS{}); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Kind != naming.KindVariable || r.Name != "gps.position" ||
		r.Node != "node9" || r.TypeSig != posType.String() {
		t.Errorf("record = %+v", r)
	}
}

func TestForeignEncodingIgnored(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	s, err := e.Subscribe("v", posType, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e.HandleSample("remote", &protocol.Frame{
		Type: protocol.MTSample, Encoding: 99, Channel: "v", Seq: 1,
		Payload: []byte{1, 2, 3},
	})
	if _, _, err := s.Get(); !errors.Is(err, ErrNoValue) {
		t.Error("foreign-encoded sample was accepted")
	}
}
