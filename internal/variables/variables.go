// Package variables implements the paper's §4.1 communication primitive:
// best-effort publish/subscribe distribution of short structured values.
//
// Samples travel as single multicast datagrams; receivers tolerate loss.
// Three QoS mechanisms from the paper are implemented:
//
//   - validity: a sample may be served from the subscriber cache as long as
//     it is still valid ("subscribed services can receive previous values
//     as long as they are still valid");
//   - silence detection: if a publisher goes quiet past its declared
//     period, "the service container will warn of this timeout circumstance
//     to the affected services";
//   - guaranteed initial value: "the middleware has a mechanism that
//     guarantees an initial exact value" — implemented as a reliable
//     snapshot request/reply exchange with the publisher.
package variables

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/encoding"
	"uavmw/internal/fabric"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// Variable wire-path error codes.
var (
	codeVarShed  = uerr.Register("variables.dispatch_shed", uerr.CatAdmission)
	codeVarLeave = uerr.Register("variables.leave_group", uerr.CatResource)
)

// Errors.
var (
	// ErrStale reports a cached value past its validity.
	ErrStale = errors.New("variable value stale")
	// ErrNoValue reports a subscription that has not yet received data.
	ErrNoValue = errors.New("no value received yet")
	// ErrDuplicateName reports a second publisher registration of a name
	// within one container.
	ErrDuplicateName = errors.New("variable already published")
	// ErrTypeMismatch reports a subscriber/publisher type disagreement.
	ErrTypeMismatch = errors.New("variable type mismatch")
	// ErrClosed reports use of a closed handle.
	ErrClosed = errors.New("variable handle closed")
)

// Engine is the per-container variable runtime.
type Engine struct {
	f   fabric.Fabric
	reg *metrics.Registry

	mu   sync.Mutex
	pubs map[string]*Publisher
	subs map[string][]*Subscription
}

// New builds the engine for a container.
func New(f fabric.Fabric) *Engine {
	return &Engine{
		f:    f,
		reg:  fabric.MetricsOf(f),
		pubs: make(map[string]*Publisher),
		subs: make(map[string][]*Subscription),
	}
}

// sample payload layout (after the frame header):
//
//	i64 publish-time unix-nanos (publisher clock)
//	u32 validity milliseconds (0 = never expires)
//	u32 publisher incarnation (non-zero; resets subscriber seq filters)
//	raw encoded value

// appendSamplePayload appends the sample header and encoded body onto dst
// (typically a pooled buffer sized 16 + len(body)).
func appendSamplePayload(dst []byte, body []byte, ts time.Time, validity time.Duration, pub uint32) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(ts.UnixNano()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(validity/time.Millisecond))
	dst = binary.BigEndian.AppendUint32(dst, pub)
	return append(dst, body...)
}

func encodeSamplePayload(enc encoding.Encoding, t *presentation.Type, v any, ts time.Time, validity time.Duration, pub uint32) ([]byte, error) {
	body, err := enc.Marshal(t, v)
	if err != nil {
		return nil, err
	}
	//wirepath:alloc exact-size, GC-owned encode for callers that retain the result
	return appendSamplePayload(make([]byte, 0, 16+len(body)), body, ts, validity, pub), nil
}

func decodeSamplePayload(enc encoding.Encoding, t *presentation.Type, payload []byte) (v any, ts time.Time, validity time.Duration, pub uint32, err error) {
	r := encoding.NewReader(payload)
	tsn := r.Int64()
	valMs := r.Uint32()
	pub = r.Uint32()
	if err := r.Err(); err != nil {
		return nil, time.Time{}, 0, 0, err
	}
	body := r.Raw(r.Remaining())
	v, err = enc.Unmarshal(t, body)
	if err != nil {
		return nil, time.Time{}, 0, 0, err
	}
	return v, time.Unix(0, tsn), time.Duration(valMs) * time.Millisecond, pub, nil
}

// Offer registers a publisher for name with the given payload type and QoS.
func (e *Engine) Offer(name, service string, t *presentation.Type, q qos.VariableQoS) (*Publisher, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	codec, err := encoding.Compile(t)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if _, dup := e.pubs[name]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("variables: %q: %w", name, ErrDuplicateName)
	}
	p := &Publisher{
		engine:  e,
		name:    name,
		service: service,
		typ:     t,
		codec:   codec,
		q:       q,
		id:      protocol.NewIncarnation(),
	}
	e.pubs[name] = p
	e.mu.Unlock()
	e.f.OfferChanged()
	return p, nil
}

// Publisher is the provider-side handle of one variable.
type Publisher struct {
	engine  *Engine
	name    string
	service string
	typ     *presentation.Type
	codec   *encoding.Codec
	q       qos.VariableQoS

	// id is this publisher's incarnation, carried in every sample so a
	// restarted publisher (fresh seq numbering) is not filtered out by
	// subscribers still holding the previous incarnation's high seq.
	id uint32

	mu       sync.Mutex
	last     any
	lastTS   time.Time
	lastSent time.Time
	seq      uint64
	closed   bool
}

// Name returns the variable name.
func (p *Publisher) Name() string { return p.name }

// Type returns the payload type.
func (p *Publisher) Type() *presentation.Type { return p.typ }

// Publish coerces v to the variable type and distributes it: one multicast
// datagram to remote subscribers plus direct (bypass) delivery to local
// ones. With OnChangeOnly, unchanged values inside the period are
// suppressed.
func (p *Publisher) Publish(v any) error {
	cv, err := presentation.Coerce(p.typ, v)
	if err != nil {
		return err
	}
	now := time.Now()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("variables: %q: %w", p.name, ErrClosed)
	}
	if p.q.OnChangeOnly && p.lastTS != (time.Time{}) &&
		presentation.EqualValues(p.last, cv) &&
		(p.q.Period <= 0 || now.Sub(p.lastSent) < p.q.Period) {
		// Unchanged inside the refresh window: cache only.
		p.last = cv
		p.lastTS = now
		p.mu.Unlock()
		return nil
	}
	p.seq++
	seq := p.seq
	p.last = presentation.DeepCopy(cv)
	p.lastTS = now
	p.lastSent = now
	p.mu.Unlock()

	enc := p.engine.f.Encoding()
	body, err := enc.Marshal(p.typ, cv)
	if err != nil {
		return err
	}
	// Pooled sample assembly: the payload buffer and the frame both come
	// from pools and go back the moment SendGroup returns — the fabric
	// encodes synchronously and retains neither.
	payload := appendSamplePayload(bufpool.Get(16+len(body)), body, now, p.q.Validity, p.id)
	frame := protocol.GetFrame()
	*frame = protocol.Frame{
		Type:     protocol.MTSample,
		Encoding: enc.ID(),
		Priority: p.q.Priority,
		Channel:  p.name,
		Seq:      seq,
		Payload:  payload,
	}
	// Local bypass first: same-container subscribers get the value with
	// no encode/decode on the hot path (§4.4's bypass principle applied
	// to variables; experiment F2).
	p.engine.deliverLocal(p.name, cv, now, p.q.Validity)
	err = p.engine.f.SendGroup(fabric.VarGroup(p.name), frame)
	protocol.PutFrame(frame)
	bufpool.Put(payload)
	if err != nil {
		return fmt.Errorf("variables: publish %q: %w", p.name, err)
	}
	return nil
}

// Snapshot returns a copy of the last published value and its publication
// instant, or ok=false before the first Publish. This is the ground-side
// read API the gateway's last-value cache mirrors: a consumer joining late
// reads the current value without a wire exchange.
func (p *Publisher) Snapshot() (v any, ts time.Time, ok bool) {
	return p.snapshot()
}

// snapshot returns the last published value (for the snapshot protocol).
func (p *Publisher) snapshot() (any, time.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastTS == (time.Time{}) {
		return nil, time.Time{}, false
	}
	return presentation.DeepCopy(p.last), p.lastTS, true
}

// Close withdraws the publisher.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.engine.mu.Lock()
	delete(p.engine.pubs, p.name)
	p.engine.mu.Unlock()
	p.engine.f.OfferChanged()
}

// Record returns the naming record for announcements.
func (p *Publisher) Record() naming.Record {
	return naming.Record{
		Kind:    naming.KindVariable,
		Name:    p.name,
		Service: p.service,
		Node:    p.engine.f.Self(),
		TypeSig: p.typ.String(),
	}
}

// SubscribeOptions tune a subscription.
type SubscribeOptions struct {
	// QoS is the subscriber's expectation; Period drives silence
	// detection and Validity overrides the publisher's per-sample
	// validity when longer... it does not: the effective validity is the
	// per-sample one. Subscriber Validity is used only when the sample
	// carries none.
	QoS qos.VariableQoS
	// RequireInitial requests the guaranteed initial exact value.
	RequireInitial bool
	// InitialTimeout bounds the snapshot exchange (default 1s).
	InitialTimeout time.Duration
	// OnSample, if set, is invoked (on the container scheduler) for every
	// received sample.
	OnSample func(v any, ts time.Time)
	// OnTimeout, if set, is invoked when the publisher has been silent
	// past the QoS deadline.
	OnTimeout func(silence time.Duration)
}

// Subscription is the consumer-side handle of one variable.
type Subscription struct {
	engine *Engine
	name   string
	typ    *presentation.Type
	opts   SubscribeOptions

	mu       sync.Mutex
	value    any
	ts       time.Time     // publisher-clock publication instant
	rxAt     time.Time     // receiver-clock arrival instant
	rxAge    time.Duration // sample age at arrival per the publisher clock (clamped >= 0)
	validity time.Duration
	haveVal  bool
	lastPub  uint32 // publisher incarnation of lastSeq
	lastSeq  uint64
	initCh   chan struct{} // closed when the first value lands
	timer    *time.Timer
	closed   bool

	samples  uint64
	timeouts uint64
}

// Subscribe attaches to variable name with the expected payload type. The
// subscriber joins the variable's multicast group immediately; if the
// publisher is known in the directory its type signature is verified.
func (e *Engine) Subscribe(name string, t *presentation.Type, opts SubscribeOptions) (*Subscription, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := opts.QoS.Validate(); err != nil {
		return nil, err
	}
	opts.QoS = opts.QoS.Normalize()
	if opts.InitialTimeout <= 0 {
		opts.InitialTimeout = time.Second
	}
	// Type compatibility against the announced publisher, when known.
	if recs := e.f.Directory().Lookup(naming.KindVariable, name); len(recs) > 0 {
		if recs[0].TypeSig != t.String() {
			return nil, fmt.Errorf("variables: %q publisher has %s, subscriber wants %s: %w",
				name, recs[0].TypeSig, t, ErrTypeMismatch)
		}
	}
	s := &Subscription{engine: e, name: name, typ: t, opts: opts, initCh: make(chan struct{})}

	e.mu.Lock()
	e.subs[name] = append(e.subs[name], s)
	e.mu.Unlock()

	if err := e.f.Join(fabric.VarGroup(name)); err != nil {
		s.Close()
		return nil, err
	}
	s.armTimer()

	if opts.RequireInitial {
		if err := s.requestInitial(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// requestInitial performs the guaranteed-initial-value exchange: a reliable
// MTSnapshotReq to the publisher, answered by a reliable MTSnapshotRep. A
// local publisher is served by direct bypass.
func (s *Subscription) requestInitial() error {
	e := s.engine
	// Local bypass.
	e.mu.Lock()
	pub := e.pubs[s.name]
	e.mu.Unlock()
	if pub != nil {
		if v, ts, ok := pub.snapshot(); ok {
			s.accept(v, ts, pub.q.Validity, 0, 0)
			return nil
		}
		return nil // no value yet; nothing to guarantee
	}

	rec, err := e.f.Directory().Select(naming.KindVariable, s.name, qos.BindDynamic, "")
	if err != nil {
		return fmt.Errorf("variables: initial value for %q: %w", s.name, err)
	}
	// Control frames ride the high egress lane: an initial-value request
	// must not queue behind sample or bulk traffic on a congested link.
	frame := &protocol.Frame{
		Type:     protocol.MTSnapshotReq,
		Encoding: e.f.Encoding().ID(),
		Priority: qos.PriorityHigh,
		Channel:  s.name,
		Seq:      e.f.NextSeq(),
	}
	// The reply arrives asynchronously via handleSnapshotRep; here we wait
	// for either a value or the timeout.
	done := make(chan error, 1)
	e.f.SendReliable(rec.Node, frame, qos.ReliableARQ, func(err error) {
		if err != nil {
			done <- err
		} else {
			done <- nil
		}
	})
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("variables: snapshot request %q: %w", s.name, err)
		}
	case <-time.After(s.opts.InitialTimeout):
		return fmt.Errorf("variables: snapshot request %q: %w", s.name, protocol.ErrTimeout)
	}
	// Request delivered; wait for the value itself. accept closes initCh
	// on the first installed sample, so this wakes immediately instead of
	// polling.
	select {
	case <-s.initCh:
		return nil
	case <-time.After(s.opts.InitialTimeout):
		return fmt.Errorf("variables: no snapshot reply for %q: %w", s.name, protocol.ErrTimeout)
	}
}

// Get returns the freshest valid value. While the publisher is silent the
// previous value is served until its validity lapses, after which ErrStale
// is returned (§4.1). Sample age is the publisher-declared age at arrival
// (clamped at zero, so a publisher clock running ahead cannot make fresh
// samples immortal or negative-aged) plus receiver-side time since
// arrival — an old value installed via the snapshot path is correctly
// stale immediately, while cross-node skew cannot subtract age.
func (s *Subscription) Get() (any, time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveVal {
		return nil, time.Time{}, fmt.Errorf("variables: %q: %w", s.name, ErrNoValue)
	}
	if age := s.rxAge + time.Since(s.rxAt); s.validity > 0 && age > s.validity {
		return nil, s.ts, fmt.Errorf("variables: %q age %v: %w", s.name, age.Round(time.Millisecond), ErrStale)
	}
	return presentation.DeepCopy(s.value), s.ts, nil
}

// Snapshot returns a copy of the cached last value and its publisher-clock
// timestamp regardless of validity, or ok=false before the first sample.
// Unlike Get it never reports staleness: it is the last-value-cache read
// for consumers (the ground gateway fanning out to external clients) that
// want "the freshest thing known" semantics and judge age themselves.
func (s *Subscription) Snapshot() (v any, ts time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveVal {
		return nil, time.Time{}, false
	}
	return presentation.DeepCopy(s.value), s.ts, true
}

// Stats reports received sample and timeout counts.
func (s *Subscription) Stats() (samples, timeouts uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples, s.timeouts
}

// incarnationGrace bounds the reorder window inside which an older-stamped
// sample from a different publisher incarnation is treated as a delayed
// pre-restart straggler and dropped. Past it, the incarnation change is
// honored regardless of timestamps (cross-node publisher takeover with an
// unsynchronized clock).
const incarnationGrace = time.Second

// accept installs a sample into the cache and fires OnSample. pub is the
// publisher incarnation (0 for local bypass and snapshot replies, which
// bypass the reorder filter along with seq 0).
func (s *Subscription) accept(v any, ts time.Time, validity time.Duration, pub uint32, seq uint64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if seq != 0 {
		if pub != s.lastPub {
			if s.haveVal && ts.Before(s.ts) && time.Since(s.rxAt) < incarnationGrace {
				// An older-stamped sample under a different incarnation
				// arriving moments after a fresh one is a reordered
				// pre-restart straggler: drop it rather than flip the
				// filter back and reinstall stale data. The guard is
				// bounded by receiver-side recency so a replacement
				// publisher on another node with a lagging clock is
				// locked out for at most incarnationGrace, not until
				// its clock catches up.
				s.mu.Unlock()
				return
			}
			// The publisher restarted (new incarnation, fresh seq
			// numbering): reset the reorder filter instead of
			// discarding every new sample until seq catches up.
			s.lastPub = pub
			s.lastSeq = 0
		}
		if seq <= s.lastSeq && s.haveVal {
			// Reordered stale sample: newer value already cached.
			s.mu.Unlock()
			return
		}
		s.lastSeq = seq
	}
	s.value = v
	s.ts = ts
	s.rxAt = time.Now()
	s.rxAge = s.rxAt.Sub(ts)
	if s.rxAge < 0 {
		s.rxAge = 0 // publisher clock ahead of ours
	}
	s.validity = validity
	if validity == 0 {
		s.validity = s.opts.QoS.Validity
	}
	if !s.haveVal {
		close(s.initCh) // wake a pending guaranteed-initial-value wait
	}
	s.haveVal = true
	s.samples++
	onSample := s.opts.OnSample
	s.mu.Unlock()

	s.resetTimer()
	if onSample != nil {
		uerr.Note(s.engine.reg, codeVarShed,
			s.engine.f.Schedule(s.opts.QoS.Priority, func() { onSample(v, ts) }),
			"sample callback "+s.name)
	}
}

// armTimer starts silence detection if the QoS declares a period.
func (s *Subscription) armTimer() {
	deadline := s.opts.QoS.SilenceDeadline()
	if deadline <= 0 || s.opts.OnTimeout == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.timer = time.AfterFunc(deadline, s.fireTimeout)
}

func (s *Subscription) resetTimer() {
	deadline := s.opts.QoS.SilenceDeadline()
	if deadline <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.timer == nil {
		return
	}
	s.timer.Reset(deadline)
}

func (s *Subscription) fireTimeout() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.timeouts++
	// Silence is measured on the receiver's clock from the last arrival,
	// not from the publisher's embedded timestamp: clock skew between
	// nodes must not produce negative or wildly wrong durations in the
	// warning.
	silence := time.Since(s.rxAt)
	if !s.haveVal {
		silence = s.opts.QoS.SilenceDeadline()
	}
	onTimeout := s.opts.OnTimeout
	// Re-arm so persistent silence keeps warning.
	if s.timer != nil {
		s.timer.Reset(s.opts.QoS.SilenceDeadline())
	}
	s.mu.Unlock()
	if onTimeout != nil {
		uerr.Note(s.engine.reg, codeVarShed,
			s.engine.f.Schedule(qos.PriorityHigh, func() { onTimeout(silence) }),
			"silence warning "+s.name)
	}
}

// Close detaches the subscription.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
	}
	s.mu.Unlock()

	e := s.engine
	e.mu.Lock()
	list := e.subs[s.name]
	for i, sub := range list {
		if sub == s {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(e.subs, s.name)
	} else {
		e.subs[s.name] = list
	}
	remaining := len(list)
	e.mu.Unlock()
	if remaining == 0 {
		uerr.Note(e.reg, codeVarLeave, e.f.Leave(fabric.VarGroup(s.name)), "leave "+s.name)
	}
}

// deliverLocal hands a published value to same-container subscribers.
func (e *Engine) deliverLocal(name string, v any, ts time.Time, validity time.Duration) {
	e.mu.Lock()
	subs := append([]*Subscription(nil), e.subs[name]...)
	e.mu.Unlock()
	for _, s := range subs {
		s.accept(presentation.DeepCopy(v), ts, validity, 0, 0)
	}
}

// HandleSample processes an incoming MTSample frame. Sample frames carry
// the per-publisher sequence, used to discard reordered stale samples.
func (e *Engine) HandleSample(from transport.NodeID, fr *protocol.Frame) {
	e.handleIncoming(fr, fr.Seq)
}

func (e *Engine) handleIncoming(fr *protocol.Frame, seq uint64) {
	e.mu.Lock()
	subs := append([]*Subscription(nil), e.subs[fr.Channel]...)
	e.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	enc := e.f.Encoding()
	if fr.Encoding != enc.ID() {
		return // foreign encoding; this node cannot decode
	}
	for _, s := range subs {
		v, ts, validity, pub, err := decodeSamplePayload(enc, s.typ, fr.Payload)
		if err != nil {
			continue // incompatible subscriber type; skip
		}
		s.accept(v, ts, validity, pub, seq)
	}
}

// HandleSnapshotReq serves a reliable snapshot of a local publisher.
func (e *Engine) HandleSnapshotReq(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	pub := e.pubs[fr.Channel]
	e.mu.Unlock()
	if pub == nil {
		return
	}
	v, ts, ok := pub.snapshot()
	if !ok {
		return // nothing published yet
	}
	enc := e.f.Encoding()
	payload, err := encodeSamplePayload(enc, pub.typ, v, ts, pub.q.Validity, pub.id)
	if err != nil {
		return
	}
	reply := &protocol.Frame{
		Type:     protocol.MTSnapshotRep,
		Encoding: enc.ID(),
		Priority: qos.PriorityHigh,
		Channel:  fr.Channel,
		Seq:      e.f.NextSeq(),
		Payload:  payload,
	}
	e.f.SendReliable(from, reply, qos.ReliableARQ, nil)
}

// HandleSnapshotRep installs a snapshot reply into waiting subscriptions.
// Snapshot frames carry node-global sequence numbers, not the publisher's
// sample sequence, so they bypass the reorder filter (seq 0).
func (e *Engine) HandleSnapshotRep(from transport.NodeID, fr *protocol.Frame) {
	e.handleIncoming(fr, 0)
}

// Records lists this node's published variables for announcements.
func (e *Engine) Records() []naming.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]naming.Record, 0, len(e.pubs))
	for _, p := range e.pubs {
		out = append(out, p.Record())
	}
	return out
}

// PublisherCount reports registered publishers (diagnostics).
func (e *Engine) PublisherCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pubs)
}
