// Package netsim provides a deterministic simulated network implementing
// transport.Transport. The paper's efficiency arguments (§4.1 multicast
// bandwidth, §4.2 ARQ-vs-TCP under loss, §4.4 multicast file transfer)
// depend on controlled loss, latency and bandwidth, which a shared CI host
// cannot provide; netsim supplies them with a seeded RNG so experiments
// E2–E4 are reproducible run to run.
//
// The model: every node attaches to a shared medium. A send is serialized
// at the sender according to the configured bandwidth, crosses the medium
// with latency+jitter, and is then delivered (or lost) independently per
// receiver. A multicast send occupies the medium once however many nodes
// receive it — the property experiment E3 measures. Directed per-link
// overrides support asymmetric links and partitions.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/transport"
)

// Config sets network-wide defaults.
type Config struct {
	// Seed makes loss/jitter/duplication draws reproducible. Zero means
	// seed 1.
	Seed int64
	// Latency is the one-way propagation delay applied to every packet.
	Latency time.Duration
	// Jitter adds a uniform random [0,Jitter) to each delivery.
	Jitter time.Duration
	// Loss is the probability in [0,1] that a given receiver misses a
	// packet.
	Loss float64
	// Duplicate is the probability in [0,1] that a receiver sees a packet
	// twice.
	Duplicate float64
	// BandwidthBPS caps each sender's transmission rate in bytes/second;
	// 0 means unlimited.
	BandwidthBPS int64
	// Clock is the time source driving serialization and delivery; nil
	// means the wall clock. Pass a *clock.Virtual to run the whole medium
	// in discrete-event time.
	Clock clock.Clock
}

// LinkConfig overrides Config for one directed sender→receiver pair.
type LinkConfig struct {
	// Latency overrides the network latency when >0.
	Latency time.Duration
	// Jitter overrides the network jitter when >0.
	Jitter time.Duration
	// Loss overrides the network loss when >=0; use -1 to inherit.
	Loss float64
	// Duplicate overrides the network duplication when >=0; -1 inherits.
	Duplicate float64
	// BandwidthBPS, when >0, serializes this directed link at the given
	// bytes/second on top of the sender-wide Config.BandwidthBPS: packets
	// queue FIFO at the link and occupy it for size/rate each. Zero
	// inherits (no extra per-link serialization beyond the global cap).
	// It models one constrained hop — an air-to-ground radio — inside an
	// otherwise fast fleet, the topology experiment E13 measures.
	BandwidthBPS int64
	// Blocked drops every packet on the link (partition).
	Blocked bool
}

// InheritLink returns a LinkConfig that inherits every field: probability
// fields at -1, latency/jitter/bandwidth at zero (zero bandwidth means no
// per-link serialization beyond the sender-wide Config.BandwidthBPS).
func InheritLink() LinkConfig { return LinkConfig{Loss: -1, Duplicate: -1} }

// Net is the simulated medium. Create nodes with Node, wire faults with
// SetLink/Partition, and Close when done.
type Net struct {
	cfg Config
	clk clock.Clock

	mu        sync.Mutex
	rng       *rand.Rand
	nodes     map[transport.NodeID]*Node
	groups    map[string]map[transport.NodeID]*Node
	links     map[linkKey]LinkConfig
	nextFree  map[transport.NodeID]time.Time // per-sender medium occupancy
	linkFree  map[linkKey]time.Time          // per-link occupancy (BandwidthBPS overrides)
	linkStats map[linkKey]*LinkStats         // per-directed-link wire counters
	events    eventHeap
	seq       uint64 // tiebreaker for equal delivery times
	closed    bool

	trigger clock.Trigger
	done    chan struct{}
	wg      sync.WaitGroup

	wirePackets atomic.Uint64
	wireBytes   atomic.Uint64
	lost        atomic.Uint64
}

type linkKey struct {
	from, to transport.NodeID
}

// New creates a simulated network.
func New(cfg Config) *Net {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n := &Net{
		cfg:       cfg,
		clk:       clock.Or(cfg.Clock),
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[transport.NodeID]*Node),
		groups:    make(map[string]map[transport.NodeID]*Node),
		links:     make(map[linkKey]LinkConfig),
		nextFree:  make(map[transport.NodeID]time.Time),
		linkFree:  make(map[linkKey]time.Time),
		linkStats: make(map[linkKey]*LinkStats),
		done:      make(chan struct{}),
	}
	n.trigger = clock.NewTrigger(n.clk)
	n.wg.Add(1)
	clock.Go(n.clk, n.run)
	return n
}

// Clock is the time source the medium runs on.
func (n *Net) Clock() clock.Clock { return n.clk }

// Node attaches a new node to the medium.
func (n *Net) Node(id transport.NodeID) (*Node, error) {
	if id == "" {
		return nil, fmt.Errorf("netsim: empty node id: %w", transport.ErrUnknownNode)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("netsim: %w", transport.ErrClosed)
	}
	if _, exists := n.nodes[id]; exists {
		return nil, fmt.Errorf("netsim: %q: %w", id, transport.ErrDuplicateNode)
	}
	node := &Node{net: n, id: id}
	n.nodes[id] = node
	return node, nil
}

// SetLink installs a directed override from→to.
func (n *Net) SetLink(from, to transport.NodeID, lc LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = lc
}

// ClearLink removes a directed override.
func (n *Net) ClearLink(from, to transport.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{from, to})
}

// Partition blocks both directions between a and b.
func (n *Net) Partition(a, b transport.NodeID) {
	lc := InheritLink()
	lc.Blocked = true
	n.SetLink(a, b, lc)
	n.SetLink(b, a, lc)
}

// Heal removes both directed overrides between a and b.
func (n *Net) Heal(a, b transport.NodeID) {
	n.ClearLink(a, b)
	n.ClearLink(b, a)
}

// WireStats reports medium-level traffic: packets and bytes that occupied
// the medium (multicast counted once) and per-receiver losses.
func (n *Net) WireStats() (packets, bytes, lost uint64) {
	return n.wirePackets.Load(), n.wireBytes.Load(), n.lost.Load()
}

// LinkStats counts traffic on one directed sender→receiver link.
type LinkStats struct {
	// Packets / Bytes count what was offered to the link (multicast counts
	// once per receiver here, since each directed copy traverses its own
	// link), whether or not the receiver then lost it.
	Packets, Bytes uint64
	// Lost counts per-receiver losses on the link: blocked (partition),
	// random loss, and deliveries dropped at a closed or handlerless
	// receiver.
	Lost uint64
}

// LinkStats reports the directed from→to wire counters. Experiments use it
// to attribute traffic to one bearer in a multi-datalink topology (E14).
func (n *Net) LinkStats(from, to transport.NodeID) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ls := n.linkStats[linkKey{from, to}]; ls != nil {
		return *ls
	}
	return LinkStats{}
}

// linkStatsLocked returns (creating if needed) the counters for a directed
// link. Caller holds n.mu.
func (n *Net) linkStatsLocked(from, to transport.NodeID) *LinkStats {
	key := linkKey{from, to}
	ls := n.linkStats[key]
	if ls == nil {
		ls = &LinkStats{}
		n.linkStats[key] = ls
	}
	return ls
}

// ResetWireStats zeroes the medium counters (per-directed-link counters
// included) between experiment phases.
func (n *Net) ResetWireStats() {
	n.wirePackets.Store(0)
	n.wireBytes.Store(0)
	n.lost.Store(0)
	n.mu.Lock()
	n.linkStats = make(map[linkKey]*LinkStats)
	n.mu.Unlock()
}

// Close stops the delivery engine. Pending deliveries are discarded.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	clock.Blocking(n.clk, n.wg.Wait)
}

// event is one scheduled delivery.
type event struct {
	at   time.Time
	seq  uint64
	dst  *Node
	pkt  transport.Packet
	dupe bool // diagnostic: this is a duplicated copy
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// run is the single delivery goroutine: it pops events in timestamp order
// and invokes receiver handlers. It parks on the clock between events, so
// under a Virtual clock the whole medium is discrete-event driven.
func (n *Net) run() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		var due []*event
		wait := time.Duration(-1)
		now := n.clk.Now()
		for len(n.events) > 0 {
			next := n.events[0]
			if d := next.at.Sub(now); d > 0 {
				wait = d
				break
			}
			heap.Pop(&n.events)
			due = append(due, next)
		}
		n.mu.Unlock()

		if len(due) > 0 {
			for _, ev := range due {
				ev.dst.deliver(ev.pkt, ev.dupe)
			}
			continue
		}
		if !n.trigger.Wait(wait, n.done) {
			return
		}
	}
}

func (n *Net) signal() { n.trigger.Signal() }

// linkFor resolves effective parameters for a directed pair. bw is the
// per-link serialization rate (0 = none beyond the sender-wide cap).
func (n *Net) linkFor(from, to transport.NodeID) (latency, jitter time.Duration, loss, dup float64, bw int64, blocked bool) {
	latency, jitter = n.cfg.Latency, n.cfg.Jitter
	loss, dup = n.cfg.Loss, n.cfg.Duplicate
	lc, ok := n.links[linkKey{from, to}]
	if !ok {
		return latency, jitter, loss, dup, 0, false
	}
	if lc.Latency > 0 {
		latency = lc.Latency
	}
	if lc.Jitter > 0 {
		jitter = lc.Jitter
	}
	if lc.Loss >= 0 {
		loss = lc.Loss
	}
	if lc.Duplicate >= 0 {
		dup = lc.Duplicate
	}
	return latency, jitter, loss, dup, lc.BandwidthBPS, lc.Blocked
}

// transmit schedules delivery of payload from src to each receiver. Called
// with the medium occupied once (multicast) regardless of receiver count.
func (n *Net) transmit(src *Node, receivers []*Node, pkt transport.Packet) {
	now := n.clk.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}

	// Delivery happens later on the event goroutine, while the sender may
	// recycle its buffer the moment Send returns (the transport ownership
	// contract): take one GC-owned copy per transmission, shared by every
	// receiver — handlers must not retain or mutate it.
	pkt.Payload = bufpool.Copy(pkt.Payload)

	// Sender-side serialization: the medium is occupied for size/bw.
	start := now
	if free, ok := n.nextFree[src.id]; ok && free.After(start) {
		start = free
	}
	var txDelay time.Duration
	if n.cfg.BandwidthBPS > 0 {
		txDelay = time.Duration(float64(len(pkt.Payload)) / float64(n.cfg.BandwidthBPS) * float64(time.Second))
	}
	n.nextFree[src.id] = start.Add(txDelay)

	n.wirePackets.Add(1)
	n.wireBytes.Add(uint64(len(pkt.Payload)))

	for _, dst := range receivers {
		latency, jitter, loss, dup, bw, blocked := n.linkFor(src.id, dst.id)
		ls := n.linkStatsLocked(src.id, dst.id)
		ls.Packets++
		ls.Bytes += uint64(len(pkt.Payload))
		if blocked {
			n.lost.Add(1)
			ls.Lost++
			continue
		}
		// Per-link serialization: after leaving the sender the packet
		// queues FIFO at the constrained directed link and occupies it
		// for size/rate — whether or not the receiver then loses it.
		depart := start.Add(txDelay)
		if bw > 0 {
			key := linkKey{src.id, dst.id}
			if free, ok := n.linkFree[key]; ok && free.After(depart) {
				depart = free
			}
			depart = depart.Add(time.Duration(float64(len(pkt.Payload)) / float64(bw) * float64(time.Second)))
			n.linkFree[key] = depart
		}
		if loss > 0 && n.rng.Float64() < loss {
			n.lost.Add(1)
			ls.Lost++
			dst.stats.dropped.Add(1)
			continue
		}
		copies := 1
		if dup > 0 && n.rng.Float64() < dup {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			delay := latency
			if jitter > 0 {
				delay += time.Duration(n.rng.Int63n(int64(jitter)))
			}
			n.seq++
			ev := &event{
				at:   depart.Add(delay),
				seq:  n.seq,
				dst:  dst,
				pkt:  pkt,
				dupe: c > 0,
			}
			heap.Push(&n.events, ev)
		}
	}
	n.signal()
}

// membersLocked snapshots group membership. Caller must not hold n.mu.
func (n *Net) members(group string) []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	set := n.groups[group]
	out := make([]*Node, 0, len(set))
	for _, node := range set {
		out = append(out, node)
	}
	return out
}

// Node is one simulated host implementing transport.Transport.
type Node struct {
	net *Net
	id  transport.NodeID

	mu      sync.Mutex
	handler transport.Handler
	closed  bool

	stats nodeCounters
}

type nodeCounters struct {
	packetsSent atomic.Uint64
	bytesSent   atomic.Uint64
	packetsRecv atomic.Uint64
	bytesRecv   atomic.Uint64
	dropped     atomic.Uint64
}

var _ transport.Transport = (*Node)(nil)
var _ transport.Multicaster = (*Node)(nil)

// Node implements Transport.
func (d *Node) Node() transport.NodeID { return d.id }

// NativeMulticast implements transport.Multicaster.
func (d *Node) NativeMulticast() bool { return true }

// SetHandler implements Transport.
func (d *Node) SetHandler(h transport.Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handler = h
}

// Send implements Transport.
func (d *Node) Send(to transport.NodeID, payload []byte) error {
	if d.isClosed() {
		return fmt.Errorf("netsim: send from %q: %w", d.id, transport.ErrClosed)
	}
	d.net.mu.Lock()
	dst := d.net.nodes[to]
	d.net.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("netsim: send to %q: %w", to, transport.ErrUnknownNode)
	}
	d.stats.packetsSent.Add(1)
	d.stats.bytesSent.Add(uint64(len(payload)))
	d.net.transmit(d, []*Node{dst}, transport.Packet{From: d.id, To: to, Payload: payload})
	return nil
}

// SendGroup implements Transport.
func (d *Node) SendGroup(group string, payload []byte) error {
	if d.isClosed() {
		return fmt.Errorf("netsim: send from %q: %w", d.id, transport.ErrClosed)
	}
	members := d.net.members(group)
	// No self-loopback: like the UDP transport, local delivery is the
	// container's bypass path, not the network's.
	recv := members[:0]
	for _, m := range members {
		if m != d {
			recv = append(recv, m)
		}
	}
	d.stats.packetsSent.Add(1)
	d.stats.bytesSent.Add(uint64(len(payload)))
	d.net.transmit(d, recv, transport.Packet{From: d.id, Group: group, Payload: payload})
	return nil
}

// Join implements Transport.
func (d *Node) Join(group string) error {
	if d.isClosed() {
		return fmt.Errorf("netsim: join from %q: %w", d.id, transport.ErrClosed)
	}
	d.net.mu.Lock()
	defer d.net.mu.Unlock()
	set := d.net.groups[group]
	if set == nil {
		set = make(map[transport.NodeID]*Node)
		d.net.groups[group] = set
	}
	set[d.id] = d
	return nil
}

// Leave implements Transport.
func (d *Node) Leave(group string) error {
	d.net.mu.Lock()
	defer d.net.mu.Unlock()
	set := d.net.groups[group]
	delete(set, d.id)
	if len(set) == 0 {
		delete(d.net.groups, group)
	}
	return nil
}

// Stats implements Transport.
func (d *Node) Stats() transport.Stats {
	return transport.Stats{
		PacketsSent:    d.stats.packetsSent.Load(),
		BytesSent:      d.stats.bytesSent.Load(),
		PacketsWire:    d.stats.packetsSent.Load(),
		BytesWire:      d.stats.bytesSent.Load(),
		PacketsRecv:    d.stats.packetsRecv.Load(),
		BytesRecv:      d.stats.bytesRecv.Load(),
		PacketsDropped: d.stats.dropped.Load(),
	}
}

// Close implements Transport: detaches the node; in-flight packets to it
// are dropped at delivery.
func (d *Node) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	d.net.mu.Lock()
	delete(d.net.nodes, d.id)
	for group, set := range d.net.groups {
		delete(set, d.id)
		if len(set) == 0 {
			delete(d.net.groups, group)
		}
	}
	d.net.mu.Unlock()
	return nil
}

func (d *Node) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// deliver runs on the net's delivery goroutine. dupe marks a duplicated
// copy: its loss at a dead receiver is not charged to the link counters a
// second time (LinkStats.Packets counts the original once, so Lost must
// too, or delivery-rate arithmetic goes negative under duplication).
func (d *Node) deliver(pkt transport.Packet, dupe bool) {
	d.mu.Lock()
	h := d.handler
	closed := d.closed
	d.mu.Unlock()
	if closed || h == nil {
		d.stats.dropped.Add(1)
		if !dupe {
			d.net.mu.Lock()
			d.net.linkStatsLocked(pkt.From, d.id).Lost++
			d.net.mu.Unlock()
		}
		return
	}
	d.stats.packetsRecv.Add(1)
	d.stats.bytesRecv.Add(uint64(len(pkt.Payload)))
	h(pkt)
}
