package netsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"uavmw/internal/transport"
)

type collector struct {
	mu   sync.Mutex
	pkts []transport.Packet
}

func (c *collector) handler() transport.Handler {
	return func(pkt transport.Packet) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.pkts = append(c.pkts, pkt)
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pkts)
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) []transport.Packet {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		if len(c.pkts) >= n {
			out := make([]transport.Packet, len(c.pkts))
			copy(out, c.pkts)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %d packets, got %d", n, c.count())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestUnicastDelivery(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, err := net.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Node("b")
	if err != nil {
		t.Fatal(err)
	}
	col := &collector{}
	b.SetHandler(col.handler())

	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	pkts := col.wait(t, 1, time.Second)
	if pkts[0].From != "a" || string(pkts[0].Payload) != "hi" {
		t.Errorf("packet = %+v", pkts[0])
	}
}

func TestLatencyApplied(t *testing.T) {
	net := New(Config{Latency: 30 * time.Millisecond})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())

	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered in %v, want >= ~30ms", elapsed)
	}
}

func TestLossDeterministic(t *testing.T) {
	// With a fixed seed the number of losses over N sends is exact.
	run := func() int {
		net := New(Config{Loss: 0.3, Seed: 42})
		defer net.Close()
		a, _ := net.Node("a")
		b, _ := net.Node("b")
		col := &collector{}
		b.SetHandler(col.handler())
		for i := 0; i < 200; i++ {
			if err := a.Send("b", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// All events share delivery time ~now; give the engine time.
		time.Sleep(100 * time.Millisecond)
		return col.count()
	}
	n1, n2 := run(), run()
	if n1 != n2 {
		t.Errorf("same seed produced different loss: %d vs %d", n1, n2)
	}
	if n1 < 100 || n1 > 180 {
		t.Errorf("loss rate implausible: delivered %d of 200 at 30%% loss", n1)
	}
}

func TestMulticastOneWirePacket(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	pub, _ := net.Node("pub")
	const group = "vars"
	cols := make([]*collector, 4)
	for i := range cols {
		sub, err := net.Node(transport.NodeID(fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = &collector{}
		sub.SetHandler(cols[i].handler())
		if err := sub.Join(group); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.SendGroup(group, []byte("sample")); err != nil {
		t.Fatal(err)
	}
	for i, col := range cols {
		pkts := col.wait(t, 1, time.Second)
		if pkts[0].Group != group {
			t.Errorf("sub%d packet = %+v", i, pkts[0])
		}
	}
	packets, bytes, _ := net.WireStats()
	if packets != 1 {
		t.Errorf("wire packets = %d, want 1 (multicast)", packets)
	}
	if bytes != uint64(len("sample")) {
		t.Errorf("wire bytes = %d", bytes)
	}
}

func TestMulticastNoSelfLoopback(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	col := &collector{}
	a.SetHandler(col.handler())
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := a.SendGroup("g", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Error("sender must not hear its own multicast")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())

	net.Partition("a", "b")
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Error("partitioned packet delivered")
	}
	_, _, lost := net.WireStats()
	if lost == 0 {
		t.Error("partition loss not counted")
	}

	net.Heal("a", "b")
	if err := a.Send("b", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	pkts := col.wait(t, 1, time.Second)
	if string(pkts[0].Payload) != "ok" {
		t.Errorf("post-heal packet = %+v", pkts[0])
	}
}

func TestPerLinkLossOverride(t *testing.T) {
	net := New(Config{Seed: 7})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	c, _ := net.Node("c")
	colB := &collector{}
	b.SetHandler(colB.handler())
	colC := &collector{}
	c.SetHandler(colC.handler())

	lc := InheritLink()
	lc.Loss = 1.0
	net.SetLink("a", "b", lc)

	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("c", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	colC.wait(t, 10, time.Second)
	if colB.count() != 0 {
		t.Errorf("lossy link delivered %d packets", colB.count())
	}
}

func TestDuplicateDelivery(t *testing.T) {
	net := New(Config{Duplicate: 1.0, Seed: 3})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())
	if err := a.Send("b", []byte("dup")); err != nil {
		t.Fatal(err)
	}
	pkts := col.wait(t, 2, time.Second)
	if len(pkts) < 2 {
		t.Errorf("expected duplicate delivery, got %d", len(pkts))
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 10 KB at 100 KB/s should take ~100 ms to serialize.
	net := New(Config{BandwidthBPS: 100_000})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())

	start := time.Now()
	if err := a.Send("b", make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, 2*time.Second)
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("10KB at 100KB/s delivered in %v, want >= ~100ms", elapsed)
	}
}

func TestNodeCloseDropsTraffic(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Error("Close must be idempotent")
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, transport.ErrUnknownNode) {
		t.Errorf("send to closed node: %v", err)
	}
	if err := b.Send("a", []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send from closed node: %v", err)
	}
	// Node id reusable after close.
	if _, err := net.Node("b"); err != nil {
		t.Errorf("reuse id: %v", err)
	}
}

func TestNetCloseStopsDelivery(t *testing.T) {
	net := New(Config{Latency: 50 * time.Millisecond})
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close() // idempotent
	time.Sleep(80 * time.Millisecond)
	if col.count() != 0 {
		t.Error("delivery after Close")
	}
	if _, err := net.Node("late"); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Node after close: %v", err)
	}
}

func TestDuplicateNodeID(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	if _, err := net.Node("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node("a"); !errors.Is(err, transport.ErrDuplicateNode) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := net.Node(""); err == nil {
		t.Error("empty id must fail")
	}
}

func TestJitterReordersButDelivers(t *testing.T) {
	net := New(Config{Jitter: 10 * time.Millisecond, Seed: 11})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pkts := col.wait(t, n, 2*time.Second)
	if len(pkts) != n {
		t.Fatalf("delivered %d of %d", len(pkts), n)
	}
	seen := make(map[byte]bool, n)
	for _, pkt := range pkts {
		seen[pkt.Payload[0]] = true
	}
	if len(seen) != n {
		t.Errorf("lost packets under pure jitter: %d unique", len(seen))
	}
}

func TestStatsSnapshot(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())
	if err := a.Send("b", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1, time.Second)
	sa, sb := a.Stats(), b.Stats()
	if sa.PacketsSent != 1 || sa.BytesSent != 3 {
		t.Errorf("sender stats %+v", sa)
	}
	if sb.PacketsRecv != 1 || sb.BytesRecv != 3 {
		t.Errorf("receiver stats %+v", sb)
	}
	net.ResetWireStats()
	p, by, l := net.WireStats()
	if p != 0 || by != 0 || l != 0 {
		t.Error("ResetWireStats did not zero counters")
	}
}

func TestNoHandlerCountsDrop(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	for b.Stats().PacketsDropped == 0 {
		select {
		case <-deadline:
			t.Fatal("drop not counted")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestPerLinkBandwidthConformance pins the link model experiment E13
// depends on: N bytes through a link capped at R bytes/second arrive in
// ≈ N/R, with packets serialized FIFO at the link.
func TestPerLinkBandwidthConformance(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())

	lc := InheritLink()
	lc.BandwidthBPS = 1_000_000 // 1 MB/s
	net.SetLink("a", "b", lc)

	const pkts, size = 50, 2000 // 100 KB total → 100 ms at 1 MB/s
	start := time.Now()
	for i := 0; i < pkts; i++ {
		if err := a.Send("b", make([]byte, size)); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, pkts, 5*time.Second)
	elapsed := time.Since(start)
	want := time.Duration(float64(pkts*size) / 1_000_000 * float64(time.Second))
	if elapsed < want-want/10 {
		t.Errorf("%d bytes at 1MB/s delivered in %v, conformance wants >= ~%v", pkts*size, elapsed, want)
	}
	if elapsed > 6*want {
		t.Errorf("%d bytes at 1MB/s took %v, want ≈%v", pkts*size, elapsed, want)
	}
}

// TestPerLinkBandwidthIsolated pins the E13 topology: one constrained
// directed link does not slow traffic from the same sender to other nodes.
func TestPerLinkBandwidthIsolated(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, _ := net.Node("a")
	slow, _ := net.Node("slow")
	fast, _ := net.Node("fast")
	colSlow, colFast := &collector{}, &collector{}
	slow.SetHandler(colSlow.handler())
	fast.SetHandler(colFast.handler())

	lc := InheritLink()
	lc.BandwidthBPS = 100_000 // 100 KB/s
	net.SetLink("a", "slow", lc)

	// 50 KB down the slow link (≈500 ms), then one packet to the fast peer.
	for i := 0; i < 25; i++ {
		if err := a.Send("slow", make([]byte, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := a.Send("fast", make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}
	colFast.wait(t, 1, 2*time.Second)
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("fast-link packet took %v behind a congested sibling link", elapsed)
	}
	colSlow.wait(t, 25, 5*time.Second)
	if elapsed := time.Since(start); elapsed < 350*time.Millisecond {
		t.Errorf("slow link finished 50KB at 100KB/s in %v, want ≈500ms", elapsed)
	}
}

// TestPerLinkBandwidthInherit pins that a link override with zero
// BandwidthBPS (InheritLink) still serializes at the sender-wide cap.
func TestPerLinkBandwidthInherit(t *testing.T) {
	net := New(Config{BandwidthBPS: 100_000})
	defer net.Close()
	a, _ := net.Node("a")
	b, _ := net.Node("b")
	col := &collector{}
	b.SetHandler(col.handler())

	net.SetLink("a", "b", InheritLink()) // override present, bandwidth inherited

	start := time.Now()
	if err := a.Send("b", make([]byte, 10_000)); err != nil { // ≈100 ms at 100 KB/s
		t.Fatal(err)
	}
	col.wait(t, 1, 2*time.Second)
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("inherited bandwidth ignored: 10KB at 100KB/s delivered in %v", elapsed)
	}
}

// TestLinkStatsAttributeDirectedTraffic pins the per-directed-link wire
// counters: unicast and multicast traffic is attributed to each from→to
// link independently, losses (blocked links, random loss) are charged to
// the link that lost them, and ResetWireStats clears everything.
func TestLinkStatsAttributeDirectedTraffic(t *testing.T) {
	net := New(Config{})
	defer net.Close()
	a, err := net.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Node("b")
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Node("c")
	if err != nil {
		t.Fatal(err)
	}
	cb, cc := &collector{}, &collector{}
	b.SetHandler(cb.handler())
	c.SetHandler(cc.handler())
	for _, n := range []*Node{a, b, c} {
		if err := n.Join("g"); err != nil {
			t.Fatal(err)
		}
	}

	// 2 unicasts a→b of 10 bytes, 1 multicast of 7 bytes (a→b and a→c).
	for i := 0; i < 2; i++ {
		if err := a.Send("b", make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SendGroup("g", make([]byte, 7)); err != nil {
		t.Fatal(err)
	}
	cb.wait(t, 3, time.Second)
	cc.wait(t, 1, time.Second)

	ab := net.LinkStats("a", "b")
	if ab.Packets != 3 || ab.Bytes != 27 || ab.Lost != 0 {
		t.Errorf("a→b = %+v, want {3 27 0}", ab)
	}
	ac := net.LinkStats("a", "c")
	if ac.Packets != 1 || ac.Bytes != 7 || ac.Lost != 0 {
		t.Errorf("a→c = %+v, want {1 7 0}", ac)
	}
	if ba := net.LinkStats("b", "a"); ba.Packets != 0 {
		t.Errorf("b→a should be untouched, got %+v", ba)
	}

	// A blocked link charges losses to that directed link only.
	lc := InheritLink()
	lc.Blocked = true
	net.SetLink("a", "b", lc)
	if err := a.SendGroup("g", make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	cc.wait(t, 2, time.Second)
	ab = net.LinkStats("a", "b")
	if ab.Packets != 4 || ab.Lost != 1 {
		t.Errorf("a→b after blackout = %+v, want Packets 4, Lost 1", ab)
	}
	if ac = net.LinkStats("a", "c"); ac.Lost != 0 {
		t.Errorf("a→c should have no losses, got %+v", ac)
	}

	net.ResetWireStats()
	if got := net.LinkStats("a", "b"); got != (LinkStats{}) {
		t.Errorf("reset left a→b = %+v", got)
	}
}

// TestLinkStatsCountRandomLoss pins loss attribution under a per-link loss
// override.
func TestLinkStatsCountRandomLoss(t *testing.T) {
	net := New(Config{Seed: 3})
	defer net.Close()
	a, err := net.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node("b"); err != nil {
		t.Fatal(err)
	}
	lc := InheritLink()
	lc.Loss = 1.0
	net.SetLink("a", "b", lc)
	if err := a.Send("b", make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for net.LinkStats("a", "b").Lost == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ab := net.LinkStats("a", "b")
	if ab.Packets != 1 || ab.Bytes != 4 || ab.Lost != 1 {
		t.Errorf("a→b = %+v, want {1 4 1}", ab)
	}
}
