// Package ingress implements the container's sharded receive pipeline: the
// stage between the transports' dispatch goroutines and the node's frame
// dispatcher.
//
// PR 8 drove the send path to zero allocations and flat syscall cost, but
// the receive path stayed serial: every arriving datagram was decoded,
// deduped, acked and routed on the transport's single handler goroutine per
// bearer, so a node's ingest rate was capped at one core regardless of
// GOMAXPROCS. The pipeline removes that cap while preserving the one
// ordering property the protocol layer requires — per-source FIFO:
//
//   - Arriving packets are hashed by *source node* (FNV-1a) onto one of N
//     shard workers. Everything one sender transmits lands on one shard in
//     arrival order, whatever bearer carried it, so ARQ acknowledgment,
//     dedup windows, GBN/reorder filters and fragment reassembly observe
//     exactly the sequence the sender produced. Distinct senders land on
//     distinct shards and decode, dedup and dispatch in parallel.
//   - Each shard owns a bounded ring with drop-oldest backpressure: a
//     stalled or flooded shard sheds its stalest packets first and never
//     blocks the transport's read loop — the same discipline the egress
//     lanes apply on the way out.
//   - Ownership rides refcounted pooled buffers (bufpool.Shared). A packet
//     whose transport provided an Owner is retained, not copied; one
//     without (netsim's shared multicast copy, the TCP stream) is copied
//     once into a pooled buffer. Either way the payload handed to Deliver
//     aliases pooled storage that the pipeline releases after the callback
//     returns, and the steady-state routed-frame path allocates nothing.
//
// Under a clock.Virtual the pipeline defaults to one shard and one packet
// per drain, which serializes processing exactly like the pre-pipeline
// inline handler: same-seed virtual runs stay byte-identical, and every
// discrete event still completes before virtual time advances (workers are
// clock-registered). Multi-shard virtual configurations are valid — the
// per-source FIFO guarantee holds, only cross-source interleaving becomes
// scheduling-dependent — and the ordering tests pin that property.
package ingress

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/transport"
)

// Packet is one queued arrival: the bearer it came in on, its source, and a
// payload aliasing pooled storage. Owner holds the pipeline's reference on
// that storage; a Deliver callback that must keep the payload past its
// return Retains it (releasing when done), everything else just reads.
type Packet struct {
	Bearer  string
	From    transport.NodeID
	Payload []byte
	Owner   *bufpool.Shared
}

// Defaults applied when Config fields are zero.
const (
	// DefaultRing bounds each shard's queue in packets; on overflow the
	// oldest queued packet for that shard drops.
	DefaultRing = 1024
	// maxShards caps the worker count against absurd configuration.
	maxShards = 256
)

// Config tunes a Pipeline.
type Config struct {
	// Shards is the worker count. Zero means GOMAXPROCS on a real clock
	// and 1 on a clock.Virtual (serial processing keeps same-seed virtual
	// runs byte-identical).
	Shards int
	// Ring bounds each shard's queue in packets (default DefaultRing).
	Ring int
	// MaxBatch caps how many packets one drain hands to Deliver. Zero
	// means the whole ring on a real clock and 1 on a clock.Virtual.
	MaxBatch int
	// Clock is the time source the workers register with; nil means the
	// wall clock.
	Clock clock.Clock
	// Metrics receives the "ingress" families: per-shard queue-depth
	// gauges, drop and frame counters, and drain batch-size histograms.
	// Nil gets a private registry.
	Metrics *metrics.Registry
	// Deliver is the dispatch callback: one shard worker invokes it with a
	// batch of packets in per-source arrival order. Packets (and their
	// payloads) are valid only until it returns unless Owner is retained.
	// It runs on the shard's worker goroutine; batches for the same shard
	// never overlap, batches for distinct shards run concurrently.
	Deliver func(shard int, batch []Packet)
}

// shard is one worker's queue: a fixed-capacity circular buffer guarded by
// mu, drained by a dedicated goroutine parked on trig.
type shard struct {
	mu   sync.Mutex
	ring []Packet
	head int // index of the oldest queued packet
	n    int // queued packet count
	trig clock.Trigger

	batch []Packet // worker-local drain scratch

	depth     *metrics.Gauge
	drops     *metrics.Counter
	frames    *metrics.Counter
	batchSize *metrics.Histogram
}

// Pipeline is the sharded receive pipeline. Construct with New; feed with
// Enqueue from any goroutine; Close stops the workers and releases whatever
// is still queued.
type Pipeline struct {
	shards   []*shard
	deliver  func(int, []Packet)
	clk      clock.Clock
	maxBatch int
	stop     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	delivered atomic.Uint64
}

// New builds and starts a pipeline. Deliver must be non-nil.
func New(cfg Config) *Pipeline {
	if cfg.Deliver == nil {
		panic("ingress: Config.Deliver is required")
	}
	clk := clock.Or(cfg.Clock)
	_, virtual := clk.(*clock.Virtual)
	shards := cfg.Shards
	if shards <= 0 {
		if virtual {
			shards = 1
		} else {
			shards = runtime.GOMAXPROCS(0)
		}
	}
	if shards > maxShards {
		shards = maxShards
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		if virtual {
			maxBatch = 1
		} else {
			maxBatch = ring
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	p := &Pipeline{
		deliver:  cfg.Deliver,
		clk:      clk,
		maxBatch: maxBatch,
		stop:     make(chan struct{}),
	}
	reg.Gauge("ingress", "shards").Set(int64(shards))
	p.shards = make([]*shard, shards)
	for i := range p.shards {
		lb := metrics.L("shard", strconv.Itoa(i))
		p.shards[i] = &shard{
			ring:      make([]Packet, ring),
			trig:      clock.NewTrigger(clk),
			batch:     make([]Packet, 0, maxBatch),
			depth:     reg.Gauge("ingress", "queue_depth", lb),
			drops:     reg.Counter("ingress", "drops", lb),
			frames:    reg.Counter("ingress", "frames", lb),
			batchSize: reg.Histogram("ingress", "batch_frames", lb),
		}
	}
	// Workers start only after every shard exists: they index the complete
	// slice from the first instruction.
	for i := range p.shards {
		idx := i
		p.wg.Add(1)
		clock.Go(clk, func() { p.worker(idx) })
	}
	return p
}

// Shards reports the worker count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// ShardOf reports which shard carries traffic from the given source — the
// FNV-1a hash of the node identity modulo the shard count.
func (p *Pipeline) ShardOf(from transport.NodeID) int {
	return shardIndex(from, len(p.shards))
}

// ShardFor reports which of n shards traffic from id would hash onto —
// the same FNV-1a placement a Pipeline with n shards uses. Benchmarks use
// it to pick source identities that spread evenly.
func ShardFor(id transport.NodeID, n int) int { return shardIndex(id, n) }

func shardIndex(id transport.NodeID, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// Delivered reports the total packets handed to Deliver so far (tests and
// experiments quiesce on it).
func (p *Pipeline) Delivered() uint64 { return p.delivered.Load() }

// Enqueue hashes pkt by source onto its shard and queues it, taking
// ownership of the payload: a packet with an Owner is retained (zero-copy
// aliasing of the transport's receive buffer), one without is copied once
// into a pooled buffer. On a full shard ring the oldest queued packet
// drops. Safe from any goroutine; after Close packets are counted as drops
// and no reference is kept.
func (p *Pipeline) Enqueue(bearer string, pkt transport.Packet) {
	sh := p.shards[shardIndex(pkt.From, len(p.shards))]
	if p.closed.Load() {
		sh.drops.Inc()
		return
	}
	q := Packet{Bearer: bearer, From: pkt.From}
	if pkt.Owner != nil {
		q.Owner = pkt.Owner.Retain()
		q.Payload = pkt.Payload
	} else {
		buf := append(bufpool.Get(len(pkt.Payload)), pkt.Payload...)
		q.Owner = bufpool.Share(buf)
		q.Payload = buf
	}
	sh.mu.Lock()
	if p.closed.Load() {
		// Lost the race with Close after taking a reference: the final
		// sweep may already have run, so release here.
		sh.mu.Unlock()
		sh.drops.Inc()
		q.Owner.Release()
		return
	}
	if sh.n == len(sh.ring) {
		old := sh.ring[sh.head]
		sh.ring[sh.head] = Packet{}
		sh.head++
		if sh.head == len(sh.ring) {
			sh.head = 0
		}
		sh.n--
		sh.drops.Inc()
		old.Owner.Release()
	}
	tail := sh.head + sh.n
	if tail >= len(sh.ring) {
		tail -= len(sh.ring)
	}
	sh.ring[tail] = q
	sh.n++
	sh.depth.Set(int64(sh.n))
	sh.mu.Unlock()
	sh.trig.Signal()
}

// take moves up to maxBatch queued packets into the shard's drain scratch,
// preserving arrival order, and reports the batch (empty when idle).
func (p *Pipeline) take(sh *shard) []Packet {
	sh.mu.Lock()
	n := sh.n
	if n > p.maxBatch {
		n = p.maxBatch
	}
	batch := sh.batch[:0]
	for i := 0; i < n; i++ {
		batch = append(batch, sh.ring[sh.head])
		sh.ring[sh.head] = Packet{}
		sh.head++
		if sh.head == len(sh.ring) {
			sh.head = 0
		}
	}
	sh.n -= n
	if sh.n == 0 {
		sh.head = 0
	}
	sh.depth.Set(int64(sh.n))
	sh.mu.Unlock()
	sh.batch = batch
	return batch
}

// worker drains one shard until Close: park on the trigger, hand each
// drained batch to Deliver, release the buffer references.
func (p *Pipeline) worker(idx int) {
	defer p.wg.Done()
	sh := p.shards[idx]
	for {
		live := sh.trig.Wait(-1, p.stop)
		for {
			batch := p.take(sh)
			if len(batch) == 0 {
				break
			}
			p.deliver(idx, batch)
			for i := range batch {
				batch[i].Owner.Release()
				batch[i] = Packet{}
			}
			sh.frames.Add(uint64(len(batch)))
			sh.batchSize.Observe(time.Duration(len(batch)))
			p.delivered.Add(uint64(len(batch)))
		}
		if !live {
			return // stop closed; Close sweeps anything enqueued after this
		}
	}
}

// Close stops the workers (each drains and delivers what was queued before
// the stop, mirroring the transports' pre-close delivery), then releases
// any packet that slipped in afterwards. Idempotent.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	clock.Blocking(p.clk, p.wg.Wait)
	for _, sh := range p.shards {
		sh.mu.Lock()
		for sh.n > 0 {
			q := sh.ring[sh.head]
			sh.ring[sh.head] = Packet{}
			sh.head++
			if sh.head == len(sh.ring) {
				sh.head = 0
			}
			sh.n--
			sh.drops.Inc()
			q.Owner.Release()
		}
		sh.head = 0
		sh.depth.Set(0)
		sh.mu.Unlock()
	}
}
