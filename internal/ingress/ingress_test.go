package ingress

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/metrics"
	"uavmw/internal/transport"
)

func seqPayload(seq uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	return b[:]
}

// TestPerSourceOrderingAcrossShards pins the pipeline's one ordering
// guarantee under virtual time: however many shards run and however two
// sources interleave, each source's packets reach Deliver in enqueue
// order.
func TestPerSourceOrderingAcrossShards(t *testing.T) {
	v := clock.NewVirtual()
	v.Run(func() {
		var mu sync.Mutex
		got := map[transport.NodeID][]uint64{}
		p := New(Config{
			Shards: 4,
			Clock:  v,
			Deliver: func(shard int, batch []Packet) {
				mu.Lock()
				for _, pkt := range batch {
					got[pkt.From] = append(got[pkt.From], binary.BigEndian.Uint64(pkt.Payload))
				}
				mu.Unlock()
			},
		})
		defer p.Close()
		if p.Shards() != 4 {
			t.Fatalf("Shards() = %d, want 4", p.Shards())
		}
		sources := []transport.NodeID{"uav-alpha", "uav-bravo"}
		const perSource = 200
		for seq := uint64(0); seq < perSource; seq++ {
			for _, src := range sources {
				p.Enqueue("radio", transport.Packet{From: src, Payload: seqPayload(seq)})
			}
		}
		// Quiesce: virtual time cannot advance while any worker still has
		// queued packets, so one sleep drains everything.
		v.Sleep(time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		for _, src := range sources {
			if len(got[src]) != perSource {
				t.Fatalf("source %s: delivered %d packets, want %d", src, len(got[src]), perSource)
			}
			for i, seq := range got[src] {
				if seq != uint64(i) {
					t.Fatalf("source %s: packet %d has seq %d — per-source FIFO violated", src, i, seq)
				}
			}
		}
	})
}

// TestVirtualDefaultsSerialize: under a virtual clock a zero config runs
// one shard draining one packet per batch, the configuration that keeps
// same-seed virtual runs byte-identical.
func TestVirtualDefaultsSerialize(t *testing.T) {
	v := clock.NewVirtual()
	v.Run(func() {
		sizes := make(chan int, 8)
		p := New(Config{Clock: v, Deliver: func(_ int, batch []Packet) { sizes <- len(batch) }})
		defer p.Close()
		if p.Shards() != 1 {
			t.Fatalf("virtual default Shards() = %d, want 1", p.Shards())
		}
		for seq := uint64(0); seq < 5; seq++ {
			p.Enqueue("", transport.Packet{From: "a", Payload: seqPayload(seq)})
		}
		v.Sleep(time.Millisecond)
		close(sizes)
		n := 0
		for sz := range sizes {
			n++
			if sz != 1 {
				t.Fatalf("virtual drain batch of %d packets, want 1", sz)
			}
		}
		if n != 5 {
			t.Fatalf("delivered %d batches, want 5", n)
		}
	})
}

// TestOwnershipHandoff verifies both sides of the buffer contract: a packet
// arriving with an Owner is retained (the delivered payload aliases the
// transport's buffer, no copy), and one without is copied once into pooled
// storage with the pipeline holding the only reference.
func TestOwnershipHandoff(t *testing.T) {
	type seen struct {
		first byte
		same  bool
		owner *bufpool.Shared
	}
	in := make([]byte, 16)
	in[0] = 0x5a
	owner := bufpool.Share(append(bufpool.Get(len(in)), in...))
	base := &owner.Bytes()[0]

	ch := make(chan seen, 2)
	p := New(Config{
		Shards: 1,
		Deliver: func(_ int, batch []Packet) {
			for _, pkt := range batch {
				ch <- seen{
					first: pkt.Payload[0],
					same:  &pkt.Payload[0] == base,
					owner: pkt.Owner,
				}
			}
		},
	})
	defer p.Close()

	p.Enqueue("", transport.Packet{From: "a", Payload: owner.Bytes(), Owner: owner})
	zero := <-ch
	if !zero.same {
		t.Fatal("owned packet was copied; want zero-copy retain")
	}
	if zero.owner != owner {
		t.Fatal("owned packet lost its Shared reference")
	}
	// The pipeline released its retain after Deliver returned; ours is the
	// one reference left.
	deadline := time.Now().Add(2 * time.Second)
	for owner.Refs() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("owner refs = %d after delivery, want 1", owner.Refs())
		}
		time.Sleep(time.Millisecond)
	}
	owner.Release()

	p.Enqueue("", transport.Packet{From: "a", Payload: in})
	copied := <-ch
	if copied.same {
		t.Fatal("ownerless packet aliased the caller's buffer; want pooled copy")
	}
	if copied.first != 0x5a {
		t.Fatalf("copied payload corrupt: first byte %#x", copied.first)
	}
	if copied.owner == nil {
		t.Fatal("pooled copy arrived without an Owner")
	}
}

// TestDropOldest fills a shard ring behind a blocked Deliver and checks the
// stalest packet is shed, the transports' read loop is never blocked, and
// the drop is counted.
func TestDropOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	entered := make(chan struct{})
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []uint64
	first := true
	p := New(Config{
		Shards:   1,
		Ring:     4,
		MaxBatch: 1,
		Metrics:  reg,
		Deliver: func(_ int, batch []Packet) {
			if first {
				first = false
				close(entered)
				<-gate
			}
			mu.Lock()
			for _, pkt := range batch {
				got = append(got, binary.BigEndian.Uint64(pkt.Payload))
			}
			mu.Unlock()
		},
	})
	defer p.Close()

	p.Enqueue("", transport.Packet{From: "a", Payload: seqPayload(0)})
	<-entered // worker is now wedged inside Deliver; the ring is empty
	for seq := uint64(1); seq <= 5; seq++ {
		p.Enqueue("", transport.Packet{From: "a", Payload: seqPayload(seq)})
	}
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for p.Delivered() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d packets, want 5", p.Delivered())
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []uint64{0, 2, 3, 4, 5} // seq 1 was oldest when the ring overflowed
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	if drops := reg.SumCounters("ingress", "drops"); drops != 1 {
		t.Fatalf("ingress drops = %d, want 1", drops)
	}
}

// TestCloseDrainsAndDrops: packets queued before Close still deliver
// (mirroring the transports' pre-close drain); packets enqueued after are
// counted as drops and leave no dangling buffer reference.
func TestCloseDrainsAndDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	var delivered sync.Map
	p := New(Config{
		Shards:  2,
		Metrics: reg,
		Deliver: func(_ int, batch []Packet) {
			for _, pkt := range batch {
				delivered.Store(binary.BigEndian.Uint64(pkt.Payload), true)
			}
		},
	})
	for seq := uint64(0); seq < 10; seq++ {
		p.Enqueue("", transport.Packet{From: transport.NodeID(fmt.Sprintf("n%d", seq%3)), Payload: seqPayload(seq)})
	}
	p.Close()
	for seq := uint64(0); seq < 10; seq++ {
		if _, ok := delivered.Load(seq); !ok {
			t.Fatalf("packet %d enqueued before Close never delivered", seq)
		}
	}

	owner := bufpool.Share(bufpool.Get(8)[:8])
	p.Enqueue("", transport.Packet{From: "late", Payload: owner.Bytes(), Owner: owner})
	if refs := owner.Refs(); refs != 1 {
		t.Fatalf("post-close Enqueue kept a reference: refs = %d, want 1", refs)
	}
	if drops := reg.SumCounters("ingress", "drops"); drops != 1 {
		t.Fatalf("post-close drops = %d, want 1", drops)
	}
	owner.Release()
	p.Close() // idempotent
}

// TestShardOfStable: the source hash is a pure function of identity, and
// every source lands inside range.
func TestShardOfStable(t *testing.T) {
	p := New(Config{Shards: 8, Deliver: func(int, []Packet) {}})
	defer p.Close()
	for i := 0; i < 64; i++ {
		id := transport.NodeID(fmt.Sprintf("node-%d", i))
		s := p.ShardOf(id)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%s) = %d, out of range", id, s)
		}
		if again := p.ShardOf(id); again != s {
			t.Fatalf("ShardOf(%s) unstable: %d then %d", id, s, again)
		}
	}
}

// TestMetricsFamilies pins the ingress metrics family set.
func TestMetricsFamilies(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Config{Shards: 2, Metrics: reg, Deliver: func(int, []Packet) {}})
	defer p.Close()
	want := []string{
		"counter ingress.drops",
		"counter ingress.frames",
		"gauge ingress.queue_depth",
		"gauge ingress.shards",
		"histogram ingress.batch_frames",
	}
	got := map[string]bool{}
	for _, fam := range reg.Snapshot().FamilyList() {
		got[fam] = true
	}
	for _, fam := range want {
		if !got[fam] {
			t.Fatalf("metrics family %q missing; have %v", fam, reg.Snapshot().FamilyList())
		}
	}
}
