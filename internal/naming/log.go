package naming

import "sync"

// Log is a node's versioned view of its own resource offer. Every
// registration or withdrawal bumps the version; the diff between two
// consecutive versions is exactly one Delta. The version travels in every
// discovery message (delta, heartbeat digest, full sync), so receivers can
// tell a view that is current from one that needs anti-entropy repair.
type Log struct {
	mu      sync.Mutex
	version uint64
	records map[RecordKey]Record
	// history is a ring of recent changes indexed by version % depth, so
	// an anti-entropy request from a slightly stale peer can be answered
	// with a compact catch-up delta instead of the full chunked catalog.
	history []logChange
}

type logChange struct {
	to        uint64 // version this change produced
	added     []Record
	withdrawn []RecordKey
}

// logHistoryDepth bounds the catch-up window: peers more than this many
// versions behind fall back to a full snapshot sync.
const logHistoryDepth = 256

// NewLog builds an empty log at version zero.
func NewLog() *Log {
	return &Log{
		records: make(map[RecordKey]Record),
		history: make([]logChange, logHistoryDepth),
	}
}

// Update replaces the offer with recs and, if anything changed, bumps the
// version and returns the delta (from → to, added, withdrawn). When the
// offer is unchanged it returns changed == false and the current version
// in both from and to. Duplicate keys in recs collapse (last wins),
// matching Directory semantics.
func (l *Log) Update(recs []Record) (added []Record, withdrawn []RecordKey, from, to uint64, changed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := make(map[RecordKey]Record, len(recs))
	for _, rec := range recs {
		next[rec.Key()] = rec
	}
	for key, rec := range next {
		if prev, ok := l.records[key]; !ok || prev != rec {
			added = append(added, rec)
		}
	}
	for key := range l.records {
		if _, still := next[key]; !still {
			withdrawn = append(withdrawn, key)
		}
	}
	if len(added) == 0 && len(withdrawn) == 0 {
		return nil, nil, l.version, l.version, false
	}
	from = l.version
	l.version++
	l.records = next
	l.history[l.version%logHistoryDepth] = logChange{
		to: l.version, added: added, withdrawn: withdrawn,
	}
	return added, withdrawn, from, l.version, true
}

// DeltaSince coalesces every change after version since into one catch-up
// delta (From: since, To: current). It reports ok == false when since is
// outside the retained history (or ahead of the log), in which case the
// caller must fall back to a full snapshot. A peer already at the current
// version yields ok == true with a nil delta: nothing to send.
func (l *Log) DeltaSince(since uint64) (added []Record, withdrawn []RecordKey, to uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since > l.version {
		return nil, nil, 0, false
	}
	if since == l.version {
		return nil, nil, l.version, true
	}
	if l.version-since > logHistoryDepth {
		return nil, nil, 0, false
	}
	// Replay the window into a net-change overlay: the requester held our
	// exact state at `since`, so last-wins per key reconstructs the diff.
	type change struct {
		present bool
		rec     Record
	}
	overlay := make(map[RecordKey]change)
	for v := since + 1; v <= l.version; v++ {
		entry := l.history[v%logHistoryDepth]
		if entry.to != v {
			return nil, nil, 0, false // overwritten by a newer wrap
		}
		for _, rec := range entry.added {
			overlay[rec.Key()] = change{present: true, rec: rec}
		}
		for _, key := range entry.withdrawn {
			overlay[key] = change{}
		}
	}
	for key, c := range overlay {
		if c.present {
			added = append(added, c.rec)
		} else {
			withdrawn = append(withdrawn, key)
		}
	}
	return added, withdrawn, l.version, true
}

// Snapshot returns the current records and version, consistently.
func (l *Log) Snapshot() ([]Record, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.records))
	for _, rec := range l.records {
		out = append(out, rec)
	}
	return out, l.version
}

// Version returns the current log version.
func (l *Log) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Count returns the current offer size.
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}
