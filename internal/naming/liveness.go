package naming

import (
	"sort"
	"sync"
	"time"

	"uavmw/internal/transport"
)

// Liveness is the container's failure detector: peers are alive while
// heartbeats keep arriving, and declared failed after a silence deadline.
// §3 makes the container responsible for "watching for [services'] correct
// operation and notifying the rest of containers about changes".
type Liveness struct {
	deadline time.Duration

	mu        sync.Mutex
	lastHeard map[transport.NodeID]time.Time
}

// DefaultFailureDeadline declares a peer dead after this much heartbeat
// silence. It must exceed several heartbeat periods.
const DefaultFailureDeadline = 2 * time.Second

// NewLiveness builds a detector (0 means DefaultFailureDeadline).
func NewLiveness(deadline time.Duration) *Liveness {
	if deadline <= 0 {
		deadline = DefaultFailureDeadline
	}
	return &Liveness{
		deadline:  deadline,
		lastHeard: make(map[transport.NodeID]time.Time),
	}
}

// Touch records that node was heard from at instant now.
func (l *Liveness) Touch(node transport.NodeID, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastHeard[node] = now
}

// Forget drops a node (graceful bye), so it is not later reported failed.
func (l *Liveness) Forget(node transport.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.lastHeard, node)
}

// Sweep returns nodes silent past the deadline and forgets them, so each
// failure is reported exactly once.
func (l *Liveness) Sweep(now time.Time) []transport.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	var failed []transport.NodeID
	for node, heard := range l.lastHeard {
		if now.Sub(heard) > l.deadline {
			failed = append(failed, node)
			delete(l.lastHeard, node)
		}
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	return failed
}

// Alive reports whether node has been heard from within the deadline.
func (l *Liveness) Alive(node transport.NodeID, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	heard, known := l.lastHeard[node]
	return known && now.Sub(heard) <= l.deadline
}

// Peers lists currently tracked nodes, sorted.
func (l *Liveness) Peers() []transport.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]transport.NodeID, 0, len(l.lastHeard))
	for node := range l.lastHeard {
		out = append(out, node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
