// Package naming implements the paper's §3 "Name management": services are
// addressed by name, containers discover the real network location of named
// resources, cache the bindings (the container "acts as a proxy cache for
// the services it contains"), invalidate them when a provider fails, and
// choose among redundant providers statically or dynamically (§4.3).
package naming

import (
	"errors"
	"fmt"

	"uavmw/internal/encoding"
	"uavmw/internal/transport"
)

// Kind classifies a named resource.
type Kind uint8

// Resource kinds.
const (
	KindService  Kind = iota + 1 // a whole service
	KindVariable                 // §4.1 published variable
	KindEvent                    // §4.2 event topic
	KindFunction                 // §4.3 callable function
	KindFile                     // §4.4 file resource
	// KindBearer advertises one datalink (bearer) the node is reachable
	// over: Name is the bearer name ("wifi", "radio", ...), shared across
	// the fleet so peers can match it against their own bearer set, and
	// Service carries the bearer's dialable transport address when the
	// substrate needs one (UDP), empty on substrates with a global address
	// book (bus, netsim). Riding the ordinary offer log means bearer
	// reachability propagates through the same deltas, digests and
	// anti-entropy syncs as every other record.
	KindBearer
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindService:
		return "service"
	case KindVariable:
		return "variable"
	case KindEvent:
		return "event"
	case KindFunction:
		return "function"
	case KindFile:
		return "file"
	case KindBearer:
		return "bearer"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= KindService && k <= KindBearer }

// Record describes one named resource offered by a provider node.
type Record struct {
	// Kind of resource.
	Kind Kind
	// Name is the global resource name, e.g. "gps.position".
	Name string
	// Service is the providing service's name on that node.
	Service string
	// Node is the provider's network identity.
	Node transport.NodeID
	// TypeSig is the payload (or return) type signature for compatibility
	// checking; empty when not applicable.
	TypeSig string
	// ArgSig is the function argument type signature (functions only).
	ArgSig string
}

// Announcement is the periodic container broadcast (§3 "notifying the rest
// of containers about changes in the services status"): the node's full
// resource offer plus a load figure for least-loaded call routing.
type Announcement struct {
	// Node is the announcing container's node id.
	Node transport.NodeID
	// Epoch increments each container restart so stale records from a
	// previous incarnation lose to fresh ones.
	Epoch uint64
	// Version is the node's record-log version this offer corresponds to
	// (see Log). Receivers store it so later deltas and heartbeat digests
	// can be checked for gaps.
	Version uint64
	// Load is a normalized utilization figure in [0,1] used by dynamic
	// call binding.
	Load float64
	// Records is the complete resource offer of the node.
	Records []Record
}

// ErrBadAnnouncement tags decode failures.
var ErrBadAnnouncement = errors.New("bad announcement")

const announceVersion = 2

// EncodeAnnouncement serializes a.
func EncodeAnnouncement(a *Announcement) ([]byte, error) {
	if a.Node == "" {
		return nil, fmt.Errorf("naming: empty node: %w", ErrBadAnnouncement)
	}
	w := encoding.NewWriter(64 + 48*len(a.Records))
	w.Uint8(announceVersion)
	w.String(string(a.Node))
	w.Uint64(a.Epoch)
	w.Uint64(a.Version)
	w.Float64(a.Load)
	w.Uint32(uint32(len(a.Records)))
	for i, rec := range a.Records {
		if err := encodeRecord(w, rec); err != nil {
			return nil, fmt.Errorf("naming: record %d: %w", i, err)
		}
	}
	return w.Bytes(), nil
}

// encodeRecord writes one record body (everything but the provider node,
// which travels once in the enclosing message header).
func encodeRecord(w *encoding.Writer, rec Record) error {
	if !rec.Kind.Valid() {
		return fmt.Errorf("kind %d: %w", rec.Kind, ErrBadAnnouncement)
	}
	if rec.Name == "" {
		return fmt.Errorf("unnamed: %w", ErrBadAnnouncement)
	}
	w.Uint8(uint8(rec.Kind))
	w.String(rec.Name)
	w.String(rec.Service)
	w.String(rec.TypeSig)
	w.String(rec.ArgSig)
	return nil
}

// encodedRecordSize is the wire size of one record body.
func encodedRecordSize(rec Record) int {
	// kind byte plus four length-prefixed (u32) strings.
	return 1 + 4*4 + len(rec.Name) + len(rec.Service) + len(rec.TypeSig) + len(rec.ArgSig)
}

// decodeRecord reads one record body and stamps it with the provider node.
func decodeRecord(r *encoding.Reader, node transport.NodeID) (Record, error) {
	var rec Record
	rec.Kind = Kind(r.Uint8())
	rec.Name = r.String()
	rec.Service = r.String()
	rec.TypeSig = r.String()
	rec.ArgSig = r.String()
	rec.Node = node
	if err := r.Err(); err != nil {
		return Record{}, err
	}
	if !rec.Kind.Valid() || rec.Name == "" {
		return Record{}, fmt.Errorf("invalid record: %w", ErrBadAnnouncement)
	}
	return rec, nil
}

// DecodeAnnouncement parses data. Every record's Node field is filled from
// the announcement header.
func DecodeAnnouncement(data []byte) (*Announcement, error) {
	r := encoding.NewReader(data)
	if v := r.Uint8(); v != announceVersion {
		return nil, fmt.Errorf("naming: version %d: %w", v, ErrBadAnnouncement)
	}
	a := &Announcement{}
	a.Node = transport.NodeID(r.String())
	a.Epoch = r.Uint64()
	a.Version = r.Uint64()
	a.Load = r.Float64()
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naming: header: %w", err)
	}
	if a.Node == "" {
		return nil, fmt.Errorf("naming: empty node: %w", ErrBadAnnouncement)
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("naming: %d records: %w", n, ErrBadAnnouncement)
	}
	a.Records = make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec, err := decodeRecord(r, a.Node)
		if err != nil {
			return nil, fmt.Errorf("naming: record %d: %w", i, err)
		}
		a.Records = append(a.Records, rec)
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, fmt.Errorf("naming: %w", err)
	}
	return a, nil
}
