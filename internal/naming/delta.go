package naming

import (
	"fmt"

	"uavmw/internal/encoding"
	"uavmw/internal/transport"
)

// This file defines the incremental discovery wire formats. The old
// protocol rebroadcast every node's complete record set each announce
// period — O(total records) wire bytes per beacon. The incremental plane
// splits that into three messages:
//
//   - Delta (MTAnnounceDelta): multicast the moment a registration changes,
//     carrying only the records added/withdrawn between two log versions;
//   - Digest (MTHeartbeat): the constant-size periodic beacon — node,
//     epoch, version, load, record count — O(nodes) steady-state cost;
//   - SyncChunk (MTSyncRep): one MTU-bounded chunk of a full record set,
//     sent unicast over ARQ in answer to MTSyncReq when a receiver detects
//     a version gap, an unknown node, or a fresh epoch.

// RecordKey identifies a record within one node's offer (withdrawals need
// only the key, not the full record).
type RecordKey struct {
	// Kind of resource.
	Kind Kind
	// Name is the global resource name.
	Name string
}

// Key returns the record's identity within its node's offer.
func (r Record) Key() RecordKey { return RecordKey{Kind: r.Kind, Name: r.Name} }

// Delta is an incremental announcement: the offer changes that took the
// node's record log from version From to version To. A receiver may apply
// it only when its cached version equals From (or the node is brand new
// and From is zero); otherwise it must request a full sync.
type Delta struct {
	// Node is the announcing container.
	Node transport.NodeID
	// Epoch is the container incarnation.
	Epoch uint64
	// From is the log version this delta applies on top of.
	From uint64
	// To is the log version after applying it (always > From).
	To uint64
	// Load is the announcer's current load figure.
	Load float64
	// Added lists records offered since From.
	Added []Record
	// Withdrawn lists record keys no longer offered.
	Withdrawn []RecordKey
}

// Digest is the constant-size periodic heartbeat: enough for receivers to
// confirm liveness, refresh TTLs, steer load-aware binding, and detect
// that their cached view of the node is stale.
type Digest struct {
	// Node is the beaconing container.
	Node transport.NodeID
	// Epoch is the container incarnation.
	Epoch uint64
	// Version is the node's current record-log version.
	Version uint64
	// Load is the current load figure.
	Load float64
	// RecordCount is the current offer size (diagnostics; a receiver whose
	// version matches must hold exactly this many records for the node).
	RecordCount uint32
}

// SyncRequest asks a node for its full record set. The requester's cached
// state rides along for diagnostics and future delta-serving.
type SyncRequest struct {
	// KnownEpoch is the requester's cached epoch for the target (0 = none).
	KnownEpoch uint64
	// KnownVersion is the requester's cached log version (0 = none).
	KnownVersion uint64
}

// SyncChunk is one piece of a full-state reply. Chunks are sized under the
// MTU by the sender so each rides in a single datagram even over ARQ; the
// receiver assembles all Count chunks of one (node, epoch, version) before
// applying them atomically.
type SyncChunk struct {
	// Node is the replying container.
	Node transport.NodeID
	// Epoch is the container incarnation.
	Epoch uint64
	// Version is the log version this snapshot corresponds to.
	Version uint64
	// Load is the replier's load figure.
	Load float64
	// Index is this chunk's position in [0, Count).
	Index uint32
	// Count is the total chunk count of the snapshot (>= 1).
	Count uint32
	// Records is this chunk's slice of the full record set.
	Records []Record
}

// Wire format versions (independent of the frame-level version).
const (
	deltaWireVersion  = 1
	digestWireVersion = 1
	syncWireVersion   = 1
)

// maxDeltaRecords bounds decode allocations for a hostile or corrupt
// delta/chunk.
const maxDeltaRecords = 1 << 16

// EncodeDelta serializes d.
func EncodeDelta(d *Delta) ([]byte, error) {
	if d.Node == "" {
		return nil, fmt.Errorf("naming: delta empty node: %w", ErrBadAnnouncement)
	}
	if d.To <= d.From {
		return nil, fmt.Errorf("naming: delta versions %d..%d: %w", d.From, d.To, ErrBadAnnouncement)
	}
	w := encoding.NewWriter(64 + 48*(len(d.Added)+len(d.Withdrawn)))
	w.Uint8(deltaWireVersion)
	w.String(string(d.Node))
	w.Uint64(d.Epoch)
	w.Uint64(d.From)
	w.Uint64(d.To)
	w.Float64(d.Load)
	w.Uint32(uint32(len(d.Added)))
	for i, rec := range d.Added {
		if err := encodeRecord(w, rec); err != nil {
			return nil, fmt.Errorf("naming: delta add %d: %w", i, err)
		}
	}
	w.Uint32(uint32(len(d.Withdrawn)))
	for i, key := range d.Withdrawn {
		if !key.Kind.Valid() || key.Name == "" {
			return nil, fmt.Errorf("naming: delta withdraw %d: %w", i, ErrBadAnnouncement)
		}
		w.Uint8(uint8(key.Kind))
		w.String(key.Name)
	}
	return w.Bytes(), nil
}

// DecodeDelta parses data. Added records carry the delta's node.
func DecodeDelta(data []byte) (*Delta, error) {
	r := encoding.NewReader(data)
	if v := r.Uint8(); v != deltaWireVersion {
		return nil, fmt.Errorf("naming: delta version %d: %w", v, ErrBadAnnouncement)
	}
	d := &Delta{}
	d.Node = transport.NodeID(r.String())
	d.Epoch = r.Uint64()
	d.From = r.Uint64()
	d.To = r.Uint64()
	d.Load = r.Float64()
	nAdd := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naming: delta header: %w", err)
	}
	if d.Node == "" || d.To <= d.From {
		return nil, fmt.Errorf("naming: delta header: %w", ErrBadAnnouncement)
	}
	if nAdd > maxDeltaRecords {
		return nil, fmt.Errorf("naming: delta %d adds: %w", nAdd, ErrBadAnnouncement)
	}
	d.Added = make([]Record, 0, nAdd)
	for i := 0; i < nAdd; i++ {
		rec, err := decodeRecord(r, d.Node)
		if err != nil {
			return nil, fmt.Errorf("naming: delta add %d: %w", i, err)
		}
		d.Added = append(d.Added, rec)
	}
	nDel := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naming: delta: %w", err)
	}
	if nDel > maxDeltaRecords {
		return nil, fmt.Errorf("naming: delta %d withdrawals: %w", nDel, ErrBadAnnouncement)
	}
	d.Withdrawn = make([]RecordKey, 0, nDel)
	for i := 0; i < nDel; i++ {
		key := RecordKey{Kind: Kind(r.Uint8()), Name: r.String()}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("naming: delta withdraw %d: %w", i, err)
		}
		if !key.Kind.Valid() || key.Name == "" {
			return nil, fmt.Errorf("naming: delta withdraw %d: %w", i, ErrBadAnnouncement)
		}
		d.Withdrawn = append(d.Withdrawn, key)
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, fmt.Errorf("naming: delta: %w", err)
	}
	return d, nil
}

// EncodeDigest serializes g. The result is constant-size apart from the
// node id string.
func EncodeDigest(g *Digest) ([]byte, error) {
	if g.Node == "" {
		return nil, fmt.Errorf("naming: digest empty node: %w", ErrBadAnnouncement)
	}
	w := encoding.NewWriter(48 + len(g.Node))
	w.Uint8(digestWireVersion)
	w.String(string(g.Node))
	w.Uint64(g.Epoch)
	w.Uint64(g.Version)
	w.Float64(g.Load)
	w.Uint32(g.RecordCount)
	return w.Bytes(), nil
}

// DecodeDigest parses data.
func DecodeDigest(data []byte) (*Digest, error) {
	r := encoding.NewReader(data)
	if v := r.Uint8(); v != digestWireVersion {
		return nil, fmt.Errorf("naming: digest version %d: %w", v, ErrBadAnnouncement)
	}
	g := &Digest{}
	g.Node = transport.NodeID(r.String())
	g.Epoch = r.Uint64()
	g.Version = r.Uint64()
	g.Load = r.Float64()
	g.RecordCount = r.Uint32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naming: digest: %w", err)
	}
	if g.Node == "" {
		return nil, fmt.Errorf("naming: digest empty node: %w", ErrBadAnnouncement)
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, fmt.Errorf("naming: digest: %w", err)
	}
	return g, nil
}

// EncodeSyncRequest serializes q.
func EncodeSyncRequest(q *SyncRequest) []byte {
	w := encoding.NewWriter(24)
	w.Uint8(syncWireVersion)
	w.Uint64(q.KnownEpoch)
	w.Uint64(q.KnownVersion)
	return w.Bytes()
}

// DecodeSyncRequest parses data.
func DecodeSyncRequest(data []byte) (*SyncRequest, error) {
	r := encoding.NewReader(data)
	if v := r.Uint8(); v != syncWireVersion {
		return nil, fmt.Errorf("naming: sync-req version %d: %w", v, ErrBadAnnouncement)
	}
	q := &SyncRequest{KnownEpoch: r.Uint64(), KnownVersion: r.Uint64()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naming: sync-req: %w", err)
	}
	return q, nil
}

// syncChunkHeaderSize bounds the per-chunk header: version byte, node
// string, epoch, version, load, index, count, record count.
func syncChunkHeaderSize(node transport.NodeID) int {
	return 1 + 4 + len(node) + 8 + 8 + 8 + 4 + 4 + 4
}

// EncodeSyncChunks splits a full offer into MTU-bounded chunk payloads.
// maxBytes bounds each encoded chunk payload; a single record larger than
// the budget still gets its own chunk (the frame layer fragments it).
// At least one chunk is always produced, so an empty offer syncs too.
func EncodeSyncChunks(a *Announcement, maxBytes int) ([][]byte, error) {
	if a.Node == "" {
		return nil, fmt.Errorf("naming: sync empty node: %w", ErrBadAnnouncement)
	}
	if maxBytes <= 0 {
		maxBytes = 1200
	}
	budget := maxBytes - syncChunkHeaderSize(a.Node)
	if budget < 1 {
		budget = 1
	}
	// Pass 1: group records into chunks by encoded size.
	var groups [][]Record
	var cur []Record
	used := 0
	for _, rec := range a.Records {
		sz := encodedRecordSize(rec)
		if len(cur) > 0 && used+sz > budget {
			groups = append(groups, cur)
			cur, used = nil, 0
		}
		cur = append(cur, rec)
		used += sz
	}
	if len(cur) > 0 || len(groups) == 0 {
		groups = append(groups, cur)
	}
	// Pass 2: encode with the final count stamped into every chunk.
	out := make([][]byte, 0, len(groups))
	for idx, recs := range groups {
		w := encoding.NewWriter(syncChunkHeaderSize(a.Node) + 48*len(recs))
		w.Uint8(syncWireVersion)
		w.String(string(a.Node))
		w.Uint64(a.Epoch)
		w.Uint64(a.Version)
		w.Float64(a.Load)
		w.Uint32(uint32(idx))
		w.Uint32(uint32(len(groups)))
		w.Uint32(uint32(len(recs)))
		for i, rec := range recs {
			if err := encodeRecord(w, rec); err != nil {
				return nil, fmt.Errorf("naming: sync chunk %d record %d: %w", idx, i, err)
			}
		}
		out = append(out, w.Bytes())
	}
	return out, nil
}

// DecodeSyncChunk parses one chunk payload.
func DecodeSyncChunk(data []byte) (*SyncChunk, error) {
	r := encoding.NewReader(data)
	if v := r.Uint8(); v != syncWireVersion {
		return nil, fmt.Errorf("naming: sync version %d: %w", v, ErrBadAnnouncement)
	}
	c := &SyncChunk{}
	c.Node = transport.NodeID(r.String())
	c.Epoch = r.Uint64()
	c.Version = r.Uint64()
	c.Load = r.Float64()
	c.Index = r.Uint32()
	c.Count = r.Uint32()
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naming: sync header: %w", err)
	}
	if c.Node == "" || c.Count == 0 || c.Index >= c.Count {
		return nil, fmt.Errorf("naming: sync chunk %d/%d: %w", c.Index, c.Count, ErrBadAnnouncement)
	}
	if n > maxDeltaRecords {
		return nil, fmt.Errorf("naming: sync %d records: %w", n, ErrBadAnnouncement)
	}
	c.Records = make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec, err := decodeRecord(r, c.Node)
		if err != nil {
			return nil, fmt.Errorf("naming: sync record %d: %w", i, err)
		}
		c.Records = append(c.Records, rec)
	}
	if err := r.ExpectEOF(); err != nil {
		return nil, fmt.Errorf("naming: sync: %w", err)
	}
	return c, nil
}

// SyncAssembler collects sync chunks per node and yields the complete
// announcement once every chunk of one (epoch, version) snapshot has
// arrived. A chunk from a newer snapshot discards a half-assembled older
// one; chunks from an older snapshot are dropped.
type SyncAssembler struct {
	pending map[transport.NodeID]*syncAssembly
}

type syncAssembly struct {
	epoch   uint64
	version uint64
	load    float64
	count   uint32
	got     map[uint32][]Record
}

// NewSyncAssembler builds an empty assembler. It is not goroutine-safe;
// callers serialize Offer (the container's discovery path does).
func NewSyncAssembler() *SyncAssembler {
	return &SyncAssembler{pending: make(map[transport.NodeID]*syncAssembly)}
}

// Offer ingests one chunk; when it completes a snapshot the assembled
// announcement is returned and the node's pending state cleared.
func (s *SyncAssembler) Offer(c *SyncChunk) *Announcement {
	asm := s.pending[c.Node]
	if asm != nil {
		if c.Epoch < asm.epoch || (c.Epoch == asm.epoch && c.Version < asm.version) {
			return nil // stale snapshot
		}
		if c.Epoch != asm.epoch || c.Version != asm.version || c.Count != asm.count {
			asm = nil // newer snapshot supersedes the half-built one
		}
	}
	if asm == nil {
		asm = &syncAssembly{
			epoch: c.Epoch, version: c.Version, load: c.Load,
			count: c.Count, got: make(map[uint32][]Record),
		}
		s.pending[c.Node] = asm
	}
	asm.got[c.Index] = c.Records
	if uint32(len(asm.got)) < asm.count {
		return nil
	}
	delete(s.pending, c.Node)
	a := &Announcement{Node: c.Node, Epoch: asm.epoch, Version: asm.version, Load: asm.load}
	for i := uint32(0); i < asm.count; i++ {
		a.Records = append(a.Records, asm.got[i]...)
	}
	return a
}

// Forget drops any half-assembled snapshot for a departed node.
func (s *SyncAssembler) Forget(node transport.NodeID) {
	delete(s.pending, node)
}
