package naming

import (
	"errors"
	"testing"
	"time"
)

func TestDeltaRoundTrip(t *testing.T) {
	d := &Delta{
		Node: "n1", Epoch: 7, From: 3, To: 5, Load: 0.25,
		Added: []Record{
			{Kind: KindVariable, Name: "gps.position", Service: "gps", Node: "n1", TypeSig: "{lat:f64}"},
			{Kind: KindFunction, Name: "cam.shoot", Service: "cam", Node: "n1", TypeSig: "bool", ArgSig: "u32"},
		},
		Withdrawn: []RecordKey{{Kind: KindEvent, Name: "old.topic"}},
	}
	data, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != d.Node || got.Epoch != d.Epoch || got.From != d.From || got.To != d.To {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Added) != 2 || got.Added[0] != d.Added[0] || got.Added[1] != d.Added[1] {
		t.Fatalf("added mismatch: %+v", got.Added)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != d.Withdrawn[0] {
		t.Fatalf("withdrawn mismatch: %+v", got.Withdrawn)
	}
}

func TestDeltaRejectsBadInput(t *testing.T) {
	if _, err := EncodeDelta(&Delta{Node: "", From: 0, To: 1}); !errors.Is(err, ErrBadAnnouncement) {
		t.Errorf("empty node: %v", err)
	}
	if _, err := EncodeDelta(&Delta{Node: "n", From: 2, To: 2}); !errors.Is(err, ErrBadAnnouncement) {
		t.Errorf("non-advancing versions: %v", err)
	}
	good, err := EncodeDelta(&Delta{Node: "n", From: 0, To: 1,
		Added: []Record{{Kind: KindVariable, Name: "v", Node: "n"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(good[:len(good)-2]); err == nil {
		t.Error("truncated delta decoded")
	}
	if _, err := DecodeDelta(append(good, 9)); err == nil {
		t.Error("trailing garbage decoded")
	}
	if _, err := DecodeDelta(nil); err == nil {
		t.Error("nil delta decoded")
	}
}

func TestDigestRoundTripAndSize(t *testing.T) {
	g := &Digest{Node: "uav-42", Epoch: 99, Version: 1234, Load: 0.5, RecordCount: 1000}
	data, err := EncodeDigest(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigest(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *g {
		t.Fatalf("round trip: %+v != %+v", got, g)
	}
	// The scaling claim: a digest is constant-size regardless of how many
	// records the node offers (only the node id varies).
	if len(data) > 64 {
		t.Errorf("digest is %d bytes; the beacon must stay small", len(data))
	}
}

func TestSyncChunksSplitAndReassemble(t *testing.T) {
	a := &Announcement{Node: "n1", Epoch: 5, Version: 77, Load: 0.1}
	for i := 0; i < 300; i++ {
		a.Records = append(a.Records, Record{
			Kind: KindVariable, Name: "var." + string(rune('a'+i%26)) + string(rune('0'+i%10)) + "." + time.Duration(i).String(),
			Service: "svc", Node: "n1", TypeSig: "{lat:f64,lon:f64}",
		})
	}
	const maxBytes = 1200
	chunks, err := EncodeSyncChunks(a, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("300 records fit one chunk (%d); want MTU-bounded split", len(chunks))
	}
	for i, raw := range chunks {
		if len(raw) > maxBytes {
			t.Errorf("chunk %d is %d bytes > budget %d", i, len(raw), maxBytes)
		}
	}
	asm := NewSyncAssembler()
	var got *Announcement
	// Deliver out of order: completion must not depend on arrival order.
	for i := len(chunks) - 1; i >= 0; i-- {
		c, err := DecodeSyncChunk(chunks[i])
		if err != nil {
			t.Fatal(err)
		}
		if res := asm.Offer(c); res != nil {
			if got != nil {
				t.Fatal("assembler completed twice")
			}
			got = res
		}
	}
	if got == nil {
		t.Fatal("assembler never completed")
	}
	if got.Node != a.Node || got.Epoch != a.Epoch || got.Version != a.Version {
		t.Fatalf("assembled header: %+v", got)
	}
	if len(got.Records) != len(a.Records) {
		t.Fatalf("assembled %d records, want %d", len(got.Records), len(a.Records))
	}
}

func TestSyncAssemblerSupersedesStaleSnapshot(t *testing.T) {
	big := &Announcement{Node: "n1", Epoch: 1, Version: 1}
	for i := 0; i < 200; i++ {
		big.Records = append(big.Records, Record{
			Kind: KindVariable, Name: "v" + time.Duration(i).String(), Node: "n1", TypeSig: "{a:f64,b:f64,c:f64}",
		})
	}
	oldChunks, err := EncodeSyncChunks(big, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldChunks) < 2 {
		t.Fatal("need a multi-chunk snapshot for this test")
	}
	asm := NewSyncAssembler()
	c0, _ := DecodeSyncChunk(oldChunks[0])
	if asm.Offer(c0) != nil {
		t.Fatal("half snapshot completed")
	}
	// A newer version arrives before the old snapshot finishes.
	small := &Announcement{Node: "n1", Epoch: 1, Version: 2,
		Records: []Record{{Kind: KindEvent, Name: "e", Node: "n1"}}}
	newChunks, err := EncodeSyncChunks(small, 800)
	if err != nil {
		t.Fatal(err)
	}
	nc, _ := DecodeSyncChunk(newChunks[0])
	got := asm.Offer(nc)
	if got == nil || got.Version != 2 || len(got.Records) != 1 {
		t.Fatalf("new snapshot not assembled: %+v", got)
	}
	// Stragglers from the stale snapshot must not resurrect it.
	c1, _ := DecodeSyncChunk(oldChunks[1])
	if asm.Offer(c1) != nil {
		t.Fatal("stale chunk completed a snapshot")
	}
}

func TestSyncChunksEmptyOffer(t *testing.T) {
	chunks, err := EncodeSyncChunks(&Announcement{Node: "n1", Epoch: 1, Version: 4}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Fatalf("empty offer: %d chunks, want 1", len(chunks))
	}
	c, err := DecodeSyncChunk(chunks[0])
	if err != nil {
		t.Fatal(err)
	}
	a := NewSyncAssembler().Offer(c)
	if a == nil || len(a.Records) != 0 || a.Version != 4 {
		t.Fatalf("empty sync: %+v", a)
	}
}

func TestLogVersionsAndDiffs(t *testing.T) {
	l := NewLog()
	if v := l.Version(); v != 0 {
		t.Fatalf("fresh log at version %d", v)
	}
	r1 := Record{Kind: KindVariable, Name: "a", Node: "n"}
	r2 := Record{Kind: KindFunction, Name: "b", Node: "n"}
	added, withdrawn, from, to, changed := l.Update([]Record{r1, r2})
	if !changed || from != 0 || to != 1 || len(added) != 2 || len(withdrawn) != 0 {
		t.Fatalf("first update: added=%v withdrawn=%v %d..%d changed=%v", added, withdrawn, from, to, changed)
	}
	// No-op update: version must not advance.
	_, _, from, to, changed = l.Update([]Record{r2, r1})
	if changed || from != 1 || to != 1 {
		t.Fatalf("no-op update bumped version: %d..%d changed=%v", from, to, changed)
	}
	// Withdraw one, modify the other.
	r2mod := r2
	r2mod.TypeSig = "u32"
	added, withdrawn, from, to, changed = l.Update([]Record{r2mod})
	if !changed || from != 1 || to != 2 {
		t.Fatalf("update 2: %d..%d changed=%v", from, to, changed)
	}
	if len(added) != 1 || added[0] != r2mod {
		t.Fatalf("modified record not re-added: %v", added)
	}
	if len(withdrawn) != 1 || withdrawn[0] != r1.Key() {
		t.Fatalf("withdrawn = %v", withdrawn)
	}
	recs, v := l.Snapshot()
	if v != 2 || len(recs) != 1 || l.Count() != 1 {
		t.Fatalf("snapshot: %v at %d", recs, v)
	}
}

func TestDirectoryApplyDelta(t *testing.T) {
	d := NewDirectory(time.Minute)
	now := time.Now()
	r1 := Record{Kind: KindVariable, Name: "a", Node: "n1"}
	r2 := Record{Kind: KindVariable, Name: "b", Node: "n1"}

	// A fresh node's 0→1 delta is self-contained.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 1, From: 0, To: 1, Added: []Record{r1}}, now); sync {
		t.Fatal("fresh 0→1 delta demanded sync")
	}
	if got := d.Lookup(KindVariable, "a"); len(got) != 1 {
		t.Fatalf("a not resolvable: %v", got)
	}
	// In-sequence delta applies.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 1, From: 1, To: 2, Added: []Record{r2}}, now); sync {
		t.Fatal("in-sequence delta demanded sync")
	}
	// A duplicate of an old delta is ignored without sync.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 1, From: 1, To: 2, Added: []Record{r2}}, now); sync {
		t.Fatal("duplicate delta demanded sync")
	}
	// A gap demands sync and must not corrupt state.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 1, From: 5, To: 6,
		Withdrawn: []RecordKey{r1.Key()}}, now); !sync {
		t.Fatal("gapped delta applied silently")
	}
	if got := d.Lookup(KindVariable, "a"); len(got) != 1 {
		t.Fatal("gapped delta mutated the directory")
	}
	// Withdrawal via an in-sequence delta.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 1, From: 2, To: 3,
		Withdrawn: []RecordKey{r1.Key()}}, now); sync {
		t.Fatal("withdrawal delta demanded sync")
	}
	if got := d.Lookup(KindVariable, "a"); len(got) != 0 {
		t.Fatalf("a still resolvable after withdrawal: %v", got)
	}
	// A fresh epoch starting mid-history demands sync...
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 2, From: 4, To: 5}, now); !sync {
		t.Fatal("fresh-epoch mid-history delta applied")
	}
	// ...but a fresh epoch from version zero resets and applies.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 2, From: 0, To: 1, Added: []Record{r1}}, now); sync {
		t.Fatal("fresh-epoch 0→1 delta demanded sync")
	}
	if got := d.Lookup(KindVariable, "b"); len(got) != 0 {
		t.Fatalf("previous-epoch record survived the reset: %v", got)
	}
	// A stale-epoch delta is discarded outright.
	if sync := d.ApplyDelta(&Delta{Node: "n1", Epoch: 1, From: 1, To: 2, Added: []Record{r2}}, now); sync {
		t.Fatal("stale-epoch delta demanded sync")
	}
	if got := d.Lookup(KindVariable, "b"); len(got) != 0 {
		t.Fatal("stale-epoch delta applied")
	}
}

func TestDirectoryApplyDigest(t *testing.T) {
	d := NewDirectory(50 * time.Millisecond)
	t0 := time.Now()
	r1 := Record{Kind: KindVariable, Name: "a", Node: "n1"}
	d.Apply(&Announcement{Node: "n1", Epoch: 1, Version: 3, Records: []Record{r1}}, t0)

	// Matching digest refreshes the TTL.
	t1 := t0.Add(40 * time.Millisecond)
	if sync := d.ApplyDigest(&Digest{Node: "n1", Epoch: 1, Version: 3, RecordCount: 1}, t1); sync {
		t.Fatal("matching digest demanded sync")
	}
	if stale := d.Expire(t0.Add(60 * time.Millisecond)); len(stale) != 0 {
		t.Fatalf("refreshed entry expired: %v", stale)
	}
	// Version-gap digest demands sync.
	if sync := d.ApplyDigest(&Digest{Node: "n1", Epoch: 1, Version: 9, RecordCount: 4}, t1); !sync {
		t.Fatal("gap digest not flagged")
	}
	// Unknown node with records demands sync; with an empty offer it just
	// registers the baseline.
	if sync := d.ApplyDigest(&Digest{Node: "n2", Epoch: 1, Version: 5, RecordCount: 2}, t1); !sync {
		t.Fatal("unknown node with records not flagged")
	}
	if sync := d.ApplyDigest(&Digest{Node: "n3", Epoch: 1, Version: 0, RecordCount: 0}, t1); sync {
		t.Fatal("empty-offer node flagged for sync")
	}
	if sync := d.ApplyDelta(&Delta{Node: "n3", Epoch: 1, From: 0, To: 1, Added: []Record{
		{Kind: KindEvent, Name: "x", Node: "n3"}}}, t1); sync {
		t.Fatal("first delta after empty-offer digest demanded sync")
	}
	// A fresh-epoch digest demands sync; a stale-epoch one is ignored.
	if sync := d.ApplyDigest(&Digest{Node: "n1", Epoch: 2, Version: 1, RecordCount: 1}, t1); !sync {
		t.Fatal("fresh-epoch digest not flagged")
	}
	if sync := d.ApplyDigest(&Digest{Node: "n1", Epoch: 0, Version: 8, RecordCount: 1}, t1); sync {
		t.Fatal("stale-epoch digest flagged")
	}
}

func TestDirectoryRemoveNodeForcesResync(t *testing.T) {
	d := NewDirectory(time.Minute)
	now := time.Now()
	d.Apply(&Announcement{Node: "n1", Epoch: 1, Version: 3,
		Records: []Record{{Kind: KindVariable, Name: "a", Node: "n1"}}}, now)
	d.RemoveNode("n1")
	// After a purge the cached version is gone, so even a digest at the
	// same version must trigger a sync (the records are lost).
	if sync := d.ApplyDigest(&Digest{Node: "n1", Epoch: 1, Version: 3, RecordCount: 1}, now); !sync {
		t.Fatal("post-purge digest did not demand sync")
	}
}
