package naming

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Directory is the per-container proxy cache of name bindings (§3). It is
// fed by announcements, aged by TTL, purged on failure notifications, and
// queried by the primitives to resolve names to provider nodes.
type Directory struct {
	ttl time.Duration

	mu      sync.Mutex
	entries map[dirKey]map[transport.NodeID]*dirEntry
	epochs  map[transport.NodeID]uint64
	loads   map[transport.NodeID]float64
	rr      map[dirKey]uint64 // round-robin cursors
}

type dirKey struct {
	kind Kind
	name string
}

type dirEntry struct {
	rec     Record
	expires time.Time
}

// DefaultTTL is how long a cached binding survives without refresh. It must
// exceed the announce period comfortably.
const DefaultTTL = 3 * time.Second

// Errors.
var (
	// ErrNotFound reports a name with no live provider — the condition
	// §4.3 says must trigger "the programmed emergency procedure".
	ErrNotFound = errors.New("no provider for name")
	// ErrPinnedGone reports a statically pinned provider that is no
	// longer alive.
	ErrPinnedGone = errors.New("pinned provider gone")
)

// NewDirectory builds a cache with the given TTL (0 means DefaultTTL).
func NewDirectory(ttl time.Duration) *Directory {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Directory{
		ttl:     ttl,
		entries: make(map[dirKey]map[transport.NodeID]*dirEntry),
		epochs:  make(map[transport.NodeID]uint64),
		loads:   make(map[transport.NodeID]float64),
		rr:      make(map[dirKey]uint64),
	}
}

// Apply ingests an announcement: it refreshes the node's records, removes
// records the node no longer offers, and rejects stale epochs. It reports
// whether anything changed.
func (d *Directory) Apply(a *Announcement, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.epochs[a.Node]; ok && a.Epoch < prev {
		return false // stale incarnation
	}
	d.epochs[a.Node] = a.Epoch
	d.loads[a.Node] = a.Load

	offered := make(map[dirKey]bool, len(a.Records))
	changed := false
	expires := now.Add(d.ttl)
	for _, rec := range a.Records {
		key := dirKey{kind: rec.Kind, name: rec.Name}
		offered[key] = true
		nodeMap := d.entries[key]
		if nodeMap == nil {
			nodeMap = make(map[transport.NodeID]*dirEntry)
			d.entries[key] = nodeMap
		}
		prev, exists := nodeMap[a.Node]
		if !exists || prev.rec != rec {
			changed = true
		}
		nodeMap[a.Node] = &dirEntry{rec: rec, expires: expires}
	}
	// Drop records this node previously offered but no longer announces.
	for key, nodeMap := range d.entries {
		if offered[key] {
			continue
		}
		if _, had := nodeMap[a.Node]; had {
			delete(nodeMap, a.Node)
			changed = true
			if len(nodeMap) == 0 {
				delete(d.entries, key)
			}
		}
	}
	return changed
}

// RemoveNode purges every binding of a failed or departed node (§3: "In
// case of service malfunctioning, it is also the container responsibility
// ... to clear and update their caches").
func (d *Directory) RemoveNode(node transport.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.loads, node)
	for key, nodeMap := range d.entries {
		if _, had := nodeMap[node]; had {
			delete(nodeMap, node)
			if len(nodeMap) == 0 {
				delete(d.entries, key)
			}
		}
	}
}

// Expire drops entries not refreshed within the TTL, returning the nodes
// that lost their last record (candidates for failure handling).
func (d *Directory) Expire(now time.Time) []transport.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	stale := make(map[transport.NodeID]bool)
	for key, nodeMap := range d.entries {
		for node, e := range nodeMap {
			if now.After(e.expires) {
				delete(nodeMap, node)
				stale[node] = true
			}
		}
		if len(nodeMap) == 0 {
			delete(d.entries, key)
		}
	}
	out := make([]transport.NodeID, 0, len(stale))
	for node := range stale {
		out = append(out, node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lookup returns the live providers of (kind, name), sorted by node for
// determinism.
func (d *Directory) Lookup(kind Kind, name string) []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	nodeMap := d.entries[dirKey{kind: kind, name: name}]
	out := make([]Record, 0, len(nodeMap))
	for _, e := range nodeMap {
		out = append(out, e.rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Names lists all known names of a kind, sorted.
func (d *Directory) Names(kind Kind) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for key, nodeMap := range d.entries {
		if key.kind == kind && len(nodeMap) > 0 {
			out = append(out, key.name)
		}
	}
	sort.Strings(out)
	return out
}

// Load returns the last announced load of a node (0 if unknown).
func (d *Directory) Load(node transport.NodeID) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.loads[node]
}

// Select picks one provider of (kind, name) according to the binding policy
// (§4.3): BindStatic keeps using pinned while alive, failing over only when
// it disappears; BindDynamic load-balances — round-robin across providers
// within ~10% load of the least loaded, so fresh load reports steer calls
// away from busy nodes without starving equal ones.
//
// It returns the chosen record; callers persist the returned node as the
// new pin for static binding.
func (d *Directory) Select(kind Kind, name string, binding qos.Binding, pinned transport.NodeID) (Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dirKey{kind: kind, name: name}
	nodeMap := d.entries[key]
	if len(nodeMap) == 0 {
		return Record{}, fmt.Errorf("naming: %v %q: %w", kind, name, ErrNotFound)
	}
	if binding == qos.BindStatic && pinned != "" {
		if e, alive := nodeMap[pinned]; alive {
			return e.rec, nil
		}
		// Fall through: redundancy failover even for static binding.
	}
	// Deterministic provider list.
	nodes := make([]transport.NodeID, 0, len(nodeMap))
	for node := range nodeMap {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	if binding == qos.BindStatic {
		// New pin: lowest node id for stability across containers.
		return nodeMap[nodes[0]].rec, nil
	}

	// Dynamic: restrict to near-least-loaded, then round-robin.
	minLoad := d.loads[nodes[0]]
	for _, node := range nodes[1:] {
		if l := d.loads[node]; l < minLoad {
			minLoad = l
		}
	}
	candidates := nodes[:0]
	for _, node := range nodes {
		if d.loads[node] <= minLoad+0.1 {
			candidates = append(candidates, node)
		}
	}
	cursor := d.rr[key]
	d.rr[key] = cursor + 1
	chosen := candidates[cursor%uint64(len(candidates))]
	return nodeMap[chosen].rec, nil
}

// ProviderCount reports the number of live providers for a name.
func (d *Directory) ProviderCount(kind Kind, name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries[dirKey{kind: kind, name: name}])
}
