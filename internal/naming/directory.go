package naming

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// Directory is the per-container proxy cache of name bindings (§3). It is
// fed by full announcements, incremental deltas and heartbeat digests, aged
// by TTL, purged on failure notifications, and queried by the primitives to
// resolve names to provider nodes.
//
// Freshness is tracked per node, not per record: every discovery message a
// node emits covers its whole offer (a digest vouches for all of it, a
// delta advances all of it), so one expiry instant per node suffices and a
// constant-size heartbeat refreshes a thousand cached records in O(1).
type Directory struct {
	ttl time.Duration

	mu       sync.Mutex
	entries  map[dirKey]map[transport.NodeID]Record
	byNode   map[transport.NodeID]map[dirKey]struct{} // per-node key index
	epochs   map[transport.NodeID]uint64
	versions map[transport.NodeID]uint64    // record-log version per node
	expiries map[transport.NodeID]time.Time // per-node freshness deadline
	loads    map[transport.NodeID]float64
	rr       map[dirKey]uint64 // round-robin cursors
}

type dirKey struct {
	kind Kind
	name string
}

// DefaultTTL is how long a cached binding survives without refresh. It must
// exceed the announce period comfortably.
const DefaultTTL = 3 * time.Second

// Errors.
var (
	// ErrNotFound reports a name with no live provider — the condition
	// §4.3 says must trigger "the programmed emergency procedure".
	ErrNotFound = errors.New("no provider for name")
	// ErrPinnedGone reports a statically pinned provider that is no
	// longer alive.
	ErrPinnedGone = errors.New("pinned provider gone")
)

// NewDirectory builds a cache with the given TTL (0 means DefaultTTL).
func NewDirectory(ttl time.Duration) *Directory {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Directory{
		ttl:      ttl,
		entries:  make(map[dirKey]map[transport.NodeID]Record),
		byNode:   make(map[transport.NodeID]map[dirKey]struct{}),
		epochs:   make(map[transport.NodeID]uint64),
		versions: make(map[transport.NodeID]uint64),
		expiries: make(map[transport.NodeID]time.Time),
		loads:    make(map[transport.NodeID]float64),
		rr:       make(map[dirKey]uint64),
	}
}

// Apply ingests a full-state announcement: it refreshes the node's records,
// removes records the node no longer offers, rejects stale epochs, and
// records the announced log version. It reports whether anything changed.
func (d *Directory) Apply(a *Announcement, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.epochs[a.Node]; ok && a.Epoch < prev {
		return false // stale incarnation
	}
	if prev, ok := d.epochs[a.Node]; ok && a.Epoch == prev {
		// Same-epoch versions are monotonic: a delayed sync snapshot or
		// re-broadcast from an older version must not roll back records
		// registered since (it would delete them until the next
		// anti-entropy round noticed).
		if ver, known := d.versions[a.Node]; known && a.Version < ver {
			return false
		}
	}
	d.epochs[a.Node] = a.Epoch
	d.versions[a.Node] = a.Version
	d.loads[a.Node] = a.Load
	d.expiries[a.Node] = now.Add(d.ttl)

	offered := make(map[dirKey]struct{}, len(a.Records))
	changed := false
	for _, rec := range a.Records {
		key := dirKey{kind: rec.Kind, name: rec.Name}
		offered[key] = struct{}{}
		nodeMap := d.entries[key]
		if nodeMap == nil {
			nodeMap = make(map[transport.NodeID]Record)
			d.entries[key] = nodeMap
		}
		prev, exists := nodeMap[a.Node]
		if !exists || prev != rec {
			changed = true
		}
		nodeMap[a.Node] = rec
	}
	// Drop records this node previously offered but no longer announces.
	// The per-node index makes this O(node's records), not O(directory).
	for key := range d.byNode[a.Node] {
		if _, still := offered[key]; still {
			continue
		}
		if nodeMap := d.entries[key]; nodeMap != nil {
			delete(nodeMap, a.Node)
			changed = true
			if len(nodeMap) == 0 {
				delete(d.entries, key)
			}
		}
	}
	d.byNode[a.Node] = offered
	return changed
}

// ApplyDelta ingests an incremental announcement. It applies cleanly only
// when the receiver's cached state for the node is exactly the delta's base
// version (or the node is brand new in this epoch and the delta starts from
// version zero). It reports whether a full anti-entropy sync is needed:
// true on a version gap, an unknown node mid-history, or a fresh epoch that
// the delta alone cannot reconstruct.
func (d *Directory) ApplyDelta(dl *Delta, now time.Time) (needSync bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	prevEpoch, epochKnown := d.epochs[dl.Node]
	if epochKnown && dl.Epoch < prevEpoch {
		return false // stale incarnation
	}
	ver, verKnown := d.versions[dl.Node]
	baseline := epochKnown && verKnown && dl.Epoch == prevEpoch
	if !baseline {
		if dl.From != 0 {
			return true // joined mid-history: need the full set
		}
		// A node's first registrations (version 0 → N) are self-contained:
		// apply them as the complete offer. A fresh epoch resets any state
		// left from the previous incarnation.
		d.purgeNodeLocked(dl.Node)
	} else {
		if dl.To <= ver {
			// Duplicate or reordered old delta; current state is newer.
			d.loads[dl.Node] = dl.Load
			d.expiries[dl.Node] = now.Add(d.ttl)
			return false
		}
		if dl.From != ver {
			// Gap: a delta in between was lost. The node is alive and
			// its cached records are mostly right, so refresh their
			// freshness — the version skew is repaired by sync, not by
			// letting the cache rot and purging a live node.
			d.expiries[dl.Node] = now.Add(d.ttl)
			return true
		}
	}
	index := d.byNode[dl.Node]
	if index == nil {
		index = make(map[dirKey]struct{}, len(dl.Added))
		d.byNode[dl.Node] = index
	}
	for _, rec := range dl.Added {
		key := dirKey{kind: rec.Kind, name: rec.Name}
		nodeMap := d.entries[key]
		if nodeMap == nil {
			nodeMap = make(map[transport.NodeID]Record)
			d.entries[key] = nodeMap
		}
		nodeMap[dl.Node] = rec
		index[key] = struct{}{}
	}
	for _, k := range dl.Withdrawn {
		key := dirKey{kind: k.Kind, name: k.Name}
		if nodeMap := d.entries[key]; nodeMap != nil {
			delete(nodeMap, dl.Node)
			if len(nodeMap) == 0 {
				delete(d.entries, key)
			}
		}
		delete(index, key)
	}
	d.epochs[dl.Node] = dl.Epoch
	d.versions[dl.Node] = dl.To
	d.loads[dl.Node] = dl.Load
	d.expiries[dl.Node] = now.Add(d.ttl)
	return false
}

// ApplyDigest ingests a constant-size heartbeat. A matching digest
// refreshes the freshness deadline of every cached record of the node in
// O(1); a mismatch — unknown node with a non-empty offer, version gap, or
// fresh epoch — reports that a full sync is needed. The load figure is
// taken either way.
func (d *Directory) ApplyDigest(g *Digest, now time.Time) (needSync bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	prevEpoch, epochKnown := d.epochs[g.Node]
	if epochKnown && g.Epoch < prevEpoch {
		return false // stale incarnation
	}
	d.loads[g.Node] = g.Load
	ver, verKnown := d.versions[g.Node]
	if epochKnown && verKnown && g.Epoch == prevEpoch && g.Version == ver {
		d.expiries[g.Node] = now.Add(d.ttl)
		return false
	}
	if g.Version == 0 {
		// The node offers nothing (and never has in this epoch): there is
		// nothing to pull. Record the baseline so its first delta applies.
		d.purgeNodeLocked(g.Node)
		d.epochs[g.Node] = g.Epoch
		d.versions[g.Node] = 0
		d.expiries[g.Node] = now.Add(d.ttl)
		return false
	}
	// Version skew with a live node: keep whatever is cached fresh while
	// the sync repairs it — purging a live node's records over a lost
	// delta would thrash the whole plane under churn.
	if verKnown {
		d.expiries[g.Node] = now.Add(d.ttl)
	}
	return true
}

// TouchNode refreshes the freshness deadline of every record cached for
// node (the effect of a matching heartbeat digest).
func (d *Directory) TouchNode(node transport.NodeID, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expiries[node] = now.Add(d.ttl)
}

// NodeVersion reports the cached (epoch, record-log version) for node.
func (d *Directory) NodeVersion(node transport.NodeID) (epoch, version uint64, known bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	version, known = d.versions[node]
	return d.epochs[node], version, known
}

// NodeRecordCount reports how many records are cached for node (used to
// cross-check digests and in convergence tests).
func (d *Directory) NodeRecordCount(node transport.NodeID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byNode[node])
}

// RemoveNode purges every binding of a failed or departed node (§3: "In
// case of service malfunctioning, it is also the container responsibility
// ... to clear and update their caches").
func (d *Directory) RemoveNode(node transport.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.loads, node)
	// Dropping the cached version forces a full sync if the node is heard
	// from again: the purged record set no longer matches any version.
	delete(d.versions, node)
	delete(d.expiries, node)
	d.purgeNodeLocked(node)
}

func (d *Directory) purgeNodeLocked(node transport.NodeID) {
	for key := range d.byNode[node] {
		if nodeMap := d.entries[key]; nodeMap != nil {
			delete(nodeMap, node)
			if len(nodeMap) == 0 {
				delete(d.entries, key)
			}
		}
	}
	delete(d.byNode, node)
}

// Expire drops every record of nodes whose freshness deadline passed,
// returning those nodes (candidates for failure handling). The purged
// version forces a full sync if an expired node is heard from again.
func (d *Directory) Expire(now time.Time) []transport.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []transport.NodeID
	for node, deadline := range d.expiries {
		if now.After(deadline) {
			delete(d.expiries, node)
			delete(d.versions, node)
			d.purgeNodeLocked(node)
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lookup returns the live providers of (kind, name), sorted by node for
// determinism.
func (d *Directory) Lookup(kind Kind, name string) []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	nodeMap := d.entries[dirKey{kind: kind, name: name}]
	out := make([]Record, 0, len(nodeMap))
	for _, rec := range nodeMap {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Names lists all known names of a kind, sorted.
func (d *Directory) Names(kind Kind) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for key, nodeMap := range d.entries {
		if key.kind == kind && len(nodeMap) > 0 {
			out = append(out, key.name)
		}
	}
	sort.Strings(out)
	return out
}

// Load returns the last announced load of a node (0 if unknown).
func (d *Directory) Load(node transport.NodeID) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.loads[node]
}

// Select picks one provider of (kind, name) according to the binding policy
// (§4.3): BindStatic keeps using pinned while alive, failing over only when
// it disappears; BindDynamic load-balances — round-robin across providers
// within ~10% load of the least loaded, so fresh load reports steer calls
// away from busy nodes without starving equal ones.
//
// It returns the chosen record; callers persist the returned node as the
// new pin for static binding.
func (d *Directory) Select(kind Kind, name string, binding qos.Binding, pinned transport.NodeID) (Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dirKey{kind: kind, name: name}
	nodeMap := d.entries[key]
	if len(nodeMap) == 0 {
		return Record{}, fmt.Errorf("naming: %v %q: %w", kind, name, ErrNotFound)
	}
	if binding == qos.BindStatic && pinned != "" {
		if rec, alive := nodeMap[pinned]; alive {
			return rec, nil
		}
		// Fall through: redundancy failover even for static binding.
	}
	// Deterministic provider list.
	nodes := make([]transport.NodeID, 0, len(nodeMap))
	for node := range nodeMap {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	if binding == qos.BindStatic {
		// New pin: lowest node id for stability across containers.
		return nodeMap[nodes[0]], nil
	}

	// Dynamic: restrict to near-least-loaded, then round-robin.
	minLoad := d.loads[nodes[0]]
	for _, node := range nodes[1:] {
		if l := d.loads[node]; l < minLoad {
			minLoad = l
		}
	}
	candidates := nodes[:0]
	for _, node := range nodes {
		if d.loads[node] <= minLoad+0.1 {
			candidates = append(candidates, node)
		}
	}
	cursor := d.rr[key]
	d.rr[key] = cursor + 1
	chosen := candidates[cursor%uint64(len(candidates))]
	return nodeMap[chosen], nil
}

// ProviderCount reports the number of live providers for a name.
func (d *Directory) ProviderCount(kind Kind, name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries[dirKey{kind: kind, name: name}])
}
