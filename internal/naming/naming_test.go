package naming

import (
	"errors"
	"testing"
	"time"

	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

func sampleAnnouncement() *Announcement {
	return &Announcement{
		Node:  "uav1",
		Epoch: 3,
		Load:  0.25,
		Records: []Record{
			{Kind: KindService, Name: "gps", Service: "gps", Node: "uav1"},
			{Kind: KindVariable, Name: "gps.position", Service: "gps", Node: "uav1", TypeSig: "{lat:f64,lon:f64}"},
			{Kind: KindFunction, Name: "camera.prepare", Service: "camera", Node: "uav1", TypeSig: "bool", ArgSig: "{name:str}"},
			{Kind: KindEvent, Name: "mission.photo", Service: "mc", Node: "uav1"},
			{Kind: KindFile, Name: "photo.1", Service: "camera", Node: "uav1"},
		},
	}
}

func TestAnnouncementRoundTrip(t *testing.T) {
	a := sampleAnnouncement()
	data, err := EncodeAnnouncement(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeAnnouncement(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Node != a.Node || got.Epoch != a.Epoch || got.Load != a.Load {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Records) != len(a.Records) {
		t.Fatalf("record count %d", len(got.Records))
	}
	for i := range a.Records {
		if got.Records[i] != a.Records[i] {
			t.Errorf("record %d: %+v vs %+v", i, got.Records[i], a.Records[i])
		}
	}
}

func TestAnnouncementEncodeErrors(t *testing.T) {
	if _, err := EncodeAnnouncement(&Announcement{}); !errors.Is(err, ErrBadAnnouncement) {
		t.Errorf("empty node: %v", err)
	}
	bad := &Announcement{Node: "n", Records: []Record{{Kind: 99, Name: "x"}}}
	if _, err := EncodeAnnouncement(bad); !errors.Is(err, ErrBadAnnouncement) {
		t.Errorf("bad kind: %v", err)
	}
	bad2 := &Announcement{Node: "n", Records: []Record{{Kind: KindService, Name: ""}}}
	if _, err := EncodeAnnouncement(bad2); !errors.Is(err, ErrBadAnnouncement) {
		t.Errorf("unnamed record: %v", err)
	}
}

func TestAnnouncementDecodeErrors(t *testing.T) {
	good, err := EncodeAnnouncement(sampleAnnouncement())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAnnouncement(nil); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := DecodeAnnouncement(good[:10]); err == nil {
		t.Error("truncated must fail")
	}
	if _, err := DecodeAnnouncement(append(good, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
	bad := append([]byte{}, good...)
	bad[0] = 9 // version
	if _, err := DecodeAnnouncement(bad); !errors.Is(err, ErrBadAnnouncement) {
		t.Errorf("bad version: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindVariable.String() != "variable" || KindFile.String() != "file" {
		t.Error("kind names wrong")
	}
	if Kind(0).Valid() || Kind(77).Valid() {
		t.Error("Valid bounds wrong")
	}
}

func TestDirectoryApplyAndLookup(t *testing.T) {
	d := NewDirectory(time.Second)
	now := time.Now()
	if changed := d.Apply(sampleAnnouncement(), now); !changed {
		t.Error("first apply must report change")
	}
	if changed := d.Apply(sampleAnnouncement(), now); changed {
		t.Error("identical re-apply must not report change")
	}
	recs := d.Lookup(KindVariable, "gps.position")
	if len(recs) != 1 || recs[0].Node != "uav1" {
		t.Fatalf("Lookup = %+v", recs)
	}
	if d.ProviderCount(KindFunction, "camera.prepare") != 1 {
		t.Error("function provider missing")
	}
	if got := d.Lookup(KindVariable, "nope"); len(got) != 0 {
		t.Error("unknown name must be empty")
	}
	if names := d.Names(KindVariable); len(names) != 1 || names[0] != "gps.position" {
		t.Errorf("Names = %v", names)
	}
	if d.Load("uav1") != 0.25 {
		t.Errorf("Load = %v", d.Load("uav1"))
	}
}

func TestDirectoryWithdrawnRecordRemoved(t *testing.T) {
	d := NewDirectory(time.Second)
	now := time.Now()
	d.Apply(sampleAnnouncement(), now)
	// Second announcement without the file resource.
	a := sampleAnnouncement()
	a.Records = a.Records[:4]
	if changed := d.Apply(a, now); !changed {
		t.Error("withdrawal must report change")
	}
	if d.ProviderCount(KindFile, "photo.1") != 0 {
		t.Error("withdrawn record still cached")
	}
}

func TestDirectoryStaleEpochRejected(t *testing.T) {
	d := NewDirectory(time.Second)
	now := time.Now()
	d.Apply(sampleAnnouncement(), now)
	old := sampleAnnouncement()
	old.Epoch = 1
	old.Records = nil
	if changed := d.Apply(old, now); changed {
		t.Error("stale epoch must be ignored")
	}
	if d.ProviderCount(KindVariable, "gps.position") != 1 {
		t.Error("stale epoch wiped records")
	}
}

func TestDirectoryRemoveNode(t *testing.T) {
	d := NewDirectory(time.Second)
	now := time.Now()
	d.Apply(sampleAnnouncement(), now)
	b := sampleAnnouncement()
	b.Node = "uav2"
	for i := range b.Records {
		b.Records[i].Node = "uav2"
	}
	d.Apply(b, now)
	if d.ProviderCount(KindVariable, "gps.position") != 2 {
		t.Fatal("expected two providers")
	}
	d.RemoveNode("uav1")
	recs := d.Lookup(KindVariable, "gps.position")
	if len(recs) != 1 || recs[0].Node != "uav2" {
		t.Errorf("after RemoveNode: %+v", recs)
	}
}

func TestDirectoryExpire(t *testing.T) {
	d := NewDirectory(50 * time.Millisecond)
	now := time.Now()
	d.Apply(sampleAnnouncement(), now)
	stale := d.Expire(now.Add(25 * time.Millisecond))
	if len(stale) != 0 {
		t.Errorf("premature expiry: %v", stale)
	}
	stale = d.Expire(now.Add(100 * time.Millisecond))
	if len(stale) != 1 || stale[0] != "uav1" {
		t.Errorf("Expire = %v", stale)
	}
	if d.ProviderCount(KindVariable, "gps.position") != 0 {
		t.Error("expired record still cached")
	}
}

func twoProviderDirectory(t *testing.T, loadA, loadB float64) *Directory {
	t.Helper()
	d := NewDirectory(time.Minute)
	now := time.Now()
	a := &Announcement{Node: "nodeA", Epoch: 1, Load: loadA, Records: []Record{
		{Kind: KindFunction, Name: "fn", Service: "s", Node: "nodeA"},
	}}
	b := &Announcement{Node: "nodeB", Epoch: 1, Load: loadB, Records: []Record{
		{Kind: KindFunction, Name: "fn", Service: "s", Node: "nodeB"},
	}}
	d.Apply(a, now)
	d.Apply(b, now)
	return d
}

func TestSelectDynamicRoundRobin(t *testing.T) {
	d := twoProviderDirectory(t, 0.1, 0.1)
	seen := map[transport.NodeID]int{}
	for i := 0; i < 10; i++ {
		rec, err := d.Select(KindFunction, "fn", qos.BindDynamic, "")
		if err != nil {
			t.Fatal(err)
		}
		seen[rec.Node]++
	}
	if seen["nodeA"] != 5 || seen["nodeB"] != 5 {
		t.Errorf("round robin skewed: %v", seen)
	}
}

func TestSelectDynamicLeastLoaded(t *testing.T) {
	d := twoProviderDirectory(t, 0.9, 0.1)
	for i := 0; i < 6; i++ {
		rec, err := d.Select(KindFunction, "fn", qos.BindDynamic, "")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Node != "nodeB" {
			t.Fatalf("call routed to loaded node on try %d", i)
		}
	}
}

func TestSelectStaticPinning(t *testing.T) {
	d := twoProviderDirectory(t, 0.5, 0.5)
	rec, err := d.Select(KindFunction, "fn", qos.BindStatic, "")
	if err != nil {
		t.Fatal(err)
	}
	pin := rec.Node
	for i := 0; i < 5; i++ {
		got, err := d.Select(KindFunction, "fn", qos.BindStatic, pin)
		if err != nil {
			t.Fatal(err)
		}
		if got.Node != pin {
			t.Fatal("static binding moved while pin alive")
		}
	}
	// Pin dies: fail over to the survivor (§4.3 redundancy).
	d.RemoveNode(pin)
	got, err := d.Select(KindFunction, "fn", qos.BindStatic, pin)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got.Node == pin {
		t.Error("selected dead pin")
	}
}

func TestSelectNotFound(t *testing.T) {
	d := NewDirectory(time.Minute)
	if _, err := d.Select(KindFunction, "ghost", qos.BindDynamic, ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestLiveness(t *testing.T) {
	l := NewLiveness(100 * time.Millisecond)
	now := time.Now()
	l.Touch("a", now)
	l.Touch("b", now)
	if !l.Alive("a", now) {
		t.Error("a must be alive")
	}
	if l.Alive("ghost", now) {
		t.Error("unknown node must not be alive")
	}
	// b keeps heartbeating; a goes silent.
	l.Touch("b", now.Add(90*time.Millisecond))
	failed := l.Sweep(now.Add(150 * time.Millisecond))
	if len(failed) != 1 || failed[0] != "a" {
		t.Errorf("Sweep = %v", failed)
	}
	// Reported once only (b is still within its deadline at +185ms).
	if again := l.Sweep(now.Add(185 * time.Millisecond)); len(again) != 0 {
		t.Errorf("second sweep = %v", again)
	}
	if peers := l.Peers(); len(peers) != 1 || peers[0] != "b" {
		t.Errorf("Peers = %v", peers)
	}
	l.Forget("b")
	if len(l.Peers()) != 0 {
		t.Error("Forget failed")
	}
}

func TestLivenessDefaultDeadline(t *testing.T) {
	l := NewLiveness(0)
	now := time.Now()
	l.Touch("x", now)
	if !l.Alive("x", now.Add(DefaultFailureDeadline)) {
		t.Error("node at exactly the deadline must still be alive")
	}
	if l.Alive("x", now.Add(DefaultFailureDeadline+time.Millisecond)) {
		t.Error("node past deadline must be dead")
	}
}
