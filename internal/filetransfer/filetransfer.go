// Package filetransfer implements the paper's §4.4 communication primitive:
// reliable distribution of long file-structured resources from one node to
// many, via a protocol "loosely based on Starburst MFTP".
//
// Three phases, which may overlap across subscribers:
//
//	announce   — the publisher multicasts resource metadata (revision,
//	             chunk geometry); interested services subscribe.
//	transfer   — the publisher multicasts numbered chunks; receivers
//	             reconstruct regardless of loss or reordering.
//	completion — the publisher queries status; receivers reply ACK (done)
//	             or a compressed NACK listing missing chunks, and the
//	             publisher re-multicasts exactly those, iterating "until
//	             the subscribers list is empty".
//
// Late subscribers join mid-transfer and collect whatever chunks remain,
// recovering the rest through the completion phase. Revisions identify
// versions; subscribers are notified when the resource changes. Transfers
// between services of the same container never touch the network — "the
// transfer is bypassed by the container as direct access to the resource".
package filetransfer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/encoding"
	"uavmw/internal/fabric"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
)

// File-transfer wire-path error codes. Chunk-round sends are repaired by
// the NACK cycle, but every failure is counted, never discarded.
var (
	codeFileAnnounce = uerr.Register("filetransfer.announce", uerr.CatSend)
	codeFileChunk    = uerr.Register("filetransfer.chunk_send", uerr.CatSend)
	codeFileQuery    = uerr.Register("filetransfer.query_send", uerr.CatSend)
	codeFileLeave    = uerr.Register("filetransfer.leave_group", uerr.CatResource)
)

// Errors.
var (
	// ErrDuplicateName reports a second offer of a resource name.
	ErrDuplicateName = errors.New("file already offered")
	// ErrNoProvider reports a fetch of a resource nobody offers.
	ErrNoProvider = errors.New("no provider for file")
	// ErrClosed reports use of a closed handle.
	ErrClosed = errors.New("file handle closed")
	// ErrEmpty reports an offer with no data.
	ErrEmpty = errors.New("empty file")
)

// Tunables (overridable per engine for tests).
const (
	// DefaultChunkSize fits a chunk frame within the datagram MTU.
	DefaultChunkSize = 1200
	// DefaultQueryWindow is how long the publisher collects completion
	// responses each round.
	DefaultQueryWindow = 40 * time.Millisecond
	// DefaultMaxStrikes drops a subscriber after this many silent rounds.
	DefaultMaxStrikes = 5
	// chunkWireOverhead estimates frame header + chunk header bytes per
	// chunk datagram, for RateBPS pacing arithmetic.
	chunkWireOverhead = 64
)

// Engine is the per-container file-transfer runtime.
type Engine struct {
	f   fabric.Fabric
	clk clock.Clock
	reg *metrics.Registry

	queryWindow time.Duration
	maxStrikes  int

	mu       sync.Mutex
	offers   map[string]*Offer
	fetches  map[string]*fetchState
	watchers map[string][]chan uint64
	joins    map[string]int // multicast group refcounts
}

// Option customizes an engine.
type Option func(*Engine)

// WithQueryWindow sets the completion-phase collection window.
func WithQueryWindow(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.queryWindow = d
		}
	}
}

// WithMaxStrikes sets the silent-round budget before a subscriber is
// dropped.
func WithMaxStrikes(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxStrikes = n
		}
	}
}

// New builds the engine for a container. The engine paces its transfer
// rounds on the fabric's clock when the fabric exposes one
// (fabric.Clocked), so virtual-time containers carry file-transfer timing
// with them.
func New(f fabric.Fabric, opts ...Option) *Engine {
	var clk clock.Clock
	if c, ok := f.(fabric.Clocked); ok {
		clk = c.Clock()
	}
	e := &Engine{
		f:           f,
		clk:         clock.Or(clk),
		reg:         fabric.MetricsOf(f),
		queryWindow: DefaultQueryWindow,
		maxStrikes:  DefaultMaxStrikes,
		offers:      make(map[string]*Offer),
		fetches:     make(map[string]*fetchState),
		watchers:    make(map[string][]chan uint64),
		joins:       make(map[string]int),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Offer publishes a resource. The initial revision is 1; Update bumps it.
func (e *Engine) Offer(name, service string, data []byte, q qos.TransferQoS) (*Offer, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("filetransfer: %q: %w", name, ErrEmpty)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q = q.Normalize()
	if q.ChunkSize <= 0 {
		q.ChunkSize = DefaultChunkSize
	}
	e.mu.Lock()
	if _, dup := e.offers[name]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("filetransfer: %q: %w", name, ErrDuplicateName)
	}
	o := &Offer{
		engine:      e,
		name:        name,
		service:     service,
		q:           q,
		subscribers: make(map[transport.NodeID]*subState),
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	o.install(1, data)
	e.offers[name] = o
	e.mu.Unlock()
	e.f.OfferChanged()
	return o, nil
}

// Offer is the publisher-side handle of one resource.
type Offer struct {
	engine  *Engine
	name    string
	service string
	q       qos.TransferQoS

	mu          sync.Mutex
	revision    uint64
	data        []byte
	chunks      [][]byte
	subscribers map[transport.NodeID]*subState
	active      bool
	closed      bool
	roundID     uint64
	rounds      uint64 // total transfer rounds run (diagnostics/E4)

	wake chan struct{}
	stop chan struct{} // closed by Close; aborts transfer-loop sleeps
}

type subState struct {
	strikes   int
	missing   map[uint32]bool // nil until first NACK
	responded bool            // in current round
}

// install splits data into chunks under the offer lock-free constructor or
// with o.mu held by Update.
func (o *Offer) install(revision uint64, data []byte) {
	cs := o.q.ChunkSize
	n := (len(data) + cs - 1) / cs
	chunks := make([][]byte, n)
	for i := 0; i < n; i++ {
		end := min((i+1)*cs, len(data))
		chunks[i] = data[i*cs : end]
	}
	o.revision = revision
	o.data = data
	o.chunks = chunks
}

// Name returns the resource name.
func (o *Offer) Name() string { return o.name }

// Revision returns the current revision.
func (o *Offer) Revision() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.revision
}

// Rounds reports completed transfer rounds (diagnostics).
func (o *Offer) Rounds() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rounds
}

// Update replaces the resource content, bumping the revision and notifying
// subscribers (§4.4 revision change notification).
func (o *Offer) Update(data []byte) (uint64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("filetransfer: %q: %w", o.name, ErrEmpty)
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return 0, fmt.Errorf("filetransfer: %q: %w", o.name, ErrClosed)
	}
	o.install(o.revision+1, data)
	rev := o.revision
	// Every subscriber restarts against the new revision.
	for _, st := range o.subscribers {
		st.missing = nil
		st.strikes = 0
	}
	o.mu.Unlock()

	o.engine.notifyWatchers(o.name, rev)
	o.announce()
	o.kick()
	return rev, nil
}

// Data returns the current content (shared; callers must not mutate) —
// the local-bypass access path.
func (o *Offer) Data() ([]byte, uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.data, o.revision
}

// Record returns the naming record for announcements.
func (o *Offer) Record() naming.Record {
	return naming.Record{
		Kind:    naming.KindFile,
		Name:    o.name,
		Service: o.service,
		Node:    o.engine.f.Self(),
	}
}

// Close withdraws the offer and stops its transfer loop. The loop's
// pacing, query-window and round-pause sleeps all abort on Close, so
// shutdown is prompt even mid-pause.
func (o *Offer) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	o.mu.Unlock()
	close(o.stop)
	o.kick()
	o.engine.mu.Lock()
	delete(o.engine.offers, o.name)
	o.engine.mu.Unlock()
	o.engine.f.OfferChanged()
}

func (o *Offer) kick() {
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// sleep pauses the transfer loop for d, returning false immediately if the
// offer closes first. Bare time.Sleep here used to pin Close behind a full
// query window or round pause.
func (o *Offer) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	return clock.SleepStop(o.engine.clk, d, o.stop)
}

// announce multicasts resource metadata (phase 1).
func (o *Offer) announce() {
	o.mu.Lock()
	payload := encodeFileMeta(o.revision, uint64(len(o.data)), uint32(o.q.ChunkSize), uint32(len(o.chunks)))
	o.mu.Unlock()
	frame := &protocol.Frame{
		Type:     protocol.MTFileAnnounce,
		Priority: o.q.Priority,
		Channel:  o.name,
		Seq:      o.engine.f.NextSeq(),
		Payload:  payload,
	}
	uerr.Note(o.engine.reg, codeFileAnnounce,
		o.engine.f.SendGroup(fabric.FileGroup(o.name), frame), "announce "+o.name)
}

// addSubscriber registers a receiver and ensures the transfer loop runs.
func (o *Offer) addSubscriber(node transport.NodeID) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	if _, known := o.subscribers[node]; !known {
		o.subscribers[node] = &subState{}
	}
	start := !o.active
	if start {
		o.active = true
	}
	o.mu.Unlock()
	if start {
		clock.Go(o.engine.clk, o.transferLoop)
	} else {
		o.kick()
	}
}

// transferLoop runs phases 2 and 3 until no subscribers remain.
func (o *Offer) transferLoop() {
	e := o.engine
	for {
		o.mu.Lock()
		if o.closed || len(o.subscribers) == 0 {
			o.active = false
			o.mu.Unlock()
			return
		}
		revision := o.revision
		chunks := o.chunks
		// Pending = union of subscriber needs; a subscriber with no
		// recorded NACK yet needs everything.
		pending := make(map[uint32]bool)
		needAll := false
		for _, st := range o.subscribers {
			if st.missing == nil {
				needAll = true
				break
			}
			for idx := range st.missing {
				pending[idx] = true
			}
		}
		if needAll {
			for i := range chunks {
				pending[uint32(i)] = true
			}
		}
		o.roundID++
		round := o.roundID
		for _, st := range o.subscribers {
			st.responded = false
		}
		o.mu.Unlock()

		// Phase 1 refresher for late joiners.
		o.announce()

		// Phase 2: multicast pending chunks in index order. With a QoS
		// rate cap the emission is paced chunk by chunk, so a
		// bandwidth-constrained link is never handed a burst the egress
		// bulk lane would have to buffer (or drop) — the per-transfer
		// half of the bulk-shaping story; the container egress plane's
		// token bucket shapes the class as a whole.
		group := fabric.FileGroup(o.name)
		total := uint32(len(chunks))
		var nextSend time.Time
		aborted := false
		for i := uint32(0); i < total; i++ {
			if !pending[i] {
				continue
			}
			if o.q.RateBPS > 0 {
				if now := e.clk.Now(); nextSend.After(now) {
					if !o.sleep(nextSend.Sub(now)) {
						aborted = true
						break
					}
				} else if nextSend.Before(now) {
					nextSend = now // credit never accumulates across idle gaps
				}
			}
			frame := &protocol.Frame{
				Type:     protocol.MTFileChunk,
				Priority: o.q.Priority,
				Channel:  o.name,
				Seq:      e.f.NextSeq(),
				Payload:  encodeChunk(revision, i, total, chunks[i]),
			}
			if o.q.RateBPS > 0 {
				wire := len(frame.Payload) + chunkWireOverhead
				nextSend = nextSend.Add(time.Duration(float64(wire) / float64(o.q.RateBPS) * float64(time.Second)))
			}
			uerr.Note(e.reg, codeFileChunk, e.f.SendGroup(group, frame), "chunk round")
		}
		if aborted {
			continue // loop head observes closed and exits
		}

		// Phase 3: query and collect. The query rides the transfer's own
		// class so it trails the round's chunks through the egress lane;
		// overtaking them would solicit NACKs for chunks still in flight.
		query := &protocol.Frame{
			Type:     protocol.MTFileQuery,
			Priority: o.q.Priority,
			Channel:  o.name,
			Seq:      round,
			Payload:  encodeFileMeta(revision, 0, uint32(o.q.ChunkSize), total),
		}
		uerr.Note(e.reg, codeFileQuery, e.f.SendGroup(group, query), "completion query")
		if !o.sleep(e.queryWindow) {
			continue
		}

		o.mu.Lock()
		o.rounds++
		for node, st := range o.subscribers {
			if st.responded {
				st.strikes = 0
				continue
			}
			st.strikes++
			if st.strikes > e.maxStrikes {
				delete(o.subscribers, node)
			}
		}
		o.mu.Unlock()

		if o.q.RoundPause > 0 && !o.sleep(o.q.RoundPause) {
			continue // closed mid-pause; loop head exits
		}
	}
}

// handleAck processes a receiver's completion.
func (o *Offer) handleAck(from transport.NodeID, revision uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if revision == o.revision {
		delete(o.subscribers, from)
	}
}

// handleNack records a receiver's missing set.
func (o *Offer) handleNack(from transport.NodeID, revision uint64, missing []uint32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if revision != o.revision {
		return // response to an old revision; receiver will restart
	}
	st := o.subscribers[from]
	if st == nil {
		// NACK from a node that never subscribed explicitly (it joined
		// the group mid-flight): adopt it.
		st = &subState{}
		o.subscribers[from] = st
	}
	st.responded = true
	st.strikes = 0
	st.missing = make(map[uint32]bool, len(missing))
	for _, idx := range missing {
		st.missing[idx] = true
	}
}

// --- wire payload codecs ---

// file metadata payload: revision u64, size u64, chunkSize u32, chunks u32.
func encodeFileMeta(revision, size uint64, chunkSize, chunks uint32) []byte {
	w := encoding.NewWriter(24)
	w.Uint64(revision)
	w.Uint64(size)
	w.Uint32(chunkSize)
	w.Uint32(chunks)
	return w.Bytes()
}

func decodeFileMeta(payload []byte) (revision, size uint64, chunkSize, chunks uint32, err error) {
	r := encoding.NewReader(payload)
	revision = r.Uint64()
	size = r.Uint64()
	chunkSize = r.Uint32()
	chunks = r.Uint32()
	return revision, size, chunkSize, chunks, r.Err()
}

// chunk payload: revision u64, index u32, total u32, raw data.
func encodeChunk(revision uint64, index, total uint32, data []byte) []byte {
	w := encoding.NewWriter(16 + len(data))
	w.Uint64(revision)
	w.Uint32(index)
	w.Uint32(total)
	w.Raw(data)
	return w.Bytes()
}

func decodeChunk(payload []byte) (revision uint64, index, total uint32, data []byte, err error) {
	r := encoding.NewReader(payload)
	revision = r.Uint64()
	index = r.Uint32()
	total = r.Uint32()
	if err := r.Err(); err != nil {
		return 0, 0, 0, nil, err
	}
	return revision, index, total, r.Raw(r.Remaining()), nil
}

// ack/nack payload: revision u64 [+ RLE ranges for nack].
func encodeAck(revision uint64) []byte {
	w := encoding.NewWriter(8)
	w.Uint64(revision)
	return w.Bytes()
}

// --- receiver side ---

type fetchState struct {
	name string

	mu       sync.Mutex
	revision uint64
	total    int
	parts    [][]byte
	received int
	provider transport.NodeID
	data     []byte
	done     chan struct{}
	refs     int
}

// FetchOptions tune a fetch.
type FetchOptions struct {
	// QoS carries the transfer priority.
	QoS qos.TransferQoS
}

// Fetch retrieves the named resource, blocking until complete or ctx ends.
// A locally offered resource is returned by direct access without touching
// the network (§4.4 bypass, experiment E5).
func (e *Engine) Fetch(ctx context.Context, name string, opts FetchOptions) ([]byte, uint64, error) {
	// Local bypass.
	e.mu.Lock()
	if o, local := e.offers[name]; local {
		e.mu.Unlock()
		data, rev := o.Data()
		//wirepath:alloc snapshot copy returned to the caller, which retains it
		out := make([]byte, len(data))
		copy(out, data)
		return out, rev, nil
	}
	st := e.fetches[name]
	if st == nil {
		st = &fetchState{name: name, done: make(chan struct{})}
		e.fetches[name] = st
	}
	st.refs++
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		st.refs--
		if st.refs == 0 {
			delete(e.fetches, name)
		}
		e.mu.Unlock()
		e.leaveGroup(name)
	}()

	if err := e.joinGroup(name); err != nil {
		return nil, 0, err
	}

	// Subscribe to the provider (phase 1). Retry resolution while the
	// directory has no provider yet.
	if err := e.subscribeToProvider(ctx, st); err != nil {
		return nil, 0, err
	}

	// Completion arrives from the network; a virtual-clock caller parks
	// through the clock so delivery time keeps advancing while it waits.
	var complete bool
	clock.Blocking(e.clk, func() {
		select {
		case <-st.done:
			complete = true
		case <-ctx.Done():
		}
	})
	if !complete {
		return nil, 0, fmt.Errorf("filetransfer: fetch %q: %w", name, ctx.Err())
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.data, st.revision, nil
}

func (e *Engine) subscribeToProvider(ctx context.Context, st *fetchState) error {
	for {
		rec, err := e.f.Directory().Select(naming.KindFile, st.name, qos.BindDynamic, "")
		if err == nil {
			st.mu.Lock()
			st.provider = rec.Node
			st.mu.Unlock()
			// Control frames ride PriorityNormal, not the bulk lane: a
			// subscription must not queue behind another transfer's
			// chunk backlog on the same egress plane.
			frame := &protocol.Frame{
				Type:     protocol.MTFileSubscribe,
				Priority: qos.PriorityNormal,
				Channel:  st.name,
				Seq:      e.f.NextSeq(),
			}
			e.f.SendReliable(rec.Node, frame, qos.ReliableARQ, nil)
			return nil
		}
		if !clock.SleepStop(e.clk, 10*time.Millisecond, ctx.Done()) {
			return fmt.Errorf("filetransfer: fetch %q: %w", st.name, ErrNoProvider)
		}
	}
}

// Watch delivers the resource now and again on every revision change, until
// ctx ends. Deliveries run on the caller's goroutine discipline: cb is
// invoked from a dedicated watch goroutine.
func (e *Engine) Watch(ctx context.Context, name string, opts FetchOptions, cb func(data []byte, revision uint64)) error {
	notify := make(chan uint64, 4)
	// Hold group membership for the whole watch so revision announces
	// keep arriving between fetches.
	if err := e.joinGroup(name); err != nil {
		return err
	}
	defer e.leaveGroup(name)
	e.mu.Lock()
	e.watchers[name] = append(e.watchers[name], notify)
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		list := e.watchers[name]
		for i, ch := range list {
			if ch == notify {
				e.watchers[name] = append(list[:i], list[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
	}()

	var have uint64
	for {
		data, rev, err := e.Fetch(ctx, name, opts)
		if err != nil {
			return err
		}
		if rev > have {
			have = rev
			cb(data, rev)
		}
		// Wait for a newer revision (parking through the clock, as above).
		var ended bool
		clock.Blocking(e.clk, func() {
			for {
				select {
				case rev := <-notify:
					if rev > have {
						return
					}
				case <-ctx.Done():
					ended = true
					return
				}
			}
		})
		if ended {
			return nil
		}
	}
}

// joinGroup reference-counts multicast membership so overlapping fetches
// and watches share one Join.
func (e *Engine) joinGroup(name string) error {
	e.mu.Lock()
	e.joins[name]++
	first := e.joins[name] == 1
	e.mu.Unlock()
	if !first {
		return nil
	}
	if err := e.f.Join(fabric.FileGroup(name)); err != nil {
		e.mu.Lock()
		e.joins[name]--
		e.mu.Unlock()
		return err
	}
	return nil
}

func (e *Engine) leaveGroup(name string) {
	e.mu.Lock()
	e.joins[name]--
	last := e.joins[name] <= 0
	if last {
		delete(e.joins, name)
	}
	e.mu.Unlock()
	if last {
		uerr.Note(e.reg, codeFileLeave, e.f.Leave(fabric.FileGroup(name)), "leave "+name)
	}
}

func (e *Engine) notifyWatchers(name string, revision uint64) {
	e.mu.Lock()
	watchers := append([]chan uint64(nil), e.watchers[name]...)
	e.mu.Unlock()
	for _, ch := range watchers {
		select {
		case ch <- revision:
		default:
		}
	}
}

// --- frame handlers (wired by the container) ---

// HandleSubscribe processes a receiver's MTFileSubscribe.
func (e *Engine) HandleSubscribe(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	o := e.offers[fr.Channel]
	e.mu.Unlock()
	if o != nil {
		o.addSubscriber(from)
	}
}

// HandleAnnounce processes resource metadata (group or unicast).
func (e *Engine) HandleAnnounce(from transport.NodeID, fr *protocol.Frame) {
	revision, _, _, chunks, err := decodeFileMeta(fr.Payload)
	if err != nil {
		return
	}
	e.notifyWatchers(fr.Channel, revision)
	e.mu.Lock()
	st := e.fetches[fr.Channel]
	e.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.adoptRevision(revision, int(chunks))
}

// adoptRevision initializes or restarts the buffer. Caller holds st.mu.
func (st *fetchState) adoptRevision(revision uint64, total int) {
	if revision < st.revision || st.data != nil {
		return // older revision, or already complete
	}
	if revision > st.revision {
		st.revision = revision
		st.parts = nil
		st.received = 0
		st.total = 0
	}
	if st.parts == nil && total > 0 {
		st.total = total
		st.parts = make([][]byte, total)
	}
}

// HandleChunk stores one multicast chunk.
func (e *Engine) HandleChunk(from transport.NodeID, fr *protocol.Frame) {
	revision, index, total, data, err := decodeChunk(fr.Payload)
	if err != nil {
		return
	}
	e.mu.Lock()
	st := e.fetches[fr.Channel]
	e.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	st.adoptRevision(revision, int(total))
	if st.data != nil || revision != st.revision || st.parts == nil ||
		int(index) >= len(st.parts) || st.parts[index] != nil {
		st.mu.Unlock()
		return
	}
	//wirepath:alloc chunk copy retained by the reassembly buffer
	cp := make([]byte, len(data))
	copy(cp, data)
	st.parts[index] = cp
	st.received++
	complete := st.received == st.total
	if complete {
		size := 0
		for _, p := range st.parts {
			size += len(p)
		}
		//wirepath:alloc reassembled file handed to the store, which retains it
		buf := make([]byte, 0, size)
		for _, p := range st.parts {
			buf = append(buf, p...)
		}
		st.data = buf
		close(st.done)
	}
	provider := st.provider
	revisionNow := st.revision
	st.mu.Unlock()

	if complete {
		// Proactive ACK: don't wait for the query round.
		e.sendAck(provider, fr.Channel, revisionNow)
	}
}

func (e *Engine) sendAck(to transport.NodeID, name string, revision uint64) {
	if to == "" {
		return
	}
	// Completion control rides PriorityNormal so it cannot starve behind
	// bulk chunk traffic flowing the other way through a shared medium.
	frame := &protocol.Frame{
		Type:     protocol.MTFileAck,
		Priority: qos.PriorityNormal,
		Channel:  name,
		Seq:      e.f.NextSeq(),
		Payload:  encodeAck(revision),
	}
	e.f.SendReliable(to, frame, qos.ReliableARQ, nil)
}

// HandleQuery answers a completion-phase query with ACK or NACK.
func (e *Engine) HandleQuery(from transport.NodeID, fr *protocol.Frame) {
	revision, _, _, chunks, err := decodeFileMeta(fr.Payload)
	if err != nil {
		return
	}
	e.mu.Lock()
	st := e.fetches[fr.Channel]
	e.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	st.adoptRevision(revision, int(chunks))
	if st.data != nil && revision == st.revision {
		st.mu.Unlock()
		e.sendAck(from, fr.Channel, revision)
		return
	}
	if revision != st.revision || st.parts == nil {
		st.mu.Unlock()
		return
	}
	var missing []uint32
	for i, p := range st.parts {
		if p == nil {
			missing = append(missing, uint32(i))
		}
	}
	st.mu.Unlock()

	w := encoding.NewWriter(16 + 8*len(missing))
	w.Uint64(revision)
	w.Raw(encodeRanges(missing))
	frame := &protocol.Frame{
		Type:     protocol.MTFileNack,
		Priority: qos.PriorityNormal,
		Channel:  fr.Channel,
		Seq:      e.f.NextSeq(),
		Payload:  w.Bytes(),
	}
	e.f.SendReliable(from, frame, qos.ReliableARQ, nil)
}

// HandleAck processes a receiver's completion at the publisher.
func (e *Engine) HandleAck(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	o := e.offers[fr.Channel]
	e.mu.Unlock()
	if o == nil {
		return
	}
	r := encoding.NewReader(fr.Payload)
	revision := r.Uint64()
	if r.Err() != nil {
		return
	}
	o.handleAck(from, revision)
}

// HandleNack processes a receiver's missing list at the publisher.
func (e *Engine) HandleNack(from transport.NodeID, fr *protocol.Frame) {
	e.mu.Lock()
	o := e.offers[fr.Channel]
	e.mu.Unlock()
	if o == nil {
		return
	}
	r := encoding.NewReader(fr.Payload)
	revision := r.Uint64()
	if r.Err() != nil {
		return
	}
	o.mu.Lock()
	total := len(o.chunks)
	o.mu.Unlock()
	missing, err := decodeRanges(r, total)
	if err != nil {
		return
	}
	o.handleNack(from, revision, missing)
}

// PeerGone drops a failed node from every offer's subscriber set.
func (e *Engine) PeerGone(node transport.NodeID) {
	e.mu.Lock()
	offers := make([]*Offer, 0, len(e.offers))
	for _, o := range e.offers {
		offers = append(offers, o)
	}
	e.mu.Unlock()
	for _, o := range offers {
		o.mu.Lock()
		delete(o.subscribers, node)
		o.mu.Unlock()
	}
}

// Records lists this node's offered resources for announcements.
func (e *Engine) Records() []naming.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]naming.Record, 0, len(e.offers))
	for _, o := range e.offers {
		out = append(out, o.Record())
	}
	return out
}
