package filetransfer

import (
	"fmt"

	"uavmw/internal/encoding"
)

// Missing-chunk lists travel in NACK frames as run-length-encoded ranges —
// the paper's "compressed list of the chunks it lacks" (§4.4). A receiver
// that lost chunks 3,4,5,9 sends {(3,3),(9,1)} instead of four numbers;
// for bursty multicast loss this is drastically smaller than a bitmap.

// chunkRange is a run of consecutive missing chunk indexes.
type chunkRange struct {
	start uint32
	count uint32
}

// encodeRanges compresses a sorted list of missing indexes.
func encodeRanges(missing []uint32) []byte {
	w := encoding.NewWriter(8 + len(missing)) // worst case alternation
	var ranges []chunkRange
	for _, idx := range missing {
		if n := len(ranges); n > 0 && ranges[n-1].start+ranges[n-1].count == idx {
			ranges[n-1].count++
			continue
		}
		ranges = append(ranges, chunkRange{start: idx, count: 1})
	}
	w.Uint32(uint32(len(ranges)))
	for _, r := range ranges {
		w.Uint32(r.start)
		w.Uint32(r.count)
	}
	return w.Bytes()
}

// decodeRanges expands an RLE list back into indexes, bounding the total
// against total chunks to defuse hostile counts.
func decodeRanges(r *encoding.Reader, totalChunks int) ([]uint32, error) {
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > totalChunks {
		return nil, fmt.Errorf("filetransfer: %d ranges for %d chunks: %w", n, totalChunks, encoding.ErrCorrupt)
	}
	var out []uint32
	for i := 0; i < n; i++ {
		start := r.Uint32()
		count := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if count == 0 || int(start)+int(count) > totalChunks {
			return nil, fmt.Errorf("filetransfer: range (%d,%d) beyond %d chunks: %w",
				start, count, totalChunks, encoding.ErrCorrupt)
		}
		if len(out)+int(count) > totalChunks {
			return nil, fmt.Errorf("filetransfer: expanded ranges exceed %d chunks: %w",
				totalChunks, encoding.ErrCorrupt)
		}
		for c := uint32(0); c < count; c++ {
			out = append(out, start+c)
		}
	}
	return out, nil
}
