package filetransfer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/encoding"
	"uavmw/internal/naming"
	"uavmw/internal/protocol"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

func qosChunk(n int) qos.TransferQoS {
	q := qos.TransferQoS{ChunkSize: n}.Normalize()
	return q
}

// fakeFabric satisfies fabric.Fabric for engine-level tests: Schedule runs
// inline, sends are recorded, reliable sends succeed immediately.
type fakeFabric struct {
	self transport.NodeID
	dir  *naming.Directory
	seq  atomic.Uint64

	// offerChanges counts OfferChanged notifications (the container would
	// broadcast a discovery delta for each).
	offerChanges atomic.Uint64

	mu       sync.Mutex
	unicast  []*protocol.Frame
	group    map[string][]*protocol.Frame
	joined   map[string]int
	reliable []*protocol.Frame
}

func newFakeFabric(self transport.NodeID) *fakeFabric {
	return &fakeFabric{
		self:   self,
		dir:    naming.NewDirectory(time.Minute),
		group:  make(map[string][]*protocol.Frame),
		joined: make(map[string]int),
	}
}

func (f *fakeFabric) Self() transport.NodeID       { return f.self }
func (f *fakeFabric) Encoding() encoding.Encoding  { return encoding.Binary{} }
func (f *fakeFabric) Directory() *naming.Directory { return f.dir }
func (f *fakeFabric) NextSeq() uint64              { return f.seq.Add(1) }
func (f *fakeFabric) OfferChanged()                { f.offerChanges.Add(1) }
func (f *fakeFabric) Schedule(_ qos.Priority, job func()) error {
	job()
	return nil
}

func (f *fakeFabric) SendBestEffort(_ transport.NodeID, fr *protocol.Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unicast = append(f.unicast, fr)
	return nil
}

func (f *fakeFabric) SendGroup(group string, fr *protocol.Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group[group] = append(f.group[group], fr)
	return nil
}

func (f *fakeFabric) SendReliable(_ transport.NodeID, fr *protocol.Frame, _ qos.Reliability, done func(error)) {
	f.mu.Lock()
	f.reliable = append(f.reliable, fr)
	f.mu.Unlock()
	if done != nil {
		done(nil)
	}
}

func (f *fakeFabric) Join(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]++
	return nil
}

func (f *fakeFabric) Leave(group string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined[group]--
	return nil
}

func (f *fakeFabric) groupFrames(group string) []*protocol.Frame {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*protocol.Frame(nil), f.group[group]...)
}

func TestOfferValidation(t *testing.T) {
	e := New(newFakeFabric("n"))
	if _, err := e.Offer("x", "svc", nil, qos.TransferQoS{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty data: %v", err)
	}
	if _, err := e.Offer("x", "svc", []byte("d"), qos.TransferQoS{ChunkSize: -1}); err == nil {
		t.Error("bad QoS accepted")
	}
	if _, err := e.Offer("x", "svc", []byte("d"), qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer("x", "svc", []byte("d"), qos.TransferQoS{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestOfferUpdateAndClose(t *testing.T) {
	e := New(newFakeFabric("n"))
	o, err := e.Offer("cfg", "svc", []byte("v1"), qos.TransferQoS{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Revision() != 1 {
		t.Errorf("initial revision %d", o.Revision())
	}
	rev, err := o.Update([]byte("v2"))
	if err != nil || rev != 2 {
		t.Errorf("Update: rev=%d err=%v", rev, err)
	}
	data, rev2 := o.Data()
	if string(data) != "v2" || rev2 != 2 {
		t.Errorf("Data = %q rev %d", data, rev2)
	}
	if _, err := o.Update(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty update: %v", err)
	}
	o.Close()
	o.Close() // idempotent
	if _, err := o.Update([]byte("v3")); !errors.Is(err, ErrClosed) {
		t.Errorf("update after close: %v", err)
	}
	// Name reusable after close.
	if _, err := e.Offer("cfg", "svc", []byte("v1"), qos.TransferQoS{}); err != nil {
		t.Errorf("reoffer after close: %v", err)
	}
}

func TestLocalBypassFetch(t *testing.T) {
	f := newFakeFabric("n")
	e := New(f)
	if _, err := e.Offer("local", "svc", []byte("content"), qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	got, rev, err := e.Fetch(context.Background(), "local", FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "content" || rev != 1 {
		t.Errorf("got %q rev %d", got, rev)
	}
	// Bypass must not touch the network at all.
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.unicast) != 0 || len(f.reliable) != 0 {
		t.Error("local fetch sent frames")
	}
	// Returned slice must be a copy.
	got[0] = 'X'
	data, _ := func() ([]byte, uint64) {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.offers["local"].Data()
	}()
	if data[0] != 'c' {
		t.Error("local fetch aliased offer data")
	}
}

func TestFetchNoProviderTimesOut(t *testing.T) {
	e := New(newFakeFabric("n"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := e.Fetch(ctx, "ghost", FetchOptions{}); !errors.Is(err, ErrNoProvider) {
		t.Errorf("want ErrNoProvider, got %v", err)
	}
}

func TestTransferLoopServesSubscriber(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(5*time.Millisecond))
	data := make([]byte, 2500)
	for i := range data {
		data[i] = byte(i)
	}
	o, err := e.Offer("file", "svc", data, qos.TransferQoS{ChunkSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// A remote node subscribes: the loop must multicast all chunks.
	e.HandleSubscribe("subscriber", &protocol.Frame{Type: protocol.MTFileSubscribe, Channel: "file"})

	deadline := time.Now().Add(2 * time.Second)
	for {
		frames := f.groupFrames("f:file")
		chunks := 0
		for _, fr := range frames {
			if fr.Type == protocol.MTFileChunk {
				chunks++
			}
		}
		if chunks >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d chunk frames multicast", chunks)
		}
		time.Sleep(time.Millisecond)
	}
	// ACK removes the subscriber and the loop idles.
	e.HandleAck("subscriber", &protocol.Frame{
		Type: protocol.MTFileAck, Channel: "file", Payload: encodeAck(1),
	})
	deadline = time.Now().Add(2 * time.Second)
	for {
		o.mu.Lock()
		n := len(o.subscribers)
		o.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber not removed after ACK")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSilentSubscriberDropped(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(2*time.Millisecond), WithMaxStrikes(2))
	if _, err := e.Offer("file", "svc", make([]byte, 100), qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("ghost", &protocol.Frame{Type: protocol.MTFileSubscribe, Channel: "file"})
	// The ghost never responds to queries; after maxStrikes rounds it is
	// dropped and the loop stops.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.mu.Lock()
		o := e.offers["file"]
		e.mu.Unlock()
		o.mu.Lock()
		n, active := len(o.subscribers), o.active
		o.mu.Unlock()
		if n == 0 && !active {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ghost subscriber never dropped (n=%d active=%v)", n, active)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNackFromUnknownSubscriberAdopted(t *testing.T) {
	// §4.4 late join: a NACK from a node that joined the multicast group
	// without an explicit subscribe still enters the subscriber set.
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(5*time.Millisecond))
	if _, err := e.Offer("file", "svc", make([]byte, 3000), qos.TransferQoS{ChunkSize: 1000}); err != nil {
		t.Fatal(err)
	}
	w := encoding.NewWriter(32)
	w.Uint64(1)
	w.Raw(encodeRanges([]uint32{0, 2}))
	e.HandleNack("late", &protocol.Frame{Type: protocol.MTFileNack, Channel: "file", Payload: w.Bytes()})

	e.mu.Lock()
	o := e.offers["file"]
	e.mu.Unlock()
	o.mu.Lock()
	st := o.subscribers["late"]
	o.mu.Unlock()
	if st == nil {
		t.Fatal("late NACKer not adopted as subscriber")
	}
	if len(st.missing) != 2 || !st.missing[0] || !st.missing[2] {
		t.Errorf("missing set = %v", st.missing)
	}
}

func TestPeerGoneDropsSubscribers(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(5*time.Millisecond))
	if _, err := e.Offer("file", "svc", make([]byte, 10), qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	e.HandleSubscribe("dying", &protocol.Frame{Type: protocol.MTFileSubscribe, Channel: "file"})
	e.PeerGone("dying")
	e.mu.Lock()
	o := e.offers["file"]
	e.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.subscribers) != 0 {
		t.Error("dead peer still subscribed")
	}
}

func TestRecordsExposeOffers(t *testing.T) {
	e := New(newFakeFabric("pub"))
	if _, err := e.Offer("a", "svc", []byte("x"), qos.TransferQoS{}); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 1 || recs[0].Kind != naming.KindFile || recs[0].Name != "a" || recs[0].Node != "pub" {
		t.Errorf("Records = %+v", recs)
	}
}

// waitInactive polls until the offer's transfer loop has exited.
func waitInactive(t *testing.T, o *Offer, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		o.mu.Lock()
		active := o.active
		o.mu.Unlock()
		if !active {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("transfer loop still running %v after Close", within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseAbortsRoundPause pins the fast-shutdown property: Close must
// not wait out a multi-second RoundPause (the loop's sleeps are abortable).
func TestCloseAbortsRoundPause(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(time.Millisecond))
	o, err := e.Offer("big", "svc", make([]byte, 4096), qos.TransferQoS{
		ChunkSize: 1024, RoundPause: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.addSubscriber("sub") // starts the loop; first round ends in the pause
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	o.Close()
	waitInactive(t, o, time.Second)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v against a 30s round pause", elapsed)
	}
}

// TestCloseAbortsQueryWindow pins the same property for the completion
// query window.
func TestCloseAbortsQueryWindow(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(30*time.Second))
	o, err := e.Offer("big", "svc", make([]byte, 4096), qos.TransferQoS{ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	o.addSubscriber("sub")
	time.Sleep(20 * time.Millisecond) // loop is now inside the query window
	start := time.Now()
	o.Close()
	waitInactive(t, o, time.Second)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v against a 30s query window", elapsed)
	}
}

// TestRateBPSPacesChunkEmission pins TransferQoS.RateBPS: chunk multicast
// is spread over ≈ wireBytes/rate rather than blasted at once.
func TestRateBPSPacesChunkEmission(t *testing.T) {
	f := newFakeFabric("pub")
	e := New(f, WithQueryWindow(time.Millisecond))
	const chunks, chunkSize = 8, 1000
	rate := int64(8 * (chunkSize + chunkWireOverhead) * 10) // whole file ≈ 100ms
	o, err := e.Offer("paced", "svc", make([]byte, chunks*chunkSize), qos.TransferQoS{
		ChunkSize: chunkSize, RateBPS: rate, RoundPause: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	start := time.Now()
	o.addSubscriber("sub")
	deadline := time.Now().Add(5 * time.Second)
	for {
		sent := 0
		for _, fr := range f.groupFrames("f:paced") {
			if fr.Type == protocol.MTFileChunk {
				sent++
			}
		}
		if sent >= chunks {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d chunks emitted", sent, chunks)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// First chunk is free; the remaining 7 are paced at ≈10 chunks/s.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("8 paced chunks emitted in %v, want ≈70ms+", elapsed)
	}
}
