package filetransfer

import (
	"math/rand"
	"sort"
	"testing"

	"uavmw/internal/encoding"
)

func roundTripRanges(t *testing.T, missing []uint32, total int) []uint32 {
	t.Helper()
	data := encodeRanges(missing)
	r := encoding.NewReader(data)
	out, err := decodeRanges(r, total)
	if err != nil {
		t.Fatalf("decodeRanges(%v): %v", missing, err)
	}
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	return out
}

func TestRLERoundTrip(t *testing.T) {
	tests := []struct {
		name    string
		missing []uint32
		total   int
	}{
		{"empty", nil, 10},
		{"single", []uint32{4}, 10},
		{"run", []uint32{3, 4, 5}, 10},
		{"two runs", []uint32{0, 1, 7, 8, 9}, 10},
		{"alternating", []uint32{0, 2, 4, 6, 8}, 10},
		{"everything", []uint32{0, 1, 2, 3}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTripRanges(t, tt.missing, tt.total)
			if len(got) != len(tt.missing) {
				t.Fatalf("got %v, want %v", got, tt.missing)
			}
			for i := range got {
				if got[i] != tt.missing[i] {
					t.Fatalf("got %v, want %v", got, tt.missing)
				}
			}
		})
	}
}

func TestRLECompression(t *testing.T) {
	// A contiguous run of 1000 missing chunks must encode tiny.
	missing := make([]uint32, 1000)
	for i := range missing {
		missing[i] = uint32(i + 10)
	}
	data := encodeRanges(missing)
	if len(data) > 16 {
		t.Errorf("run of 1000 encoded to %d bytes, want <= 16", len(data))
	}
}

func TestRLERejectsHostileInput(t *testing.T) {
	// Range beyond total.
	w := encoding.NewWriter(16)
	w.Uint32(1)
	w.Uint32(5)
	w.Uint32(10) // 5..14 but total is 8
	if _, err := decodeRanges(encoding.NewReader(w.Bytes()), 8); err == nil {
		t.Error("out-of-bounds range accepted")
	}
	// Zero count.
	w2 := encoding.NewWriter(16)
	w2.Uint32(1)
	w2.Uint32(2)
	w2.Uint32(0)
	if _, err := decodeRanges(encoding.NewReader(w2.Bytes()), 8); err == nil {
		t.Error("zero-count range accepted")
	}
	// More ranges than chunks.
	w3 := encoding.NewWriter(8)
	w3.Uint32(100)
	if _, err := decodeRanges(encoding.NewReader(w3.Bytes()), 8); err == nil {
		t.Error("oversized range count accepted")
	}
	// Truncated.
	if _, err := decodeRanges(encoding.NewReader([]byte{0, 0}), 8); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestRLEProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		total := 1 + rng.Intn(500)
		set := map[uint32]bool{}
		for i := 0; i < rng.Intn(total); i++ {
			set[uint32(rng.Intn(total))] = true
		}
		missing := make([]uint32, 0, len(set))
		for idx := range set {
			missing = append(missing, idx)
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		got := roundTripRanges(t, missing, total)
		if len(got) != len(missing) {
			t.Fatalf("trial %d: %v vs %v", trial, got, missing)
		}
		for i := range got {
			if got[i] != missing[i] {
				t.Fatalf("trial %d: %v vs %v", trial, got, missing)
			}
		}
	}
}

func TestFileMetaCodec(t *testing.T) {
	payload := encodeFileMeta(7, 123456, 1200, 103)
	rev, size, cs, chunks, err := decodeFileMeta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rev != 7 || size != 123456 || cs != 1200 || chunks != 103 {
		t.Errorf("got rev=%d size=%d cs=%d chunks=%d", rev, size, cs, chunks)
	}
	if _, _, _, _, err := decodeFileMeta(payload[:5]); err == nil {
		t.Error("truncated meta accepted")
	}
}

func TestChunkCodec(t *testing.T) {
	body := []byte{9, 8, 7, 6}
	payload := encodeChunk(3, 14, 100, body)
	rev, index, total, data, err := decodeChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rev != 3 || index != 14 || total != 100 {
		t.Errorf("header rev=%d index=%d total=%d", rev, index, total)
	}
	if string(data) != string(body) {
		t.Errorf("body %v", data)
	}
	if _, _, _, _, err := decodeChunk(payload[:3]); err == nil {
		t.Error("truncated chunk accepted")
	}
}

func TestOfferChunking(t *testing.T) {
	o := &Offer{q: qosChunk(100)}
	data := make([]byte, 250)
	o.install(1, data)
	if len(o.chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(o.chunks))
	}
	if len(o.chunks[0]) != 100 || len(o.chunks[2]) != 50 {
		t.Errorf("chunk sizes %d,%d,%d", len(o.chunks[0]), len(o.chunks[1]), len(o.chunks[2]))
	}
	// Exact multiple.
	o.install(2, make([]byte, 200))
	if len(o.chunks) != 2 || len(o.chunks[1]) != 100 {
		t.Errorf("exact multiple chunks wrong: %d", len(o.chunks))
	}
	if o.revision != 2 {
		t.Errorf("revision = %d", o.revision)
	}
}
