// Package bufpool provides size-classed reusable byte buffers for the wire
// path. Every hot-path encode (frame headers, batch datagrams, transport
// envelopes, receive rings) draws its scratch storage from here instead of
// allocating, so steady-state traffic produces no per-frame garbage.
//
// Ownership contract: a buffer obtained from Get is owned by the caller
// until it is passed to Put, after which it must not be touched — the same
// storage will back an unrelated frame. Code that must retain bytes beyond
// its ownership window (ARQ pending frames, reassembly state, application
// handlers) takes a GC-owned Copy instead; copies are never returned to the
// pool. Releasing a buffer twice, or releasing a buffer while any alias of
// it is still live, corrupts frames in flight — when ownership is unclear,
// leak the buffer to the GC (correct, merely slower) rather than Put it.
//
// The freelists are bounded channels, not sync.Pools: a channel hand-off
// recycles the slice header in place, so neither Get nor Put allocates (a
// sync.Pool Put of a []byte escapes a fresh header to the heap on every
// release, which would put one allocation back on a path this package
// exists to clear). The cost is that idle buffers are not reclaimed under
// memory pressure; the per-class depths below bound that retention to a few
// megabytes.
package bufpool

// classSizes are the pooled capacity classes, chosen around the wire path's
// natural sizes: small control frames, coalesced batches under the default
// 1400-byte MTU, mid-size chunk payloads, and full 64KB datagrams.
var classSizes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

// classDepths bound how many idle buffers each class retains; overflow on
// release is dropped to the GC. Depths shrink as sizes grow so worst-case
// idle retention stays around 4MB.
var classDepths = [...]int{512, 256, 128, 64, 32}

var classes [len(classSizes)]chan []byte

func init() {
	for i := range classes {
		classes[i] = make(chan []byte, classDepths[i])
	}
}

// Get returns a zero-length buffer with capacity at least n. The caller
// owns it until Put (or forever, if it is handed to the GC). Requests
// beyond the largest class are served by a plain allocation and will be
// dropped on Put.
func Get(n int) []byte {
	for i, size := range classSizes {
		if n > size {
			continue
		}
		select {
		case b := <-classes[i]:
			return b[:0]
		default:
			return make([]byte, 0, size)
		}
	}
	return make([]byte, 0, n)
}

// Put recycles a buffer obtained from Get (possibly grown by appends). The
// buffer lands in the largest class its capacity covers, so a grown buffer
// still honors Get's capacity guarantee; buffers smaller than every class,
// or arriving when the class is full, fall to the GC. Put accepts any
// buffer — recycling a caller-allocated slice is safe as long as no alias
// outlives the call.
func Put(b []byte) {
	c := cap(b)
	for i := len(classSizes) - 1; i >= 0; i-- {
		if c < classSizes[i] {
			continue
		}
		select {
		case classes[i] <- b[:0]:
		default: // class full: let the GC take it
		}
		return
	}
}

// Copy returns a GC-owned copy of b. This is the blessed primitive for
// retaining wire bytes beyond a handler or ownership window: the copy is
// never pooled, so it can be held indefinitely and aliased freely.
func Copy(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
