package bufpool

import "sync/atomic"

// Shared is a reference-counted handle on a pooled buffer, the primitive
// behind encode-once fan-out-many: one writer encodes into a Get buffer,
// wraps it in a Shared, and hands a Retain()ed reference to every consumer;
// the last Release returns the storage to the pool. Neither Share, Retain
// nor Release allocates in steady state — the handle structs ride their own
// bounded freelist, exactly like the buffers they wrap.
//
// Ownership contract: Retain is only legal while the caller already holds a
// live reference (the count can never be observed at zero and revived), and
// the wrapped bytes are immutable from Share until the final Release.
// Releasing more times than retained corrupts an unrelated frame later;
// the count going negative panics to surface that bug at the offender.
type Shared struct {
	b    []byte
	refs atomic.Int32
}

// sharedDepth bounds idle Shared headers kept for reuse; overflow falls to
// the GC like any other pool class.
const sharedDepth = 1024

var sharedFree = make(chan *Shared, sharedDepth)

// Share wraps buf (typically obtained from Get) with a reference count of
// one. The final Release passes buf to Put; callers that want the storage
// to outlive the pool must Copy before the last Release.
func Share(buf []byte) *Shared {
	var s *Shared
	select {
	case s = <-sharedFree:
	default:
		s = &Shared{}
	}
	s.b = buf
	s.refs.Store(1)
	return s
}

// Bytes returns the wrapped buffer. Valid only while the caller holds a
// reference; the bytes are immutable until the final Release.
func (s *Shared) Bytes() []byte { return s.b }

// Len reports the wrapped buffer's length.
func (s *Shared) Len() int { return len(s.b) }

// Retain adds a reference and returns s for call-site chaining
// (enqueue(s.Retain())). Caller must already hold a live reference.
func (s *Shared) Retain() *Shared {
	s.refs.Add(1)
	return s
}

// Release drops one reference. The last release recycles both the buffer
// (to the byte pool) and the handle (to the header freelist).
func (s *Shared) Release() {
	n := s.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("bufpool: Shared released more times than retained")
	}
	b := s.b
	s.b = nil
	Put(b)
	select {
	case sharedFree <- s:
	default: // freelist full: the GC takes the header
	}
}

// Refs reports the current reference count (diagnostics and tests).
func (s *Shared) Refs() int32 { return s.refs.Load() }
