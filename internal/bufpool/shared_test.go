package bufpool

import (
	"testing"
)

func TestSharedLastReleaseRecyclesBuffer(t *testing.T) {
	buf := Get(64)
	buf = append(buf, "payload"...)
	s := Share(buf)
	if s.Refs() != 1 {
		t.Fatalf("fresh Shared refs = %d, want 1", s.Refs())
	}
	if string(s.Bytes()) != "payload" {
		t.Fatalf("Bytes = %q", s.Bytes())
	}

	r := s.Retain()
	if r != s {
		t.Fatal("Retain must return the same handle")
	}
	if s.Refs() != 2 {
		t.Fatalf("refs after Retain = %d, want 2", s.Refs())
	}
	s.Release()
	if s.Refs() != 1 {
		t.Fatalf("refs after first Release = %d, want 1", s.Refs())
	}
	if string(s.Bytes()) != "payload" {
		t.Fatal("buffer reclaimed while a reference was live")
	}
	s.Release() // final: buffer back to the pool, handle to the freelist
}

func TestSharedOverReleasePanics(t *testing.T) {
	s := Share(Get(16))
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Release()
}

// TestSharedCycleAllocationFree pins the fan-out hot path contract: a
// Share/Retain/Release cycle reuses pooled headers and buffers, so the
// encode-once fan-out adds zero allocations per sample once warm.
func TestSharedCycleAllocationFree(t *testing.T) {
	op := func() {
		s := Share(Get(256))
		for i := 0; i < 8; i++ {
			s.Retain()
		}
		for i := 0; i < 8; i++ {
			s.Release()
		}
		s.Release()
	}
	for i := 0; i < 4; i++ {
		op() // warm the freelists
	}
	if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
		t.Fatalf("Share/Retain/Release cycle allocates %.1f/op, want 0", allocs)
	}
}
