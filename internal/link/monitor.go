// Package link implements per-bearer link quality monitoring for nodes
// that transmit over several dissimilar datalinks at once (WiFi, radio
// modem, satcom). The paper's container owns all network access on a node
// (§3); when that access spans redundant bearers, the container needs to
// know — per bearer — whether the link is alive, how far away the peer is
// (RTT), and how lossy the path has been, so the link policy (qos.LinkPolicy)
// can route each traffic class onto the right datalink and fail classes
// over when their bearer blacks out.
//
// A Monitor observes one bearer passively: every received packet refreshes
// the bearer's last-heard instant and the sending peer's per-bearer
// presence. Passive observation is free because discovery digests ride
// every bearer each announce period — a healthy bearer is never silent for
// long. When a bearer *is* silent past its probe threshold, the container
// sends a lightweight MTProbe (a u64 nonce) to known peers and the echo
// closes the loop: liveness proof, an RTT sample, and — because probes keep
// flowing on a dead bearer — automatic detection of the link coming back.
package link

import (
	"sync"
	"time"

	"uavmw/internal/clock"
	"uavmw/internal/transport"
)

// maxOutstandingProbes bounds the nonce table so an unanswered bearer
// cannot grow it without limit; the oldest nonce is evicted (and counted
// lost) when a new probe would exceed it. Sized for one probe per peer on
// a large fleet's sweep — a cap near the fleet size would evict a sweep's
// own just-sent nonces before their echoes could return, reporting
// phantom loss on a healthy link.
const maxOutstandingProbes = 1024

// probeExpiry is how long an unanswered nonce stays matchable. Probes
// older than this are retired (counted lost) on the next NextProbe, so a
// long-dead bearer's table stays small without evicting fresh nonces.
const probeExpiry = 10 * time.Second

// rttAlpha is the EWMA weight of each new RTT sample.
const rttAlpha = 0.25

// Monitor tracks one bearer's health. All methods are safe for concurrent
// use; observation instants flow in via arguments, and callers take them
// from the same injected clock the monitor was built against — one time
// source for birth, probe cadence and health windows, wall or virtual.
type Monitor struct {
	name     string
	deadline time.Duration
	clk      clock.Clock

	mu        sync.Mutex
	birth     time.Time
	lastRx    time.Time
	peers     map[transport.NodeID]time.Time // last heard per peer on this bearer
	probes    map[uint64]time.Time           // outstanding probe nonces
	probeSeq  []uint64                       // nonce FIFO for eviction
	nonce     uint64
	rtt       time.Duration // EWMA; zero until the first echo
	sent      uint64
	echoed    uint64
	evicted   uint64 // probes dropped from the outstanding table unanswered
	lastProbe time.Time
}

// NewMonitor builds a monitor for the named bearer against the given
// clock (nil means the wall clock); birth is the clock's current instant.
// deadline is how long the bearer may stay silent before it is reported
// unhealthy — the same failure-deadline vocabulary the container uses for
// peer liveness, applied per link.
func NewMonitor(name string, deadline time.Duration, clk clock.Clock) *Monitor {
	clk = clock.Or(clk)
	return &Monitor{
		name:     name,
		deadline: deadline,
		clk:      clk,
		birth:    clk.Now(),
		peers:    make(map[transport.NodeID]time.Time),
		probes:   make(map[uint64]time.Time),
	}
}

// Clock is the time source the monitor was built against; the container
// takes its observation instants from it.
func (m *Monitor) Clock() clock.Clock { return m.clk }

// Name returns the bearer name.
func (m *Monitor) Name() string { return m.name }

// SawRx records one received packet from a peer on this bearer.
func (m *Monitor) SawRx(from transport.NodeID, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now.After(m.lastRx) {
		m.lastRx = now
	}
	if from != "" {
		if at, ok := m.peers[from]; !ok || now.After(at) {
			m.peers[from] = now
		}
	}
}

// Healthy reports whether the bearer has been heard from within the
// failure deadline. A fresh bearer is optimistically healthy until one full
// deadline elapses with no traffic at all, so startup does not begin in
// failover.
func (m *Monitor) Healthy(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref := m.lastRx
	if m.birth.After(ref) {
		ref = m.birth
	}
	return now.Sub(ref) <= m.deadline
}

// LastRx returns the bearer's last-heard instant (zero if never).
func (m *Monitor) LastRx() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastRx
}

// Idle reports whether nothing has been heard on the bearer for at least d
// (measured from the later of last receive and monitor birth). The
// container probes idle bearers.
func (m *Monitor) Idle(now time.Time, d time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref := m.lastRx
	if m.birth.After(ref) {
		ref = m.birth
	}
	return now.Sub(ref) >= d
}

// PeerHeard reports whether the peer has been heard on this bearer within
// the failure deadline.
func (m *Monitor) PeerHeard(peer transport.NodeID, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	at, ok := m.peers[peer]
	return ok && now.Sub(at) <= m.deadline
}

// PeerKnown reports whether the peer has ever been heard on this bearer.
func (m *Monitor) PeerKnown(peer transport.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.peers[peer]
	return ok
}

// ForgetPeer drops a departed peer's per-bearer presence.
func (m *Monitor) ForgetPeer(peer transport.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.peers, peer)
}

// NextProbe allocates a probe nonce and records it outstanding. The caller
// puts the nonce on the wire as an MTProbe payload.
func (m *Monitor) NextProbe(now time.Time) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Retire expired nonces first (answered ones are already gone from
	// the map; their seq entries just fall off here).
	for len(m.probeSeq) > 0 {
		oldest := m.probeSeq[0]
		at, outstanding := m.probes[oldest]
		if outstanding && now.Sub(at) < probeExpiry {
			break
		}
		m.probeSeq = m.probeSeq[1:]
		if outstanding {
			delete(m.probes, oldest)
			m.evicted++
		}
	}
	m.nonce++
	n := m.nonce
	if len(m.probeSeq) >= maxOutstandingProbes {
		oldest := m.probeSeq[0]
		m.probeSeq = m.probeSeq[1:]
		if _, ok := m.probes[oldest]; ok {
			delete(m.probes, oldest)
			m.evicted++
		}
	}
	m.probes[n] = now
	m.probeSeq = append(m.probeSeq, n)
	m.sent++
	m.lastProbe = now
	return n
}

// LastProbe returns when the most recent probe was sent (zero if never).
func (m *Monitor) LastProbe() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastProbe
}

// ProbeEchoed matches an echoed nonce to its outstanding probe, folds the
// round trip into the RTT estimate, and reports the sample. Unknown (or
// already-answered) nonces return ok=false.
func (m *Monitor) ProbeEchoed(nonce uint64, now time.Time) (rtt time.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	at, found := m.probes[nonce]
	if !found {
		return 0, false
	}
	delete(m.probes, nonce)
	m.echoed++
	rtt = now.Sub(at)
	if rtt < 0 {
		rtt = 0
	}
	if m.rtt == 0 {
		m.rtt = rtt
	} else {
		m.rtt = time.Duration((1-rttAlpha)*float64(m.rtt) + rttAlpha*float64(rtt))
	}
	return rtt, true
}

// Report is a snapshot of one bearer's observed quality.
type Report struct {
	// Name is the bearer name.
	Name string
	// Healthy mirrors Monitor.Healthy at snapshot time.
	Healthy bool
	// LastRx is the bearer's last-heard instant (zero if never heard).
	LastRx time.Time
	// RTT is the probe-derived round-trip EWMA (zero until the first echo).
	RTT time.Duration
	// ProbesSent / ProbesEchoed count probe activity; their gap, plus
	// ProbesEvicted, is the probe loss so far.
	ProbesSent, ProbesEchoed uint64
	// ProbesEvicted counts probes evicted from the outstanding table
	// unanswered.
	ProbesEvicted uint64
	// ProbeLoss is the fraction of concluded probes (echoed or evicted,
	// plus those still outstanding past eviction pressure) that never
	// echoed, in [0,1]. Zero when no probes were sent.
	ProbeLoss float64
	// PeersHeard counts peers ever heard on this bearer.
	PeersHeard int
}

// Report snapshots the monitor.
func (m *Monitor) Report(now time.Time) Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref := m.lastRx
	if m.birth.After(ref) {
		ref = m.birth
	}
	r := Report{
		Name:          m.name,
		Healthy:       now.Sub(ref) <= m.deadline,
		LastRx:        m.lastRx,
		RTT:           m.rtt,
		ProbesSent:    m.sent,
		ProbesEchoed:  m.echoed,
		ProbesEvicted: m.evicted,
		PeersHeard:    len(m.peers),
	}
	if m.sent > 0 {
		r.ProbeLoss = float64(m.sent-m.echoed) / float64(m.sent)
	}
	return r
}
