package link

import (
	"testing"
	"time"

	"uavmw/internal/clock"
)

var t0 = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

// newTestMonitor builds a monitor born at t0 on a virtual clock; the
// tests then probe its windows with explicit instants.
func newTestMonitor(name string, deadline time.Duration) *Monitor {
	return NewMonitor(name, deadline, clock.NewVirtualAt(t0))
}

func TestHealthyOptimisticAtBirthThenDecays(t *testing.T) {
	m := newTestMonitor("wifi", time.Second)
	if !m.Healthy(t0) {
		t.Error("fresh monitor should be healthy")
	}
	if !m.Healthy(t0.Add(time.Second)) {
		t.Error("should stay healthy up to the deadline")
	}
	if m.Healthy(t0.Add(time.Second + time.Millisecond)) {
		t.Error("silent past the deadline should be unhealthy")
	}
}

func TestRxRefreshesHealthAndPeerPresence(t *testing.T) {
	m := newTestMonitor("wifi", time.Second)
	at := t0.Add(5 * time.Second)
	m.SawRx("gs", at)
	if !m.Healthy(at.Add(time.Second)) {
		t.Error("heard bearer should be healthy within deadline of rx")
	}
	if m.Healthy(at.Add(2 * time.Second)) {
		t.Error("bearer silent past deadline should go unhealthy again")
	}
	if !m.PeerHeard("gs", at.Add(500*time.Millisecond)) {
		t.Error("peer heard recently should report heard")
	}
	if m.PeerHeard("gs", at.Add(2*time.Second)) {
		t.Error("peer silence past deadline should report not heard")
	}
	if !m.PeerKnown("gs") || m.PeerKnown("other") {
		t.Error("PeerKnown should track ever-heard peers only")
	}
	m.ForgetPeer("gs")
	if m.PeerKnown("gs") {
		t.Error("forgotten peer should not be known")
	}
}

func TestProbeRoundTripFeedsRTT(t *testing.T) {
	m := newTestMonitor("radio", time.Second)
	n1 := m.NextProbe(t0)
	rtt, ok := m.ProbeEchoed(n1, t0.Add(80*time.Millisecond))
	if !ok || rtt != 80*time.Millisecond {
		t.Fatalf("first echo: rtt=%v ok=%v", rtt, ok)
	}
	if got := m.Report(t0).RTT; got != 80*time.Millisecond {
		t.Errorf("first sample should seed the EWMA, got %v", got)
	}
	n2 := m.NextProbe(t0.Add(time.Second))
	if _, ok := m.ProbeEchoed(n2, t0.Add(time.Second+160*time.Millisecond)); !ok {
		t.Fatal("second echo not matched")
	}
	got := m.Report(t0).RTT
	if got <= 80*time.Millisecond || got >= 160*time.Millisecond {
		t.Errorf("EWMA should land between samples, got %v", got)
	}
	// Duplicate and unknown nonces are rejected.
	if _, ok := m.ProbeEchoed(n2, t0); ok {
		t.Error("duplicate echo accepted")
	}
	if _, ok := m.ProbeEchoed(9999, t0); ok {
		t.Error("unknown nonce accepted")
	}
}

func TestProbeLossAccounting(t *testing.T) {
	m := newTestMonitor("radio", time.Second)
	n1 := m.NextProbe(t0)
	m.NextProbe(t0) // never echoed
	if _, ok := m.ProbeEchoed(n1, t0.Add(time.Millisecond)); !ok {
		t.Fatal("echo not matched")
	}
	r := m.Report(t0)
	if r.ProbesSent != 2 || r.ProbesEchoed != 1 {
		t.Fatalf("sent/echoed = %d/%d, want 2/1", r.ProbesSent, r.ProbesEchoed)
	}
	if r.ProbeLoss != 0.5 {
		t.Errorf("loss = %v, want 0.5", r.ProbeLoss)
	}
}

func TestProbeTableBounded(t *testing.T) {
	m := newTestMonitor("radio", time.Second)
	var first uint64
	for i := 0; i < maxOutstandingProbes+10; i++ {
		n := m.NextProbe(t0)
		if i == 0 {
			first = n
		}
	}
	if _, ok := m.ProbeEchoed(first, t0); ok {
		t.Error("evicted nonce should no longer match")
	}
	r := m.Report(t0)
	if r.ProbesEvicted != 10 {
		t.Errorf("evicted = %d, want 10", r.ProbesEvicted)
	}
}

func TestIdle(t *testing.T) {
	m := newTestMonitor("wifi", time.Second)
	if m.Idle(t0.Add(99*time.Millisecond), 100*time.Millisecond) {
		t.Error("not yet idle")
	}
	if !m.Idle(t0.Add(100*time.Millisecond), 100*time.Millisecond) {
		t.Error("should be idle after threshold from birth")
	}
	m.SawRx("gs", t0.Add(time.Second))
	if m.Idle(t0.Add(time.Second+50*time.Millisecond), 100*time.Millisecond) {
		t.Error("rx should reset idleness")
	}
}

func TestProbeExpiryRetiresStaleNonces(t *testing.T) {
	m := newTestMonitor("radio", time.Second)
	stale := m.NextProbe(t0)
	fresh := m.NextProbe(t0.Add(probeExpiry + time.Second))
	if _, ok := m.ProbeEchoed(stale, t0.Add(probeExpiry+2*time.Second)); ok {
		t.Error("expired nonce should no longer match")
	}
	if _, ok := m.ProbeEchoed(fresh, t0.Add(probeExpiry+2*time.Second)); !ok {
		t.Error("fresh nonce must still match")
	}
	if r := m.Report(t0); r.ProbesEvicted != 1 {
		t.Errorf("evicted = %d, want 1", r.ProbesEvicted)
	}
}
