package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram must be all zeros")
	}
	durations := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if mean := h.Mean(); mean != 22*time.Millisecond {
		t.Errorf("Mean = %v, want 22ms", mean)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations at 1ms, 1 at 1s: p50 must be near 1ms, p100 = 1s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	p50 := h.Percentile(50)
	if p50 > 4*time.Millisecond {
		t.Errorf("p50 = %v, want ~1-2ms", p50)
	}
	if h.Percentile(100) != time.Second {
		t.Errorf("p100 = %v, want 1s", h.Percentile(100))
	}
	if h.Percentile(0) != time.Millisecond {
		t.Errorf("p0 = %v, want min", h.Percentile(0))
	}
	// Percentile upper bound never exceeds observed max.
	var h2 Histogram
	h2.Observe(3 * time.Millisecond)
	if h2.Percentile(99) > 3*time.Millisecond {
		t.Errorf("p99 %v exceeds max", h2.Percentile(99))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 || h.Min() != 0 {
		t.Error("negative duration must clamp to 0")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Summary()
	for _, want := range []string{"n=1", "mean=", "p50=", "p99="} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestBucketMapping(t *testing.T) {
	// Monotone: larger durations never map to smaller buckets.
	prev := 0
	for d := time.Microsecond; d < 20*time.Second; d *= 2 {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor(%v) = %d < previous %d", d, b, prev)
		}
		prev = b
	}
	if bucketFor(0) != 0 {
		t.Error("zero maps to bucket 0")
	}
	if bucketFor(time.Hour) != hbuckets-1 {
		t.Error("huge duration maps to last bucket")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	if r.Counter("a").Value() != 1 {
		t.Error("counter identity not stable")
	}
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(time.Millisecond)
	dump := r.Dump()
	for _, want := range []string{"counter a = 1", "gauge g = 5", "histogram h:"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryZeroValue(t *testing.T) {
	var r Registry
	r.Counter("x").Add(2)
	if r.Counter("x").Value() != 2 {
		t.Error("zero-value registry unusable")
	}
}
