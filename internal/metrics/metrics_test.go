package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram must be all zeros")
	}
	durations := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if mean := h.Mean(); mean != 22*time.Millisecond {
		t.Errorf("Mean = %v, want 22ms", mean)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations at 1ms, 1 at 1s: p50 must be near 1ms, p100 = 1s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	p50 := h.Percentile(50)
	if p50 > 4*time.Millisecond {
		t.Errorf("p50 = %v, want ~1-2ms", p50)
	}
	if h.Percentile(100) != time.Second {
		t.Errorf("p100 = %v, want 1s", h.Percentile(100))
	}
	if h.Percentile(0) != time.Millisecond {
		t.Errorf("p0 = %v, want min", h.Percentile(0))
	}
	// Percentile upper bound never exceeds observed max.
	var h2 Histogram
	h2.Observe(3 * time.Millisecond)
	if h2.Percentile(99) > 3*time.Millisecond {
		t.Errorf("p99 %v exceeds max", h2.Percentile(99))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 || h.Min() != 0 {
		t.Error("negative duration must clamp to 0")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Summary()
	for _, want := range []string{"n=1", "mean=", "p50=", "p99="} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestBucketMapping(t *testing.T) {
	// Monotone: larger durations never map to smaller buckets.
	prev := 0
	for d := time.Microsecond; d < 20*time.Second; d *= 2 {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor(%v) = %d < previous %d", d, b, prev)
		}
		prev = b
	}
	if bucketFor(0) != 0 {
		t.Error("zero maps to bucket 0")
	}
	if bucketFor(time.Hour) != hbuckets-1 {
		t.Error("huge duration maps to last bucket")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("core", "frames").Inc()
	if r.Counter("core", "frames").Value() != 1 {
		t.Error("counter identity not stable")
	}
	r.Gauge("core", "backlog").Set(5)
	r.Histogram("rpc", "latency").Observe(time.Millisecond)
	dump := r.Dump()
	for _, want := range []string{"counter core.frames 1", "gauge core.backlog 5", "histogram rpc.latency count=1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryZeroValue(t *testing.T) {
	var r Registry
	r.Counter("core", "x").Add(2)
	if r.Counter("core", "x").Value() != 2 {
		t.Error("zero-value registry unusable")
	}
}

func TestRegistryLabelIdentity(t *testing.T) {
	r := NewRegistry()
	// Label order must not matter: both resolve the same series.
	a := r.Counter("egress", "sent", L("bearer", "wifi"), L("class", "bulk"))
	b := r.Counter("egress", "sent", L("class", "bulk"), L("bearer", "wifi"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	if got := r.Counter("egress", "sent", L("bearer", "wifi"), L("class", "bulk")).Value(); got != 1 {
		t.Errorf("labeled counter = %d, want 1", got)
	}
	// Different label values are different series.
	c := r.Counter("egress", "sent", L("bearer", "radio"), L("class", "bulk"))
	if c == a || c.Value() != 0 {
		t.Error("distinct labels must resolve distinct series")
	}
}

func TestRegistrySumCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("discovery", "errors", L("category", "encode"), L("code", "beacon")).Add(3)
	r.Counter("discovery", "errors", L("category", "encode"), L("code", "delta")).Add(2)
	r.Counter("discovery", "errors", L("category", "send"), L("code", "beacon")).Add(7)
	if got := r.SumCounters("discovery", "errors", L("category", "encode")); got != 5 {
		t.Errorf("sum(category=encode) = %d, want 5", got)
	}
	if got := r.SumCounters("discovery", "errors"); got != 12 {
		t.Errorf("sum(all) = %d, want 12", got)
	}
	if got := r.SumCounters("discovery", "nope"); got != 0 {
		t.Errorf("missing family sum = %d, want 0", got)
	}
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, bad := range []struct{ component, name string }{
		{"Core", "x"}, {"core", "Frames"}, {"", "x"}, {"core", ""},
		{"co-re", "x"}, {"core", "a.b"}, {"1core", "x"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q, %q) did not panic", bad.component, bad.name)
				}
			}()
			NewRegistry().Counter(bad.component, bad.name)
		}()
	}
}

// TestRegistryConcurrent drives parallel plane-style updates (resolution
// races included) and snapshots concurrently; run under -race it pins the
// registry's concurrency story.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	bearers := []string{"wifi", "radio", "satcom", "lte"}
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("egress", "sent", L("bearer", bearers[i%len(bearers)]))
			h := r.Histogram("rpc", "latency")
			for j := 0; j < 1000; j++ {
				c.Inc()
				r.Gauge("link", "healthy", L("bearer", bearers[j%len(bearers)])).Set(int64(j & 1))
				if j%100 == 0 {
					h.Observe(time.Duration(j) * time.Microsecond)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Snapshot().Text()
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, b := range bearers {
		total += r.Counter("egress", "sent", L("bearer", b)).Value()
	}
	if total != 8000 {
		t.Errorf("total sent = %d, want 8000", total)
	}
}

// TestSnapshotDeterministic pins the export contract the virtual-time
// determinism tests rely on: identical registry state renders identical
// bytes, whatever order series were created or updated in.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := NewRegistry()
		labels := [][]Label{
			{L("bearer", "wifi"), L("class", "bulk")},
			{L("class", "critical"), L("bearer", "radio")},
			{L("bearer", "radio"), L("class", "bulk")},
		}
		if reverse {
			for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
				labels[i], labels[j] = labels[j], labels[i]
			}
		}
		for i, ls := range labels {
			r.Counter("egress", "sent", ls...).Add(uint64(7 * (i + 1)))
		}
		r.Gauge("link", "rtt_us", L("bearer", "wifi")).Set(1234)
		r.Histogram("rpc", "latency").Observe(3 * time.Millisecond)
		r.Histogram("rpc", "latency").Observe(90 * time.Millisecond)
		return r
	}
	// Counters were added per-labelset in both orders, so totals per series
	// differ; rebuild identically instead: same calls, different creation
	// order only.
	a := build(false)
	b := build(false)
	c := build(true)
	ta, tb := a.Snapshot().Text(), b.Snapshot().Text()
	if ta != tb {
		t.Fatalf("same state, different text:\n%s\n---\n%s", ta, tb)
	}
	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("same state, different JSON")
	}
	// Creation order must not leak into family/series ordering.
	if got := strings.Join(c.Snapshot().FamilyList(), "\n"); got != strings.Join(a.Snapshot().FamilyList(), "\n") {
		t.Fatalf("creation order changed family list:\n%s", got)
	}
}

func TestSnapshotFamilyList(t *testing.T) {
	r := NewRegistry()
	r.Counter("discovery", "heartbeats_sent").Inc()
	r.Counter("discovery", "errors", L("category", "send"), L("code", "beacon_send")).Inc()
	r.Gauge("link", "healthy", L("bearer", "wifi")).Set(1)
	list := r.Snapshot().FamilyList()
	want := []string{
		"counter discovery.errors",
		"counter discovery.heartbeats_sent",
		"gauge link.healthy",
	}
	if len(list) != len(want) {
		t.Fatalf("family list %v, want %v", list, want)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("family list %v, want %v", list, want)
		}
	}
}

// BenchmarkCounterHotPath compares the pre-resolved registry handle
// against a raw atomic — the bench guard for the refactor's claim that
// plane hot paths pay nothing for riding the registry.
func BenchmarkCounterHotPath(b *testing.B) {
	b.Run("raw-atomic", func(b *testing.B) {
		var c Counter
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("registry-handle", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("egress", "sent", L("bearer", "wifi"), L("class", "bulk"))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("registry-resolve-each-time", func(b *testing.B) {
		r := NewRegistry()
		for i := 0; i < b.N; i++ {
			r.Counter("egress", "sent", L("bearer", "wifi"), L("class", "bulk")).Inc()
		}
	})
}

// BenchmarkHistogramHotPath measures Observe on the shared-bucket
// histogram, the other hot-path primitive planes ride.
func BenchmarkHistogramHotPath(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("rpc", "latency")
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(time.Duration(i) * time.Microsecond)
			i++
		}
	})
}
