// Package metrics provides the lightweight counters and latency histograms
// the benchmark harness and the scheduler's soft-real-time reporting use.
// It is intentionally tiny: lock-free counters plus a fixed-bucket
// exponential histogram good enough for percentile summaries, with no
// external dependencies.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a set-to-current-value measurement.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates durations into exponential buckets from 1µs to
// ~17.9s (doubling per bucket), supporting approximate percentiles. The
// zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	buckets [hbuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	hbuckets = 25
	hbase    = time.Microsecond
)

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d < hbase {
		return 0
	}
	idx := int(math.Log2(float64(d) / float64(hbase)))
	if idx < 0 {
		idx = 0
	}
	if idx >= hbuckets {
		idx = hbuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return hbase << uint(i+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the average observation, or 0 with no data.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest observation.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the approximate p-th percentile (0 < p <= 100) as the
// upper bound of the bucket containing that rank. Returns 0 with no data.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Reset clears all state.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [hbuckets]uint64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Summary renders count/mean/p50/p95/p99/max on one line for harness tables.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(95).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Registry is a named collection of metrics for diagnostic dumps. The zero
// value is ready to use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: %s", name, h.Summary()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
