// Package metrics is the node's single observability registry: every
// plane (discovery, egress, link, RPC, events, file transfer, ARQ) counts
// into one Registry as labeled counter/gauge/histogram families keyed by
// component + name + labels. The per-plane *Stats() structs elsewhere in
// the tree are read-only views over these families, and
// core.Node.MetricsSnapshot exports the whole registry as one Snapshot a
// ground-station gateway can serve verbatim (text or JSON).
//
// Hot-path discipline: series resolution (Counter/Gauge/Histogram) takes
// the registry lock and is meant to run once, at construction — callers
// keep the returned handle and increment it lock-free (atomics; the
// histogram uses a small mutex over fixed buckets). Error-path counting
// through internal/uerr resolves per construction, which is fine because
// error paths are cold by definition.
//
// Snapshots are deterministic: families sort by (component, name, kind),
// series by canonical label string, and no wall-clock timestamps are
// recorded — two same-seed virtual-time runs export byte-identical
// snapshots, which the determinism tests pin.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a set-to-current-value measurement.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates durations into exponential buckets from 1µs to
// ~17.9s (doubling per bucket), supporting approximate percentiles. The
// zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	buckets [hbuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	hbuckets = 25
	hbase    = time.Microsecond
)

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d < hbase {
		return 0
	}
	idx := int(math.Log2(float64(d) / float64(hbase)))
	if idx < 0 {
		idx = 0
	}
	if idx >= hbuckets {
		idx = hbuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return hbase << uint(i+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the average observation, or 0 with no data.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest observation.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the approximate p-th percentile (0 < p <= 100) as the
// upper bound of the bucket containing that rank. Returns 0 with no data.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Reset clears all state.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [hbuckets]uint64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Summary renders count/mean/p50/p95/p99/max on one line for harness tables.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(95).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// view snapshots the histogram internals for export.
func (h *Histogram) view() HistogramView {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := HistogramView{
		Count: h.count,
		SumNS: int64(h.sum),
		MinNS: int64(h.min),
		MaxNS: int64(h.max),
	}
	for i, b := range h.buckets {
		if b != 0 {
			v.Buckets = append(v.Buckets, Bucket{UpperNS: int64(bucketUpper(i)), Count: b})
		}
	}
	return v
}

// Label is one key=value dimension on a metric series. Keys follow the
// same vocabulary rules as names; values are free-form.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// nameOK enforces the registry vocabulary: lowercase letters, digits and
// underscores, starting with a letter — the same shape uerr codes use, so
// error families and ordinary families share one namespace.
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_' && i > 0:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// canonLabels sorts a copy of labels by key and renders the canonical
// series suffix used as the map key within a family.
func canonLabels(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return ls, b.String()
}

// familyKey identifies one family in the registry.
type familyKey struct {
	kind      string
	component string
	name      string
}

// family holds one (kind, component, name)'s series.
type family struct {
	key    familyKey
	series map[string]*seriesEntry // canonical label string -> entry
}

// seriesEntry is one labeled instance inside a family; exactly one of
// c/g/h is non-nil, matching the family kind.
type seriesEntry struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is one node's metric family collection. The zero value is ready
// to use; methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[familyKey]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// entry resolves (creating if needed) the series for key+labels. Invalid
// component/name/label vocabulary panics: family identity is programmer-
// chosen, so a bad name is a bug, not an input.
func (r *Registry) entry(kind, component, name string, labels []Label) *seriesEntry {
	if !nameOK(component) || !nameOK(name) {
		panic(fmt.Sprintf("metrics: invalid family %s %q.%q", kind, component, name))
	}
	for _, l := range labels {
		if !nameOK(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %s.%s", l.Key, component, name))
		}
	}
	ls, canon := canonLabels(labels)
	key := familyKey{kind: kind, component: component, name: name}

	r.mu.RLock()
	if fam, ok := r.families[key]; ok {
		if e, ok := fam.series[canon]; ok {
			r.mu.RUnlock()
			return e
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[familyKey]*family)
	}
	fam := r.families[key]
	if fam == nil {
		fam = &family{key: key, series: make(map[string]*seriesEntry)}
		r.families[key] = fam
	}
	e := fam.series[canon]
	if e == nil {
		e = &seriesEntry{labels: ls}
		switch kind {
		case KindCounter:
			e.c = &Counter{}
		case KindGauge:
			e.g = &Gauge{}
		case KindHistogram:
			e.h = &Histogram{}
		}
		fam.series[canon] = e
	}
	return e
}

// Counter resolves (creating if needed) the counter series in family
// component.name with the given labels. Resolve once and keep the handle:
// increments on the handle are lock-free.
func (r *Registry) Counter(component, name string, labels ...Label) *Counter {
	return r.entry(KindCounter, component, name, labels).c
}

// Gauge resolves (creating if needed) the gauge series.
func (r *Registry) Gauge(component, name string, labels ...Label) *Gauge {
	return r.entry(KindGauge, component, name, labels).g
}

// Histogram resolves (creating if needed) the histogram series.
func (r *Registry) Histogram(component, name string, labels ...Label) *Histogram {
	return r.entry(KindHistogram, component, name, labels).h
}

// SumCounters totals every series of counter family component.name whose
// labels include all of match — the primitive the per-plane *Stats() views
// use (e.g. "all discovery errors with category=encode"). Zero when the
// family does not exist.
func (r *Registry) SumCounters(component, name string, match ...Label) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fam := r.families[familyKey{kind: KindCounter, component: component, name: name}]
	if fam == nil {
		return 0
	}
	var total uint64
	for _, e := range fam.series {
		if labelsMatch(e.labels, match) {
			total += e.c.Value()
		}
	}
	return total
}

func labelsMatch(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h.Key == w.Key && h.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	UpperNS int64  `json:"upper_ns"` // inclusive upper bound
	Count   uint64 `json:"count"`
}

// HistogramView is a histogram's exported state.
type HistogramView struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MinNS   int64    `json:"min_ns"`
	MaxNS   int64    `json:"max_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Series is one labeled instance in a family snapshot. Exactly one of
// Counter/Gauge/Histogram is set, matching the family kind.
type Series struct {
	Labels    []Label        `json:"labels,omitempty"`
	Counter   *uint64        `json:"counter,omitempty"`
	Gauge     *int64         `json:"gauge,omitempty"`
	Histogram *HistogramView `json:"histogram,omitempty"`
}

// Family is one metric family in a snapshot.
type Family struct {
	Kind      string   `json:"kind"`
	Component string   `json:"component"`
	Name      string   `json:"name"`
	Series    []Series `json:"series"`
}

// ID renders the family identity the golden-list CI check pins:
// "kind component.name".
func (f Family) ID() string { return f.Kind + " " + f.Component + "." + f.Name }

// Snapshot is a point-in-time export of a whole registry, ordered
// deterministically (families by component, name, kind; series by
// canonical labels).
type Snapshot struct {
	Families []Family `json:"families"`
}

// Snapshot exports every family.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		fams = append(fams, fam)
	}
	// Series maps are only mutated under the write lock; grab ordered
	// references under the read lock, then read values lock-free.
	type seriesRef struct {
		canon string
		e     *seriesEntry
	}
	ordered := make([][]seriesRef, len(fams))
	for i, fam := range fams {
		refs := make([]seriesRef, 0, len(fam.series))
		for canon, e := range fam.series {
			refs = append(refs, seriesRef{canon: canon, e: e})
		}
		ordered[i] = refs
	}
	r.mu.RUnlock()

	snap := Snapshot{Families: make([]Family, 0, len(fams))}
	for i, fam := range fams {
		refs := ordered[i]
		sort.Slice(refs, func(a, b int) bool { return refs[a].canon < refs[b].canon })
		out := Family{Kind: fam.key.kind, Component: fam.key.component, Name: fam.key.name}
		for _, ref := range refs {
			s := Series{Labels: ref.e.labels}
			switch {
			case ref.e.c != nil:
				v := ref.e.c.Value()
				s.Counter = &v
			case ref.e.g != nil:
				v := ref.e.g.Value()
				s.Gauge = &v
			case ref.e.h != nil:
				v := ref.e.h.view()
				s.Histogram = &v
			}
			out.Series = append(out.Series, s)
		}
		snap.Families = append(snap.Families, out)
	}
	sort.Slice(snap.Families, func(a, b int) bool {
		fa, fb := snap.Families[a], snap.Families[b]
		if fa.Component != fb.Component {
			return fa.Component < fb.Component
		}
		if fa.Name != fb.Name {
			return fa.Name < fb.Name
		}
		return fa.Kind < fb.Kind
	})
	return snap
}

// FamilyList returns the sorted family identities ("kind component.name"),
// the shape the committed golden pins so accidental metric renames are
// visible PR-to-PR.
func (s Snapshot) FamilyList() []string {
	out := make([]string, len(s.Families))
	for i, f := range s.Families {
		out[i] = f.ID()
	}
	sort.Strings(out)
	return out
}

// JSON renders the snapshot as indented JSON (deterministic byte-for-byte
// for a deterministic registry state).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot in a one-line-per-series scrape format:
//
//	counter discovery.heartbeats_sent 42
//	counter egress.frames_sent{bearer="wifi",class="bulk"} 10
//	histogram rpc.call_latency count=3 sum_ns=... min_ns=... max_ns=... buckets=2048:2,4096:1
//
// The output is deterministic for a deterministic registry state.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, f := range s.Families {
		for _, se := range f.Series {
			b.WriteString(f.Kind)
			b.WriteByte(' ')
			b.WriteString(f.Component)
			b.WriteByte('.')
			b.WriteString(f.Name)
			if _, canon := canonLabels(se.Labels); canon != "" {
				b.WriteString(canon)
			}
			b.WriteByte(' ')
			switch {
			case se.Counter != nil:
				fmt.Fprintf(&b, "%d", *se.Counter)
			case se.Gauge != nil:
				fmt.Fprintf(&b, "%d", *se.Gauge)
			case se.Histogram != nil:
				h := se.Histogram
				fmt.Fprintf(&b, "count=%d sum_ns=%d min_ns=%d max_ns=%d",
					h.Count, h.SumNS, h.MinNS, h.MaxNS)
				if len(h.Buckets) > 0 {
					b.WriteString(" buckets=")
					for i, bk := range h.Buckets {
						if i > 0 {
							b.WriteByte(',')
						}
						fmt.Fprintf(&b, "%d:%d", bk.UpperNS, bk.Count)
					}
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Dump renders every metric one per line — the legacy diagnostic format,
// now an alias for Text.
func (r *Registry) Dump() string { return r.Snapshot().Text() }
