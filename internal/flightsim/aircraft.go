package flightsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Waypoint is one leg endpoint of a flight plan.
type Waypoint struct {
	// Name labels the waypoint in events and logs.
	Name string
	// Lat, Lon in degrees; Alt in meters.
	Lat, Lon, AltM float64
	// Photo marks a location where the mission controller triggers the
	// camera (§5's "take high resolution photos at specified locations").
	Photo bool
}

// FlightPlan is the predetermined route the FCS follows (§1).
type FlightPlan struct {
	// Name labels the plan.
	Name string
	// Waypoints in visit order; at least two (origin + one target).
	Waypoints []Waypoint
	// CruiseSpeedMS is the commanded ground speed in m/s.
	CruiseSpeedMS float64
	// ArrivalRadiusM is the distance at which a waypoint counts reached
	// (default 30 m).
	ArrivalRadiusM float64
}

// ErrBadPlan tags plan validation failures.
var ErrBadPlan = errors.New("invalid flight plan")

// Validate checks plan plausibility.
func (p *FlightPlan) Validate() error {
	if len(p.Waypoints) < 2 {
		return fmt.Errorf("flightsim: %d waypoints: %w", len(p.Waypoints), ErrBadPlan)
	}
	if p.CruiseSpeedMS <= 0 {
		return fmt.Errorf("flightsim: cruise speed %v: %w", p.CruiseSpeedMS, ErrBadPlan)
	}
	for i, wp := range p.Waypoints {
		if wp.Lat < -90 || wp.Lat > 90 || wp.Lon < -180 || wp.Lon > 180 {
			return fmt.Errorf("flightsim: waypoint %d at (%v,%v): %w", i, wp.Lat, wp.Lon, ErrBadPlan)
		}
	}
	return nil
}

// TotalDistanceM sums the leg lengths.
func (p *FlightPlan) TotalDistanceM() float64 {
	total := 0.0
	for i := 1; i < len(p.Waypoints); i++ {
		a, b := p.Waypoints[i-1], p.Waypoints[i]
		total += DistanceM(a.Lat, a.Lon, b.Lat, b.Lon)
	}
	return total
}

// State is one instant of the simulated aircraft.
type State struct {
	// Lat, Lon in degrees; Alt in meters.
	Lat, Lon, AltM float64
	// HeadingDeg is the ground track in degrees [0,360).
	HeadingDeg float64
	// SpeedMS is the ground speed in m/s.
	SpeedMS float64
	// Waypoint is the index of the waypoint currently being flown to.
	Waypoint int
	// Elapsed is simulated time since takeoff.
	Elapsed time.Duration
	// Complete reports that the final waypoint was reached.
	Complete bool
}

// Options tune the aircraft model.
type Options struct {
	// TurnRateDps limits heading change (default 25°/s, a mini-UAV).
	TurnRateDps float64
	// ClimbRateMS limits altitude change (default 3 m/s).
	ClimbRateMS float64
	// WindSpeedMS and WindDirDeg add a constant wind drift.
	WindSpeedMS, WindDirDeg float64
	// GustMS adds seeded random gust noise on top of the wind.
	GustMS float64
	// Seed makes gusts reproducible (0 means 1).
	Seed int64
}

// Aircraft is a point-mass aircraft following a flight plan.
type Aircraft struct {
	plan FlightPlan
	opt  Options
	rng  *rand.Rand

	state State
}

// New places an aircraft at the first waypoint, heading toward the second.
func New(plan FlightPlan, opt Options) (*Aircraft, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.ArrivalRadiusM <= 0 {
		plan.ArrivalRadiusM = 30
	}
	if opt.TurnRateDps <= 0 {
		opt.TurnRateDps = 25
	}
	if opt.ClimbRateMS <= 0 {
		opt.ClimbRateMS = 3
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	origin := plan.Waypoints[0]
	next := plan.Waypoints[1]
	return &Aircraft{
		plan: plan,
		opt:  opt,
		rng:  rand.New(rand.NewSource(seed)),
		state: State{
			Lat:        origin.Lat,
			Lon:        origin.Lon,
			AltM:       origin.AltM,
			HeadingDeg: BearingDeg(origin.Lat, origin.Lon, next.Lat, next.Lon),
			SpeedMS:    plan.CruiseSpeedMS,
			Waypoint:   1,
		},
	}, nil
}

// State returns the current instant.
func (a *Aircraft) State() State { return a.state }

// Plan returns the flight plan being flown.
func (a *Aircraft) Plan() FlightPlan { return a.plan }

// Done reports plan completion.
func (a *Aircraft) Done() bool { return a.state.Complete }

// Step advances the model by dt and returns the new state. After
// completion, the aircraft loiters (holds position, speed zero).
func (a *Aircraft) Step(dt time.Duration) State {
	if a.state.Complete || dt <= 0 {
		a.state.Elapsed += dt
		return a.state
	}
	dts := dt.Seconds()
	st := &a.state
	target := a.plan.Waypoints[st.Waypoint]

	// Heading: turn-rate-limited pursuit of the target bearing.
	want := BearingDeg(st.Lat, st.Lon, target.Lat, target.Lon)
	diff := angleDiffDeg(st.HeadingDeg, want)
	maxTurn := a.opt.TurnRateDps * dts
	turn := math.Max(-maxTurn, math.Min(maxTurn, diff))
	st.HeadingDeg = math.Mod(st.HeadingDeg+turn+360, 360)

	// Translate along heading, plus wind.
	dist := st.SpeedMS * dts
	st.Lat, st.Lon = OffsetM(st.Lat, st.Lon, st.HeadingDeg, dist)
	if a.opt.WindSpeedMS > 0 || a.opt.GustMS > 0 {
		wind := a.opt.WindSpeedMS
		if a.opt.GustMS > 0 {
			wind += a.rng.NormFloat64() * a.opt.GustMS
		}
		if wind > 0 {
			st.Lat, st.Lon = OffsetM(st.Lat, st.Lon, a.opt.WindDirDeg, wind*dts)
		}
	}

	// Altitude: climb-rate-limited approach to the target altitude.
	dAlt := target.AltM - st.AltM
	maxClimb := a.opt.ClimbRateMS * dts
	st.AltM += math.Max(-maxClimb, math.Min(maxClimb, dAlt))

	st.Elapsed += dt

	// Arrival check.
	if DistanceM(st.Lat, st.Lon, target.Lat, target.Lon) <= a.plan.ArrivalRadiusM {
		if st.Waypoint == len(a.plan.Waypoints)-1 {
			st.Complete = true
			st.SpeedMS = 0
		} else {
			st.Waypoint++
		}
	}
	return *st
}

// FlyUntilDone steps the simulation with the given tick until the plan
// completes or maxSim simulated time elapses, invoking observe (if set)
// after every step. It returns the final state. This is the batch driver
// used by tests and the mission benchmarks; live services tick Step
// themselves.
func (a *Aircraft) FlyUntilDone(tick, maxSim time.Duration, observe func(State)) State {
	for a.state.Elapsed < maxSim && !a.state.Complete {
		st := a.Step(tick)
		if observe != nil {
			observe(st)
		}
	}
	return a.state
}

// SurveyPlan builds a rectangular lawn-mower survey plan around a center
// point: rows parallel legs spaced gapM apart, legM long, at altM. Photo
// waypoints are placed at both ends of every leg. It is the workload
// generator for the §5 scenario.
func SurveyPlan(name string, centerLat, centerLon float64, rows int, legM, gapM, altM, speedMS float64) FlightPlan {
	if rows < 1 {
		rows = 1
	}
	wps := make([]Waypoint, 0, rows*2+1)
	// Start south-west of center.
	originLat, originLon := OffsetM(centerLat, centerLon, 225, math.Hypot(legM/2, float64(rows)*gapM/2))
	wps = append(wps, Waypoint{Name: "origin", Lat: originLat, Lon: originLon, AltM: altM})
	rowLat, rowLon := originLat, originLon
	for r := 0; r < rows; r++ {
		endLat, endLon := OffsetM(rowLat, rowLon, 90, legM)
		if r%2 == 0 {
			wps = append(wps,
				Waypoint{Name: fmt.Sprintf("r%d-a", r), Lat: rowLat, Lon: rowLon, AltM: altM, Photo: true},
				Waypoint{Name: fmt.Sprintf("r%d-b", r), Lat: endLat, Lon: endLon, AltM: altM, Photo: true},
			)
		} else {
			wps = append(wps,
				Waypoint{Name: fmt.Sprintf("r%d-a", r), Lat: endLat, Lon: endLon, AltM: altM, Photo: true},
				Waypoint{Name: fmt.Sprintf("r%d-b", r), Lat: rowLat, Lon: rowLon, AltM: altM, Photo: true},
			)
		}
		rowLat, rowLon = OffsetM(rowLat, rowLon, 0, gapM)
	}
	return FlightPlan{Name: name, Waypoints: wps, CruiseSpeedMS: speedMS, ArrivalRadiusM: 40}
}
