package flightsim

import (
	"math"
	"testing"
	"time"
)

// castelldefels — the authors' campus, a fitting test origin.
const (
	homeLat = 41.2750
	homeLon = 1.9870
)

func simplePlan() FlightPlan {
	lat2, lon2 := OffsetM(homeLat, homeLon, 90, 2000) // 2 km east
	return FlightPlan{
		Name:          "test",
		CruiseSpeedMS: 25,
		Waypoints: []Waypoint{
			{Name: "home", Lat: homeLat, Lon: homeLon, AltM: 100},
			{Name: "target", Lat: lat2, Lon: lon2, AltM: 150},
		},
	}
}

func TestDistanceAndBearing(t *testing.T) {
	// 1 degree of latitude is ~111.2 km.
	d := DistanceM(0, 0, 1, 0)
	if math.Abs(d-111195) > 300 {
		t.Errorf("1 deg lat = %v m", d)
	}
	if b := BearingDeg(0, 0, 1, 0); math.Abs(b-0) > 0.01 {
		t.Errorf("northward bearing = %v", b)
	}
	if b := BearingDeg(0, 0, 0, 1); math.Abs(b-90) > 0.01 {
		t.Errorf("eastward bearing = %v", b)
	}
	if d := DistanceM(homeLat, homeLon, homeLat, homeLon); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	for _, bearing := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		lat, lon := OffsetM(homeLat, homeLon, bearing, 5000)
		d := DistanceM(homeLat, homeLon, lat, lon)
		if math.Abs(d-5000) > 1 {
			t.Errorf("bearing %v: offset 5000m measured %v", bearing, d)
		}
		back := BearingDeg(homeLat, homeLon, lat, lon)
		if math.Abs(angleDiffDeg(back, bearing)) > 0.1 {
			t.Errorf("bearing %v measured %v", bearing, back)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct{ a, b, want float64 }{
		{0, 10, 10},
		{10, 0, -10},
		{350, 10, 20},
		{10, 350, -20},
		{0, 180, 180},
		{90, 270, 180},
	}
	for _, tt := range tests {
		if got := angleDiffDeg(tt.a, tt.b); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("angleDiffDeg(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := simplePlan()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := simplePlan()
	bad.Waypoints = bad.Waypoints[:1]
	if err := bad.Validate(); err == nil {
		t.Error("single waypoint must fail")
	}
	bad2 := simplePlan()
	bad2.CruiseSpeedMS = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero speed must fail")
	}
	bad3 := simplePlan()
	bad3.Waypoints[0].Lat = 99
	if err := bad3.Validate(); err == nil {
		t.Error("out-of-range latitude must fail")
	}
}

func TestAircraftReachesTarget(t *testing.T) {
	ac, err := New(simplePlan(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	final := ac.FlyUntilDone(100*time.Millisecond, 10*time.Minute, nil)
	if !final.Complete {
		t.Fatalf("plan incomplete after %v at waypoint %d", final.Elapsed, final.Waypoint)
	}
	// 2 km at 25 m/s is 80 s; allow turning overhead.
	if final.Elapsed > 2*time.Minute {
		t.Errorf("took %v for a 2km leg at 25 m/s", final.Elapsed)
	}
	target := ac.Plan().Waypoints[1]
	if d := DistanceM(final.Lat, final.Lon, target.Lat, target.Lon); d > ac.Plan().ArrivalRadiusM+1 {
		t.Errorf("final position %v m from target", d)
	}
	if math.Abs(final.AltM-150) > 5 {
		t.Errorf("final altitude %v, want ~150", final.AltM)
	}
	if final.SpeedMS != 0 {
		t.Error("aircraft must loiter at zero speed after completion")
	}
}

func TestAircraftClimbRateLimited(t *testing.T) {
	plan := simplePlan()
	plan.Waypoints[1].AltM = 1000 // 900 m climb over an 80 s leg: impossible at 3 m/s
	ac, err := New(plan, Options{ClimbRateMS: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := ac.Step(10 * time.Second)
	if climbed := st.AltM - 100; climbed > 31 {
		t.Errorf("climbed %v m in 10 s at 3 m/s limit", climbed)
	}
}

func TestAircraftTurnRateLimited(t *testing.T) {
	// Target directly behind: the model must not snap 180° instantly.
	plan := simplePlan()
	west, wlon := OffsetM(homeLat, homeLon, 270, 2000)
	plan.Waypoints[1].Lat, plan.Waypoints[1].Lon = west, wlon
	ac, err := New(plan, Options{TurnRateDps: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Force heading east first.
	ac.state.HeadingDeg = 90
	st := ac.Step(time.Second)
	if d := math.Abs(angleDiffDeg(90, st.HeadingDeg)); d > 10.001 {
		t.Errorf("turned %v deg in 1 s at 10 dps limit", d)
	}
}

func TestWindDrift(t *testing.T) {
	calm, err := New(simplePlan(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	windy, err := New(simplePlan(), Options{WindSpeedMS: 8, WindDirDeg: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	calmSt := calm.Step(10 * time.Second)
	windySt := windy.Step(10 * time.Second)
	// Northward wind pushes the windy aircraft north of the calm one.
	if windySt.Lat <= calmSt.Lat {
		t.Error("wind produced no northward drift")
	}
}

func TestGustDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) State {
		ac, err := New(simplePlan(), Options{WindSpeedMS: 2, GustMS: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return ac.FlyUntilDone(time.Second, 5*time.Minute, nil)
	}
	a, b := run(7), run(7)
	if a.Lat != b.Lat || a.Lon != b.Lon || a.Elapsed != b.Elapsed {
		t.Error("same seed produced different trajectories")
	}
}

func TestSurveyPlan(t *testing.T) {
	plan := SurveyPlan("survey", homeLat, homeLon, 3, 1500, 300, 120, 22)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	photos := 0
	for _, wp := range plan.Waypoints {
		if wp.Photo {
			photos++
		}
	}
	if photos != 6 {
		t.Errorf("3 rows should give 6 photo waypoints, got %d", photos)
	}
	if plan.TotalDistanceM() < 3*1500 {
		t.Errorf("total distance %v too short", plan.TotalDistanceM())
	}

	// The plan must actually be flyable.
	ac, err := New(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	final := ac.FlyUntilDone(200*time.Millisecond, 30*time.Minute, nil)
	if !final.Complete {
		t.Errorf("survey incomplete after %v (waypoint %d of %d)",
			final.Elapsed, final.Waypoint, len(plan.Waypoints))
	}
}

func TestStepAfterCompleteLoiters(t *testing.T) {
	ac, err := New(simplePlan(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ac.FlyUntilDone(100*time.Millisecond, 10*time.Minute, nil)
	before := ac.State()
	after := ac.Step(time.Second)
	if after.Lat != before.Lat || after.Lon != before.Lon {
		t.Error("aircraft moved after completion")
	}
	if after.Elapsed != before.Elapsed+time.Second {
		t.Error("elapsed time must still advance")
	}
}

func TestObserverCallback(t *testing.T) {
	ac, err := New(simplePlan(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var count int
	ac.FlyUntilDone(time.Second, 5*time.Minute, func(State) { count++ })
	if count == 0 {
		t.Error("observer never invoked")
	}
}
