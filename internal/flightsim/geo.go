// Package flightsim is the flight-dynamics substrate standing in for the
// paper's real airframe and its Flight Computer System sensors (§1): a
// point-mass aircraft model that follows a waypoint flight plan, producing
// the position/attitude/speed stream the GPS service publishes. The
// middleware under evaluation only sees typed telemetry samples, so a
// kinematic model with turn-rate and climb-rate limits (plus optional wind)
// exercises exactly the same code paths the authors' hardware did.
package flightsim

import "math"

// EarthRadiusM is the mean Earth radius used by the spherical helpers.
const EarthRadiusM = 6371000.0

func degToRad(d float64) float64 { return d * math.Pi / 180 }

func radToDeg(r float64) float64 { return r * 180 / math.Pi }

// DistanceM returns the haversine great-circle distance in meters between
// two lat/lon points in degrees.
func DistanceM(lat1, lon1, lat2, lon2 float64) float64 {
	phi1, phi2 := degToRad(lat1), degToRad(lat2)
	dPhi := degToRad(lat2 - lat1)
	dLambda := degToRad(lon2 - lon1)
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLambda/2)*math.Sin(dLambda/2)
	return 2 * EarthRadiusM * math.Atan2(math.Sqrt(a), math.Sqrt(1-a))
}

// BearingDeg returns the initial great-circle bearing in degrees [0,360)
// from point 1 toward point 2.
func BearingDeg(lat1, lon1, lat2, lon2 float64) float64 {
	phi1, phi2 := degToRad(lat1), degToRad(lat2)
	dLambda := degToRad(lon2 - lon1)
	y := math.Sin(dLambda) * math.Cos(phi2)
	x := math.Cos(phi1)*math.Sin(phi2) - math.Sin(phi1)*math.Cos(phi2)*math.Cos(dLambda)
	b := radToDeg(math.Atan2(y, x))
	return math.Mod(b+360, 360)
}

// OffsetM moves a lat/lon point by distance meters along bearing degrees,
// returning the new point (spherical law of cosines; exact enough for the
// kilometer-scale legs of a mini-UAV mission).
func OffsetM(lat, lon, bearingDeg, distanceM float64) (newLat, newLon float64) {
	phi := degToRad(lat)
	lambda := degToRad(lon)
	theta := degToRad(bearingDeg)
	delta := distanceM / EarthRadiusM
	phi2 := math.Asin(math.Sin(phi)*math.Cos(delta) + math.Cos(phi)*math.Sin(delta)*math.Cos(theta))
	lambda2 := lambda + math.Atan2(
		math.Sin(theta)*math.Sin(delta)*math.Cos(phi),
		math.Cos(delta)-math.Sin(phi)*math.Sin(phi2))
	return radToDeg(phi2), radToDeg(lambda2)
}

// angleDiffDeg returns the signed smallest rotation in degrees from a to b
// in (-180, 180].
func angleDiffDeg(a, b float64) float64 {
	d := math.Mod(b-a+540, 360) - 180
	if d == -180 {
		return 180
	}
	return d
}
