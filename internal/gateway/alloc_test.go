package gateway

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/core"
	"uavmw/internal/netsim"
	"uavmw/internal/transport"
)

// countConn acknowledges whole frames and counts them; Write never
// blocks and never allocates.
type countConn struct {
	n *atomic.Int64
}

func (c *countConn) Write(p []byte) (int, error) {
	c.n.Add(1)
	return len(p), nil
}
func (c *countConn) Close() error                     { return nil }
func (c *countConn) SetWriteDeadline(time.Time) error { return nil }

// TestFanOutAllocationFree pins the tentpole's per-client cost contract:
// delivering one already-encoded sample to every subscribed client —
// enqueue, ready-list, writer wake-up, socket write, refcount release —
// allocates nothing. The per-occurrence encode (JSON marshal) is outside
// the measured op because it is paid once per sample, not per client.
func TestFanOutAllocationFree(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 7, Latency: time.Millisecond})
	t.Cleanup(sim.Close)
	ep, err := sim.Node(transport.NodeID("gs"))
	if err != nil {
		t.Fatal(err)
	}
	// A quiet node: announcements parked for an hour so no background
	// discovery traffic allocates during the measurement window.
	node, err := core.NewNode(core.WithDatagram(ep), core.WithAnnouncePeriod(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	g := New(node, Options{Shards: 4, QueueLen: 8})
	t.Cleanup(g.Close)

	// Link clients straight into the shard subscription index: the gate
	// measures the fan-out machinery, not the fabric subscription (which
	// is exercised end-to-end by the other tests and E16).
	key := topicKey{stream: StreamVariable, name: "alloc.var"}
	var delivered atomic.Int64
	const clients = 64
	for i := 0; i < clients; i++ {
		c, err := g.Attach(&countConn{n: &delivered})
		if err != nil {
			t.Fatal(err)
		}
		sh := c.sh
		sh.mu.Lock()
		c.mu.Lock()
		c.subs[key] = struct{}{}
		c.mu.Unlock()
		sh.attachLocked(key, c)
		sh.mu.Unlock()
	}

	// One pre-encoded wire frame, copied into a fresh pooled buffer per
	// op exactly as the per-occurrence encode would produce it.
	wire := []byte(`{"stream":"variable","name":"alloc.var","seq":1,"ts_unix_ns":0,"value":42}` + "\n")

	op := func() {
		want := delivered.Load() + clients
		buf := bufpool.Get(len(wire))
		buf = append(buf, wire...)
		g.fanOut(key, bufpool.Share(buf), false)
		for delivered.Load() < want {
			runtime.Gosched()
		}
	}
	for i := 0; i < 16; i++ {
		op() // warm pools, ready lists, freelists
	}
	runtime.GC()
	if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
		t.Fatalf("fan-out to %d clients allocates %.2f/sample (%.4f per client), want 0",
			clients, allocs, allocs/clients)
	}
}
