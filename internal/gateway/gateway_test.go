package gateway

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uavmw/internal/core"
	"uavmw/internal/naming"
	"uavmw/internal/netsim"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
)

// --- harness -------------------------------------------------------------

func waitUntil(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// pair builds uav (publisher) and gs (gateway host) nodes on a simulated
// link and the gateway on gs.
func pair(t *testing.T, opts Options) (*core.Node, *Gateway) {
	t.Helper()
	sim := netsim.New(netsim.Config{Seed: 42, Latency: time.Millisecond})
	t.Cleanup(sim.Close)
	mk := func(id string) *core.Node {
		ep, err := sim.Node(transport.NodeID(id))
		if err != nil {
			t.Fatal(err)
		}
		n, err := core.NewNode(core.WithDatagram(ep), core.WithAnnouncePeriod(20*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	uav := mk("uav")
	gs := mk("gs")
	g := New(gs, opts)
	t.Cleanup(g.Close)
	return uav, g
}

// dataFrame is the decoded gateway→client envelope.
type dataFrame struct {
	Stream string          `json:"stream"`
	Op     string          `json:"op"`
	Name   string          `json:"name"`
	Seq    uint64          `json:"seq"`
	TS     int64           `json:"ts_unix_ns"`
	From   string          `json:"from"`
	Error  string          `json:"error"`
	Value  json.RawMessage `json:"value"`
}

// wireClient is a real TCP consumer speaking the external protocol.
type wireClient struct {
	t    *testing.T
	conn net.Conn
}

func dialClient(t *testing.T, addr string) *wireClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &wireClient{t: t, conn: conn}
}

func (c *wireClient) send(req Request) {
	c.t.Helper()
	buf, err := AppendRequest(nil, req)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.conn.Write(buf); err != nil {
		c.t.Fatal(err)
	}
}

func (c *wireClient) read(timeout time.Duration) dataFrame {
	c.t.Helper()
	_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
	raw, err := ReadFrame(c.conn, nil)
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	var f dataFrame
	if err := json.Unmarshal(raw, &f); err != nil {
		c.t.Fatalf("frame %q: %v", raw, err)
	}
	return f
}

// --- tests ---------------------------------------------------------------

// TestSharedSubscriptionFanOut is the tentpole contract: three TCP
// clients follow one variable through one gateway, every client sees
// every sample with identical sequence numbers, and the fabric carries
// exactly one subscription no matter the audience.
func TestSharedSubscriptionFanOut(t *testing.T) {
	uav, g := pair(t, Options{Shards: 2, QueueLen: 16})

	pub, err := uav.Variables().Offer("pos", "nav", presentation.Uint32(), qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	uav.AnnounceNow()
	waitUntil(t, 3*time.Second, "provider visible", func() bool {
		return g.Node().Directory().ProviderCount(naming.KindVariable, "pos") == 1
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = g.Serve(l) }()

	clients := make([]*wireClient, 3)
	for i := range clients {
		clients[i] = dialClient(t, l.Addr().String())
		clients[i].send(Request{Op: "subscribe", Stream: "variable", Name: "pos"})
		if f := clients[i].read(3 * time.Second); f.Op != "subscribed" {
			t.Fatalf("client %d: expected subscribe ack, got %+v", i, f)
		}
	}
	if got := g.m.fabricSubs.Value(); got != 1 {
		t.Fatalf("fabric subscriptions = %d for 3 clients, want 1", got)
	}

	// Publish until delivery is observed (the group join races the first
	// publishes), then check every client sees a consistent tail.
	const target = 5
	for i := 0; i < 200; i++ {
		if err := pub.Publish(uint32(i)); err != nil {
			t.Fatal(err)
		}
		if g.m.samplesIn[StreamVariable].Value() >= target {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if g.m.samplesIn[StreamVariable].Value() < target {
		t.Fatal("gateway never heard enough samples")
	}

	type rec struct {
		seq uint64
		val uint32
	}
	got := make([][]rec, len(clients))
	for i, c := range clients {
		for len(got[i]) < target {
			f := c.read(3 * time.Second)
			if f.Stream != "variable" || f.Name != "pos" {
				t.Fatalf("client %d: unexpected frame %+v", i, f)
			}
			var v uint32
			if err := json.Unmarshal(f.Value, &v); err != nil {
				t.Fatalf("client %d: value %q: %v", i, f.Value, err)
			}
			got[i] = append(got[i], rec{seq: f.Seq, val: v})
		}
	}
	// Same gateway sequence numbers must carry the same values everywhere
	// (encode-once: there is only one serialization per occurrence).
	byseq := make(map[uint64]uint32)
	for i := range got {
		for _, r := range got[i] {
			if v, ok := byseq[r.seq]; ok && v != r.val {
				t.Fatalf("seq %d: value %d vs %d across clients", r.seq, v, r.val)
			}
			byseq[r.seq] = r.val
		}
	}

	// Refcounted teardown: dropping all clients closes the one fabric
	// subscription.
	for _, c := range clients {
		c.send(Request{Op: "unsubscribe", Stream: "variable", Name: "pos"})
	}
	waitUntil(t, 3*time.Second, "fabric unsubscribe", func() bool {
		return g.m.fabricSubs.Value() == 0
	})
}

// TestLastValueCache: a client subscribing after the last publish still
// gets the current value, served from gateway memory.
func TestLastValueCache(t *testing.T) {
	uav, g := pair(t, Options{Shards: 1, QueueLen: 8})

	pub, err := uav.Variables().Offer("alt", "nav", presentation.Uint32(), qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	uav.AnnounceNow()
	waitUntil(t, 3*time.Second, "provider visible", func() bool {
		return g.Node().Directory().ProviderCount(naming.KindVariable, "alt") == 1
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = g.Serve(l) }()

	first := dialClient(t, l.Addr().String())
	first.send(Request{Op: "subscribe", Stream: "variable", Name: "alt"})
	if f := first.read(3 * time.Second); f.Op != "subscribed" {
		t.Fatalf("expected ack, got %+v", f)
	}
	for i := 0; g.m.samplesIn[StreamVariable].Value() == 0; i++ {
		if i > 500 {
			t.Fatal("no sample reached the gateway")
		}
		if err := pub.Publish(uint32(4242)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// No further publishes: the late client must be served from cache.
	late := dialClient(t, l.Addr().String())
	late.send(Request{Op: "subscribe", Stream: "variable", Name: "alt"})
	if f := late.read(3 * time.Second); f.Op != "subscribed" {
		t.Fatalf("expected ack, got %+v", f)
	}
	f := late.read(3 * time.Second)
	if f.Stream != "variable" || f.Name != "alt" {
		t.Fatalf("expected cached sample, got %+v", f)
	}
	var v uint32
	if err := json.Unmarshal(f.Value, &v); err != nil || v != 4242 {
		t.Fatalf("cached value = %s (err %v), want 4242", f.Value, err)
	}
	if g.m.cacheHits.Value() == 0 {
		t.Fatal("cache_hits not counted")
	}
}

// TestMetricsEndpoint closes the PR 7 ROADMAP note: the gateway exposes
// Node.MetricsSnapshot() over HTTP rather than a private counter store,
// and the gateway.* families appear in that export.
func TestMetricsEndpoint(t *testing.T) {
	_, g := pair(t, Options{Shards: 1})

	// Touch a couple of gateway series so they exist in the snapshot.
	c, err := g.Attach(&sinkConn{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv := httptest.NewServer(g.HTTPHandler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return sb.String()
	}

	text := get("/metrics")
	for _, want := range []string{"gateway.clients", "gateway.clients_accepted", "gateway.frames_out"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The same scrape carries the rest of the node: one registry for all
	// layers, per the PR 7 design.
	if !strings.Contains(text, "discovery.") {
		t.Fatal("/metrics should carry non-gateway families too")
	}
	// The node's sharded receive pipeline registers its families eagerly,
	// so the ingress plane is scrapeable before the first packet arrives.
	for _, want := range []string{
		"ingress.shards", "ingress.queue_depth", "ingress.frames",
		"ingress.drops", "ingress.batch_frames",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing ingress family %q:\n%s", want, text)
		}
	}

	var snap map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("metrics.json not valid JSON: %v", err)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(get("/healthz")), &health); err != nil {
		t.Fatalf("healthz not valid JSON: %v", err)
	}
	if health["status"] != "ok" || health["clients"] != float64(1) {
		t.Fatalf("healthz = %v", health)
	}
}

// --- slow-consumer machinery ---------------------------------------------

// sinkConn counts everything written to it and never blocks.
type sinkConn struct {
	frames atomic.Int64
	bytes  atomic.Int64
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.bytes.Add(int64(len(p)))
	s.frames.Add(1)
	return len(p), nil
}
func (s *sinkConn) Close() error                     { return nil }
func (s *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// stallConn models a consumer whose TCP window is jammed: every write
// parks until the deadline and fails with a timeout.
type stallConn struct {
	mu       sync.Mutex
	deadline time.Time
	attempts atomic.Int64
}

func (s *stallConn) Write(p []byte) (int, error) {
	s.attempts.Add(1)
	s.mu.Lock()
	d := time.Until(s.deadline)
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return 0, os.ErrDeadlineExceeded
}
func (s *stallConn) Close() error { return nil }
func (s *stallConn) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	s.deadline = t
	s.mu.Unlock()
	return nil
}

// TestSlowConsumerEviction: a stalled client is detected on the shared
// writer, quarantined to its own drain, and evicted after StallLimit
// misses — while a healthy shard-mate keeps receiving every sample.
func TestSlowConsumerEviction(t *testing.T) {
	uav, g := pair(t, Options{
		Shards: 1, QueueLen: 8,
		WriteStall: 20 * time.Millisecond, StallLimit: 2,
	})

	pub, err := uav.Variables().Offer("spd", "nav", presentation.Uint32(), qos.VariableQoS{Validity: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	uav.AnnounceNow()
	waitUntil(t, 3*time.Second, "provider visible", func() bool {
		return g.Node().Directory().ProviderCount(naming.KindVariable, "spd") == 1
	})

	healthy := &sinkConn{}
	stalled := &stallConn{}
	hc, err := g.Attach(healthy)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := g.Attach(stalled)
	if err != nil {
		t.Fatal(err)
	}
	_ = sc
	if err := hc.Subscribe(StreamVariable, "spd"); err != nil {
		t.Fatal(err)
	}
	if err := sc.Subscribe(StreamVariable, "spd"); err != nil {
		t.Fatal(err)
	}

	evictions := g.m.evictions[reasonStall]
	deadline := time.Now().Add(5 * time.Second)
	var sent int64
	for evictions.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client never evicted")
		}
		if err := pub.Publish(uint32(sent)); err != nil {
			t.Fatal(err)
		}
		sent++
		time.Sleep(2 * time.Millisecond)
	}
	if g.m.clients.Value() != 1 {
		t.Fatalf("clients gauge = %d after eviction, want 1", g.m.clients.Value())
	}

	// The healthy client must keep flowing after the eviction.
	before := healthy.frames.Load()
	for i := 0; healthy.frames.Load() == before; i++ {
		if i > 500 {
			t.Fatal("healthy client starved after eviction")
		}
		if err := pub.Publish(uint32(sent)); err != nil {
			t.Fatal(err)
		}
		sent++
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReliableBacklogEviction: event frames are never silently
// superseded; a client that cannot keep up with a reliable stream is
// disconnected once its drop count passes the limit.
func TestReliableBacklogEviction(t *testing.T) {
	uav, g := pair(t, Options{
		Shards: 1, QueueLen: 4,
		WriteStall: time.Hour, StallLimit: 1000, // never evict via stalls
		ReliableDropLimit: 3,
	})

	pub, err := uav.Events().Offer("alarm", "nav", presentation.Uint32(), qos.EventQoS{})
	if err != nil {
		t.Fatal(err)
	}
	uav.AnnounceNow()
	waitUntil(t, 3*time.Second, "provider visible", func() bool {
		return g.Node().Directory().ProviderCount(naming.KindEvent, "alarm") == 1
	})

	stalled := &stallConn{}
	sc, err := g.Attach(stalled)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Subscribe(StreamEvent, "alarm"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "subscriber registration", func() bool {
		return len(pub.Subscribers()) == 1
	})

	evictions := g.m.evictions[reasonReliable]
	deadline := time.Now().Add(5 * time.Second)
	ctx := context.Background()
	for i := 0; evictions.Value() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no reliable-backlog eviction (samples_in=%d)",
				g.m.samplesIn[StreamEvent].Value())
		}
		_ = pub.Publish(ctx, uint32(i))
		time.Sleep(time.Millisecond)
	}
	if g.m.clients.Value() != 0 {
		t.Fatalf("clients gauge = %d after eviction, want 0", g.m.clients.Value())
	}
}

// TestRequestErrors: bad requests answer with control errors but do not
// kill the connection; a subscribe for an unknown name reports the
// failure to the client.
func TestRequestErrors(t *testing.T) {
	_, g := pair(t, Options{Shards: 1})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = g.Serve(l) }()

	c := dialClient(t, l.Addr().String())
	c.send(Request{Op: "subscribe", Stream: "variable", Name: "no.such.var"})
	if f := c.read(3 * time.Second); f.Op != "error" || !strings.Contains(f.Error, "no provider") {
		t.Fatalf("expected no-provider error, got %+v", f)
	}
	c.send(Request{Op: "??", Stream: "variable", Name: "x"})
	if f := c.read(3 * time.Second); f.Op != "error" {
		t.Fatalf("expected unknown-op error, got %+v", f)
	}
	// Connection still alive and usable.
	c.send(Request{Op: "unsubscribe", Stream: "event", Name: "y"})
	if f := c.read(3 * time.Second); f.Op != "unsubscribed" {
		t.Fatalf("expected unsubscribed ack, got %+v", f)
	}
}
