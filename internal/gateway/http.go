package gateway

import (
	"net/http"
	"strconv"
)

// HTTPHandler serves the gateway's health and telemetry endpoints:
//
//	GET /healthz       — liveness plus current client count
//	GET /metrics       — the node's full metrics snapshot, text form
//	GET /metrics.json  — the same snapshot as JSON
//
// The payload is Node.MetricsSnapshot(): the gateway grows no counter
// store of its own — its gateway.* families live in the same registry as
// every other layer, so one scrape covers the whole node.
func (g *Gateway) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := `{"status":"ok","clients":` +
			strconv.FormatInt(g.m.clients.Value(), 10) + `,"fabric_subscriptions":` +
			strconv.FormatInt(g.m.fabricSubs.Value(), 10) + "}\n"
		_, _ = w.Write([]byte(body))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(g.node.MetricsSnapshot().Text()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		raw, err := g.node.MetricsSnapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(raw)
	})
	return mux
}
