package gateway

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/uerr"
)

// Conn is the write side of an external client connection. *net.TCPConn
// satisfies it; experiments attach in-memory sinks so 100k clients do not
// need 100k file descriptors.
type Conn interface {
	io.Writer
	io.Closer
	// SetWriteDeadline bounds the next Write, as on net.Conn.
	SetWriteDeadline(t time.Time) error
}

// fastWriteDeadline is the write budget on the shard writer. A healthy
// client's kernel socket buffer absorbs a frame in microseconds; a write
// that cannot finish inside this window means the client's TCP window is
// full, and the client is moved off the shared writer onto its own slow
// drain so it cannot hold up shard-mates for more than one window, once
// per stall episode.
const fastWriteDeadline = 5 * time.Millisecond

// qent is one queued frame: a retained reference into the shared encode
// plus the delivery class that picks the backpressure policy.
type qent struct {
	s   *bufpool.Shared
	rel bool // reliable (event) frame: may not be silently superseded
}

// shard owns a subset of the clients: their subscription index, their
// ready list and the single writer goroutine draining them. Fan-out for a
// sample touches each shard's lock once — there is no gateway-wide lock
// on the sample path.
type shard struct {
	g       *Gateway
	trigger clock.Trigger
	stop    chan struct{}

	mu    sync.Mutex
	subs  map[topicKey]map[*Client]struct{}
	all   map[*Client]struct{}
	ready []*Client // FIFO with head index rh, compacted when drained
	rh    int
}

func newShard(g *Gateway) *shard {
	sh := &shard{
		g:       g,
		trigger: clock.NewTrigger(g.clk),
		stop:    make(chan struct{}),
		subs:    make(map[topicKey]map[*Client]struct{}),
		all:     make(map[*Client]struct{}),
	}
	// The writer parks on a clock-managed trigger, so under a virtual
	// clock simulated time cannot advance past a shard with queued
	// frames — deliveries stay time-accurate in experiments.
	clock.Go(g.clk, sh.run)
	return sh
}

func (sh *shard) stopWriter() {
	select {
	case <-sh.stop:
	default:
		close(sh.stop)
	}
}

// clients snapshots the shard's client set (shutdown path).
func (sh *shard) clients() []*Client {
	sh.mu.Lock()
	out := make([]*Client, 0, len(sh.all))
	for c := range sh.all {
		out = append(out, c)
	}
	sh.mu.Unlock()
	return out
}

func (sh *shard) attachLocked(key topicKey, c *Client) {
	m := sh.subs[key]
	if m == nil {
		m = make(map[*Client]struct{}, 4)
		sh.subs[key] = m
	}
	m[c] = struct{}{}
}

func (sh *shard) detachLocked(key topicKey, c *Client) {
	if m := sh.subs[key]; m != nil {
		delete(m, c)
		if len(m) == 0 {
			delete(sh.subs, key)
		}
	}
}

// fanOut enqueues one retained reference to s on every client subscribed
// to key and wakes the writer. Eviction decisions (reliable backlog past
// the limit) are collected under the lock and applied outside it.
func (sh *shard) fanOut(key topicKey, s *bufpool.Shared, reliable bool) {
	var evict []*Client
	sh.mu.Lock()
	m := sh.subs[key]
	n := len(m)
	for c := range m {
		if sh.enqueueLocked(c, s, reliable) {
			evict = append(evict, c)
		}
	}
	sh.mu.Unlock()
	if n > 0 {
		sh.trigger.Signal()
	}
	for _, c := range evict {
		sh.g.drop(c, reasonReliable, true)
	}
}

// enqueueLocked (sh.mu held) pushes a retained reference to s onto c's
// ring. On a full ring the policy is per delivery class: the oldest
// variable sample is superseded to make room (for either class of
// incoming frame), but reliable frames are never silently dropped to make
// room — an incoming variable sample behind an all-reliable backlog is
// itself dropped, and an incoming reliable frame counts toward the
// client's eviction (reported via the return).
func (sh *shard) enqueueLocked(c *Client, s *bufpool.Shared, reliable bool) (evict bool) {
	g := sh.g
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	if c.qn == len(c.ring) {
		head := c.ring[c.qh]
		switch {
		case !head.rel:
			c.ring[c.qh] = qent{}
			c.qh++
			if c.qh == len(c.ring) {
				c.qh = 0
			}
			c.qn--
			head.s.Release()
			g.m.dropOld.Inc()
		case !reliable:
			c.mu.Unlock()
			g.m.dropOld.Inc()
			return false
		default:
			c.relDrops++
			evict = c.relDrops >= g.opts.ReliableDropLimit
			c.mu.Unlock()
			return evict
		}
	}
	i := c.qh + c.qn
	if i >= len(c.ring) {
		i -= len(c.ring)
	}
	c.ring[i] = qent{s: s.Retain(), rel: reliable}
	c.qn++
	if !c.inReady && !c.stalled {
		c.inReady = true
		sh.readyPushLocked(c)
	}
	c.mu.Unlock()
	return false
}

func (sh *shard) readyPushLocked(c *Client) {
	if sh.rh > 0 && sh.rh == len(sh.ready) {
		sh.ready = sh.ready[:0]
		sh.rh = 0
	}
	sh.ready = append(sh.ready, c)
}

func (sh *shard) popReady() *Client {
	sh.mu.Lock()
	if sh.rh >= len(sh.ready) {
		sh.ready = sh.ready[:0]
		sh.rh = 0
		sh.mu.Unlock()
		return nil
	}
	c := sh.ready[sh.rh]
	sh.ready[sh.rh] = nil
	sh.rh++
	sh.mu.Unlock()
	return c
}

// run is the shard writer: park until signalled, then drain ready clients.
func (sh *shard) run() {
	for {
		if !sh.trigger.Wait(-1, sh.stop) {
			return
		}
		for {
			c := sh.popReady()
			if c == nil {
				break
			}
			sh.service(c)
		}
	}
}

// service writes up to WriterBatch frames to c, then requeues it if more
// remain (fairness inside the shard). A write that misses the fast
// deadline marks the client stalled and hands it to its own slow drain
// goroutine — the shared writer never waits on one socket twice.
func (sh *shard) service(c *Client) {
	g := sh.g
	for budget := g.opts.WriterBatch; ; {
		c.mu.Lock()
		if c.closed || c.stalled {
			c.mu.Unlock()
			return
		}
		if c.cur == nil {
			if c.qn == 0 {
				c.inReady = false
				c.mu.Unlock()
				return
			}
			c.popFrameLocked()
		}
		s := c.cur.Retain() // writer's grip: outlives a concurrent drop
		off := c.off
		c.mu.Unlock()

		_ = c.conn.SetWriteDeadline(time.Now().Add(fastWriteDeadline))
		n, err := c.conn.Write(s.Bytes()[off:])
		if n > 0 {
			g.m.bytesOut.Add(uint64(n))
		}
		switch {
		case err == nil:
			c.finishFrame(s)
			budget--
			if budget == 0 {
				// Still inReady: put it back so the next pass continues.
				sh.mu.Lock()
				c.mu.Lock()
				if !c.closed && !c.stalled && (c.qn > 0 || c.cur != nil) {
					sh.readyPushLocked(c)
				} else {
					c.inReady = false
				}
				c.mu.Unlock()
				sh.mu.Unlock()
				return
			}
		case isTimeout(err):
			c.mu.Lock()
			if !c.closed {
				c.off = off + n
				c.stalled = true
			}
			closed := c.closed
			c.mu.Unlock()
			s.Release()
			if !closed {
				// Unmanaged goroutine on purpose: it blocks in socket
				// writes, which no clock can account for. Under a
				// virtual clock in-memory conns never stall, so this
				// path only runs in real time.
				go c.slowDrain()
			}
			return
		default:
			s.Release()
			g.drop(c, reasonWriteFail, true)
			return
		}
	}
}

// slowDrain owns a stalled client: blocking writes under the full
// WriteStall deadline, eviction after StallLimit consecutive misses,
// return to the shared writer once the backlog clears.
func (c *Client) slowDrain() {
	g := c.g
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.cur == nil {
			if c.qn == 0 {
				// Drained: back to the fast path. inReady is still set
				// from the stall hand-off, so clear it; the next enqueue
				// re-links the client into the ready list.
				c.stalled = false
				c.inReady = false
				c.stallRun = 0
				c.mu.Unlock()
				return
			}
			c.popFrameLocked()
		}
		s := c.cur.Retain()
		off := c.off
		c.mu.Unlock()

		_ = c.conn.SetWriteDeadline(time.Now().Add(g.opts.WriteStall))
		n, err := c.conn.Write(s.Bytes()[off:])
		if n > 0 {
			g.m.bytesOut.Add(uint64(n))
		}
		switch {
		case err == nil:
			c.finishFrame(s)
		case isTimeout(err):
			c.mu.Lock()
			evict := false
			if !c.closed {
				c.off = off + n
				c.stallRun++
				evict = c.stallRun >= g.opts.StallLimit
			}
			c.mu.Unlock()
			s.Release()
			if evict {
				g.drop(c, reasonStall, true)
				return
			}
		default:
			s.Release()
			g.drop(c, reasonWriteFail, true)
			return
		}
	}
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Client is one attached external consumer. Its write queue is a fixed
// ring of retained references into shared encodes; the ring never grows,
// so a slow client's cost is bounded at attach time.
type Client struct {
	g  *Gateway
	sh *shard

	conn Conn

	mu       sync.Mutex
	ring     []qent
	qh, qn   int // head index, queued count
	cur      *bufpool.Shared
	off      int // bytes of cur already written
	stallRun int // consecutive stalled writes (slow path)
	relDrops int // reliable frames dropped on a full ring
	inReady  bool
	stalled  bool
	closed   bool
	subs     map[topicKey]struct{}
}

// Attach registers an externally-managed connection and returns its
// client handle. Used by ServeConn for real sockets and directly by
// experiments for in-memory ones.
func (g *Gateway) Attach(conn Conn) (*Client, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, uerr.New(g.reg, codeGwAccept, "gateway closed")
	}
	sh := g.shards[g.nextSh%uint64(len(g.shards))]
	g.nextSh++
	g.mu.Unlock()

	c := &Client{
		g:    g,
		sh:   sh,
		conn: conn,
		ring: make([]qent, g.opts.QueueLen),
		subs: make(map[topicKey]struct{}, 4),
	}
	sh.mu.Lock()
	sh.all[c] = struct{}{}
	sh.mu.Unlock()
	g.m.clients.Add(1)
	g.m.accepted.Inc()
	return c, nil
}

// Subscribe taps stream/name for this client. The first subscriber
// gateway-wide creates the single fabric subscription; everyone else
// shares it. New variable subscribers get the cached last value
// immediately — no air-link round trip.
func (c *Client) Subscribe(stream Stream, name string) error {
	ts, err := c.subscribeTopic(stream, name)
	if err != nil || ts == nil {
		return err
	}
	c.replayLast(ts)
	return nil
}

// subscribeTopic links the client into the shared topic without the
// cache replay (the wire loop acks the request between the two). A nil
// topic with nil error is a duplicate subscribe — a no-op.
func (c *Client) subscribeTopic(stream Stream, name string) (*topicState, error) {
	g := c.g
	key := topicKey{stream: stream, name: name}
	ts, err := g.acquireTopic(key)
	if err != nil {
		return nil, err
	}
	sh := c.sh
	sh.mu.Lock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		sh.mu.Unlock()
		g.releaseTopic(key)
		return nil, uerr.New(g.reg, codeGwSubscribe, "client closed")
	}
	if _, dup := c.subs[key]; dup {
		c.mu.Unlock()
		sh.mu.Unlock()
		g.releaseTopic(key)
		return nil, nil
	}
	c.subs[key] = struct{}{}
	sh.attachLocked(key, c)
	c.mu.Unlock()
	sh.mu.Unlock()
	g.m.subs.Add(1)
	return ts, nil
}

// replayLast serves the last-value cache to a fresh variable subscriber.
func (c *Client) replayLast(ts *topicState) {
	if ts.key.stream != StreamVariable {
		return
	}
	ts.mu.Lock()
	last := ts.last
	if last != nil {
		last.Retain()
	}
	ts.mu.Unlock()
	if last == nil {
		return
	}
	sh := c.sh
	sh.mu.Lock()
	sh.enqueueLocked(c, last, false)
	sh.mu.Unlock()
	last.Release()
	c.g.m.cacheHits.Inc()
	sh.trigger.Signal()
}

// Unsubscribe detaches one stream/name tap.
func (c *Client) Unsubscribe(stream Stream, name string) {
	g := c.g
	key := topicKey{stream: stream, name: name}
	sh := c.sh
	sh.mu.Lock()
	c.mu.Lock()
	_, had := c.subs[key]
	if had {
		delete(c.subs, key)
	}
	c.mu.Unlock()
	if had {
		sh.detachLocked(key, c)
	}
	sh.mu.Unlock()
	if had {
		g.m.subs.Add(-1)
		g.releaseTopic(key)
	}
}

// Close detaches the client cleanly.
func (c *Client) Close() {
	c.g.drop(c, reasonBye, false)
}

// popFrameLocked (c.mu held) moves the ring head into cur.
func (c *Client) popFrameLocked() {
	e := c.ring[c.qh]
	c.ring[c.qh] = qent{}
	c.qh++
	if c.qh == len(c.ring) {
		c.qh = 0
	}
	c.qn--
	c.cur = e.s
	c.off = 0
}

// finishFrame retires a fully-written frame: the queue's reference and
// the writer's grip both drop (unless a concurrent drop already released
// the queue side).
func (c *Client) finishFrame(s *bufpool.Shared) {
	c.g.m.framesOut.Inc()
	c.mu.Lock()
	ownQueueRef := !c.closed && c.cur == s
	if ownQueueRef {
		c.cur = nil
		c.off = 0
		c.stallRun = 0
	}
	c.mu.Unlock()
	if ownQueueRef {
		s.Release() // the queue's reference
	}
	s.Release() // the writer's grip
}

// releaseQueueLocked (c.mu held) releases every queued reference on drop.
func (c *Client) releaseQueueLocked() {
	for ; c.qn > 0; c.qn-- {
		c.ring[c.qh].s.Release()
		c.ring[c.qh] = qent{}
		c.qh++
		if c.qh == len(c.ring) {
			c.qh = 0
		}
	}
	c.qh = 0
	if c.cur != nil {
		c.cur.Release()
		c.cur = nil
	}
}
