package gateway

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"

	"uavmw/internal/bufpool"
	"uavmw/internal/uerr"
)

// External wire protocol: every message, in both directions, is a 4-byte
// big-endian length followed by that many bytes of JSON (the gateway also
// appends a trailing newline inside the body so a human can read the
// stream with nothing but `nc`).
//
// Client → gateway requests:
//
//	{"op":"subscribe","stream":"variable","name":"uav.position"}
//	{"op":"unsubscribe","stream":"event","name":"uav.alarm"}
//
// Gateway → client data frames:
//
//	{"stream":"variable","name":"uav.position","seq":12,"ts_unix_ns":...,"value":{...}}
//	{"stream":"event","name":"uav.alarm","seq":3,"ts_unix_ns":...,"from":"uav","value":7}
//
// and control frames acknowledging requests:
//
//	{"stream":"control","op":"subscribed","name":"uav.position"}
//	{"stream":"control","op":"error","name":"x","error":"no provider for variable \"x\""}

// maxRequestLen bounds one client request frame; requests are tiny, and
// the bound keeps a malicious length prefix from sizing a huge read.
const maxRequestLen = 4096

// Request is one decoded client request.
type Request struct {
	Op     string `json:"op"`
	Stream string `json:"stream"`
	Name   string `json:"name"`
}

// ParseStream maps the wire spelling of a stream kind.
func ParseStream(s string) (Stream, bool) {
	switch s {
	case "variable":
		return StreamVariable, true
	case "event":
		return StreamEvent, true
	}
	return 0, false
}

// Serve accepts external clients on l until it is closed. Each
// connection gets its own read loop; writes ride the shard writers.
func (g *Gateway) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return uerr.Wrap(g.reg, codeGwAccept, err, "accept")
		}
		go g.ServeConn(conn)
	}
}

// ServeConn attaches conn and runs its request read loop until the
// client disconnects, misbehaves, or is evicted.
func (g *Gateway) ServeConn(conn net.Conn) {
	c, err := g.Attach(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	g.readLoop(c, conn)
}

// readLoop decodes length-prefixed requests. Any framing or decode error
// is terminal: a client that desynchronizes the stream cannot be trusted
// to stay aligned.
func (g *Gateway) readLoop(c *Client, r io.Reader) {
	var head [4]byte
	//wirepath:alloc one request scratch per connection, reused across requests
	body := make([]byte, 0, 512)
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			g.drop(c, reasonBye, false)
			return
		}
		n := binary.BigEndian.Uint32(head[:])
		if n == 0 || n > maxRequestLen {
			uerr.Handle(g.reg, codeGwDecode).Inc()
			g.drop(c, reasonProtocol, false)
			return
		}
		if cap(body) < int(n) {
			//wirepath:alloc request scratch growth, bounded by maxRequestLen
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			g.drop(c, reasonBye, false)
			return
		}
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			uerr.Handle(g.reg, codeGwDecode).Inc()
			g.drop(c, reasonProtocol, false)
			return
		}
		if !g.handleRequest(c, req) {
			return
		}
	}
}

// handleRequest applies one request; false means the client is gone.
func (g *Gateway) handleRequest(c *Client, req Request) bool {
	stream, ok := ParseStream(req.Stream)
	if req.Op == "bye" {
		c.Close()
		return false
	}
	if !ok || req.Name == "" {
		uerr.Handle(g.reg, codeGwDecode).Inc()
		g.sendControl(c, "error", req.Name, "unknown stream or empty name")
		return true
	}
	switch req.Op {
	case "subscribe":
		ts, err := c.subscribeTopic(stream, req.Name)
		if err != nil {
			g.sendControl(c, "error", req.Name, err.Error())
			return true
		}
		g.sendControl(c, "subscribed", req.Name, "")
		if ts != nil {
			c.replayLast(ts)
		}
	case "unsubscribe":
		c.Unsubscribe(stream, req.Name)
		g.sendControl(c, "unsubscribed", req.Name, "")
	default:
		uerr.Handle(g.reg, codeGwDecode).Inc()
		g.sendControl(c, "error", req.Name, "unknown op")
	}
	return true
}

// sendControl enqueues a control frame for c. Control frames ride the
// reliable class: a lost subscribe ack is a protocol break, not a stale
// sample.
func (g *Gateway) sendControl(c *Client, op, name, errMsg string) {
	buf := bufpool.Get(4 + 64 + len(op) + len(name) + len(errMsg))
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, `{"stream":"control","op":`...)
	buf = appendJSONString(buf, op)
	buf = append(buf, `,"name":`...)
	buf = appendJSONString(buf, name)
	if errMsg != "" {
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, errMsg)
	}
	buf = append(buf, '}', '\n')
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	s := bufpool.Share(buf)
	sh := c.sh
	sh.mu.Lock()
	sh.enqueueLocked(c, s, true)
	sh.mu.Unlock()
	s.Release()
	sh.trigger.Signal()
}

// marshalValue encodes a fabric payload value for the external wire.
// This is the only per-occurrence allocation on the fan-out path and is
// independent of the client count.
func marshalValue(v any) ([]byte, error) {
	return json.Marshal(v)
}

// appendJSONString appends s as a JSON string literal. Topic names and
// node IDs are short identifiers; escaping stays allocation-free on dst.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b == '"' || b == '\\':
			dst = append(dst, '\\', b)
		case b >= 0x20:
			dst = append(dst, b)
		case b == '\n':
			dst = append(dst, '\\', 'n')
		case b == '\t':
			dst = append(dst, '\\', 't')
		case b == '\r':
			dst = append(dst, '\\', 'r')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[b>>4], hex[b&0xf])
		}
	}
	return append(dst, '"')
}

// ReadFrame reads one gateway→client frame from r: the length prefix and
// the JSON body. A convenience for clients and tests; the gateway itself
// never calls it.
func ReadFrame(r io.Reader, scratch []byte) ([]byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(head[:]))
	if cap(scratch) < n {
		//wirepath:alloc client-side convenience reader, not on the gateway fan-out path
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return nil, err
	}
	return scratch, nil
}

// AppendRequest appends a length-prefixed request frame onto dst — the
// client-side encoder matching readLoop.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return dst, err
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(body)))
	dst = append(dst, head[:]...)
	return append(dst, body...), nil
}
