// Package gateway bridges the avionics fabric to many concurrent external
// consumers over plain TCP. The paper's ground station (§5) is a single
// terminal subscriber; the gateway is the scale-out version of it: one
// node joins the fabric once and re-publishes what it hears to N external
// clients at flat per-client cost.
//
// The hot path is built from four mechanisms:
//
//   - shared subscription multiplexing: exactly one fabric subscription
//     per variable or event topic regardless of client count — the first
//     external subscribe creates it, a refcount tracks interest, the last
//     unsubscribe tears it down. The air link never sees the audience.
//   - encode-once fan-out-many: each occurrence is serialized once into a
//     pooled buffer (bufpool.Shared); every subscribed client's write
//     queue holds a retained reference to the same bytes, and the last
//     writer to finish returns the buffer to the pool.
//   - last-value cache: the freshest encoded sample of every variable is
//     retained per topic, so a client joining late gets the current value
//     immediately from gateway memory — variables.Publisher.Snapshot
//     semantics on the ground side, no air-link exchange.
//   - sharded connection handling: clients are hashed across GOMAXPROCS
//     shards; each shard's writer goroutine owns its clients' sockets, so
//     fan-out touches per-shard locks only — there is no global lock on
//     the sample path.
//
// Slow consumers are bounded by per-client write queues: a full queue
// drops the oldest variable sample (newer supersedes older), while
// reliable event frames are never silently superseded — a client that
// keeps forcing event drops, or keeps stalling its socket, is evicted so
// one bad consumer cannot hold buffers or stall the other N−1. All of it
// is counted in the node's metrics registry under gateway.* families.
package gateway

import (
	"encoding/binary"
	"runtime"
	"strconv"
	"sync"
	"time"

	"uavmw/internal/bufpool"
	"uavmw/internal/clock"
	"uavmw/internal/core"
	"uavmw/internal/metrics"
	"uavmw/internal/naming"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
	"uavmw/internal/variables"
)

// Gateway wire-path error codes.
var (
	codeGwDecode    = uerr.Register("gateway.request_decode", uerr.CatDecode)
	codeGwEncode    = uerr.Register("gateway.sample_encode", uerr.CatEncode)
	codeGwSubscribe = uerr.Register("gateway.subscribe_failed", uerr.CatResource)
	codeGwAccept    = uerr.Register("gateway.accept", uerr.CatResource)
)

// Stream selects which fabric primitive an external subscription taps.
type Stream uint8

const (
	// StreamVariable taps a §4.1 variable: best-effort samples where the
	// newest value supersedes older ones (drop-oldest on backpressure).
	StreamVariable Stream = iota
	// StreamEvent taps a §4.2 event topic: occurrences that must not be
	// silently superseded (clients falling behind are disconnected).
	StreamEvent
)

func (s Stream) String() string {
	if s == StreamEvent {
		return "event"
	}
	return "variable"
}

// topicKey identifies one multiplexed fabric subscription.
type topicKey struct {
	stream Stream
	name   string
}

// Options tune the gateway. The zero value is usable.
type Options struct {
	// Shards is the number of connection shards (each with its own writer
	// goroutine). Zero defaults to GOMAXPROCS.
	Shards int
	// QueueLen bounds each client's write queue in frames. Zero defaults
	// to 64.
	QueueLen int
	// WriterBatch is how many frames a shard writer sends to one client
	// before moving on (fairness inside a shard). Zero defaults to 32.
	WriterBatch int
	// WriteStall is the per-write socket deadline; a write that cannot
	// make progress within it counts as one stall. Zero defaults to 2s.
	WriteStall time.Duration
	// StallLimit is how many consecutive stalled writes evict a client.
	// Zero defaults to 3.
	StallLimit int
	// ReliableDropLimit is how many reliable (event) frames may be
	// dropped on a full queue before the client is evicted. Zero
	// defaults to 32.
	ReliableDropLimit int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 64
	}
	if o.WriterBatch <= 0 {
		o.WriterBatch = 32
	}
	if o.WriteStall <= 0 {
		o.WriteStall = 2 * time.Second
	}
	if o.StallLimit <= 0 {
		o.StallLimit = 3
	}
	if o.ReliableDropLimit <= 0 {
		o.ReliableDropLimit = 32
	}
	return o
}

// gwMetrics are the gateway.* families in the node registry, resolved
// once at construction so the fan-out path is pure atomics.
type gwMetrics struct {
	clients    *metrics.Gauge // connected external clients
	subs       *metrics.Gauge // live external (client, topic) subscriptions
	fabricSubs *metrics.Gauge // multiplexed fabric subscriptions

	accepted  *metrics.Counter
	samplesIn map[Stream]*metrics.Counter // occurrences heard from the fabric
	framesOut *metrics.Counter
	bytesOut  *metrics.Counter
	dropOld   *metrics.Counter // variable frames superseded on a full queue
	cacheHits *metrics.Counter // last-value cache replays to new subscribers

	closed    map[string]*metrics.Counter // by reason
	evictions map[string]*metrics.Counter // by reason
}

// Close / eviction reasons (metric label values).
const (
	reasonBye       = "bye"        // clean client close / EOF
	reasonStall     = "stall"      // consecutive write deadline misses
	reasonWriteFail = "write_fail" // hard socket error
	reasonReliable  = "reliable_backlog"
	reasonShutdown  = "shutdown"
	reasonProtocol  = "protocol" // malformed request stream
)

func newGwMetrics(reg *metrics.Registry) gwMetrics {
	m := gwMetrics{
		clients:    reg.Gauge("gateway", "clients"),
		subs:       reg.Gauge("gateway", "subscriptions"),
		fabricSubs: reg.Gauge("gateway", "fabric_subscriptions"),
		accepted:   reg.Counter("gateway", "clients_accepted"),
		framesOut:  reg.Counter("gateway", "frames_out"),
		bytesOut:   reg.Counter("gateway", "bytes_out"),
		dropOld:    reg.Counter("gateway", "queue_drop_oldest"),
		cacheHits:  reg.Counter("gateway", "cache_hits"),
		samplesIn:  make(map[Stream]*metrics.Counter, 2),
		closed:     make(map[string]*metrics.Counter, 6),
		evictions:  make(map[string]*metrics.Counter, 4),
	}
	for _, s := range []Stream{StreamVariable, StreamEvent} {
		m.samplesIn[s] = reg.Counter("gateway", "samples_in", metrics.L("stream", s.String()))
	}
	for _, r := range []string{reasonBye, reasonStall, reasonWriteFail, reasonReliable, reasonShutdown, reasonProtocol} {
		m.closed[r] = reg.Counter("gateway", "clients_closed", metrics.L("reason", r))
	}
	for _, r := range []string{reasonStall, reasonWriteFail, reasonReliable} {
		m.evictions[r] = reg.Counter("gateway", "evictions", metrics.L("reason", r))
	}
	return m
}

// Gateway multiplexes fabric subscriptions out to external TCP clients.
type Gateway struct {
	node *core.Node
	clk  clock.Clock
	reg  *metrics.Registry
	opts Options
	m    gwMetrics

	shards []*shard
	nextSh uint64 // round-robin shard assignment, under mu

	mu     sync.Mutex
	topics map[topicKey]*topicState
	closed bool
}

// topicState is one multiplexed fabric subscription plus its last-value
// cache. refs is guarded by Gateway.mu; the encode state by its own mu.
type topicState struct {
	g    *Gateway
	key  topicKey
	refs int        // external subscribers, under g.mu
	stop func()     // closes the fabric subscription
	mu   sync.Mutex // guards seq, last, dead
	seq  uint64     // per-topic delivery sequence
	last *bufpool.Shared
	dead bool // fabric subscription closed; drop late callbacks
}

// New builds a gateway on node. The node carries the fabric membership,
// the clock, and the metrics registry the gateway reports into.
func New(node *core.Node, opts Options) *Gateway {
	opts = opts.withDefaults()
	g := &Gateway{
		node:   node,
		clk:    clock.Or(node.Clock()),
		reg:    node.Metrics(),
		opts:   opts,
		topics: make(map[topicKey]*topicState),
	}
	g.m = newGwMetrics(g.reg)
	g.shards = make([]*shard, opts.Shards)
	for i := range g.shards {
		g.shards[i] = newShard(g)
	}
	return g
}

// Node returns the fabric node the gateway rides on.
func (g *Gateway) Node() *core.Node { return g.node }

// Close detaches every client and tears down all fabric subscriptions.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()

	for _, sh := range g.shards {
		for _, c := range sh.clients() {
			g.drop(c, reasonShutdown, false)
		}
		sh.stopWriter()
	}

	g.mu.Lock()
	states := make([]*topicState, 0, len(g.topics))
	for _, ts := range g.topics {
		states = append(states, ts)
	}
	g.topics = make(map[topicKey]*topicState)
	g.mu.Unlock()
	for _, ts := range states {
		ts.teardown()
	}
}

// acquireTopic returns the topic state for key, creating the fabric
// subscription on first use, and counts one external reference.
func (g *Gateway) acquireTopic(key topicKey) (*topicState, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, uerr.New(g.reg, codeGwSubscribe, "gateway closed")
	}
	if ts, ok := g.topics[key]; ok {
		ts.refs++
		g.mu.Unlock()
		return ts, nil
	}
	// First subscriber: create the fabric subscription while holding g.mu
	// so a concurrent subscriber for the same key waits instead of
	// doubling the air-side subscription. Fabric subscribe does not call
	// back into the gateway synchronously, so the ordering is safe.
	ts := &topicState{g: g, key: key, refs: 1}
	stop, err := g.subscribeFabric(ts)
	if err != nil {
		g.mu.Unlock()
		return nil, uerr.Wrapf(g.reg, codeGwSubscribe, err, "%s %q", key.stream, key.name)
	}
	ts.stop = stop
	g.topics[key] = ts
	g.m.fabricSubs.Add(1)
	g.mu.Unlock()
	return ts, nil
}

// releaseTopic drops one external reference; the last one closes the
// fabric subscription and the cached sample.
func (g *Gateway) releaseTopic(key topicKey) {
	g.mu.Lock()
	ts, ok := g.topics[key]
	if !ok {
		g.mu.Unlock()
		return
	}
	ts.refs--
	if ts.refs > 0 {
		g.mu.Unlock()
		return
	}
	delete(g.topics, key)
	g.m.fabricSubs.Add(-1)
	g.mu.Unlock()
	ts.teardown()
}

// subscribeFabric attaches the shared fabric-side subscription for ts and
// returns its teardown. The payload type comes from the directory record
// of the current provider — external clients never declare types.
func (g *Gateway) subscribeFabric(ts *topicState) (func(), error) {
	kind := naming.KindVariable
	if ts.key.stream == StreamEvent {
		kind = naming.KindEvent
	}
	recs := g.node.Directory().Lookup(kind, ts.key.name)
	if len(recs) == 0 {
		return nil, uerr.Newf(g.reg, codeGwSubscribe, "no provider for %s %q", ts.key.stream, ts.key.name)
	}
	typ, err := presentation.Parse(recs[0].TypeSig)
	if err != nil {
		return nil, err
	}
	switch ts.key.stream {
	case StreamVariable:
		// RequireInitial is deliberately off: the initial-value exchange
		// parks on wall-clock timers, and the gateway's own last-value
		// cache provides the same guarantee to its clients.
		sub, err := g.node.Variables().Subscribe(ts.key.name, typ, variables.SubscribeOptions{
			OnSample: func(v any, at time.Time) { g.onVariable(ts, v, at) },
		})
		if err != nil {
			return nil, err
		}
		return sub.Close, nil
	default:
		sub, err := g.node.Events().Subscribe(ts.key.name, typ, qos.EventQoS{},
			func(v any, from transport.NodeID) { g.onEvent(ts, v, from) })
		if err != nil {
			return nil, err
		}
		return sub.Close, nil
	}
}

// teardown closes the fabric side and releases the cached sample.
func (ts *topicState) teardown() {
	ts.mu.Lock()
	ts.dead = true
	last := ts.last
	ts.last = nil
	ts.mu.Unlock()
	if last != nil {
		last.Release()
	}
	if ts.stop != nil {
		ts.stop()
	}
}

// onVariable is the shared OnSample callback: encode once, refresh the
// last-value cache, fan out to every subscribed client.
func (g *Gateway) onVariable(ts *topicState, v any, at time.Time) {
	g.m.samplesIn[StreamVariable].Inc()
	s := g.encode(ts, v, at, "")
	if s == nil {
		return
	}
	// Cache under a second reference before fan-out so a client attaching
	// mid-fan-out can never observe an empty cache with the sample gone.
	ts.mu.Lock()
	if ts.dead {
		ts.mu.Unlock()
		s.Release()
		return
	}
	prev := ts.last
	ts.last = s.Retain()
	ts.mu.Unlock()
	if prev != nil {
		prev.Release()
	}
	g.fanOut(ts.key, s, false)
}

// onEvent is the shared event handler: encode once, fan out reliably.
// Events are not cached — an occurrence missed is not a value to re-read.
func (g *Gateway) onEvent(ts *topicState, v any, from transport.NodeID) {
	g.m.samplesIn[StreamEvent].Inc()
	s := g.encode(ts, v, g.clk.Now(), string(from))
	if s == nil {
		return
	}
	g.fanOut(ts.key, s, true)
}

// encode serializes one occurrence into a pooled, length-prefixed JSON
// frame and returns it wrapped in a Shared holding the creator reference.
// This runs once per occurrence regardless of client count.
func (g *Gateway) encode(ts *topicState, v any, at time.Time, from string) *bufpool.Shared {
	body, err := marshalValue(v)
	if err != nil {
		uerr.Handle(g.reg, codeGwEncode).Inc()
		return nil
	}
	ts.mu.Lock()
	ts.seq++
	seq := ts.seq
	ts.mu.Unlock()

	// Envelope assembled by hand into a pooled buffer: the json package
	// cannot marshal into caller storage, and the envelope fields are
	// flat scalars anyway.
	need := 4 + 96 + len(ts.key.name) + len(from) + len(body)
	buf := bufpool.Get(need)
	buf = append(buf, 0, 0, 0, 0) // length prefix, patched below
	buf = append(buf, `{"stream":"`...)
	buf = append(buf, ts.key.stream.String()...)
	buf = append(buf, `","name":`...)
	buf = appendJSONString(buf, ts.key.name)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, seq, 10)
	buf = append(buf, `,"ts_unix_ns":`...)
	buf = strconv.AppendInt(buf, at.UnixNano(), 10)
	if from != "" {
		buf = append(buf, `,"from":`...)
		buf = appendJSONString(buf, from)
	}
	buf = append(buf, `,"value":`...)
	buf = append(buf, body...)
	buf = append(buf, '}', '\n')
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return bufpool.Share(buf)
}

// fanOut enqueues s on every client subscribed to key, shard by shard,
// and drops the creator reference. Per-shard locks only — two topics
// fanning out concurrently contend on nothing global.
func (g *Gateway) fanOut(key topicKey, s *bufpool.Shared, reliable bool) {
	for _, sh := range g.shards {
		sh.fanOut(key, s, reliable)
	}
	s.Release()
}

// drop removes c from the gateway: detaches its subscriptions (releasing
// topic refcounts), releases every queued frame, closes the socket and
// counts the close. evicted additionally counts an eviction.
func (g *Gateway) drop(c *Client, reason string, evicted bool) {
	sh := c.sh
	sh.mu.Lock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		sh.mu.Unlock()
		return
	}
	c.closed = true
	subs := c.subs
	c.subs = nil
	c.releaseQueueLocked()
	c.mu.Unlock()
	for key := range subs {
		sh.detachLocked(key, c)
	}
	delete(sh.all, c)
	sh.mu.Unlock()

	for key := range subs {
		g.releaseTopic(key)
	}
	_ = c.conn.Close()
	g.m.clients.Add(-1)
	g.m.subs.Add(-int64(len(subs)))
	if ctr, ok := g.m.closed[reason]; ok {
		ctr.Inc()
	}
	if evicted {
		if ctr, ok := g.m.evictions[reason]; ok {
			ctr.Inc()
		}
	}
}

// marshalValue is in wire.go (JSON helpers live together there).
