package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"
	"uavmw/internal/clock"

	"uavmw/internal/events"
	"uavmw/internal/filetransfer"
	"uavmw/internal/presentation"
	"uavmw/internal/qos"
	"uavmw/internal/rpc"
	"uavmw/internal/transport"
	"uavmw/internal/uerr"
	"uavmw/internal/variables"
)

// codeServicePanic types a panicking service handler: panic containment
// marks the service failed (§3 "watching for their correct operation")
// and the failure lands in the node registry like any other.
var codeServicePanic = uerr.Register("service.handler_panic", uerr.CatResource)

// Service is the unit of business logic the container manages (§3 "the
// container is the responsible of starting and stopping the services it
// contains ... watching for their correct operation").
type Service interface {
	// Name identifies the service within the node and in announcements.
	Name() string
	// Init registers the service's resources (variables, events,
	// functions, files) and verifies its dependencies. The container
	// calls it once, before any service starts.
	Init(ctx *Context) error
	// Start begins operation; it must not block (long work belongs in
	// goroutines the service stops in Stop, or in handler callbacks).
	Start(ctx *Context) error
	// Stop halts operation and releases service-owned goroutines.
	Stop(ctx *Context) error
}

// Manifest declares a service's resource needs for admission control (§3
// resource management). The zero value requests nothing.
type Manifest struct {
	// MemoryKB is the service's declared memory budget.
	MemoryKB int
	// CPUShare is the declared CPU fraction in [0,1].
	CPUShare float64
	// Devices are input/output devices needed in exclusive mode.
	Devices []string
}

// Resourced is optionally implemented by services that declare resources.
type Resourced interface {
	Manifest() Manifest
}

// ResourceBudget caps the sum of admitted manifests on a node. Zero fields
// are unlimited.
type ResourceBudget struct {
	MemoryKB int
	CPUShare float64
}

// ServiceState is the lifecycle position of a managed service.
type ServiceState uint8

// Lifecycle states.
const (
	ServiceRegistered ServiceState = iota + 1
	ServiceInitialized
	ServiceRunning
	ServiceStopped
	ServiceFailed
)

// String implements fmt.Stringer.
func (s ServiceState) String() string {
	switch s {
	case ServiceRegistered:
		return "registered"
	case ServiceInitialized:
		return "initialized"
	case ServiceRunning:
		return "running"
	case ServiceStopped:
		return "stopped"
	case ServiceFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Errors.
var (
	// ErrDuplicateService reports two services with one name.
	ErrDuplicateService = errors.New("duplicate service name")
	// ErrAdmission reports a manifest the node budget cannot fit.
	ErrAdmission = errors.New("resource admission denied")
	// ErrDeviceBusy reports an exclusive device already held.
	ErrDeviceBusy = errors.New("device held by another service")
	// ErrBadState reports a lifecycle operation from the wrong state.
	ErrBadState = errors.New("invalid service state")
)

// ServiceRuntime is the container's handle on one managed service.
type ServiceRuntime struct {
	node *Node
	svc  Service
	ctx  *Context

	mu    sync.Mutex
	state ServiceState
	err   error
}

// State returns the current lifecycle state.
func (rt *ServiceRuntime) State() ServiceState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.state
}

// Err returns the failure cause for ServiceFailed.
func (rt *ServiceRuntime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Name returns the service name.
func (rt *ServiceRuntime) Name() string { return rt.svc.Name() }

func (rt *ServiceRuntime) setState(s ServiceState, err error) {
	rt.mu.Lock()
	rt.state = s
	if err != nil {
		rt.err = err
	}
	rt.mu.Unlock()
}

// AddService admits and registers a service. Admission checks the combined
// declared resources against the node budget and acquires exclusive
// devices.
func (n *Node) AddService(svc Service) (*ServiceRuntime, error) {
	name := svc.Name()
	if name == "" {
		return nil, fmt.Errorf("core: unnamed service: %w", ErrBadState)
	}
	var m Manifest
	if r, ok := svc.(Resourced); ok {
		m = r.Manifest()
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("core: %w", ErrNodeClosed)
	}
	if _, dup := n.services[name]; dup {
		return nil, fmt.Errorf("core: %q: %w", name, ErrDuplicateService)
	}
	// Admission control against the budget.
	if n.budget.MemoryKB > 0 || n.budget.CPUShare > 0 {
		memSum, cpuSum := m.MemoryKB, m.CPUShare
		for _, rt := range n.services {
			if r, ok := rt.svc.(Resourced); ok {
				mm := r.Manifest()
				memSum += mm.MemoryKB
				cpuSum += mm.CPUShare
			}
		}
		if n.budget.MemoryKB > 0 && memSum > n.budget.MemoryKB {
			return nil, fmt.Errorf("core: %q wants %dKB, budget %dKB: %w",
				name, m.MemoryKB, n.budget.MemoryKB, ErrAdmission)
		}
		if n.budget.CPUShare > 0 && cpuSum > n.budget.CPUShare {
			return nil, fmt.Errorf("core: %q wants %.2f cpu, budget %.2f: %w",
				name, m.CPUShare, n.budget.CPUShare, ErrAdmission)
		}
	}
	// Exclusive devices.
	for _, dev := range m.Devices {
		if holder, busy := n.devices[dev]; busy {
			return nil, fmt.Errorf("core: device %q held by %q: %w", dev, holder, ErrDeviceBusy)
		}
	}
	for _, dev := range m.Devices {
		n.devices[dev] = name
	}

	rt := &ServiceRuntime{node: n, svc: svc, state: ServiceRegistered}
	rt.ctx = &Context{node: n, service: name, runtime: rt}
	n.services[name] = rt
	n.startOrder = append(n.startOrder, name)
	return rt, nil
}

// StartServices initializes every registered service (in registration
// order), then starts them. The two-pass split lets every service publish
// its resources during Init before any dependency check or Start runs —
// the paper's "during middleware initialization, the services check that
// all the functions they need ... are provided" sequence.
func (n *Node) StartServices() error {
	n.mu.Lock()
	order := append([]string(nil), n.startOrder...)
	n.mu.Unlock()

	for _, name := range order {
		rt := n.service(name)
		if rt == nil || rt.State() != ServiceRegistered {
			continue
		}
		if err := rt.svc.Init(rt.ctx); err != nil {
			rt.setState(ServiceFailed, err)
			return fmt.Errorf("core: init %q: %w", name, err)
		}
		rt.setState(ServiceInitialized, nil)
	}
	// Push one synchronous full-state announcement after the Init pass:
	// resources registered during Init already announced incrementally,
	// but announceNow also applies the whole offer (including the new
	// service records) to the local directory before any Start callback
	// runs, and gives peers one coalesced bulk push instead of relying on
	// the async delta flusher mid-boot.
	n.announceNow()

	for _, name := range order {
		rt := n.service(name)
		if rt == nil || rt.State() != ServiceInitialized {
			continue
		}
		if err := rt.svc.Start(rt.ctx); err != nil {
			rt.setState(ServiceFailed, err)
			return fmt.Errorf("core: start %q: %w", name, err)
		}
		rt.setState(ServiceRunning, nil)
	}
	n.announceNow()
	return nil
}

func (n *Node) service(name string) *ServiceRuntime {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.services[name]
}

// Services lists managed services and their states.
func (n *Node) Services() map[string]ServiceState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]ServiceState, len(n.services))
	for name, rt := range n.services {
		out[name] = rt.State()
	}
	return out
}

// StopService stops one running service and withdraws its resources.
func (n *Node) StopService(name string) error {
	rt := n.service(name)
	if rt == nil {
		return fmt.Errorf("core: no service %q: %w", name, ErrBadState)
	}
	return n.stopRuntime(rt, nil)
}

func (n *Node) stopRuntime(rt *ServiceRuntime, cause error) error {
	state := rt.State()
	if state != ServiceRunning && state != ServiceInitialized && cause == nil {
		return fmt.Errorf("core: %q is %v: %w", rt.Name(), state, ErrBadState)
	}
	err := rt.svc.Stop(rt.ctx)
	rt.ctx.cleanupAll()
	n.releaseDevices(rt.Name())
	if cause != nil {
		rt.setState(ServiceFailed, cause)
	} else {
		rt.setState(ServiceStopped, err)
	}
	// Tell the fleet this node's offer changed (§3 status notification).
	n.OfferChanged()
	return err
}

func (n *Node) releaseDevices(service string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for dev, holder := range n.devices {
		if holder == service {
			delete(n.devices, dev)
		}
	}
}

// stopAllServices stops running services in reverse start order.
func (n *Node) stopAllServices() {
	n.mu.Lock()
	order := append([]string(nil), n.startOrder...)
	n.mu.Unlock()
	for i := len(order) - 1; i >= 0; i-- {
		rt := n.service(order[i])
		if rt != nil && (rt.State() == ServiceRunning || rt.State() == ServiceInitialized) {
			_ = n.stopRuntime(rt, nil)
		}
	}
}

// failService handles a malfunction report: the container stops the service
// and re-announces so peers clear their caches and fail over (§3, §4.3).
func (n *Node) failService(rt *ServiceRuntime, cause error) {
	log.Printf("uavmw[%s]: service %q failed: %v", n.id, rt.Name(), cause)
	_ = n.stopRuntime(rt, cause)
}

// Context is a service's gateway to the middleware primitives. All
// resources registered through a Context are owned by the service and
// withdrawn when it stops or fails.
type Context struct {
	node    *Node
	service string
	runtime *ServiceRuntime

	mu      sync.Mutex
	cleanup []func()
}

// Node returns the owning container.
func (c *Context) Node() *Node { return c.node }

// Clock returns the container's time source. Services pace their loops on
// it so a virtual-time container carries its services' timing with it.
func (c *Context) Clock() clock.Clock { return c.node.clk }

// ServiceName returns the owning service's name.
func (c *Context) ServiceName() string { return c.service }

func (c *Context) addCleanup(f func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cleanup = append(c.cleanup, f)
}

func (c *Context) cleanupAll() {
	c.mu.Lock()
	fns := c.cleanup
	c.cleanup = nil
	c.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// Fail reports a malfunction; the container stops the service and notifies
// the fleet.
func (c *Context) Fail(err error) {
	if c.runtime != nil {
		c.node.failService(c.runtime, err)
	}
}

// guard wraps a service handler with panic containment: a panicking handler
// marks the service failed instead of crashing the container (§3 "watching
// for their correct operation").
func (c *Context) guard(body func()) func() {
	return func() {
		defer func() {
			if r := recover(); r != nil {
				c.Fail(uerr.Newf(c.node.metrics, codeServicePanic, "%s: panic: %v", c.service, r))
			}
		}()
		body()
	}
}

// Logf writes a service-attributed log line.
func (c *Context) Logf(format string, args ...any) {
	log.Printf("uavmw[%s/%s]: %s", c.node.id, c.service, fmt.Sprintf(format, args...))
}

// --- variables (§4.1) ---

// OfferVariable registers a variable publisher owned by this service.
func (c *Context) OfferVariable(name string, t *presentation.Type, q qos.VariableQoS) (*variables.Publisher, error) {
	p, err := c.node.vars.Offer(name, c.service, t, q)
	if err != nil {
		return nil, err
	}
	c.addCleanup(p.Close)
	return p, nil
}

// SubscribeVariable attaches to a variable; OnSample/OnTimeout callbacks
// are panic-guarded.
func (c *Context) SubscribeVariable(name string, t *presentation.Type, opts variables.SubscribeOptions) (*variables.Subscription, error) {
	if opts.OnSample != nil {
		user := opts.OnSample
		opts.OnSample = func(v any, ts time.Time) { c.guard(func() { user(v, ts) })() }
	}
	if opts.OnTimeout != nil {
		user := opts.OnTimeout
		opts.OnTimeout = func(silence time.Duration) { c.guard(func() { user(silence) })() }
	}
	s, err := c.node.vars.Subscribe(name, t, opts)
	if err != nil {
		return nil, err
	}
	c.addCleanup(s.Close)
	return s, nil
}

// --- events (§4.2) ---

// OfferEvent registers an event publisher owned by this service.
func (c *Context) OfferEvent(topic string, t *presentation.Type, q qos.EventQoS) (*events.Publisher, error) {
	p, err := c.node.events.Offer(topic, c.service, t, q)
	if err != nil {
		return nil, err
	}
	c.addCleanup(p.Close)
	return p, nil
}

// SubscribeEvent attaches a panic-guarded handler to a topic.
func (c *Context) SubscribeEvent(topic string, t *presentation.Type, q qos.EventQoS, h events.Handler) (*events.Subscription, error) {
	guarded := func(v any, from transport.NodeID) { c.guard(func() { h(v, from) })() }
	s, err := c.node.events.Subscribe(topic, t, q, guarded)
	if err != nil {
		return nil, err
	}
	c.addCleanup(s.Close)
	return s, nil
}

// --- remote invocation (§4.3) ---

// RegisterFunction exposes a panic-guarded function owned by this service.
func (c *Context) RegisterFunction(name string, argType, retType *presentation.Type, q qos.CallQoS, h rpc.Handler) error {
	guarded := func(args any) (v any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = uerr.Newf(c.node.metrics, codeServicePanic, "%s/%s: panic: %v", c.service, name, r)
			}
		}()
		return h(args)
	}
	if err := c.node.rpc.Register(name, c.service, argType, retType, q, guarded); err != nil {
		return err
	}
	c.addCleanup(func() { c.node.rpc.Unregister(name) })
	return nil
}

// Call invokes a remote (or local) function.
func (c *Context) Call(ctx context.Context, name string, args any, argType, retType *presentation.Type, q qos.CallQoS) (any, error) {
	return c.node.rpc.Call(ctx, name, args, argType, retType, q)
}

// RequireFunctions verifies this service's call dependencies (§4.3, E12).
func (c *Context) RequireFunctions(names ...string) error {
	return c.node.rpc.DependencyCheck(names...)
}

// --- file transmission (§4.4) ---

// OfferFile publishes a file resource owned by this service.
func (c *Context) OfferFile(name string, data []byte, q qos.TransferQoS) (*filetransfer.Offer, error) {
	o, err := c.node.files.Offer(name, c.service, data, q)
	if err != nil {
		return nil, err
	}
	c.addCleanup(o.Close)
	return o, nil
}

// FetchFile retrieves a file resource (local bypass when offered here).
func (c *Context) FetchFile(ctx context.Context, name string, opts filetransfer.FetchOptions) ([]byte, uint64, error) {
	return c.node.files.Fetch(ctx, name, opts)
}

// WatchFile delivers the resource on every revision change until ctx ends.
func (c *Context) WatchFile(ctx context.Context, name string, opts filetransfer.FetchOptions, cb func(data []byte, revision uint64)) error {
	return c.node.files.Watch(ctx, name, opts, cb)
}

// --- resource management (§3) ---

// AcquireDevice claims an exclusive device at runtime.
func (c *Context) AcquireDevice(device string) error {
	n := c.node
	n.mu.Lock()
	defer n.mu.Unlock()
	if holder, busy := n.devices[device]; busy {
		if holder == c.service {
			return nil
		}
		return fmt.Errorf("core: device %q held by %q: %w", device, holder, ErrDeviceBusy)
	}
	n.devices[device] = c.service
	return nil
}

// ReleaseDevice releases a held device.
func (c *Context) ReleaseDevice(device string) {
	n := c.node
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.devices[device] == c.service {
		delete(n.devices, device)
	}
}
